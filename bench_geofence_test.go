package retrasyn

// Benchmarks of the geofence backend: a polygonal fence following the
// corridor/district workload's geography vs a uniform 16×16 grid over the
// same bounding box, at equal ε. The fence covers only the reachable
// corridor (~1/4 of the box) with 17 cells, so its transition domain |S| is
// a small fraction of the grid's — and with OUE variance Var ≈
// 4e^ε/(n(e^ε−1)²) per state, the one-round L1 estimation error shrinks
// with it.
//
//	go test -bench 'Geofence' -run - .
//
// RETRASYN_EMIT_BENCH=1 go test -run TestEmitBenchGeofenceJSON .
// re-measures everything and writes the results to BENCH_geofence.json.

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"retrasyn/internal/transition"
)

var geofenceBench struct {
	once   sync.Once
	setups []*spatialBenchSetup
}

// geofenceSetups prepares the same corridor collection round on both
// backends: the uniform 16×16 grid over the full bounding box vs the
// matching 17-cell corridor fence.
func geofenceSetups(tb testing.TB) []*spatialBenchSetup {
	geofenceBench.once.Do(func() {
		raw, bounds, err := StandardDataset("corridor", 0.5, 20240727)
		if err != nil {
			tb.Fatal(err)
		}
		g, err := NewGrid(16, bounds)
		if err != nil {
			tb.Fatal(err)
		}
		fence, err := NewGeofence(CorridorFence(bounds))
		if err != nil {
			tb.Fatal(err)
		}
		for _, s := range []*spatialBenchSetup{
			{name: "uniform-16x16", space: g},
			{name: "geofence-corridor", space: fence},
		} {
			s.dom = transition.NewDomain(s.space)
			orig := Discretize(raw, s.space)
			for _, tr := range orig.Trajs {
				if idx, ok := s.dom.Index(EnterState(tr.Cells[0])); ok {
					s.states = append(s.states, idx)
				}
				for j := 1; j < len(tr.Cells); j++ {
					if idx, ok := s.dom.Index(MoveState(tr.Cells[j-1], tr.Cells[j])); ok {
						s.states = append(s.states, idx)
					}
				}
				if idx, ok := s.dom.Index(QuitState(tr.Cells[len(tr.Cells)-1])); ok {
					s.states = append(s.states, idx)
				}
			}
			s.trueFreq = make([]float64, s.dom.Size())
			for _, idx := range s.states {
				s.trueFreq[idx] += 1 / float64(len(s.states))
			}
			geofenceBench.setups = append(geofenceBench.setups, s)
		}
	})
	return geofenceBench.setups
}

func benchGeofenceAggregation(b *testing.B, name string) {
	var setup *spatialBenchSetup
	for _, s := range geofenceSetups(b) {
		if s.name == name {
			setup = s
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSpatialRound(setup, uint64(i)+1)
	}
}

// BenchmarkGeofenceRoundUniform runs one OUE collection round (perturb +
// fold + estimate) on the bounding-box grid's domain.
func BenchmarkGeofenceRoundUniform(b *testing.B) { benchGeofenceAggregation(b, "uniform-16x16") }

// BenchmarkGeofenceRoundFence runs the identical round on the corridor
// fence's far smaller domain.
func BenchmarkGeofenceRoundFence(b *testing.B) { benchGeofenceAggregation(b, "geofence-corridor") }

// TestGeofenceShrinksDomain pins the tentpole's promise on the corridor
// workload: the fence's transition domain is a small fraction of the
// bounding-box grid's, and the one-round estimation error shrinks with it.
func TestGeofenceShrinksDomain(t *testing.T) {
	setups := geofenceSetups(t)
	uni, fence := setups[0], setups[1]
	if fence.dom.Size() >= uni.dom.Size()/4 {
		t.Fatalf("fence domain %d not < quarter of uniform %d", fence.dom.Size(), uni.dom.Size())
	}
	uniErr := spatialL1Error(uni, 3)
	fenceErr := spatialL1Error(fence, 3)
	if fenceErr >= uniErr {
		t.Fatalf("fence L1 error %.4f not below uniform %.4f", fenceErr, uniErr)
	}
}

// TestEmitBenchGeofenceJSON measures the geofence benchmarks and writes
// BENCH_geofence.json. Gated behind RETRASYN_EMIT_BENCH so the regular
// suite stays fast.
func TestEmitBenchGeofenceJSON(t *testing.T) {
	if os.Getenv("RETRASYN_EMIT_BENCH") == "" {
		t.Skip("set RETRASYN_EMIT_BENCH=1 to measure and write BENCH_geofence.json")
	}
	type entry struct {
		Name         string  `json:"name"`
		NumCells     int     `json:"num_cells"`
		DomainSize   int     `json:"domain_size"`
		CoveredArea  float64 `json:"covered_area_fraction"`
		Reports      int     `json:"reports"`
		RoundNsPerOp float64 `json:"round_ns_per_op"`
		EstimationL1 float64 `json:"estimation_l1_error"`
		DomainShrink float64 `json:"domain_shrink_vs_uniform,omitempty"`
		RoundSpeedup float64 `json:"round_speedup_vs_uniform,omitempty"`
		L1ErrorRatio float64 `json:"l1_error_ratio_vs_uniform,omitempty"`
	}
	setups := geofenceSetups(t)
	measure := func(s *spatialBenchSetup, bench func(*testing.B)) entry {
		r := testing.Benchmark(bench)
		covered := 1.0
		if f, ok := s.space.(*Geofence); ok {
			covered = f.CoveredArea() / f.Bounds().Area()
		}
		return entry{
			Name:         s.name,
			NumCells:     s.space.NumCells(),
			DomainSize:   s.dom.Size(),
			CoveredArea:  covered,
			Reports:      len(s.states),
			RoundNsPerOp: float64(r.NsPerOp()),
			EstimationL1: spatialL1Error(s, 5),
		}
	}
	uni := measure(setups[0], BenchmarkGeofenceRoundUniform)
	fence := measure(setups[1], BenchmarkGeofenceRoundFence)
	fence.DomainShrink = float64(uni.DomainSize) / float64(fence.DomainSize)
	fence.RoundSpeedup = uni.RoundNsPerOp / fence.RoundNsPerOp
	fence.L1ErrorRatio = fence.EstimationL1 / uni.EstimationL1

	out := struct {
		Workload   string  `json:"workload"`
		Epsilon    float64 `json:"epsilon"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		Results    []entry `json:"results"`
	}{
		Workload:   "corridor: four districts linked by a cross of road corridors; the fence covers only the reachable ~1/4 of the bounding box",
		Epsilon:    1.0,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    []entry{uni, fence},
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_geofence.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("domain shrink ×%.2f, round speedup ×%.2f, L1 error ratio %.2f",
		fence.DomainShrink, fence.RoundSpeedup, fence.L1ErrorRatio)
	if fence.DomainShrink <= 1 {
		t.Errorf("fence did not shrink the domain (×%.2f)", fence.DomainShrink)
	}
	if fence.L1ErrorRatio >= 1 {
		t.Errorf("fence did not reduce estimation error (ratio %.2f)", fence.L1ErrorRatio)
	}
}
