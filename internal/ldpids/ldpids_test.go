package ldpids

import (
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
)

func testGrid() *grid.System {
	return grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

func walkDataset(g *grid.System, users, T int, meanLen float64, seed uint64) *trajectory.Dataset {
	rng := ldp.NewRand(seed, seed+1)
	d := &trajectory.Dataset{Name: "walk", T: T}
	for u := 0; u < users; u++ {
		start := rng.IntN(T)
		c := grid.Cell(rng.IntN(g.NumCells()))
		cells := []grid.Cell{c}
		for t := start + 1; t < T; t++ {
			if rng.Float64() < 1/meanLen {
				break
			}
			ns := g.Neighbors(c)
			c = ns[rng.IntN(len(ns))]
			cells = append(cells, c)
		}
		d.Trajs = append(d.Trajs, trajectory.CellTrajectory{Start: start, Cells: cells})
	}
	return d
}

func opts(m Method) Options {
	return Options{Grid: testGrid(), Epsilon: 1.0, W: 5, Method: m, Seed: 9}
}

func TestMethodString(t *testing.T) {
	tests := []struct {
		m    Method
		want string
	}{
		{LBD, "LBD"}, {LBA, "LBA"}, {LPD, "LPD"}, {LPA, "LPA"}, {Method(9), "Method(9)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
	if LBD.IsPopulation() || LBA.IsPopulation() {
		t.Error("budget methods flagged as population")
	}
	if !LPD.IsPopulation() || !LPA.IsPopulation() {
		t.Error("population methods not flagged")
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Options{
		{Grid: nil, Epsilon: 1, W: 5},
		{Grid: testGrid(), Epsilon: 0, W: 5},
		{Grid: testGrid(), Epsilon: 1, W: 0},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunAllMethods(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 300, 50, 10, 3)
	stream := trajectory.NewStream(data)
	for _, m := range []Method{LBD, LBA, LPD, LPA} {
		t.Run(m.String(), func(t *testing.T) {
			e, err := New(opts(m))
			if err != nil {
				t.Fatal(err)
			}
			syn, stats := e.Run(stream, "syn")
			if err := syn.Validate(g, true); err != nil {
				t.Fatalf("invalid synthetic output: %v", err)
			}
			if stats.Publications == 0 {
				t.Fatal("no publications happened")
			}
			if stats.Timestamps != data.T {
				t.Fatalf("processed %d timestamps", stats.Timestamps)
			}
		})
	}
}

func TestBaselineStreamsNeverTerminate(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 200, 40, 10, 5)
	stream := trajectory.NewStream(data)
	e, _ := New(opts(LBD))
	syn, _ := e.Run(stream, "syn")
	if len(syn.Trajs) == 0 {
		t.Fatal("no synthetic streams")
	}
	for _, tr := range syn.Trajs {
		if tr.End() != data.T-1 {
			t.Fatalf("baseline stream ends at %d, want %d (never terminates)", tr.End(), data.T-1)
		}
	}
	// Constant size: all streams share the initialization timestamp.
	start := syn.Trajs[0].Start
	for _, tr := range syn.Trajs {
		if tr.Start != start {
			t.Fatal("baseline population not constant-size")
		}
	}
}

func TestBudgetMethodsWindowInvariant(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 250, 60, 10, 7)
	stream := trajectory.NewStream(data)
	for _, m := range []Method{LBD, LBA} {
		t.Run(m.String(), func(t *testing.T) {
			o := opts(m)
			e, _ := New(o)
			e.Run(stream, "syn")
			if got := e.Ledger().MaxWindowSum(o.W); got > o.Epsilon+1e-9 {
				t.Fatalf("window budget %v exceeds ε=%v", got, o.Epsilon)
			}
		})
	}
}

func TestPopulationMethodsUserInvariant(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 250, 60, 10, 11)
	stream := trajectory.NewStream(data)
	for _, m := range []Method{LPD, LPA} {
		t.Run(m.String(), func(t *testing.T) {
			o := opts(m)
			e, _ := New(o)
			e.Run(stream, "syn")
			got := e.Ledger().MaxUserWindowSum(o.W, func(int) float64 { return o.Epsilon })
			if got > o.Epsilon+1e-9 {
				t.Fatalf("per-user window budget %v exceeds ε=%v", got, o.Epsilon)
			}
		})
	}
}

func TestLBANullification(t *testing.T) {
	// After a publication that absorbed k quanta, the next k−1 timestamps
	// must not publish. Detect by counting publications in a steady stream.
	g := testGrid()
	data := walkDataset(g, 300, 60, 20, 13)
	stream := trajectory.NewStream(data)
	o := opts(LBA)
	e, _ := New(o)
	_, stats := e.Run(stream, "syn")
	// With w=5, dissim ε/(2w) each ts, publications bounded by the quanta:
	// at most one publication per timestamp and total pub budget per window
	// ≤ ε/2, so publications cannot exceed timestamps.
	if stats.Publications > stats.Timestamps {
		t.Fatalf("publications %d exceed timestamps %d", stats.Publications, stats.Timestamps)
	}
	if got := e.Ledger().MaxWindowSum(o.W); got > o.Epsilon+1e-9 {
		t.Fatalf("LBA window budget %v exceeds ε", got)
	}
}

func TestDissimilarityUnbiasedClamp(t *testing.T) {
	e, _ := New(opts(LBD))
	est := make([]float64, e.dom.Size())
	// Model is all zeros; estimate all zeros; variance correction pushes the
	// raw value negative → clamped to 0.
	if got := e.dissimilarity(est, 0.5); got != 0 {
		t.Fatalf("dissimilarity = %v, want 0", got)
	}
	// Large genuine drift dominates the correction.
	for i := range est {
		est[i] = 1
	}
	if got := e.dissimilarity(est, 0.5); got <= 0 {
		t.Fatalf("dissimilarity = %v, want > 0", got)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 150, 30, 8, 17)
	stream := trajectory.NewStream(data)
	run := func() Stats {
		e, _ := New(opts(LPA))
		_, stats := e.Run(stream, "syn")
		return stats
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestEmptyStream(t *testing.T) {
	d := &trajectory.Dataset{Name: "empty", T: 10}
	stream := trajectory.NewStream(d)
	for _, m := range []Method{LBD, LBA, LPD, LPA} {
		e, _ := New(opts(m))
		syn, stats := e.Run(stream, "syn")
		if len(syn.Trajs) != 0 || stats.Publications != 0 {
			t.Fatalf("%v: empty stream produced output: %d trajs, %d pubs",
				m, len(syn.Trajs), stats.Publications)
		}
	}
}
