// Package ldpids implements the LDP-IDS streaming release framework (Ren et
// al., SIGMOD'22) — the paper's state-of-the-art baseline — adapted to
// trajectory streams exactly as §V-A prescribes: the two-phase
// dissimilarity-then-publish machinery collects users' movement transition
// states and maintains a released movement-frequency vector, which then
// drives the same Markov synthesizer as RetraSyn but without any
// entering/quitting modelling (constant-size, never-terminating synthetic
// streams initialized at random cells).
//
// Four allocation mechanisms are provided:
//
//   - LBD — budget distribution: ε/2 spread uniformly for dissimilarity
//     estimation, publications spend half the remaining publication budget
//     of the window (exponential decay).
//   - LBA — budget absorption: uniform ε/(2w) publication quanta; skipped
//     timestamps donate their quantum to the next publication, which then
//     nullifies as many following timestamps as it absorbed.
//   - LPD / LPA — the population analogues: user subsets substitute budget
//     shares, every sampled user spends the whole ε and rests for w
//     timestamps.
package ldpids

import (
	"fmt"
	"math/rand/v2"

	"retrasyn/internal/allocation"
	"retrasyn/internal/core"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/synthesis"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// Method enumerates the four LDP-IDS mechanisms.
type Method int

const (
	// LBD is budget distribution (exponentially decaying publication budget).
	LBD Method = iota
	// LBA is budget absorption (uniform quanta with absorption).
	LBA
	// LPD is population distribution.
	LPD
	// LPA is population absorption.
	LPA
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case LBD:
		return "LBD"
	case LBA:
		return "LBA"
	case LPD:
		return "LPD"
	case LPA:
		return "LPA"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// IsPopulation reports whether the method divides users rather than budget.
func (m Method) IsPopulation() bool { return m == LPD || m == LPA }

// Options configures a baseline engine.
type Options struct {
	Grid    *grid.System
	Epsilon float64
	W       int
	Method  Method
	// OracleMode selects the collection simulation path (shared with core).
	OracleMode core.OracleMode
	Seed       uint64
}

func (o *Options) validate() error {
	if o.Grid == nil {
		return fmt.Errorf("ldpids: Grid is required")
	}
	if !(o.Epsilon > 0) {
		return fmt.Errorf("ldpids: Epsilon must be > 0, got %v", o.Epsilon)
	}
	if o.W < 1 {
		return fmt.Errorf("ldpids: W must be ≥ 1, got %d", o.W)
	}
	return nil
}

// Engine is the LDP-IDS curator. Not safe for concurrent use.
type Engine struct {
	opts Options
	dom  *transition.Domain
	rng  *rand.Rand

	model *mobility.Model // holds the released vector r_t
	synth *synthesis.Synthesizer

	// Budget-division state.
	pubWin  *allocation.BudgetWindow // publication-half expenditure over w
	carry   int                      // LBA: absorbed quanta available
	nullify int                      // LBA: timestamps to skip after absorption

	// Population-division state.
	users *core.UserTracker

	ledger       *allocation.Ledger
	bootstrapped bool
	synthInit    bool
	stats        Stats

	trueCounts []int
	eligBuf    []trajectory.Event
}

// Stats aggregates a run.
type Stats struct {
	Timestamps   int
	Publications int
	TotalReports int
}

// New creates a baseline engine.
func New(opts Options) (*Engine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	dom := transition.NewMoveOnlyDomain(opts.Grid)
	rng := ldp.NewRand(opts.Seed, opts.Seed^0xd1b54a32d192ed03)
	synth, err := synthesis.New(opts.Grid, synthesis.Options{DisableTermination: true}, rng)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opts:       opts,
		dom:        dom,
		rng:        rng,
		model:      mobility.NewModel(dom),
		synth:      synth,
		trueCounts: make([]int, dom.Size()),
	}
	if opts.Method.IsPopulation() {
		e.users = core.NewUserTracker(opts.W)
	} else {
		e.pubWin = allocation.NewBudgetWindow(opts.W)
	}
	return e, nil
}

// Ledger returns the recorded privacy ledger (nil until Run or EnableLedger).
func (e *Engine) Ledger() *allocation.Ledger { return e.ledger }

// EnableLedger starts recording rounds for a timeline of length T.
func (e *Engine) EnableLedger(T int) { e.ledger = allocation.NewLedger(T) }

// Stats returns the run statistics so far.
func (e *Engine) Stats() Stats { return e.stats }

// Run processes a recorded stream and returns the synthetic database.
func (e *Engine) Run(stream *trajectory.Stream, name string) (*trajectory.Dataset, Stats) {
	if e.ledger == nil {
		e.EnableLedger(stream.T)
	}
	for t := 0; t < stream.T; t++ {
		e.ProcessTimestamp(t, stream.At(t), stream.Active[t])
	}
	return e.synth.Dataset(name, stream.T), e.stats
}

// Synthetic returns the current synthetic database.
func (e *Engine) Synthetic(name string, T int) *trajectory.Dataset {
	return e.synth.Dataset(name, T)
}

// ProcessTimestamp runs one LDP-IDS step: dissimilarity estimation, the
// publish-or-approximate decision, and Markov synthesis from the released
// vector.
func (e *Engine) ProcessTimestamp(t int, events []trajectory.Event, activeCount int) {
	e.stats.Timestamps++
	if e.users != nil {
		e.users.BeginTimestamp(t)
		for _, ev := range events {
			e.users.Register(ev.User)
		}
	}
	pool := e.eligible(events)
	if len(pool) > 0 {
		if e.opts.Method.IsPopulation() {
			e.stepPopulation(t, pool)
		} else {
			e.stepBudget(t, pool)
		}
	} else if e.pubWin != nil {
		e.pubWin.Record(0)
	}
	if e.users != nil {
		for _, ev := range events {
			if ev.State.Kind == transition.Quit {
				e.users.MarkQuitted(ev.User)
			}
		}
	}

	// Synthesis: constant-size never-terminating streams from r_t.
	snap := e.model.Snapshot()
	if !e.synthInit {
		if activeCount > 0 {
			e.synth.Init(t, activeCount, snap)
			e.synthInit = true
		}
		return
	}
	e.synth.Step(t, activeCount /* ignored: termination disabled */, snap)
}

// eligible filters events to movement states (and active users for
// population methods). Enter/quit events carry no movement information for
// the baselines.
func (e *Engine) eligible(events []trajectory.Event) []trajectory.Event {
	e.eligBuf = e.eligBuf[:0]
	for _, ev := range events {
		if _, ok := e.dom.Index(ev.State); !ok {
			continue
		}
		if e.users != nil && !e.users.IsActive(ev.User) {
			continue
		}
		e.eligBuf = append(e.eligBuf, ev)
	}
	return e.eligBuf
}

// stepBudget implements LBD/LBA. Every present user spends ε/(2w) on the
// dissimilarity estimate; the publication half ε/2 is allocated per method.
func (e *Engine) stepBudget(t int, pool []trajectory.Event) {
	epsDis := e.opts.Epsilon / (2 * float64(e.opts.W))
	disEst := e.collect(pool, epsDis)
	e.recordRound(t, epsDis, pool)

	// Potential publication budget.
	var epsPub float64
	switch e.opts.Method {
	case LBD:
		remaining := e.opts.Epsilon/2 - e.pubWin.Used()
		if remaining < 0 {
			remaining = 0
		}
		epsPub = remaining / 2
	default: // LBA
		if e.nullify > 0 {
			e.nullify--
			e.pubWin.Record(0)
			return
		}
		if e.carry < e.opts.W {
			e.carry++
		}
		epsPub = e.opts.Epsilon / (2 * float64(e.opts.W)) * float64(e.carry)
	}
	if epsPub <= 0 {
		e.pubWin.Record(0)
		return
	}

	dis := e.dissimilarity(disEst, ldp.Variance(epsDis, len(pool)))
	errPub := ldp.Variance(epsPub, len(pool))
	if !e.bootstrapped || dis > errPub {
		pubEst := e.collect(pool, epsPub)
		e.model.SetAll(pubEst)
		e.bootstrapped = true
		e.stats.Publications++
		e.recordRound(t, epsPub, pool)
		e.pubWin.Record(epsPub)
		if e.opts.Method == LBA {
			e.nullify = e.carry - 1
			e.carry = 0
		}
	} else {
		e.pubWin.Record(0)
	}
}

// stepPopulation implements LPD/LPA. A 1/(2w) user share estimates the
// dissimilarity with the whole ε; publication user shares mirror the budget
// methods. Every sampled user rests for w timestamps.
func (e *Engine) stepPopulation(t int, pool []trajectory.Event) {
	w := float64(e.opts.W)
	nDis := int(float64(len(pool))/(2*w) + 0.5)
	if nDis < 1 {
		nDis = 1
	}
	if nDis > len(pool) {
		nDis = len(pool)
	}
	e.shuffle(pool)
	disGroup := pool[:nDis]
	rest := pool[nDis:]
	disEst := e.collect(disGroup, e.opts.Epsilon)
	e.markReported(t, disGroup)
	e.recordRound(t, e.opts.Epsilon, disGroup)

	// Publication group size per method.
	var nPub int
	switch e.opts.Method {
	case LPD:
		// Half of the remaining sampleable users this timestamp — the
		// population analogue of halving the remaining budget.
		nPub = len(rest) / 2
	default: // LPA
		if e.nullify > 0 {
			e.nullify--
			return
		}
		if e.carry < e.opts.W {
			e.carry++
		}
		nPub = int(float64(len(pool))/(2*w)*float64(e.carry) + 0.5)
		if nPub > len(rest) {
			nPub = len(rest)
		}
	}
	if nPub < 1 {
		return
	}

	dis := e.dissimilarity(disEst, ldp.Variance(e.opts.Epsilon, nDis))
	errPub := ldp.Variance(e.opts.Epsilon, nPub)
	if !e.bootstrapped || dis > errPub {
		pubGroup := rest[:nPub]
		pubEst := e.collect(pubGroup, e.opts.Epsilon)
		e.model.SetAll(pubEst)
		e.bootstrapped = true
		e.stats.Publications++
		e.markReported(t, pubGroup)
		e.recordRound(t, e.opts.Epsilon, pubGroup)
		if e.opts.Method == LPA {
			e.nullify = e.carry - 1
			e.carry = 0
		}
	}
}

// dissimilarity is the noise-corrected mean squared deviation between the
// fresh estimate and the released vector r: an unbiased estimate of the true
// approximation error, clamped at 0.
func (e *Engine) dissimilarity(est []float64, estVar float64) float64 {
	r := e.model.Freqs()
	sum := 0.0
	for i := range est {
		d := est[i] - r[i]
		sum += d * d
	}
	dis := sum/float64(len(est)) - estVar
	if dis < 0 {
		return 0
	}
	return dis
}

func (e *Engine) shuffle(pool []trajectory.Event) {
	e.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
}

func (e *Engine) markReported(t int, group []trajectory.Event) {
	if e.users == nil {
		return
	}
	for _, ev := range group {
		e.users.MarkReported(ev.User, t)
	}
	e.stats.TotalReports += len(group)
}

func (e *Engine) recordRound(t int, eps float64, group []trajectory.Event) {
	if e.users == nil {
		e.stats.TotalReports += len(group)
	}
	if e.ledger == nil {
		return
	}
	ids := make([]int, len(group))
	for i, ev := range group {
		ids[i] = ev.User
	}
	e.ledger.RecordRound(t, eps, ids)
}

// collect runs one OUE round over the group with budget eps.
func (e *Engine) collect(group []trajectory.Event, eps float64) []float64 {
	oracle := ldp.MustOUE(e.dom.Size(), eps)
	if e.opts.OracleMode == core.Aggregate {
		for i := range e.trueCounts {
			e.trueCounts[i] = 0
		}
		for _, ev := range group {
			idx, _ := e.dom.Index(ev.State)
			e.trueCounts[idx]++
		}
		return ldp.NewAggregateOracle(oracle).Collect(e.rng, e.trueCounts).EstimateAll()
	}
	agg := ldp.NewAggregator(oracle)
	for _, ev := range group {
		idx, _ := e.dom.Index(ev.State)
		agg.Add(oracle.Perturb(e.rng, idx))
	}
	return agg.EstimateAll()
}
