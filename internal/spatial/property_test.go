package spatial_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"retrasyn/internal/geofence"
	"retrasyn/internal/grid"
	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

// Cross-backend property tests: every spatial.Discretizer implementation
// must satisfy the same contract, so the transition domain, the mobility
// model and the synthesizer can treat backends interchangeably. Each
// property runs against the uniform grid, a family of quadtrees and a family
// of geofences (single cell, an irregular district partition with gaps and a
// checkerboard tiling).

func backends(t *testing.T) map[string]spatial.Discretizer {
	t.Helper()
	out := map[string]spatial.Discretizer{
		"uniform-k1": grid.MustNew(1, unitBounds()),
		"uniform-k4": grid.MustNew(4, unitBounds()),
		"uniform-k9": grid.MustNew(9, spatial.Bounds{MinX: -3, MinY: 2, MaxX: 14, MaxY: 7.5}),
	}
	for _, cfg := range []struct {
		leaves int
		n      int
		seed   uint64
	}{
		{1, 100, 11}, {16, 2000, 12}, {64, 6000, 13}, {256, 20000, 14},
	} {
		qt, err := spatial.NewQuadtree(unitBounds(), skewedSketch(cfg.n, cfg.seed), spatial.QuadtreeOptions{MaxLeaves: cfg.leaves})
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("quadtree-%d", cfg.leaves)] = qt
	}
	for name, polys := range map[string][]geofence.Polygon{
		"geofence-1":         {{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}},
		"geofence-districts": districtPolys(),
		"geofence-tiling":    tilingPolys(6),
	} {
		f, err := geofence.NewFence(polys)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = f
	}
	return out
}

// districtPolys is an irregular partial cover of the unit square: two
// rectangles, a triangle, a non-convex L and a detached quad across a gap.
func districtPolys() []geofence.Polygon {
	return []geofence.Polygon{
		{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.5, Y: 0.4}, {X: 0, Y: 0.4}},
		{{X: 0.5, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0.4}, {X: 0.5, Y: 0.4}},
		{{X: 0, Y: 0.4}, {X: 0.5, Y: 0.4}, {X: 0, Y: 1}},
		{{X: 0.55, Y: 0.6}, {X: 1, Y: 0.6}, {X: 1, Y: 1}, {X: 0.8, Y: 1}, {X: 0.8, Y: 0.8}, {X: 0.55, Y: 0.8}},
	}
}

// tilingPolys tiles the unit square with k×k square cells — the fence
// analogue of a uniform grid, but with 4-neighbour shared-edge adjacency.
func tilingPolys(k int) []geofence.Polygon {
	s := 1.0 / float64(k)
	var out []geofence.Polygon
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			x, y := float64(c)*s, float64(r)*s
			out = append(out, geofence.Polygon{
				{X: x, Y: y}, {X: x + s, Y: y}, {X: x + s, Y: y + s}, {X: x, Y: y + s},
			})
		}
	}
	return out
}

func TestPropertyAdjacencySymmetricAndReflexive(t *testing.T) {
	for name, sp := range backends(t) {
		t.Run(name, func(t *testing.T) {
			nc := sp.NumCells()
			for c := spatial.Cell(0); int(c) < nc; c++ {
				if !sp.Adjacent(c, c) {
					t.Fatalf("cell %d not adjacent to itself", c)
				}
				found := false
				for _, n := range sp.Neighbors(c) {
					if n == c {
						found = true
					}
					if !sp.ValidCell(n) {
						t.Fatalf("cell %d lists invalid neighbour %d", c, n)
					}
					if !sp.Adjacent(n, c) {
						t.Fatalf("adjacency not symmetric: %d→%d but not %d→%d", c, n, n, c)
					}
					if sp.NeighborRank(n, c) < 0 {
						t.Fatalf("symmetric rank missing for %d in Neighbors(%d)", c, n)
					}
				}
				if !found {
					t.Fatalf("Neighbors(%d) omits the cell itself", c)
				}
			}
		})
	}
}

func TestPropertyNeighborRankIsInverse(t *testing.T) {
	for name, sp := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for c := spatial.Cell(0); int(c) < sp.NumCells(); c++ {
				seen := map[spatial.Cell]bool{}
				for r, n := range sp.Neighbors(c) {
					if seen[n] {
						t.Fatalf("Neighbors(%d) lists %d twice", c, n)
					}
					seen[n] = true
					if got := sp.NeighborRank(c, n); got != r {
						t.Fatalf("NeighborRank(%d,%d) = %d, want %d", c, n, got, r)
					}
					if !sp.Adjacent(c, n) {
						t.Fatalf("listed neighbour %d of %d not Adjacent", n, c)
					}
				}
			}
		})
	}
}

func TestPropertyCenterRoundTripsToCell(t *testing.T) {
	for name, sp := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for c := spatial.Cell(0); int(c) < sp.NumCells(); c++ {
				x, y := sp.Center(c)
				if !sp.Bounds().Contains(x, y) {
					t.Fatalf("Center(%d) = (%v,%v) outside bounds", c, x, y)
				}
				if got := sp.CellOf(x, y); got != c {
					t.Fatalf("CellOf(Center(%d)) = %d", c, got)
				}
			}
		})
	}
}

func TestPropertyRandomPointsLandInValidCells(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	for name, sp := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := sp.Bounds()
			for i := 0; i < 2000; i++ {
				x := b.MinX + rng.Float64()*b.Width()
				y := b.MinY + rng.Float64()*b.Height()
				c, ok := sp.CellOfOK(x, y)
				if !ok || !sp.ValidCell(c) {
					t.Fatalf("interior point (%v,%v) mapped to (%d,%v)", x, y, c, ok)
				}
			}
		})
	}
}

func TestPropertyDomainIndexBijective(t *testing.T) {
	for name, sp := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, dom := range []*transition.Domain{transition.NewDomain(sp), transition.NewMoveOnlyDomain(sp)} {
				seen := make([]bool, dom.Size())
				for idx := 0; idx < dom.Size(); idx++ {
					st := dom.StateAt(idx)
					back, ok := dom.Index(st)
					if !ok || back != idx {
						t.Fatalf("Index(StateAt(%d)) = (%d,%v)", idx, back, ok)
					}
					if seen[idx] {
						t.Fatalf("index %d hit twice", idx)
					}
					seen[idx] = true
				}
			}
		})
	}
}

func TestPropertyDomainSizeBound(t *testing.T) {
	// |S| = Σ_c |Neighbors(c)| + 2|C| ≤ 11·|C|: the grid's 3×3 blocks give
	// ≤ 9 neighbours per cell; quadtree touching-adjacency averages below 9
	// because side-sharing pairs form a planar graph and corner-only pairs
	// are bounded by the split count.
	for name, sp := range backends(t) {
		t.Run(name, func(t *testing.T) {
			dom := transition.NewDomain(sp)
			nc := sp.NumCells()
			if dom.Size() != sp.TotalMoveStates()+2*nc {
				t.Fatalf("domain size %d ≠ moves %d + 2·%d", dom.Size(), sp.TotalMoveStates(), nc)
			}
			if dom.Size() > 11*nc {
				t.Fatalf("|S| = %d exceeds 11·|C| = %d", dom.Size(), 11*nc)
			}
		})
	}
}

func TestPropertyFingerprintStableAndDistinct(t *testing.T) {
	bks := backends(t)
	seen := map[string]string{}
	for name, sp := range bks {
		fp := sp.Fingerprint()
		if fp == "" {
			t.Fatalf("%s: empty fingerprint", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("backends %s and %s share fingerprint %s", name, prev, fp)
		}
		seen[fp] = name
		if sp.Fingerprint() != fp {
			t.Fatalf("%s: fingerprint not stable across calls", name)
		}
	}
}
