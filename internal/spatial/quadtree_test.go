package spatial_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"retrasyn/internal/spatial"
)

func unitBounds() spatial.Bounds {
	return spatial.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
}

// skewedSketch clusters most density mass in the bottom-left corner with a
// sparse uniform background — the city-center-plus-suburbs shape adaptive
// partitioning exists for.
func skewedSketch(n int, seed uint64) []spatial.Point {
	rng := rand.New(rand.NewPCG(seed, seed^0xdeadbeef))
	pts := make([]spatial.Point, 0, n)
	for i := 0; i < n; i++ {
		if i%10 == 0 { // background
			pts = append(pts, spatial.Point{X: rng.Float64(), Y: rng.Float64()})
		} else { // hotspot in [0, 0.25)²
			pts = append(pts, spatial.Point{X: rng.Float64() * 0.25, Y: rng.Float64() * 0.25})
		}
	}
	return pts
}

func TestQuadtreeRespectsLeafBudget(t *testing.T) {
	for _, budget := range []int{1, 4, 7, 16, 64, 200} {
		qt, err := spatial.NewQuadtree(unitBounds(), skewedSketch(5000, 1), spatial.QuadtreeOptions{MaxLeaves: budget})
		if err != nil {
			t.Fatal(err)
		}
		if qt.NumCells() > budget {
			t.Fatalf("budget %d produced %d leaves", budget, qt.NumCells())
		}
		if qt.NumCells() < 1 {
			t.Fatalf("budget %d produced empty tree", budget)
		}
	}
}

func TestQuadtreeSingleLeafDegenerate(t *testing.T) {
	qt, err := spatial.NewQuadtree(unitBounds(), skewedSketch(100, 2), spatial.QuadtreeOptions{MaxLeaves: 3})
	if err != nil {
		t.Fatal(err)
	}
	if qt.NumCells() != 1 {
		t.Fatalf("budget 3 cannot split: want 1 leaf, got %d", qt.NumCells())
	}
	if got := qt.CellOf(0.5, 0.5); got != 0 {
		t.Fatalf("single-leaf CellOf = %d", got)
	}
	ns := qt.Neighbors(0)
	if len(ns) != 1 || ns[0] != 0 {
		t.Fatalf("single leaf neighbours = %v", ns)
	}
}

func TestQuadtreeAdaptsToDensity(t *testing.T) {
	qt, err := spatial.NewQuadtree(unitBounds(), skewedSketch(8000, 3), spatial.QuadtreeOptions{MaxLeaves: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The hotspot corner must be partitioned finer than the cold opposite
	// corner: compare leaf areas at the two extremes.
	hot := qt.CellBox(qt.CellOf(0.05, 0.05))
	cold := qt.CellBox(qt.CellOf(0.95, 0.95))
	hotArea := hot.Width() * hot.Height()
	coldArea := cold.Width() * cold.Height()
	if hotArea >= coldArea {
		t.Fatalf("hotspot leaf area %v not finer than cold leaf area %v", hotArea, coldArea)
	}
}

func TestQuadtreeDeterministicBuildAndFingerprint(t *testing.T) {
	build := func() *spatial.Quadtree {
		qt, err := spatial.NewQuadtree(unitBounds(), skewedSketch(4000, 7), spatial.QuadtreeOptions{MaxLeaves: 48})
		if err != nil {
			t.Fatal(err)
		}
		return qt
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical builds fingerprint differently:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	if a.NumCells() != b.NumCells() {
		t.Fatalf("identical builds disagree on cell count: %d vs %d", a.NumCells(), b.NumCells())
	}
	for c := spatial.Cell(0); int(c) < a.NumCells(); c++ {
		if a.CellBox(c) != b.CellBox(c) {
			t.Fatalf("cell %d box differs between identical builds", c)
		}
	}
	// A different layout must fingerprint differently.
	other, err := spatial.NewQuadtree(unitBounds(), skewedSketch(4000, 7), spatial.QuadtreeOptions{MaxLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	if other.Fingerprint() == a.Fingerprint() {
		t.Fatal("different leaf budgets produced equal fingerprints")
	}
}

func TestQuadtreeCellOfClampsAndRejects(t *testing.T) {
	qt, err := spatial.NewQuadtree(unitBounds(), skewedSketch(2000, 9), spatial.QuadtreeOptions{MaxLeaves: 32})
	if err != nil {
		t.Fatal(err)
	}
	inside := qt.CellOf(0.999, 0.999)
	clamped := qt.CellOf(5, 5)
	if inside != clamped {
		t.Fatalf("out-of-bounds point not clamped to the boundary leaf: %d vs %d", clamped, inside)
	}
	if c, ok := qt.CellOfOK(5, 5); ok || c != spatial.Invalid {
		t.Fatalf("CellOfOK outside bounds = (%d, %v)", c, ok)
	}
	if _, ok := qt.CellOfOK(0.2, 0.2); !ok {
		t.Fatal("CellOfOK rejected an interior point")
	}
}

func TestQuadtreeOptionValidation(t *testing.T) {
	b := unitBounds()
	pts := skewedSketch(10, 1)
	if _, err := spatial.NewQuadtree(b, pts, spatial.QuadtreeOptions{MaxLeaves: 0}); err == nil {
		t.Fatal("MaxLeaves 0 accepted")
	}
	if _, err := spatial.NewQuadtree(b, pts, spatial.QuadtreeOptions{MaxLeaves: 8, MaxDepth: -1}); err == nil {
		t.Fatal("negative MaxDepth accepted")
	}
	if _, err := spatial.NewQuadtree(b, pts, spatial.QuadtreeOptions{MaxLeaves: 8, MinPoints: -2}); err == nil {
		t.Fatal("negative MinPoints accepted")
	}
	if _, err := spatial.NewQuadtree(spatial.Bounds{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, pts, spatial.QuadtreeOptions{MaxLeaves: 8}); err == nil {
		t.Fatal("degenerate bounds accepted")
	}
	// An empty sketch is allowed and degenerates to the single root leaf.
	qt, err := spatial.NewQuadtree(b, nil, spatial.QuadtreeOptions{MaxLeaves: 8})
	if err != nil {
		t.Fatal(err)
	}
	if qt.NumCells() != 1 {
		t.Fatalf("empty sketch: want 1 leaf, got %d", qt.NumCells())
	}
}

func TestQuadtreeDropsNonFiniteSketchPoints(t *testing.T) {
	// Non-finite coordinates fail every quadrant comparison; if kept they
	// would sink into the SW child at each level and burn the whole split
	// budget on empty corner cells. They must be dropped from the sketch.
	bad := []spatial.Point{
		{X: math.NaN(), Y: 0.5}, {X: 0.5, Y: math.NaN()},
		{X: math.Inf(1), Y: 0.5}, {X: 0.5, Y: math.Inf(-1)},
	}
	poisoned := append(append([]spatial.Point{}, bad...), bad...) // ≥ MinPoints of garbage
	clean := skewedSketch(2000, 21)
	a, err := spatial.NewQuadtree(unitBounds(), append(poisoned, clean...), spatial.QuadtreeOptions{MaxLeaves: 32})
	if err != nil {
		t.Fatal(err)
	}
	b, err := spatial.NewQuadtree(unitBounds(), clean, spatial.QuadtreeOptions{MaxLeaves: 32})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("non-finite sketch points changed the tree layout")
	}
	// A sketch of only garbage degenerates to the root leaf.
	g, err := spatial.NewQuadtree(unitBounds(), bad, spatial.QuadtreeOptions{MaxLeaves: 32, MinPoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 1 {
		t.Fatalf("all-garbage sketch built %d cells", g.NumCells())
	}
}

func TestQuadtreeMaxDepthCap(t *testing.T) {
	// All mass at one point: splitting can never separate it, so only
	// MaxDepth stops the greedy loop before the leaf budget.
	pts := make([]spatial.Point, 1000)
	for i := range pts {
		pts[i] = spatial.Point{X: 0.1, Y: 0.1}
	}
	qt, err := spatial.NewQuadtree(unitBounds(), pts, spatial.QuadtreeOptions{MaxLeaves: 1 << 20, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := qt.MaxLeafDepth(); got > 3 {
		t.Fatalf("leaf depth %d exceeds MaxDepth 3", got)
	}
	// Depth-3 full subdivision has at most 4³ leaves; the degenerate mass
	// splits only one path, so far fewer.
	if qt.NumCells() > 64 {
		t.Fatalf("depth-capped tree has %d leaves", qt.NumCells())
	}
}

// TestQuadtreeSplitMaskRoundTrip pins the layout codec checkpoints rely on:
// a tree rebuilt from its preorder split mask is layout-identical — same
// cells, boxes, adjacency and fingerprint.
func TestQuadtreeSplitMaskRoundTrip(t *testing.T) {
	q, err := spatial.NewQuadtree(unitBounds(), skewedSketch(4000, 77), spatial.QuadtreeOptions{MaxLeaves: 48})
	if err != nil {
		t.Fatal(err)
	}
	mask := q.SplitMask()
	r, err := spatial.NewQuadtreeFromSplits(q.Bounds(), mask)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fingerprint() != q.Fingerprint() {
		t.Fatalf("rebuilt fingerprint %s ≠ original %s", r.Fingerprint(), q.Fingerprint())
	}
	if r.NumCells() != q.NumCells() || r.TotalMoveStates() != q.TotalMoveStates() {
		t.Fatalf("rebuilt shape (%d cells, %d moves) ≠ original (%d, %d)",
			r.NumCells(), r.TotalMoveStates(), q.NumCells(), q.TotalMoveStates())
	}
	for c := 0; c < q.NumCells(); c++ {
		if r.CellBox(spatial.Cell(c)) != q.CellBox(spatial.Cell(c)) {
			t.Fatalf("cell %d box differs after round-trip", c)
		}
	}
}

// TestQuadtreeFromSplitsRejectsMalformed covers truncated and oversized
// masks and invalid bounds.
func TestQuadtreeFromSplitsRejectsMalformed(t *testing.T) {
	if _, err := spatial.NewQuadtreeFromSplits(unitBounds(), nil); err == nil {
		t.Fatal("empty mask accepted")
	}
	if _, err := spatial.NewQuadtreeFromSplits(unitBounds(), []bool{true, false, false}); err == nil {
		t.Fatal("truncated mask accepted")
	}
	if _, err := spatial.NewQuadtreeFromSplits(unitBounds(), []bool{false, false}); err == nil {
		t.Fatal("trailing entries accepted")
	}
	if _, err := spatial.NewQuadtreeFromSplits(spatial.Bounds{}, []bool{false}); err == nil {
		t.Fatal("invalid bounds accepted")
	}
}
