package spatial

import (
	"container/heap"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
)

// Density-adaptive quadtree discretization. The tree is grown greedily from
// a public/historical density sketch: starting from one root cell, the leaf
// holding the most density points is split into its four quadrants, until a
// max-leaf budget is exhausted or no leaf is worth splitting. Hot regions
// end up finely partitioned while cold regions stay coarse — the adaptive
// partitioning LDPTrace and PrivTrace use to make trajectory synthesis
// scale to skewed city-sized domains. A smaller, better-targeted cell set
// shrinks the transition-state domain |S|, and with it the per-state OUE
// variance Var ≈ 4e^ε/(n(e^ε−1)²) · |S| spread across fewer wasted states.
//
// The density sketch must be public knowledge (e.g. a historical release or
// a coarse census): the tree layout is derived from it without touching the
// private stream, so building the discretizer consumes no privacy budget.

// QuadtreeOptions configures NewQuadtree.
type QuadtreeOptions struct {
	// MaxLeaves is the leaf budget: the tree stops splitting when another
	// split would exceed this many leaves. Must be ≥ 1. Budgets below 4
	// yield the single root cell.
	MaxLeaves int
	// MaxDepth caps the tree depth (root at depth 0); a leaf at MaxDepth is
	// never split regardless of its density. Default 12.
	MaxDepth int
	// MinPoints is the split threshold: a leaf holding fewer than MinPoints
	// density points stays whole. Default 2.
	MinPoints int
}

func (o *QuadtreeOptions) defaults() error {
	if o.MaxLeaves < 1 {
		return fmt.Errorf("spatial: quadtree MaxLeaves must be ≥ 1, got %d", o.MaxLeaves)
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.MaxDepth < 0 {
		return fmt.Errorf("spatial: quadtree MaxDepth must be ≥ 0, got %d", o.MaxDepth)
	}
	if o.MinPoints == 0 {
		o.MinPoints = 2
	}
	if o.MinPoints < 1 {
		return fmt.Errorf("spatial: quadtree MinPoints must be ≥ 1, got %d", o.MinPoints)
	}
	return nil
}

// qnode is one tree node; leaves carry their final cell index.
type qnode struct {
	box      Bounds
	depth    int
	children [4]int32 // node indices; -1 for leaves. Quadrant order SW, SE, NW, NE.
	cell     Cell     // leaf cell index; -1 for internal nodes
}

func (n *qnode) isLeaf() bool { return n.children[0] < 0 }

// Quadtree is a density-adaptive spatial discretization. It is immutable
// after construction and safe for concurrent use.
type Quadtree struct {
	opts   QuadtreeOptions
	bounds Bounds
	nodes  []qnode
	// leafBox[c] is the box of cell c; leafCount[c] the sketch points it
	// absorbed (retained for diagnostics).
	leafBox   []Bounds
	leafCount []int
	neighbors [][]Cell
	nMove     int
	fp        string
}

// buildLeaf is a growing leaf during construction.
type buildLeaf struct {
	node   int32
	seq    int32 // creation order, the deterministic tie-break
	points []Point
}

// leafHeap pops the leaf with the most density points; ties resolve to the
// earliest-created leaf so builds are fully deterministic.
type leafHeap []*buildLeaf

func (h leafHeap) Len() int { return len(h) }
func (h leafHeap) Less(i, j int) bool {
	if len(h[i].points) != len(h[j].points) {
		return len(h[i].points) > len(h[j].points)
	}
	return h[i].seq < h[j].seq
}
func (h leafHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *leafHeap) Push(x any)     { *h = append(*h, x.(*buildLeaf)) }
func (h *leafHeap) Pop() (top any) { old := *h; n := len(old); top = old[n-1]; *h = old[:n-1]; return }

// NewQuadtree grows a density-adaptive quadtree over the bounds from a
// density sketch (points of public/historical data; see the package note on
// why the sketch must not be the private stream). Points outside the bounds
// are clamped onto them, matching CellOf.
func NewQuadtree(b Bounds, density []Point, opts QuadtreeOptions) (*Quadtree, error) {
	if !b.Valid() {
		return nil, fmt.Errorf("spatial: invalid quadtree bounds %+v", b)
	}
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	q := &Quadtree{opts: opts, bounds: b}
	root := &buildLeaf{node: 0, seq: 0, points: make([]Point, 0, len(density))}
	for _, p := range density {
		// Non-finite coordinates fail every quadrant comparison and would
		// sink into the SW child at each level, hijacking the split budget
		// for empty corner cells — drop them from the sketch instead.
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			continue
		}
		root.points = append(root.points, Point{X: clampF(p.X, b.MinX, b.MaxX), Y: clampF(p.Y, b.MinY, b.MaxY)})
	}
	q.nodes = []qnode{{box: b, children: [4]int32{-1, -1, -1, -1}, cell: -1}}

	h := &leafHeap{root}
	leaves := 1
	seq := int32(1)
	counts := map[int32]int{0: len(root.points)}
	for h.Len() > 0 && leaves+3 <= opts.MaxLeaves {
		top := heap.Pop(h).(*buildLeaf)
		n := &q.nodes[top.node]
		if len(top.points) < opts.MinPoints || n.depth >= opts.MaxDepth {
			continue // stays a leaf; smaller leaves may still be splittable
		}
		midX, midY := (n.box.MinX+n.box.MaxX)/2, (n.box.MinY+n.box.MaxY)/2
		quads := [4]Bounds{
			{n.box.MinX, n.box.MinY, midX, midY}, // SW
			{midX, n.box.MinY, n.box.MaxX, midY}, // SE
			{n.box.MinX, midY, midX, n.box.MaxY}, // NW
			{midX, midY, n.box.MaxX, n.box.MaxY}, // NE
		}
		childDepth := n.depth + 1
		var parts [4][]Point
		for _, p := range top.points {
			qi := quadrantOf(p, midX, midY)
			parts[qi] = append(parts[qi], p)
		}
		for i := 0; i < 4; i++ {
			child := int32(len(q.nodes))
			q.nodes = append(q.nodes, qnode{box: quads[i], depth: childDepth, children: [4]int32{-1, -1, -1, -1}, cell: -1})
			q.nodes[top.node].children[i] = child
			counts[child] = len(parts[i])
			heap.Push(h, &buildLeaf{node: child, seq: seq, points: parts[i]})
			seq++
		}
		delete(counts, top.node)
		leaves += 3
	}

	// Freeze the layout: leaves get dense cell indices in pre-order DFS
	// (children SW, SE, NW, NE), a stable order independent of split order.
	q.leafBox = make([]Bounds, 0, leaves)
	q.leafCount = make([]int, 0, leaves)
	q.indexLeaves(0, counts)
	q.buildNeighbors()
	q.fp = q.computeFingerprint()
	return q, nil
}

func quadrantOf(p Point, midX, midY float64) int {
	i := 0
	if p.X >= midX {
		i |= 1
	}
	if p.Y >= midY {
		i |= 2
	}
	return i
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (q *Quadtree) indexLeaves(node int32, counts map[int32]int) {
	n := &q.nodes[node]
	if n.isLeaf() {
		n.cell = Cell(len(q.leafBox))
		q.leafBox = append(q.leafBox, n.box)
		q.leafCount = append(q.leafCount, counts[node])
		return
	}
	for _, c := range n.children {
		q.indexLeaves(c, counts)
	}
}

// buildNeighbors links every pair of leaves whose boxes touch (shared edge
// segment or corner — the quadtree analogue of the grid's 8-neighbourhood),
// plus each leaf itself. Quadratic over leaves, which is fine for the leaf
// budgets the LDP domain can afford anyway (|S| bits per report).
func (q *Quadtree) buildNeighbors() {
	nc := len(q.leafBox)
	q.neighbors = make([][]Cell, nc)
	for i := 0; i < nc; i++ {
		q.neighbors[i] = append(q.neighbors[i], Cell(i))
	}
	for i := 0; i < nc; i++ {
		bi := q.leafBox[i]
		for j := i + 1; j < nc; j++ {
			bj := q.leafBox[j]
			// Sibling boxes share exact float midpoints, so touching edges
			// compare equal without a tolerance.
			if bi.MinX <= bj.MaxX && bj.MinX <= bi.MaxX && bi.MinY <= bj.MaxY && bj.MinY <= bi.MaxY {
				q.neighbors[i] = append(q.neighbors[i], Cell(j))
				q.neighbors[j] = append(q.neighbors[j], Cell(i))
			}
		}
	}
	q.nMove = 0
	for i := range q.neighbors {
		ns := q.neighbors[i]
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
		q.nMove += len(ns)
	}
}

func (q *Quadtree) computeFingerprint() string {
	h := sha256.New()
	var buf [8]byte
	putF := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	putF(q.bounds.MinX)
	putF(q.bounds.MinY)
	putF(q.bounds.MaxX)
	putF(q.bounds.MaxY)
	for _, b := range q.leafBox {
		putF(b.MinX)
		putF(b.MinY)
		putF(b.MaxX)
		putF(b.MaxY)
	}
	return fmt.Sprintf("quadtree:v1:leaves=%d:%s", len(q.leafBox), hex.EncodeToString(h.Sum(nil)[:16]))
}

// NumCells returns the number of leaves.
func (q *Quadtree) NumCells() int { return len(q.leafBox) }

// Bounds returns the continuous bounding box.
func (q *Quadtree) Bounds() Bounds { return q.bounds }

// CellBox returns the box of cell c (for diagnostics and visualization).
func (q *Quadtree) CellBox(c Cell) Bounds { return q.leafBox[c] }

// CellDensity returns the number of sketch points cell c absorbed during
// construction.
func (q *Quadtree) CellDensity(c Cell) int { return q.leafCount[c] }

// CellOf maps a continuous point into its leaf, clamping points outside the
// bounds onto the nearest boundary leaf.
func (q *Quadtree) CellOf(x, y float64) Cell {
	x = clampF(x, q.bounds.MinX, q.bounds.MaxX)
	y = clampF(y, q.bounds.MinY, q.bounds.MaxY)
	node := int32(0)
	for !q.nodes[node].isLeaf() {
		n := &q.nodes[node]
		midX, midY := (n.box.MinX+n.box.MaxX)/2, (n.box.MinY+n.box.MaxY)/2
		node = n.children[quadrantOf(Point{X: x, Y: y}, midX, midY)]
	}
	return q.nodes[node].cell
}

// CellOfOK maps a continuous point into its leaf, returning Invalid and
// false when the point lies outside the bounds.
func (q *Quadtree) CellOfOK(x, y float64) (Cell, bool) {
	if !q.bounds.Contains(x, y) {
		return Invalid, false
	}
	return q.CellOf(x, y), true
}

// Center returns the centroid of cell c's box.
func (q *Quadtree) Center(c Cell) (x, y float64) {
	b := q.leafBox[c]
	return (b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2
}

// ValidCell reports whether c is a leaf of this tree.
func (q *Quadtree) ValidCell(c Cell) bool { return c >= 0 && int(c) < len(q.leafBox) }

// Neighbors returns the leaves whose boxes touch c's box (including c
// itself), sorted by cell index. The returned slice is shared and must not
// be modified.
func (q *Quadtree) Neighbors(c Cell) []Cell { return q.neighbors[c] }

// NeighborRank returns the position of b within Neighbors(a), or -1 when b
// is not reachable from a.
func (q *Quadtree) NeighborRank(a, b Cell) int {
	ns := q.neighbors[a]
	// Neighbor lists are sorted; binary search keeps hot-path lookups cheap
	// even for leaves bordering many finer cells.
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ns) && ns[lo] == b {
		return lo
	}
	return -1
}

// Adjacent reports whether a transition from a to b satisfies the
// reachability constraint.
func (q *Quadtree) Adjacent(a, b Cell) bool { return q.NeighborRank(a, b) >= 0 }

// TotalMoveStates returns Σ_c |Neighbors(c)|.
func (q *Quadtree) TotalMoveStates() int { return q.nMove }

// Fingerprint returns the stable layout identifier.
func (q *Quadtree) Fingerprint() string { return q.fp }

// SplitMask returns the tree structure as a preorder bit mask: true for an
// internal node (followed by its four children in SW, SE, NW, NE order),
// false for a leaf. Together with the bounds it fully determines the layout
// — quadrant midpoints are recomputed, so NewQuadtreeFromSplits reconstructs
// a tree with identical cell boxes, adjacency and fingerprint. This is the
// serialization checkpoints use to restore an engine that migrated onto a
// rebuilt layout.
func (q *Quadtree) SplitMask() []bool {
	out := make([]bool, 0, len(q.nodes))
	var walk func(node int32)
	walk = func(node int32) {
		n := &q.nodes[node]
		if n.isLeaf() {
			out = append(out, false)
			return
		}
		out = append(out, true)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(0)
	return out
}

// NewQuadtreeFromSplits reconstructs a quadtree from a bounds box and a
// preorder split mask produced by SplitMask. The rebuilt tree is
// layout-identical to the original: same cell boxes, same DFS cell indices,
// same adjacency, same fingerprint. Per-cell sketch densities are not part
// of the mask and come back as zero.
func NewQuadtreeFromSplits(b Bounds, splits []bool) (*Quadtree, error) {
	if !b.Valid() {
		return nil, fmt.Errorf("spatial: invalid quadtree bounds %+v", b)
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("spatial: empty quadtree split mask")
	}
	q := &Quadtree{bounds: b}
	pos := 0
	var build func(box Bounds, depth int) (int32, error)
	build = func(box Bounds, depth int) (int32, error) {
		if pos >= len(splits) {
			return -1, fmt.Errorf("spatial: truncated quadtree split mask (len %d)", len(splits))
		}
		split := splits[pos]
		pos++
		node := int32(len(q.nodes))
		q.nodes = append(q.nodes, qnode{box: box, depth: depth, children: [4]int32{-1, -1, -1, -1}, cell: -1})
		if !split {
			return node, nil
		}
		midX, midY := (box.MinX+box.MaxX)/2, (box.MinY+box.MaxY)/2
		quads := [4]Bounds{
			{box.MinX, box.MinY, midX, midY},
			{midX, box.MinY, box.MaxX, midY},
			{box.MinX, midY, midX, box.MaxY},
			{midX, midY, box.MaxX, box.MaxY},
		}
		for i := 0; i < 4; i++ {
			child, err := build(quads[i], depth+1)
			if err != nil {
				return -1, err
			}
			q.nodes[node].children[i] = child
		}
		return node, nil
	}
	if _, err := build(b, 0); err != nil {
		return nil, err
	}
	if pos != len(splits) {
		return nil, fmt.Errorf("spatial: quadtree split mask has %d trailing entries", len(splits)-pos)
	}
	q.indexLeaves(0, map[int32]int{})
	q.buildNeighbors()
	q.fp = q.computeFingerprint()
	return q, nil
}

// MaxLeafDepth returns the depth of the deepest leaf (diagnostics).
func (q *Quadtree) MaxLeafDepth() int {
	d := 0
	for i := range q.nodes {
		if q.nodes[i].isLeaf() && q.nodes[i].depth > d {
			d = q.nodes[i].depth
		}
	}
	return d
}

var (
	_ Discretizer = (*Quadtree)(nil)
	_ Boxed       = (*Quadtree)(nil)
)
