// Package spatial defines the pluggable spatial discretization the engine
// runs on. RetraSyn (paper §III-B) fixes a uniform K×K grid; this package
// lifts that choice into a Discretizer interface — a finite cell domain with
// a reachability adjacency structure — so the transition-state domain, the
// mobility model and the synthesizer work over any partitioning of the
// space. Two backends ship with the library: the paper's uniform grid
// (internal/grid, bit-identical to the original engine) and the
// density-adaptive quadtree in this package, which splits hot regions and
// leaves cold ones coarse so skewed real-world data stops spending its
// privacy budget on empty cells.
package spatial

import "math"

// Cell identifies one cell of a discretization as a dense index in
// [0, NumCells). The index space is contiguous: every backend assigns its
// cells the integers 0 … NumCells−1 in a deterministic order.
type Cell int32

// Invalid is returned by CellOfOK for points outside the bounds.
const Invalid Cell = -1

// Bounds describes the continuous bounding box of the space being
// discretized. Max coordinates are exclusive for interior points; points
// exactly on the max edge are clamped into the last row/column, matching the
// common half-open convention for spatial partitioning.
type Bounds struct {
	MinX, MinY, MaxX, MaxY float64
}

// Valid reports whether the bounds describe a non-degenerate box.
func (b Bounds) Valid() bool {
	return b.MaxX > b.MinX && b.MaxY > b.MinY &&
		!math.IsNaN(b.MinX) && !math.IsNaN(b.MinY) &&
		!math.IsInf(b.MaxX, 0) && !math.IsInf(b.MaxY, 0)
}

// Contains reports whether (x, y) lies inside the bounds (max edges
// inclusive, consistent with CellOf clamping).
func (b Bounds) Contains(x, y float64) bool {
	return x >= b.MinX && x <= b.MaxX && y >= b.MinY && y <= b.MaxY
}

// Width returns MaxX − MinX.
func (b Bounds) Width() float64 { return b.MaxX - b.MinX }

// Height returns MaxY − MinY.
func (b Bounds) Height() float64 { return b.MaxY - b.MinY }

// Area returns Width × Height.
func (b Bounds) Area() float64 { return b.Width() * b.Height() }

// Intersect returns the overlap box of b and o and whether it has positive
// area (boxes that merely share an edge or corner do not intersect).
func (b Bounds) Intersect(o Bounds) (Bounds, bool) {
	r := Bounds{
		MinX: math.Max(b.MinX, o.MinX),
		MinY: math.Max(b.MinY, o.MinY),
		MaxX: math.Min(b.MaxX, o.MaxX),
		MaxY: math.Min(b.MaxY, o.MaxY),
	}
	return r, r.MaxX > r.MinX && r.MaxY > r.MinY
}

// Point is a continuous two-dimensional location, used for density sketches.
type Point struct {
	X, Y float64
}

// Discretizer is a finite partitioning of a bounded continuous space into
// cells with a reachability adjacency structure. Implementations are
// immutable after construction and safe for concurrent use.
//
// The contract every backend must satisfy (pinned by the shared property
// tests in this package):
//
//   - cells form the dense index space [0, NumCells)
//   - adjacency is reflexive (c ∈ Neighbors(c)) and symmetric
//   - Neighbors returns a deterministic order; NeighborRank is its inverse
//   - CellOf(Center(c)) == c — the sample point of a cell round-trips
//   - Fingerprint is stable across processes for identical constructions,
//     so checkpoints can reject restores into a different discretization
type Discretizer interface {
	// NumCells returns |C|, the number of cells.
	NumCells() int
	// Bounds returns the continuous bounding box of the space.
	Bounds() Bounds
	// CellOf maps a continuous point into its cell, clamping points outside
	// the bounds onto the nearest boundary cell.
	CellOf(x, y float64) Cell
	// CellOfOK maps a continuous point into its cell, returning Invalid and
	// false when the point lies outside the bounds. The test is against
	// Bounds(), not cell coverage: backends whose cells do not tile the
	// bounds (the geofence) resolve in-bounds gap points by clamping, like
	// CellOf, and expose their own coverage query (geofence.Fence.Covers)
	// for callers that need the distinction.
	CellOfOK(x, y float64) (Cell, bool)
	// Center returns the continuous sample point of a cell (its centroid),
	// the coordinate downstream consumers use when a released cell stream
	// must be mapped back to continuous space. The contract pinned by the
	// property tests is CellOf(Center(c)) == c.
	Center(c Cell) (x, y float64)
	// ValidCell reports whether c is a cell of this discretization.
	ValidCell(c Cell) bool
	// Neighbors returns the cells reachable from c in one timestamp under
	// the reachability constraint, always including c itself, in a
	// deterministic order. The returned slice is shared and must not be
	// modified.
	Neighbors(c Cell) []Cell
	// NeighborRank returns the position of b within Neighbors(a), or -1
	// when b is not reachable from a. The rank is stable and indexes
	// per-source-cell movement states.
	NeighborRank(a, b Cell) int
	// Adjacent reports whether a transition from a to b satisfies the
	// reachability constraint (b ∈ Neighbors(a), possibly a itself).
	Adjacent(a, b Cell) bool
	// TotalMoveStates returns Σ_c |Neighbors(c)|, the number of movement
	// transition states under the reachability constraint.
	TotalMoveStates() int
	// Fingerprint returns a stable identifier of the discretization —
	// backend kind, parameters and cell layout — used by checkpoint
	// fingerprints to refuse restoring state across different domains.
	Fingerprint() string
}

// Boxed is implemented by discretizers whose cells are axis-aligned boxes
// tiling the bounds exactly (the uniform grid and the quadtree both are).
// Cell boxes are what online re-discretization needs: the overlap areas
// between an old and a new layout's boxes define the weights that resample
// engine state across layouts.
type Boxed interface {
	// CellBox returns the continuous box of cell c. Boxes of distinct cells
	// have disjoint interiors and together cover Bounds().
	CellBox(c Cell) Bounds
}

// Overlapper is implemented by discretizers whose cells are arbitrary simple
// polygons rather than axis-aligned boxes (the geofence backend). Each cell
// exposes a convex decomposition of its geometry; overlap areas between two
// layouts — polygon–polygon, or polygon–box with the box treated as a single
// convex piece — are then sums of pairwise convex clips (Sutherland–Hodgman),
// which is what lets non-rectangular layouts join online re-discretization.
// Boxed backends need not implement it: the migration layer keeps a
// bit-identical box-intersection fast path for box–box pairs.
type Overlapper interface {
	// CellPieces returns a convex decomposition of cell c: counter-clockwise
	// vertex rings with disjoint interiors whose union is exactly the cell.
	// The returned slices are shared and must not be modified.
	CellPieces(c Cell) [][]Point
	// CellArea returns the area of cell c (the sum of its pieces' areas).
	// Unlike Boxed layouts, Overlapper cells need not tile Bounds(): the
	// union of all cells may cover only part of the bounding box.
	CellArea(c Cell) float64
}
