package dmu

import (
	"math"
	"testing"
	"testing/quick"

	"retrasyn/internal/ldp"
)

func TestSelectThreshold(t *testing.T) {
	// ε=1, n=100 → ErrUpd = 4e/(100(e−1)²) ≈ 0.036832.
	eps, n := 1.0, 100
	errUpd := ldp.Variance(eps, n)
	sd := math.Sqrt(errUpd)

	current := []float64{0.5, 0.5, 0.5, 0.5}
	estimated := []float64{
		0.5,        // no drift → not significant
		0.5 + sd/2, // drift² = errUpd/4 → not significant
		0.5 + 2*sd, // drift² = 4·errUpd → significant
		0.5 - 3*sd, // negative drift also significant
	}
	sel := Select(current, estimated, eps, n)
	want := []int{2, 3}
	if len(sel.Significant) != len(want) {
		t.Fatalf("Significant = %v, want %v", sel.Significant, want)
	}
	for i, idx := range want {
		if sel.Significant[i] != idx {
			t.Fatalf("Significant = %v, want %v", sel.Significant, want)
		}
	}
	if math.Abs(sel.ErrUpd-errUpd) > 1e-15 {
		t.Fatalf("ErrUpd = %v, want %v", sel.ErrUpd, errUpd)
	}
}

func TestSelectTotalErr(t *testing.T) {
	eps, n := 1.0, 50
	errUpd := ldp.Variance(eps, n)
	current := []float64{0, 0}
	estimated := []float64{0.001, 10} // tiny drift, huge drift
	sel := Select(current, estimated, eps, n)
	want := 0.001*0.001 + errUpd
	if math.Abs(sel.TotalErr-want) > 1e-12 {
		t.Fatalf("TotalErr = %v, want %v", sel.TotalErr, want)
	}
}

func TestSelectBoundaryNotSignificant(t *testing.T) {
	// Drift² at (or within float error just below) ErrUpd keeps the
	// approximation — selection requires strictly exceeding the threshold.
	eps, n := 1.0, 100
	sd := math.Sqrt(ldp.Variance(eps, n)) * (1 - 1e-12)
	sel := Select([]float64{0}, []float64{sd}, eps, n)
	if len(sel.Significant) != 0 {
		t.Fatalf("boundary drift selected: %v", sel.Significant)
	}
}

func TestSelectLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Select([]float64{1}, []float64{1, 2}, 1.0, 10)
}

func TestSelectZeroUsers(t *testing.T) {
	// n=0 → infinite update error → nothing significant.
	sel := Select([]float64{0, 0}, []float64{5, -5}, 1.0, 0)
	if len(sel.Significant) != 0 {
		t.Fatalf("selected with n=0: %v", sel.Significant)
	}
}

func TestSelectMoreUsersSelectMore(t *testing.T) {
	// A fixed drift becomes significant once the population is large enough.
	current := []float64{0.5}
	estimated := []float64{0.55}
	small := Select(current, estimated, 1.0, 10)
	big := Select(current, estimated, 1.0, 100000)
	if len(small.Significant) != 0 {
		t.Fatalf("drift significant with tiny population: ErrUpd=%v", small.ErrUpd)
	}
	if len(big.Significant) != 1 {
		t.Fatal("drift not significant with large population")
	}
}

func TestSelectOptimalityProperty(t *testing.T) {
	// The selection minimizes Eq. 7: no single flip can reduce TotalErr.
	f := func(seed uint64, n uint16) bool {
		rng := ldp.NewRand(seed, seed+1)
		size := int(n%50) + 1
		current := make([]float64, size)
		estimated := make([]float64, size)
		for i := range current {
			current[i] = rng.Float64()
			estimated[i] = rng.Float64()
		}
		users := int(n%1000) + 1
		sel := Select(current, estimated, 1.0, users)
		errUpd := sel.ErrUpd
		selected := make(map[int]bool, len(sel.Significant))
		for _, i := range sel.Significant {
			selected[i] = true
		}
		for i := range current {
			d := current[i] - estimated[i]
			appErr := d * d
			var cost, flipped float64
			if selected[i] {
				cost, flipped = errUpd, appErr
			} else {
				cost, flipped = appErr, errUpd
			}
			if flipped < cost-1e-15 {
				return false // flipping state i would improve Eq. 7
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	sel := Selection{Significant: []int{1, 2, 3}}
	if got := sel.Ratio(12); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("Ratio = %v, want 0.25", got)
	}
	if got := sel.Ratio(0); got != 0 {
		t.Fatalf("Ratio(0) = %v", got)
	}
}

func TestSelectAll(t *testing.T) {
	sel := SelectAll(5, 1.0, 100)
	if len(sel.Significant) != 5 {
		t.Fatalf("SelectAll size = %d", len(sel.Significant))
	}
	for i, idx := range sel.Significant {
		if idx != i {
			t.Fatalf("SelectAll order = %v", sel.Significant)
		}
	}
	if got, want := sel.TotalErr, 5*ldp.Variance(1.0, 100); math.Abs(got-want) > 1e-15 {
		t.Fatalf("TotalErr = %v, want %v", got, want)
	}
	if got := sel.Ratio(5); got != 1 {
		t.Fatalf("Ratio = %v", got)
	}
}

func TestSelectAllBeatsOrTiesNothing(t *testing.T) {
	// Sanity: DMU's minimized error never exceeds AllUpdate's.
	rng := ldp.NewRand(3, 7)
	for trial := 0; trial < 50; trial++ {
		size := 30
		current := make([]float64, size)
		estimated := make([]float64, size)
		for i := range current {
			current[i] = rng.Float64() * 0.1
			estimated[i] = current[i] + (rng.Float64()-0.5)*0.2
		}
		dmuSel := Select(current, estimated, 1.0, 200)
		allSel := SelectAll(size, 1.0, 200)
		if dmuSel.TotalErr > allSel.TotalErr+1e-12 {
			t.Fatalf("DMU error %v exceeds AllUpdate error %v", dmuSel.TotalErr, allSel.TotalErr)
		}
	}
}
