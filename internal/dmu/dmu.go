// Package dmu implements RetraSyn's Dynamic Mobility Update mechanism
// (paper §III-C): at each reporting timestamp the curator decides, per
// transition state, whether to refresh the global mobility model with the
// freshly perturbed estimate or to keep approximating with the extant value.
//
// Equation 7's objective is separable across states, so the optimum selects
// state s exactly when the approximation error |f̃_s − f̂_s|² (squared drift
// between the model's value f̃ and the new estimate f̂) exceeds the update
// error Err_upd = 4e^{ε_t} / (n_t (e^{ε_t} − 1)²), the OUE variance of the
// fresh estimate.
package dmu

import (
	"fmt"

	"retrasyn/internal/ldp"
)

// Selection is the outcome of one DMU round.
type Selection struct {
	// Significant holds the indices of the significant transitions S*, in
	// increasing order.
	Significant []int
	// ErrUpd is the per-state update error used as the threshold.
	ErrUpd float64
	// TotalErr is the minimized value of Eq. 7 over all states.
	TotalErr float64
}

// Ratio returns |S*| / |S|, the share of significant transitions — the
// signal the adaptive allocation strategy tracks (Eq. 10).
func (s Selection) Ratio(domainSize int) float64 {
	if domainSize == 0 {
		return 0
	}
	return float64(len(s.Significant)) / float64(domainSize)
}

// Select performs the DMU decision under the paper's OUE protocol. current
// is the model's extant frequency vector f̃, estimated the freshly collected
// estimates f̂ (same length), eps and n the budget and report-population of
// the collection round.
func Select(current, estimated []float64, eps float64, n int) Selection {
	return SelectVar(current, estimated, ldp.Variance(eps, n))
}

// SelectVar is Select with an explicit per-state update error, for engines
// running a frequency oracle other than OUE.
func SelectVar(current, estimated []float64, errUpd float64) Selection {
	if len(current) != len(estimated) {
		panic(fmt.Sprintf("dmu: length mismatch %d vs %d", len(current), len(estimated)))
	}
	sel := Selection{ErrUpd: errUpd}
	for i := range current {
		d := current[i] - estimated[i]
		appErr := d * d
		if appErr > errUpd {
			sel.Significant = append(sel.Significant, i)
			sel.TotalErr += errUpd
		} else {
			sel.TotalErr += appErr
		}
	}
	return sel
}

// SelectAll returns a selection marking every state significant — the
// AllUpdate ablation, which refreshes the entire model each round without
// weighing perturbation noise against drift.
func SelectAll(size int, eps float64, n int) Selection {
	return SelectAllVar(size, ldp.Variance(eps, n))
}

// SelectAllVar is SelectAll with an explicit per-state update error.
func SelectAllVar(size int, errUpd float64) Selection {
	sel := Selection{
		Significant: make([]int, size),
		ErrUpd:      errUpd,
	}
	for i := range sel.Significant {
		sel.Significant[i] = i
	}
	sel.TotalErr = float64(size) * sel.ErrUpd
	return sel
}
