package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/transition"
)

// Property: for any frequency vector — including negative and NaN-free
// noisy inputs — every snapshot row is a valid sub-distribution: the
// movement probabilities plus the quit probability of a cell sum to 1 when
// the row carries mass, and to 0 otherwise.
func TestSnapshotRowsNormalizedProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		g := grid.MustNew(k, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
		dom := transition.NewDomain(g)
		rng := ldp.NewRand(seed, seed^3)
		est := make([]float64, dom.Size())
		for i := range est {
			est[i] = rng.Float64()*0.4 - 0.1 // noisy, some negatives
		}
		m := NewModel(dom)
		m.SetAll(est)
		s := m.Snapshot()
		for c := grid.Cell(0); int(c) < g.NumCells(); c++ {
			sum := s.QuitProb(c)
			for r := range g.Neighbors(c) {
				p := s.MoveProb(c, r)
				if p < 0 || p > 1 {
					return false
				}
				sum += p
			}
			if sum != 0 && math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampling never escapes the neighbourhood, for any model state.
func TestSampleMoveStaysAdjacentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
		dom := transition.NewDomain(g)
		rng := ldp.NewRand(seed, seed^5)
		est := make([]float64, dom.Size())
		for i := range est {
			est[i] = rng.Float64() - 0.5
		}
		m := NewModel(dom)
		m.SetAll(est)
		s := m.Snapshot()
		for trial := 0; trial < 50; trial++ {
			c := grid.Cell(rng.IntN(g.NumCells()))
			next := s.SampleMove(rng, c)
			if !g.Adjacent(c, next) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
