// Package mobility implements RetraSyn's global mobility model (paper
// §III-B): the curator-side frequency table over the transition-state
// domain, and the derived probability distributions of Eq. 6 — the movement
// distribution M (with the quitting frequency folded into the denominator),
// the entering distribution E, and the quitting distribution Q.
package mobility

import (
	"fmt"
	"math"
	"sort"

	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

// Model holds the current estimated frequency of every transition state.
// Frequencies are population fractions as produced by the OUE aggregator;
// they are kept raw (possibly negative) so the DMU error comparison stays
// unbiased, and clamped at zero only when converted to probabilities
// (post-processing, paper Theorem 2). Model is not safe for concurrent use.
type Model struct {
	dom  *transition.Domain
	freq []float64
	init bool
}

// NewModel creates an all-zero model over the domain.
func NewModel(dom *transition.Domain) *Model {
	return &Model{dom: dom, freq: make([]float64, dom.Size())}
}

// Domain returns the transition-state domain.
func (m *Model) Domain() *transition.Domain { return m.dom }

// Initialized reports whether the model has received at least one update.
func (m *Model) Initialized() bool { return m.init }

// Freq returns the current frequency estimate of state idx.
func (m *Model) Freq(idx int) float64 { return m.freq[idx] }

// Freqs returns the full frequency vector. The returned slice is the
// model's backing store; callers must not modify it.
func (m *Model) Freqs() []float64 { return m.freq }

// SetAll replaces every frequency with the new estimates (the AllUpdate
// ablation path, and the initialization at the first collection).
func (m *Model) SetAll(est []float64) {
	if len(est) != len(m.freq) {
		panic(fmt.Sprintf("mobility: SetAll length %d ≠ domain %d", len(est), len(m.freq)))
	}
	copy(m.freq, est)
	m.init = true
}

// Update replaces the frequencies of the selected states only, leaving the
// rest at their previous values (the DMU partial refresh, paper §III-C).
func (m *Model) Update(selected []int, est []float64) {
	if len(est) != len(m.freq) {
		panic(fmt.Sprintf("mobility: Update length %d ≠ domain %d", len(est), len(m.freq)))
	}
	for _, idx := range selected {
		m.freq[idx] = est[idx]
	}
	m.init = true
}

// Snapshot freezes the model into sampling-ready distributions. Building a
// snapshot costs O(|S|); the synthesizer takes one per timestamp after the
// model update.
func (m *Model) Snapshot() *Snapshot {
	return newSnapshot(m)
}

// State is the serializable form of a Model, used by engine checkpoints.
type State struct {
	Freq []float64 `json:"freq"`
	Init bool      `json:"init"`
}

// State exports a deep copy of the model's mutable state.
func (m *Model) State() State {
	freq := make([]float64, len(m.freq))
	copy(freq, m.freq)
	return State{Freq: freq, Init: m.init}
}

// Restore replaces the model's state with a previously exported one. The
// frequency vector must match the domain size.
func (m *Model) Restore(st State) error {
	if len(st.Freq) != len(m.freq) {
		return fmt.Errorf("mobility: Restore length %d ≠ domain %d", len(st.Freq), len(m.freq))
	}
	copy(m.freq, st.Freq)
	m.init = st.Init
	return nil
}

// Snapshot holds the Eq. 6 distributions in cumulative form for O(log n)
// sampling. It is immutable and safe for concurrent use.
type Snapshot struct {
	dom *transition.Domain
	sp  spatial.Discretizer

	// moveCum[c] is the cumulative clamped frequency over Neighbors(c), in
	// neighbour-rank order. A zero total marks an uninformative row.
	moveCum [][]float64
	// quitProb[c] = f_cQ / (Σ_x f_cx + f_cQ), the unreweighted per-step quit
	// probability of Eq. 6; zero for move-only domains.
	quitProb []float64
	enterCum []float64 // cumulative over cells; nil for move-only domains
	quitCum  []float64
	quitFreq []float64 // clamped f_jQ per cell, for weighted termination
}

func newSnapshot(m *Model) *Snapshot {
	dom := m.dom
	sp := dom.Space()
	nc := sp.NumCells()
	s := &Snapshot{
		dom:      dom,
		sp:       sp,
		moveCum:  make([][]float64, nc),
		quitProb: make([]float64, nc),
	}
	for c := 0; c < nc; c++ {
		base, n := dom.MoveBlock(spatial.Cell(c))
		cum := make([]float64, n)
		sum := 0.0
		for r := 0; r < n; r++ {
			sum += clampNonNeg(m.freq[base+r])
			cum[r] = sum
		}
		s.moveCum[c] = cum
		if dom.HasEQ() {
			fq := clampNonNeg(m.freq[dom.QuitIndex(spatial.Cell(c))])
			if denom := sum + fq; denom > 0 {
				s.quitProb[c] = fq / denom
			}
		}
	}
	if dom.HasEQ() {
		s.enterCum = make([]float64, nc)
		s.quitCum = make([]float64, nc)
		s.quitFreq = make([]float64, nc)
		esum, qsum := 0.0, 0.0
		for c := 0; c < nc; c++ {
			esum += clampNonNeg(m.freq[dom.EnterIndex(spatial.Cell(c))])
			s.enterCum[c] = esum
			fq := clampNonNeg(m.freq[dom.QuitIndex(spatial.Cell(c))])
			s.quitFreq[c] = fq
			qsum += fq
			s.quitCum[c] = qsum
		}
	}
	return s
}

func clampNonNeg(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	return f
}

// Space returns the spatial discretization of the snapshot.
func (s *Snapshot) Space() spatial.Discretizer { return s.sp }

// QuitProb returns the per-step quitting probability of cell c before
// length reweighting (Eq. 6's quit term).
func (s *Snapshot) QuitProb(c spatial.Cell) float64 { return s.quitProb[c] }

// MoveProb returns P(m_cj) for the rank-th neighbour of c under Eq. 6
// (movement mass conditioned on the full denominator including quit).
func (s *Snapshot) MoveProb(c spatial.Cell, rank int) float64 {
	cum := s.moveCum[c]
	total := cum[len(cum)-1]
	fq := 0.0
	if s.quitFreq != nil {
		fq = s.quitFreq[c]
	}
	denom := total + fq
	if denom == 0 {
		return 0
	}
	v := cum[rank]
	if rank > 0 {
		v -= cum[rank-1]
	}
	return v / denom
}

// SampleMove draws the next cell from the movement distribution of c,
// conditioned on not quitting. When the row carries no mass (all estimates
// non-positive — e.g. early timestamps under heavy noise), it falls back to
// a uniform draw over the reachable cells so synthesis can always proceed.
func (s *Snapshot) SampleMove(rng ldp.Rand, c spatial.Cell) spatial.Cell {
	ns := s.sp.Neighbors(c)
	cum := s.moveCum[c]
	total := cum[len(cum)-1]
	if total <= 0 {
		return ns[rng.IntN(len(ns))]
	}
	u := rng.Float64() * total
	idx := sort.SearchFloat64s(cum, u)
	if idx >= len(ns) {
		idx = len(ns) - 1
	}
	return ns[idx]
}

// SampleEnter draws a starting cell from the entering distribution E, with
// a uniform fallback when E carries no mass. It panics for move-only
// domains.
func (s *Snapshot) SampleEnter(rng ldp.Rand) spatial.Cell {
	if s.enterCum == nil {
		panic("mobility: SampleEnter on a move-only domain")
	}
	return sampleCum(rng, s.enterCum)
}

// QuitWeight returns the clamped quitting frequency f_jQ of cell c, used to
// weight which synthetic streams terminate during size adjustment
// (P(quit|c_last=c_j) = Pr(q_j)). Zero for move-only domains.
func (s *Snapshot) QuitWeight(c spatial.Cell) float64 {
	if s.quitFreq == nil {
		return 0
	}
	return s.quitFreq[c]
}

func sampleCum(rng ldp.Rand, cum []float64) spatial.Cell {
	total := cum[len(cum)-1]
	if total <= 0 {
		return spatial.Cell(rng.IntN(len(cum)))
	}
	u := rng.Float64() * total
	idx := sort.SearchFloat64s(cum, u)
	if idx >= len(cum) {
		idx = len(cum) - 1
	}
	return spatial.Cell(idx)
}
