package mobility

import (
	"math"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/transition"
)

func newDomain(k int) *transition.Domain {
	g := grid.MustNew(k, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	return transition.NewDomain(g)
}

func TestModelSetAllAndFreq(t *testing.T) {
	dom := newDomain(2)
	m := NewModel(dom)
	if m.Initialized() {
		t.Fatal("fresh model should be uninitialized")
	}
	est := make([]float64, dom.Size())
	for i := range est {
		est[i] = float64(i)
	}
	m.SetAll(est)
	if !m.Initialized() {
		t.Fatal("model should be initialized after SetAll")
	}
	for i := range est {
		if m.Freq(i) != est[i] {
			t.Fatalf("Freq(%d) = %v", i, m.Freq(i))
		}
	}
}

func TestModelPartialUpdate(t *testing.T) {
	dom := newDomain(2)
	m := NewModel(dom)
	base := make([]float64, dom.Size())
	for i := range base {
		base[i] = 1
	}
	m.SetAll(base)
	est := make([]float64, dom.Size())
	for i := range est {
		est[i] = 2
	}
	m.Update([]int{0, 3, 7}, est)
	for i := 0; i < dom.Size(); i++ {
		want := 1.0
		if i == 0 || i == 3 || i == 7 {
			want = 2.0
		}
		if m.Freq(i) != want {
			t.Fatalf("Freq(%d) = %v, want %v", i, m.Freq(i), want)
		}
	}
}

func TestModelLengthPanics(t *testing.T) {
	m := NewModel(newDomain(2))
	t.Run("SetAll", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		m.SetAll([]float64{1})
	})
	t.Run("Update", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		m.Update(nil, []float64{1})
	})
}

// buildModel sets a hand-crafted frequency table on a K=2 grid where every
// cell is adjacent to every other (4 neighbours each).
func buildModel(t *testing.T) (*Model, *transition.Domain) {
	t.Helper()
	dom := newDomain(2)
	m := NewModel(dom)
	est := make([]float64, dom.Size())
	// Moves from cell 0: to 0,1,2,3 with frequencies .1,.2,.3,.4 (rank order).
	base, n := dom.MoveBlock(0)
	vals := []float64{0.1, 0.2, 0.3, 0.4}
	for r := 0; r < n; r++ {
		est[base+r] = vals[r]
	}
	// Quit at cell 0: frequency 1.0 → denominator 2.0 for Eq. 6.
	est[dom.QuitIndex(0)] = 1.0
	// Enter distribution: cell 2 has twice the mass of cell 1.
	est[dom.EnterIndex(1)] = 0.1
	est[dom.EnterIndex(2)] = 0.2
	m.SetAll(est)
	return m, dom
}

func TestSnapshotEq6(t *testing.T) {
	m, _ := buildModel(t)
	s := m.Snapshot()
	// Pr(quit|0) = 1.0 / (0.1+0.2+0.3+0.4 + 1.0) = 0.5.
	if got := s.QuitProb(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("QuitProb(0) = %v, want 0.5", got)
	}
	// Pr(m_0→rank3) = 0.4/2.0 = 0.2.
	if got := s.MoveProb(0, 3); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MoveProb(0,3) = %v, want 0.2", got)
	}
	// Move probabilities plus quit probability sum to 1 for cell 0.
	sum := s.QuitProb(0)
	for r := 0; r < 4; r++ {
		sum += s.MoveProb(0, r)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("Σ move + quit = %v, want 1", sum)
	}
}

func TestSnapshotNegativeClamped(t *testing.T) {
	dom := newDomain(2)
	m := NewModel(dom)
	est := make([]float64, dom.Size())
	base, _ := dom.MoveBlock(0)
	est[base] = -0.5 // negative OUE estimate
	est[base+1] = 0.5
	m.SetAll(est)
	s := m.Snapshot()
	if got := s.MoveProb(0, 0); got != 0 {
		t.Fatalf("negative frequency not clamped: MoveProb = %v", got)
	}
	if got := s.MoveProb(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MoveProb(0,1) = %v, want 1", got)
	}
}

func TestSampleMoveDistribution(t *testing.T) {
	m, dom := buildModel(t)
	s := m.Snapshot()
	g := dom.Space()
	rng := ldp.NewRand(1, 2)
	counts := map[grid.Cell]int{}
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[s.SampleMove(rng, 0)]++
	}
	// Conditional on not quitting, moves follow 0.1:0.2:0.3:0.4.
	want := []float64{0.1, 0.2, 0.3, 0.4}
	for r, n := range g.Neighbors(0) {
		got := float64(counts[n]) / trials
		if math.Abs(got-want[r]) > 0.01 {
			t.Fatalf("SampleMove rank %d rate = %v, want %v", r, got, want[r])
		}
	}
}

func TestSampleMoveUniformFallback(t *testing.T) {
	dom := newDomain(3)
	m := NewModel(dom) // all-zero
	s := m.Snapshot()
	rng := ldp.NewRand(3, 4)
	g := dom.Space().(*grid.System)
	center := g.CellAt(1, 1)
	counts := map[grid.Cell]int{}
	const trials = 18000
	for i := 0; i < trials; i++ {
		c := s.SampleMove(rng, center)
		if g.NeighborRank(center, c) < 0 {
			t.Fatalf("sampled non-neighbour %d", c)
		}
		counts[c]++
	}
	for _, n := range g.Neighbors(center) {
		rate := float64(counts[n]) / trials
		if math.Abs(rate-1.0/9) > 0.015 {
			t.Fatalf("fallback not uniform: rate(%d) = %v", n, rate)
		}
	}
}

func TestSampleEnter(t *testing.T) {
	m, _ := buildModel(t)
	s := m.Snapshot()
	rng := ldp.NewRand(5, 6)
	counts := make([]int, 4)
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[s.SampleEnter(rng)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("cells with zero enter mass sampled: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-2) > 0.15 {
		t.Fatalf("enter ratio = %v, want ≈2", ratio)
	}
}

func TestSampleEnterUniformFallback(t *testing.T) {
	dom := newDomain(2)
	s := NewModel(dom).Snapshot()
	rng := ldp.NewRand(9, 9)
	counts := make([]int, 4)
	for i := 0; i < 20000; i++ {
		counts[s.SampleEnter(rng)]++
	}
	for c, n := range counts {
		rate := float64(n) / 20000
		if math.Abs(rate-0.25) > 0.02 {
			t.Fatalf("fallback enter not uniform: cell %d rate %v", c, rate)
		}
	}
}

func TestSampleEnterPanicsMoveOnly(t *testing.T) {
	g := grid.MustNew(2, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	dom := transition.NewMoveOnlyDomain(g)
	s := NewModel(dom).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.SampleEnter(ldp.NewRand(1, 1))
}

func TestMoveOnlySnapshotNoQuit(t *testing.T) {
	g := grid.MustNew(2, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	dom := transition.NewMoveOnlyDomain(g)
	m := NewModel(dom)
	est := make([]float64, dom.Size())
	for i := range est {
		est[i] = 1
	}
	m.SetAll(est)
	s := m.Snapshot()
	for c := grid.Cell(0); int(c) < g.NumCells(); c++ {
		if s.QuitProb(c) != 0 {
			t.Fatalf("move-only QuitProb(%d) = %v", c, s.QuitProb(c))
		}
		if s.QuitWeight(c) != 0 {
			t.Fatalf("move-only QuitWeight(%d) = %v", c, s.QuitWeight(c))
		}
	}
	// Moves sum to 1 without quit mass.
	sum := 0.0
	for r := range g.Neighbors(0) {
		sum += s.MoveProb(0, r)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("move-only Σ MoveProb = %v", sum)
	}
}

func TestQuitWeight(t *testing.T) {
	m, _ := buildModel(t)
	s := m.Snapshot()
	if got := s.QuitWeight(0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("QuitWeight(0) = %v, want 1.0", got)
	}
	if got := s.QuitWeight(1); got != 0 {
		t.Fatalf("QuitWeight(1) = %v, want 0", got)
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	m, dom := buildModel(t)
	s := m.Snapshot()
	before := s.MoveProb(0, 3)
	// Mutating the model afterwards must not affect the snapshot.
	zero := make([]float64, dom.Size())
	m.SetAll(zero)
	if got := s.MoveProb(0, 3); got != before {
		t.Fatalf("snapshot changed after model mutation: %v → %v", before, got)
	}
}

func TestSnapshotNaNClamped(t *testing.T) {
	dom := newDomain(2)
	m := NewModel(dom)
	est := make([]float64, dom.Size())
	est[0] = math.NaN()
	est[1] = 1
	m.SetAll(est)
	s := m.Snapshot()
	if got := s.MoveProb(0, 0); got != 0 {
		t.Fatalf("NaN frequency not clamped: %v", got)
	}
}
