package trajectory

import (
	"bytes"
	"strings"
	"testing"

	"retrasyn/internal/grid"
)

func TestRawRoundTrip(t *testing.T) {
	d := &RawDataset{Name: "demo", T: 10, Trajs: []RawTrajectory{
		{Start: 0, Points: []RawPoint{{0.5, 1.5}, {2.25, 3.75}}},
		{Start: 4, Points: []RawPoint{{-1, -2}, {0, 0}, {1e6, 1e-6}}},
	}}
	var buf bytes.Buffer
	if err := WriteRaw(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRaw(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.T != d.T || len(got.Trajs) != len(d.Trajs) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, tr := range d.Trajs {
		g := got.Trajs[i]
		if g.Start != tr.Start || len(g.Points) != len(tr.Points) {
			t.Fatalf("traj %d shape mismatch", i)
		}
		for j, p := range tr.Points {
			if g.Points[j] != p {
				t.Fatalf("traj %d point %d = %+v, want %+v", i, j, g.Points[j], p)
			}
		}
	}
}

func TestReadRawErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header tag", "X,10\n"},
		{"bad T", "T,abc\n"},
		{"zero T", "T,0\n"},
		{"even fields", "T,10\n0,1,2,3\n"},
		{"one field", "T,10\n0\n"},
		{"bad start", "T,10\nxx,1,2\n"},
		{"bad x", "T,10\n0,aa,2\n"},
		{"bad y", "T,10\n0,1,bb\n"},
		{"negative start", "T,10\n-1,1,2\n"},
		{"beyond timeline", "T,2\n1,1,2,3,4\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadRaw(strings.NewReader(tt.input)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestReadRawSkipsBlankLines(t *testing.T) {
	d, err := ReadRaw(strings.NewReader("T,5,x\n\n0,1,2\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Trajs) != 1 {
		t.Fatalf("trajs = %d", len(d.Trajs))
	}
}

func TestReadRawNoName(t *testing.T) {
	d, err := ReadRaw(strings.NewReader("T,5\n0,1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "" || d.T != 5 {
		t.Fatalf("header = %+v", d)
	}
}

func TestWriteCells(t *testing.T) {
	d := &Dataset{Name: "cells", T: 4, Trajs: []CellTrajectory{
		{Start: 1, Cells: []grid.Cell{3, 4, 5}},
	}}
	var buf bytes.Buffer
	if err := WriteCells(&buf, d); err != nil {
		t.Fatal(err)
	}
	want := "T,4,cells\n1,3,4,5\n"
	if buf.String() != want {
		t.Fatalf("output = %q, want %q", buf.String(), want)
	}
}
