package trajectory

import (
	"fmt"
	"testing"

	"retrasyn/internal/spatial"
)

// sweepDataset exercises every stream shape the sweep must order correctly:
// overlapping spans, single-point streams, a stream ending exactly at T-1
// (no quit fits), interleaved user ids, and an empty timestamp.
func sweepDataset() *Dataset {
	return &Dataset{
		Name: "sweep",
		T:    8,
		Trajs: []CellTrajectory{
			{Start: 0, Cells: []spatial.Cell{0, 1, 2}},
			{Start: 2, Cells: []spatial.Cell{3, 3}},
			{Start: 0, Cells: []spatial.Cell{5}},
			{Start: 7, Cells: []spatial.Cell{1}},
			{Start: 3, Cells: []spatial.Cell{2, 2, 2, 2, 2}},
			{Start: 1, Cells: []spatial.Cell{4, 4}},
		},
	}
}

// TestSweepEventsMatchesNewStream pins the streaming sweep to the
// materializing reference: same events, same order, same active counts, at
// every timestamp.
func TestSweepEventsMatchesNewStream(t *testing.T) {
	d := sweepDataset()
	ref := NewStream(d)
	seen := 0
	err := SweepEvents(d, func(ts int, events []Event, active int) error {
		if ts != seen {
			return fmt.Errorf("timestamp %d out of order (want %d)", ts, seen)
		}
		seen++
		if active != ref.Active[ts] {
			return fmt.Errorf("t=%d: active %d, want %d", ts, active, ref.Active[ts])
		}
		want := ref.At(ts)
		if len(events) != len(want) {
			return fmt.Errorf("t=%d: %d events, want %d", ts, len(events), len(want))
		}
		for i := range events {
			if events[i] != want[i] {
				return fmt.Errorf("t=%d event %d: %+v, want %+v", ts, i, events[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != d.T {
		t.Fatalf("visited %d timestamps, want %d", seen, d.T)
	}
}

func TestSweepEventsStopsOnError(t *testing.T) {
	d := sweepDataset()
	calls := 0
	sentinel := fmt.Errorf("stop")
	err := SweepEvents(d, func(ts int, events []Event, active int) error {
		calls++
		if ts == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times, want 3 (t=0,1,2)", calls)
	}
}

func TestSweepEventsEmptyDataset(t *testing.T) {
	if err := SweepEvents(&Dataset{T: 0}, func(int, []Event, int) error {
		t.Fatal("callback ran for an empty timeline")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := SweepEvents(&Dataset{T: 3}, func(ts int, events []Event, active int) error {
		calls++
		if len(events) != 0 || active != 0 {
			t.Fatalf("t=%d: want empty timestamp, got %d events / %d active", ts, len(events), active)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times, want 3", calls)
	}
}
