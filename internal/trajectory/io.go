package trajectory

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"retrasyn/internal/spatial"
)

// The CSV-like interchange format, one stream per line:
//
//	start,x1,y1,x2,y2,...
//
// with a header line "T,<timeline length>,<name>". It is intentionally
// simple — the datasets here are synthetic and regenerated on demand; the
// files exist so cmd/datagen output can be inspected and re-fed to
// cmd/retrasyn.

// WriteRaw serializes a raw dataset.
func WriteRaw(w io.Writer, d *RawDataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "T,%d,%s\n", d.T, d.Name); err != nil {
		return err
	}
	for _, tr := range d.Trajs {
		if _, err := fmt.Fprintf(bw, "%d", tr.Start); err != nil {
			return err
		}
		for _, p := range tr.Points {
			if _, err := fmt.Fprintf(bw, ",%g,%g", p.X, p.Y); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRaw parses a raw dataset written by WriteRaw.
func ReadRaw(r io.Reader) (*RawDataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trajectory: empty input")
	}
	header := strings.SplitN(sc.Text(), ",", 3)
	if len(header) < 2 || header[0] != "T" {
		return nil, fmt.Errorf("trajectory: malformed header %q", sc.Text())
	}
	t, err := strconv.Atoi(header[1])
	if err != nil || t <= 0 {
		return nil, fmt.Errorf("trajectory: bad timeline length %q", header[1])
	}
	d := &RawDataset{T: t}
	if len(header) == 3 {
		d.Name = header[2]
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 3 || len(fields)%2 == 0 {
			return nil, fmt.Errorf("trajectory: line %d: want start,x1,y1,... got %d fields", line, len(fields))
		}
		start, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad start %q", line, fields[0])
		}
		pts := make([]RawPoint, 0, (len(fields)-1)/2)
		for i := 1; i < len(fields); i += 2 {
			x, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("trajectory: line %d: bad x %q", line, fields[i])
			}
			y, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trajectory: line %d: bad y %q", line, fields[i+1])
			}
			pts = append(pts, RawPoint{X: x, Y: y})
		}
		// Overflow-safe span check: End() = start+len−1 wraps for huge
		// starts, so bound the length against the remaining timeline
		// instead of comparing the computed end.
		if start < 0 || start >= d.T || len(pts) > d.T-start {
			return nil, fmt.Errorf("trajectory: line %d: span starting at %d with %d points outside timeline [0,%d)", line, start, len(pts), d.T)
		}
		d.Trajs = append(d.Trajs, RawTrajectory{Start: start, Points: pts})
	}
	return d, sc.Err()
}

// ReadCells parses a discretized dataset written by WriteCells (the format
// the curator serves on /v1/synthetic), validating that every stream lies
// inside the timeline and every cell is a non-negative cell index.
func ReadCells(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trajectory: empty input")
	}
	header := strings.SplitN(sc.Text(), ",", 3)
	if len(header) < 2 || header[0] != "T" {
		return nil, fmt.Errorf("trajectory: malformed header %q", sc.Text())
	}
	t, err := strconv.Atoi(header[1])
	if err != nil || t <= 0 {
		return nil, fmt.Errorf("trajectory: bad timeline length %q", header[1])
	}
	d := &Dataset{T: t}
	if len(header) == 3 {
		d.Name = header[2]
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("trajectory: line %d: want start,c1,... got %d fields", line, len(fields))
		}
		start, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad start %q", line, fields[0])
		}
		cells := make([]spatial.Cell, 0, len(fields)-1)
		for _, f := range fields[1:] {
			c, err := strconv.ParseInt(f, 10, 32)
			if err != nil || c < 0 {
				return nil, fmt.Errorf("trajectory: line %d: bad cell %q", line, f)
			}
			cells = append(cells, spatial.Cell(c))
		}
		if start < 0 || start >= d.T || len(cells) > d.T-start {
			return nil, fmt.Errorf("trajectory: line %d: span starting at %d with %d cells outside timeline [0,%d)", line, start, len(cells), d.T)
		}
		d.Trajs = append(d.Trajs, CellTrajectory{Start: start, Cells: cells})
	}
	return d, sc.Err()
}

// WriteCells serializes a discretized dataset, one stream per line:
// start,c1,c2,... with the same header as WriteRaw.
func WriteCells(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "T,%d,%s\n", d.T, d.Name); err != nil {
		return err
	}
	for _, tr := range d.Trajs {
		if _, err := fmt.Fprintf(bw, "%d", tr.Start); err != nil {
			return err
		}
		for _, c := range tr.Cells {
			if _, err := fmt.Fprintf(bw, ",%d", c); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
