package trajectory

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Native Go fuzzing for the interchange parsers. The targets assert two
// properties on every input the parser accepts: (a) the parsed dataset
// satisfies the format's span invariants — this is what surfaced the
// End()-overflow on huge start values, now guarded in ReadRaw/ReadCells —
// and (b) the dataset survives a write→read round-trip unchanged.
//
// Run longer campaigns with:
//
//	go test ./internal/trajectory -run='^$' -fuzz=FuzzReadRaw -fuzztime=60s

func FuzzReadRaw(f *testing.F) {
	seeds := []string{
		"T,10,walk\n0,1.5,2.5,1.6,2.6\n3,0,0\n",
		"T,5\n0,1,1\n",
		"T,3,x\n\n2,0.5,0.5\n",
		"T,10,neg\n-1,1,1\n",
		"T,10,overflow\n9223372036854775807,1,1,2,2\n",
		"T,10,badfields\n0,1\n",
		"T,0,badT\n",
		"garbage\n",
		"",
		"T,10,nan\n0,NaN,Inf\n",
		"T,10,huge\n5," + strings.Repeat("1,1,", 20) + "1,1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadRaw(bytes.NewReader(data))
		if err != nil {
			return
		}
		if d.T <= 0 {
			t.Fatalf("accepted timeline length %d", d.T)
		}
		for i, tr := range d.Trajs {
			if len(tr.Points) == 0 {
				t.Fatalf("trajectory %d: empty", i)
			}
			if tr.Start < 0 || tr.Start >= d.T || len(tr.Points) > d.T-tr.Start {
				t.Fatalf("trajectory %d: span [%d, +%d) escapes timeline [0,%d)", i, tr.Start, len(tr.Points), d.T)
			}
		}
		// Round-trip: what we write must parse back identically.
		var buf bytes.Buffer
		if err := WriteRaw(&buf, d); err != nil {
			t.Fatalf("write parsed dataset: %v", err)
		}
		d2, err := ReadRaw(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read written dataset: %v", err)
		}
		if d2.T != d.T || len(d2.Trajs) != len(d.Trajs) {
			t.Fatalf("round-trip shape drift: T %d→%d, trajs %d→%d", d.T, d2.T, len(d.Trajs), len(d2.Trajs))
		}
		for i := range d.Trajs {
			a, b := d.Trajs[i], d2.Trajs[i]
			if a.Start != b.Start || len(a.Points) != len(b.Points) {
				t.Fatalf("trajectory %d: round-trip span drift", i)
			}
			for j := range a.Points {
				// Bit equality so NaN payloads and signed zeros count too.
				if math.Float64bits(a.Points[j].X) != math.Float64bits(b.Points[j].X) ||
					math.Float64bits(a.Points[j].Y) != math.Float64bits(b.Points[j].Y) {
					t.Fatalf("trajectory %d point %d: %v round-tripped to %v", i, j, a.Points[j], b.Points[j])
				}
			}
		}
	})
}

func FuzzReadCells(f *testing.F) {
	seeds := []string{
		"T,10,syn\n0,1,2,3\n4,0\n",
		"T,5\n0,15\n",
		"T,10,neg\n0,-1\n",
		"T,10,overflow\n9223372036854775807,1,2\n",
		"T,10,big\n0,2147483648\n",
		"T,2,long\n0,1,2,3\n",
		"T,1,x\n0,0\n",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCells(bytes.NewReader(data))
		if err != nil {
			return
		}
		if d.T <= 0 {
			t.Fatalf("accepted timeline length %d", d.T)
		}
		for i, tr := range d.Trajs {
			if len(tr.Cells) == 0 {
				t.Fatalf("trajectory %d: empty", i)
			}
			if tr.Start < 0 || tr.Start >= d.T || len(tr.Cells) > d.T-tr.Start {
				t.Fatalf("trajectory %d: span [%d, +%d) escapes timeline [0,%d)", i, tr.Start, len(tr.Cells), d.T)
			}
			for j, c := range tr.Cells {
				if c < 0 {
					t.Fatalf("trajectory %d cell %d: negative cell %d", i, j, c)
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteCells(&buf, d); err != nil {
			t.Fatalf("write parsed dataset: %v", err)
		}
		d2, err := ReadCells(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read written dataset: %v", err)
		}
		if d2.T != d.T || len(d2.Trajs) != len(d.Trajs) {
			t.Fatalf("round-trip shape drift")
		}
		for i := range d.Trajs {
			a, b := d.Trajs[i], d2.Trajs[i]
			if a.Start != b.Start || len(a.Cells) != len(b.Cells) {
				t.Fatalf("trajectory %d: round-trip span drift", i)
			}
			for j := range a.Cells {
				if a.Cells[j] != b.Cells[j] {
					t.Fatalf("trajectory %d cell %d drifted", i, j)
				}
			}
		}
	})
}
