// Package trajectory defines the data model for trajectory streams: raw
// continuous trajectories as produced by location-aware devices (or our
// dataset generators), their discretized grid-cell form, and the
// per-timestamp transition-state event streams the RetraSyn engine consumes
// (paper §II-C, §III-B).
package trajectory

import (
	"fmt"

	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

// RawPoint is a continuous two-dimensional location.
type RawPoint struct {
	X, Y float64
}

// RawTrajectory is one user's continuous stream: a location for every
// timestamp in [Start, Start+len(Points)).
type RawTrajectory struct {
	Start  int
	Points []RawPoint
}

// End returns the last timestamp at which the trajectory has a location.
func (r RawTrajectory) End() int { return r.Start + len(r.Points) - 1 }

// RawDataset is a collection of raw trajectory streams over a common
// timeline [0, T).
type RawDataset struct {
	Name  string
	T     int
	Trajs []RawTrajectory
}

// NumPoints returns the total number of location reports in the dataset.
func (d *RawDataset) NumPoints() int {
	n := 0
	for _, tr := range d.Trajs {
		n += len(tr.Points)
	}
	return n
}

// CellTrajectory is a discretized stream: one cell per timestamp in
// [Start, Start+len(Cells)).
type CellTrajectory struct {
	Start int
	Cells []spatial.Cell
}

// End returns the last timestamp at which the trajectory has a cell.
func (c CellTrajectory) End() int { return c.Start + len(c.Cells) - 1 }

// Len returns the number of points (the paper's trajectory length).
func (c CellTrajectory) Len() int { return len(c.Cells) }

// CellAt returns the cell at absolute timestamp t and whether the
// trajectory is present at t.
func (c CellTrajectory) CellAt(t int) (spatial.Cell, bool) {
	if t < c.Start || t > c.End() {
		return spatial.Invalid, false
	}
	return c.Cells[t-c.Start], true
}

// Dataset is a collection of discretized streams over a common timeline
// [0, T). Both the discretized original database T_orig and the synthetic
// database T_syn use this representation, so every metric applies to either
// side symmetrically.
type Dataset struct {
	Name  string
	T     int
	Trajs []CellTrajectory
}

// Stats summarizes a dataset the way the paper's Table I does.
type Stats struct {
	Size       int     // number of streams
	NumPoints  int     // total location reports
	AvgLength  float64 // mean stream length in points
	Timestamps int     // timeline length T
}

// Stats computes dataset statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{Size: len(d.Trajs), Timestamps: d.T}
	for _, tr := range d.Trajs {
		s.NumPoints += len(tr.Cells)
	}
	if s.Size > 0 {
		s.AvgLength = float64(s.NumPoints) / float64(s.Size)
	}
	return s
}

// NumPoints returns the total number of points.
func (d *Dataset) NumPoints() int {
	n := 0
	for _, tr := range d.Trajs {
		n += len(tr.Cells)
	}
	return n
}

// ActiveCounts returns, for each timestamp, the number of streams that have
// a location at that timestamp. The curator knows these counts because it
// tracks user enter/quit status (paper §III-E); the synthesizer uses them as
// the size-adjustment target.
func (d *Dataset) ActiveCounts() []int {
	counts := make([]int, d.T)
	for _, tr := range d.Trajs {
		end := tr.End()
		for t := tr.Start; t <= end && t < d.T; t++ {
			if t >= 0 {
				counts[t]++
			}
		}
	}
	return counts
}

// Validate checks structural invariants: trajectories within the timeline,
// non-empty, cells valid for sp, and (when adjacencyRequired) every
// consecutive pair satisfying the reachability constraint.
func (d *Dataset) Validate(sp spatial.Discretizer, adjacencyRequired bool) error {
	for i, tr := range d.Trajs {
		if len(tr.Cells) == 0 {
			return fmt.Errorf("trajectory %d: empty", i)
		}
		if tr.Start < 0 || tr.End() >= d.T {
			return fmt.Errorf("trajectory %d: span [%d,%d] outside timeline [0,%d)", i, tr.Start, tr.End(), d.T)
		}
		for j, c := range tr.Cells {
			if !sp.ValidCell(c) {
				return fmt.Errorf("trajectory %d: invalid cell %d at offset %d", i, c, j)
			}
			if adjacencyRequired && j > 0 && !sp.Adjacent(tr.Cells[j-1], c) {
				return fmt.Errorf("trajectory %d: non-adjacent step %d→%d at offset %d", i, tr.Cells[j-1], c, j)
			}
		}
	}
	return nil
}

// DiscretizeOptions controls Discretize.
type DiscretizeOptions struct {
	// SplitNonAdjacent splits a stream whenever two consecutive cells violate
	// the reachability constraint, inserting a quit/enter pair — the same
	// treatment the paper applies to temporally non-adjacent reports. When
	// false such steps are kept verbatim (useful for analysis of raw data).
	SplitNonAdjacent bool
	// MinLength drops resulting streams shorter than this many points
	// (0 or 1 keeps everything).
	MinLength int
}

// Discretize maps a raw dataset onto the cells of a discretization,
// producing the engine-ready cell dataset. Points outside the bounds are
// clamped to the boundary (matching the paper's selection of a fixed study
// area).
func Discretize(raw *RawDataset, sp spatial.Discretizer, opts DiscretizeOptions) *Dataset {
	out := &Dataset{Name: raw.Name, T: raw.T}
	for _, rt := range raw.Trajs {
		if len(rt.Points) == 0 {
			continue
		}
		cells := make([]spatial.Cell, len(rt.Points))
		for i, p := range rt.Points {
			cells[i] = sp.CellOf(p.X, p.Y)
		}
		if !opts.SplitNonAdjacent {
			out.appendIfLong(CellTrajectory{Start: rt.Start, Cells: cells}, opts.MinLength)
			continue
		}
		segStart := 0
		for i := 1; i <= len(cells); i++ {
			if i == len(cells) || !sp.Adjacent(cells[i-1], cells[i]) {
				seg := CellTrajectory{
					Start: rt.Start + segStart,
					Cells: cells[segStart:i:i],
				}
				out.appendIfLong(seg, opts.MinLength)
				segStart = i
			}
		}
	}
	return out
}

func (d *Dataset) appendIfLong(tr CellTrajectory, minLen int) {
	if len(tr.Cells) >= minLen || minLen <= 1 {
		if len(tr.Cells) > 0 {
			d.Trajs = append(d.Trajs, tr)
		}
	}
}

// Event is one user's transition-state report at a timestamp. User identity
// matters only for population-division sampling and recycling; the state is
// what gets perturbed.
type Event struct {
	User  int
	State transition.State
}

// Stream precomputes the per-timestamp event lists of a dataset: at each
// timestamp a present user contributes exactly one transition state —
// enter at Start, a movement while continuing, and a final quit report at
// End+1 (graceful shutdown, see DESIGN.md §5.3). Quit events beyond the
// timeline are dropped (the stream simply ends with the data).
type Stream struct {
	T       int
	Events  [][]Event // per timestamp
	Active  []int     // streams with a location at t (size-adjustment target)
	NumUser int
}

// NewStream builds the event stream for a dataset. User IDs are the dataset
// trajectory indices.
func NewStream(d *Dataset) *Stream {
	s := &Stream{
		T:       d.T,
		Events:  make([][]Event, d.T),
		Active:  d.ActiveCounts(),
		NumUser: len(d.Trajs),
	}
	for id, tr := range d.Trajs {
		if tr.Start >= 0 && tr.Start < d.T {
			s.Events[tr.Start] = append(s.Events[tr.Start],
				Event{User: id, State: transition.EnterState(tr.Cells[0])})
		}
		for j := 1; j < len(tr.Cells); j++ {
			t := tr.Start + j
			if t < 0 || t >= d.T {
				continue
			}
			s.Events[t] = append(s.Events[t],
				Event{User: id, State: transition.MoveState(tr.Cells[j-1], tr.Cells[j])})
		}
		if qt := tr.End() + 1; qt < d.T {
			s.Events[qt] = append(s.Events[qt],
				Event{User: id, State: transition.QuitState(tr.Cells[len(tr.Cells)-1])})
		}
	}
	return s
}

// At returns the events at timestamp t.
func (s *Stream) At(t int) []Event { return s.Events[t] }

// SweepEvents visits the dataset's per-timestamp event lists in timestamp
// order without materializing a Stream: fn receives, for each t in [0, T),
// exactly the events (and active-stream count) NewStream would have stored,
// in the same order. Memory is bounded by the number of concurrently live
// streams, not the total point count, which is what lets cmd/datagen export
// transition streams at SanJoaquin scale. The events slice is reused between
// calls; fn must not retain it. A non-nil error from fn stops the sweep.
func SweepEvents(d *Dataset, fn func(t int, events []Event, active int) error) error {
	if d.T <= 0 {
		return nil
	}
	// Bucket trajectory ids by start timestamp; scanning d.Trajs in order
	// keeps each bucket ascending, which the merge below relies on.
	starters := make([][]int, d.T)
	for id, tr := range d.Trajs {
		if tr.Start >= 0 && tr.Start < d.T && len(tr.Cells) > 0 {
			starters[tr.Start] = append(starters[tr.Start], id)
		}
	}
	var live, merged []int
	var events []Event
	for t := 0; t < d.T; t++ {
		if s := starters[t]; len(s) > 0 {
			// Merge the starters into the live list keeping ascending id
			// order — NewStream appends per trajectory in id order, so the
			// per-timestamp event order is ascending id.
			merged = merged[:0]
			i, j := 0, 0
			for i < len(live) && j < len(s) {
				if live[i] < s[j] {
					merged = append(merged, live[i])
					i++
				} else {
					merged = append(merged, s[j])
					j++
				}
			}
			merged = append(merged, live[i:]...)
			merged = append(merged, s[j:]...)
			live = append(live[:0], merged...)
			starters[t] = nil
		}
		events = events[:0]
		active := 0
		keep := live[:0]
		for _, id := range live {
			tr := d.Trajs[id]
			switch {
			case t == tr.Start:
				events = append(events, Event{User: id, State: transition.EnterState(tr.Cells[0])})
				active++
			case t <= tr.End():
				j := t - tr.Start
				events = append(events, Event{User: id, State: transition.MoveState(tr.Cells[j-1], tr.Cells[j])})
				active++
			default: // t == End()+1: the graceful quit report
				events = append(events, Event{User: id, State: transition.QuitState(tr.Cells[len(tr.Cells)-1])})
			}
			if t <= tr.End() {
				keep = append(keep, id)
			}
		}
		live = keep
		if err := fn(t, events, active); err != nil {
			return err
		}
	}
	return nil
}

// Subset returns a dataset containing the first n trajectories; used by the
// scalability experiment (Figure 7). It shares underlying storage.
func (d *Dataset) Subset(n int) *Dataset {
	if n > len(d.Trajs) {
		n = len(d.Trajs)
	}
	return &Dataset{Name: d.Name, T: d.T, Trajs: d.Trajs[:n]}
}
