package trajectory

import (
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/transition"
)

func newGrid(k int) *grid.System {
	return grid.MustNew(k, grid.Bounds{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10})
}

func TestCellTrajectoryAccessors(t *testing.T) {
	tr := CellTrajectory{Start: 3, Cells: []grid.Cell{1, 2, 3}}
	if tr.End() != 5 {
		t.Fatalf("End = %d", tr.End())
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if c, ok := tr.CellAt(4); !ok || c != 2 {
		t.Fatalf("CellAt(4) = %d,%v", c, ok)
	}
	if _, ok := tr.CellAt(2); ok {
		t.Fatal("CellAt before start should be absent")
	}
	if _, ok := tr.CellAt(6); ok {
		t.Fatal("CellAt after end should be absent")
	}
}

func TestStats(t *testing.T) {
	d := &Dataset{T: 10, Trajs: []CellTrajectory{
		{Start: 0, Cells: []grid.Cell{0, 1}},
		{Start: 3, Cells: []grid.Cell{2, 3, 4, 5}},
	}}
	s := d.Stats()
	if s.Size != 2 || s.NumPoints != 6 || s.Timestamps != 10 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.AvgLength != 3 {
		t.Fatalf("AvgLength = %v", s.AvgLength)
	}
	empty := &Dataset{T: 5}
	if got := empty.Stats(); got.AvgLength != 0 || got.Size != 0 {
		t.Fatalf("empty Stats = %+v", got)
	}
}

func TestActiveCounts(t *testing.T) {
	d := &Dataset{T: 6, Trajs: []CellTrajectory{
		{Start: 0, Cells: []grid.Cell{0, 0, 0}}, // active 0,1,2
		{Start: 2, Cells: []grid.Cell{1, 1}},    // active 2,3
		{Start: 5, Cells: []grid.Cell{2}},       // active 5
	}}
	want := []int{1, 1, 2, 1, 0, 1}
	got := d.ActiveCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveCounts = %v, want %v", got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	g := newGrid(4)
	ok := &Dataset{T: 5, Trajs: []CellTrajectory{{Start: 0, Cells: []grid.Cell{0, 1, 2}}}}
	if err := ok.Validate(g, true); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	tests := []struct {
		name string
		d    *Dataset
		adj  bool
	}{
		{"empty trajectory", &Dataset{T: 5, Trajs: []CellTrajectory{{Start: 0}}}, false},
		{"negative start", &Dataset{T: 5, Trajs: []CellTrajectory{{Start: -1, Cells: []grid.Cell{0}}}}, false},
		{"beyond timeline", &Dataset{T: 2, Trajs: []CellTrajectory{{Start: 1, Cells: []grid.Cell{0, 1}}}}, false},
		{"invalid cell", &Dataset{T: 5, Trajs: []CellTrajectory{{Start: 0, Cells: []grid.Cell{99}}}}, false},
		{"non-adjacent", &Dataset{T: 5, Trajs: []CellTrajectory{{Start: 0, Cells: []grid.Cell{0, 15}}}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.d.Validate(g, tt.adj); err == nil {
				t.Fatal("want error")
			}
		})
	}
	// Non-adjacent accepted when adjacency not required.
	if err := tests[4].d.Validate(g, false); err != nil {
		t.Fatalf("non-adjacent rejected without adjacency requirement: %v", err)
	}
}

func TestDiscretizeBasic(t *testing.T) {
	g := newGrid(4) // cell width 2.5
	raw := &RawDataset{T: 4, Trajs: []RawTrajectory{
		{Start: 0, Points: []RawPoint{{1, 1}, {3, 1}, {3, 3.2}}},
	}}
	d := Discretize(raw, g, DiscretizeOptions{SplitNonAdjacent: true})
	if len(d.Trajs) != 1 {
		t.Fatalf("got %d trajectories", len(d.Trajs))
	}
	want := []grid.Cell{g.CellAt(0, 0), g.CellAt(0, 1), g.CellAt(1, 1)}
	for i, c := range d.Trajs[0].Cells {
		if c != want[i] {
			t.Fatalf("cells = %v, want %v", d.Trajs[0].Cells, want)
		}
	}
	if err := d.Validate(g, true); err != nil {
		t.Fatal(err)
	}
}

func TestDiscretizeSplitsJumps(t *testing.T) {
	g := newGrid(4)
	// Point 3 jumps across the grid → split into two streams.
	raw := &RawDataset{T: 5, Trajs: []RawTrajectory{
		{Start: 1, Points: []RawPoint{{0.1, 0.1}, {2.6, 0.1}, {9.9, 9.9}, {9.9, 8.0}}},
	}}
	d := Discretize(raw, g, DiscretizeOptions{SplitNonAdjacent: true})
	if len(d.Trajs) != 2 {
		t.Fatalf("got %d trajectories, want 2", len(d.Trajs))
	}
	if d.Trajs[0].Start != 1 || d.Trajs[0].Len() != 2 {
		t.Fatalf("first segment = %+v", d.Trajs[0])
	}
	if d.Trajs[1].Start != 3 || d.Trajs[1].Len() != 2 {
		t.Fatalf("second segment = %+v", d.Trajs[1])
	}
	if err := d.Validate(g, true); err != nil {
		t.Fatal(err)
	}

	// Without splitting, the jump is preserved.
	d2 := Discretize(raw, g, DiscretizeOptions{SplitNonAdjacent: false})
	if len(d2.Trajs) != 1 || d2.Trajs[0].Len() != 4 {
		t.Fatalf("unsplit = %+v", d2.Trajs)
	}
}

func TestDiscretizeMinLength(t *testing.T) {
	g := newGrid(4)
	raw := &RawDataset{T: 5, Trajs: []RawTrajectory{
		{Start: 0, Points: []RawPoint{{0.1, 0.1}, {9.9, 9.9}, {9.9, 8.0}}},
	}}
	d := Discretize(raw, g, DiscretizeOptions{SplitNonAdjacent: true, MinLength: 2})
	// Split yields a 1-point and a 2-point segment; MinLength=2 keeps only the latter.
	if len(d.Trajs) != 1 || d.Trajs[0].Len() != 2 {
		t.Fatalf("trajs = %+v", d.Trajs)
	}
}

func TestDiscretizeEmptyTrajectorySkipped(t *testing.T) {
	g := newGrid(4)
	raw := &RawDataset{T: 5, Trajs: []RawTrajectory{{Start: 0}}}
	d := Discretize(raw, g, DiscretizeOptions{SplitNonAdjacent: true})
	if len(d.Trajs) != 0 {
		t.Fatalf("trajs = %+v", d.Trajs)
	}
}

func TestNewStreamEvents(t *testing.T) {
	d := &Dataset{T: 6, Trajs: []CellTrajectory{
		{Start: 1, Cells: []grid.Cell{5, 6, 7}}, // enter@1, move@2, move@3, quit@4
		{Start: 4, Cells: []grid.Cell{2, 3}},    // enter@4, move@5, quit beyond timeline
	}}
	s := NewStream(d)
	if s.T != 6 || s.NumUser != 2 {
		t.Fatalf("stream header = %+v", s)
	}

	expect := map[int][]transition.State{
		1: {transition.EnterState(5)},
		2: {transition.MoveState(5, 6)},
		3: {transition.MoveState(6, 7)},
		4: {transition.QuitState(7), transition.EnterState(2)},
		5: {transition.MoveState(2, 3)},
	}
	for t0 := 0; t0 < 6; t0++ {
		want := expect[t0]
		got := s.At(t0)
		if len(got) != len(want) {
			t.Fatalf("t=%d: %d events, want %d (%v)", t0, len(got), len(want), got)
		}
		for _, w := range want {
			found := false
			for _, e := range got {
				if e.State == w {
					found = true
				}
			}
			if !found {
				t.Fatalf("t=%d: missing %v in %v", t0, w, got)
			}
		}
	}
	wantActive := []int{0, 1, 1, 1, 1, 1}
	for i, w := range wantActive {
		if s.Active[i] != w {
			t.Fatalf("Active = %v, want %v", s.Active, wantActive)
		}
	}
}

func TestStreamEventUsersDistinct(t *testing.T) {
	d := &Dataset{T: 4, Trajs: []CellTrajectory{
		{Start: 0, Cells: []grid.Cell{0, 1}},
		{Start: 0, Cells: []grid.Cell{2, 3}},
	}}
	s := NewStream(d)
	seen := map[int]bool{}
	for _, e := range s.At(0) {
		if seen[e.User] {
			t.Fatal("duplicate user at timestamp 0")
		}
		seen[e.User] = true
		if e.State.Kind != transition.Enter {
			t.Fatalf("first event kind = %v", e.State.Kind)
		}
	}
}

func TestStreamOnePerUserPerTimestamp(t *testing.T) {
	d := &Dataset{T: 8, Trajs: []CellTrajectory{
		{Start: 0, Cells: []grid.Cell{0, 1, 2, 3}},
		{Start: 2, Cells: []grid.Cell{4, 5, 6}},
		{Start: 6, Cells: []grid.Cell{7}},
	}}
	s := NewStream(d)
	for t0 := 0; t0 < d.T; t0++ {
		seen := map[int]bool{}
		for _, e := range s.At(t0) {
			if seen[e.User] {
				t.Fatalf("user %d has two events at t=%d", e.User, t0)
			}
			seen[e.User] = true
		}
	}
}

func TestSubset(t *testing.T) {
	d := &Dataset{T: 3, Trajs: []CellTrajectory{
		{Start: 0, Cells: []grid.Cell{0}},
		{Start: 0, Cells: []grid.Cell{1}},
		{Start: 0, Cells: []grid.Cell{2}},
	}}
	s := d.Subset(2)
	if len(s.Trajs) != 2 {
		t.Fatalf("Subset(2) has %d trajs", len(s.Trajs))
	}
	if s2 := d.Subset(99); len(s2.Trajs) != 3 {
		t.Fatalf("oversized subset has %d trajs", len(s2.Trajs))
	}
}

func TestRawDatasetNumPoints(t *testing.T) {
	d := &RawDataset{T: 4, Trajs: []RawTrajectory{
		{Start: 0, Points: []RawPoint{{0, 0}, {1, 1}}},
		{Start: 1, Points: []RawPoint{{2, 2}}},
	}}
	if d.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", d.NumPoints())
	}
	if d.Trajs[0].End() != 1 {
		t.Fatalf("End = %d", d.Trajs[0].End())
	}
}
