package monitor

import (
	"fmt"
	"sort"
	"sync"

	"retrasyn/internal/metrics"
	"retrasyn/internal/obs"
	"retrasyn/internal/relayout"
	"retrasyn/internal/spatial"
)

// Signal names, in reporting order.
const (
	SignalDivergence = "divergence"
	SignalSigRatio   = "sig_ratio"
	SignalErrors     = "errors"
)

var signalOrder = []string{SignalDivergence, SignalSigRatio, SignalErrors}

// Options configures a Monitor.
type Options struct {
	// Window is the number of released timestamps the density sketch
	// retains; the divergence compares this sliding window of the released
	// stream against the current round's DP estimates. Must be ≥ 1.
	Window int
	// Divergence, SigRatio and Errors tune the per-signal change-point
	// detectors; zero fields take the detector defaults, except where noted.
	// The errors detector defaults to Delta 0.5 / Lambda 3 (alarm only on a
	// sustained burst of whole failed rounds, not one transient). The
	// sig_ratio detector defaults to Delta 0.1 / Lambda 0.5 / Warmup 10: the
	// significance ratio is a noisy fraction whose round-to-round jitter is
	// an order of magnitude above the divergence signal's, and its opening
	// ramp (zero on the first round, steady state within a window) must fall
	// inside the warmup or the frozen baseline would alarm forever.
	Divergence DetectorOptions
	SigRatio   DetectorOptions
	Errors     DetectorOptions
}

// Monitor watches three utility signals over the live run: the divergence
// between the released synthetic stream and the DP-estimated cell histogram,
// the DMU significance ratio, and the round-error counter. Each signal runs
// through its own EWMA + Page–Hinkley detector (detector.go); the union of
// active alarms is what the relayout degradation trigger and /v1/health
// consume.
//
// The released sketch stores continuous points, so it survives relayouts
// unchanged — each round folds it onto the *current* discretization before
// comparing. All methods are safe for concurrent use and nil-safe, so a nil
// *Monitor is a valid "monitoring off" value.
type Monitor struct {
	mu      sync.Mutex
	window  int
	tracker *relayout.DensityTracker
	det     map[string]*Detector

	rounds     int
	lastErrors int64
	l1, js     float64
	computedT  int // timestamp of the last divergence computation, -1 if none

	mDivL1, mDivJS *obs.Gauge
	mAlarm         map[string]*obs.Gauge
	mAlarmsTotal   map[string]*obs.Counter
}

// New builds a Monitor with a sliding release sketch of opts.Window
// timestamps.
func New(opts Options) (*Monitor, error) {
	if opts.Window < 1 {
		return nil, fmt.Errorf("monitor: Window must be ≥ 1, got %d", opts.Window)
	}
	eo := opts.Errors
	if eo.Delta <= 0 {
		eo.Delta = 0.5
	}
	if eo.Lambda <= 0 {
		eo.Lambda = 3
	}
	so := opts.SigRatio
	if so.Delta <= 0 {
		so.Delta = 0.1
	}
	if so.Lambda <= 0 {
		so.Lambda = 0.5
	}
	if so.Warmup <= 0 {
		so.Warmup = 10
	}
	return &Monitor{
		window:  opts.Window,
		tracker: relayout.NewDensityTracker(opts.Window),
		det: map[string]*Detector{
			SignalDivergence: NewDetector(opts.Divergence),
			SignalSigRatio:   NewDetector(so),
			SignalErrors:     NewDetector(eo),
		},
		computedT: -1,
	}, nil
}

// Window returns the sketch capacity in timestamps.
func (m *Monitor) Window() int {
	if m == nil {
		return 0
	}
	return m.window
}

// SetMetrics registers the monitor's gauges on reg. Pass before the run
// starts; nil-safe on both sides.
func (m *Monitor) SetMetrics(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mDivL1 = reg.Gauge("monitor.release_divergence", obs.Label{Key: "metric", Value: "l1"})
	m.mDivJS = reg.Gauge("monitor.release_divergence", obs.Label{Key: "metric", Value: "js"})
	m.mAlarm = make(map[string]*obs.Gauge, len(signalOrder))
	m.mAlarmsTotal = make(map[string]*obs.Counter, len(signalOrder))
	for _, s := range signalOrder {
		m.mAlarm[s] = reg.Gauge("monitor.alarm", obs.Label{Key: "signal", Value: s})
		m.mAlarmsTotal[s] = reg.Counter("monitor.alarms_total", obs.Label{Key: "signal", Value: s})
	}
}

// ObserveRelease feeds the released positions of timestamp t into the
// sliding sketch. Call once per timestamp, after synthesis.
func (m *Monitor) ObserveRelease(t int, pts []spatial.Point) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tracker.Observe(t, pts)
}

// RoundReport is the per-round monitor outcome, destined for the trace
// stream.
type RoundReport struct {
	// Computed reports whether divergence was evaluated this round (it
	// needs a reported round and a non-empty release sketch).
	Computed bool
	// L1 is Σ|p−q| over normalized cell masses, in [0, 2].
	L1 float64
	// JS is the Jensen–Shannon divergence in nats, in [0, ln 2].
	JS float64
	// Alarms lists the signals whose alarm is active after this round, in
	// signalOrder. Empty means healthy.
	Alarms []string
	// Raised lists the signals whose alarm was newly raised by this round.
	Raised []string
}

// Round closes timestamp t: it folds the release sketch onto space, compares
// it against cellEst (per-cell DP-estimated mass, len == space.NumCells();
// nil on unreported rounds), and steps every detector. totalErrors is the
// cumulative round-error count — the monitor differences it internally.
func (m *Monitor) Round(t int, space spatial.Discretizer, cellEst []float64, sigRatio float64, totalErrors int64) RoundReport {
	if m == nil {
		return RoundReport{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rounds++

	var rep RoundReport
	reported := space != nil && len(cellEst) == space.NumCells() && space.NumCells() > 0
	if reported && m.tracker.Len() > 0 {
		released := foldPoints(space, m.tracker.Points())
		rep.L1, rep.JS = divergence(released, denoise(cellEst))
		rep.Computed = true
		m.l1, m.js = rep.L1, rep.JS
		m.computedT = t
		m.mDivL1.Set(rep.L1)
		m.mDivJS.Set(rep.JS)
		if m.det[SignalDivergence].Step(t, rep.JS) {
			rep.Raised = append(rep.Raised, SignalDivergence)
		}
	}
	if reported {
		if m.det[SignalSigRatio].Step(t, sigRatio) {
			rep.Raised = append(rep.Raised, SignalSigRatio)
		}
	}
	delta := totalErrors - m.lastErrors
	m.lastErrors = totalErrors
	if m.det[SignalErrors].Step(t, float64(delta)) {
		rep.Raised = append(rep.Raised, SignalErrors)
	}

	for _, s := range signalOrder {
		d := m.det[s]
		if d.Active() {
			rep.Alarms = append(rep.Alarms, s)
			m.mAlarm[s].Set(1)
		} else {
			m.mAlarm[s].Set(0)
		}
	}
	for _, s := range rep.Raised {
		m.mAlarmsTotal[s].Inc()
	}
	sort.Slice(rep.Raised, func(i, j int) bool {
		return signalRank(rep.Raised[i]) < signalRank(rep.Raised[j])
	})
	return rep
}

func signalRank(s string) int {
	for i, n := range signalOrder {
		if n == s {
			return i
		}
	}
	return len(signalOrder)
}

// NoteRelayout tells the monitor a layout migration was applied. The
// stationary level of the layout-dependent signals (divergence, sig_ratio)
// changes with the discretization, so their detectors reset and re-learn a
// baseline on the new layout — otherwise a baseline learned on the old
// layout would latch the alarm forever and the degradation trigger would
// migrate on every window. The errors signal is layout-independent and keeps
// its state; cumulative alarm counts survive the reset. The release sketch
// stores continuous points and needs no action.
func (m *Monitor) NoteRelayout() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range []string{SignalDivergence, SignalSigRatio} {
		m.det[s].Reset()
		if m.mAlarm != nil {
			m.mAlarm[s].Set(0)
		}
	}
}

// Alarming reports whether any signal's alarm is currently active. This is
// the degradation-trigger input consumed by relayout.Controller.
func (m *Monitor) Alarming() bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.det {
		if d.Active() {
			return true
		}
	}
	return false
}

// foldPoints histograms continuous points onto the discretization.
func foldPoints(space spatial.Discretizer, pts []spatial.Point) []float64 {
	out := make([]float64, space.NumCells())
	for _, p := range pts {
		c := space.CellOf(p.X, p.Y)
		if c >= 0 && int(c) < len(out) {
			out[int(c)]++
		}
	}
	return out
}

// denoise soft-thresholds a DP-estimated mass vector by its per-cell median:
// unbiased OUE estimates clamped to non-negative carry a noise floor spread
// over every cell, and at per-round budgets that floor can outweigh the true
// mass several times over, drowning any real density shift. Most cells hold
// (near-)zero true mass, so the median of the clamped vector is a robust
// estimate of that floor; subtracting it keeps the peaks that carry the
// actual distribution. Pure post-processing of the DP release — no privacy
// cost.
func denoise(est []float64) []float64 {
	sorted := make([]float64, len(est))
	for i, v := range est {
		if v < 0 {
			v = 0
		}
		sorted[i] = v
	}
	out := sorted
	sorted = append([]float64(nil), sorted...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if med <= 0 {
		return out
	}
	for i, v := range out {
		v -= med
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// divergence returns the normalized-L1 distance and the Jensen–Shannon
// divergence between two mass vectors of equal length. Negative entries
// (DP estimates are unbiased, not non-negative) are clamped to zero.
func divergence(p, q []float64) (l1, js float64) {
	cp, cq := clampNonNeg(p), clampNonNeg(q)
	var sp, sq float64
	for _, v := range cp {
		sp += v
	}
	for _, v := range cq {
		sq += v
	}
	if sp == 0 || sq == 0 {
		if sp == sq {
			return 0, 0
		}
		return 2, metrics.Ln2
	}
	for i := range cp {
		l1 += abs(cp[i]/sp - cq[i]/sq)
	}
	return l1, metrics.JSD(cp, cq)
}

func clampNonNeg(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if x > 0 {
			out[i] = x
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
