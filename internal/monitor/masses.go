package monitor

import "retrasyn/internal/transition"

// CellMasses folds a transition-domain estimate vector onto per-cell mass:
// every state deposits its (clamped non-negative) estimated count on the
// cell where the user is located *after* the transition — a move or enter
// lands on its destination, a quit leaves from its source. The result is
// comparable against a histogram of released positions for the same round.
//
// out is reused when it has the domain's cell count, else reallocated; the
// filled slice is returned.
func CellMasses(dom *transition.Domain, estimates []float64, out []float64) []float64 {
	numCells := dom.Space().NumCells()
	if cap(out) >= numCells {
		out = out[:numCells]
		for i := range out {
			out[i] = 0
		}
	} else {
		out = make([]float64, numCells)
	}
	n := dom.Size()
	if n > len(estimates) {
		n = len(estimates)
	}
	for i := 0; i < n; i++ {
		est := estimates[i]
		if est <= 0 {
			continue
		}
		s := dom.StateAt(i)
		c := s.To
		if s.Kind == transition.Quit {
			c = s.From
		}
		if c >= 0 && int(c) < numCells {
			out[int(c)] += est
		}
	}
	return out
}
