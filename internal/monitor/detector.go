// Package monitor is the online utility sentinel: it watches the released
// synthetic stream against the DP-estimated cell histogram the engine already
// computed and raises deterministic change-point alarms when the two drift
// apart. Everything here is post-processing over data that is already public
// under the LDP guarantee (the released stream and the noisy estimates), so
// the monitor consumes no privacy budget, never touches the engine RNG, and
// its state is run-scoped — it is excluded from checkpoints by construction.
package monitor

import "math"

// DetectorOptions tunes one EWMA + Page–Hinkley change-point detector.
// The zero value selects the defaults noted per field.
type DetectorOptions struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; higher tracks faster.
	// Default 0.3.
	Alpha float64
	// Delta is the Page–Hinkley drift tolerance: per-sample deviations
	// below Delta never accumulate. Default 0.02.
	Delta float64
	// Lambda is the Page–Hinkley alarm threshold on the accumulated
	// deviation. Default 0.15.
	Lambda float64
	// Warmup is the number of samples consumed before the test arms; the
	// EWMA baseline still learns during warmup. Default 5.
	Warmup int
	// ClearAfter is the number of consecutive calm samples (accumulator
	// drained to zero) required to clear an active alarm — the hysteresis
	// that keeps borderline workloads from flapping. Default 3.
	ClearAfter int
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	if o.Delta <= 0 {
		o.Delta = 0.02
	}
	if o.Lambda <= 0 {
		o.Lambda = 0.15
	}
	if o.Warmup <= 0 {
		o.Warmup = 5
	}
	if o.ClearAfter <= 0 {
		o.ClearAfter = 3
	}
	return o
}

// Detector is a one-sided (upward) change-point detector: an EWMA baseline
// plus a Page–Hinkley cumulative test with clear-side hysteresis. It is
// fully deterministic — same sample sequence, same alarm sequence — and
// RNG-free, so running it beside the engine cannot perturb releases.
//
// While an alarm is active the baseline is frozen: the detector must not
// absorb the degraded regime into its notion of normal, or a sustained
// degradation would silently become the new baseline and the alarm would
// clear while the system is still broken. The accumulator is capped at
// 2×Lambda so recovery is bounded: once the signal returns below baseline
// the alarm clears after at most cap/Delta + ClearAfter calm samples.
type Detector struct {
	opts DetectorOptions

	n      int     // samples seen
	ewma   float64 // baseline
	ph     float64 // Page–Hinkley accumulator, ≥ 0
	active bool    // alarm currently raised
	calm   int     // consecutive drained samples while active

	alarms     int64   // total raise events
	lastAlarmT int     // timestamp of the last raise, -1 if never
	lastValue  float64 // last sample fed
}

// NewDetector builds a detector with the given options (zero fields take
// defaults).
func NewDetector(opts DetectorOptions) *Detector {
	return &Detector{opts: opts.withDefaults(), lastAlarmT: -1}
}

// Step feeds one sample observed at timestamp t and returns true when this
// sample raised a new alarm (a rising edge, not the level).
func (d *Detector) Step(t int, x float64) bool {
	d.n++
	d.lastValue = x
	if d.n == 1 {
		d.ewma = x
		return false
	}
	raised := false
	if d.n > d.opts.Warmup {
		dev := x - d.ewma - d.opts.Delta
		d.ph += dev
		if d.ph < 0 {
			d.ph = 0
		}
		if cap := 2 * d.opts.Lambda; d.ph > cap {
			d.ph = cap
		}
		switch {
		case !d.active && d.ph > d.opts.Lambda:
			d.active = true
			d.calm = 0
			d.alarms++
			d.lastAlarmT = t
			raised = true
		case d.active && d.ph == 0:
			d.calm++
			if d.calm >= d.opts.ClearAfter {
				d.active = false
				d.calm = 0
			}
		case d.active:
			d.calm = 0
		}
	}
	// Freeze the baseline while degraded (see type comment).
	if !d.active {
		d.ewma = d.opts.Alpha*x + (1-d.opts.Alpha)*d.ewma
	}
	return raised
}

// Reset returns the detector to its pre-warmup state — baseline unlearned,
// accumulator drained, alarm cleared — while preserving the run-cumulative
// alarm count and last-alarm timestamp. Used when the signal's stationary
// level legitimately changes (a layout migration shifts what "normal"
// divergence looks like) and the old baseline would otherwise latch the
// alarm forever.
func (d *Detector) Reset() {
	d.n = 0
	d.ewma = 0
	d.ph = 0
	d.active = false
	d.calm = 0
}

// Active reports whether the alarm is currently raised.
func (d *Detector) Active() bool { return d.active }

// Alarms returns the total number of raise events.
func (d *Detector) Alarms() int64 { return d.alarms }

// LastAlarmT returns the timestamp of the most recent raise, or -1.
func (d *Detector) LastAlarmT() int { return d.lastAlarmT }

// Baseline returns the current EWMA baseline.
func (d *Detector) Baseline() float64 { return d.ewma }

// Deviation returns the current Page–Hinkley accumulator value.
func (d *Detector) Deviation() float64 { return d.ph }

// LastValue returns the most recent sample fed, NaN before the first.
func (d *Detector) LastValue() float64 {
	if d.n == 0 {
		return math.NaN()
	}
	return d.lastValue
}

// Samples returns the number of samples consumed.
func (d *Detector) Samples() int { return d.n }

// Warm reports whether the detector has consumed its warmup.
func (d *Detector) Warm() bool { return d.n > d.opts.Warmup }
