package monitor

import (
	"math"
	"strings"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/metrics"
	"retrasyn/internal/obs"
	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

func TestDetectorStableSignalNeverAlarms(t *testing.T) {
	d := NewDetector(DetectorOptions{})
	// A noisy but stationary signal: deterministic triangle jitter around
	// 0.3, amplitude below Delta's tolerance once smoothed.
	for i := 0; i < 500; i++ {
		x := 0.3 + 0.01*float64(i%7-3)
		if d.Step(i, x) {
			t.Fatalf("stable signal raised an alarm at sample %d", i)
		}
	}
	if d.Active() || d.Alarms() != 0 {
		t.Fatalf("stable signal ended active=%v alarms=%d", d.Active(), d.Alarms())
	}
}

func TestDetectorRaisesOnSustainedShiftAndRecovers(t *testing.T) {
	d := NewDetector(DetectorOptions{Lambda: 0.1, Delta: 0.02, ClearAfter: 3})
	ts := 0
	feed := func(n int, x float64) {
		for i := 0; i < n; i++ {
			d.Step(ts, x)
			ts++
		}
	}
	feed(20, 0.1) // establish baseline
	if d.Active() {
		t.Fatal("active before any shift")
	}
	feed(10, 0.4) // sustained upward shift
	if !d.Active() {
		t.Fatal("sustained +0.3 shift did not raise")
	}
	raisedAt := d.LastAlarmT()
	if raisedAt < 20 {
		t.Fatalf("alarm timestamp %d predates the shift", raisedAt)
	}
	// While degraded, the baseline must not absorb the new regime.
	if d.Baseline() > 0.2 {
		t.Fatalf("baseline %v chased the degraded regime", d.Baseline())
	}
	feed(60, 0.1) // recovery: accumulator drains, hysteresis clears
	if d.Active() {
		t.Fatal("alarm did not clear after sustained recovery")
	}
	if d.Alarms() != 1 {
		t.Fatalf("want exactly 1 raise event, got %d", d.Alarms())
	}
}

func TestDetectorHysteresisNoFlap(t *testing.T) {
	// A signal oscillating right at the threshold region must not produce a
	// raise/clear storm: clearing needs ClearAfter consecutive drained
	// samples, so the alarm count stays far below the oscillation count.
	d := NewDetector(DetectorOptions{Lambda: 0.05, Delta: 0.01, ClearAfter: 5})
	for i := 0; i < 400; i++ {
		x := 0.1
		if i >= 50 && i%2 == 0 {
			x = 0.25
		}
		d.Step(i, x)
	}
	if d.Alarms() > 2 {
		t.Fatalf("oscillating signal flapped: %d raise events", d.Alarms())
	}
}

func TestCellMassesFold(t *testing.T) {
	g, err := grid.New(2, grid.Bounds{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2})
	if err != nil {
		t.Fatal(err)
	}
	dom := transition.NewDomain(g)
	est := make([]float64, dom.Size())
	// One move into cell 3, one enter into cell 0, one quit from cell 2,
	// and a negative estimate that must be clamped away.
	mi, ok := dom.MoveIndex(0, 3)
	if !ok {
		t.Fatal("cells 0 and 3 not adjacent on a 2x2 grid")
	}
	est[mi] = 5
	est[dom.EnterIndex(0)] = 2
	est[dom.QuitIndex(2)] = 3
	est[dom.EnterIndex(1)] = -4
	masses := CellMasses(dom, est, nil)
	want := []float64{2, 0, 3, 5}
	for i, w := range want {
		if masses[i] != w {
			t.Fatalf("cell %d mass = %v, want %v (all: %v)", i, masses[i], w, masses)
		}
	}
	// Buffer reuse zeroes stale content.
	masses[0] = 99
	masses2 := CellMasses(dom, est, masses)
	if &masses2[0] != &masses[0] || masses2[0] != 2 {
		t.Fatalf("buffer not reused/zeroed: %v", masses2)
	}
}

func TestMonitorDivergenceZeroWhenAligned(t *testing.T) {
	g, _ := grid.New(2, grid.Bounds{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2})
	m, err := New(Options{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Released points all in cell 0; estimates all mass on cell 0 → zero
	// divergence. Mass scaling must not matter.
	m.ObserveRelease(0, []spatial.Point{{X: 0.5, Y: 0.5}, {X: 0.2, Y: 0.2}})
	rep := m.Round(0, g, []float64{100, 0, 0, 0}, 0.5, 0)
	if !rep.Computed {
		t.Fatal("divergence not computed")
	}
	if rep.L1 != 0 || rep.JS != 0 {
		t.Fatalf("aligned distributions diverge: l1=%v js=%v", rep.L1, rep.JS)
	}
	// Disjoint support → maximal divergence.
	rep = m.Round(1, g, []float64{0, 0, 0, 10}, 0.5, 0)
	if math.Abs(rep.L1-2) > 1e-12 || math.Abs(rep.JS-metrics.Ln2) > 1e-12 {
		t.Fatalf("disjoint distributions: l1=%v js=%v, want 2 and ln2", rep.L1, rep.JS)
	}
}

func TestMonitorUnreportedRoundSkipsDivergence(t *testing.T) {
	g, _ := grid.New(2, grid.Bounds{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2})
	m, _ := New(Options{Window: 4})
	m.ObserveRelease(0, []spatial.Point{{X: 0.5, Y: 0.5}})
	rep := m.Round(0, g, nil, 0, 0)
	if rep.Computed {
		t.Fatal("divergence computed on an unreported round")
	}
	h := m.Health()
	if h.DivergenceT != -1 {
		t.Fatalf("DivergenceT = %d before any computation", h.DivergenceT)
	}
}

func TestMonitorHealthStatuses(t *testing.T) {
	g, _ := grid.New(2, grid.Bounds{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2})
	fast := DetectorOptions{Warmup: 2, Lambda: 0.05, Delta: 0.01, ClearAfter: 3}
	m, _ := New(Options{Window: 4, Divergence: fast, SigRatio: fast})
	if got := m.Health().Status; got != StatusOK {
		t.Fatalf("fresh monitor status = %q", got)
	}
	if (*Monitor)(nil).Health().Status != StatusOK {
		t.Fatal("nil monitor must report ok")
	}
	// Warm up with aligned rounds, then poison: released stays in cell 0
	// while estimates jump to cell 3 → divergence alarm → failing.
	for i := 0; i < 6; i++ {
		m.ObserveRelease(i, []spatial.Point{{X: 0.5, Y: 0.5}})
		m.Round(i, g, []float64{10, 0, 0, 0}, 0.2, 0)
	}
	for i := 6; i < 12; i++ {
		m.ObserveRelease(i, []spatial.Point{{X: 0.5, Y: 0.5}})
		m.Round(i, g, []float64{0, 0, 0, 10}, 0.2, 0)
	}
	h := m.Health()
	if !m.Alarming() {
		t.Fatal("disjoint estimates did not alarm")
	}
	if h.Status != StatusFailing {
		t.Fatalf("divergence alarm → status %q, want failing", h.Status)
	}
	sig := h.Signals[SignalDivergence]
	if sig.Status != "alarm" || sig.Alarms < 1 || sig.LastAlarmT < 6 {
		t.Fatalf("divergence signal health %+v", sig)
	}
}

func TestMonitorMetricsRegistered(t *testing.T) {
	g, _ := grid.New(2, grid.Bounds{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2})
	m, _ := New(Options{Window: 4})
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	m.ObserveRelease(0, []spatial.Point{{X: 0.5, Y: 0.5}})
	m.Round(0, g, []float64{0, 10, 0, 0}, 0.3, 0)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`monitor_release_divergence{metric="js"}`,
		`monitor_release_divergence{metric="l1"}`,
		`monitor_alarm{signal="divergence"}`,
		`monitor_alarms_total{signal="errors"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %s:\n%s", want, text)
		}
	}
	if err := obs.LintExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("monitor exposition fails lint: %v", err)
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.ObserveRelease(0, nil)
	m.SetMetrics(obs.NewRegistry())
	if rep := m.Round(0, nil, nil, 0, 0); rep.Computed {
		t.Fatal("nil monitor computed a divergence")
	}
	if m.Alarming() {
		t.Fatal("nil monitor alarming")
	}
	if m.Window() != 0 {
		t.Fatal("nil monitor window")
	}
}
