package monitor

// Health statuses, from best to worst.
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
	StatusFailing  = "failing"
)

// SignalHealth is the health of one monitored signal.
type SignalHealth struct {
	// Status is "warming" (detector not armed yet), "ok" or "alarm".
	Status string `json:"status"`
	// Value is the most recent sample fed to the detector.
	Value float64 `json:"value"`
	// Baseline is the detector's EWMA baseline.
	Baseline float64 `json:"baseline"`
	// Deviation is the Page–Hinkley accumulator (0 = tracking baseline).
	Deviation float64 `json:"deviation"`
	// Alarms is the total number of raise events this run.
	Alarms int64 `json:"alarms"`
	// LastAlarmT is the timestamp of the most recent raise, -1 if never.
	LastAlarmT int `json:"last_alarm_t"`
}

// Health is the structured monitor state served by GET /v1/health.
type Health struct {
	// Status is the overall verdict: "ok" (no alarms), "degraded" (an
	// indirect signal is alarming), "failing" (the divergence signal — the
	// direct utility measurement — is alarming, or more than one signal is).
	Status string `json:"status"`
	// Rounds is the number of rounds the monitor has closed.
	Rounds int `json:"rounds"`
	// DivergenceL1 and DivergenceJS are the latest computed divergences
	// between the released sketch and the DP cell estimates.
	DivergenceL1 float64 `json:"divergence_l1"`
	DivergenceJS float64 `json:"divergence_js"`
	// DivergenceT is the timestamp of the latest computation, -1 if none.
	DivergenceT int `json:"divergence_t"`
	// Signals maps signal name → per-signal health.
	Signals map[string]SignalHealth `json:"signals"`
}

// Health snapshots the monitor for /v1/health. Nil-safe: a nil monitor
// reports ok with no signals.
func (m *Monitor) Health() Health {
	if m == nil {
		return Health{Status: StatusOK, DivergenceT: -1}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Health{
		Rounds:       m.rounds,
		DivergenceL1: m.l1,
		DivergenceJS: m.js,
		DivergenceT:  m.computedT,
		Signals:      make(map[string]SignalHealth, len(signalOrder)),
	}
	active := 0
	for _, s := range signalOrder {
		d := m.det[s]
		sh := SignalHealth{
			Status:     "ok",
			Baseline:   d.Baseline(),
			Deviation:  d.Deviation(),
			Alarms:     d.Alarms(),
			LastAlarmT: d.LastAlarmT(),
		}
		if d.Samples() > 0 {
			sh.Value = d.LastValue()
		}
		switch {
		case d.Active():
			sh.Status = "alarm"
			active++
		case !d.Warm():
			sh.Status = "warming"
		}
		h.Signals[s] = sh
	}
	switch {
	case active == 0:
		h.Status = StatusOK
	case m.det[SignalDivergence].Active() || active > 1:
		h.Status = StatusFailing
	default:
		h.Status = StatusDegraded
	}
	return h
}
