package synthesis

import (
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/transition"
)

func newMoveOnlyDomain(g *grid.System) *transition.Domain {
	return transition.NewMoveOnlyDomain(g)
}

func TestParallelInvariantsMatchSerial(t *testing.T) {
	// Parallel generation draws from different generators than the serial
	// path, so the streams differ — but every structural invariant must
	// hold: adjacency, contiguity, exact size adjustment, point counts.
	g, dom := newSetup(4)
	snap := uniformSnapshot(dom, 0.3)
	const pop = 3000 // above parallelThreshold
	s, err := New(g, Options{Lambda: 8, Workers: 8, Seed: 42}, ldp.NewRand(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	s.Init(0, pop, snap)
	for ts := 1; ts <= 20; ts++ {
		s.Step(ts, pop, snap)
		if s.ActiveCount() != pop {
			t.Fatalf("t=%d: population %d, want %d", ts, s.ActiveCount(), pop)
		}
	}
	d := s.Dataset("par", 21)
	if err := d.Validate(g, true); err != nil {
		t.Fatalf("parallel output invalid: %v", err)
	}
	points := 0
	for _, tr := range d.Trajs {
		points += tr.Len()
	}
	if points != pop*21 {
		t.Fatalf("points = %d, want %d", points, pop*21)
	}
}

func TestParallelDeterministicForFixedSeedAndWorkers(t *testing.T) {
	g, dom := newSetup(4)
	snap := uniformSnapshot(dom, 0.2)
	run := func() int {
		s, _ := New(g, Options{Lambda: 8, Workers: 4, Seed: 7}, ldp.NewRand(3, 4))
		s.Init(0, 2500, snap)
		for ts := 1; ts <= 10; ts++ {
			s.Step(ts, 2500, snap)
		}
		// Fingerprint: total completed streams plus a cell checksum.
		d := s.Dataset("x", 11)
		sum := len(d.Trajs) * 1000003
		for _, tr := range d.Trajs {
			for _, c := range tr.Cells {
				sum = sum*31 + int(c)
			}
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatal("parallel synthesis not deterministic for fixed (seed, workers)")
	}
}

func TestParallelSmallPopulationFallsBackToSerial(t *testing.T) {
	// Below the threshold the serial path runs even with Workers set; the
	// shared-rng stream must then match a Workers=1 configuration exactly.
	g, dom := newSetup(4)
	snap := uniformSnapshot(dom, 0.2)
	run := func(workers int) []int {
		s, _ := New(g, Options{Lambda: 8, Workers: workers, Seed: 9}, ldp.NewRand(5, 6))
		s.Init(0, 100, snap) // « parallelThreshold
		for ts := 1; ts <= 10; ts++ {
			s.Step(ts, 100, snap)
		}
		d := s.Dataset("x", 11)
		out := make([]int, 0, 300)
		for _, tr := range d.Trajs {
			out = append(out, tr.Start, tr.Len(), int(tr.Cells[0]))
		}
		return out
	}
	a, b := run(8), run(1)
	if len(a) != len(b) {
		t.Fatalf("shapes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("small-population parallel run diverged from serial")
		}
	}
}

func TestParallelWithTerminationDisabled(t *testing.T) {
	g, _ := newSetup(4)
	dom := newMoveOnlyDomain(g)
	snap := uniformSnapshot(dom, 0)
	s, _ := New(g, Options{DisableTermination: true, Workers: 4, Seed: 3}, ldp.NewRand(7, 8))
	s.Init(0, 3000, snap)
	for ts := 1; ts <= 5; ts++ {
		s.Step(ts, 0, snap)
		if s.ActiveCount() != 3000 {
			t.Fatalf("NoEQ parallel population changed: %d", s.ActiveCount())
		}
	}
	d := s.Dataset("x", 6)
	for _, tr := range d.Trajs {
		if tr.Len() != 6 {
			t.Fatalf("stream length %d, want 6", tr.Len())
		}
	}
}
