package synthesis

import (
	"sync"

	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/trajectory"
)

// Parallel new-point generation — the acceleration the paper's §VII names
// as future work. Phase 1 of Step (per-stream termination + Markov move) is
// embarrassingly parallel; with Options.Workers > 1 the population is
// sharded across workers, each drawing from its own deterministic
// per-(step, shard) generator, and the shard results are merged in shard
// order so a run is reproducible for a fixed (Seed, Workers) pair.
// Size adjustment stays sequential — it is O(population) at worst and needs
// a single sampling stream.

// parallelThreshold is the population below which sharding costs more than
// it saves.
const parallelThreshold = 2048

type shardResult struct {
	kept      []*stream
	completed []trajectory.CellTrajectory
}

// stepParallel runs phase 1 across workers. It must only be called with
// opts.Workers > 1.
func (s *Synthesizer) stepParallel(snap *mobility.Snapshot) {
	n := len(s.active)
	workers := s.opts.Workers
	if workers > n {
		workers = n
	}
	results := make([]shardResult, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := ldp.NewRand(
				s.opts.Seed^(uint64(s.stepCount)*0x9e3779b97f4a7c15),
				uint64(w)*0xd1b54a32d192ed03+1,
			)
			res := shardResult{kept: make([]*stream, 0, hi-lo)}
			for _, st := range s.active[lo:hi] {
				if !s.opts.DisableTermination {
					p := float64(len(st.cells)) / s.opts.Lambda * snap.QuitProb(st.last())
					if p > s.opts.MaxQuitProb {
						p = s.opts.MaxQuitProb
					}
					if ldp.Bernoulli(rng, p) {
						res.completed = append(res.completed,
							trajectory.CellTrajectory{Start: st.start, Cells: st.cells})
						continue
					}
				}
				st.cells = append(st.cells, snap.SampleMove(rng, st.last()))
				res.kept = append(res.kept, st)
			}
			results[w] = res
		}(w, lo, hi)
	}
	wg.Wait()

	keep := s.active[:0]
	for _, res := range results {
		keep = append(keep, res.kept...)
		s.completed = append(s.completed, res.completed...)
	}
	for i := len(keep); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = keep
}
