package synthesis

import (
	"math"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/transition"
)

func newSetup(k int) (*grid.System, *transition.Domain) {
	g := grid.MustNew(k, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	return g, transition.NewDomain(g)
}

// uniformSnapshot builds a snapshot with uniform movement, uniform entering,
// and a fixed per-cell quit frequency.
func uniformSnapshot(dom *transition.Domain, quitFreq float64) *mobility.Snapshot {
	m := mobility.NewModel(dom)
	est := make([]float64, dom.Size())
	g := dom.Space()
	for c := 0; c < g.NumCells(); c++ {
		base, n := dom.MoveBlock(grid.Cell(c))
		for r := 0; r < n; r++ {
			est[base+r] = 1.0 / float64(n)
		}
		if dom.HasEQ() {
			est[dom.EnterIndex(grid.Cell(c))] = 1
			est[dom.QuitIndex(grid.Cell(c))] = quitFreq
		}
	}
	m.SetAll(est)
	return m.Snapshot()
}

func TestNewValidation(t *testing.T) {
	g, _ := newSetup(3)
	rng := ldp.NewRand(1, 1)
	if _, err := New(g, Options{Lambda: 0}, rng); err == nil {
		t.Fatal("Lambda=0 accepted")
	}
	if _, err := New(g, Options{Lambda: -2}, rng); err == nil {
		t.Fatal("negative Lambda accepted")
	}
	if _, err := New(g, Options{Lambda: 5, MaxQuitProb: 2}, rng); err == nil {
		t.Fatal("MaxQuitProb > 1 accepted")
	}
	if _, err := New(g, Options{DisableTermination: true}, rng); err != nil {
		t.Fatalf("NoEQ synthesizer rejected: %v", err)
	}
	if _, err := New(g, Options{Lambda: 5}, rng); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestInitSeedsTarget(t *testing.T) {
	g, dom := newSetup(3)
	s, _ := New(g, Options{Lambda: 10}, ldp.NewRand(2, 3))
	snap := uniformSnapshot(dom, 0.1)
	s.Init(0, 50, snap)
	if s.ActiveCount() != 50 {
		t.Fatalf("ActiveCount = %d", s.ActiveCount())
	}
	d := s.Dataset("x", 1)
	for _, tr := range d.Trajs {
		if tr.Start != 0 || tr.Len() != 1 {
			t.Fatalf("bad seeded stream %+v", tr)
		}
	}
}

func TestStepAutoInit(t *testing.T) {
	g, dom := newSetup(3)
	s, _ := New(g, Options{Lambda: 10}, ldp.NewRand(4, 5))
	snap := uniformSnapshot(dom, 0)
	s.Step(2, 10, snap)
	if s.ActiveCount() != 10 {
		t.Fatalf("ActiveCount after auto-init = %d", s.ActiveCount())
	}
}

func TestSizeAdjustmentExact(t *testing.T) {
	g, dom := newSetup(3)
	s, _ := New(g, Options{Lambda: 1e9}, ldp.NewRand(6, 7)) // effectively no Eq.8 quits
	snap := uniformSnapshot(dom, 0.5)
	s.Init(0, 20, snap)
	targets := []int{35, 35, 7, 7, 0, 12, 1, 100}
	for i, target := range targets {
		s.Step(i+1, target, snap)
		if s.ActiveCount() != target {
			t.Fatalf("step %d: ActiveCount = %d, want %d", i, s.ActiveCount(), target)
		}
	}
}

func TestStreamsAdjacentAndContiguous(t *testing.T) {
	g, dom := newSetup(4)
	s, _ := New(g, Options{Lambda: 8}, ldp.NewRand(8, 9))
	snap := uniformSnapshot(dom, 0.3)
	s.Init(0, 40, snap)
	for t0 := 1; t0 < 30; t0++ {
		s.Step(t0, 40, snap)
	}
	d := s.Dataset("x", 30)
	if err := d.Validate(g, true); err != nil {
		t.Fatalf("synthetic dataset invalid: %v", err)
	}
}

func TestEq8QuitReweighting(t *testing.T) {
	// With quit frequency q per cell and movement mass 1, QuitProb = q/(1+q).
	// Eq. 8 multiplies by ℓ/λ: at ℓ=λ the per-step quit probability equals
	// QuitProb. Check the observed termination rate on length-1 streams with
	// λ=1 (so ℓ/λ=1 on the first step).
	g, dom := newSetup(3)
	snap := uniformSnapshot(dom, 1.0) // QuitProb = 0.5
	const n = 20000
	s, _ := New(g, Options{Lambda: 1}, ldp.NewRand(10, 11))
	s.Init(0, n, snap)
	s.Step(1, n, snap) // size adjustment respawns; count completions instead
	completed := len(s.Dataset("x", 2).Trajs) - n
	rate := float64(completed) / n
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("termination rate = %v, want ≈0.5", rate)
	}
}

func TestEq8LongerStreamsQuitMore(t *testing.T) {
	g, dom := newSetup(3)
	snap := uniformSnapshot(dom, 0.25) // QuitProb = 0.2
	quitAt := func(lambda float64, steps int) float64 {
		const n = 8000
		s, _ := New(g, Options{Lambda: lambda}, ldp.NewRand(12, 13))
		s.Init(0, n, snap)
		for t0 := 1; t0 <= steps; t0++ {
			s.Step(t0, n, snap)
		}
		// Completed streams = total − still-active.
		return float64(len(s.Dataset("x", steps+1).Trajs)-n) / float64(n)
	}
	short := quitAt(100, 3) // ℓ/λ small → few quits
	long := quitAt(2, 3)    // ℓ/λ large → many quits
	if long <= short {
		t.Fatalf("length reweighting inactive: long=%v short=%v", long, short)
	}
}

func TestMaxQuitProbCap(t *testing.T) {
	g, dom := newSetup(3)
	snap := uniformSnapshot(dom, 100) // QuitProb ≈ 0.99
	s, _ := New(g, Options{Lambda: 0.001, MaxQuitProb: 0.3}, ldp.NewRand(14, 15))
	const n = 20000
	s.Init(0, n, snap)
	s.Step(1, n, snap)
	completed := len(s.Dataset("x", 2).Trajs) - n
	rate := float64(completed) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("capped termination rate = %v, want ≈0.3", rate)
	}
}

func TestDisableTermination(t *testing.T) {
	g, _ := newSetup(3)
	dom := transition.NewMoveOnlyDomain(g)
	snap := uniformSnapshot(dom, 0)
	s, _ := New(g, Options{DisableTermination: true}, ldp.NewRand(16, 17))
	s.Init(0, 25, snap)
	for t0 := 1; t0 < 20; t0++ {
		s.Step(t0, 3 /* ignored */, snap)
		if s.ActiveCount() != 25 {
			t.Fatalf("NoEQ population changed at t=%d: %d", t0, s.ActiveCount())
		}
	}
	d := s.Dataset("x", 20)
	if len(d.Trajs) != 25 {
		t.Fatalf("NoEQ dataset has %d streams", len(d.Trajs))
	}
	for _, tr := range d.Trajs {
		if tr.Len() != 20 {
			t.Fatalf("NoEQ stream length = %d, want 20 (never terminates)", tr.Len())
		}
	}
}

func TestTerminationWeightedByQuitDistribution(t *testing.T) {
	// Two-cell world: streams resting at cell with high quit mass should be
	// terminated far more often during size adjustment.
	g := grid.MustNew(2, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	dom := transition.NewDomain(g)
	m := mobility.NewModel(dom)
	est := make([]float64, dom.Size())
	for c := 0; c < 4; c++ {
		// Strong self-loops so streams stay on their cell.
		idx, _ := dom.MoveIndex(grid.Cell(c), grid.Cell(c))
		est[idx] = 1
		est[dom.EnterIndex(grid.Cell(c))] = 1
	}
	est[dom.QuitIndex(0)] = 1.0 // cell 0: heavy quit mass
	// cells 1..3: zero quit mass
	m.SetAll(est)
	snap := m.Snapshot()

	terminatedAt0 := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s, _ := New(g, Options{Lambda: 1e9}, ldp.NewRand(uint64(trial), 99))
		s.Init(0, 0, snap)
		// Hand-build a population: 1 stream resting at cell 0, 3 at other
		// cells. Streams are length-2 because terminate drops the point of
		// the timestamp being adjusted.
		s.active = []*stream{
			{start: 0, cells: []grid.Cell{0, 0}},
			{start: 0, cells: []grid.Cell{1, 1}},
			{start: 0, cells: []grid.Cell{2, 2}},
			{start: 0, cells: []grid.Cell{3, 3}},
		}
		s.terminate(1, snap)
		for _, tr := range s.completed {
			if tr.Cells[len(tr.Cells)-1] == 0 {
				terminatedAt0++
			}
		}
	}
	rate := float64(terminatedAt0) / trials
	if rate < 0.95 {
		t.Fatalf("quit-weighted termination rate at heavy cell = %v, want ≈1", rate)
	}
}

func TestDatasetIncludesActiveAndCompleted(t *testing.T) {
	g, dom := newSetup(3)
	snap := uniformSnapshot(dom, 0.2)
	s, _ := New(g, Options{Lambda: 5}, ldp.NewRand(20, 21))
	s.Init(0, 30, snap)
	for t0 := 1; t0 < 15; t0++ {
		s.Step(t0, 30, snap)
	}
	d := s.Dataset("x", 15)
	if len(d.Trajs) < 30 {
		t.Fatalf("dataset smaller than population: %d", len(d.Trajs))
	}
	points := 0
	for _, tr := range d.Trajs {
		points += tr.Len()
	}
	// Population was held at 30 across 15 timestamps → exactly 450 points.
	if points != 450 {
		t.Fatalf("total points = %d, want 450", points)
	}
}

func TestZeroTargetStaysEmpty(t *testing.T) {
	g, dom := newSetup(3)
	snap := uniformSnapshot(dom, 0.2)
	s, _ := New(g, Options{Lambda: 5}, ldp.NewRand(22, 23))
	s.Init(0, 0, snap)
	for t0 := 1; t0 < 5; t0++ {
		s.Step(t0, 0, snap)
		if s.ActiveCount() != 0 {
			t.Fatalf("empty population grew at t=%d", t0)
		}
	}
}
