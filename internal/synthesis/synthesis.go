// Package synthesis implements RetraSyn's real-time trajectory generator
// (paper §III-D): at every timestamp each live synthetic stream either
// terminates — with the length-reweighted quitting probability of Eq. 8 —
// or extends by one cell drawn from the Markov movement distribution; then
// the synthetic population is resized to match the (publicly known) number
// of active real users, appending new streams started from the entering
// distribution E and terminating surplus streams weighted by the quitting
// distribution Q.
package synthesis

import (
	"fmt"
	"math"
	"sort"

	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

// Options configures a Synthesizer.
type Options struct {
	// Lambda is the termination restriction factor λ of Eq. 8; the paper sets
	// it to the dataset's average trajectory length. Must be > 0 unless
	// DisableTermination is set.
	Lambda float64
	// DisableTermination turns off stream quitting and size adjustment (the
	// NoEQ ablation and the LDP-IDS baselines): streams never terminate, and
	// the population is fixed at initialization.
	DisableTermination bool
	// MaxQuitProb caps the reweighted quit probability of Eq. 8 — ℓ/λ grows
	// without bound, so an explicit ceiling keeps the probability valid.
	// Defaults to 1.
	MaxQuitProb float64
	// Workers > 1 parallelizes new-point generation across that many
	// goroutines once the population is large enough (the paper §VII's
	// future-work acceleration). Runs are deterministic for a fixed
	// (Seed, Workers) pair but differ from the serial stream.
	Workers int
	// Seed drives the per-shard generators of the parallel path.
	Seed uint64
}

// Synthesizer owns the evolving synthetic database T_syn. It is not safe
// for concurrent use.
type Synthesizer struct {
	sp   spatial.Discretizer
	opts Options
	rng  ldp.Rand

	active    []*stream
	completed []trajectory.CellTrajectory
	started   bool
	now       int // last processed timestamp
	stepCount int // steps processed, keys the parallel shard generators
}

type stream struct {
	start int
	cells []spatial.Cell
}

func (s *stream) last() spatial.Cell { return s.cells[len(s.cells)-1] }

// New creates a synthesizer over the spatial discretization sp.
func New(sp spatial.Discretizer, opts Options, rng ldp.Rand) (*Synthesizer, error) {
	if opts.MaxQuitProb == 0 {
		opts.MaxQuitProb = 1
	}
	if opts.MaxQuitProb < 0 || opts.MaxQuitProb > 1 {
		return nil, fmt.Errorf("synthesis: MaxQuitProb %v outside (0,1]", opts.MaxQuitProb)
	}
	if !opts.DisableTermination && !(opts.Lambda > 0) {
		return nil, fmt.Errorf("synthesis: Lambda must be > 0, got %v", opts.Lambda)
	}
	return &Synthesizer{sp: sp, opts: opts, rng: rng}, nil
}

// ActiveCount returns the number of live synthetic streams.
func (s *Synthesizer) ActiveCount() int { return len(s.active) }

// ActiveCells appends the current (latest) cell of every live stream to buf
// in stream order and returns it — the released positions at the current
// timestamp, which online re-discretization sketches density from.
func (s *Synthesizer) ActiveCells(buf []spatial.Cell) []spatial.Cell {
	for _, st := range s.active {
		buf = append(buf, st.last())
	}
	return buf
}

// Relayout switches the synthesizer onto a new spatial discretization.
// When mapCell is non-nil every stored cell — in-flight streams and the
// completed history alike — is remapped through it (online re-discretization
// passes the max-overlap cell map), keeping the released database coherent
// in the new layout; a nil mapCell only swaps the space (checkpoint restore,
// where the restored streams already carry new-layout cells).
func (s *Synthesizer) Relayout(sp spatial.Discretizer, mapCell func(spatial.Cell) spatial.Cell) {
	s.sp = sp
	if mapCell == nil {
		return
	}
	for _, st := range s.active {
		for i, c := range st.cells {
			st.cells[i] = mapCell(c)
		}
	}
	for _, tr := range s.completed {
		for i, c := range tr.Cells {
			tr.Cells[i] = mapCell(c)
		}
	}
}

// Init seeds the synthetic database at timestamp t with target streams whose
// starting cells are drawn from the snapshot's entering distribution (or
// uniformly, for move-only models — the NoEQ/baseline initialization the
// paper describes as "randomly initialized").
func (s *Synthesizer) Init(t, target int, snap *mobility.Snapshot) {
	s.started = true
	s.now = t
	for i := 0; i < target; i++ {
		s.spawn(t, snap)
	}
}

func (s *Synthesizer) spawn(t int, snap *mobility.Snapshot) {
	var c spatial.Cell
	if s.opts.DisableTermination {
		c = spatial.Cell(s.rng.IntN(s.sp.NumCells()))
	} else {
		c = snap.SampleEnter(s.rng)
	}
	s.active = append(s.active, &stream{start: t, cells: []spatial.Cell{c}})
}

// Step advances the synthetic database to timestamp t (which must be the
// successor of the last processed timestamp): new point generation followed
// by size adjustment toward target. If the synthesizer has not been
// initialized yet, Step initializes it at t with target streams.
func (s *Synthesizer) Step(t, target int, snap *mobility.Snapshot) {
	if !s.started {
		s.Init(t, target, snap)
		return
	}
	s.now = t
	s.stepCount++

	// Phase 1 — new point generation (Eq. 8 termination + Markov move).
	if s.opts.Workers > 1 && len(s.active) >= parallelThreshold {
		s.stepParallel(snap)
	} else {
		keep := s.active[:0]
		for _, st := range s.active {
			if !s.opts.DisableTermination {
				p := float64(len(st.cells)) / s.opts.Lambda * snap.QuitProb(st.last())
				if p > s.opts.MaxQuitProb {
					p = s.opts.MaxQuitProb
				}
				if ldp.Bernoulli(s.rng, p) {
					s.completed = append(s.completed, trajectory.CellTrajectory{Start: st.start, Cells: st.cells})
					continue
				}
			}
			st.cells = append(st.cells, snap.SampleMove(s.rng, st.last()))
			keep = append(keep, st)
		}
		// Zero dropped tail pointers so completed streams can be collected.
		for i := len(keep); i < len(s.active); i++ {
			s.active[i] = nil
		}
		s.active = keep
	}

	// Phase 2 — size adjustment.
	if s.opts.DisableTermination {
		return
	}
	switch {
	case target > len(s.active):
		for len(s.active) < target {
			s.spawn(t, snap)
		}
	case target < len(s.active):
		s.terminate(len(s.active)-target, snap)
	}
}

// terminate removes k streams, weighted by the quitting distribution over
// their most recent locations (weighted sampling without replacement via
// exponential keys). Streams whose last cell carries no quit mass still get
// a small floor weight so termination always succeeds. Terminated streams
// drop the point appended earlier in the same Step — a stream terminated at
// timestamp t has its final location at t−1, exactly like an Eq. 8 quit —
// which keeps the per-timestamp point count of T_syn equal to the target.
func (s *Synthesizer) terminate(k int, snap *mobility.Snapshot) {
	type keyed struct {
		idx int
		key float64
	}
	keys := make([]keyed, len(s.active))
	const floor = 1e-12
	for i, st := range s.active {
		w := snap.QuitWeight(st.last()) + floor
		u := s.rng.Float64()
		for u == 0 {
			u = s.rng.Float64()
		}
		// A-Res weighted reservoir key: u^(1/w); larger keys win.
		keys[i] = keyed{idx: i, key: math.Pow(u, 1/w)}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key > keys[b].key })
	doomed := make(map[int]bool, k)
	for i := 0; i < k && i < len(keys); i++ {
		doomed[keys[i].idx] = true
	}
	keep := s.active[:0]
	for i, st := range s.active {
		if doomed[i] {
			cells := st.cells[:len(st.cells)-1]
			if len(cells) > 0 {
				s.completed = append(s.completed, trajectory.CellTrajectory{Start: st.start, Cells: cells})
			}
			continue
		}
		keep = append(keep, st)
	}
	for i := len(keep); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = keep
}

// State is the serializable form of a Synthesizer, used by engine
// checkpoints. Active and Completed streams reuse the CellTrajectory shape.
type State struct {
	Active    []trajectory.CellTrajectory `json:"active"`
	Completed []trajectory.CellTrajectory `json:"completed"`
	Started   bool                        `json:"started"`
	Now       int                         `json:"now"`
	StepCount int                         `json:"step_count"`
}

// State exports a deep copy of the synthesizer's mutable state. The copy is
// stable: subsequent Steps never mutate it.
func (s *Synthesizer) State() State {
	st := State{
		Active:    make([]trajectory.CellTrajectory, len(s.active)),
		Completed: make([]trajectory.CellTrajectory, len(s.completed)),
		Started:   s.started,
		Now:       s.now,
		StepCount: s.stepCount,
	}
	for i, str := range s.active {
		st.Active[i] = trajectory.CellTrajectory{Start: str.start, Cells: append([]spatial.Cell(nil), str.cells...)}
	}
	for i, tr := range s.completed {
		st.Completed[i] = trajectory.CellTrajectory{Start: tr.Start, Cells: append([]spatial.Cell(nil), tr.Cells...)}
	}
	return st
}

// Restore replaces the synthesizer's state with a previously exported one.
func (s *Synthesizer) Restore(st State) {
	s.active = make([]*stream, len(st.Active))
	for i, tr := range st.Active {
		s.active[i] = &stream{start: tr.Start, cells: append([]spatial.Cell(nil), tr.Cells...)}
	}
	s.completed = make([]trajectory.CellTrajectory, len(st.Completed))
	for i, tr := range st.Completed {
		s.completed[i] = trajectory.CellTrajectory{Start: tr.Start, Cells: append([]spatial.Cell(nil), tr.Cells...)}
	}
	s.started = st.Started
	s.now = st.Now
	s.stepCount = st.StepCount
}

// Dataset returns the released synthetic database over timeline [0, T):
// all completed streams plus the still-active ones.
func (s *Synthesizer) Dataset(name string, T int) *trajectory.Dataset {
	d := &trajectory.Dataset{Name: name, T: T}
	d.Trajs = make([]trajectory.CellTrajectory, 0, len(s.completed)+len(s.active))
	d.Trajs = append(d.Trajs, s.completed...)
	for _, st := range s.active {
		d.Trajs = append(d.Trajs, trajectory.CellTrajectory{Start: st.start, Cells: st.cells})
	}
	return d
}
