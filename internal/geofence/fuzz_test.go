package geofence

import (
	"bytes"
	"testing"

	"retrasyn/internal/spatial"
)

// Native Go fuzzing for the fence parser, mirroring the trajectory parser
// targets: every accepted input must survive full geometric validation or be
// rejected with an error (never panic), and every fence that validates must
// round-trip through WriteFence→ParseFence onto the identical layout
// fingerprint. The seed corpus covers the malformed shapes the validator
// exists for: open and closed rings, reversed winding, duplicate vertices,
// self-intersections, holes, overlaps and plain junk.
//
// Run longer campaigns with:
//
//	go test ./internal/geofence -run='^$' -fuzz=FuzzParseFence -fuzztime=60s

func FuzzParseFence(f *testing.F) {
	seeds := []string{
		// Healthy: two edge-sharing squares, open rings.
		`{"type":"FeatureCollection","features":[
		  {"geometry":{"type":"Polygon","coordinates":[[[0,0],[2,0],[2,2],[0,2]]]}},
		  {"geometry":{"type":"Polygon","coordinates":[[[2,0],[4,0],[4,2],[2,2]]]}}]}`,
		// Healthy: bare closed polygon.
		`{"type":"Polygon","coordinates":[[[0,0],[3,0],[3,3],[0,3],[0,0]]]}`,
		// Healthy: MultiPolygon, one ring reversed (clockwise winding).
		`{"type":"MultiPolygon","coordinates":[[[[0,0],[1,0],[1,1]]],[[[5,5],[5,6],[6,6],[6,5]]]]}`,
		// Duplicate vertices collapsing to a degenerate ring.
		`{"type":"Polygon","coordinates":[[[0,0],[0,0],[1,1],[1,1],[0,0]]]}`,
		// Self-intersecting bowtie.
		`{"type":"Polygon","coordinates":[[[0,0],[2,2],[2,0],[0,2],[0,0]]]}`,
		// Zero-area collinear ring.
		`{"type":"Polygon","coordinates":[[[0,0],[1,1],[2,2],[0,0]]]}`,
		// Overlapping squares.
		`{"type":"MultiPolygon","coordinates":[[[[0,0],[2,0],[2,2],[0,2]]],[[[1,1],[3,1],[3,3],[1,3]]]]}`,
		// Hole — rejected by the format.
		`{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4]],[[1,1],[2,1],[2,2],[1,2]]]}`,
		// Two-vertex ring.
		`{"type":"Polygon","coordinates":[[[0,0],[1,1]]]}`,
		// 3D coordinates.
		`{"type":"Polygon","coordinates":[[[0,0,1],[1,0,1],[1,1,1]]]}`,
		// Wrong geometry / document types and junk.
		`{"type":"Point","coordinates":[1,2]}`,
		`{"type":"FeatureCollection","features":[{"geometry":{"type":"LineString","coordinates":[[0,0],[1,1]]}}]}`,
		`{"type":"FeatureCollection","features":[{}]}`,
		`{}`,
		`[]`,
		`not json at all`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		polys, err := ParseFence(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(polys) == 0 {
			t.Fatal("ParseFence returned no polygons without an error")
		}
		fence, err := NewFence(polys)
		if err != nil {
			return // parsed but geometrically invalid — rejected, not panicked
		}
		// Accepted fences satisfy the discretizer basics…
		if fence.NumCells() != len(polys) {
			t.Fatalf("fence has %d cells from %d polygons", fence.NumCells(), len(polys))
		}
		for c := spatial.Cell(0); int(c) < fence.NumCells(); c++ {
			x, y := fence.Center(c)
			if got := fence.CellOf(x, y); got != c {
				t.Fatalf("CellOf(Center(%d)) = %d", c, got)
			}
			if fence.CellArea(c) <= 0 {
				t.Fatalf("cell %d has area %v", c, fence.CellArea(c))
			}
		}
		// …and round-trip through the writer onto the identical layout.
		var buf bytes.Buffer
		if err := WriteFence(&buf, fence.Polygons()); err != nil {
			t.Fatalf("write accepted fence: %v", err)
		}
		back, err := ParseFence(&buf)
		if err != nil {
			t.Fatalf("re-parse written fence: %v", err)
		}
		fence2, err := NewFence(back)
		if err != nil {
			t.Fatalf("re-validate written fence: %v", err)
		}
		if fence2.Fingerprint() != fence.Fingerprint() {
			t.Fatalf("round-trip drifted the layout: %s ≠ %s", fence2.Fingerprint(), fence.Fingerprint())
		}
	})
}
