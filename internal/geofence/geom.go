package geofence

import (
	"math"

	"retrasyn/internal/spatial"
)

// Polygon geometry primitives: signed area, point-in-polygon, segment
// intersection, ear-clipping triangulation and Sutherland–Hodgman clipping.
// Everything here is plain float64 geometry with deterministic results; the
// validation in NewFence guarantees the inputs are simple, positive-area,
// non-overlapping rings, which keeps the predicates out of the degenerate
// regimes where exact arithmetic would be needed.

// signedArea returns the signed area of the ring (positive when the vertices
// wind counter-clockwise).
func signedArea(ring []spatial.Point) float64 {
	s := 0.0
	for i, p := range ring {
		q := ring[(i+1)%len(ring)]
		s += p.X*q.Y - q.X*p.Y
	}
	return s / 2
}

// ringBounds returns the bounding box of a ring.
func ringBounds(ring []spatial.Point) spatial.Bounds {
	b := spatial.Bounds{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, p := range ring {
		b.MinX = math.Min(b.MinX, p.X)
		b.MinY = math.Min(b.MinY, p.Y)
		b.MaxX = math.Max(b.MaxX, p.X)
		b.MaxY = math.Max(b.MaxY, p.Y)
	}
	return b
}

// pointInRing reports whether (x, y) lies inside the ring or on its boundary
// (crossing-number test with an explicit on-edge check, so boundary points
// count as inside regardless of float luck in the crossing test).
func pointInRing(ring []spatial.Point, x, y float64) bool {
	inside := false
	for i, a := range ring {
		b := ring[(i+1)%len(ring)]
		if onSegment(a, b, spatial.Point{X: x, Y: y}) {
			return true
		}
		if (a.Y > y) != (b.Y > y) {
			// x coordinate where the edge crosses the horizontal through y.
			cx := a.X + (y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if x < cx {
				inside = !inside
			}
		}
	}
	return inside
}

// cross returns the z component of (b−a) × (c−a).
func cross(a, b, c spatial.Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether p lies on the closed segment ab.
func onSegment(a, b, p spatial.Point) bool {
	if cross(a, b, p) != 0 {
		return false
	}
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// segmentsIntersect reports whether closed segments ab and cd share at least
// one point (proper crossings, T-junctions, endpoint touches and collinear
// overlaps all count).
func segmentsIntersect(a, b, c, d spatial.Point) bool {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSegment(c, d, a)) || (d2 == 0 && onSegment(c, d, b)) ||
		(d3 == 0 && onSegment(a, b, c)) || (d4 == 0 && onSegment(a, b, d))
}

// selfIntersects returns the edge indices of the first pair of
// non-neighbouring edges that touch, or (-1, -1) for a simple ring. Edges
// sharing a ring vertex are exempt only at that shared vertex, so
// figure-eights pinched at a vertex are caught too.
func selfIntersects(ring []spatial.Point) (int, int) {
	n := len(ring)
	for i := 0; i < n; i++ {
		a, b := ring[i], ring[(i+1)%n]
		for j := i + 1; j < n; j++ {
			c, d := ring[j], ring[(j+1)%n]
			if j == i+1 || (i == 0 && j == n-1) {
				// Neighbouring edges legitimately share one endpoint; a
				// collinear fold-back (the next edge reversing over this one)
				// is still an intersection.
				u, v, far := a, b, d // edge j leaves from v=b toward far=d
				if i == 0 && j == n-1 {
					u, v, far = b, a, c // edge n−1 arrives at v=a from far=c
				}
				if cross(u, v, far) == 0 && (far.X-v.X)*(u.X-v.X)+(far.Y-v.Y)*(u.Y-v.Y) > 0 {
					return i, j
				}
				continue
			}
			if segmentsIntersect(a, b, c, d) {
				return i, j
			}
		}
	}
	return -1, -1
}

// triangulate ear-clips a simple counter-clockwise ring into triangles. The
// result is deterministic (always clips the lowest-index ear first) and
// partitions the polygon exactly.
func triangulate(ring []spatial.Point) [][]spatial.Point {
	n := len(ring)
	if n == 3 {
		return [][]spatial.Point{append([]spatial.Point(nil), ring...)}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out [][]spatial.Point
	for len(idx) > 3 {
		clipped := false
		for i := 0; i < len(idx); i++ {
			ia := idx[(i+len(idx)-1)%len(idx)]
			ib := idx[i]
			ic := idx[(i+1)%len(idx)]
			a, b, c := ring[ia], ring[ib], ring[ic]
			if cross(a, b, c) <= 0 {
				continue // reflex or degenerate corner — not an ear
			}
			ear := true
			for _, j := range idx {
				if j == ia || j == ib || j == ic {
					continue
				}
				if triangleContains(a, b, c, ring[j]) {
					ear = false
					break
				}
			}
			if !ear {
				continue
			}
			out = append(out, []spatial.Point{a, b, c})
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			// Numerically stuck (collinear runs) — close with a fan from the
			// first remaining vertex. Validation keeps us off this path for
			// healthy rings; the fan still covers the region.
			for i := 1; i+1 < len(idx); i++ {
				out = append(out, []spatial.Point{ring[idx[0]], ring[idx[i]], ring[idx[i+1]]})
			}
			return out
		}
	}
	out = append(out, []spatial.Point{ring[idx[0]], ring[idx[1]], ring[idx[2]]})
	return out
}

// triangleContains reports whether p lies inside or on triangle abc (CCW).
func triangleContains(a, b, c, p spatial.Point) bool {
	return cross(a, b, p) >= 0 && cross(b, c, p) >= 0 && cross(c, a, p) >= 0
}

// clipConvex clips a subject ring against a convex counter-clockwise clip
// ring (Sutherland–Hodgman) and returns the clipped ring (possibly empty).
func clipConvex(subject, clip []spatial.Point) []spatial.Point {
	out := append([]spatial.Point(nil), subject...)
	for i := 0; i < len(clip) && len(out) > 0; i++ {
		a := clip[i]
		b := clip[(i+1)%len(clip)]
		in := out
		out = out[:0:0]
		for j := 0; j < len(in); j++ {
			p := in[j]
			q := in[(j+1)%len(in)]
			pin := cross(a, b, p) >= 0
			qin := cross(a, b, q) >= 0
			if pin {
				out = append(out, p)
			}
			if pin != qin {
				out = append(out, lineIntersect(a, b, p, q))
			}
		}
	}
	return out
}

// lineIntersect returns the intersection of the infinite line ab with segment
// pq (callers guarantee pq straddles ab).
func lineIntersect(a, b, p, q spatial.Point) spatial.Point {
	dp := cross(a, b, p)
	dq := cross(a, b, q)
	t := dp / (dp - dq)
	return spatial.Point{X: p.X + t*(q.X-p.X), Y: p.Y + t*(q.Y-p.Y)}
}

// ConvexClipArea returns |subject ∩ clip| for a convex counter-clockwise
// clip ring (Sutherland–Hodgman). The subject ring must be counter-clockwise
// too; both may be any convex piece — triangle, rectangle or larger. This is
// the primitive the migration layer (internal/relayout) sums over cell
// decompositions to get polygon–polygon and polygon–box overlap areas.
func ConvexClipArea(subject, clip []spatial.Point) float64 {
	r := clipConvex(subject, clip)
	if len(r) < 3 {
		return 0
	}
	a := signedArea(r)
	if a < 0 {
		return 0 // degenerate sliver folded inside out — no real overlap
	}
	return a
}

// representativePoint returns a point strictly inside the simple CCW ring:
// the centroid when the polygon contains it, otherwise the midpoint of the
// widest span of a horizontal scanline through the polygon's interior (the
// standard label-point construction, safe for L- and U-shaped cells whose
// centroid falls outside).
func representativePoint(ring []spatial.Point) spatial.Point {
	cx, cy, ok := centroid(ring)
	if ok && pointInRingStrict(ring, cx, cy) {
		return spatial.Point{X: cx, Y: cy}
	}
	b := ringBounds(ring)
	y := (b.MinY + b.MaxY) / 2
	// Nudge the scanline off any vertex y so edge crossings are unambiguous.
	for _, p := range ring {
		if p.Y == y {
			lo, hi := b.MinY, b.MaxY
			for _, q := range ring {
				if q.Y < y && q.Y > lo {
					lo = q.Y
				}
				if q.Y > y && q.Y < hi {
					hi = q.Y
				}
			}
			y = (y + hi) / 2
			if y == hi { // fully flat polygon row; fall back to centroid
				return spatial.Point{X: cx, Y: cy}
			}
			break
		}
	}
	var xs []float64
	for i, a := range ring {
		c := ring[(i+1)%len(ring)]
		if (a.Y > y) != (c.Y > y) {
			xs = append(xs, a.X+(y-a.Y)/(c.Y-a.Y)*(c.X-a.X))
		}
	}
	if len(xs) < 2 {
		return spatial.Point{X: cx, Y: cy}
	}
	sortFloats(xs)
	bestX, bestW := cx, -1.0
	for i := 0; i+1 < len(xs); i += 2 {
		if w := xs[i+1] - xs[i]; w > bestW {
			bestW = w
			bestX = (xs[i] + xs[i+1]) / 2
		}
	}
	return spatial.Point{X: bestX, Y: y}
}

// centroid returns the area centroid of the ring.
func centroid(ring []spatial.Point) (x, y float64, ok bool) {
	a := signedArea(ring)
	if a == 0 {
		return 0, 0, false
	}
	for i, p := range ring {
		q := ring[(i+1)%len(ring)]
		w := p.X*q.Y - q.X*p.Y
		x += (p.X + q.X) * w
		y += (p.Y + q.Y) * w
	}
	return x / (6 * a), y / (6 * a), true
}

// pointInRingStrict reports whether (x, y) lies strictly inside the ring.
func pointInRingStrict(ring []spatial.Point, x, y float64) bool {
	for i, a := range ring {
		if onSegment(a, ring[(i+1)%len(ring)], spatial.Point{X: x, Y: y}) {
			return false
		}
	}
	return pointInRing(ring, x, y)
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
