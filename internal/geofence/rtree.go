package geofence

import (
	"math"
	"sort"

	"retrasyn/internal/spatial"
)

// Static STR-packed R-tree over the fence polygons' bounding boxes. CellOf is
// the engine's hottest spatial call (every discretized point and every
// synthetic sample goes through it), so point lookups must not scan all C
// polygons: the tree narrows a query to the few boxes containing the point in
// O(log C), and the exact point-in-polygon test runs only on those. The tree
// is bulk-loaded once at construction (Sort-Tile-Recursive packing, fully
// deterministic) and immutable afterwards.

const rtreeFanout = 8

type rtreeNode struct {
	box spatial.Bounds
	// children indexes rtree.nodes for internal nodes; leaves instead carry
	// the polygon indices they cover.
	children []int32
	items    []int32
}

type rtree struct {
	nodes []rtreeNode
	root  int32
}

// newRTree bulk-loads the tree from per-polygon bounding boxes.
func newRTree(boxes []spatial.Bounds) *rtree {
	t := &rtree{}
	items := make([]int32, len(boxes))
	for i := range items {
		items[i] = int32(i)
	}
	if len(items) == 0 {
		t.root = t.push(rtreeNode{})
		return t
	}
	// STR: sort by center x, slice into vertical slabs, sort each slab by
	// center y, pack runs of up to fanout items into leaves.
	sort.Slice(items, func(a, b int) bool {
		ca, cb := boxCenterX(boxes[items[a]]), boxCenterX(boxes[items[b]])
		if ca != cb {
			return ca < cb
		}
		return items[a] < items[b]
	})
	leafCount := (len(items) + rtreeFanout - 1) / rtreeFanout
	slabs := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlab := (len(items) + slabs - 1) / slabs
	var level []int32
	for s := 0; s < len(items); s += perSlab {
		e := s + perSlab
		if e > len(items) {
			e = len(items)
		}
		slab := items[s:e]
		sort.Slice(slab, func(a, b int) bool {
			ca, cb := boxCenterY(boxes[slab[a]]), boxCenterY(boxes[slab[b]])
			if ca != cb {
				return ca < cb
			}
			return slab[a] < slab[b]
		})
		for i := 0; i < len(slab); i += rtreeFanout {
			j := i + rtreeFanout
			if j > len(slab) {
				j = len(slab)
			}
			leaf := rtreeNode{items: append([]int32(nil), slab[i:j]...)}
			leaf.box = boxes[leaf.items[0]]
			for _, it := range leaf.items[1:] {
				leaf.box = boxUnion(leaf.box, boxes[it])
			}
			level = append(level, t.push(leaf))
		}
	}
	// Pack upper levels until one root remains.
	for len(level) > 1 {
		var next []int32
		for i := 0; i < len(level); i += rtreeFanout {
			j := i + rtreeFanout
			if j > len(level) {
				j = len(level)
			}
			n := rtreeNode{children: append([]int32(nil), level[i:j]...)}
			n.box = t.nodes[n.children[0]].box
			for _, c := range n.children[1:] {
				n.box = boxUnion(n.box, t.nodes[c].box)
			}
			next = append(next, t.push(n))
		}
		level = next
	}
	t.root = level[0]
	return t
}

func (t *rtree) push(n rtreeNode) int32 {
	t.nodes = append(t.nodes, n)
	return int32(len(t.nodes) - 1)
}

// visitPoint calls visit for every polygon whose bounding box contains
// (x, y). Visit order follows the packing, not the index order; callers
// needing a deterministic pick reduce over all visits. The walk allocates
// nothing, keeping CellOf clean on the hot path.
func (t *rtree) visitPoint(x, y float64, visit func(i int32)) {
	t.walkPoint(t.root, x, y, visit)
}

func (t *rtree) walkPoint(node int32, x, y float64, visit func(i int32)) {
	n := &t.nodes[node]
	if !boxContains(n.box, x, y) {
		return
	}
	for _, it := range n.items {
		visit(it)
	}
	for _, c := range n.children {
		t.walkPoint(c, x, y, visit)
	}
}

// queryBox appends the indices of polygons whose bounding box intersects b
// (shared edges included) to out, in ascending index order.
func (t *rtree) queryBox(b spatial.Bounds, out []int32) []int32 {
	out = t.walkBox(t.root, b, out)
	sortInt32(out)
	return out
}

func (t *rtree) walkBox(node int32, b spatial.Bounds, out []int32) []int32 {
	n := &t.nodes[node]
	if n.box.MinX > b.MaxX || b.MinX > n.box.MaxX || n.box.MinY > b.MaxY || b.MinY > n.box.MaxY {
		return out
	}
	for _, it := range n.items {
		out = append(out, it)
	}
	for _, c := range n.children {
		out = t.walkBox(c, b, out)
	}
	return out
}

func boxCenterX(b spatial.Bounds) float64 { return (b.MinX + b.MaxX) / 2 }
func boxCenterY(b spatial.Bounds) float64 { return (b.MinY + b.MaxY) / 2 }

func boxContains(b spatial.Bounds, x, y float64) bool {
	return x >= b.MinX && x <= b.MaxX && y >= b.MinY && y <= b.MaxY
}

func boxUnion(a, b spatial.Bounds) spatial.Bounds {
	return spatial.Bounds{
		MinX: math.Min(a.MinX, b.MinX),
		MinY: math.Min(a.MinY, b.MinY),
		MaxX: math.Max(a.MaxX, b.MaxX),
		MaxY: math.Max(a.MaxY, b.MaxY),
	}
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
