// Package geofence implements a spatial.Discretizer whose cells are
// arbitrary simple polygons — districts, campuses, road corridors — instead
// of axis-aligned rectangles. Grid-style discretizations spend their cell
// budget (and with it the per-state LDP variance, which grows with the
// transition-domain size |S|) uniformly over the bounding box, even when most
// of that box is unreachable water, farmland or off-limits space; a fence
// spends cells only where trajectories can actually be, the way the
// traffic-constrained synthesis line of work shapes its domain to real
// geography.
//
// Cells are loaded from a GeoJSON-style fence file (see ParseFence) or built
// programmatically. Construction validates the polygon set — simple rings,
// positive area, pairwise disjoint interiors — and precomputes everything the
// engine's hot paths need: an STR-packed R-tree so CellOf stays O(log C),
// shared-edge adjacency lists (two cells are mutually reachable when their
// boundaries share a positive-length segment), interior sample points with
// the CellOf(Center(c)) == c round-trip guarantee, and a sha256 layout
// fingerprint for checkpoint validation. The fence also implements
// spatial.Overlapper (convex decomposition per cell), which is what lets
// geofenced layouts participate in online re-discretization migrations.
package geofence

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"retrasyn/internal/spatial"
)

// Polygon is one fence cell: a simple polygon given as its vertex ring
// without a repeated closing vertex. Either winding is accepted;
// construction normalizes to counter-clockwise.
type Polygon []spatial.Point

// Fence is a polygonal spatial discretization. It is immutable after
// construction and safe for concurrent use.
type Fence struct {
	bounds spatial.Bounds
	polys  []Polygon        // normalized CCW rings, cell index order
	boxes  []spatial.Bounds // per-cell bounding box
	areas  []float64
	pieces [][][]spatial.Point // per-cell convex decomposition (triangles)
	center []spatial.Point     // per-cell interior sample point
	index  *rtree

	neighbors [][]spatial.Cell
	nMove     int
	fp        string
}

// adjacencyEps is the relative tolerance (scaled by the fence diagonal) under
// which two collinear boundary segments count as shared. Fences authored with
// exactly matching border vertices — the format the validator encourages —
// are far above it.
const adjacencyEps = 1e-9

// NewFence validates and builds a fence from a polygon set. Errors name the
// offending polygon index: rings with fewer than 3 distinct vertices,
// non-finite coordinates, zero area, self-intersections and pairwise interior
// overlaps are all rejected at load time rather than corrupting the engine
// later. Cell indices follow input order.
func NewFence(polys []Polygon) (*Fence, error) {
	if len(polys) == 0 {
		return nil, fmt.Errorf("geofence: a fence needs at least one polygon")
	}
	if len(polys) > math.MaxInt32 {
		return nil, fmt.Errorf("geofence: %d polygons exceed the cell index space", len(polys))
	}
	f := &Fence{
		polys:  make([]Polygon, len(polys)),
		boxes:  make([]spatial.Bounds, len(polys)),
		areas:  make([]float64, len(polys)),
		pieces: make([][][]spatial.Point, len(polys)),
		center: make([]spatial.Point, len(polys)),
	}
	for i, p := range polys {
		ring, err := normalizeRing(p)
		if err != nil {
			return nil, fmt.Errorf("geofence: polygon %d: %w", i, err)
		}
		f.polys[i] = ring
		f.boxes[i] = ringBounds(ring)
		f.areas[i] = signedArea(ring)
	}
	f.bounds = f.boxes[0]
	for _, b := range f.boxes[1:] {
		f.bounds = boxUnion(f.bounds, b)
	}
	if !f.bounds.Valid() {
		return nil, fmt.Errorf("geofence: degenerate fence bounds %+v", f.bounds)
	}
	f.index = newRTree(f.boxes)
	if err := f.checkOverlaps(); err != nil {
		return nil, err
	}
	for i, ring := range f.polys {
		f.pieces[i] = triangulate(ring)
		if err := f.placeCenter(spatial.Cell(i)); err != nil {
			return nil, err
		}
	}
	f.buildNeighbors()
	f.fp = f.computeFingerprint()
	return f, nil
}

// MustNewFence is NewFence but panics on error; intended for tests and
// literals with constant arguments.
func MustNewFence(polys []Polygon) *Fence {
	f, err := NewFence(polys)
	if err != nil {
		panic(err)
	}
	return f
}

// normalizeRing strips a repeated closing vertex and exact consecutive
// duplicates, checks the remaining ring is a finite, positive-area simple
// polygon, and returns it wound counter-clockwise.
func normalizeRing(p Polygon) (Polygon, error) {
	ring := append(Polygon(nil), p...)
	if len(ring) > 1 && ring[0] == ring[len(ring)-1] {
		ring = ring[:len(ring)-1] // GeoJSON-style closed ring
	}
	out := ring[:0]
	for _, v := range ring {
		if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsInf(v.X, 0) || math.IsInf(v.Y, 0) {
			return nil, fmt.Errorf("non-finite vertex (%v, %v)", v.X, v.Y)
		}
		if len(out) > 0 && out[len(out)-1] == v {
			continue // collapse duplicate consecutive vertices
		}
		out = append(out, v)
	}
	if len(out) < 3 {
		return nil, fmt.Errorf("ring has %d distinct vertices, need ≥ 3", len(out))
	}
	a := signedArea(out)
	if a == 0 {
		return nil, fmt.Errorf("zero-area ring")
	}
	if a < 0 { // clockwise input — reverse to CCW
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	if i, j := selfIntersects(out); i >= 0 {
		return nil, fmt.Errorf("self-intersecting ring (edges %d and %d touch)", i, j)
	}
	// Canonical rotation: start at the lexicographically smallest vertex, so
	// the same polygon authored with a different starting vertex or winding
	// yields the same ring — and the same layout fingerprint.
	lo := 0
	for i := 1; i < len(out); i++ {
		if out[i].X < out[lo].X || (out[i].X == out[lo].X && out[i].Y < out[lo].Y) {
			lo = i
		}
	}
	if lo != 0 {
		rot := make(Polygon, 0, len(out))
		rot = append(rot, out[lo:]...)
		rot = append(rot, out[:lo]...)
		out = rot
	}
	return out, nil
}

// checkOverlaps rejects polygon pairs with intersecting interiors. Shared
// boundary segments (the adjacency mechanism) are fine; crossings and
// containment are not. Candidate pairs come from the R-tree, so healthy
// fences stay near-linear.
func (f *Fence) checkOverlaps() error {
	var cand []int32
	for i := range f.polys {
		cand = f.index.queryBox(f.boxes[i], cand[:0])
		for _, j := range cand {
			if int(j) <= i {
				continue
			}
			if f.interiorsOverlap(i, int(j)) {
				return fmt.Errorf("geofence: polygons %d and %d overlap — fence cells must have disjoint interiors", i, j)
			}
		}
	}
	return nil
}

// interiorsOverlap tests whether the interiors of polygons i and j intersect:
// any proper edge crossing, or a probe point of one polygon strictly inside
// the other. Probes are every vertex, every edge midpoint and the
// representative interior point, which together catch containment, exact
// duplicates and collinear-edge partial overlaps — the configurations real
// fence files get wrong.
func (f *Fence) interiorsOverlap(i, j int) bool {
	a, b := f.polys[i], f.polys[j]
	for ii, p := range a {
		q := a[(ii+1)%len(a)]
		for jj, r := range b {
			s := b[(jj+1)%len(b)]
			if properCross(p, q, r, s) {
				return true
			}
		}
	}
	return probeInside(a, b) || probeInside(b, a)
}

// properCross reports whether segments pq and rs cross at an interior point
// of both (boundary touches and collinear shared edges do not count — those
// are legitimate adjacency contacts).
func properCross(p, q, r, s spatial.Point) bool {
	d1 := cross(r, s, p)
	d2 := cross(r, s, q)
	d3 := cross(p, q, r)
	d4 := cross(p, q, s)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

// probeInside reports whether any probe point of ring — vertex, edge
// midpoint or representative interior point — lies strictly inside other.
func probeInside(ring, other Polygon) bool {
	for i, v := range ring {
		if pointInRingStrict(other, v.X, v.Y) {
			return true
		}
		w := ring[(i+1)%len(ring)]
		if pointInRingStrict(other, (v.X+w.X)/2, (v.Y+w.Y)/2) {
			return true
		}
	}
	rp := representativePoint(ring)
	return pointInRingStrict(other, rp.X, rp.Y)
}

// placeCenter fixes cell c's sample point: the representative interior point,
// verified to round-trip through CellOf (the Discretizer contract the shared
// property suite pins).
func (f *Fence) placeCenter(c spatial.Cell) error {
	p := representativePoint(f.polys[c])
	f.center[c] = p
	if got := f.cellOfIndexed(p.X, p.Y); got != c {
		return fmt.Errorf("geofence: polygon %d: no interior sample point round-trips (got cell %d) — ring may be degenerate", c, got)
	}
	return nil
}

// buildNeighbors links every pair of polygons whose boundaries share a
// segment of positive length, plus each cell itself. Reachability follows the
// fence geometry: a user can move between two districts in one timestamp only
// where they actually border each other.
func (f *Fence) buildNeighbors() {
	nc := len(f.polys)
	diag := math.Hypot(f.bounds.Width(), f.bounds.Height())
	eps := adjacencyEps * diag
	f.neighbors = make([][]spatial.Cell, nc)
	for i := 0; i < nc; i++ {
		f.neighbors[i] = append(f.neighbors[i], spatial.Cell(i))
	}
	var cand []int32
	for i := 0; i < nc; i++ {
		cand = f.index.queryBox(f.boxes[i], cand[:0])
		for _, j32 := range cand {
			j := int(j32)
			if j <= i {
				continue
			}
			if f.sharesEdge(i, j, eps) {
				f.neighbors[i] = append(f.neighbors[i], spatial.Cell(j))
				f.neighbors[j] = append(f.neighbors[j], spatial.Cell(i))
			}
		}
	}
	f.nMove = 0
	for i := range f.neighbors {
		ns := f.neighbors[i]
		for a := 1; a < len(ns); a++ {
			for b := a; b > 0 && ns[b] < ns[b-1]; b-- {
				ns[b], ns[b-1] = ns[b-1], ns[b]
			}
		}
		f.nMove += len(ns)
	}
}

// sharesEdge reports whether polygons i and j have collinear boundary
// segments overlapping over a length > eps.
func (f *Fence) sharesEdge(i, j int, eps float64) bool {
	a, b := f.polys[i], f.polys[j]
	for ii, p := range a {
		q := a[(ii+1)%len(a)]
		for jj, r := range b {
			s := b[(jj+1)%len(b)]
			if collinearOverlap(p, q, r, s) > eps {
				return true
			}
		}
	}
	return false
}

// collinearOverlap returns the length of the 1D overlap of segments pq and rs
// when they are collinear, 0 otherwise.
func collinearOverlap(p, q, r, s spatial.Point) float64 {
	if cross(p, q, r) != 0 || cross(p, q, s) != 0 {
		return 0
	}
	// Project onto the dominant axis of pq.
	dx, dy := q.X-p.X, q.Y-p.Y
	var p1, q1, r1, s1 float64
	if math.Abs(dx) >= math.Abs(dy) {
		p1, q1, r1, s1 = p.X, q.X, r.X, s.X
	} else {
		p1, q1, r1, s1 = p.Y, q.Y, r.Y, s.Y
	}
	lo1, hi1 := math.Min(p1, q1), math.Max(p1, q1)
	lo2, hi2 := math.Min(r1, s1), math.Max(r1, s1)
	ov := math.Min(hi1, hi2) - math.Max(lo1, lo2)
	if ov <= 0 {
		return 0
	}
	// Scale the projection back to true length.
	seg := math.Hypot(dx, dy)
	if math.Abs(dx) >= math.Abs(dy) {
		return ov * seg / math.Abs(dx)
	}
	return ov * seg / math.Abs(dy)
}

func (f *Fence) computeFingerprint() string {
	h := sha256.New()
	var buf [8]byte
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	putF(f.bounds.MinX)
	putF(f.bounds.MinY)
	putF(f.bounds.MaxX)
	putF(f.bounds.MaxY)
	for _, ring := range f.polys {
		putF(float64(len(ring)))
		for _, v := range ring {
			putF(v.X)
			putF(v.Y)
		}
	}
	return fmt.Sprintf("geofence:v1:cells=%d:%s", len(f.polys), hex.EncodeToString(h.Sum(nil)[:16]))
}

// NumCells returns the number of fence polygons.
func (f *Fence) NumCells() int { return len(f.polys) }

// Bounds returns the bounding box of the whole fence.
func (f *Fence) Bounds() spatial.Bounds { return f.bounds }

// CellOf maps a continuous point into its fence cell. Points outside every
// polygon (gaps between fence cells, or outside the bounds entirely) clamp
// onto the nearest polygon by boundary distance — the polygonal analogue of
// the grid clamping stray points onto its border cells.
func (f *Fence) CellOf(x, y float64) spatial.Cell {
	if c := f.cellOfIndexed(x, y); c != spatial.Invalid {
		return c
	}
	return f.nearestCell(x, y)
}

// cellOfIndexed resolves points that lie inside (or on the boundary of) a
// polygon via the R-tree; Invalid for points in fence gaps. Boundary points
// shared by two cells resolve to the lower cell index, deterministically.
func (f *Fence) cellOfIndexed(x, y float64) spatial.Cell {
	best := spatial.Invalid
	f.index.visitPoint(x, y, func(i int32) {
		if best != spatial.Invalid && spatial.Cell(i) >= best {
			return
		}
		if pointInRing(f.polys[i], x, y) {
			best = spatial.Cell(i)
		}
	})
	return best
}

// nearestCell returns the polygon with the smallest boundary distance to
// (x, y), ties toward the lower index. Only the clamp path pays this O(C·E)
// scan; in-fence lookups stay on the indexed path.
func (f *Fence) nearestCell(x, y float64) spatial.Cell {
	best, bestD := spatial.Cell(0), math.Inf(1)
	p := spatial.Point{X: x, Y: y}
	for i, ring := range f.polys {
		for j, a := range ring {
			d := pointSegmentDist2(p, a, ring[(j+1)%len(ring)])
			if d < bestD {
				bestD = d
				best = spatial.Cell(i)
			}
		}
	}
	return best
}

func pointSegmentDist2(p, a, b spatial.Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	l2 := dx*dx + dy*dy
	t := 0.0
	if l2 > 0 {
		t = ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	ex, ey := a.X+t*dx-p.X, a.Y+t*dy-p.Y
	return ex*ex + ey*ey
}

// Covers reports whether (x, y) lies inside (or on the boundary of) some
// fence polygon — i.e. whether CellOf resolves it geometrically rather than
// by clamping. Deployments use it to measure how much of their traffic the
// fence actually covers.
func (f *Fence) Covers(x, y float64) bool {
	return f.cellOfIndexed(x, y) != spatial.Invalid
}

// CellOfOK maps a continuous point into its cell, returning Invalid and
// false when the point lies outside the fence bounds. In-bounds points in
// gaps between polygons clamp to the nearest cell, like CellOf.
func (f *Fence) CellOfOK(x, y float64) (spatial.Cell, bool) {
	if !f.bounds.Contains(x, y) {
		return spatial.Invalid, false
	}
	return f.CellOf(x, y), true
}

// Center returns the cell's interior sample point: the polygon centroid when
// the polygon contains it, otherwise a point on the widest interior span (so
// L-shaped corridors still sample inside themselves). CellOf(Center(c)) == c.
func (f *Fence) Center(c spatial.Cell) (x, y float64) {
	p := f.center[c]
	return p.X, p.Y
}

// ValidCell reports whether c is a cell of this fence.
func (f *Fence) ValidCell(c spatial.Cell) bool { return c >= 0 && int(c) < len(f.polys) }

// Neighbors returns the cells sharing a boundary edge with c, plus c itself,
// sorted by cell index. The returned slice is shared and must not be
// modified.
func (f *Fence) Neighbors(c spatial.Cell) []spatial.Cell { return f.neighbors[c] }

// NeighborRank returns the position of b within Neighbors(a), or -1 when b
// is not reachable from a.
func (f *Fence) NeighborRank(a, b spatial.Cell) int {
	ns := f.neighbors[a]
	lo, hi := 0, len(ns)
	for lo < hi {
		m := (lo + hi) / 2
		if ns[m] < b {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(ns) && ns[lo] == b {
		return lo
	}
	return -1
}

// Adjacent reports whether a transition from a to b satisfies the fence's
// reachability constraint.
func (f *Fence) Adjacent(a, b spatial.Cell) bool { return f.NeighborRank(a, b) >= 0 }

// TotalMoveStates returns Σ_c |Neighbors(c)|.
func (f *Fence) TotalMoveStates() int { return f.nMove }

// Fingerprint returns the stable layout identifier: kind, cell count and a
// sha256 over the bounds and every vertex.
func (f *Fence) Fingerprint() string { return f.fp }

// CellPolygon returns the normalized (CCW, unclosed) ring of cell c. The
// returned slice is shared and must not be modified.
func (f *Fence) CellPolygon(c spatial.Cell) Polygon { return f.polys[c] }

// CellBBox returns the bounding box of cell c. Fence cells are not
// spatial.Boxed — bounding boxes of distinct cells may overlap — so this is
// a diagnostic accessor, not a tiling contract.
func (f *Fence) CellBBox(c spatial.Cell) spatial.Bounds { return f.boxes[c] }

// CellArea returns the area of cell c (spatial.Overlapper).
func (f *Fence) CellArea(c spatial.Cell) float64 { return f.areas[c] }

// CellPieces returns the convex decomposition (triangulation) of cell c
// (spatial.Overlapper). The returned slices are shared and must not be
// modified.
func (f *Fence) CellPieces(c spatial.Cell) [][]spatial.Point { return f.pieces[c] }

// CoveredArea returns the total area of all fence cells — the part of
// Bounds() trajectories can occupy. The ratio to Bounds().Area() is the
// domain shrink a fence buys over a bounding-box discretization.
func (f *Fence) CoveredArea() float64 {
	s := 0.0
	for _, a := range f.areas {
		s += a
	}
	return s
}

// Polygons returns the normalized polygon set in cell order — the
// serialization checkpoints embed (relayout.Layout) so a restored process
// can rebuild the exact layout. The returned rings are shared and must not
// be modified.
func (f *Fence) Polygons() []Polygon { return f.polys }

var (
	_ spatial.Discretizer = (*Fence)(nil)
	_ spatial.Overlapper  = (*Fence)(nil)
)
