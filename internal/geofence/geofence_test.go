package geofence

import (
	"bytes"
	"math"
	"math/rand/v2"
	"os"
	"strings"
	"testing"

	"retrasyn/internal/spatial"
)

// square returns the CCW ring of an axis-aligned square.
func square(x, y, side float64) Polygon {
	return Polygon{{X: x, Y: y}, {X: x + side, Y: y}, {X: x + side, Y: y + side}, {X: x, Y: y + side}}
}

// campus is the reference fence: two squares sharing an edge, an L-shaped
// cell whose centroid falls outside itself, and a detached triangle across a
// gap.
func campus() []Polygon {
	return []Polygon{
		square(0, 0, 4), // 0
		{{X: 4, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 4}, {X: 4, Y: 4}},                             // 1, shares x=4 edge with 0
		{{X: 0, Y: 4}, {X: 4, Y: 4}, {X: 4, Y: 6}, {X: 2, Y: 6}, {X: 2, Y: 12}, {X: 0, Y: 12}}, // 2, L-shape on top of 0
		{{X: 12, Y: 2}, {X: 16, Y: 2}, {X: 14, Y: 6}},                                          // 3, detached triangle
	}
}

func TestNewFenceCampus(t *testing.T) {
	f, err := NewFence(campus())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumCells() != 4 {
		t.Fatalf("NumCells = %d, want 4", f.NumCells())
	}
	wantB := spatial.Bounds{MinX: 0, MinY: 0, MaxX: 16, MaxY: 12}
	if f.Bounds() != wantB {
		t.Fatalf("Bounds = %+v, want %+v", f.Bounds(), wantB)
	}
	// Interior points land in their polygons.
	for _, tc := range []struct {
		x, y float64
		want spatial.Cell
	}{
		{2, 2, 0}, {7, 2, 1}, {1, 10, 2}, {3, 5, 2}, {14, 3, 3},
	} {
		if got := f.CellOf(tc.x, tc.y); got != tc.want {
			t.Fatalf("CellOf(%v,%v) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
	// Gap points clamp to the nearest polygon; out-of-bounds points too.
	if got := f.CellOf(11, 2); got != 1 && got != 3 {
		t.Fatalf("gap point clamped to %d, want cell 1 or 3", got)
	}
	if got := f.CellOf(-5, -5); got != 0 {
		t.Fatalf("far outside point clamped to %d, want 0", got)
	}
	if _, ok := f.CellOfOK(-5, -5); ok {
		t.Fatal("CellOfOK accepted an out-of-bounds point")
	}
	if c, ok := f.CellOfOK(11, 10); !ok || !f.ValidCell(c) {
		t.Fatalf("CellOfOK rejected an in-bounds gap point: (%d, %v)", c, ok)
	}

	// Shared-edge adjacency: 0–1 and 0–2 border, the triangle is isolated,
	// and 1–2 touch only at the single point (4,4) — not adjacent.
	for _, tc := range []struct {
		a, b spatial.Cell
		want bool
	}{
		{0, 0, true}, {0, 1, true}, {1, 0, true}, {0, 2, true},
		{1, 2, false}, {0, 3, false}, {3, 3, true}, {1, 3, false},
	} {
		if got := f.Adjacent(tc.a, tc.b); got != tc.want {
			t.Fatalf("Adjacent(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if got := len(f.Neighbors(3)); got != 1 {
		t.Fatalf("detached triangle has %d neighbours, want 1 (itself)", got)
	}

	// The L-shape's centroid-outside case: Center must still round-trip.
	for c := spatial.Cell(0); int(c) < f.NumCells(); c++ {
		x, y := f.Center(c)
		if got := f.CellOf(x, y); got != c {
			t.Fatalf("CellOf(Center(%d)) = %d", c, got)
		}
	}

	// Areas: 16 + 24 + (8 + 12) + 8 = 68 of the 192 bounding box.
	if math.Abs(f.CoveredArea()-68) > 1e-9 {
		t.Fatalf("CoveredArea = %v, want 68", f.CoveredArea())
	}
	if f.CellArea(3) != 8 {
		t.Fatalf("triangle area = %v, want 8", f.CellArea(3))
	}

	// Pieces partition each cell.
	for c := spatial.Cell(0); int(c) < f.NumCells(); c++ {
		sum := 0.0
		for _, piece := range f.CellPieces(c) {
			a := signedArea(piece)
			if a <= 0 {
				t.Fatalf("cell %d: non-CCW piece (area %v)", c, a)
			}
			sum += a
		}
		if math.Abs(sum-f.CellArea(c)) > 1e-9*f.CellArea(c) {
			t.Fatalf("cell %d: pieces sum to %v, area %v", c, sum, f.CellArea(c))
		}
	}
}

func TestNewFenceNormalizesWindingAndClosure(t *testing.T) {
	ccw := MustNewFence([]Polygon{square(0, 0, 2)})
	// Clockwise and closed variants of the same square.
	cw := MustNewFence([]Polygon{{{X: 0, Y: 0}, {X: 0, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 0}}})
	closed := MustNewFence([]Polygon{{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}, {X: 0, Y: 0}}})
	if cw.Fingerprint() != ccw.Fingerprint() {
		t.Fatalf("clockwise ring not normalized: %s ≠ %s", cw.Fingerprint(), ccw.Fingerprint())
	}
	if closed.Fingerprint() != ccw.Fingerprint() {
		t.Fatalf("closed ring not normalized: %s ≠ %s", closed.Fingerprint(), ccw.Fingerprint())
	}
	if ccw.Fingerprint() != MustNewFence([]Polygon{square(0, 0, 2)}).Fingerprint() {
		t.Fatal("fingerprint not stable across constructions")
	}
	if ccw.Fingerprint() == MustNewFence([]Polygon{square(0, 0, 3)}).Fingerprint() {
		t.Fatal("different fences share a fingerprint")
	}
}

// TestNewFenceValidation pins the actionable load-time errors: each bad
// input is rejected with a message naming the offending polygon index.
func TestNewFenceValidation(t *testing.T) {
	cases := []struct {
		name    string
		polys   []Polygon
		wantSub string
	}{
		{"empty", nil, "at least one polygon"},
		{"two-vertices", []Polygon{{{X: 0, Y: 0}, {X: 1, Y: 1}}}, "polygon 0"},
		{"nan-vertex", []Polygon{{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: math.NaN(), Y: 1}}}, "polygon 0"},
		{"inf-vertex", []Polygon{{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: math.Inf(1), Y: 1}}}, "polygon 0"},
		{"zero-area", []Polygon{{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}}, "polygon 0"},
		{"duplicates-collapse-to-line", []Polygon{{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 1}, {X: 1, Y: 1}}}, "polygon 0"},
		{"symmetric-bowtie", []Polygon{{{X: 0, Y: 0}, {X: 2, Y: 2}, {X: 2, Y: 0}, {X: 0, Y: 2}}}, "polygon 0"},
		{"bowtie", []Polygon{{{X: 0, Y: 0}, {X: 3, Y: 3}, {X: 3, Y: 0}, {X: 0, Y: 2}}}, "self-intersecting"},
		{"second-poly-bowtie", []Polygon{square(5, 5, 1), {{X: 0, Y: 0}, {X: 3, Y: 3}, {X: 3, Y: 0}, {X: 0, Y: 2}}}, "polygon 1"},
		{"overlapping", []Polygon{square(0, 0, 2), square(1, 1, 2)}, "polygons 0 and 1 overlap"},
		{"contained", []Polygon{square(0, 0, 4), square(1, 1, 1)}, "overlap"},
		{"duplicate-cells", []Polygon{square(0, 0, 2), square(0, 0, 2)}, "overlap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewFence(tc.polys)
			if err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name the problem (%q)", err, tc.wantSub)
			}
		})
	}
	// Shared edges are NOT overlaps.
	if _, err := NewFence([]Polygon{square(0, 0, 2), square(2, 0, 2)}); err != nil {
		t.Fatalf("edge-sharing squares rejected: %v", err)
	}
}

// TestCellOfMatchesLinearScan cross-checks the R-tree-accelerated lookup
// against a brute-force scan over a many-cell fence.
func TestCellOfMatchesLinearScan(t *testing.T) {
	// A 9×9 checkerboard tiling (81 polygons) exercises multi-level packing.
	var polys []Polygon
	for r := 0; r < 9; r++ {
		for c := 0; c < 9; c++ {
			polys = append(polys, square(float64(c), float64(r), 1))
		}
	}
	f := MustNewFence(polys)
	linear := func(x, y float64) spatial.Cell {
		for i, ring := range f.polys {
			if pointInRing(ring, x, y) {
				return spatial.Cell(i)
			}
		}
		return spatial.Invalid
	}
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 4000; i++ {
		x, y := rng.Float64()*9, rng.Float64()*9
		want := linear(x, y)
		if got := f.cellOfIndexed(x, y); got != want {
			t.Fatalf("cellOfIndexed(%v,%v) = %d, scan says %d", x, y, got, want)
		}
	}
	// Grid-tiling adjacency: every interior square borders exactly 4 others
	// (no corner adjacency under shared-edge semantics) plus itself.
	if got := len(f.Neighbors(spatial.Cell(4*9 + 4))); got != 5 {
		t.Fatalf("interior checkerboard cell has %d neighbours, want 5", got)
	}
}

func TestParseFenceFixture(t *testing.T) {
	blob, err := os.ReadFile("testdata/campus.geojson")
	if err != nil {
		t.Fatal(err)
	}
	polys, err := ParseFence(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFence(polys)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNewFence(campus())
	if f.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fixture fence %s ≠ programmatic campus %s", f.Fingerprint(), want.Fingerprint())
	}
}

func TestParseFenceErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
	}{
		{"garbage", "not json", "parse fence file"},
		{"wrong-type", `{"type":"Point","coordinates":[1,2]}`, "unsupported fence document type"},
		{"bad-geometry", `{"type":"FeatureCollection","features":[{"geometry":{"type":"LineString","coordinates":[[0,0],[1,1]]}}]}`, "polygon 0"},
		{"no-geometry", `{"type":"FeatureCollection","features":[{}]}`, "no geometry"},
		{"hole", `{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]],[[1,1],[2,1],[2,2],[1,2],[1,1]]]}`, "holes"},
		{"three-coords", `{"type":"Polygon","coordinates":[[[0,0,5],[4,0,5],[4,4,5],[0,0,5]]]}`, "coordinates"},
		{"empty-collection", `{"type":"FeatureCollection","features":[]}`, "no polygons"},
		{"no-rings", `{"type":"Polygon","coordinates":[]}`, "no rings"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFence(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestWriteFenceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFence(&buf, campus()); err != nil {
		t.Fatal(err)
	}
	polys, err := ParseFence(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewFence(polys)
	if err != nil {
		t.Fatal(err)
	}
	if want := MustNewFence(campus()); got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("write→parse round-trip drifted the layout: %s ≠ %s", got.Fingerprint(), want.Fingerprint())
	}
}

// TestRepresentativePointNonConvex pins the centroid-outside construction
// directly: a U-shape whose centroid lies in the void between the prongs.
func TestRepresentativePointNonConvex(t *testing.T) {
	u := Polygon{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 5}, {X: 4, Y: 5}, {X: 4, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 5}, {X: 0, Y: 5}}
	f := MustNewFence([]Polygon{u})
	x, y := f.Center(0)
	if !pointInRingStrict(f.CellPolygon(0), x, y) {
		t.Fatalf("U-shape sample point (%v,%v) not strictly inside", x, y)
	}
	cx, cy, _ := centroid(f.CellPolygon(0))
	if pointInRingStrict(f.CellPolygon(0), cx, cy) {
		t.Fatalf("test premise broken: centroid (%v,%v) is inside the U", cx, cy)
	}
}
