package geofence

import (
	"encoding/json"
	"fmt"
	"io"

	"retrasyn/internal/spatial"
)

// Fence file format: a GeoJSON-style document whose polygons become the
// fence cells, in document order. Accepted top-level shapes:
//
//   - {"type": "FeatureCollection", "features": [{"geometry": {"type":
//     "Polygon", "coordinates": [[[x, y], …]]}}, …]}
//   - {"type": "Polygon", "coordinates": [[[x, y], …]]}
//   - {"type": "MultiPolygon", "coordinates": [[[[x, y], …]], …]}
//
// Each polygon carries exactly one ring (the outer boundary); interior rings
// (holes) are rejected — a fence cell is a filled district, and a hole would
// silently swallow reports from inside it. Rings may be open or closed
// (repeated last vertex) and wind either way; parsing normalizes both.
// Coordinates beyond the first two per position are rejected rather than
// dropped. Errors name the offending polygon index, matching the NewFence
// validation style, so a bad fence file points at the exact feature to fix.

type geoDoc struct {
	Type     string `json:"type"`
	Features []struct {
		Geometry json.RawMessage `json:"geometry"`
	} `json:"features"`
	Coordinates json.RawMessage `json:"coordinates"`
}

// ParseFence reads a fence file and returns its polygons in document order.
// The polygons are parsed and shape-checked only; pass them to NewFence for
// full geometric validation.
func ParseFence(r io.Reader) ([]Polygon, error) {
	blob, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("geofence: read fence file: %w", err)
	}
	var doc geoDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, fmt.Errorf("geofence: parse fence file: %w", err)
	}
	var polys []Polygon
	switch doc.Type {
	case "FeatureCollection":
		for _, ft := range doc.Features {
			if len(ft.Geometry) == 0 {
				return nil, fmt.Errorf("geofence: polygon %d: feature has no geometry", len(polys))
			}
			var g geoDoc
			if err := json.Unmarshal(ft.Geometry, &g); err != nil {
				return nil, fmt.Errorf("geofence: polygon %d: %w", len(polys), err)
			}
			polys, err = appendGeometry(polys, g)
			if err != nil {
				return nil, err
			}
		}
	case "Polygon", "MultiPolygon":
		polys, err = appendGeometry(polys, doc)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("geofence: unsupported fence document type %q (want FeatureCollection, Polygon or MultiPolygon)", doc.Type)
	}
	if len(polys) == 0 {
		return nil, fmt.Errorf("geofence: fence file holds no polygons")
	}
	return polys, nil
}

func appendGeometry(polys []Polygon, g geoDoc) ([]Polygon, error) {
	switch g.Type {
	case "Polygon":
		var rings [][][]float64
		if err := json.Unmarshal(g.Coordinates, &rings); err != nil {
			return nil, fmt.Errorf("geofence: polygon %d: coordinates: %w", len(polys), err)
		}
		p, err := ringFromCoords(rings, len(polys))
		if err != nil {
			return nil, err
		}
		return append(polys, p), nil
	case "MultiPolygon":
		var multi [][][][]float64
		if err := json.Unmarshal(g.Coordinates, &multi); err != nil {
			return nil, fmt.Errorf("geofence: polygon %d: coordinates: %w", len(polys), err)
		}
		for _, rings := range multi {
			p, err := ringFromCoords(rings, len(polys))
			if err != nil {
				return nil, err
			}
			polys = append(polys, p)
		}
		return polys, nil
	default:
		return nil, fmt.Errorf("geofence: polygon %d: unsupported geometry type %q (want Polygon or MultiPolygon)", len(polys), g.Type)
	}
}

func ringFromCoords(rings [][][]float64, idx int) (Polygon, error) {
	if len(rings) == 0 {
		return nil, fmt.Errorf("geofence: polygon %d: no rings", idx)
	}
	if len(rings) > 1 {
		return nil, fmt.Errorf("geofence: polygon %d: %d interior rings — fence cells cannot have holes", idx, len(rings)-1)
	}
	ring := make(Polygon, 0, len(rings[0]))
	for i, pos := range rings[0] {
		if len(pos) != 2 {
			return nil, fmt.Errorf("geofence: polygon %d: position %d has %d coordinates, want exactly 2", idx, i, len(pos))
		}
		ring = append(ring, spatial.Point{X: pos[0], Y: pos[1]})
	}
	return ring, nil
}

// WriteFence writes the polygon set as a GeoJSON FeatureCollection that
// ParseFence reads back. Rings are emitted closed (first vertex repeated),
// the conventional GeoJSON form.
func WriteFence(w io.Writer, polys []Polygon) error {
	type geometry struct {
		Type        string        `json:"type"`
		Coordinates [][][]float64 `json:"coordinates"`
	}
	type feature struct {
		Type       string         `json:"type"`
		Properties map[string]any `json:"properties"`
		Geometry   geometry       `json:"geometry"`
	}
	doc := struct {
		Type     string    `json:"type"`
		Features []feature `json:"features"`
	}{Type: "FeatureCollection"}
	for i, p := range polys {
		ring := make([][]float64, 0, len(p)+1)
		for _, v := range p {
			ring = append(ring, []float64{v.X, v.Y})
		}
		if len(p) > 0 {
			ring = append(ring, []float64{p[0].X, p[0].Y})
		}
		doc.Features = append(doc.Features, feature{
			Type:       "Feature",
			Properties: map[string]any{"cell": i},
			Geometry:   geometry{Type: "Polygon", Coordinates: [][][]float64{ring}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
