package datagen

import (
	"fmt"
	"math"

	"retrasyn/internal/geofence"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

// Corridor/district workload: the geometry real geofenced deployments
// collect over. Four districts sit at the ends of a cross of road corridors;
// almost all sessions travel district → corridor → center → corridor →
// district, so every trajectory lives inside a thin fence covering a small
// fraction of the bounding box. A bounding-box discretization (uniform grid)
// spends most of its cells — and with them the per-state LDP variance the
// transition domain size |S| drives — on space no trajectory can occupy; the
// matching fence (CorridorFence) covers only the reachable corridor. A small
// off-fence share roams the whole box, standing in for the GPS noise and
// stragglers every real deployment clamps onto its fence.

// CorridorConfig parameterizes the corridor workload generator.
type CorridorConfig struct {
	// T is the timeline length.
	T int
	// InitialUsers enter at t=0.
	InitialUsers int
	// ArrivalsPerTs is the mean number of new sessions per timestamp.
	ArrivalsPerTs float64
	// MeanLength is the target mean session length in points (geometric).
	MeanLength float64
	// OffFenceShare is the fraction of sessions roaming the whole bounding
	// box instead of the corridor. Zero selects the default 0.04 (the
	// config zero-value idiom all generators here share); a fully on-fence
	// workload is not expressible — every real deployment sees some
	// off-fence noise, and the share exercises the fence's clamp path.
	OffFenceShare float64
	// MinX..MaxY bound the space.
	MinX, MinY, MaxX, MaxY float64
	// Seed drives all randomness.
	Seed uint64
}

func (c *CorridorConfig) defaults() error {
	if c.T < 2 {
		return fmt.Errorf("datagen: corridor T must be ≥ 2, got %d", c.T)
	}
	if !(c.MaxX > c.MinX) || !(c.MaxY > c.MinY) {
		return fmt.Errorf("datagen: invalid corridor bounds")
	}
	if c.MeanLength <= 1 {
		c.MeanLength = 14
	}
	if c.OffFenceShare < 0 || c.OffFenceShare > 1 {
		return fmt.Errorf("datagen: OffFenceShare %v outside [0,1]", c.OffFenceShare)
	}
	if c.OffFenceShare == 0 {
		c.OffFenceShare = 0.04
	}
	if c.ArrivalsPerTs < 0 {
		return fmt.Errorf("datagen: negative arrival rate")
	}
	if c.InitialUsers < 0 {
		return fmt.Errorf("datagen: negative InitialUsers")
	}
	return nil
}

// Normalized corridor geometry over the unit square, scaled onto the bounds
// by both the generator and CorridorFence so workload and fence always
// agree. The strip half-width is 1/16 of the span; arms run from the
// district mouths at 1/16 to the center square.
const (
	corHalf  = 0.0625 // strip half-width
	corMouth = 0.0625 // district depth along each axis
)

// corridorEnd returns the normalized centerline position of a district
// mouth. End indices: 0 west, 1 east, 2 south, 3 north.
func corridorEnd(end int) (x, y float64) {
	switch end {
	case 0:
		return corMouth / 2, 0.5
	case 1:
		return 1 - corMouth/2, 0.5
	case 2:
		return 0.5, corMouth / 2
	default:
		return 0.5, 1 - corMouth/2
	}
}

// CorridorFence returns the fence polygons matching the corridor workload
// over the given bounds: a center square, three rectangular segments per
// arm, and a flared trapezoid district at each end — 17 cells whose union
// covers ~1/4 of the bounding box. Adjacent cells share exact boundary
// edges, so the fence's shared-edge reachability follows the corridor.
func CorridorFence(b grid.Bounds) []geofence.Polygon {
	w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
	pt := func(x, y float64) spatial.Point {
		return spatial.Point{X: b.MinX + x*w, Y: b.MinY + y*h}
	}
	rect := func(x0, y0, x1, y1 float64) geofence.Polygon {
		return geofence.Polygon{pt(x0, y0), pt(x1, y0), pt(x1, y1), pt(x0, y1)}
	}
	lo, hi := 0.5-corHalf, 0.5+corHalf // strip edges
	polys := []geofence.Polygon{
		rect(lo, lo, hi, hi), // 0: center square
	}
	// Three segments per arm, from the district mouth to the center square.
	armLen := lo - corMouth
	seg := armLen / 3
	for s := 0; s < 3; s++ {
		a, bb := corMouth+float64(s)*seg, corMouth+float64(s+1)*seg
		polys = append(polys,
			rect(a, lo, bb, hi),     // west arm
			rect(1-bb, lo, 1-a, hi), // east arm
			rect(lo, a, hi, bb),     // south arm
			rect(lo, 1-bb, hi, 1-a), // north arm
		)
	}
	// Flared trapezoid districts at the four ends; each shares its full
	// mouth edge with the first arm segment.
	polys = append(polys,
		geofence.Polygon{pt(0, lo-corHalf), pt(corMouth, lo), pt(corMouth, hi), pt(0, hi+corHalf)},     // west
		geofence.Polygon{pt(1-corMouth, lo), pt(1, lo-corHalf), pt(1, hi+corHalf), pt(1-corMouth, hi)}, // east
		geofence.Polygon{pt(lo-corHalf, 0), pt(hi+corHalf, 0), pt(hi, corMouth), pt(lo, corMouth)},     // south
		geofence.Polygon{pt(lo, 1-corMouth), pt(hi, 1-corMouth), pt(hi+corHalf, 1), pt(lo-corHalf, 1)}, // north
	)
	return polys
}

// Corridor generates the corridor/district raw dataset. Fence sessions pick
// a start and destination district and travel the centerline with lateral
// jitter inside the strip; off-fence sessions random-walk the whole box.
func Corridor(cfg CorridorConfig) (*trajectory.RawDataset, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := ldp.NewRand(cfg.Seed, cfg.Seed^0xc0441d04)
	d := &trajectory.RawDataset{Name: "corridor", T: cfg.T}
	width, height := cfg.MaxX-cfg.MinX, cfg.MaxY-cfg.MinY
	speed := 0.035           // normalized centerline distance per timestamp
	lateral := corHalf * 0.7 // lateral jitter bound inside the strip

	toWorld := func(x, y float64) (float64, float64) {
		return cfg.MinX + clamp(x, 0, 1)*width, cfg.MinY + clamp(y, 0, 1)*height
	}

	spawn := func(start int) {
		tr := trajectory.RawTrajectory{Start: start}
		quitP := 1 / cfg.MeanLength
		if rng.Float64() < cfg.OffFenceShare {
			// Background roamer over the whole box.
			x, y := rng.Float64(), rng.Float64()
			for t := start; t < cfg.T; t++ {
				wx, wy := toWorld(x, y)
				tr.Points = append(tr.Points, trajectory.RawPoint{X: wx, Y: wy})
				if len(tr.Points) > 1 && ldp.Bernoulli(rng, quitP) {
					break
				}
				x = clamp(x+(rng.Float64()-0.5)*2*speed, 0, 1)
				y = clamp(y+(rng.Float64()-0.5)*2*speed, 0, 1)
			}
			d.Trajs = append(d.Trajs, tr)
			return
		}
		// Fence traveller: district from → center → district to.
		from := rng.IntN(4)
		to := rng.IntN(4)
		for to == from {
			to = rng.IntN(4)
		}
		fx, fy := corridorEnd(from)
		tx, ty := corridorEnd(to)
		// Route legs: end → center and center → end, both axis-aligned.
		leg1 := math.Hypot(0.5-fx, 0.5-fy)
		leg2 := math.Hypot(tx-0.5, ty-0.5)
		total := leg1 + leg2
		s := rng.Float64() * total * 0.3 // some sessions start mid-route
		for t := start; t < cfg.T; t++ {
			// Position on the centerline at arc length s.
			var cx, cy float64
			if s <= leg1 {
				f := s / leg1
				cx, cy = fx+f*(0.5-fx), fy+f*(0.5-fy)
			} else {
				f := math.Min((s-leg1)/leg2, 1)
				cx, cy = 0.5+f*(tx-0.5), 0.5+f*(ty-0.5)
			}
			// Lateral jitter perpendicular to the travel axis.
			off := clamp(rng.NormFloat64()*lateral/2, -lateral, lateral)
			if s <= leg1 && fy == 0.5 || s > leg1 && ty == 0.5 {
				cy += off // east-west leg: jitter in y
			} else {
				cx += off
			}
			wx, wy := toWorld(cx, cy)
			tr.Points = append(tr.Points, trajectory.RawPoint{X: wx, Y: wy})
			if len(tr.Points) > 1 && ldp.Bernoulli(rng, quitP) {
				break
			}
			if s >= total {
				break // arrived
			}
			s += speed * (0.7 + 0.6*rng.Float64())
		}
		d.Trajs = append(d.Trajs, tr)
	}

	for i := 0; i < cfg.InitialUsers; i++ {
		spawn(0)
	}
	for t := 1; t < cfg.T; t++ {
		n := poisson(rng, cfg.ArrivalsPerTs)
		for i := 0; i < n; i++ {
			spawn(t)
		}
	}
	return d, nil
}

// CorridorSpec is the corridor workload packaged as a standard dataset: a
// 32×32 box whose cross of corridors links four districts over 120
// timestamps. The matching fence is CorridorFence(spec.Bounds); the geofence
// benchmark runs RetraSyn over both it and a uniform grid at equal ε.
func CorridorSpec() Spec {
	b := grid.Bounds{MinX: 0, MinY: 0, MaxX: 32, MaxY: 32}
	return Spec{
		Name:   "CorridorSim",
		Bounds: b,
		Generate: func(scale float64, seed uint64) (*trajectory.RawDataset, error) {
			d, err := Corridor(CorridorConfig{
				T:             120,
				InitialUsers:  scaled(1200, scale),
				ArrivalsPerTs: 130 * scale,
				MeanLength:    14,
				MinX:          b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY,
				Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			d.Name = "CorridorSim"
			return d, nil
		},
	}
}
