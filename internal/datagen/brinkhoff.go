package datagen

import (
	"fmt"

	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
)

// BrinkhoffConfig parameterizes the network-constrained moving-object
// generator, mirroring the process the paper used to create the Oldenburg
// and SanJoaquin datasets: an initial population plus a constant per-
// timestamp arrival stream, movement along shortest road-network paths at
// one node per timestamp, and random quitting.
type BrinkhoffConfig struct {
	// T is the timeline length.
	T int
	// InitialUsers enter at t=0.
	InitialUsers int
	// NewUsersPerTs enter at every subsequent timestamp.
	NewUsersPerTs int
	// QuitProb is the per-timestamp probability that an object stops
	// reporting; 1/QuitProb approximates the mean stream length.
	QuitProb float64
	// Jitter adds positional noise (in coordinate units) around node
	// locations, emulating GPS error.
	Jitter float64
	// Seed drives all randomness.
	Seed uint64
}

func (c *BrinkhoffConfig) validate() error {
	if c.T < 1 {
		return fmt.Errorf("datagen: T must be ≥ 1, got %d", c.T)
	}
	if c.InitialUsers < 0 || c.NewUsersPerTs < 0 {
		return fmt.Errorf("datagen: negative user counts")
	}
	if c.QuitProb < 0 || c.QuitProb > 1 {
		return fmt.Errorf("datagen: QuitProb %v outside [0,1]", c.QuitProb)
	}
	return nil
}

// BrinkhoffLike generates a raw dataset of network-constrained movers on
// net. Each object starts at a random node, follows the shortest path to a
// random destination one node per timestamp, picks a fresh destination on
// arrival, and quits with QuitProb per step (always emitting at least one
// point).
func BrinkhoffLike(net *RoadNetwork, cfg BrinkhoffConfig) (*trajectory.RawDataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if net == nil || net.NumNodes() == 0 {
		return nil, fmt.Errorf("datagen: empty road network")
	}
	rng := ldp.NewRand(cfg.Seed, cfg.Seed^0x5bf03635)
	d := &trajectory.RawDataset{Name: "brinkhoff", T: cfg.T}
	spawn := func(start int) {
		tr := trajectory.RawTrajectory{Start: start}
		node := rng.IntN(net.NumNodes())
		path := net.planPath(rng, node)
		step := 0
		for t := start; t < cfg.T; t++ {
			p := net.Nodes[node]
			tr.Points = append(tr.Points, trajectory.RawPoint{
				X: p.X + (rng.Float64()-0.5)*cfg.Jitter,
				Y: p.Y + (rng.Float64()-0.5)*cfg.Jitter,
			})
			if len(tr.Points) > 1 || cfg.QuitProb >= 1 {
				if ldp.Bernoulli(rng, cfg.QuitProb) {
					break
				}
			}
			step++
			if step >= len(path) {
				path = net.planPath(rng, node)
				step = 1
				if len(path) < 2 {
					step = 0
				}
			}
			if step < len(path) {
				node = int(path[step])
			}
		}
		if len(tr.Points) > 0 {
			d.Trajs = append(d.Trajs, tr)
		}
	}
	for i := 0; i < cfg.InitialUsers; i++ {
		spawn(0)
	}
	for t := 1; t < cfg.T; t++ {
		for i := 0; i < cfg.NewUsersPerTs; i++ {
			spawn(t)
		}
	}
	return d, nil
}

// planPath picks a random destination and returns the shortest path from
// the current node (length ≥ 1; falls back to staying put when the network
// is split, which repairConnectivity prevents in generated networks).
func (net *RoadNetwork) planPath(rng ldp.Rand, from int) []int32 {
	for attempt := 0; attempt < 4; attempt++ {
		dest := rng.IntN(net.NumNodes())
		if dest == from {
			continue
		}
		if path, ok := net.ShortestPath(from, dest); ok {
			return path
		}
	}
	return []int32{int32(from)}
}
