package datagen

import (
	"fmt"
	"math"

	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
)

// TDriveConfig parameterizes the hotspot-gravity taxi simulator that stands
// in for the proprietary T-Drive traces (DESIGN.md §3): short sessions,
// skewed spatial density around hotspots, and time-of-day flow reversal —
// residential→business in the morning rush, the reverse in the evening —
// which produces the drifting transition distributions the DMU mechanism is
// designed to track.
type TDriveConfig struct {
	// T is the timeline length (the paper uses 886 ten-minute slots).
	T int
	// DayLength is the number of timestamps per simulated day; rush hours
	// peak at 1/4 and 3/4 of each day. Defaults to T/2 (two days) when 0.
	DayLength int
	// Hotspots is the number of attraction centres (half residential, half
	// business). Default 8.
	Hotspots int
	// InitialUsers enter at t=0.
	InitialUsers int
	// ArrivalsPerTs is the mean number of new sessions per timestamp before
	// rush-hour modulation.
	ArrivalsPerTs float64
	// MeanLength is the target mean session length in points (paper: 13.61).
	MeanLength float64
	// Speed is the mean travel distance per timestamp in coordinate units.
	Speed float64
	// MinX..MaxY bound the city (paper: Beijing within the 5th ring).
	MinX, MinY, MaxX, MaxY float64
	// Seed drives all randomness.
	Seed uint64
}

func (c *TDriveConfig) defaults() error {
	if c.T < 1 {
		return fmt.Errorf("datagen: T must be ≥ 1, got %d", c.T)
	}
	if c.DayLength <= 0 {
		c.DayLength = max(2, c.T/2)
	}
	if c.Hotspots <= 0 {
		c.Hotspots = 8
	}
	if c.MeanLength <= 1 {
		c.MeanLength = 13.6
	}
	if !(c.MaxX > c.MinX) || !(c.MaxY > c.MinY) {
		return fmt.Errorf("datagen: invalid bounds")
	}
	if c.Speed <= 0 {
		c.Speed = (c.MaxX - c.MinX) / 18
	}
	if c.ArrivalsPerTs < 0 {
		return fmt.Errorf("datagen: negative arrival rate")
	}
	return nil
}

type hotspot struct {
	x, y        float64
	residential bool
	weight      float64
}

// TDriveLike generates the taxi-like raw dataset.
func TDriveLike(cfg TDriveConfig) (*trajectory.RawDataset, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := ldp.NewRand(cfg.Seed, cfg.Seed^0x1f2e3d4c)
	spots := make([]hotspot, cfg.Hotspots)
	for i := range spots {
		spots[i] = hotspot{
			x:           cfg.MinX + rng.Float64()*(cfg.MaxX-cfg.MinX),
			y:           cfg.MinY + rng.Float64()*(cfg.MaxY-cfg.MinY),
			residential: i%2 == 0,
			weight:      0.5 + rng.Float64(),
		}
	}
	d := &trajectory.RawDataset{Name: "tdrive", T: cfg.T}
	scatter := (cfg.MaxX - cfg.MinX) / 12

	for i := 0; i < cfg.InitialUsers; i++ {
		spawnSession(d, &cfg, spots, rng, 0, scatter)
	}
	for t := 1; t < cfg.T; t++ {
		rate := cfg.ArrivalsPerTs * rushFactor(t, cfg.DayLength)
		n := poisson(rng, rate)
		for i := 0; i < n; i++ {
			spawnSession(d, &cfg, spots, rng, t, scatter)
		}
	}
	return d, nil
}

// rushFactor modulates arrivals over the day: quiet nights, morning and
// evening peaks.
func rushFactor(t, dayLen int) float64 {
	phase := float64(t%dayLen) / float64(dayLen) // 0..1 through the day
	morning := math.Exp(-squared(phase-0.25) / 0.008)
	evening := math.Exp(-squared(phase-0.75) / 0.008)
	return 0.4 + 1.2*(morning+evening)
}

func squared(x float64) float64 { return x * x }

// spawnSession emits one taxi session starting at timestamp start.
func spawnSession(d *trajectory.RawDataset, cfg *TDriveConfig, spots []hotspot, rng ldp.Rand, start int, scatter float64) {
	phase := float64(start%cfg.DayLength) / float64(cfg.DayLength)
	// Origin class bias: residential in the morning, business in the evening.
	var originResidential bool
	switch {
	case phase < 0.5:
		originResidential = rng.Float64() < 0.75
	default:
		originResidential = rng.Float64() < 0.25
	}
	ox, oy := samplePlace(rng, spots, originResidential, scatter, cfg)
	dx, dy := samplePlace(rng, spots, !originResidential, scatter, cfg)

	tr := trajectory.RawTrajectory{Start: start}
	x, y := ox, oy
	quitP := 1 / cfg.MeanLength
	for t := start; t < cfg.T; t++ {
		tr.Points = append(tr.Points, trajectory.RawPoint{X: x, Y: y})
		if len(tr.Points) > 1 && ldp.Bernoulli(rng, quitP) {
			break
		}
		// Move toward the destination with jitter; on arrival pick the next
		// fare (a new destination of either class).
		distX, distY := dx-x, dy-y
		dist := math.Hypot(distX, distY)
		step := cfg.Speed * (0.5 + rng.Float64())
		if dist <= step {
			x, y = dx, dy
			dx, dy = samplePlace(rng, spots, rng.Float64() < 0.5, scatter, cfg)
		} else {
			x += distX / dist * step * (0.8 + 0.4*rng.Float64())
			y += distY / dist * step * (0.8 + 0.4*rng.Float64())
		}
		x = clamp(x, cfg.MinX, cfg.MaxX)
		y = clamp(y, cfg.MinY, cfg.MaxY)
	}
	if len(tr.Points) > 0 {
		d.Trajs = append(d.Trajs, tr)
	}
}

// samplePlace draws a location near a weighted hotspot of the requested
// class with Gaussian scatter.
func samplePlace(rng ldp.Rand, spots []hotspot, residential bool, scatter float64, cfg *TDriveConfig) (float64, float64) {
	total := 0.0
	for _, s := range spots {
		if s.residential == residential {
			total += s.weight
		}
	}
	if total == 0 { // degenerate config: single-class hotspot set
		residential = !residential
		for _, s := range spots {
			if s.residential == residential {
				total += s.weight
			}
		}
	}
	u := rng.Float64() * total
	var pick hotspot
	for _, s := range spots {
		if s.residential != residential {
			continue
		}
		u -= s.weight
		pick = s
		if u <= 0 {
			break
		}
	}
	x := clamp(pick.x+rng.NormFloat64()*scatter, cfg.MinX, cfg.MaxX)
	y := clamp(pick.y+rng.NormFloat64()*scatter, cfg.MinY, cfg.MaxY)
	return x, y
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// poisson samples a Poisson variate by Knuth's method for small rates and a
// normal approximation for large ones.
func poisson(rng ldp.Rand, rate float64) int {
	if rate <= 0 {
		return 0
	}
	if rate > 64 {
		k := int(math.Round(rate + rng.NormFloat64()*math.Sqrt(rate)))
		if k < 0 {
			return 0
		}
		return k
	}
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
