package datagen

import (
	"math"
	"testing"

	"retrasyn/internal/geofence"
	"retrasyn/internal/grid"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

func TestGenerateRoadNetworkValidation(t *testing.T) {
	if _, err := GenerateRoadNetwork(1, 0, 0, 1, 1, 1); err == nil {
		t.Error("side=1 accepted")
	}
	if _, err := GenerateRoadNetwork(5, 1, 0, 0, 1, 1); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestRoadNetworkConnected(t *testing.T) {
	net, err := GenerateRoadNetwork(12, 0, 0, 10, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 144 {
		t.Fatalf("nodes = %d", net.NumNodes())
	}
	// BFS from node 0 must reach every node.
	seen := make([]bool, net.NumNodes())
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range net.Adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, int(u))
			}
		}
	}
	if count != net.NumNodes() {
		t.Fatalf("network disconnected: reached %d of %d", count, net.NumNodes())
	}
}

func TestRoadNetworkNodesInBounds(t *testing.T) {
	net, _ := GenerateRoadNetwork(10, -5, 3, 7, 21, 3)
	for i, p := range net.Nodes {
		if p.X < -5 || p.X > 7 || p.Y < 3 || p.Y > 21 {
			t.Fatalf("node %d at (%v,%v) outside bounds", i, p.X, p.Y)
		}
	}
}

func TestShortestPathProperties(t *testing.T) {
	net, _ := GenerateRoadNetwork(10, 0, 0, 10, 10, 11)
	// Self path.
	p, ok := net.ShortestPath(3, 3)
	if !ok || len(p) != 1 || p[0] != 3 {
		t.Fatalf("self path = %v,%v", p, ok)
	}
	// Arbitrary pairs: path endpoints correct, consecutive nodes adjacent.
	for _, pair := range [][2]int{{0, 99}, {5, 77}, {42, 13}} {
		p, ok := net.ShortestPath(pair[0], pair[1])
		if !ok {
			t.Fatalf("no path %v", pair)
		}
		if int(p[0]) != pair[0] || int(p[len(p)-1]) != pair[1] {
			t.Fatalf("path endpoints %v for %v", p, pair)
		}
		for i := 1; i < len(p); i++ {
			adjacent := false
			for _, u := range net.Adj[p[i-1]] {
				if u == p[i] {
					adjacent = true
				}
			}
			if !adjacent {
				t.Fatalf("non-edge step %d→%d in path", p[i-1], p[i])
			}
		}
	}
}

func TestShortestPathOptimalOnKnownGraph(t *testing.T) {
	// Hand-built 4-node line graph: 0—1—2—3 at unit spacing.
	net := &RoadNetwork{
		Nodes: []trajectory.RawPoint{{X: 0}, {X: 1}, {X: 2}, {X: 3}},
		Adj:   [][]int32{{1}, {0, 2}, {1, 3}, {2}},
	}
	p, ok := net.ShortestPath(0, 3)
	if !ok || len(p) != 4 {
		t.Fatalf("path = %v,%v want the 4-node line", p, ok)
	}
	// Disconnected pair.
	net2 := &RoadNetwork{
		Nodes: []trajectory.RawPoint{{X: 0}, {X: 1}},
		Adj:   [][]int32{{}, {}},
	}
	if _, ok := net2.ShortestPath(0, 1); ok {
		t.Fatal("found a path in a disconnected graph")
	}
}

func TestBrinkhoffLikeValidation(t *testing.T) {
	net, _ := GenerateRoadNetwork(5, 0, 0, 1, 1, 1)
	bad := []BrinkhoffConfig{
		{T: 0},
		{T: 10, InitialUsers: -1},
		{T: 10, QuitProb: 1.5},
	}
	for i, cfg := range bad {
		if _, err := BrinkhoffLike(net, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := BrinkhoffLike(nil, BrinkhoffConfig{T: 10}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestBrinkhoffLikeShape(t *testing.T) {
	net, _ := GenerateRoadNetwork(10, 0, 0, 10, 10, 5)
	d, err := BrinkhoffLike(net, BrinkhoffConfig{
		T: 50, InitialUsers: 100, NewUsersPerTs: 10, QuitProb: 0.05, Jitter: 0.1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantStreams := 100 + 49*10
	if len(d.Trajs) != wantStreams {
		t.Fatalf("streams = %d, want %d", len(d.Trajs), wantStreams)
	}
	for _, tr := range d.Trajs {
		if tr.Start < 0 || tr.End() >= d.T || len(tr.Points) == 0 {
			t.Fatalf("bad stream %+v", tr.Start)
		}
	}
	// Mean length should be near 1/QuitProb = 20 (truncated by timeline).
	stats := float64(d.NumPoints()) / float64(len(d.Trajs))
	if stats < 8 || stats > 25 {
		t.Fatalf("mean length = %v, want ≈ 12–20 (timeline-truncated geometric)", stats)
	}
}

func TestBrinkhoffAdjacencyAfterDiscretize(t *testing.T) {
	// Node-per-timestamp movement on the lattice must mostly respect grid
	// adjacency at moderate K; splitting handles the rest.
	net, _ := GenerateRoadNetwork(20, 0, 0, 20, 20, 13)
	d, _ := BrinkhoffLike(net, BrinkhoffConfig{
		T: 40, InitialUsers: 50, NewUsersPerTs: 5, QuitProb: 0.02, Jitter: 0.05, Seed: 3,
	})
	g := grid.MustNew(6, grid.Bounds{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20})
	cells := trajectory.Discretize(d, g, trajectory.DiscretizeOptions{SplitNonAdjacent: true})
	if err := cells.Validate(g, true); err != nil {
		t.Fatal(err)
	}
	// Splitting should not explode the stream count (most steps adjacent).
	if len(cells.Trajs) > 2*len(d.Trajs) {
		t.Fatalf("splitting exploded: %d raw → %d cell streams", len(d.Trajs), len(cells.Trajs))
	}
}

func TestTDriveLikeValidation(t *testing.T) {
	bad := []TDriveConfig{
		{T: 0, MaxX: 1, MaxY: 1},
		{T: 10, MaxX: 0, MaxY: 1},
		{T: 10, MaxX: 1, MaxY: 1, ArrivalsPerTs: -1},
	}
	for i, cfg := range bad {
		if _, err := TDriveLike(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTDriveLikeShape(t *testing.T) {
	d, err := TDriveLike(TDriveConfig{
		T: 100, InitialUsers: 50, ArrivalsPerTs: 20, MeanLength: 10,
		MaxX: 30, MaxY: 30, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Trajs) < 500 {
		t.Fatalf("only %d streams generated", len(d.Trajs))
	}
	mean := float64(d.NumPoints()) / float64(len(d.Trajs))
	if mean < 6 || mean > 14 {
		t.Fatalf("mean session length = %v, want ≈ 10 (timeline-truncated)", mean)
	}
	for _, tr := range d.Trajs {
		for _, p := range tr.Points {
			if p.X < 0 || p.X > 30 || p.Y < 0 || p.Y > 30 {
				t.Fatalf("point (%v,%v) out of bounds", p.X, p.Y)
			}
		}
	}
}

func TestTDriveRushHourModulation(t *testing.T) {
	d, _ := TDriveLike(TDriveConfig{
		T: 200, DayLength: 100, ArrivalsPerTs: 30, MeanLength: 8,
		MaxX: 30, MaxY: 30, Seed: 23,
	})
	// Count session starts near rush peaks vs night trough.
	starts := make([]int, 200)
	for _, tr := range d.Trajs {
		starts[tr.Start]++
	}
	rush, quiet := 0, 0
	for t := 20; t < 30; t++ { // around phase 0.25 of day 1
		rush += starts[t]
	}
	for t := 95; t < 100; t++ { // around phase ~0.97 (night)
		quiet += starts[t]
	}
	quiet *= 2 // same number of slots
	if rush <= quiet {
		t.Fatalf("no rush-hour modulation: rush=%d quiet=%d", rush, quiet)
	}
}

func TestTDriveFlowReversal(t *testing.T) {
	// Transition drift is the property DMU depends on: the spatial
	// distribution of session origins must differ between morning and
	// evening.
	d, _ := TDriveLike(TDriveConfig{
		T: 200, DayLength: 200, InitialUsers: 0, ArrivalsPerTs: 50, MeanLength: 8,
		MaxX: 30, MaxY: 30, Seed: 25, Hotspots: 4,
	})
	g := grid.MustNew(6, grid.Bounds{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30})
	morning := make([]float64, g.NumCells())
	evening := make([]float64, g.NumCells())
	for _, tr := range d.Trajs {
		c := g.CellOf(tr.Points[0].X, tr.Points[0].Y)
		switch {
		case tr.Start >= 30 && tr.Start < 70: // around morning peak (phase .25)
			morning[c]++
		case tr.Start >= 130 && tr.Start < 170: // around evening peak (phase .75)
			evening[c]++
		}
	}
	l1 := 0.0
	sm, se := 0.0, 0.0
	for i := range morning {
		sm += morning[i]
		se += evening[i]
	}
	if sm == 0 || se == 0 {
		t.Fatal("no rush sessions found")
	}
	for i := range morning {
		l1 += math.Abs(morning[i]/sm - evening[i]/se)
	}
	if l1 < 0.2 {
		t.Fatalf("origin distributions do not drift between rushes: L1=%v", l1)
	}
}

func TestStandardSpecs(t *testing.T) {
	for _, spec := range AllSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			d, err := spec.Generate(0.05, 1) // tiny scale for test speed
			if err != nil {
				t.Fatal(err)
			}
			if d.Name != spec.Name {
				t.Fatalf("name = %q", d.Name)
			}
			if len(d.Trajs) == 0 {
				t.Fatal("empty dataset")
			}
			for _, tr := range d.Trajs {
				for _, p := range tr.Points {
					if !spec.Bounds.Contains(p.X, p.Y) {
						t.Fatalf("point (%v,%v) outside spec bounds", p.X, p.Y)
					}
				}
			}
		})
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"tdrive", "oldenburg", "sanjoaquin", "TDriveSim", "OldenburgSim", "SanJoaquinSim"} {
		if _, ok := SpecByName(name); !ok {
			t.Errorf("SpecByName(%q) failed", name)
		}
	}
	if _, ok := SpecByName("nope"); ok {
		t.Error("unknown name resolved")
	}
}

func TestScaled(t *testing.T) {
	if scaled(100, 0.5) != 50 {
		t.Error("scaled(100, .5)")
	}
	if scaled(3, 0.01) != 1 {
		t.Error("tiny scale should clamp to 1")
	}
	if scaled(0, 1) != 0 {
		t.Error("scaled(0, 1)")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := TDriveLike(TDriveConfig{T: 50, ArrivalsPerTs: 10, MaxX: 10, MaxY: 10, Seed: 31})
	b, _ := TDriveLike(TDriveConfig{T: 50, ArrivalsPerTs: 10, MaxX: 10, MaxY: 10, Seed: 31})
	if len(a.Trajs) != len(b.Trajs) || a.NumPoints() != b.NumPoints() {
		t.Fatal("same-seed generation differs")
	}
	c, _ := TDriveLike(TDriveConfig{T: 50, ArrivalsPerTs: 10, MaxX: 10, MaxY: 10, Seed: 32})
	if len(a.Trajs) == len(c.Trajs) && a.NumPoints() == c.NumPoints() {
		t.Fatal("different seeds produced identical output (suspicious)")
	}
}

// TestDriftingHotspotTracksItsCenter pins the drifting workload: the
// dominant mass follows the moving hotspot, so early and late windows
// concentrate in different regions.
func TestDriftingHotspotTracksItsCenter(t *testing.T) {
	cfg := DriftConfig{
		T: 60, InitialUsers: 800, ArrivalsPerTs: 80, MeanLength: 10,
		MaxX: 32, MaxY: 32, Seed: 5,
	}
	d, err := DriftingHotspot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.T != 60 || len(d.Trajs) < 800 {
		t.Fatalf("unexpected shape: T=%d streams=%d", d.T, len(d.Trajs))
	}
	// Fraction of points inside the lower-left vs upper-right quadrant at
	// the start and end of the timeline.
	quadrantShare := func(ts int, lower bool) float64 {
		in, tot := 0, 0
		for _, tr := range d.Trajs {
			i := ts - tr.Start
			if i < 0 || i >= len(tr.Points) {
				continue
			}
			tot++
			p := tr.Points[i]
			if lower && p.X < 16 && p.Y < 16 {
				in++
			}
			if !lower && p.X >= 16 && p.Y >= 16 {
				in++
			}
		}
		if tot == 0 {
			return 0
		}
		return float64(in) / float64(tot)
	}
	if early := quadrantShare(2, true); early < 0.5 {
		t.Fatalf("early mass not concentrated at the start corner: %.2f", early)
	}
	if late := quadrantShare(57, false); late < 0.5 {
		t.Fatalf("late mass did not follow the drift: %.2f", late)
	}
	// Determinism and validation.
	d2, err := DriftingHotspot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Trajs) != len(d.Trajs) {
		t.Fatal("drifting workload not deterministic")
	}
	if _, err := DriftingHotspot(DriftConfig{T: 1, MaxX: 1, MaxY: 1}); err == nil {
		t.Fatal("T=1 accepted")
	}
	if _, err := DriftingHotspot(DriftConfig{T: 10, DriftRate: -1, MaxX: 1, MaxY: 1}); err == nil {
		t.Fatal("negative drift rate accepted")
	}
}

// TestDriftingSpecRegistered pins the dataset registry entry.
func TestDriftingSpecRegistered(t *testing.T) {
	spec, ok := SpecByName("drifting")
	if !ok || spec.Name != "DriftingSim" {
		t.Fatalf("drifting spec not registered: %+v ok=%v", spec, ok)
	}
	raw, err := spec.Generate(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Trajs) == 0 || raw.T != 120 {
		t.Fatalf("drifting spec generated %d streams over T=%d", len(raw.Trajs), raw.T)
	}
}

// TestCorridorStaysOnFence pins the corridor workload against its matching
// fence: the fence validates, and the overwhelming majority of generated
// points falls inside fence polygons (only the configured off-fence share
// roams the box).
func TestCorridorStaysOnFence(t *testing.T) {
	b := grid.Bounds{MinX: 0, MinY: 0, MaxX: 32, MaxY: 32}
	cfg := CorridorConfig{
		T: 60, InitialUsers: 600, ArrivalsPerTs: 60, MeanLength: 12,
		MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY, Seed: 9,
	}
	d, err := Corridor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.T != 60 || len(d.Trajs) < 600 {
		t.Fatalf("unexpected shape: T=%d streams=%d", d.T, len(d.Trajs))
	}
	fence, err := geofence.NewFence(CorridorFence(b))
	if err != nil {
		t.Fatalf("corridor fence invalid: %v", err)
	}
	if fence.NumCells() != 17 {
		t.Fatalf("corridor fence has %d cells, want 17", fence.NumCells())
	}
	if fence.Bounds() != spatial.Bounds(b) {
		t.Fatalf("fence hull %+v ≠ workload bounds %+v", fence.Bounds(), b)
	}
	in, tot := 0, 0
	for _, tr := range d.Trajs {
		for _, p := range tr.Points {
			tot++
			if _, ok := fence.CellOfOK(p.X, p.Y); !ok {
				t.Fatalf("point (%v,%v) outside the bounds", p.X, p.Y)
			}
			if fence.Covers(p.X, p.Y) {
				in++
			}
		}
	}
	if share := float64(in) / float64(tot); share < 0.9 {
		t.Fatalf("only %.2f of corridor points are on the fence", share)
	}
	// The corridor fence is fully connected: BFS over shared-edge adjacency
	// from the center reaches every cell.
	seen := make([]bool, fence.NumCells())
	queue := []spatial.Cell{0}
	seen[0] = true
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, n := range fence.Neighbors(c) {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("fence cell %d unreachable from the center", c)
		}
	}
	// Determinism and validation.
	d2, err := Corridor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Trajs) != len(d.Trajs) {
		t.Fatal("corridor workload not deterministic")
	}
	if _, err := Corridor(CorridorConfig{T: 1, MaxX: 1, MaxY: 1}); err == nil {
		t.Fatal("T=1 accepted")
	}
	if _, err := Corridor(CorridorConfig{T: 10, OffFenceShare: 2, MaxX: 1, MaxY: 1}); err == nil {
		t.Fatal("OffFenceShare > 1 accepted")
	}
}

// TestCorridorSpecRegistered pins the dataset registry entry.
func TestCorridorSpecRegistered(t *testing.T) {
	spec, ok := SpecByName("corridor")
	if !ok || spec.Name != "CorridorSim" {
		t.Fatalf("corridor spec not registered: %+v ok=%v", spec, ok)
	}
	raw, err := spec.Generate(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Trajs) == 0 || raw.T != 120 {
		t.Fatalf("corridor spec generated %d streams over T=%d", len(raw.Trajs), raw.T)
	}
}
