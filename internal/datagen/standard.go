package datagen

import (
	"retrasyn/internal/grid"
	"retrasyn/internal/trajectory"
)

// Standard datasets: scaled-down substitutes for the paper's Table I
// datasets, with a scale knob multiplying the user population. At scale 1
// they run the full evaluation on a laptop in minutes; pushing the scale up
// approaches the paper's raw sizes (the utility metrics are ratios and
// divergences, stable under population scaling — DESIGN.md §3).

// Spec describes a standard dataset: how to generate it and the grid bounds
// experiments should discretize it with.
type Spec struct {
	Name   string
	Bounds grid.Bounds
	// Generate builds the raw dataset at the given population scale.
	Generate func(scale float64, seed uint64) (*trajectory.RawDataset, error)
}

// TDriveSpec is the T-Drive substitute: short taxi sessions in a 30×30
// bounding box with rush-hour flow reversal over a 150-timestamp timeline.
func TDriveSpec() Spec {
	b := grid.Bounds{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30}
	return Spec{
		Name:   "TDriveSim",
		Bounds: b,
		Generate: func(scale float64, seed uint64) (*trajectory.RawDataset, error) {
			// 260 arrivals per timestamp at scale 1 matches the paper's
			// T-Drive stream inflow (232,640 streams / 886 timestamps).
			d, err := TDriveLike(TDriveConfig{
				T:             150,
				Hotspots:      8,
				InitialUsers:  scaled(1200, scale),
				ArrivalsPerTs: 260 * scale,
				MeanLength:    13.6,
				MinX:          b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY,
				Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			d.Name = "TDriveSim"
			return d, nil
		},
	}
}

// OldenburgSpec is the Oldenburg substitute: network-constrained movers on
// a 28×28-intersection road map, long sessions (~60 points), steady flow.
func OldenburgSpec() Spec {
	b := grid.Bounds{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}
	return Spec{
		Name:   "OldenburgSim",
		Bounds: b,
		Generate: func(scale float64, seed uint64) (*trajectory.RawDataset, error) {
			net, err := GenerateRoadNetwork(28, b.MinX, b.MinY, b.MaxX, b.MaxY, seed^0x01de4b)
			if err != nil {
				return nil, err
			}
			d, err := BrinkhoffLike(net, BrinkhoffConfig{
				T:             120,
				InitialUsers:  scaled(1500, scale),
				NewUsersPerTs: scaled(130, scale),
				QuitProb:      1.0 / 60,
				Jitter:        0.1,
				Seed:          seed,
			})
			if err != nil {
				return nil, err
			}
			d.Name = "OldenburgSim"
			return d, nil
		},
	}
}

// SanJoaquinSpec is the SanJoaquin substitute: a larger road network and a
// heavier arrival stream over a longer timeline.
func SanJoaquinSpec() Spec {
	b := grid.Bounds{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	return Spec{
		Name:   "SanJoaquinSim",
		Bounds: b,
		Generate: func(scale float64, seed uint64) (*trajectory.RawDataset, error) {
			net, err := GenerateRoadNetwork(36, b.MinX, b.MinY, b.MaxX, b.MaxY, seed^0x5a4f0a)
			if err != nil {
				return nil, err
			}
			d, err := BrinkhoffLike(net, BrinkhoffConfig{
				T:             150,
				InitialUsers:  scaled(2000, scale),
				NewUsersPerTs: scaled(170, scale),
				QuitProb:      1.0 / 55,
				Jitter:        0.1,
				Seed:          seed,
			})
			if err != nil {
				return nil, err
			}
			d.Name = "SanJoaquinSim"
			return d, nil
		},
	}
}

// AllSpecs returns the three standard dataset specs in Table I order, plus
// the drifting-hotspot workload the re-discretization benchmark uses and the
// corridor/district workload the geofence benchmark uses.
func AllSpecs() []Spec {
	return []Spec{TDriveSpec(), OldenburgSpec(), SanJoaquinSpec(), DriftingSpec(), CorridorSpec()}
}

// SpecByName resolves a spec by its dataset name (case-sensitive) or the
// short aliases "tdrive", "oldenburg", "sanjoaquin", "drifting", "corridor".
func SpecByName(name string) (Spec, bool) {
	switch name {
	case "TDriveSim", "tdrive":
		return TDriveSpec(), true
	case "OldenburgSim", "oldenburg":
		return OldenburgSpec(), true
	case "SanJoaquinSim", "sanjoaquin":
		return SanJoaquinSpec(), true
	case "DriftingSim", "drifting":
		return DriftingSpec(), true
	case "CorridorSim", "corridor":
		return CorridorSpec(), true
	default:
		return Spec{}, false
	}
}

func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 && n > 0 && scale > 0 {
		return 1
	}
	return v
}
