package datagen

import (
	"fmt"
	"math"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
)

// DriftConfig parameterizes the drifting-hotspot workload: most users move
// inside one dense hotspot whose center translates across the space over the
// timeline, the rest roam uniformly. The workload exists to defeat layouts
// frozen at boot — a discretization grown from the early hotspot position
// has its fine cells in the wrong place by the end of the stream — and is
// what the adaptive re-discretization benchmark runs on.
type DriftConfig struct {
	// T is the timeline length.
	T int
	// InitialUsers enter at t=0.
	InitialUsers int
	// ArrivalsPerTs is the mean number of new sessions per timestamp.
	ArrivalsPerTs float64
	// MeanLength is the target mean session length in points (geometric).
	MeanLength float64
	// HotspotFrac is the hotspot's side length as a fraction of the space
	// side (default 0.25).
	HotspotFrac float64
	// HotspotShare is the fraction of sessions that live inside the hotspot
	// (default 0.8).
	HotspotShare float64
	// DriftRate is how far the hotspot center travels per timestamp, as a
	// fraction of the space diagonal direction (per-axis fraction of the
	// usable span). Default: the center crosses the space once over T.
	DriftRate float64
	// MinX..MaxY bound the space.
	MinX, MinY, MaxX, MaxY float64
	// Seed drives all randomness.
	Seed uint64
}

func (c *DriftConfig) defaults() error {
	if c.T < 2 {
		return fmt.Errorf("datagen: drift T must be ≥ 2, got %d", c.T)
	}
	if !(c.MaxX > c.MinX) || !(c.MaxY > c.MinY) {
		return fmt.Errorf("datagen: invalid drift bounds")
	}
	if c.MeanLength <= 1 {
		c.MeanLength = 12
	}
	if c.HotspotFrac <= 0 || c.HotspotFrac >= 1 {
		c.HotspotFrac = 0.25
	}
	if c.HotspotShare < 0 || c.HotspotShare > 1 {
		return fmt.Errorf("datagen: HotspotShare %v outside [0,1]", c.HotspotShare)
	}
	if c.HotspotShare == 0 {
		c.HotspotShare = 0.8
	}
	if c.DriftRate < 0 {
		return fmt.Errorf("datagen: negative DriftRate %v", c.DriftRate)
	}
	if c.DriftRate == 0 {
		c.DriftRate = 1 / float64(c.T-1)
	}
	if c.ArrivalsPerTs < 0 {
		return fmt.Errorf("datagen: negative arrival rate")
	}
	return nil
}

// hotspotCenter returns the hotspot center at timestamp t: it starts in the
// lower-left region and translates diagonally at DriftRate, bouncing off the
// far corner so long timelines stay in bounds.
func (c *DriftConfig) hotspotCenter(t int) (x, y float64) {
	half := c.HotspotFrac / 2
	// usable fraction of each axis the center may occupy
	span := 1 - c.HotspotFrac
	pos := c.DriftRate * float64(t)
	// triangle wave over [0, span]: forward then back
	period := 2 * span
	p := math.Mod(pos*span, period)
	if p > span {
		p = period - p
	}
	fx := half + p
	fy := half + p
	return c.MinX + fx*(c.MaxX-c.MinX), c.MinY + fy*(c.MaxY-c.MinY)
}

// DriftingHotspot generates the drifting-hotspot raw dataset. Hotspot
// sessions spawn near the hotspot's center at their start timestamp and then
// chase it as it drifts; background sessions random-walk the whole space.
func DriftingHotspot(cfg DriftConfig) (*trajectory.RawDataset, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := ldp.NewRand(cfg.Seed, cfg.Seed^0x9d7f3a2c)
	d := &trajectory.RawDataset{Name: "drifting", T: cfg.T}
	width, height := cfg.MaxX-cfg.MinX, cfg.MaxY-cfg.MinY
	scatter := cfg.HotspotFrac * width / 4
	step := width / 24

	spawn := func(start int) {
		hot := rng.Float64() < cfg.HotspotShare
		var x, y float64
		if hot {
			cx, cy := cfg.hotspotCenter(start)
			x = clamp(cx+rng.NormFloat64()*scatter, cfg.MinX, cfg.MaxX)
			y = clamp(cy+rng.NormFloat64()*scatter, cfg.MinY, cfg.MaxY)
		} else {
			x = cfg.MinX + rng.Float64()*width
			y = cfg.MinY + rng.Float64()*height
		}
		tr := trajectory.RawTrajectory{Start: start}
		quitP := 1 / cfg.MeanLength
		for t := start; t < cfg.T; t++ {
			tr.Points = append(tr.Points, trajectory.RawPoint{X: x, Y: y})
			if len(tr.Points) > 1 && ldp.Bernoulli(rng, quitP) {
				break
			}
			if hot {
				// Chase the drifting center with jitter, staying inside the
				// hotspot's footprint.
				cx, cy := cfg.hotspotCenter(t + 1)
				x += (cx-x)*0.35 + rng.NormFloat64()*step
				y += (cy-y)*0.35 + rng.NormFloat64()*step
			} else {
				x += (rng.Float64() - 0.5) * 2 * step
				y += (rng.Float64() - 0.5) * 2 * step
			}
			x = clamp(x, cfg.MinX, cfg.MaxX)
			y = clamp(y, cfg.MinY, cfg.MaxY)
		}
		d.Trajs = append(d.Trajs, tr)
	}

	for i := 0; i < cfg.InitialUsers; i++ {
		spawn(0)
	}
	for t := 1; t < cfg.T; t++ {
		n := poisson(rng, cfg.ArrivalsPerTs)
		for i := 0; i < n; i++ {
			spawn(t)
		}
	}
	return d, nil
}

// DriftingSpec is the drifting-hotspot workload packaged as a standard
// dataset: a 32×32 box whose hotspot crosses the space once over 120
// timestamps. Used by the adaptive re-discretization benchmark and exposed
// through cmd/datagen and cmd/retrasyn as "drifting".
func DriftingSpec() Spec {
	b := grid.Bounds{MinX: 0, MinY: 0, MaxX: 32, MaxY: 32}
	return Spec{
		Name:   "DriftingSim",
		Bounds: b,
		Generate: func(scale float64, seed uint64) (*trajectory.RawDataset, error) {
			d, err := DriftingHotspot(DriftConfig{
				T:             120,
				InitialUsers:  scaled(1200, scale),
				ArrivalsPerTs: 120 * scale,
				MeanLength:    14,
				MinX:          b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY,
				Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			d.Name = "DriftingSim"
			return d, nil
		},
	}
}
