// Package datagen provides the dataset substitutes documented in DESIGN.md
// §3: a hotspot-gravity taxi simulator standing in for the proprietary
// T-Drive traces, and a road-network moving-object generator reproducing
// the process of Brinkhoff's generator used for the paper's Oldenburg and
// SanJoaquin datasets. Both emit continuous raw trajectories; the pipeline
// discretizes them onto whatever grid an experiment selects.
package datagen

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"

	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
)

// RoadNetwork is a spatially embedded undirected graph standing in for a
// city road map.
type RoadNetwork struct {
	Nodes []trajectory.RawPoint
	Adj   [][]int32
}

// NumNodes returns the node count.
func (n *RoadNetwork) NumNodes() int { return len(n.Nodes) }

// GenerateRoadNetwork builds a jittered lattice road network with side× side
// intersections over the given bounds: lattice edges are kept with high
// probability, a few long diagonals are added, and connectivity is repaired
// so every node is reachable.
func GenerateRoadNetwork(side int, minX, minY, maxX, maxY float64, seed uint64) (*RoadNetwork, error) {
	if side < 2 {
		return nil, fmt.Errorf("datagen: road network side must be ≥ 2, got %d", side)
	}
	if !(maxX > minX) || !(maxY > minY) {
		return nil, fmt.Errorf("datagen: invalid road network bounds")
	}
	rng := ldp.NewRand(seed, seed^0xabcdef123456)
	n := side * side
	net := &RoadNetwork{
		Nodes: make([]trajectory.RawPoint, n),
		Adj:   make([][]int32, n),
	}
	sx := (maxX - minX) / float64(side)
	sy := (maxY - minY) / float64(side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			id := r*side + c
			net.Nodes[id] = trajectory.RawPoint{
				X: minX + (float64(c)+0.5)*sx + (rng.Float64()-0.5)*0.5*sx,
				Y: minY + (float64(r)+0.5)*sy + (rng.Float64()-0.5)*0.5*sy,
			}
		}
	}
	addEdge := func(a, b int) {
		net.Adj[a] = append(net.Adj[a], int32(b))
		net.Adj[b] = append(net.Adj[b], int32(a))
	}
	const keepProb = 0.9
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			id := r*side + c
			if c+1 < side && rng.Float64() < keepProb {
				addEdge(id, id+1)
			}
			if r+1 < side && rng.Float64() < keepProb {
				addEdge(id, id+side)
			}
		}
	}
	// A few diagonal shortcuts (arterial roads).
	for i := 0; i < side; i++ {
		r, c := rng.IntN(side-1), rng.IntN(side-1)
		addEdge(r*side+c, (r+1)*side+c+1)
	}
	net.repairConnectivity(rng)
	return net, nil
}

// repairConnectivity links disconnected components to the largest one via
// their spatially nearest node pairs.
func (net *RoadNetwork) repairConnectivity(rng *rand.Rand) {
	n := len(net.Nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(comps)
		queue := []int{start}
		comp[start] = id
		var members []int
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			members = append(members, v)
			for _, u := range net.Adj[v] {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, int(u))
				}
			}
		}
		comps = append(comps, members)
	}
	if len(comps) <= 1 {
		return
	}
	// Attach every smaller component to the largest by its nearest pair.
	largest := 0
	for i, m := range comps {
		if len(m) > len(comps[largest]) {
			largest = i
		}
	}
	for i, members := range comps {
		if i == largest {
			continue
		}
		bestA, bestB, bestD := members[0], comps[largest][0], math.Inf(1)
		for _, a := range members {
			for _, b := range comps[largest] {
				d := net.dist(a, b)
				if d < bestD {
					bestA, bestB, bestD = a, b, d
				}
			}
		}
		net.Adj[bestA] = append(net.Adj[bestA], int32(bestB))
		net.Adj[bestB] = append(net.Adj[bestB], int32(bestA))
	}
}

func (net *RoadNetwork) dist(a, b int) float64 {
	dx := net.Nodes[a].X - net.Nodes[b].X
	dy := net.Nodes[a].Y - net.Nodes[b].Y
	return math.Hypot(dx, dy)
}

// pqItem is an A* frontier entry.
type pqItem struct {
	node int32
	prio float64
}

type priorityQueue []pqItem

func (p priorityQueue) Len() int           { return len(p) }
func (p priorityQueue) Less(i, j int) bool { return p[i].prio < p[j].prio }
func (p priorityQueue) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *priorityQueue) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *priorityQueue) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// ShortestPath returns the node sequence of an A* (Euclidean heuristic)
// shortest path from a to b, inclusive of both endpoints. The second result
// is false when no path exists.
func (net *RoadNetwork) ShortestPath(a, b int) ([]int32, bool) {
	if a == b {
		return []int32{int32(a)}, true
	}
	n := len(net.Nodes)
	dist := make([]float64, n)
	prev := make([]int32, n)
	closed := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[a] = 0
	pq := &priorityQueue{{node: int32(a), prio: net.dist(a, b)}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pqItem)
		v := int(cur.node)
		if closed[v] {
			continue
		}
		if v == b {
			break
		}
		closed[v] = true
		for _, u := range net.Adj[v] {
			if closed[u] {
				continue
			}
			d := dist[v] + net.dist(v, int(u))
			if d < dist[u] {
				dist[u] = d
				prev[u] = int32(v)
				heap.Push(pq, pqItem{node: u, prio: d + net.dist(int(u), b)})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return nil, false
	}
	var path []int32
	for v := int32(b); v >= 0; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}
