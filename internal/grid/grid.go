// Package grid implements the uniform K×K geospatial discretization used by
// RetraSyn (paper §III-B). Continuous two-dimensional locations are mapped to
// grid cells; mobility is constrained to transitions between a cell and its
// (at most eight) adjacent cells plus itself, the paper's reachability
// constraint that shrinks the movement-state domain from |C|² to O(9|C|).
//
// The grid is the uniform backend of the spatial.Discretizer abstraction —
// the engine layers consume the interface, so this package stays the
// bit-identical default while density-adaptive backends (spatial.Quadtree)
// can be swapped in for skewed workloads.
package grid

import (
	"fmt"
	"math"

	"retrasyn/internal/spatial"
)

// Cell identifies a grid cell as row*K + col. The zero cell is the
// bottom-left corner of the space. It is the shared spatial.Cell index type.
type Cell = spatial.Cell

// Invalid is returned for points outside the grid bounds by CellOfOK.
const Invalid = spatial.Invalid

// Bounds describes the continuous bounding box of the space being
// discretized; it is the shared spatial.Bounds type.
type Bounds = spatial.Bounds

// System is a K×K uniform grid over a bounding box with precomputed
// neighbourhoods. It is immutable after construction and safe for concurrent
// use.
type System struct {
	k      int
	bounds Bounds
	cellW  float64
	cellH  float64

	// neighbors[c] lists the reachable cells from c: the 3×3 block around c
	// clipped to the grid, always including c itself. Order is deterministic
	// (row-major over the block).
	neighbors [][]Cell
}

// New constructs a K×K grid over the given bounds. K must be ≥ 1 and the
// bounds non-degenerate.
func New(k int, b Bounds) (*System, error) {
	if k < 1 {
		return nil, fmt.Errorf("grid: K must be ≥ 1, got %d", k)
	}
	if !b.Valid() {
		return nil, fmt.Errorf("grid: invalid bounds %+v", b)
	}
	s := &System{
		k:      k,
		bounds: b,
		cellW:  b.Width() / float64(k),
		cellH:  b.Height() / float64(k),
	}
	s.neighbors = make([][]Cell, k*k)
	for c := range s.neighbors {
		s.neighbors[c] = buildNeighbors(Cell(c), k)
	}
	return s, nil
}

// MustNew is New but panics on error; intended for tests and literals with
// constant arguments.
func MustNew(k int, b Bounds) *System {
	s, err := New(k, b)
	if err != nil {
		panic(err)
	}
	return s
}

func buildNeighbors(c Cell, k int) []Cell {
	row, col := int(c)/k, int(c)%k
	out := make([]Cell, 0, 9)
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			r, cc := row+dr, col+dc
			if r < 0 || r >= k || cc < 0 || cc >= k {
				continue
			}
			out = append(out, Cell(r*k+cc))
		}
	}
	return out
}

// K returns the grid granularity.
func (s *System) K() int { return s.k }

// NumCells returns K².
func (s *System) NumCells() int { return s.k * s.k }

// Bounds returns the continuous bounding box.
func (s *System) Bounds() Bounds { return s.bounds }

// CellOf maps a continuous point into its cell, clamping points outside the
// bounds onto the nearest boundary cell. Use CellOfOK to detect out-of-bounds
// points instead of clamping.
func (s *System) CellOf(x, y float64) Cell {
	col := s.clampIndex((x - s.bounds.MinX) / s.cellW)
	row := s.clampIndex((y - s.bounds.MinY) / s.cellH)
	return Cell(row*s.k + col)
}

// CellOfOK maps a continuous point into its cell, returning Invalid and
// false when the point lies outside the bounds.
func (s *System) CellOfOK(x, y float64) (Cell, bool) {
	if !s.bounds.Contains(x, y) {
		return Invalid, false
	}
	return s.CellOf(x, y), true
}

func (s *System) clampIndex(f float64) int {
	i := int(math.Floor(f))
	if i < 0 {
		return 0
	}
	if i >= s.k {
		return s.k - 1
	}
	return i
}

// Center returns the continuous centre point of a cell.
func (s *System) Center(c Cell) (x, y float64) {
	row, col := s.RowCol(c)
	return s.bounds.MinX + (float64(col)+0.5)*s.cellW,
		s.bounds.MinY + (float64(row)+0.5)*s.cellH
}

// CellBox returns the continuous box of cell c (the spatial.Boxed contract
// online re-discretization migrates state through).
func (s *System) CellBox(c Cell) Bounds {
	row, col := s.RowCol(c)
	return Bounds{
		MinX: s.bounds.MinX + float64(col)*s.cellW,
		MinY: s.bounds.MinY + float64(row)*s.cellH,
		MaxX: s.bounds.MinX + float64(col+1)*s.cellW,
		MaxY: s.bounds.MinY + float64(row+1)*s.cellH,
	}
}

// RowCol decomposes a cell index into its row and column.
func (s *System) RowCol(c Cell) (row, col int) {
	return int(c) / s.k, int(c) % s.k
}

// CellAt returns the cell at (row, col); it panics if out of range.
func (s *System) CellAt(row, col int) Cell {
	if row < 0 || row >= s.k || col < 0 || col >= s.k {
		panic(fmt.Sprintf("grid: cell (%d,%d) out of range for K=%d", row, col, s.k))
	}
	return Cell(row*s.k + col)
}

// ValidCell reports whether c is a cell of this grid.
func (s *System) ValidCell(c Cell) bool {
	return c >= 0 && int(c) < s.k*s.k
}

// Neighbors returns the reachable cells from c under the paper's adjacency
// constraint: the 3×3 block around c clipped to the grid, including c itself.
// The returned slice is shared and must not be modified.
func (s *System) Neighbors(c Cell) []Cell {
	return s.neighbors[c]
}

// Adjacent reports whether a transition from a to b satisfies the
// reachability constraint (b in the 3×3 block of a, possibly a itself).
func (s *System) Adjacent(a, b Cell) bool {
	ra, ca := s.RowCol(a)
	rb, cb := s.RowCol(b)
	dr, dc := ra-rb, ca-cb
	return dr >= -1 && dr <= 1 && dc >= -1 && dc <= 1
}

// NeighborRank returns the position of b within Neighbors(a), or -1 when b
// is not reachable from a. The rank is stable and is used to index
// per-source-cell movement states.
func (s *System) NeighborRank(a, b Cell) int {
	for i, n := range s.neighbors[a] {
		if n == b {
			return i
		}
	}
	return -1
}

// TotalMoveStates returns Σ_c |Neighbors(c)|, the number of movement
// transition states under the reachability constraint.
func (s *System) TotalMoveStates() int {
	n := 0
	for _, ns := range s.neighbors {
		n += len(ns)
	}
	return n
}

// Fingerprint returns the stable layout identifier of the grid (the
// spatial.Discretizer contract): kind, granularity and exact bounds.
func (s *System) Fingerprint() string {
	return fmt.Sprintf("uniform:v1:k=%d:bounds=%x,%x,%x,%x", s.k,
		math.Float64bits(s.bounds.MinX), math.Float64bits(s.bounds.MinY),
		math.Float64bits(s.bounds.MaxX), math.Float64bits(s.bounds.MaxY))
}

// System implements the pluggable discretization interface the engine
// layers consume, including the boxed-cell contract migrations need.
var (
	_ spatial.Discretizer = (*System)(nil)
	_ spatial.Boxed       = (*System)(nil)
)

// CellDistance returns the Chebyshev distance between two cells (the number
// of timestamps a user moving one step per timestamp needs to travel between
// them).
func (s *System) CellDistance(a, b Cell) int {
	ra, ca := s.RowCol(a)
	rb, cb := s.RowCol(b)
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	if dr > dc {
		return dr
	}
	return dc
}

// Region is a rectangular block of cells, used by spatio-temporal range
// queries (metric §V-B). Rows/cols are inclusive.
type Region struct {
	MinRow, MinCol, MaxRow, MaxCol int
}

// ContainsCell reports whether the region contains cell c of grid s.
func (r Region) ContainsCell(s *System, c Cell) bool {
	row, col := s.RowCol(c)
	return row >= r.MinRow && row <= r.MaxRow && col >= r.MinCol && col <= r.MaxCol
}

// NumCells returns the number of cells covered by the region.
func (r Region) NumCells() int {
	return (r.MaxRow - r.MinRow + 1) * (r.MaxCol - r.MinCol + 1)
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("rows[%d,%d]×cols[%d,%d]", r.MinRow, r.MaxRow, r.MinCol, r.MaxCol)
}
