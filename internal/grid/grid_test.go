package grid

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testBounds() Bounds { return Bounds{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10} }

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		k       int
		b       Bounds
		wantErr bool
	}{
		{"ok", 4, testBounds(), false},
		{"k=1 degenerate grid is allowed", 1, testBounds(), false},
		{"zero k", 0, testBounds(), true},
		{"negative k", -3, testBounds(), true},
		{"inverted x bounds", 4, Bounds{MinX: 10, MaxX: 0, MinY: 0, MaxY: 10}, true},
		{"inverted y bounds", 4, Bounds{MinX: 0, MaxX: 10, MinY: 10, MaxY: 0}, true},
		{"zero-area bounds", 4, Bounds{}, true},
		{"nan bounds", 4, Bounds{MinX: math.NaN(), MaxX: 1, MinY: 0, MaxY: 1}, true},
		{"inf bounds", 4, Bounds{MinX: 0, MaxX: math.Inf(1), MinY: 0, MaxY: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.k, tt.b)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d, %+v) error = %v, wantErr %v", tt.k, tt.b, err, tt.wantErr)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid K did not panic")
		}
	}()
	MustNew(0, testBounds())
}

func TestCellOfCorners(t *testing.T) {
	s := MustNew(4, testBounds())
	tests := []struct {
		x, y float64
		want Cell
	}{
		{0, 0, 0},
		{9.99, 0, 3},
		{0, 9.99, 12},
		{9.99, 9.99, 15},
		{10, 10, 15},   // max edge clamps into last cell
		{5, 5, 10},     // centre point falls in cell (2,2)
		{2.5, 0, 1},    // second column
		{0, 2.5, 4},    // second row
		{-5, -5, 0},    // clamped below
		{100, 100, 15}, // clamped above
	}
	for _, tt := range tests {
		if got := s.CellOf(tt.x, tt.y); got != tt.want {
			t.Errorf("CellOf(%v,%v) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestCellOfOK(t *testing.T) {
	s := MustNew(4, testBounds())
	if c, ok := s.CellOfOK(5, 5); !ok || c != 10 {
		t.Errorf("CellOfOK(5,5) = %d,%v want 10,true", c, ok)
	}
	if _, ok := s.CellOfOK(-0.001, 5); ok {
		t.Error("CellOfOK out of bounds (x) returned ok")
	}
	if _, ok := s.CellOfOK(5, 10.001); ok {
		t.Error("CellOfOK out of bounds (y) returned ok")
	}
}

func TestCenterRoundTrip(t *testing.T) {
	s := MustNew(7, Bounds{MinX: -3, MinY: 2, MaxX: 11, MaxY: 30})
	for c := Cell(0); int(c) < s.NumCells(); c++ {
		x, y := s.Center(c)
		if got := s.CellOf(x, y); got != c {
			t.Fatalf("CellOf(Center(%d)) = %d", c, got)
		}
	}
}

func TestCenterRoundTripProperty(t *testing.T) {
	f := func(kSeed uint8, minX, minY, w, h float64) bool {
		k := int(kSeed%16) + 1
		w, h = math.Abs(w)+0.001, math.Abs(h)+0.001
		if math.IsInf(minX, 0) || math.IsInf(minY, 0) || math.IsNaN(minX) || math.IsNaN(minY) ||
			math.IsInf(w, 0) || math.IsInf(h, 0) || math.Abs(minX) > 1e9 || math.Abs(minY) > 1e9 || w > 1e9 || h > 1e9 {
			return true // skip pathological floats
		}
		b := Bounds{MinX: minX, MinY: minY, MaxX: minX + w, MaxY: minY + h}
		s, err := New(k, b)
		if err != nil {
			return false
		}
		for c := Cell(0); int(c) < s.NumCells(); c++ {
			x, y := s.Center(c)
			if s.CellOf(x, y) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRowColInverse(t *testing.T) {
	s := MustNew(9, testBounds())
	for c := Cell(0); int(c) < s.NumCells(); c++ {
		r, col := s.RowCol(c)
		if got := s.CellAt(r, col); got != c {
			t.Fatalf("CellAt(RowCol(%d)) = %d", c, got)
		}
	}
}

func TestCellAtPanics(t *testing.T) {
	s := MustNew(3, testBounds())
	defer func() {
		if recover() == nil {
			t.Fatal("CellAt out of range did not panic")
		}
	}()
	s.CellAt(3, 0)
}

func TestNeighborsCounts(t *testing.T) {
	s := MustNew(4, testBounds())
	tests := []struct {
		row, col int
		want     int
	}{
		{0, 0, 4}, // corner: self + 3
		{0, 1, 6}, // edge: self + 5
		{1, 1, 9}, // interior: full 3×3
		{3, 3, 4}, // opposite corner
		{3, 1, 6}, // top edge
		{2, 0, 6}, // left edge
		{2, 2, 9}, // interior
	}
	for _, tt := range tests {
		c := s.CellAt(tt.row, tt.col)
		if got := len(s.Neighbors(c)); got != tt.want {
			t.Errorf("len(Neighbors(%d,%d)) = %d, want %d", tt.row, tt.col, got, tt.want)
		}
	}
}

func TestNeighborsIncludeSelf(t *testing.T) {
	s := MustNew(5, testBounds())
	for c := Cell(0); int(c) < s.NumCells(); c++ {
		found := false
		for _, n := range s.Neighbors(c) {
			if n == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("Neighbors(%d) does not include self", c)
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	s := MustNew(6, testBounds())
	for a := Cell(0); int(a) < s.NumCells(); a++ {
		for _, b := range s.Neighbors(a) {
			if s.NeighborRank(b, a) < 0 {
				t.Fatalf("neighbour relation not symmetric: %d→%d", a, b)
			}
		}
	}
}

func TestAdjacentMatchesNeighbors(t *testing.T) {
	s := MustNew(5, testBounds())
	for a := Cell(0); int(a) < s.NumCells(); a++ {
		for b := Cell(0); int(b) < s.NumCells(); b++ {
			inList := s.NeighborRank(a, b) >= 0
			if got := s.Adjacent(a, b); got != inList {
				t.Fatalf("Adjacent(%d,%d)=%v but neighbour-list membership=%v", a, b, got, inList)
			}
		}
	}
}

func TestK1SingleCell(t *testing.T) {
	s := MustNew(1, testBounds())
	if s.NumCells() != 1 {
		t.Fatalf("NumCells = %d", s.NumCells())
	}
	if got := len(s.Neighbors(0)); got != 1 {
		t.Fatalf("K=1 neighbours = %d, want 1 (self only)", got)
	}
	if s.TotalMoveStates() != 1 {
		t.Fatalf("TotalMoveStates = %d", s.TotalMoveStates())
	}
}

func TestTotalMoveStates(t *testing.T) {
	// K=4: 4 corners×4 + 8 edges×6 + 4 interior×9 = 16+48+36 = 100.
	s := MustNew(4, testBounds())
	if got := s.TotalMoveStates(); got != 100 {
		t.Fatalf("TotalMoveStates(K=4) = %d, want 100", got)
	}
	// K=2: all four cells see the full grid: 4×4 = 16.
	s2 := MustNew(2, testBounds())
	if got := s2.TotalMoveStates(); got != 16 {
		t.Fatalf("TotalMoveStates(K=2) = %d, want 16", got)
	}
}

func TestTotalMoveStatesBound(t *testing.T) {
	// The paper's O(9|C|) bound: Σ|N(c)| ≤ 9K².
	for k := 1; k <= 12; k++ {
		s := MustNew(k, testBounds())
		if got, bound := s.TotalMoveStates(), 9*k*k; got > bound {
			t.Fatalf("K=%d: TotalMoveStates %d exceeds 9|C|=%d", k, got, bound)
		}
	}
}

func TestCellDistance(t *testing.T) {
	s := MustNew(8, testBounds())
	tests := []struct {
		a, b Cell
		want int
	}{
		{s.CellAt(0, 0), s.CellAt(0, 0), 0},
		{s.CellAt(0, 0), s.CellAt(0, 1), 1},
		{s.CellAt(0, 0), s.CellAt(1, 1), 1},
		{s.CellAt(0, 0), s.CellAt(7, 7), 7},
		{s.CellAt(2, 5), s.CellAt(6, 3), 4},
	}
	for _, tt := range tests {
		if got := s.CellDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("CellDistance(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := s.CellDistance(tt.b, tt.a); got != tt.want {
			t.Errorf("CellDistance not symmetric for (%d,%d)", tt.a, tt.b)
		}
	}
}

func TestAdjacencyEquivalentToUnitDistance(t *testing.T) {
	s := MustNew(6, testBounds())
	for a := Cell(0); int(a) < s.NumCells(); a++ {
		for b := Cell(0); int(b) < s.NumCells(); b++ {
			want := s.CellDistance(a, b) <= 1
			if got := s.Adjacent(a, b); got != want {
				t.Fatalf("Adjacent(%d,%d)=%v, CellDistance=%d", a, b, got, s.CellDistance(a, b))
			}
		}
	}
}

func TestRegion(t *testing.T) {
	s := MustNew(6, testBounds())
	r := Region{MinRow: 1, MinCol: 2, MaxRow: 3, MaxCol: 4}
	if got := r.NumCells(); got != 9 {
		t.Fatalf("NumCells = %d, want 9", got)
	}
	inside := 0
	for c := Cell(0); int(c) < s.NumCells(); c++ {
		if r.ContainsCell(s, c) {
			inside++
		}
	}
	if inside != 9 {
		t.Fatalf("cells inside region = %d, want 9", inside)
	}
	if !r.ContainsCell(s, s.CellAt(1, 2)) || !r.ContainsCell(s, s.CellAt(3, 4)) {
		t.Error("region excludes its own corners")
	}
	if r.ContainsCell(s, s.CellAt(0, 2)) || r.ContainsCell(s, s.CellAt(4, 4)) {
		t.Error("region includes cells outside")
	}
}

func TestValidCell(t *testing.T) {
	s := MustNew(3, testBounds())
	if !s.ValidCell(0) || !s.ValidCell(8) {
		t.Error("valid cells reported invalid")
	}
	if s.ValidCell(-1) || s.ValidCell(9) || s.ValidCell(Invalid) {
		t.Error("invalid cells reported valid")
	}
}

func TestRandomPointsAlwaysInGrid(t *testing.T) {
	s := MustNew(10, Bounds{MinX: -50, MinY: 17, MaxX: 3, MaxY: 40})
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		x := -50 + rng.Float64()*53
		y := 17 + rng.Float64()*23
		c := s.CellOf(x, y)
		if !s.ValidCell(c) {
			t.Fatalf("CellOf(%v,%v) = %d invalid", x, y, c)
		}
	}
}

func TestNeighborRankStable(t *testing.T) {
	s := MustNew(5, testBounds())
	c := s.CellAt(2, 2)
	ns := s.Neighbors(c)
	for i, n := range ns {
		if got := s.NeighborRank(c, n); got != i {
			t.Fatalf("NeighborRank(%d,%d) = %d, want %d", c, n, got, i)
		}
	}
	if got := s.NeighborRank(c, s.CellAt(0, 0)); got != -1 {
		t.Fatalf("NeighborRank to non-neighbour = %d, want -1", got)
	}
}

func TestCellBoxTilesBounds(t *testing.T) {
	s := MustNew(5, Bounds{MinX: -2, MinY: 1, MaxX: 8, MaxY: 6})
	total := 0.0
	for c := 0; c < s.NumCells(); c++ {
		box := s.CellBox(Cell(c))
		total += box.Area()
		// The cell's own center lies in its box, and CellOf round-trips.
		x, y := s.Center(Cell(c))
		if x < box.MinX || x > box.MaxX || y < box.MinY || y > box.MaxY {
			t.Fatalf("cell %d center (%v,%v) outside its box %+v", c, x, y, box)
		}
		if s.CellOf((box.MinX+box.MaxX)/2, (box.MinY+box.MaxY)/2) != Cell(c) {
			t.Fatalf("cell %d box midpoint maps elsewhere", c)
		}
	}
	if diff := total - s.Bounds().Area(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cell boxes cover %v, bounds area %v", total, s.Bounds().Area())
	}
}
