package obs

import (
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBuckets pins the bucket geometry the replay harness has always used:
// band edges land where the scheme says, floors invert BucketOf, and
// indices stay in range across the whole int64 span.
func TestBuckets(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 127, 1 << 20, 1<<62 + 12345} {
		idx := BucketOf(v)
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("BucketOf(%d) = %d out of range", v, idx)
		}
		floor := BucketFloor(idx)
		if floor > v {
			t.Fatalf("BucketFloor(BucketOf(%d)) = %d exceeds the value", v, floor)
		}
		// ~3% relative error bound (one sub-bucket width).
		if v >= 32 && float64(v-floor) > float64(v)/16 {
			t.Fatalf("bucket floor %d too far below %d", floor, v)
		}
	}
	if BucketOf(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

// TestHistogramQuantiles checks estimated quantiles against exact ones on a
// random sample: within the structure's relative error bound.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var h Histogram
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = rng.Int64N(2_000_000) // up to 2s in µs
		h.Observe(time.Duration(vals[i]) * time.Microsecond)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := h.Quantile(q)
		if diff := float64(got - exact); diff < -float64(exact)/8 || diff > float64(exact)/8 {
			t.Fatalf("q=%.2f: estimate %d vs exact %d", q, got, exact)
		}
	}
	s := h.Summary()
	if s.Count != 10000 || s.MaxUS != vals[len(vals)-1] || s.MeanUS <= 0 {
		t.Fatalf("summary %+v inconsistent", s)
	}
}

// TestHistogramMergeAssociativity: folding per-shard histograms in any
// grouping must land on identical counts — (a∪b)∪c ≡ a∪(b∪c) ≡ one
// histogram fed everything.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	var a, b, c, direct Histogram
	parts := []*Histogram{&a, &b, &c}
	for i := 0; i < 30000; i++ {
		v := rng.Int64N(1 << 40)
		parts[i%3].ObserveValue(v)
		direct.ObserveValue(v)
	}

	var left Histogram // (a ∪ b) ∪ c
	left.Merge(&a)
	left.Merge(&b)
	left.Merge(&c)

	var bc Histogram // a ∪ (b ∪ c)
	bc.Merge(&b)
	bc.Merge(&c)
	var right Histogram
	right.Merge(&a)
	right.Merge(&bc)

	for name, m := range map[string]*Histogram{"left-assoc": &left, "right-assoc": &right} {
		if m.counts != direct.counts || m.n != direct.n || m.sum != direct.sum || m.max != direct.max {
			t.Fatalf("%s merge diverged from the directly-fed histogram", name)
		}
	}
}

// TestNilHandlesAreNoOps: a nil registry and nil series handles must be
// safely callable — that is the "instrumentation off" mode every
// instrumented package relies on.
func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Gauge("b").Add(2)
	r.Histogram("c").ObserveValue(5)
	if r.NumSeries() != 0 {
		t.Fatal("nil registry grew series")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var h *Histogram
	h.Merge(nil)
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("nil histogram not a no-op")
	}
}

// TestRegistryConcurrency hammers counters, gauges and histograms from many
// writers while a reader scrapes — the -race gate for the registry.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // the scraping reader
		defer close(readerDone)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("test.events")
			g := r.Gauge("test.level")
			h := r.Histogram("test.latency_us", Label{Key: "writer", Value: string(rune('a' + i))})
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Add(1)
				h.ObserveValue(int64(j))
			}
		}(i)
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				// Same-name lookups from many goroutines must converge on
				// one series.
				r.Counter("test.events").Add(0)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if got := r.Counter("test.events").Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("test.level").Value(); got != writers*perWriter {
		t.Fatalf("gauge = %v, want %d", got, writers*perWriter)
	}
}

// TestWritePrometheusGolden pins the exposition byte-for-byte: stable
// ordering, label sorting and escaping, histogram bucket edges.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("curator.rounds").Add(3)
	r.Counter("wire.bytes_in", Label{Key: "path", Value: "/v1/report"}).Add(1234)
	r.Counter("wire.bytes_in", Label{Key: "path", Value: "/v1/plan"}).Add(77)
	r.Gauge("budget.sampled_fraction").Set(0.25)
	r.Gauge("weird.name-with#chars", Label{Key: "k", Value: `quote"back\slash`}).Set(-1.5)
	h := r.Histogram("pipeline.stage.latency_us", Label{Key: "stage", Value: "dmu"})
	h.ObserveValue(10)  // band 0
	h.ObserveValue(40)  // band 1 (32..63)
	h.ObserveValue(100) // band 2 (64..127)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE budget_sampled_fraction gauge`,
		`budget_sampled_fraction 0.25`,
		`# TYPE curator_rounds counter`,
		`curator_rounds 3`,
		`# TYPE pipeline_stage_latency_us histogram`,
		`pipeline_stage_latency_us_bucket{stage="dmu",le="31"} 1`,
		`pipeline_stage_latency_us_bucket{stage="dmu",le="63"} 2`,
		`pipeline_stage_latency_us_bucket{stage="dmu",le="127"} 3`,
		`pipeline_stage_latency_us_bucket{stage="dmu",le="+Inf"} 3`,
		`pipeline_stage_latency_us_sum{stage="dmu"} 150`,
		`pipeline_stage_latency_us_count{stage="dmu"} 3`,
		`# TYPE weird_name_with_chars gauge`,
		`weird_name_with_chars{k="quote\"back\\slash"} -1.5`,
		`# TYPE wire_bytes_in counter`,
		`wire_bytes_in{path="/v1/plan"} 77`,
		`wire_bytes_in{path="/v1/report"} 1234`,
		``,
	}, "\n")
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}
