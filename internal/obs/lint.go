package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text exposition (format 0.0.4)
// against the invariants scrapers rely on, returning the first violation:
//
//   - every sample line parses as `name{labels} value` with a finite or
//     ±Inf value and a metric name matching [a-zA-Z_:][a-zA-Z0-9_:]*
//   - every family has exactly one # TYPE line, emitted before its samples,
//     with a known type
//   - every histogram family emits, per label set, an explicit le="+Inf"
//     bucket whose value equals the family's _count sample, a _sum and a
//     _count, with cumulative bucket counts non-decreasing in le
//
// It is the exposition-side pin for WritePrometheus: run it over every
// registry a server exposes and regressions in the writer (a missing +Inf
// bucket, duplicate TYPE lines, broken escaping) fail loudly instead of
// silently breaking scrapes.
func LintExposition(r io.Reader) error {
	types := map[string]string{}     // family → declared type
	samplesSeen := map[string]bool{} // family → a sample was emitted
	type histSeries struct {
		infBucket  *float64
		lastLe     float64
		lastCum    float64
		sum, count *float64
	}
	hists := map[string]*histSeries{} // histogram family + label set (le stripped)

	histKey := func(fam, labels string) string { return fam + "\xff" + labels }
	base := func(name string) (fam, suffix string) {
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, s); ok && types[f] == "histogram" {
				return f, s
			}
		}
		return name, ""
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || fields[1] != "TYPE" {
				continue // other comments are free-form
			}
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			fam, typ := fields[2], fields[3]
			if prev, dup := types[fam]; dup {
				return fmt.Errorf("line %d: duplicate # TYPE for family %s (already %s)", lineNo, fam, prev)
			}
			if samplesSeen[fam] {
				return fmt.Errorf("line %d: # TYPE for %s after its samples", lineNo, fam)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q for family %s", lineNo, fam, typ)
			}
			types[fam] = typ
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := base(name)
		samplesSeen[fam] = true
		if _, declared := types[fam]; !declared {
			return fmt.Errorf("line %d: sample %s before any # TYPE for family %s", lineNo, name, fam)
		}
		if types[fam] != "histogram" {
			continue
		}
		le, rest := cutLabel(labels, "le")
		key := histKey(fam, rest)
		hs := hists[key]
		if hs == nil {
			hs = &histSeries{lastLe: -1}
			hists[key] = hs
		}
		switch suffix {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
			}
			if le == "+Inf" {
				v := value
				hs.infBucket = &v
				break
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: unparseable le %q", lineNo, le)
			}
			if hs.infBucket != nil {
				return fmt.Errorf("line %d: finite bucket le=%q after the +Inf bucket", lineNo, le)
			}
			if b <= hs.lastLe {
				return fmt.Errorf("line %d: bucket boundaries not increasing (le %v after %v)", lineNo, b, hs.lastLe)
			}
			if value < hs.lastCum {
				return fmt.Errorf("line %d: cumulative bucket count decreased (%v after %v)", lineNo, value, hs.lastCum)
			}
			hs.lastLe, hs.lastCum = b, value
		case "_sum":
			v := value
			hs.sum = &v
		case "_count":
			v := value
			hs.count = &v
		default:
			return fmt.Errorf("line %d: bare sample %s for histogram family %s", lineNo, name, fam)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	for key, hs := range hists {
		fam := key[:strings.IndexByte(key, '\xff')]
		labels := key[strings.IndexByte(key, '\xff')+1:]
		where := fam
		if labels != "" {
			where = fam + "{" + labels + "}"
		}
		switch {
		case hs.infBucket == nil:
			return fmt.Errorf("histogram %s: missing explicit le=\"+Inf\" bucket", where)
		case hs.count == nil:
			return fmt.Errorf("histogram %s: missing _count", where)
		case hs.sum == nil:
			return fmt.Errorf("histogram %s: missing _sum", where)
		case *hs.infBucket != *hs.count:
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", where, *hs.infBucket, *hs.count)
		case hs.lastCum > *hs.infBucket:
			return fmt.Errorf("histogram %s: finite bucket %v exceeds +Inf bucket %v", where, hs.lastCum, *hs.infBucket)
		}
	}
	return nil
}

// parseSample splits one exposition sample into name, raw label body and
// value, validating the metric name and the value syntax.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if b := strings.IndexByte(rest, '{'); b >= 0 {
		name = rest[:b]
		end := strings.LastIndexByte(rest, '}')
		if end < b {
			return "", "", 0, fmt.Errorf("unterminated label set: %q", line)
		}
		labels = rest[b+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		cut := strings.IndexByte(rest, ' ')
		if cut <= 0 {
			return "", "", 0, fmt.Errorf("malformed sample: %q", line)
		}
		name = rest[:cut]
		rest = strings.TrimSpace(rest[cut+1:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	// The value is the first field of the remainder (an optional timestamp
	// may follow).
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", 0, fmt.Errorf("sample without value: %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("unparseable value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// cutLabel removes `key="value"` from a raw label body, returning the value
// and the remaining labels (normalized without the removed pair).
func cutLabel(labels, key string) (value, rest string) {
	if labels == "" {
		return "", ""
	}
	var kept []string
	for _, pair := range splitLabels(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if ok && k == key {
			value = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, pair)
	}
	return value, strings.Join(kept, ",")
}

// splitLabels splits a raw label body on commas outside quoted values.
func splitLabels(labels string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(out, labels[start:])
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
