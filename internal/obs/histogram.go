package obs

import (
	"math/bits"
	"sync"
	"time"
)

// NumBuckets is the fixed size of the histogram's count array.
const NumBuckets = 960

// Histogram is an HDR-style log-bucketed histogram: 16 sub-buckets per
// power of two (the first band holds the values 0–31 exactly), so quantile
// estimates carry at most ~3% relative error while the whole structure is a
// fixed 960-entry array — no allocation per sample, safe to hammer from
// every goroutine. Values are int64 with unit chosen by the caller (the
// latency series use microseconds, the budget ledger micro-ε).
//
// Histograms merge associatively (Merge), so per-shard instances can fold
// into fleet-wide ones in any grouping. A nil *Histogram is a valid no-op.
type Histogram struct {
	mu     sync.Mutex
	counts [NumBuckets]int64
	n      int64
	sum    int64
	max    int64
}

// BucketOf maps a value onto its bucket index. Negative values clamp to
// bucket 0, values beyond the top band to the last bucket.
func BucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	k := bits.Len64(uint64(v)) - 5
	if k < 0 {
		k = 0
	}
	idx := 16*k + int(v>>uint(k))
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// BucketFloor returns the smallest value mapping to bucket idx — the
// conservative estimate quantiles report.
func BucketFloor(idx int) int64 {
	if idx < 32 {
		return int64(idx)
	}
	k := idx/16 - 1
	return int64(idx-16*k) << uint(k)
}

// Observe records a duration in microseconds — the convention every latency
// series in the tree follows.
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(d.Microseconds()) }

// ObserveValue records a raw value.
func (h *Histogram) ObserveValue(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts[BucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantile returns the value at quantile q (0 < q ≤ 1).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := int64(q*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return BucketFloor(i)
		}
	}
	return h.max
}

// Merge folds o's observations into h. Merging is associative and
// commutative — (a∪b)∪c ≡ a∪(b∪c) bucket for bucket — so per-shard
// histograms can aggregate in any order. o is snapshotted under its own
// lock first, so concurrent Merge calls in both directions cannot deadlock.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	s := o.snapshot()
	h.mu.Lock()
	for i, c := range s.counts {
		h.counts[i] += c
	}
	h.n += s.n
	h.sum += s.sum
	if s.max > h.max {
		h.max = s.max
	}
	h.mu.Unlock()
}

// histSnap is a consistent point-in-time copy of a histogram.
type histSnap struct {
	counts [NumBuckets]int64
	n      int64
	sum    int64
	max    int64
}

func (h *Histogram) snapshot() histSnap {
	h.mu.Lock()
	s := histSnap{counts: h.counts, n: h.n, sum: h.sum, max: h.max}
	h.mu.Unlock()
	return s
}

// Summary is the JSON face of a histogram — the schema the replay
// harness's BENCH_replay.json latency entries have always used.
type Summary struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P90US  int64   `json:"p90_us"`
	P95US  int64   `json:"p95_us"`
	P99US  int64   `json:"p99_us"`
	MaxUS  int64   `json:"max_us"`
}

// Summary computes the quantile summary.
func (h *Histogram) Summary() Summary {
	if h == nil {
		return Summary{}
	}
	s := Summary{
		P50US: h.Quantile(0.50),
		P90US: h.Quantile(0.90),
		P95US: h.Quantile(0.95),
		P99US: h.Quantile(0.99),
	}
	h.mu.Lock()
	s.Count, s.MaxUS = h.n, h.max
	if h.n > 0 {
		s.MeanUS = float64(h.sum) / float64(h.n)
	}
	h.mu.Unlock()
	return s
}
