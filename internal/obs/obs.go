// Package obs is the curator's dependency-free metrics subsystem: atomic
// counters and gauges plus the log-bucketed HDR-style histogram shared with
// the replay harness, collected behind a Registry of stable dot-separated
// series names and exposed in Prometheus text format (expose.go).
//
// Design constraints, in order:
//
//   - Zero interference with the engine: recording never touches the random
//     stream, never allocates on the hot path once a series exists, and a
//     nil *Registry (or any series handle obtained from one) disables
//     instrumentation entirely, so golden bit-identity tests hold with
//     metrics live and un-instrumented builds pay nothing.
//   - Run-scoped: metrics describe this process's lifetime and must never
//     enter engine or curator checkpoints — a restored curator counts from
//     zero (pinned by regression tests in internal/remote).
//   - Concurrent: counters and gauges are single atomics, histograms take a
//     short mutex per observation; a scraping reader sees a consistent
//     point-in-time snapshot of each series while writers hammer on.
//
// Series are named with dot-separated lowercase paths ("curator.rounds",
// "pipeline.stage.latency_us") and optional key=value labels; exposition
// rewrites dots to underscores for Prometheus compatibility.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing series. The zero value of the
// pointer (nil) is a valid no-op counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be ≥ 0 for Prometheus counter semantics; Add does not
// enforce it).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64-valued series that can move both ways. The zero value
// of the pointer (nil) is a valid no-op gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v atomically.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// series ties one registered name+labels to its typed value.
type series struct {
	name   string // dot-separated family name
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds the process's series, keyed by name+labels. All methods
// are safe for concurrent use; a nil *Registry hands out nil series
// handles, which record nothing.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// key canonicalizes name+labels into the registry key. Labels are sorted by
// key so call-site order never splits a series.
func key(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String(), ls
}

// lookup returns the series for name+labels, creating it with mk on first
// use. Registering the same series under two different types is a
// programming error and panics with the offending name.
func (r *Registry) lookup(name string, labels []Label, mk func(*series)) *series {
	k, ls := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[k]; ok {
		return s
	}
	s := &series{name: name, labels: ls}
	mk(s)
	r.series[k] = s
	return s
}

// Counter returns the counter series for name+labels, creating it on first
// use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, func(s *series) { s.c = &Counter{} })
	if s.c == nil {
		panic(fmt.Sprintf("obs: series %q already registered with a different type", name))
	}
	return s.c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, func(s *series) { s.g = &Gauge{} })
	if s.g == nil {
		panic(fmt.Sprintf("obs: series %q already registered with a different type", name))
	}
	return s.g
}

// Histogram returns the histogram series for name+labels, creating it on
// first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, func(s *series) { s.h = &Histogram{} })
	if s.h == nil {
		panic(fmt.Sprintf("obs: series %q already registered with a different type", name))
	}
	return s.h
}

// snapshot returns the registered series sorted by (name, labels) — the
// stable exposition order.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	keys := make([]string, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, r.series[k])
	}
	r.mu.Unlock()
	return out
}

// NumSeries returns how many distinct series are registered.
func (r *Registry) NumSeries() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series)
}
