package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered series in Prometheus text
// exposition format: families sorted by name, label sets sorted within a
// family, one # TYPE line per family. Counter and gauge series emit one
// sample each; histograms emit cumulative le-buckets at the band edges of
// the log-bucketed layout (up to the band containing the observed maximum),
// plus _sum and _count, so quantiles are derivable by any Prometheus
// quantile function.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, s := range r.snapshot() {
		fam := promName(s.name)
		if fam != prevFamily {
			bw.WriteString("# TYPE ")
			bw.WriteString(fam)
			switch {
			case s.c != nil:
				bw.WriteString(" counter\n")
			case s.g != nil:
				bw.WriteString(" gauge\n")
			default:
				bw.WriteString(" histogram\n")
			}
			prevFamily = fam
		}
		switch {
		case s.c != nil:
			writeSample(bw, fam, s.labels, "", strconv.FormatInt(s.c.Value(), 10))
		case s.g != nil:
			writeSample(bw, fam, s.labels, "", formatFloat(s.g.Value()))
		case s.h != nil:
			writeHistogram(bw, fam, s.labels, s.h.snapshot())
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series of one histogram. The
// le boundaries are the band edges of the log-bucketed layout: 31, 63, 127,
// … — each the largest value its band can hold, so the cumulative count at
// a boundary is exact, not interpolated.
func writeHistogram(bw *bufio.Writer, fam string, labels []Label, s histSnap) {
	// Highest band that needs emitting: the one holding the max observation
	// (band 0 covers values 0–31 via buckets 0–31; band k ≥ 1 covers
	// [2^(k+4), 2^(k+5)) via buckets 16(k+1)…16(k+1)+15).
	maxBand := 0
	if s.max > 31 {
		maxBand = BucketOf(s.max)/16 - 1
	}
	var cum int64
	bucket := 0
	for band := 0; band <= maxBand; band++ {
		// Band 0 ends before bucket 32, band k ≥ 1 before bucket 16k+32.
		hi := 16*band + 32
		for ; bucket < hi && bucket < NumBuckets; bucket++ {
			cum += s.counts[bucket]
		}
		if band+5 >= 63 {
			// The top band's edge would overflow int64; +Inf covers it.
			break
		}
		le := int64(1)<<(uint(band)+5) - 1
		writeSample(bw, fam+"_bucket", labels, "le=\""+strconv.FormatInt(le, 10)+"\"", strconv.FormatInt(cum, 10))
	}
	writeSample(bw, fam+"_bucket", labels, `le="+Inf"`, strconv.FormatInt(s.n, 10))
	writeSample(bw, fam+"_sum", labels, "", strconv.FormatInt(s.sum, 10))
	writeSample(bw, fam+"_count", labels, "", strconv.FormatInt(s.n, 10))
}

// writeSample emits one `name{labels} value` line. extra is a pre-rendered
// label pair (the histogram le) appended after the series labels.
func writeSample(bw *bufio.Writer, name string, labels []Label, extra, value string) {
	bw.WriteString(name)
	if len(labels) > 0 || extra != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(promName(l.Key))
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(l.Value))
			bw.WriteByte('"')
		}
		if extra != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extra)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// promName rewrites a dot-separated series name into a Prometheus metric
// name: dots become underscores, and any character outside [a-zA-Z0-9_:]
// is replaced with an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a gauge value the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
