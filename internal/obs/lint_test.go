package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusLints pins the exposition writer against the scraper
// invariants: every family the registry can produce — counters, gauges and
// histograms, with and without labels, dotted names, escaped label values,
// empty and heavily observed histograms — lints clean.
func TestWritePrometheusLints(t *testing.T) {
	r := NewRegistry()
	r.Counter("curator.rounds").Add(7)
	r.Counter("curator.reports_by_representation", Label{Key: "representation", Value: "packed"}).Add(3)
	r.Counter("curator.reports_by_representation", Label{Key: "representation", Value: "sparse"}).Add(2)
	r.Gauge("curator.dmu.sig_ratio").Set(0.25)
	r.Gauge("monitor.release_divergence", Label{Key: "metric", Value: "js"}).Set(0.031)
	r.Gauge("weird.label", Label{Key: "v", Value: "quote\"back\\slash\nnewline"}).Set(1)
	r.Histogram("empty.hist") // zero observations
	h := r.Histogram("pipeline.stage.latency_us",
		Label{Key: "shard", Value: "0"}, Label{Key: "stage", Value: "dmu"})
	for _, v := range []int64{0, 1, 31, 32, 1000, 1 << 20, 1 << 40} {
		h.ObserveValue(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := LintExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("exposition fails lint: %v\n--- exposition ---\n%s", err, sb.String())
	}
}

// TestLintCatchesViolations proves the linter actually rejects the
// regressions it exists to catch — a lint that passes everything pins
// nothing.
func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			name: "missing +Inf bucket",
			text: "# TYPE h histogram\nh_bucket{le=\"31\"} 4\nh_sum 10\nh_count 4\n",
			want: "+Inf",
		},
		{
			name: "+Inf disagrees with _count",
			text: "# TYPE h histogram\nh_bucket{le=\"31\"} 4\nh_bucket{le=\"+Inf\"} 4\nh_sum 10\nh_count 5\n",
			want: "_count",
		},
		{
			name: "non-monotonic buckets",
			text: "# TYPE h histogram\nh_bucket{le=\"31\"} 4\nh_bucket{le=\"63\"} 3\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 4\n",
			want: "decreased",
		},
		{
			name: "duplicate TYPE",
			text: "# TYPE c counter\nc 1\n# TYPE c counter\n",
			want: "duplicate",
		},
		{
			name: "sample before TYPE",
			text: "c 1\n# TYPE c counter\n",
			want: "before any # TYPE",
		},
		{
			name: "invalid metric name",
			text: "# TYPE ok counter\nok 1\n9bad 2\n",
			want: "metric name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintExposition(strings.NewReader(tc.text))
			if err == nil {
				t.Fatalf("lint accepted invalid exposition:\n%s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("lint error %q does not mention %q", err, tc.want)
			}
		})
	}
}
