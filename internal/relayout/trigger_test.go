package relayout_test

import (
	"testing"

	"retrasyn/internal/relayout"
	"retrasyn/internal/spatial"
)

func TestTriggerPolicyValidate(t *testing.T) {
	for _, p := range []relayout.TriggerPolicy{"", relayout.TriggerGeometric, relayout.TriggerDegradationOr, relayout.TriggerDegradationAnd} {
		if err := p.Validate(); err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
		}
	}
	if err := relayout.TriggerPolicy("bogus").Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestTriggerPolicyDecide(t *testing.T) {
	cases := []struct {
		policy             relayout.TriggerPolicy
		geometric, alarmed bool
		want               bool
	}{
		{relayout.TriggerGeometric, false, false, false},
		{relayout.TriggerGeometric, false, true, false}, // alarms ignored
		{relayout.TriggerGeometric, true, false, true},
		{relayout.TriggerDegradationOr, false, false, false},
		{relayout.TriggerDegradationOr, true, false, true},
		{relayout.TriggerDegradationOr, false, true, true},
		{relayout.TriggerDegradationAnd, true, false, false},
		{relayout.TriggerDegradationAnd, false, true, false},
		{relayout.TriggerDegradationAnd, true, true, true},
		{"", true, false, true}, // empty means geometric
		{"", false, true, false},
	}
	for _, tc := range cases {
		if got := tc.policy.Decide(tc.geometric, tc.alarmed); got != tc.want {
			t.Errorf("%q.Decide(%v, %v) = %v, want %v", tc.policy, tc.geometric, tc.alarmed, got, tc.want)
		}
	}
	if relayout.TriggerGeometric.UsesAlarms() || !relayout.TriggerDegradationOr.UsesAlarms() || !relayout.TriggerDegradationAnd.UsesAlarms() {
		t.Error("UsesAlarms mislabels a policy")
	}
}

// stubAlarms is a deterministic AlarmSource.
type stubAlarms bool

func (s stubAlarms) Alarming() bool { return bool(s) }

// TestControllerTriggerWiring pins Propose's policy plumbing: the proposal
// carries the geometric verdict and the alarm state separately, and Switch
// is their policy combination. A controller without an alarm source treats
// degradation policies as not-alarmed rather than failing.
func TestControllerTriggerWiring(t *testing.T) {
	boot := mustQuadtree(t, cornerSketch(3000, 0, 0, 7), 32)
	newCtl := func(policy relayout.TriggerPolicy, threshold float64, drifted bool) *relayout.Controller {
		t.Helper()
		ctl, err := relayout.NewController(relayout.ControllerOptions{
			Every: 2, W: 5, Threshold: threshold,
			Quadtree: spatial.QuadtreeOptions{MaxLeaves: 32},
			Bounds:   unitBounds(),
			Trigger:  policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		cx, cy := 0.0, 0.0
		if drifted {
			cx, cy = 0.75, 0.75 // opposite corner: large layout distance
		}
		for ts := 0; ts < 10; ts++ {
			ctl.Observe(ts, cornerSketch(300, cx, cy, 8))
		}
		return ctl
	}
	propose := func(ctl *relayout.Controller) relayout.Proposal {
		t.Helper()
		prop, err := ctl.Propose(boot)
		if err != nil {
			t.Fatal(err)
		}
		return prop
	}

	// Geometric leg satisfied, no alarm source: degradation-or still fires
	// on geometry alone; degradation-and cannot.
	prop := propose(newCtl(relayout.TriggerDegradationOr, 0.01, true))
	if !prop.Geometric || prop.Alarmed || !prop.Switch {
		t.Fatalf("degradation-or without alarms: %+v", prop)
	}
	andCtl := newCtl(relayout.TriggerDegradationAnd, 0.01, true)
	if prop = propose(andCtl); !prop.Geometric || prop.Switch {
		t.Fatalf("degradation-and fired without an alarm: %+v", prop)
	}
	andCtl.SetAlarmSource(stubAlarms(true))
	if prop = propose(andCtl); !prop.Alarmed || !prop.Switch {
		t.Fatalf("degradation-and with alarm + geometry did not fire: %+v", prop)
	}

	// Geometric leg unsatisfied (stable sketch): only degradation-or with
	// an alarm fires; the geometric policy never consults alarms.
	geoCtl := newCtl(relayout.TriggerGeometric, 0.999, false)
	geoCtl.SetAlarmSource(stubAlarms(true))
	if prop = propose(geoCtl); prop.Alarmed || prop.Switch {
		t.Fatalf("geometric policy consulted alarms: %+v", prop)
	}
	orCtl := newCtl(relayout.TriggerDegradationOr, 0.999, false)
	orCtl.SetAlarmSource(stubAlarms(true))
	if prop = propose(orCtl); prop.Geometric || !prop.Alarmed || !prop.Switch {
		t.Fatalf("degradation-or with alarm below threshold did not fire: %+v", prop)
	}
}
