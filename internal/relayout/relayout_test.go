package relayout_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/relayout"
	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

func unitBounds() spatial.Bounds {
	return spatial.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
}

// cornerSketch clusters density in the given corner of the unit square.
func cornerSketch(n int, cx, cy float64, seed uint64) []spatial.Point {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	pts := make([]spatial.Point, 0, n)
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			pts = append(pts, spatial.Point{X: rng.Float64(), Y: rng.Float64()})
		} else {
			pts = append(pts, spatial.Point{X: cx + rng.Float64()*0.25, Y: cy + rng.Float64()*0.25})
		}
	}
	return pts
}

func mustQuadtree(t *testing.T, pts []spatial.Point, leaves int) *spatial.Quadtree {
	t.Helper()
	q, err := spatial.NewQuadtree(unitBounds(), pts, spatial.QuadtreeOptions{MaxLeaves: leaves})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestMigrationWeightsSumToOne pins the overlap-matrix invariant the whole
// migration rests on, across grid→quadtree, quadtree→grid and
// quadtree→quadtree pairs.
func TestMigrationWeightsSumToOne(t *testing.T) {
	g := grid.MustNew(7, unitBounds())
	qa := mustQuadtree(t, cornerSketch(3000, 0, 0, 1), 40)
	qb := mustQuadtree(t, cornerSketch(3000, 0.7, 0.7, 2), 56)
	pairs := []struct {
		name     string
		from, to spatial.Discretizer
	}{
		{"grid→quadtree", g, qa},
		{"quadtree→grid", qa, g},
		{"quadtree→quadtree", qa, qb},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			mig, err := relayout.NewMigration(p.from, p.to)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < p.from.NumCells(); c++ {
				sum := 0.0
				for _, w := range mig.Weights(spatial.Cell(c)) {
					if w.W < 0 {
						t.Fatalf("cell %d: negative weight %v", c, w.W)
					}
					if !p.to.ValidCell(w.Cell) {
						t.Fatalf("cell %d: weight onto invalid cell %d", c, w.Cell)
					}
					sum += w.W
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("cell %d: weights sum to %v, want 1", c, sum)
				}
				if !p.to.ValidCell(mig.MapCell(spatial.Cell(c))) {
					t.Fatalf("cell %d: MapCell out of range", c)
				}
			}
		})
	}
}

// TestMigrationIdentityIsExact pins the identical-layout case: every weight
// is exactly 1.0 onto the same cell index and the distance is exactly 0, so
// identity migrations are bit-exact.
func TestMigrationIdentityIsExact(t *testing.T) {
	q := mustQuadtree(t, cornerSketch(2000, 0, 0, 3), 32)
	clone, err := spatial.NewQuadtreeFromSplits(q.Bounds(), q.SplitMask())
	if err != nil {
		t.Fatal(err)
	}
	mig, err := relayout.NewMigration(q, clone)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Distance() != 0 {
		t.Fatalf("identity distance = %v, want exactly 0", mig.Distance())
	}
	for c := 0; c < q.NumCells(); c++ {
		ws := mig.Weights(spatial.Cell(c))
		if len(ws) != 1 || ws[0].Cell != spatial.Cell(c) || ws[0].W != 1.0 {
			t.Fatalf("identity weights of cell %d = %+v, want exactly {%d, 1.0}", c, ws, c)
		}
	}
}

// TestRemapFreqsConservesMass pins the migration invariant ISSUE 4 demands:
// total mobility mass — including the raw negative estimates the model keeps
// — survives the push through the overlap matrix within 1e-9.
func TestRemapFreqsConservesMass(t *testing.T) {
	g := grid.MustNew(6, unitBounds())
	q := mustQuadtree(t, cornerSketch(3000, 0.6, 0.1, 4), 44)
	fromDom := transition.NewDomain(g)
	toDom := transition.NewDomain(q)
	mig, err := relayout.NewMigration(g, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 10))
	freq := make([]float64, fromDom.Size())
	sum := 0.0
	for i := range freq {
		freq[i] = rng.Float64() - 0.3 // raw estimates go negative under noise
		sum += freq[i]
	}
	out, err := mig.RemapFreqs(fromDom, toDom, freq)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != toDom.Size() {
		t.Fatalf("remapped length %d ≠ target domain %d", len(out), toDom.Size())
	}
	outSum := 0.0
	for _, f := range out {
		outSum += f
	}
	if math.Abs(outSum-sum) > 1e-9 {
		t.Fatalf("mass not conserved: Σin=%v Σout=%v (Δ=%g)", sum, outSum, outSum-sum)
	}

	// Move-only domains conserve too.
	fromMove := transition.NewMoveOnlyDomain(g)
	toMove := transition.NewMoveOnlyDomain(q)
	mfreq := freq[:fromMove.Size()]
	msum := 0.0
	for _, f := range mfreq {
		msum += f
	}
	mout, err := mig.RemapFreqs(fromMove, toMove, mfreq)
	if err != nil {
		t.Fatal(err)
	}
	moutSum := 0.0
	for _, f := range mout {
		moutSum += f
	}
	if math.Abs(moutSum-msum) > 1e-9 {
		t.Fatalf("move-only mass not conserved: Σin=%v Σout=%v", msum, moutSum)
	}
}

// TestRemapFreqsValidation covers the mismatch errors.
func TestRemapFreqsValidation(t *testing.T) {
	g := grid.MustNew(4, unitBounds())
	q := mustQuadtree(t, cornerSketch(1000, 0, 0, 5), 16)
	mig, err := relayout.NewMigration(g, q)
	if err != nil {
		t.Fatal(err)
	}
	gDom, qDom := transition.NewDomain(g), transition.NewDomain(q)
	if _, err := mig.RemapFreqs(qDom, qDom, make([]float64, qDom.Size())); err == nil {
		t.Fatal("wrong source domain accepted")
	}
	if _, err := mig.RemapFreqs(gDom, gDom, make([]float64, gDom.Size())); err == nil {
		t.Fatal("wrong target domain accepted")
	}
	if _, err := mig.RemapFreqs(gDom, qDom, make([]float64, 3)); err == nil {
		t.Fatal("wrong vector length accepted")
	}
	if _, err := mig.RemapFreqs(gDom, transition.NewMoveOnlyDomain(q), make([]float64, gDom.Size())); err == nil {
		t.Fatal("EQ mismatch accepted")
	}
}

// TestMigrationBoundsMismatch rejects layouts over different spaces.
func TestMigrationBoundsMismatch(t *testing.T) {
	a := grid.MustNew(4, unitBounds())
	b := grid.MustNew(4, spatial.Bounds{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2})
	if _, err := relayout.NewMigration(a, b); err == nil {
		t.Fatal("bounds mismatch accepted")
	}
}

// TestDensityTrackerSlidingWindow pins the ring semantics: only the last cap
// timestamps are retained and Points comes back in timestamp order.
func TestDensityTrackerSlidingWindow(t *testing.T) {
	d := relayout.NewDensityTracker(3)
	for ts := 0; ts < 5; ts++ {
		d.Observe(ts, []spatial.Point{{X: float64(ts), Y: 0}})
	}
	pts := d.Points()
	if d.Len() != 3 || len(pts) != 3 {
		t.Fatalf("tracker holds %d points, want 3", len(pts))
	}
	for i, want := range []float64{2, 3, 4} {
		if pts[i].X != want {
			t.Fatalf("point %d = %v, want X=%v (timestamp order)", i, pts[i], want)
		}
	}

	// State round-trip.
	st := d.State()
	d2 := relayout.NewDensityTracker(3)
	if err := d2.Restore(st); err != nil {
		t.Fatal(err)
	}
	p2 := d2.Points()
	if len(p2) != len(pts) {
		t.Fatalf("restored tracker holds %d points, want %d", len(p2), len(pts))
	}
	for i := range pts {
		if p2[i] != pts[i] {
			t.Fatalf("restored point %d = %v, want %v", i, p2[i], pts[i])
		}
	}
	if err := relayout.NewDensityTracker(4).Restore(st); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
}

// TestLayoutCodecRoundTrip covers both backends through LayoutOf/FromLayout.
func TestLayoutCodecRoundTrip(t *testing.T) {
	for _, d := range []spatial.Discretizer{
		grid.MustNew(5, unitBounds()),
		mustQuadtree(t, cornerSketch(2000, 0.3, 0.3, 6), 28),
	} {
		l, err := relayout.LayoutOf(d)
		if err != nil {
			t.Fatal(err)
		}
		back, err := relayout.FromLayout(l)
		if err != nil {
			t.Fatal(err)
		}
		if back.Fingerprint() != d.Fingerprint() {
			t.Fatalf("%s layout round-trip drifted: %s ≠ %s", l.Kind, back.Fingerprint(), d.Fingerprint())
		}
	}
	if _, err := relayout.FromLayout(relayout.Layout{Kind: "hexgrid"}); err == nil {
		t.Fatal("unknown layout kind accepted")
	}
}

// TestControllerThresholdAndCadence pins the switch policy: rebuilds fire at
// Every×W boundaries, identical layouts never switch, drifted sketches cross
// the threshold.
func TestControllerThresholdAndCadence(t *testing.T) {
	boot := mustQuadtree(t, cornerSketch(3000, 0, 0, 7), 32)
	ctl, err := relayout.NewController(relayout.ControllerOptions{
		Every: 2, W: 5, Quadtree: spatial.QuadtreeOptions{MaxLeaves: 32}, Bounds: unitBounds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Due(9) {
		t.Fatal("due with an empty sketch")
	}
	// Same-corner sketch: the rebuild reproduces (or nearly reproduces) the
	// boot layout, so no switch.
	for ts := 0; ts < 10; ts++ {
		ctl.Observe(ts, cornerSketch(300, 0, 0, 7))
	}
	for _, ts := range []int{0, 4, 8} {
		if ctl.Due(ts) {
			t.Fatalf("due at timestamp %d, want only at 10k−1 boundaries", ts)
		}
	}
	if !ctl.Due(9) {
		t.Fatal("not due at the Every×W boundary")
	}
	prop, err := ctl.Propose(boot)
	if err != nil {
		t.Fatal(err)
	}
	if prop.Switch {
		t.Fatalf("stable workload proposed a switch (distance %v)", prop.Distance)
	}

	// Opposite-corner sketch: the layout must drift past the threshold.
	for ts := 10; ts < 20; ts++ {
		ctl.Observe(ts, cornerSketch(300, 0.75, 0.75, 8))
	}
	prop, err = ctl.Propose(boot)
	if err != nil {
		t.Fatal(err)
	}
	if !prop.Switch || prop.Distance < relayout.DefaultThreshold {
		t.Fatalf("drifted workload did not propose a switch (distance %v)", prop.Distance)
	}

	// Controller state round-trips.
	ctl.NoteSwitch(prop.Distance)
	st := ctl.State()
	ctl2, err := relayout.NewController(relayout.ControllerOptions{
		Every: 2, W: 5, Quadtree: spatial.QuadtreeOptions{MaxLeaves: 32}, Bounds: unitBounds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl2.Restore(st); err != nil {
		t.Fatal(err)
	}
	if ctl2.Relayouts() != 1 || ctl2.LastDistance() != prop.Distance {
		t.Fatalf("restored controller lost switch history: %d, %v", ctl2.Relayouts(), ctl2.LastDistance())
	}
	p2, err := ctl2.Propose(boot)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Distance != prop.Distance {
		t.Fatalf("restored controller proposes distance %v, original %v", p2.Distance, prop.Distance)
	}
}

// TestSpreadInBoxCoversTheBox pins the released-position spreading: every
// point lands inside the box and consecutive indices don't collapse onto
// one spot.
func TestSpreadInBoxCoversTheBox(t *testing.T) {
	box := spatial.Bounds{MinX: 2, MinY: -1, MaxX: 6, MaxY: 3}
	quadrants := map[int]bool{}
	for i := 0; i < 64; i++ {
		p := relayout.SpreadInBox(box, i)
		if p.X < box.MinX || p.X >= box.MaxX || p.Y < box.MinY || p.Y >= box.MaxY {
			t.Fatalf("point %d (%v) outside the box", i, p)
		}
		q := 0
		if p.X >= (box.MinX+box.MaxX)/2 {
			q |= 1
		}
		if p.Y >= (box.MinY+box.MaxY)/2 {
			q |= 2
		}
		quadrants[q] = true
	}
	if len(quadrants) != 4 {
		t.Fatalf("64 spread points hit only %d quadrants", len(quadrants))
	}
	if relayout.SpreadInBox(box, 5) != relayout.SpreadInBox(box, 5) {
		t.Fatal("spread not deterministic")
	}
}
