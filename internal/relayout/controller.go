package relayout

import (
	"fmt"

	"retrasyn/internal/obs"
	"retrasyn/internal/spatial"
)

// DefaultThreshold is the layout-distance threshold below which a proposed
// rebuild is not worth the migration churn.
const DefaultThreshold = 0.1

// ControllerOptions configures a Controller.
type ControllerOptions struct {
	// Every is the rebuild cadence in windows: a fresh layout is grown every
	// Every×W timestamps. ≤ 0 disables periodic rebuilds (the tracker still
	// accumulates, so manual Propose calls work).
	Every int
	// W is the engine's window size (timestamps per window).
	W int
	// Threshold is the minimum layout distance at which a proposed layout
	// replaces the current one; below it the proposal is discarded, so
	// stable workloads never churn. Default DefaultThreshold.
	Threshold float64
	// Quadtree parameterizes the rebuilt trees.
	Quadtree spatial.QuadtreeOptions
	// Bounds is the continuous space every rebuilt layout tiles (the boot
	// discretizer's bounds).
	Bounds spatial.Bounds
	// SketchWindows is the sliding sketch length in windows (default:
	// max(Every, 1)) — how much released history a rebuild looks at.
	SketchWindows int
	// Trigger selects how Propose turns a measured distance into a switch
	// recommendation (trigger.go). Empty means TriggerGeometric. The
	// degradation policies additionally need SetAlarmSource; without one
	// they see a permanently calm monitor.
	Trigger TriggerPolicy
}

func (o *ControllerOptions) defaults() error {
	if o.W < 1 {
		return fmt.Errorf("relayout: controller W must be ≥ 1, got %d", o.W)
	}
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	if o.Threshold < 0 || o.Threshold >= 1 {
		return fmt.Errorf("relayout: controller threshold %v outside [0, 1)", o.Threshold)
	}
	if !o.Bounds.Valid() {
		return fmt.Errorf("relayout: controller bounds %+v invalid", o.Bounds)
	}
	if o.SketchWindows <= 0 {
		o.SketchWindows = o.Every
		if o.SketchWindows <= 0 {
			o.SketchWindows = 1
		}
	}
	if o.Quadtree.MaxLeaves < 1 {
		return fmt.Errorf("relayout: controller quadtree MaxLeaves must be ≥ 1, got %d", o.Quadtree.MaxLeaves)
	}
	return o.Trigger.Validate()
}

// Proposal is the outcome of one rebuild: the candidate layout, its distance
// from the current one, and whether the controller recommends switching.
type Proposal struct {
	// Target is the rebuilt quadtree (nil when the sketch was empty).
	Target *spatial.Quadtree
	// Distance is the layout distance between the current layout and Target
	// (0 when the fingerprints already match).
	Distance float64
	// Geometric reports whether Distance crossed the threshold.
	Geometric bool
	// Alarmed reports whether the monitor was alarming at decision time
	// (always false under TriggerGeometric or without an alarm source).
	Alarmed bool
	// Switch is the trigger policy's verdict over Geometric and Alarmed —
	// whether the controller recommends migrating onto Target.
	Switch bool
}

// Controller owns the rebuild/switch policy of online re-discretization:
// feed it the released positions every timestamp (Observe), ask it at window
// boundaries whether a rebuild is due (Due), and let Propose grow a fresh
// quadtree from the sketch and measure it against the current layout. The
// caller performs the actual migration and reports it back with NoteSwitch.
// Not safe for concurrent use.
type Controller struct {
	opts      ControllerOptions
	tracker   *DensityTracker
	relayouts int
	lastDist  float64

	// Run-scoped collaborators (nil-safe no-ops unless the setters ran);
	// never part of ControllerState.
	alarms     AlarmSource
	mProposals *obs.Counter
	mSwitches  *obs.Counter
	mDecision  *obs.Histogram
	mLastDist  *obs.Gauge
}

// NewController validates the options and creates a controller.
func NewController(opts ControllerOptions) (*Controller, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	return &Controller{
		opts:    opts,
		tracker: NewDensityTracker(opts.SketchWindows * opts.W),
	}, nil
}

// SetMetrics registers the controller's observability series on reg: rebuild
// proposals, committed switches, the layout distance measured at each
// decision (micro-distance histogram: distance × 1e6, so the [0,1) range
// resolves), and the distance of the last committed switch. A nil registry
// leaves instrumentation off.
func (c *Controller) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mProposals = reg.Counter("relayout.proposals")
	c.mSwitches = reg.Counter("relayout.switches")
	c.mDecision = reg.Histogram("relayout.decision_distance_micro")
	c.mLastDist = reg.Gauge("relayout.last_distance")
}

// SetAlarmSource wires the utility monitor's alarm state into the trigger
// policy. Like the metrics, the source is run-scoped and never serialized.
func (c *Controller) SetAlarmSource(src AlarmSource) { c.alarms = src }

// Trigger returns the configured trigger policy (normalized: never empty).
func (c *Controller) Trigger() TriggerPolicy {
	if c.opts.Trigger == "" {
		return TriggerGeometric
	}
	return c.opts.Trigger
}

// Observe records the released synthetic positions at timestamp t.
func (c *Controller) Observe(t int, pts []spatial.Point) { c.tracker.Observe(t, pts) }

// Due reports whether processing timestamp t completed a rebuild period:
// t+1 is a multiple of Every×W and the sketch is non-empty.
func (c *Controller) Due(t int) bool {
	if c.opts.Every <= 0 {
		return false
	}
	period := c.opts.Every * c.opts.W
	return (t+1)%period == 0 && c.tracker.Len() > 0
}

// Propose grows a fresh quadtree from the current sketch and measures its
// layout distance from current. It never mutates the controller; apply the
// migration and call NoteSwitch if you follow the recommendation.
func (c *Controller) Propose(current spatial.Discretizer) (Proposal, error) {
	pts := c.tracker.Points()
	if len(pts) == 0 {
		return Proposal{}, nil
	}
	qt, err := spatial.NewQuadtree(c.opts.Bounds, pts, c.opts.Quadtree)
	if err != nil {
		return Proposal{}, fmt.Errorf("relayout: rebuild quadtree: %w", err)
	}
	if qt.Fingerprint() == current.Fingerprint() {
		return Proposal{Target: qt, Distance: 0, Switch: false}, nil
	}
	mig, err := NewMigration(current, qt)
	if err != nil {
		return Proposal{}, err
	}
	d := mig.Distance()
	c.mProposals.Inc()
	c.mDecision.ObserveValue(int64(d * 1e6))
	geometric := d >= c.opts.Threshold
	alarmed := false
	if c.alarms != nil && c.Trigger().UsesAlarms() {
		alarmed = c.alarms.Alarming()
	}
	return Proposal{
		Target:    qt,
		Distance:  d,
		Geometric: geometric,
		Alarmed:   alarmed,
		Switch:    c.Trigger().Decide(geometric, alarmed),
	}, nil
}

// NoteSwitch records that the caller migrated onto a proposed layout.
func (c *Controller) NoteSwitch(distance float64) {
	c.relayouts++
	c.lastDist = distance
	c.mSwitches.Inc()
	c.mLastDist.Set(distance)
}

// Relayouts returns how many layout switches have been committed.
func (c *Controller) Relayouts() int { return c.relayouts }

// LastDistance returns the layout distance of the most recent switch.
func (c *Controller) LastDistance() float64 { return c.lastDist }

// ControllerState is the serializable form of a Controller, embedded in
// framework checkpoints so rebuild decisions after a restore match the
// uninterrupted run exactly.
type ControllerState struct {
	Tracker   TrackerState `json:"tracker"`
	Relayouts int          `json:"relayouts"`
	LastDist  float64      `json:"last_dist"`
}

// State exports a deep copy of the controller's mutable state.
func (c *Controller) State() ControllerState {
	return ControllerState{Tracker: c.tracker.State(), Relayouts: c.relayouts, LastDist: c.lastDist}
}

// Restore replaces the controller's state with a previously exported one.
func (c *Controller) Restore(st ControllerState) error {
	if err := c.tracker.Restore(st.Tracker); err != nil {
		return err
	}
	c.relayouts = st.Relayouts
	c.lastDist = st.LastDist
	return nil
}
