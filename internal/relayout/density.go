// Package relayout implements online adaptive re-discretization: rebuilding
// the spatial layout from the *released* synthetic stream while the engine
// runs, and migrating live engine state onto the new layout.
//
// The spatial discretization (internal/spatial) is frozen at boot from a
// historical density sketch. When the workload's hotspots drift, the boot
// layout's fine leaves go cold and its coarse leaves go hot, and the domain
// shrink the adaptive quadtree bought evaporates. This package closes the
// loop:
//
//   - a DensityTracker accumulates a sliding-window density sketch from the
//     released synthetic trajectories;
//   - a Controller periodically grows a fresh quadtree from that sketch and
//     decides — by a layout-distance threshold — whether switching is worth
//     the churn;
//   - a Migration computes cell-overlap area weights between the old and new
//     discretizers and resamples engine state across layouts: mobility
//     transition/enter/quit mass is pushed through the overlap matrix,
//     tracker histories are re-indexed, and in-flight synthetic trajectories
//     are remapped to the overlapping new cell.
//
// Privacy: the released synthetic stream is a post-processing of the LDP
// outputs (paper Theorem 2), so deriving a new layout from it consumes no
// additional privacy budget — unlike sketching the private input stream,
// which would leak hotspot locations outside the ε accounting. This mirrors
// how PrivTrace adapts Markov-model granularity to observed density while
// keeping the adaptation inside the privacy analysis.
package relayout

import (
	"fmt"
	"math"
	"sort"

	"retrasyn/internal/spatial"
)

// SpreadInBox places the i-th point of a batch inside a box using the R2
// low-discrepancy sequence (Roberts' plastic-constant rule), covering the
// box area deterministically. Released positions are spread this way: a
// released cell only says "somewhere in this box", and collapsing whole
// cells onto their centers would both hide density spread inside coarse
// regions and make rebuilds split forever around single heavy points. The
// sequence involves no RNG, so observing the release never perturbs it.
func SpreadInBox(b spatial.Bounds, i int) spatial.Point {
	const a1, a2 = 0.7548776662466927, 0.5698402909980532
	fx := math.Mod(float64(i+1)*a1, 1)
	fy := math.Mod(float64(i+1)*a2, 1)
	return spatial.Point{X: b.MinX + fx*b.Width(), Y: b.MinY + fy*b.Height()}
}

// SpreadInPieces is SpreadInBox for polygonal cells (spatial.Overlapper):
// the i-th point lands inside the union of the cell's convex pieces instead
// of its bounding box, so geofenced releases sketch density inside the fence
// rather than over gap space the fence deliberately excludes. A golden-ratio
// scalar picks a piece triangle area-proportionally and the R2 pair folds
// onto it; like SpreadInBox the construction involves no RNG.
func SpreadInPieces(pieces [][]spatial.Point, i int) spatial.Point {
	const a1, a2 = 0.7548776662466927, 0.5698402909980532
	const golden = 0.6180339887498949
	// Fan-triangulate the convex pieces and pick a triangle by cumulative
	// area at the golden-ratio sequence position.
	total := 0.0
	for _, ring := range pieces {
		for k := 1; k+1 < len(ring); k++ {
			total += triArea(ring[0], ring[k], ring[k+1])
		}
	}
	if total <= 0 {
		return spatial.Point{}
	}
	target := math.Mod(float64(i+1)*golden, 1) * total
	var a, b, c spatial.Point
	acc := 0.0
	found := false
pick:
	for _, ring := range pieces {
		for k := 1; k+1 < len(ring); k++ {
			a, b, c = ring[0], ring[k], ring[k+1]
			acc += triArea(a, b, c)
			if acc >= target {
				found = true
				break pick
			}
		}
	}
	if !found { // float drift past the last triangle
		last := pieces[len(pieces)-1]
		a, b, c = last[0], last[len(last)-2], last[len(last)-1]
	}
	u := math.Mod(float64(i+1)*a1, 1)
	v := math.Mod(float64(i+1)*a2, 1)
	if u+v > 1 { // fold the unit square onto the triangle
		u, v = 1-u, 1-v
	}
	return spatial.Point{
		X: a.X + u*(b.X-a.X) + v*(c.X-a.X),
		Y: a.Y + u*(b.Y-a.Y) + v*(c.Y-a.Y),
	}
}

func triArea(a, b, c spatial.Point) float64 {
	return math.Abs((b.X-a.X)*(c.Y-a.Y)-(b.Y-a.Y)*(c.X-a.X)) / 2
}

// DensityTracker accumulates a sliding-window density sketch over the most
// recent window of released synthetic positions. One Observe call per
// timestamp records the current positions of the released streams (cell
// centers); once the window fills, the oldest timestamp's points retire. The
// tracker stores continuous points, so its contents survive layout switches
// unchanged. Not safe for concurrent use.
type DensityTracker struct {
	cap   int               // timestamps retained
	slots [][]spatial.Point // ring keyed t % cap
	ts    []int             // timestamp occupying each slot; -1 empty
	n     int               // total points currently held
}

// NewDensityTracker creates a tracker retaining the last capTimestamps
// timestamps of observations.
func NewDensityTracker(capTimestamps int) *DensityTracker {
	if capTimestamps < 1 {
		capTimestamps = 1
	}
	d := &DensityTracker{
		cap:   capTimestamps,
		slots: make([][]spatial.Point, capTimestamps),
		ts:    make([]int, capTimestamps),
	}
	for i := range d.ts {
		d.ts[i] = -1
	}
	return d
}

// Observe records the released positions at timestamp t, evicting whatever
// timestamp previously occupied t's ring slot. The points are copied.
func (d *DensityTracker) Observe(t int, pts []spatial.Point) {
	if t < 0 {
		return
	}
	slot := t % d.cap
	d.n -= len(d.slots[slot])
	d.slots[slot] = append(d.slots[slot][:0], pts...)
	d.ts[slot] = t
	d.n += len(pts)
}

// Len returns the number of points currently held.
func (d *DensityTracker) Len() int { return d.n }

// Points returns the sketch: every retained point, ordered by timestamp
// (oldest first) and within a timestamp by observation order. The
// deterministic order keeps quadtree rebuilds reproducible.
func (d *DensityTracker) Points() []spatial.Point {
	order := make([]int, 0, d.cap)
	for slot, t := range d.ts {
		if t >= 0 {
			order = append(order, slot)
		}
	}
	sort.Slice(order, func(a, b int) bool { return d.ts[order[a]] < d.ts[order[b]] })
	out := make([]spatial.Point, 0, d.n)
	for _, slot := range order {
		out = append(out, d.slots[slot]...)
	}
	return out
}

// TrackerState is the serializable form of a DensityTracker.
type TrackerState struct {
	Cap   int               `json:"cap"`
	Slots [][]spatial.Point `json:"slots"`
	Ts    []int             `json:"ts"`
}

// State exports a deep copy of the tracker.
func (d *DensityTracker) State() TrackerState {
	st := TrackerState{
		Cap:   d.cap,
		Slots: make([][]spatial.Point, d.cap),
		Ts:    append([]int(nil), d.ts...),
	}
	for i, pts := range d.slots {
		st.Slots[i] = append([]spatial.Point(nil), pts...)
	}
	return st
}

// Restore replaces the tracker's contents with a previously exported state.
// The capacity must match.
func (d *DensityTracker) Restore(st TrackerState) error {
	if st.Cap != d.cap || len(st.Slots) != d.cap || len(st.Ts) != d.cap {
		return fmt.Errorf("relayout: tracker restore capacity %d (slots %d, ts %d) ≠ %d",
			st.Cap, len(st.Slots), len(st.Ts), d.cap)
	}
	d.n = 0
	for i := range d.slots {
		d.slots[i] = append(d.slots[i][:0], st.Slots[i]...)
		d.ts[i] = st.Ts[i]
		if d.ts[i] >= 0 {
			d.n += len(d.slots[i])
		}
	}
	return nil
}
