package relayout

import (
	"fmt"

	"retrasyn/internal/geofence"
	"retrasyn/internal/grid"
	"retrasyn/internal/spatial"
)

// Layout is the serializable description of a discretization's cell
// geometry, embedded in engine and curator checkpoints so a process restored
// after K migrations can rebuild the layout it was running on. All shipped
// backends are covered: the quadtree serializes as its preorder split mask,
// the uniform grid as its granularity, and the geofence as its polygon set.
type Layout struct {
	Kind   string         `json:"kind"` // "quadtree", "uniform" or "geofence"
	Bounds spatial.Bounds `json:"bounds"`
	// Splits is the quadtree's preorder split mask (spatial.SplitMask).
	Splits []bool `json:"splits,omitempty"`
	// K is the uniform grid's granularity.
	K int `json:"k,omitempty"`
	// Polygons is the geofence's normalized polygon set in cell order.
	Polygons [][]spatial.Point `json:"polygons,omitempty"`
}

// LayoutOf captures the serializable layout of a discretizer.
func LayoutOf(d spatial.Discretizer) (Layout, error) {
	switch s := d.(type) {
	case *spatial.Quadtree:
		return Layout{Kind: "quadtree", Bounds: s.Bounds(), Splits: s.SplitMask()}, nil
	case *grid.System:
		return Layout{Kind: "uniform", Bounds: s.Bounds(), K: s.K()}, nil
	case *geofence.Fence:
		polys := s.Polygons()
		rings := make([][]spatial.Point, len(polys))
		for i, p := range polys {
			rings[i] = append([]spatial.Point(nil), p...)
		}
		return Layout{Kind: "geofence", Bounds: s.Bounds(), Polygons: rings}, nil
	default:
		return Layout{}, fmt.Errorf("relayout: discretizer %T has no serializable layout", d)
	}
}

// FromLayout reconstructs the discretizer a Layout describes. The rebuilt
// backend is layout-identical to the captured one: same cells, adjacency and
// fingerprint.
func FromLayout(l Layout) (spatial.Discretizer, error) {
	switch l.Kind {
	case "quadtree":
		return spatial.NewQuadtreeFromSplits(l.Bounds, l.Splits)
	case "uniform":
		return grid.New(l.K, l.Bounds)
	case "geofence":
		polys := make([]geofence.Polygon, len(l.Polygons))
		for i, r := range l.Polygons {
			polys[i] = geofence.Polygon(r)
		}
		f, err := geofence.NewFence(polys)
		if err != nil {
			return nil, fmt.Errorf("relayout: rebuild geofence layout: %w", err)
		}
		if f.Bounds() != l.Bounds {
			return nil, fmt.Errorf("relayout: geofence layout bounds %+v do not hull its polygons (%+v) — corrupt checkpoint", l.Bounds, f.Bounds())
		}
		return f, nil
	default:
		return nil, fmt.Errorf("relayout: unknown layout kind %q", l.Kind)
	}
}
