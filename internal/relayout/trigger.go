package relayout

import "fmt"

// TriggerPolicy decides when a proposed relayout actually switches, combining
// the geometric layout-distance threshold with the utility monitor's alarm
// state. The policy is run configuration, not controller state — it is never
// serialized into checkpoints.
type TriggerPolicy string

const (
	// TriggerGeometric is the classic policy: switch when the layout
	// distance crosses the threshold. Monitor alarms are ignored. This is
	// the default (an empty policy means geometric).
	TriggerGeometric TriggerPolicy = "geometric"
	// TriggerDegradationOr switches when the distance crosses the threshold
	// OR the monitor is alarming — a drifting layout is caught geometrically
	// and a degraded model forces a rebuild even below the threshold.
	TriggerDegradationOr TriggerPolicy = "degradation-or"
	// TriggerDegradationAnd switches only when the distance crosses the
	// threshold AND the monitor is alarming — geometric drift alone is not
	// worth migration churn unless utility has measurably degraded.
	TriggerDegradationAnd TriggerPolicy = "degradation-and"
)

// Validate rejects unknown policies. The empty string is valid and means
// TriggerGeometric.
func (p TriggerPolicy) Validate() error {
	switch p {
	case "", TriggerGeometric, TriggerDegradationOr, TriggerDegradationAnd:
		return nil
	}
	return fmt.Errorf("relayout: unknown trigger policy %q (want %s, %s or %s)",
		string(p), TriggerGeometric, TriggerDegradationOr, TriggerDegradationAnd)
}

// UsesAlarms reports whether the policy consumes the monitor's alarm state.
func (p TriggerPolicy) UsesAlarms() bool {
	return p == TriggerDegradationOr || p == TriggerDegradationAnd
}

// Decide applies the policy to one proposal's inputs: whether the layout
// distance crossed the threshold, and whether the monitor is alarming.
func (p TriggerPolicy) Decide(geometric, alarmed bool) bool {
	switch p {
	case TriggerDegradationOr:
		return geometric || alarmed
	case TriggerDegradationAnd:
		return geometric && alarmed
	default:
		return geometric
	}
}

// AlarmSource is the monitor-side interface the controller polls at each
// proposal; *monitor.Monitor implements it (nil-safely).
type AlarmSource interface {
	Alarming() bool
}
