package relayout

import (
	"fmt"

	"retrasyn/internal/allocation"
	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

// CellWeight couples a target cell with the fraction of a source cell's area
// it covers.
type CellWeight struct {
	Cell spatial.Cell
	W    float64
}

// Migration holds the cell-overlap area weights between an old and a new
// discretization. For every old cell i the weights over new cells sum to
// exactly 1 (the new layout tiles the same bounds), so pushing any mass
// vector through the matrix conserves total mass. Immutable after
// construction and safe for concurrent use.
type Migration struct {
	from, to spatial.Discretizer
	// weights[i] lists the new cells overlapping old cell i, ascending by
	// cell index, with area-fraction weights summing to 1.
	weights [][]CellWeight
	// best[i] is the new cell with the largest overlap of old cell i (ties
	// break toward the lower cell index) — the deterministic single-cell
	// remap used for in-flight trajectories.
	best []spatial.Cell
	// dist is the layout distance: the area-weighted fraction of the space
	// where an old cell does NOT map onto a single dominant new cell. 0 for
	// identical layouts, approaching 1 as every old cell is shattered.
	dist float64
}

// NewMigration computes the overlap weights from one discretization to
// another. Both must cover the same bounds and expose their cell boxes
// (spatial.Boxed — the uniform grid and the quadtree both do).
func NewMigration(from, to spatial.Discretizer) (*Migration, error) {
	fb, ok := from.(spatial.Boxed)
	if !ok {
		return nil, fmt.Errorf("relayout: source discretizer %T does not expose cell boxes", from)
	}
	tb, ok := to.(spatial.Boxed)
	if !ok {
		return nil, fmt.Errorf("relayout: target discretizer %T does not expose cell boxes", to)
	}
	if from.Bounds() != to.Bounds() {
		return nil, fmt.Errorf("relayout: bounds mismatch %+v vs %+v", from.Bounds(), to.Bounds())
	}
	nOld, nNew := from.NumCells(), to.NumCells()
	m := &Migration{
		from:    from,
		to:      to,
		weights: make([][]CellWeight, nOld),
		best:    make([]spatial.Cell, nOld),
	}
	totalArea := from.Bounds().Area()
	misfit := 0.0
	for i := 0; i < nOld; i++ {
		bi := fb.CellBox(spatial.Cell(i))
		area := bi.Area()
		var ws []CellWeight
		sum := 0.0
		for j := 0; j < nNew; j++ {
			inter, ok := bi.Intersect(tb.CellBox(spatial.Cell(j)))
			if !ok {
				continue
			}
			w := inter.Area() / area
			ws = append(ws, CellWeight{Cell: spatial.Cell(j), W: w})
			sum += w
		}
		if len(ws) == 0 || sum <= 0 {
			return nil, fmt.Errorf("relayout: old cell %d overlaps no new cell — layouts do not tile the same space", i)
		}
		// Normalize away the float drift of summing quadrant areas so every
		// row sums to exactly 1. For identical layouts the single weight is
		// exactly 1.0 and dividing by 1.0 keeps the remap bit-exact.
		bestW := 0.0
		for k := range ws {
			ws[k].W /= sum
			if ws[k].W > bestW {
				bestW = ws[k].W
				m.best[i] = ws[k].Cell
			}
		}
		m.weights[i] = ws
		misfit += (1 - bestW) * area
	}
	m.dist = misfit / totalArea
	return m, nil
}

// From returns the source discretization.
func (m *Migration) From() spatial.Discretizer { return m.from }

// To returns the target discretization.
func (m *Migration) To() spatial.Discretizer { return m.to }

// Weights returns the overlap weights of old cell c (ascending by new cell,
// summing to 1). The returned slice is shared and must not be modified.
func (m *Migration) Weights(c spatial.Cell) []CellWeight { return m.weights[c] }

// MapCell returns the new cell with the largest overlap of old cell c — the
// deterministic remap applied to released trajectory cells.
func (m *Migration) MapCell(c spatial.Cell) spatial.Cell { return m.best[c] }

// Distance returns the layout distance in [0, 1): the area-weighted misfit
// between the layouts. Identical layouts measure 0; the Controller compares
// it against the switch threshold so stable workloads never churn.
func (m *Migration) Distance() float64 { return m.dist }

// RemapFreqs pushes a transition-state frequency vector over the old domain
// through the overlap matrix onto the new domain. Movement mass m(a→b)
// distributes over new pairs (a′→b′) with weight w(a,a′)·w(b,b′), restricted
// to pairs satisfying the new layout's reachability constraint and
// renormalized over the captured weight, so mass is conserved exactly per
// state; should no valid pair exist (geometrically possible only for
// degenerate layouts) the mass lands on the dominant cell's self-loop.
// Entering and quitting mass redistributes by plain cell overlap. Both
// domains must be built over the migration's discretizers and agree on
// whether enter/quit states exist.
func (m *Migration) RemapFreqs(fromDom, toDom *transition.Domain, freq []float64) ([]float64, error) {
	if fromDom.Space().Fingerprint() != m.from.Fingerprint() {
		return nil, fmt.Errorf("relayout: source domain built over a different layout")
	}
	if toDom.Space().Fingerprint() != m.to.Fingerprint() {
		return nil, fmt.Errorf("relayout: target domain built over a different layout")
	}
	if len(freq) != fromDom.Size() {
		return nil, fmt.Errorf("relayout: frequency vector length %d ≠ source domain %d", len(freq), fromDom.Size())
	}
	if fromDom.HasEQ() != toDom.HasEQ() {
		return nil, fmt.Errorf("relayout: source and target domains disagree on enter/quit states")
	}
	out := make([]float64, toDom.Size())
	nOld := m.from.NumCells()
	for a := 0; a < nOld; a++ {
		base, n := fromDom.MoveBlock(spatial.Cell(a))
		nbrs := m.from.Neighbors(spatial.Cell(a))
		wa := m.weights[a]
		for r := 0; r < n; r++ {
			f := freq[base+r]
			if f == 0 {
				continue
			}
			wb := m.weights[nbrs[r]]
			// First pass: the weight captured by pairs that stay reachable
			// in the new layout.
			captured := 0.0
			for _, pa := range wa {
				for _, pb := range wb {
					if m.to.Adjacent(pa.Cell, pb.Cell) {
						captured += pa.W * pb.W
					}
				}
			}
			if captured <= 0 {
				self, _ := toDom.MoveIndex(m.best[a], m.best[a])
				out[self] += f
				continue
			}
			scale := 1 / captured
			for _, pa := range wa {
				for _, pb := range wb {
					idx, ok := toDom.MoveIndex(pa.Cell, pb.Cell)
					if !ok {
						continue
					}
					out[idx] += f * pa.W * pb.W * scale
				}
			}
		}
	}
	if fromDom.HasEQ() {
		for c := 0; c < nOld; c++ {
			fe := freq[fromDom.EnterIndex(spatial.Cell(c))]
			fq := freq[fromDom.QuitIndex(spatial.Cell(c))]
			if fe == 0 && fq == 0 {
				continue
			}
			for _, p := range m.weights[c] {
				if fe != 0 {
					out[toDom.EnterIndex(p.Cell)] += fe * p.W
				}
				if fq != 0 {
					out[toDom.QuitIndex(p.Cell)] += fq * p.W
				}
			}
		}
	}
	return out, nil
}

// RemapDevState re-indexes a deviation-tracker history (per-state frequency
// vectors) onto the new domain, so the adaptive allocation strategy keeps
// its drift signal across a migration instead of restarting cold.
func (m *Migration) RemapDevState(fromDom, toDom *transition.Domain, st allocation.DevState) (allocation.DevState, error) {
	out := allocation.DevState{Hist: make([][]float64, len(st.Hist))}
	for i, h := range st.Hist {
		remapped, err := m.RemapFreqs(fromDom, toDom, h)
		if err != nil {
			return allocation.DevState{}, fmt.Errorf("relayout: dev history entry %d: %w", i, err)
		}
		out.Hist[i] = remapped
	}
	return out, nil
}
