package relayout

import (
	"fmt"
	"math"

	"retrasyn/internal/allocation"
	"retrasyn/internal/geofence"
	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

// CellWeight couples a target cell with the fraction of a source cell's area
// it covers.
type CellWeight struct {
	Cell spatial.Cell
	W    float64
}

// Migration holds the cell-overlap area weights between an old and a new
// discretization. For every old cell i the weights over new cells sum to
// exactly 1 (the new layout tiles the same bounds), so pushing any mass
// vector through the matrix conserves total mass. Immutable after
// construction and safe for concurrent use.
type Migration struct {
	from, to spatial.Discretizer
	// weights[i] lists the new cells overlapping old cell i, ascending by
	// cell index, with area-fraction weights summing to 1.
	weights [][]CellWeight
	// best[i] is the new cell with the largest overlap of old cell i (ties
	// break toward the lower cell index) — the deterministic single-cell
	// remap used for in-flight trajectories.
	best []spatial.Cell
	// dist is the layout distance: the area-weighted fraction of the space
	// where an old cell does NOT map onto a single dominant new cell. 0 for
	// identical layouts, approaching 1 as every old cell is shattered.
	dist float64
}

// NewMigration computes the overlap weights from one discretization to
// another. Both must cover the same bounds and expose their cell geometry:
// either as axis-aligned boxes (spatial.Boxed — the uniform grid and the
// quadtree) or as convex piece decompositions (spatial.Overlapper — the
// geofence backend). Box–box pairs take the exact box-intersection fast path
// the pre-Overlapper migrations used, bit-identically; any pair involving
// polygonal cells goes through Sutherland–Hodgman clipping of the convex
// pieces. Identical layouts (equal fingerprints) short-circuit to the exact
// identity migration.
func NewMigration(from, to spatial.Discretizer) (*Migration, error) {
	if from.Bounds() != to.Bounds() {
		return nil, fmt.Errorf("relayout: bounds mismatch %+v vs %+v", from.Bounds(), to.Bounds())
	}
	nOld := from.NumCells()
	m := &Migration{
		from:    from,
		to:      to,
		weights: make([][]CellWeight, nOld),
		best:    make([]spatial.Cell, nOld),
	}
	if from.Fingerprint() == to.Fingerprint() {
		// Same layout: every cell maps onto itself with weight exactly 1.0
		// and distance exactly 0, whatever the backend geometry. (The boxed
		// path below computes the identical result for boxed layouts; the
		// shortcut makes identity migrations exact for polygonal ones too,
		// where re-clipping a cell against itself would leave float dust.)
		for i := 0; i < nOld; i++ {
			m.weights[i] = []CellWeight{{Cell: spatial.Cell(i), W: 1.0}}
			m.best[i] = spatial.Cell(i)
		}
		return m, nil
	}
	fb, fBoxed := from.(spatial.Boxed)
	tb, tBoxed := to.(spatial.Boxed)
	if fBoxed && tBoxed {
		return m, m.computeBoxed(fb, tb)
	}
	return m, m.computeClipped()
}

// computeBoxed is the box-intersection fast path for box–box layout pairs,
// unchanged from the pre-Overlapper migration layer (bit-identical weights).
func (m *Migration) computeBoxed(fb, tb spatial.Boxed) error {
	nOld, nNew := m.from.NumCells(), m.to.NumCells()
	totalArea := m.from.Bounds().Area()
	misfit := 0.0
	for i := 0; i < nOld; i++ {
		bi := fb.CellBox(spatial.Cell(i))
		area := bi.Area()
		var ws []CellWeight
		sum := 0.0
		for j := 0; j < nNew; j++ {
			inter, ok := bi.Intersect(tb.CellBox(spatial.Cell(j)))
			if !ok {
				continue
			}
			w := inter.Area() / area
			ws = append(ws, CellWeight{Cell: spatial.Cell(j), W: w})
			sum += w
		}
		if len(ws) == 0 || sum <= 0 {
			return fmt.Errorf("relayout: old cell %d overlaps no new cell — layouts do not tile the same space", i)
		}
		// Normalize away the float drift of summing quadrant areas so every
		// row sums to exactly 1. For identical layouts the single weight is
		// exactly 1.0 and dividing by 1.0 keeps the remap bit-exact.
		bestW := 0.0
		for k := range ws {
			ws[k].W /= sum
			if ws[k].W > bestW {
				bestW = ws[k].W
				m.best[i] = ws[k].Cell
			}
		}
		m.weights[i] = ws
		misfit += (1 - bestW) * area
	}
	m.dist = misfit / totalArea
	return nil
}

// cellGeometry is one cell's convex decomposition with its bounding box and
// area, the inputs of the clipping path.
type cellGeometry struct {
	pieces [][]spatial.Point
	box    spatial.Bounds
	area   float64
}

// geometryOf extracts every cell's convex pieces: Overlapper backends expose
// them directly; Boxed backends contribute their box as a single rectangular
// piece.
func geometryOf(d spatial.Discretizer) ([]cellGeometry, error) {
	nc := d.NumCells()
	out := make([]cellGeometry, nc)
	switch s := d.(type) {
	case spatial.Overlapper:
		for i := 0; i < nc; i++ {
			g := &out[i]
			g.pieces = s.CellPieces(spatial.Cell(i))
			g.area = s.CellArea(spatial.Cell(i))
			g.box = piecesBounds(g.pieces)
		}
	case spatial.Boxed:
		for i := 0; i < nc; i++ {
			b := s.CellBox(spatial.Cell(i))
			out[i] = cellGeometry{pieces: [][]spatial.Point{boxRing(b)}, box: b, area: b.Area()}
		}
	default:
		return nil, fmt.Errorf("relayout: discretizer %T exposes neither cell boxes (spatial.Boxed) nor cell pieces (spatial.Overlapper)", d)
	}
	return out, nil
}

// boxRing returns the counter-clockwise ring of a box.
func boxRing(b spatial.Bounds) []spatial.Point {
	return []spatial.Point{
		{X: b.MinX, Y: b.MinY}, {X: b.MaxX, Y: b.MinY},
		{X: b.MaxX, Y: b.MaxY}, {X: b.MinX, Y: b.MaxY},
	}
}

func piecesBounds(pieces [][]spatial.Point) spatial.Bounds {
	b := spatial.Bounds{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, ring := range pieces {
		for _, p := range ring {
			b.MinX = math.Min(b.MinX, p.X)
			b.MinY = math.Min(b.MinY, p.Y)
			b.MaxX = math.Max(b.MaxX, p.X)
			b.MaxY = math.Max(b.MaxY, p.Y)
		}
	}
	return b
}

// computeClipped is the generalized overlap path: cell overlap areas are sums
// of pairwise Sutherland–Hodgman clips of the cells' convex pieces. Unlike
// boxed layouts, polygonal layouts need not tile the bounds: an old cell
// lying entirely in a fence gap carries its mass to the cell its sample point
// clamps to (geofence CellOf maps gap points to the nearest polygon), so no
// mass is ever dropped.
func (m *Migration) computeClipped() error {
	geomA, err := geometryOf(m.from)
	if err != nil {
		return err
	}
	geomB, err := geometryOf(m.to)
	if err != nil {
		return err
	}
	totalArea := 0.0
	misfit := 0.0
	for i := range geomA {
		ga := &geomA[i]
		if !(ga.area > 0) {
			return fmt.Errorf("relayout: old cell %d has non-positive area %v", i, ga.area)
		}
		totalArea += ga.area
		var ws []CellWeight
		sum := 0.0
		for j := range geomB {
			gb := &geomB[j]
			if ga.box.MinX > gb.box.MaxX || gb.box.MinX > ga.box.MaxX ||
				ga.box.MinY > gb.box.MaxY || gb.box.MinY > ga.box.MaxY {
				continue
			}
			ov := 0.0
			for _, pa := range ga.pieces {
				for _, pb := range gb.pieces {
					ov += geofence.ConvexClipArea(pa, pb)
				}
			}
			// Drop clip dust: cells that merely share an edge produce
			// degenerate slivers many orders below any real overlap.
			if ov <= ga.area*1e-12 {
				continue
			}
			w := ov / ga.area
			ws = append(ws, CellWeight{Cell: spatial.Cell(j), W: w})
			sum += w
		}
		if len(ws) == 0 || sum <= 0 {
			// The old cell lies entirely outside the new layout's coverage
			// (a fence gap). Its sample point clamps into the new layout —
			// CellOf is total — and the full mass follows it. The whole cell
			// area counts as misfit: nothing geometrically overlapped.
			x, y := m.from.Center(spatial.Cell(i))
			c := m.to.CellOf(x, y)
			m.weights[i] = []CellWeight{{Cell: c, W: 1.0}}
			m.best[i] = c
			misfit += ga.area
			continue
		}
		bestW := 0.0
		for k := range ws {
			ws[k].W /= sum
			if ws[k].W > bestW {
				bestW = ws[k].W
				m.best[i] = ws[k].Cell
			}
		}
		m.weights[i] = ws
		misfit += (1 - bestW) * ga.area
	}
	m.dist = misfit / totalArea
	return nil
}

// Migratable reports whether a discretizer exposes the cell geometry
// NewMigration needs — axis-aligned boxes (spatial.Boxed) or convex pieces
// (spatial.Overlapper). Construction-time gates (the facade's
// RediscretizeEvery, the curator config) use it to fail fast instead of
// erroring at the first rebuild.
func Migratable(d spatial.Discretizer) bool {
	switch d.(type) {
	case spatial.Boxed, spatial.Overlapper:
		return true
	default:
		return false
	}
}

// From returns the source discretization.
func (m *Migration) From() spatial.Discretizer { return m.from }

// To returns the target discretization.
func (m *Migration) To() spatial.Discretizer { return m.to }

// Weights returns the overlap weights of old cell c (ascending by new cell,
// summing to 1). The returned slice is shared and must not be modified.
func (m *Migration) Weights(c spatial.Cell) []CellWeight { return m.weights[c] }

// MapCell returns the new cell with the largest overlap of old cell c — the
// deterministic remap applied to released trajectory cells.
func (m *Migration) MapCell(c spatial.Cell) spatial.Cell { return m.best[c] }

// Distance returns the layout distance in [0, 1): the area-weighted misfit
// between the layouts. Identical layouts measure 0; the Controller compares
// it against the switch threshold so stable workloads never churn.
func (m *Migration) Distance() float64 { return m.dist }

// RemapFreqs pushes a transition-state frequency vector over the old domain
// through the overlap matrix onto the new domain. Movement mass m(a→b)
// distributes over new pairs (a′→b′) with weight w(a,a′)·w(b,b′), restricted
// to pairs satisfying the new layout's reachability constraint and
// renormalized over the captured weight, so mass is conserved exactly per
// state; should no valid pair exist (geometrically possible only for
// degenerate layouts) the mass lands on the dominant cell's self-loop.
// Entering and quitting mass redistributes by plain cell overlap. Both
// domains must be built over the migration's discretizers and agree on
// whether enter/quit states exist.
func (m *Migration) RemapFreqs(fromDom, toDom *transition.Domain, freq []float64) ([]float64, error) {
	if fromDom.Space().Fingerprint() != m.from.Fingerprint() {
		return nil, fmt.Errorf("relayout: source domain built over a different layout")
	}
	if toDom.Space().Fingerprint() != m.to.Fingerprint() {
		return nil, fmt.Errorf("relayout: target domain built over a different layout")
	}
	if len(freq) != fromDom.Size() {
		return nil, fmt.Errorf("relayout: frequency vector length %d ≠ source domain %d", len(freq), fromDom.Size())
	}
	if fromDom.HasEQ() != toDom.HasEQ() {
		return nil, fmt.Errorf("relayout: source and target domains disagree on enter/quit states")
	}
	out := make([]float64, toDom.Size())
	nOld := m.from.NumCells()
	for a := 0; a < nOld; a++ {
		base, n := fromDom.MoveBlock(spatial.Cell(a))
		nbrs := m.from.Neighbors(spatial.Cell(a))
		wa := m.weights[a]
		for r := 0; r < n; r++ {
			f := freq[base+r]
			if f == 0 {
				continue
			}
			wb := m.weights[nbrs[r]]
			// First pass: the weight captured by pairs that stay reachable
			// in the new layout.
			captured := 0.0
			for _, pa := range wa {
				for _, pb := range wb {
					if m.to.Adjacent(pa.Cell, pb.Cell) {
						captured += pa.W * pb.W
					}
				}
			}
			if captured <= 0 {
				self, _ := toDom.MoveIndex(m.best[a], m.best[a])
				out[self] += f
				continue
			}
			scale := 1 / captured
			for _, pa := range wa {
				for _, pb := range wb {
					idx, ok := toDom.MoveIndex(pa.Cell, pb.Cell)
					if !ok {
						continue
					}
					out[idx] += f * pa.W * pb.W * scale
				}
			}
		}
	}
	if fromDom.HasEQ() {
		for c := 0; c < nOld; c++ {
			fe := freq[fromDom.EnterIndex(spatial.Cell(c))]
			fq := freq[fromDom.QuitIndex(spatial.Cell(c))]
			if fe == 0 && fq == 0 {
				continue
			}
			for _, p := range m.weights[c] {
				if fe != 0 {
					out[toDom.EnterIndex(p.Cell)] += fe * p.W
				}
				if fq != 0 {
					out[toDom.QuitIndex(p.Cell)] += fq * p.W
				}
			}
		}
	}
	return out, nil
}

// RemapDevState re-indexes a deviation-tracker history (per-state frequency
// vectors) onto the new domain, so the adaptive allocation strategy keeps
// its drift signal across a migration instead of restarting cold.
func (m *Migration) RemapDevState(fromDom, toDom *transition.Domain, st allocation.DevState) (allocation.DevState, error) {
	out := allocation.DevState{Hist: make([][]float64, len(st.Hist))}
	for i, h := range st.Hist {
		remapped, err := m.RemapFreqs(fromDom, toDom, h)
		if err != nil {
			return allocation.DevState{}, fmt.Errorf("relayout: dev history entry %d: %w", i, err)
		}
		out.Hist[i] = remapped
	}
	return out, nil
}
