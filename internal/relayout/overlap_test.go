package relayout_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"retrasyn/internal/geofence"
	"retrasyn/internal/grid"
	"retrasyn/internal/relayout"
	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

// Tests of the Overlapper generalization: migrations where one or both
// layouts are polygonal fences go through Sutherland–Hodgman piece clipping
// instead of box intersection. The invariants are the same ones the boxed
// path pins — per-source-cell weights sum to 1, mobility mass survives the
// remap — plus the exact identity-migration golden.

// districtFence covers part of the unit square with an irregular polygon
// partition (two rectangles, a triangle and a quad), leaving gaps; its
// polygon hull spans the full unit bounds so it can migrate against grid and
// quadtree layouts over the same space.
func districtFence(t *testing.T) *geofence.Fence {
	t.Helper()
	f, err := geofence.NewFence([]geofence.Polygon{
		{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.5, Y: 0.4}, {X: 0, Y: 0.4}},
		{{X: 0.5, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0.4}, {X: 0.5, Y: 0.4}},
		{{X: 0, Y: 0.4}, {X: 0.5, Y: 0.4}, {X: 0, Y: 1}},
		{{X: 0.5, Y: 0.4}, {X: 1, Y: 0.4}, {X: 1, Y: 1}, {X: 0.75, Y: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fullFence partitions the unit square completely (a strip and two
// triangles), so box cells always overlap some fence cell.
func fullFence(t *testing.T) *geofence.Fence {
	t.Helper()
	f, err := geofence.NewFence([]geofence.Polygon{
		{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0.3}, {X: 0, Y: 0.3}},
		{{X: 0, Y: 0.3}, {X: 1, Y: 0.3}, {X: 0, Y: 1}},
		{{X: 1, Y: 0.3}, {X: 1, Y: 1}, {X: 0, Y: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// overlapPairs enumerates the box→polygon, polygon→box and polygon→polygon
// migrations the generalization adds.
func overlapPairs(t *testing.T) []struct {
	name     string
	from, to spatial.Discretizer
} {
	g := grid.MustNew(6, unitBounds())
	qt := mustQuadtree(t, cornerSketch(2000, 0.1, 0.1, 21), 28)
	districts := districtFence(t)
	full := fullFence(t)
	return []struct {
		name     string
		from, to spatial.Discretizer
	}{
		{"box→polygon", g, full},
		{"box→polygon-with-gaps", qt, districts},
		{"polygon→box", districts, g},
		{"polygon→quadtree", full, qt},
		{"polygon→polygon", districts, full},
		{"polygon→polygon-reverse", full, districts},
	}
}

func TestOverlapperWeightsSumToOne(t *testing.T) {
	for _, p := range overlapPairs(t) {
		t.Run(p.name, func(t *testing.T) {
			mig, err := relayout.NewMigration(p.from, p.to)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < p.from.NumCells(); c++ {
				ws := mig.Weights(spatial.Cell(c))
				if len(ws) == 0 {
					t.Fatalf("cell %d has no weights", c)
				}
				sum := 0.0
				prev := spatial.Cell(-1)
				for _, w := range ws {
					if w.W < 0 {
						t.Fatalf("cell %d: negative weight %v", c, w.W)
					}
					if !p.to.ValidCell(w.Cell) {
						t.Fatalf("cell %d: weight onto invalid cell %d", c, w.Cell)
					}
					if w.Cell <= prev {
						t.Fatalf("cell %d: weights not ascending by target cell", c)
					}
					prev = w.Cell
					sum += w.W
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("cell %d: weights sum to %v, want 1", c, sum)
				}
				if !p.to.ValidCell(mig.MapCell(spatial.Cell(c))) {
					t.Fatalf("cell %d: MapCell out of range", c)
				}
			}
			if d := mig.Distance(); d < 0 || d > 1 {
				t.Fatalf("layout distance %v outside [0,1]", d)
			}
		})
	}
}

// TestOverlapperRemapConservesMass pins the acceptance invariant: mobility
// mass — including raw negative estimates — survives box→polygon,
// polygon→box and polygon→polygon migrations within 1e-9.
func TestOverlapperRemapConservesMass(t *testing.T) {
	for _, p := range overlapPairs(t) {
		t.Run(p.name, func(t *testing.T) {
			fromDom := transition.NewDomain(p.from)
			toDom := transition.NewDomain(p.to)
			mig, err := relayout.NewMigration(p.from, p.to)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(31, 37))
			freq := make([]float64, fromDom.Size())
			sum := 0.0
			for i := range freq {
				freq[i] = rng.Float64() - 0.3 // raw estimates go negative
				sum += freq[i]
			}
			out, err := mig.RemapFreqs(fromDom, toDom, freq)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != toDom.Size() {
				t.Fatalf("remapped length %d ≠ target domain %d", len(out), toDom.Size())
			}
			outSum := 0.0
			for _, f := range out {
				outSum += f
			}
			if math.Abs(outSum-sum) > 1e-9 {
				t.Fatalf("mass not conserved: Σin=%v Σout=%v (Δ=%g)", sum, outSum, outSum-sum)
			}
		})
	}
}

// TestOverlapperIdentityGolden pins the exact identity migration for fences:
// a fence rebuilt from its own polygon set migrates onto itself with weights
// exactly {c, 1.0} and distance exactly 0.
func TestOverlapperIdentityGolden(t *testing.T) {
	f := districtFence(t)
	clone, err := geofence.NewFence(f.Polygons())
	if err != nil {
		t.Fatal(err)
	}
	if clone.Fingerprint() != f.Fingerprint() {
		t.Fatalf("clone fingerprint drifted: %s ≠ %s", clone.Fingerprint(), f.Fingerprint())
	}
	mig, err := relayout.NewMigration(f, clone)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Distance() != 0 {
		t.Fatalf("identity distance = %v, want exactly 0", mig.Distance())
	}
	for c := 0; c < f.NumCells(); c++ {
		ws := mig.Weights(spatial.Cell(c))
		if len(ws) != 1 || ws[0].Cell != spatial.Cell(c) || ws[0].W != 1.0 {
			t.Fatalf("identity weights of cell %d = %+v, want exactly {%d, 1.0}", c, ws, c)
		}
		if mig.MapCell(spatial.Cell(c)) != spatial.Cell(c) {
			t.Fatalf("identity MapCell(%d) = %d", c, mig.MapCell(spatial.Cell(c)))
		}
	}
	// An identity remap of a frequency vector is bit-exact.
	dom := transition.NewDomain(f)
	dom2 := transition.NewDomain(clone)
	freq := make([]float64, dom.Size())
	for i := range freq {
		freq[i] = 0.1*float64(i) - 1.5
	}
	out, err := mig.RemapFreqs(dom, dom2, freq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freq {
		if out[i] != freq[i] {
			t.Fatalf("identity remap drifted at state %d: %v → %v", i, freq[i], out[i])
		}
	}
}

// TestOverlapperGapFallback checks mass from cells over fence gaps is
// clamped, not dropped: a quadtree cell lying wholly inside a fence gap
// still carries weight 1 onto some fence cell.
func TestOverlapperGapFallback(t *testing.T) {
	g := grid.MustNew(10, unitBounds())
	districts := districtFence(t)
	mig, err := relayout.NewMigration(g, districts)
	if err != nil {
		t.Fatal(err)
	}
	// The grid cell [0.5,0.6]×[0.9,1] lies between the triangle district
	// (x ≤ 0.5) and the quad district (y ≤ 0.6 at these x) — fully in the
	// gap, with zero geometric overlap against every fence cell.
	gap := g.CellOf(0.55, 0.95)
	ws := mig.Weights(gap)
	if len(ws) != 1 || ws[0].W != 1.0 {
		t.Fatalf("gap cell weights = %+v, want a single full-weight clamp", ws)
	}
	if !districts.ValidCell(ws[0].Cell) {
		t.Fatalf("gap cell clamped onto invalid cell %d", ws[0].Cell)
	}
}

// TestSpreadInPiecesStaysInside pins the polygonal release spreading: every
// point lands inside the cell's polygon and the sequence is deterministic.
func TestSpreadInPiecesStaysInside(t *testing.T) {
	f := districtFence(t)
	for c := spatial.Cell(0); int(c) < f.NumCells(); c++ {
		pieces := f.CellPieces(c)
		for i := 0; i < 200; i++ {
			p := relayout.SpreadInPieces(pieces, i)
			if got := f.CellOf(p.X, p.Y); got != c {
				t.Fatalf("cell %d spread point %d (%v) landed in cell %d", c, i, p, got)
			}
		}
		if relayout.SpreadInPieces(pieces, 7) != relayout.SpreadInPieces(pieces, 7) {
			t.Fatalf("cell %d: spread not deterministic", c)
		}
	}
}
