package metrics

import (
	"math"
	"math/rand/v2"
	"sort"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

// Options parameterizes Evaluate. Zero values select the paper's defaults.
type Options struct {
	// Phi is the evaluation time-range size φ (default 10).
	Phi int
	// NumQueries is the number of random range queries (default 100).
	NumQueries int
	// NumWindows is the number of random time ranges for hotspot NDCG and
	// pattern F1 (default 100).
	NumWindows int
	// NHotspots is nh of NDCG@nh (default 10).
	NHotspots int
	// TopNPatterns is the N of the top-N pattern comparison (default 100).
	TopNPatterns int
	// PatternMinLen/PatternMaxLen bound mined pattern lengths (default 2–4).
	PatternMinLen, PatternMaxLen int
	// SanityFraction is the range-query sanity bound as a fraction of the
	// original dataset's total point count (default 0.01, following the
	// AdaTrace/LDPTrace convention the paper cites): the relative error
	// denominator is max(trueCount, SanityFraction·|D|), damping queries
	// with extremely small counts.
	SanityFraction float64
	// Seed drives query/window sampling.
	Seed uint64
}

func (o *Options) defaults() {
	if o.Phi <= 0 {
		o.Phi = 10
	}
	if o.NumQueries <= 0 {
		o.NumQueries = 100
	}
	if o.NumWindows <= 0 {
		o.NumWindows = 100
	}
	if o.NHotspots <= 0 {
		o.NHotspots = 10
	}
	if o.TopNPatterns <= 0 {
		o.TopNPatterns = 100
	}
	if o.PatternMinLen <= 0 {
		o.PatternMinLen = 2
	}
	if o.PatternMaxLen < o.PatternMinLen {
		o.PatternMaxLen = o.PatternMinLen + 2
	}
	if o.SanityFraction <= 0 {
		o.SanityFraction = 0.01
	}
}

// Report carries all eight utility metrics of the paper's evaluation.
// Larger is better for HotspotNDCG, PatternF1 and KendallTau; smaller is
// better for the rest.
type Report struct {
	DensityError    float64
	QueryError      float64
	HotspotNDCG     float64
	TransitionError float64
	PatternF1       float64
	KendallTau      float64
	TripError       float64
	LengthError     float64
}

// Evaluator computes metrics between one original dataset and any number of
// synthetic counterparts, caching the original's summary. It works over any
// spatial.Discretizer — the uniform grid the paper evaluates on, the
// density-adaptive quadtree, or a post-migration layout — by running range
// queries over continuous spatial.Bounds boxes resolved to cell masks
// through the discretizer's cell centers.
type Evaluator struct {
	sp       spatial.Discretizer
	opts     Options
	orig     *summary
	origData *trajectory.Dataset
}

// NewEvaluator prepares an evaluator for the original dataset over the
// uniform grid (the grid-compatible wrapper for existing callers).
func NewEvaluator(orig *trajectory.Dataset, g *grid.System, opts Options) *Evaluator {
	return NewEvaluatorSpace(orig, g, opts)
}

// NewEvaluatorSpace prepares an evaluator for the original dataset over any
// spatial discretization.
func NewEvaluatorSpace(orig *trajectory.Dataset, sp spatial.Discretizer, opts Options) *Evaluator {
	opts.defaults()
	return &Evaluator{sp: sp, opts: opts, orig: newSummary(orig, sp.NumCells()), origData: orig}
}

// Evaluate computes the full report for one synthetic dataset against the
// evaluator's original.
func (e *Evaluator) Evaluate(syn *trajectory.Dataset) Report {
	s := newSummary(syn, e.sp.NumCells())
	rng := ldp.NewRand(e.opts.Seed, e.opts.Seed^0xa5a5a5a5)
	return Report{
		DensityError:    densityError(e.orig, s),
		QueryError:      e.queryError(s, rng),
		HotspotNDCG:     e.hotspotNDCG(s, rng),
		TransitionError: transitionError(e.orig, s),
		PatternF1:       e.patternF1(syn, rng),
		KendallTau:      KendallTau(e.orig.totalVisits, s.totalVisits),
		TripError:       JSDSparse(e.orig.trips, s.trips),
		LengthError:     JSD(e.orig.lengths, s.lengths),
	}
}

// Evaluate is the one-shot convenience wrapper over the uniform grid.
func Evaluate(orig, syn *trajectory.Dataset, g *grid.System, opts Options) Report {
	return NewEvaluator(orig, g, opts).Evaluate(syn)
}

// EvaluateSpace is the one-shot convenience wrapper over any spatial
// discretization.
func EvaluateSpace(orig, syn *trajectory.Dataset, sp spatial.Discretizer, opts Options) Report {
	return NewEvaluatorSpace(orig, sp, opts).Evaluate(syn)
}

// densityError averages the per-timestamp JSD between the cell-occupancy
// distributions, over timestamps where either side has points.
func densityError(orig, syn *summary) float64 {
	total, n := 0.0, 0
	for t := 0; t < orig.T && t < syn.T; t++ {
		if orig.pointsAt[t] == 0 && syn.pointsAt[t] == 0 {
			continue
		}
		total += JSD(orig.cellCounts[t], syn.cellCounts[t])
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// transitionError averages the per-timestamp JSD between single-step
// transition distributions.
func transitionError(orig, syn *summary) float64 {
	total, n := 0.0, 0
	for t := 1; t < orig.T && t < syn.T; t++ {
		if len(orig.transCounts[t]) == 0 && len(syn.transCounts[t]) == 0 {
			continue
		}
		total += JSDSparse(orig.transCounts[t], syn.transCounts[t])
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// queryError averages the sanity-bounded relative error of random
// spatio-temporal range queries: a random continuous box (side lengths up to
// half the space) × a random φ-window. A query counts the points of the
// cells whose center falls inside the box — the generalization of the
// paper's cell-aligned rectangles that works for any discretization, and
// agrees with it on the uniform grid whenever box edges align to the cells.
func (e *Evaluator) queryError(syn *summary, rng *rand.Rand) float64 {
	phi := min(e.opts.Phi, e.orig.T)
	sanity := e.opts.SanityFraction * e.orig.totalPoints()
	if sanity < 1 {
		sanity = 1
	}
	total := 0.0
	for q := 0; q < e.opts.NumQueries; q++ {
		mask := e.cellMask(randomBounds(rng, e.sp.Bounds()))
		t0 := 0
		if e.orig.T > phi {
			t0 = rng.IntN(e.orig.T - phi + 1)
		}
		co := e.orig.maskWindowCount(mask, t0, phi)
		cs := syn.maskWindowCount(mask, t0, phi)
		total += math.Abs(co-cs) / math.Max(co, sanity)
	}
	return total / float64(e.opts.NumQueries)
}

// randomBounds draws a random query box inside b: each side uniform between
// 5% and 50% of the space's extent, uniformly placed.
func randomBounds(rng *rand.Rand, b spatial.Bounds) spatial.Bounds {
	w := b.Width() * (0.05 + 0.45*rng.Float64())
	h := b.Height() * (0.05 + 0.45*rng.Float64())
	x0 := b.MinX + rng.Float64()*(b.Width()-w)
	y0 := b.MinY + rng.Float64()*(b.Height()-h)
	return spatial.Bounds{MinX: x0, MinY: y0, MaxX: x0 + w, MaxY: y0 + h}
}

// cellMask resolves a continuous query box to the cells whose center lies
// inside it (max edges exclusive, so adjacent query boxes partition cells).
func (e *Evaluator) cellMask(box spatial.Bounds) []bool {
	mask := make([]bool, e.sp.NumCells())
	for c := range mask {
		x, y := e.sp.Center(spatial.Cell(c))
		mask[c] = x >= box.MinX && x < box.MaxX && y >= box.MinY && y < box.MaxY
	}
	return mask
}

// hotspotNDCG averages NDCG@nh of the synthetic top cells against the
// original's cell popularity, over random φ-windows.
func (e *Evaluator) hotspotNDCG(syn *summary, rng *rand.Rand) float64 {
	phi := min(e.opts.Phi, e.orig.T)
	nh := e.opts.NHotspots
	total, n := 0.0, 0
	for w := 0; w < e.opts.NumWindows; w++ {
		t0 := 0
		if e.orig.T > phi {
			t0 = rng.IntN(e.orig.T - phi + 1)
		}
		oc := e.orig.windowCellCounts(t0, phi)
		if sum(oc) == 0 {
			continue
		}
		sc := syn.windowCellCounts(t0, phi)
		total += ndcg(oc, sc, nh)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// ndcg scores the predicted top-nh ranking (by pred scores) with the true
// relevance (rel scores): DCG(pred order)/DCG(ideal order).
func ndcg(rel, pred []float64, nh int) float64 {
	idealOrder := topIndices(rel, nh)
	predOrder := topIndices(pred, nh)
	idcg := 0.0
	for i, c := range idealOrder {
		idcg += rel[c] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	dcg := 0.0
	for i, c := range predOrder {
		dcg += rel[c] / math.Log2(float64(i)+2)
	}
	return dcg / idcg
}

// topIndices returns the indices of the n largest scores (ties broken by
// index for determinism), skipping zero scores.
func topIndices(scores []float64, n int) []int {
	idx := make([]int, 0, len(scores))
	for i, s := range scores {
		if s > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if len(idx) > n {
		idx = idx[:n]
	}
	return idx
}
