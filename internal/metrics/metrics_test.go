package metrics

import (
	"math"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

func testGrid() *grid.System {
	return grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

func walkDataset(g spatial.Discretizer, users, T int, meanLen float64, seed uint64) *trajectory.Dataset {
	rng := ldp.NewRand(seed, seed+1)
	d := &trajectory.Dataset{Name: "walk", T: T}
	for u := 0; u < users; u++ {
		start := rng.IntN(T)
		c := grid.Cell(rng.IntN(g.NumCells()))
		cells := []grid.Cell{c}
		for t := start + 1; t < T; t++ {
			if rng.Float64() < 1/meanLen {
				break
			}
			ns := g.Neighbors(c)
			c = ns[rng.IntN(len(ns))]
			cells = append(cells, c)
		}
		d.Trajs = append(d.Trajs, trajectory.CellTrajectory{Start: start, Cells: cells})
	}
	return d
}

func TestSelfEvaluationIsPerfect(t *testing.T) {
	g := testGrid()
	d := walkDataset(g, 200, 30, 8, 5)
	r := Evaluate(d, d, g, Options{Seed: 1})
	if r.DensityError != 0 {
		t.Errorf("DensityError(d,d) = %v", r.DensityError)
	}
	if r.TransitionError != 0 {
		t.Errorf("TransitionError(d,d) = %v", r.TransitionError)
	}
	if r.QueryError != 0 {
		t.Errorf("QueryError(d,d) = %v", r.QueryError)
	}
	if math.Abs(r.HotspotNDCG-1) > 1e-12 {
		t.Errorf("HotspotNDCG(d,d) = %v", r.HotspotNDCG)
	}
	if math.Abs(r.PatternF1-1) > 1e-12 {
		t.Errorf("PatternF1(d,d) = %v", r.PatternF1)
	}
	if math.Abs(r.KendallTau-1) > 1e-12 {
		t.Errorf("KendallTau(d,d) = %v", r.KendallTau)
	}
	if r.TripError != 0 {
		t.Errorf("TripError(d,d) = %v", r.TripError)
	}
	if r.LengthError != 0 {
		t.Errorf("LengthError(d,d) = %v", r.LengthError)
	}
}

func TestMetricsOrderRandomWorseThanSelf(t *testing.T) {
	g := testGrid()
	orig := walkDataset(g, 300, 30, 8, 7)
	noise := walkDataset(g, 300, 30, 8, 99)
	perfect := Evaluate(orig, orig, g, Options{Seed: 2})
	noisy := Evaluate(orig, noise, g, Options{Seed: 2})
	if noisy.DensityError <= perfect.DensityError {
		t.Error("random dataset should have higher density error")
	}
	if noisy.TransitionError <= perfect.TransitionError {
		t.Error("random dataset should have higher transition error")
	}
	if noisy.KendallTau >= perfect.KendallTau {
		t.Error("random dataset should have lower Kendall tau")
	}
}

func TestLengthErrorDisjointLengthsIsLn2(t *testing.T) {
	// Original: all length 3. Synthetic: all length 20 — the baseline
	// signature from Table III (0.6931).
	g := testGrid()
	orig := &trajectory.Dataset{T: 25}
	syn := &trajectory.Dataset{T: 25}
	for u := 0; u < 50; u++ {
		orig.Trajs = append(orig.Trajs, trajectory.CellTrajectory{
			Start: u % 20, Cells: []grid.Cell{0, 1, 2}})
		cells := make([]grid.Cell, 20)
		syn.Trajs = append(syn.Trajs, trajectory.CellTrajectory{Start: 0, Cells: cells})
	}
	r := Evaluate(orig, syn, g, Options{Seed: 3})
	if math.Abs(r.LengthError-Ln2) > 1e-9 {
		t.Fatalf("LengthError = %v, want ln2 = %v", r.LengthError, Ln2)
	}
}

func TestQueryErrorDetectsMissingMass(t *testing.T) {
	g := testGrid()
	orig := walkDataset(g, 400, 30, 10, 11)
	// Synthetic dataset with half the points removed.
	syn := &trajectory.Dataset{T: orig.T, Trajs: orig.Trajs[:len(orig.Trajs)/2]}
	r := Evaluate(orig, syn, g, Options{Seed: 4})
	if r.QueryError < 0.2 {
		t.Fatalf("QueryError = %v, want substantial error for halved mass", r.QueryError)
	}
}

func TestTripErrorDetectsWrongEndpoints(t *testing.T) {
	g := testGrid()
	orig := &trajectory.Dataset{T: 10}
	syn := &trajectory.Dataset{T: 10}
	for u := 0; u < 40; u++ {
		orig.Trajs = append(orig.Trajs, trajectory.CellTrajectory{
			Start: 0, Cells: []grid.Cell{0, 1, 2}}) // trips 0→2
		syn.Trajs = append(syn.Trajs, trajectory.CellTrajectory{
			Start: 0, Cells: []grid.Cell{15, 14, 13}}) // trips 15→13
	}
	r := Evaluate(orig, syn, g, Options{Seed: 5})
	if math.Abs(r.TripError-Ln2) > 1e-9 {
		t.Fatalf("TripError = %v, want ln2 for disjoint trips", r.TripError)
	}
}

func TestNDCGHandComputed(t *testing.T) {
	rel := []float64{10, 5, 3, 0}
	// Prediction ranks cell2 first, then cell0, then cell1.
	pred := []float64{5, 3, 10, 0}
	// ideal order: 0,1,2 → idcg = 10/log2(2) + 5/log2(3) + 3/log2(4)
	idcg := 10/math.Log2(2) + 5/math.Log2(3) + 3/math.Log2(4)
	// predicted order: 2,0,1 → dcg = 3/log2(2) + 10/log2(3) + 5/log2(4)
	dcg := 3/math.Log2(2) + 10/math.Log2(3) + 5/math.Log2(4)
	want := dcg / idcg
	if got := ndcg(rel, pred, 10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ndcg = %v, want %v", got, want)
	}
}

func TestNDCGPerfectPrediction(t *testing.T) {
	rel := []float64{10, 5, 3, 1}
	if got := ndcg(rel, rel, 4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ndcg(rel,rel) = %v", got)
	}
}

func TestNDCGEmptyRelevance(t *testing.T) {
	if got := ndcg([]float64{0, 0}, []float64{1, 2}, 5); got != 0 {
		t.Fatalf("ndcg with empty relevance = %v", got)
	}
}

func TestTopIndices(t *testing.T) {
	scores := []float64{0, 5, 3, 5, 0, 1}
	got := topIndices(scores, 3)
	want := []int{1, 3, 2} // 5(idx1), 5(idx3, tie→larger index later), 3
	if len(got) != 3 {
		t.Fatalf("topIndices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topIndices = %v, want %v", got, want)
		}
	}
	// Zero scores are excluded entirely.
	if got := topIndices([]float64{0, 0}, 5); len(got) != 0 {
		t.Fatalf("topIndices of zeros = %v", got)
	}
}

func TestEvaluateEmptySynthetic(t *testing.T) {
	g := testGrid()
	orig := walkDataset(g, 100, 20, 6, 13)
	syn := &trajectory.Dataset{T: 20}
	r := Evaluate(orig, syn, g, Options{Seed: 6})
	if math.Abs(r.DensityError-Ln2) > 1e-9 {
		t.Errorf("DensityError vs empty = %v, want ln2", r.DensityError)
	}
	if r.PatternF1 != 0 {
		t.Errorf("PatternF1 vs empty = %v, want 0", r.PatternF1)
	}
	if r.HotspotNDCG != 0 {
		t.Errorf("HotspotNDCG vs empty = %v, want 0", r.HotspotNDCG)
	}
}

func TestEvaluateBothEmpty(t *testing.T) {
	g := testGrid()
	orig := &trajectory.Dataset{T: 20}
	syn := &trajectory.Dataset{T: 20}
	r := Evaluate(orig, syn, g, Options{Seed: 7})
	if r.DensityError != 0 || r.TransitionError != 0 {
		t.Errorf("both-empty errors: %+v", r)
	}
}

func TestEvaluatorReuse(t *testing.T) {
	g := testGrid()
	orig := walkDataset(g, 200, 25, 8, 17)
	ev := NewEvaluator(orig, g, Options{Seed: 8})
	r1 := ev.Evaluate(orig)
	r2 := ev.Evaluate(walkDataset(g, 200, 25, 8, 18))
	if r1.DensityError != 0 {
		t.Error("first evaluation wrong")
	}
	if r2.DensityError <= 0 {
		t.Error("second evaluation wrong")
	}
	// Same evaluator, same seed → deterministic.
	r3 := ev.Evaluate(orig)
	if r3 != r1 {
		t.Error("evaluator is not deterministic across calls")
	}
}

func TestPhiLargerThanTimeline(t *testing.T) {
	g := testGrid()
	orig := walkDataset(g, 100, 10, 5, 19)
	r := Evaluate(orig, orig, g, Options{Phi: 100, Seed: 9})
	if math.Abs(r.PatternF1-1) > 1e-12 || r.QueryError != 0 {
		t.Fatalf("oversized φ broke evaluation: %+v", r)
	}
}

// testQuadtree grows a skewed quadtree over the unit square, giving the
// discretizer-generic evaluator a non-grid backend to run on.
func testQuadtree(t *testing.T) *spatial.Quadtree {
	t.Helper()
	rng := ldp.NewRand(41, 43)
	pts := make([]spatial.Point, 0, 2000)
	for i := 0; i < 2000; i++ {
		if i%4 == 0 {
			pts = append(pts, spatial.Point{X: rng.Float64(), Y: rng.Float64()})
		} else {
			pts = append(pts, spatial.Point{X: rng.Float64() * 0.3, Y: rng.Float64() * 0.3})
		}
	}
	qt, err := spatial.NewQuadtree(spatial.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, pts,
		spatial.QuadtreeOptions{MaxLeaves: 24})
	if err != nil {
		t.Fatal(err)
	}
	return qt
}

// TestQuadtreeSelfEvaluationIsPerfect pins the discretizer-generic
// evaluator: on the quadtree backend, a dataset against itself scores
// perfectly on every metric, exactly as on the grid.
func TestQuadtreeSelfEvaluationIsPerfect(t *testing.T) {
	qt := testQuadtree(t)
	d := walkDataset(qt, 200, 30, 8, 5)
	r := EvaluateSpace(d, d, qt, Options{Seed: 1})
	if r.DensityError != 0 || r.TransitionError != 0 || r.QueryError != 0 || r.TripError != 0 || r.LengthError != 0 {
		t.Errorf("quadtree self-evaluation not perfect: %+v", r)
	}
	if math.Abs(r.HotspotNDCG-1) > 1e-12 || math.Abs(r.PatternF1-1) > 1e-12 || math.Abs(r.KendallTau-1) > 1e-12 {
		t.Errorf("quadtree self-evaluation rank metrics not perfect: %+v", r)
	}
}

// TestQuadtreeQueryErrorDetectsMissingMass mirrors the grid test on the
// quadtree: continuous-box range queries must see halved mass.
func TestQuadtreeQueryErrorDetectsMissingMass(t *testing.T) {
	qt := testQuadtree(t)
	orig := walkDataset(qt, 400, 30, 10, 11)
	syn := &trajectory.Dataset{T: orig.T, Trajs: orig.Trajs[:len(orig.Trajs)/2]}
	r := EvaluateSpace(orig, syn, qt, Options{Seed: 4})
	if r.QueryError < 0.2 {
		t.Fatalf("QueryError = %v, want substantial error for halved mass on the quadtree", r.QueryError)
	}
}

// TestGridWrapperMatchesSpacePath pins the thin grid wrapper: Evaluate over
// *grid.System and EvaluateSpace over the same grid are the same code path.
func TestGridWrapperMatchesSpacePath(t *testing.T) {
	g := testGrid()
	orig := walkDataset(g, 200, 25, 8, 21)
	syn := walkDataset(g, 200, 25, 8, 22)
	a := Evaluate(orig, syn, g, Options{Seed: 9})
	b := EvaluateSpace(orig, syn, g, Options{Seed: 9})
	// The sparse-divergence metrics fold map entries in iteration order, so
	// two evaluations may differ by float rounding ulps; everything beyond
	// that is a wrapper drift.
	close := func(x, y float64) bool { return math.Abs(x-y) < 1e-9 }
	if !close(a.DensityError, b.DensityError) || !close(a.QueryError, b.QueryError) ||
		!close(a.HotspotNDCG, b.HotspotNDCG) || !close(a.TransitionError, b.TransitionError) ||
		!close(a.PatternF1, b.PatternF1) || !close(a.KendallTau, b.KendallTau) ||
		!close(a.TripError, b.TripError) || !close(a.LengthError, b.LengthError) {
		t.Fatalf("wrapper drifted from the generic path: %+v vs %+v", a, b)
	}
}
