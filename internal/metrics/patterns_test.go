package metrics

import (
	"math"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/trajectory"
)

func TestMinePatternsHandComputed(t *testing.T) {
	d := &trajectory.Dataset{T: 10, Trajs: []trajectory.CellTrajectory{
		{Start: 0, Cells: []grid.Cell{1, 2, 3}},
		{Start: 0, Cells: []grid.Cell{1, 2}},
	}}
	counts := minePatterns(d, 0, 10, 2, 3)
	key12 := uint64(1)<<patternCellBits | 2 | uint64(2)<<60
	key23 := uint64(2)<<patternCellBits | 3 | uint64(2)<<60
	key123 := (uint64(1)<<patternCellBits|2)<<patternCellBits | 3 | uint64(3)<<60
	if counts[key12] != 2 {
		t.Fatalf("count(1→2) = %d, want 2", counts[key12])
	}
	if counts[key23] != 1 {
		t.Fatalf("count(2→3) = %d, want 1", counts[key23])
	}
	if counts[key123] != 1 {
		t.Fatalf("count(1→2→3) = %d, want 1", counts[key123])
	}
	if len(counts) != 3 {
		t.Fatalf("mined %d patterns, want 3: %v", len(counts), counts)
	}
}

func TestMinePatternsWindowClipping(t *testing.T) {
	d := &trajectory.Dataset{T: 10, Trajs: []trajectory.CellTrajectory{
		{Start: 0, Cells: []grid.Cell{1, 2, 3, 4, 5}},
	}}
	// Window [1,3): only cells at t=1,2 (values 2,3) are visible.
	counts := minePatterns(d, 1, 2, 2, 3)
	key23 := uint64(2)<<patternCellBits | 3 | uint64(2)<<60
	if counts[key23] != 1 || len(counts) != 1 {
		t.Fatalf("window clipping failed: %v", counts)
	}
}

func TestMinePatternsTooShort(t *testing.T) {
	d := &trajectory.Dataset{T: 5, Trajs: []trajectory.CellTrajectory{
		{Start: 0, Cells: []grid.Cell{7}},
	}}
	if counts := minePatterns(d, 0, 5, 2, 4); len(counts) != 0 {
		t.Fatalf("mined patterns from a 1-point stream: %v", counts)
	}
}

func TestTopPatternsDeterministicTieBreak(t *testing.T) {
	d := &trajectory.Dataset{T: 10, Trajs: []trajectory.CellTrajectory{
		{Start: 0, Cells: []grid.Cell{1, 2}},
		{Start: 0, Cells: []grid.Cell{3, 4}},
		{Start: 0, Cells: []grid.Cell{5, 6}},
	}}
	a := topPatterns(d, 0, 10, 2, 2, 2)
	b := topPatterns(d, 0, 10, 2, 2, 2)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("topPatterns sizes: %d, %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatal("tie-break not deterministic")
		}
	}
}

func TestF1(t *testing.T) {
	mk := func(keys ...uint64) map[uint64]bool {
		m := map[uint64]bool{}
		for _, k := range keys {
			m[k] = true
		}
		return m
	}
	tests := []struct {
		a, b map[uint64]bool
		want float64
	}{
		{mk(1, 2, 3), mk(1, 2, 3), 1},
		{mk(1, 2), mk(3, 4), 0},
		{mk(1, 2, 3, 4), mk(3, 4, 5, 6), 0.5},
		{mk(), mk(), 1},
		{mk(1), mk(), 0},
		{mk(), mk(1), 0},
	}
	for i, tt := range tests {
		if got := f1(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("case %d: f1 = %v, want %v", i, got, tt.want)
		}
	}
}

func TestPatternKeysNoCollision(t *testing.T) {
	// Patterns of different lengths or cells must map to distinct keys.
	d := &trajectory.Dataset{T: 10, Trajs: []trajectory.CellTrajectory{
		{Start: 0, Cells: []grid.Cell{0, 0, 0}},
	}}
	counts := minePatterns(d, 0, 10, 2, 3)
	// Expect exactly: (0,0)×2, (0,0,0)×1 — two distinct keys.
	if len(counts) != 2 {
		t.Fatalf("key collision across lengths: %v", counts)
	}
}
