package metrics

import (
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

// summary caches the per-timestamp spatial statistics of one dataset so the
// eight metrics can share a single pass over the data. It depends on the
// discretization only through the cell count — range queries resolve their
// continuous query box to a cell mask via the discretizer's cell centers.
type summary struct {
	nc int
	T  int
	// cellCounts[t][c] = points in cell c at timestamp t.
	cellCounts [][]float64
	// transCounts[t] maps packed (from,to) → count of transitions landing at
	// timestamp t (i.e. cell at t−1 → cell at t).
	transCounts []map[uint32]float64
	// totalVisits[c] = points in cell c over the whole timeline.
	totalVisits []float64
	// trips maps packed (start,end) → completed-stream count.
	trips map[uint32]float64
	// lengths[ℓ] = streams of length ℓ (capped at maxLen bucket).
	lengths []float64
	// pointsAt[t] = total points at timestamp t.
	pointsAt []float64
}

const lengthBuckets = 512

func packPair(a, b spatial.Cell) uint32 { return uint32(a)<<16 | uint32(b)&0xffff }

func newSummary(d *trajectory.Dataset, nc int) *summary {
	s := &summary{
		nc:          nc,
		T:           d.T,
		cellCounts:  make([][]float64, d.T),
		transCounts: make([]map[uint32]float64, d.T),
		totalVisits: make([]float64, nc),
		trips:       make(map[uint32]float64),
		lengths:     make([]float64, lengthBuckets+1),
		pointsAt:    make([]float64, d.T),
	}
	flat := make([]float64, d.T*nc)
	for t := 0; t < d.T; t++ {
		s.cellCounts[t], flat = flat[:nc:nc], flat[nc:]
		s.transCounts[t] = make(map[uint32]float64)
	}
	for _, tr := range d.Trajs {
		end := tr.End()
		for t := tr.Start; t <= end && t < d.T; t++ {
			if t < 0 {
				continue
			}
			c := tr.Cells[t-tr.Start]
			s.cellCounts[t][c]++
			s.totalVisits[c]++
			s.pointsAt[t]++
			if t > tr.Start {
				s.transCounts[t][packPair(tr.Cells[t-tr.Start-1], c)]++
			}
		}
		s.trips[packPair(tr.Cells[0], tr.Cells[len(tr.Cells)-1])]++
		l := tr.Len()
		if l > lengthBuckets {
			l = lengthBuckets
		}
		s.lengths[l]++
	}
	return s
}

// maskWindowCount sums the points of the masked cells during [t0, t0+phi).
func (s *summary) maskWindowCount(mask []bool, t0, phi int) float64 {
	total := 0.0
	for t := t0; t < t0+phi && t < s.T; t++ {
		row := s.cellCounts[t]
		for c, in := range mask {
			if in {
				total += row[c]
			}
		}
	}
	return total
}

// windowCellCounts sums per-cell counts over [t0, t0+phi).
func (s *summary) windowCellCounts(t0, phi int) []float64 {
	out := make([]float64, s.nc)
	for t := t0; t < t0+phi && t < s.T; t++ {
		for c, v := range s.cellCounts[t] {
			out[c] += v
		}
	}
	return out
}

// windowPoints sums total points over [t0, t0+phi).
func (s *summary) windowPoints(t0, phi int) float64 {
	total := 0.0
	for t := t0; t < t0+phi && t < s.T; t++ {
		total += s.pointsAt[t]
	}
	return total
}

// totalPoints is the dataset's point count (the |D| of the sanity bound).
func (s *summary) totalPoints() float64 {
	return s.windowPoints(0, s.T)
}
