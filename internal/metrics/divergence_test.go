package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"retrasyn/internal/ldp"
)

func TestJSDIdentical(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	if got := JSD(p, p); got != 0 {
		t.Fatalf("JSD(p,p) = %v", got)
	}
}

func TestJSDDisjointIsLn2(t *testing.T) {
	p := []float64{1, 0, 0}
	q := []float64{0, 0, 1}
	if got := JSD(p, q); math.Abs(got-Ln2) > 1e-12 {
		t.Fatalf("JSD(disjoint) = %v, want ln2=%v", got, Ln2)
	}
}

func TestJSDDegenerate(t *testing.T) {
	zero := []float64{0, 0}
	if got := JSD(zero, zero); got != 0 {
		t.Fatalf("JSD(0,0) = %v", got)
	}
	if got := JSD(zero, []float64{1, 1}); got != Ln2 {
		t.Fatalf("JSD(0,q) = %v, want ln2", got)
	}
	if got := JSD([]float64{1, 1}, zero); got != Ln2 {
		t.Fatalf("JSD(p,0) = %v, want ln2", got)
	}
}

func TestJSDUnnormalizedInputs(t *testing.T) {
	p := []float64{2, 3, 5}
	q := []float64{200, 300, 500}
	if got := JSD(p, q); got > 1e-12 {
		t.Fatalf("JSD of proportional vectors = %v, want 0", got)
	}
}

func TestJSDKnownValue(t *testing.T) {
	// JSD([1,0],[0.5,0.5]) = 0.5·KL([1,0]‖[.75,.25]) + 0.5·KL([.5,.5]‖[.75,.25])
	p := []float64{1, 0}
	q := []float64{0.5, 0.5}
	want := 0.5*(1*math.Log(1/0.75)) + 0.5*(0.5*math.Log(0.5/0.75)+0.5*math.Log(0.5/0.25))
	if got := JSD(p, q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("JSD = %v, want %v", got, want)
	}
}

func TestJSDPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	JSD([]float64{1}, []float64{1, 2})
}

func TestJSDPropertyBoundsAndSymmetry(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := ldp.NewRand(seed, seed*3+1)
		size := int(n%20) + 1
		p := make([]float64, size)
		q := make([]float64, size)
		for i := range p {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
		}
		d1, d2 := JSD(p, q), JSD(q, p)
		return d1 >= 0 && d1 <= Ln2+1e-12 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJSDSparseMatchesDense(t *testing.T) {
	p := map[int]float64{0: 0.2, 1: 0.3, 2: 0.5}
	q := map[int]float64{0: 0.1, 2: 0.6, 3: 0.3}
	dp := []float64{0.2, 0.3, 0.5, 0}
	dq := []float64{0.1, 0, 0.6, 0.3}
	if got, want := JSDSparse(p, q), JSD(dp, dq); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sparse %v ≠ dense %v", got, want)
	}
}

func TestJSDSparseDegenerate(t *testing.T) {
	if got := JSDSparse(map[int]float64{}, map[int]float64{}); got != 0 {
		t.Fatalf("JSDSparse(∅,∅) = %v", got)
	}
	if got := JSDSparse(map[int]float64{1: 1}, map[int]float64{}); got != Ln2 {
		t.Fatalf("JSDSparse(p,∅) = %v", got)
	}
}

func TestJSDSparseDisjoint(t *testing.T) {
	p := map[int]float64{1: 1}
	q := map[int]float64{2: 1}
	if got := JSDSparse(p, q); math.Abs(got-Ln2) > 1e-12 {
		t.Fatalf("JSDSparse(disjoint) = %v", got)
	}
}

func TestKendallTauPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := KendallTau(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("tau(a,a) = %v", got)
	}
	b := []float64{4, 3, 2, 1}
	if got := KendallTau(a, b); math.Abs(got+1) > 1e-12 {
		t.Fatalf("tau(a,reverse) = %v", got)
	}
}

func TestKendallTauKnown(t *testing.T) {
	// Classic example without ties: a=[1,2,3,4,5], b=[3,4,1,2,5]:
	// concordant pairs 6, discordant 4 → tau = 0.2... compute: pairs=10,
	// b-order: (1,2)c? b1<b2 → c; (1,3): 3>1 d; (1,4): 3>2 d; (1,5) c;
	// (2,3): 4>1 d; (2,4): 4>2 d; (2,5) c; (3,4): 1<2 c; (3,5) c; (4,5) c.
	// c=6, d=4 → tau = 2/10 = 0.2.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{3, 4, 1, 2, 5}
	if got := KendallTau(a, b); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("tau = %v, want 0.2", got)
	}
}

func TestKendallTauTies(t *testing.T) {
	// All-tied vector carries no ranking signal.
	a := []float64{1, 1, 1}
	b := []float64{1, 2, 3}
	if got := KendallTau(a, b); got != 0 {
		t.Fatalf("tau with fully tied a = %v", got)
	}
	// Partial ties use the tau-b correction: stays within [−1, 1].
	c := []float64{1, 1, 2, 3}
	d := []float64{1, 2, 2, 4}
	got := KendallTau(c, d)
	if got < -1 || got > 1 {
		t.Fatalf("tau-b out of range: %v", got)
	}
}

func TestKendallTauRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := ldp.NewRand(seed, seed+13)
		size := int(n%15) + 2
		a := make([]float64, size)
		b := make([]float64, size)
		for i := range a {
			a[i] = float64(rng.IntN(5)) // deliberate ties
			b[i] = float64(rng.IntN(5))
		}
		tau := KendallTau(a, b)
		return tau >= -1-1e-9 && tau <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KendallTau([]float64{1}, []float64{1, 2})
}
