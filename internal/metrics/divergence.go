// Package metrics implements the paper's utility metrics (§V-B): the
// streaming metrics — density error, spatio-temporal range query error,
// hotspot NDCG, transition error and pattern F1 — and the historical
// trajectory-level metrics — Kendall's tau, trip error and length error.
// All divergence-based metrics use the Jensen-Shannon divergence with
// natural logarithm, whose maximum ln 2 ≈ 0.6931 is the constant the paper
// reports for the baselines' length error.
package metrics

import "math"

// Ln2 is the maximum attainable Jensen-Shannon divergence (natural log).
const Ln2 = math.Ln2

// JSD computes the Jensen-Shannon divergence between two non-negative
// weight vectors of equal length. Inputs are normalized internally; they
// need not sum to one. Conventions for degenerate inputs: two empty (all
// zero) vectors diverge by 0; one empty vector diverges maximally (ln 2).
func JSD(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("metrics: JSD length mismatch")
	}
	sp, sq := sum(p), sum(q)
	switch {
	case sp <= 0 && sq <= 0:
		return 0
	case sp <= 0 || sq <= 0:
		return Ln2
	}
	d := 0.0
	for i := range p {
		pi, qi := p[i]/sp, q[i]/sq
		m := (pi + qi) / 2
		if pi > 0 {
			d += 0.5 * pi * math.Log(pi/m)
		}
		if qi > 0 {
			d += 0.5 * qi * math.Log(qi/m)
		}
	}
	if d < 0 {
		return 0 // guard against float underflow
	}
	if d > Ln2 {
		return Ln2
	}
	return d
}

// JSDSparse computes the Jensen-Shannon divergence between two sparse
// non-negative weight maps, treating missing keys as zero.
func JSDSparse[K comparable](p, q map[K]float64) float64 {
	sp, sq := 0.0, 0.0
	for _, v := range p {
		sp += v
	}
	for _, v := range q {
		sq += v
	}
	switch {
	case sp <= 0 && sq <= 0:
		return 0
	case sp <= 0 || sq <= 0:
		return Ln2
	}
	d := 0.0
	for k, v := range p {
		pi := v / sp
		qi := q[k] / sq
		m := (pi + qi) / 2
		if pi > 0 {
			d += 0.5 * pi * math.Log(pi/m)
		}
	}
	for k, v := range q {
		qi := v / sq
		pi := p[k] / sp
		m := (pi + qi) / 2
		if qi > 0 {
			d += 0.5 * qi * math.Log(qi/m)
		}
	}
	if d < 0 {
		return 0
	}
	if d > Ln2 {
		return Ln2
	}
	return d
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// KendallTau computes Kendall's tau-b rank correlation between two equally
// long score vectors, with the standard tie correction. It returns 0 when
// either vector is entirely tied (no ranking information).
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: KendallTau length mismatch")
	}
	n := len(a)
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 && db == 0:
				// joint tie: excluded from both denominator terms
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case (da > 0) == (db > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	denomA := concordant + discordant + tiesA
	denomB := concordant + discordant + tiesB
	if denomA == 0 || denomB == 0 {
		return 0
	}
	return (concordant - discordant) / math.Sqrt(denomA*denomB)
}
