package metrics

import (
	"math/rand/v2"
	"sort"

	"retrasyn/internal/trajectory"
)

// Pattern F1 (paper §V-B): a pattern is an ordered sequence of consecutive
// cells. Within a random φ-window the top-N most frequent patterns of the
// original and synthetic datasets are compared by F1 score; the reported
// metric averages over NumWindows random windows.
//
// Patterns of length 2–5 pack into a uint64 key: 12 bits per cell (supports
// K ≤ 64) plus a 4-bit length tag, which keeps mining allocation-free per
// n-gram.

const (
	patternCellBits = 12
	patternCellMask = 1<<patternCellBits - 1
	// maxPackedLen is the longest pattern that fits the packing scheme.
	maxPackedLen = 5
)

// patternF1 computes the metric between the evaluator's original dataset
// and syn over shared random windows.
func (e *Evaluator) patternF1(syn *trajectory.Dataset, rng *rand.Rand) float64 {
	phi := min(e.opts.Phi, e.orig.T)
	minL, maxL := e.opts.PatternMinLen, e.opts.PatternMaxLen
	if maxL > maxPackedLen {
		maxL = maxPackedLen
	}
	total, n := 0.0, 0
	for w := 0; w < e.opts.NumWindows; w++ {
		t0 := 0
		if e.orig.T > phi {
			t0 = rng.IntN(e.orig.T - phi + 1)
		}
		op := topPatterns(e.origData, t0, phi, minL, maxL, e.opts.TopNPatterns)
		if len(op) == 0 {
			continue
		}
		sp := topPatterns(syn, t0, phi, minL, maxL, e.opts.TopNPatterns)
		total += f1(op, sp)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// minePatterns counts every consecutive-cell n-gram of length [minL, maxL]
// whose span lies inside [t0, t0+phi).
func minePatterns(d *trajectory.Dataset, t0, phi, minL, maxL int) map[uint64]int {
	counts := make(map[uint64]int)
	hi := t0 + phi // exclusive
	for _, tr := range d.Trajs {
		// Clip the trajectory to the window.
		lo := max(tr.Start, t0)
		end := min(tr.End(), hi-1)
		if end-lo+1 < minL {
			continue
		}
		cells := tr.Cells[lo-tr.Start : end-tr.Start+1]
		for i := 0; i < len(cells); i++ {
			var key uint64
			for l := 1; l <= maxL && i+l <= len(cells); l++ {
				key = key<<patternCellBits | uint64(cells[i+l-1])&patternCellMask
				if l >= minL {
					counts[key|uint64(l)<<60]++
				}
			}
		}
	}
	return counts
}

// topPatterns returns the top-n pattern keys of the window as a set.
func topPatterns(d *trajectory.Dataset, t0, phi, minL, maxL, n int) map[uint64]bool {
	counts := minePatterns(d, t0, phi, minL, maxL)
	type kc struct {
		key uint64
		c   int
	}
	all := make([]kc, 0, len(counts))
	for k, c := range counts {
		all = append(all, kc{k, c})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].c != all[b].c {
			return all[a].c > all[b].c
		}
		return all[a].key < all[b].key // deterministic tie-break
	})
	if len(all) > n {
		all = all[:n]
	}
	set := make(map[uint64]bool, len(all))
	for _, e := range all {
		set[e.key] = true
	}
	return set
}

// f1 scores the overlap of two pattern sets.
func f1(a, b map[uint64]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}
