package transition

import (
	"testing"
	"testing/quick"

	"retrasyn/internal/grid"
)

func newGrid(k int) *grid.System {
	return grid.MustNew(k, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

func TestDomainSize(t *testing.T) {
	// K=4: movement = 100 (see grid tests), |C| = 16 → full = 100+32 = 132.
	g := newGrid(4)
	d := NewDomain(g)
	if d.Size() != 132 {
		t.Fatalf("Size = %d, want 132", d.Size())
	}
	if d.NumMoveStates() != 100 {
		t.Fatalf("NumMoveStates = %d, want 100", d.NumMoveStates())
	}
	if !d.HasEQ() {
		t.Fatal("full domain should have EQ states")
	}

	m := NewMoveOnlyDomain(g)
	if m.Size() != 100 {
		t.Fatalf("move-only Size = %d, want 100", m.Size())
	}
	if m.HasEQ() {
		t.Fatal("move-only domain should not have EQ states")
	}
}

func TestDomainSizeBound(t *testing.T) {
	// |S| ≤ 9|C| + 2|C| = 11|C| for all K.
	for k := 1; k <= 10; k++ {
		g := newGrid(k)
		d := NewDomain(g)
		if d.Size() > 11*g.NumCells() {
			t.Fatalf("K=%d: |S|=%d exceeds 11|C|=%d", k, d.Size(), 11*g.NumCells())
		}
	}
}

func TestIndexBijection(t *testing.T) {
	g := newGrid(5)
	d := NewDomain(g)
	seen := make(map[int]bool)
	check := func(s State) {
		idx, ok := d.Index(s)
		if !ok {
			t.Fatalf("Index(%v) not ok", s)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d for %v", idx, s)
		}
		seen[idx] = true
		if got := d.StateAt(idx); got != s {
			t.Fatalf("StateAt(Index(%v)) = %v", s, got)
		}
	}
	for c := grid.Cell(0); int(c) < g.NumCells(); c++ {
		for _, to := range g.Neighbors(c) {
			check(MoveState(c, to))
		}
		check(EnterState(c))
		check(QuitState(c))
	}
	if len(seen) != d.Size() {
		t.Fatalf("enumerated %d states, domain size %d", len(seen), d.Size())
	}
}

func TestIndexBijectionProperty(t *testing.T) {
	f := func(kSeed uint8) bool {
		k := int(kSeed%8) + 1
		g := newGrid(k)
		d := NewDomain(g)
		for idx := 0; idx < d.Size(); idx++ {
			s := d.StateAt(idx)
			got, ok := d.Index(s)
			if !ok || got != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveIndexUnreachable(t *testing.T) {
	g := newGrid(5)
	d := NewDomain(g)
	// (0,0) → (3,3) violates reachability.
	if _, ok := d.MoveIndex(g.CellAt(0, 0), g.CellAt(3, 3)); ok {
		t.Fatal("unreachable move indexed")
	}
	if _, ok := d.Index(MoveState(g.CellAt(0, 0), g.CellAt(0, 4))); ok {
		t.Fatal("unreachable move state indexed")
	}
}

func TestIndexInvalidCells(t *testing.T) {
	g := newGrid(3)
	d := NewDomain(g)
	if _, ok := d.Index(MoveState(grid.Invalid, 0)); ok {
		t.Fatal("invalid From indexed")
	}
	if _, ok := d.Index(MoveState(0, grid.Cell(99))); ok {
		t.Fatal("out-of-range To indexed")
	}
	if _, ok := d.Index(EnterState(grid.Invalid)); ok {
		t.Fatal("invalid enter indexed")
	}
	if _, ok := d.Index(QuitState(grid.Cell(9))); ok {
		t.Fatal("out-of-range quit indexed")
	}
	if _, ok := d.Index(State{Kind: Kind(9)}); ok {
		t.Fatal("bogus kind indexed")
	}
}

func TestMoveOnlyDomainRejectsEQ(t *testing.T) {
	g := newGrid(3)
	d := NewMoveOnlyDomain(g)
	if _, ok := d.Index(EnterState(0)); ok {
		t.Fatal("move-only domain indexed an enter state")
	}
	if _, ok := d.Index(QuitState(0)); ok {
		t.Fatal("move-only domain indexed a quit state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnterIndex on move-only domain did not panic")
		}
	}()
	d.EnterIndex(0)
}

func TestQuitIndexPanicsMoveOnly(t *testing.T) {
	d := NewMoveOnlyDomain(newGrid(3))
	defer func() {
		if recover() == nil {
			t.Fatal("QuitIndex on move-only domain did not panic")
		}
	}()
	d.QuitIndex(0)
}

func TestMoveBlock(t *testing.T) {
	g := newGrid(4)
	d := NewDomain(g)
	total := 0
	for c := grid.Cell(0); int(c) < g.NumCells(); c++ {
		base, n := d.MoveBlock(c)
		if n != len(g.Neighbors(c)) {
			t.Fatalf("MoveBlock(%d) n=%d want %d", c, n, len(g.Neighbors(c)))
		}
		for r := 0; r < n; r++ {
			s := d.StateAt(base + r)
			if s.Kind != Move || s.From != c {
				t.Fatalf("block entry %d of cell %d = %v", r, c, s)
			}
			if s.To != g.Neighbors(c)[r] {
				t.Fatalf("block order mismatch for cell %d rank %d", c, r)
			}
		}
		total += n
	}
	if total != d.NumMoveStates() {
		t.Fatalf("sum of blocks %d ≠ NumMoveStates %d", total, d.NumMoveStates())
	}
}

func TestKindPredicates(t *testing.T) {
	g := newGrid(3)
	d := NewDomain(g)
	for idx := 0; idx < d.Size(); idx++ {
		s := d.StateAt(idx)
		if d.IsMove(idx) != (s.Kind == Move) {
			t.Fatalf("IsMove(%d) mismatch for %v", idx, s)
		}
		if d.IsEnter(idx) != (s.Kind == Enter) {
			t.Fatalf("IsEnter(%d) mismatch for %v", idx, s)
		}
		if d.IsQuit(idx) != (s.Kind == Quit) {
			t.Fatalf("IsQuit(%d) mismatch for %v", idx, s)
		}
	}
}

func TestEnterQuitIndexLayout(t *testing.T) {
	g := newGrid(3)
	d := NewDomain(g)
	for c := grid.Cell(0); int(c) < g.NumCells(); c++ {
		ei, qi := d.EnterIndex(c), d.QuitIndex(c)
		if got := d.StateAt(ei); got != EnterState(c) {
			t.Fatalf("StateAt(EnterIndex(%d)) = %v", c, got)
		}
		if got := d.StateAt(qi); got != QuitState(c) {
			t.Fatalf("StateAt(QuitIndex(%d)) = %v", c, got)
		}
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{MoveState(1, 2), "m(1→2)"},
		{EnterState(3), "e(3)"},
		{QuitState(4), "q(4)"},
		{State{Kind: Kind(7)}, "invalid"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if Kind(0).String() != "move" || Kind(1).String() != "enter" || Kind(2).String() != "quit" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("Kind(9).String() = %q", Kind(9).String())
	}
}

func TestK1Domain(t *testing.T) {
	g := newGrid(1)
	d := NewDomain(g)
	// 1 move (self-loop) + 1 enter + 1 quit.
	if d.Size() != 3 {
		t.Fatalf("K=1 Size = %d, want 3", d.Size())
	}
	idx, ok := d.MoveIndex(0, 0)
	if !ok || idx != 0 {
		t.Fatalf("self move index = %d,%v", idx, ok)
	}
}
