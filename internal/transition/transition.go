// Package transition defines the transition-state domain S = {m_ij} ∪ {e_i}
// ∪ {q_j} of paper §III-B: movement states between adjacent cells of a
// spatial.Discretizer (reachability constraint), entering states and
// quitting states, with a dense contiguous index space suitable for one-hot
// LDP encoding. The domain is built purely from the discretizer's adjacency
// lists, so any backend — uniform grid or adaptive quadtree — yields a
// valid, minimal state space.
package transition

import (
	"fmt"

	"retrasyn/internal/spatial"
)

// Kind discriminates the three transition families.
type Kind uint8

const (
	// Move is a movement m_ij from cell i to adjacent cell j (possibly i).
	Move Kind = iota
	// Enter is an entering event e_i: a new stream begins at cell i.
	Enter
	// Quit is a quitting event q_j: a stream ends with final location j.
	Quit
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Move:
		return "move"
	case Enter:
		return "enter"
	case Quit:
		return "quit"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// State is one transition state. For Move, From and To are both set; for
// Enter only To (the starting cell) is meaningful; for Quit only From (the
// final cell) is meaningful. Unused fields hold spatial.Invalid.
type State struct {
	Kind Kind
	From spatial.Cell
	To   spatial.Cell
}

// MoveState constructs a movement state.
func MoveState(from, to spatial.Cell) State {
	return State{Kind: Move, From: from, To: to}
}

// EnterState constructs an entering state at cell c.
func EnterState(c spatial.Cell) State {
	return State{Kind: Enter, From: spatial.Invalid, To: c}
}

// QuitState constructs a quitting state at cell c.
func QuitState(c spatial.Cell) State {
	return State{Kind: Quit, From: c, To: spatial.Invalid}
}

// String implements fmt.Stringer.
func (s State) String() string {
	switch s.Kind {
	case Move:
		return fmt.Sprintf("m(%d→%d)", s.From, s.To)
	case Enter:
		return fmt.Sprintf("e(%d)", s.To)
	case Quit:
		return fmt.Sprintf("q(%d)", s.From)
	default:
		return "invalid"
	}
}

// Domain is the dense index space over S for a given discretization. Layout:
//
//	[0, nMove)                    movement states, grouped by source cell in
//	                              neighbour-rank order
//	[nMove, nMove+|C|)            entering states e_0 … e_{|C|−1}
//	[nMove+|C|, nMove+2|C|)       quitting states q_0 … q_{|C|−1}
//
// The movement block for source cell c starts at moveBase[c] and has
// len(Neighbors(c)) entries. The domain is immutable and safe for concurrent
// use. With or without enter/quit states (the NoEQ ablation and the LDP-IDS
// baselines use a movement-only domain).
type Domain struct {
	sp        spatial.Discretizer
	moveBase  []int // per source cell, start of its movement block
	nMove     int
	enterBase int // -1 when EQ states are disabled
	quitBase  int
	size      int
	states    []State // index → state
}

// NewDomain builds the full domain including entering/quitting states.
func NewDomain(sp spatial.Discretizer) *Domain {
	return newDomain(sp, true)
}

// NewMoveOnlyDomain builds a domain restricted to movement states, used by
// the NoEQ ablation and the LDP-IDS baselines.
func NewMoveOnlyDomain(sp spatial.Discretizer) *Domain {
	return newDomain(sp, false)
}

func newDomain(sp spatial.Discretizer, withEQ bool) *Domain {
	nc := sp.NumCells()
	d := &Domain{
		sp:        sp,
		moveBase:  make([]int, nc),
		enterBase: -1,
		quitBase:  -1,
	}
	off := 0
	for c := 0; c < nc; c++ {
		d.moveBase[c] = off
		off += len(sp.Neighbors(spatial.Cell(c)))
	}
	d.nMove = off
	d.size = off
	if withEQ {
		d.enterBase = d.size
		d.size += nc
		d.quitBase = d.size
		d.size += nc
	}
	d.states = make([]State, d.size)
	for c := 0; c < nc; c++ {
		for r, to := range sp.Neighbors(spatial.Cell(c)) {
			d.states[d.moveBase[c]+r] = MoveState(spatial.Cell(c), to)
		}
	}
	if withEQ {
		for c := 0; c < nc; c++ {
			d.states[d.enterBase+c] = EnterState(spatial.Cell(c))
			d.states[d.quitBase+c] = QuitState(spatial.Cell(c))
		}
	}
	return d
}

// Space returns the underlying spatial discretization.
func (d *Domain) Space() spatial.Discretizer { return d.sp }

// Size returns |S|.
func (d *Domain) Size() int { return d.size }

// NumMoveStates returns the number of movement states.
func (d *Domain) NumMoveStates() int { return d.nMove }

// HasEQ reports whether entering/quitting states are part of the domain.
func (d *Domain) HasEQ() bool { return d.enterBase >= 0 }

// MoveIndex returns the index of m(from→to), or (-1, false) when the
// transition violates the reachability constraint.
func (d *Domain) MoveIndex(from, to spatial.Cell) (int, bool) {
	r := d.sp.NeighborRank(from, to)
	if r < 0 {
		return -1, false
	}
	return d.moveBase[from] + r, true
}

// MoveBlock returns the index range [base, base+n) of movement states whose
// source is cell c; states within the block are ordered by neighbour rank.
func (d *Domain) MoveBlock(c spatial.Cell) (base, n int) {
	return d.moveBase[c], len(d.sp.Neighbors(c))
}

// EnterIndex returns the index of e_c. It panics when the domain has no
// enter/quit states.
func (d *Domain) EnterIndex(c spatial.Cell) int {
	if d.enterBase < 0 {
		panic("transition: domain has no entering states")
	}
	return d.enterBase + int(c)
}

// QuitIndex returns the index of q_c. It panics when the domain has no
// enter/quit states.
func (d *Domain) QuitIndex(c spatial.Cell) int {
	if d.quitBase < 0 {
		panic("transition: domain has no quitting states")
	}
	return d.quitBase + int(c)
}

// Index maps a State to its domain index. ok is false for states outside the
// domain (unreachable moves, or enter/quit in a movement-only domain).
func (d *Domain) Index(s State) (idx int, ok bool) {
	switch s.Kind {
	case Move:
		if !d.sp.ValidCell(s.From) || !d.sp.ValidCell(s.To) {
			return -1, false
		}
		return d.MoveIndex(s.From, s.To)
	case Enter:
		if d.enterBase < 0 || !d.sp.ValidCell(s.To) {
			return -1, false
		}
		return d.enterBase + int(s.To), true
	case Quit:
		if d.quitBase < 0 || !d.sp.ValidCell(s.From) {
			return -1, false
		}
		return d.quitBase + int(s.From), true
	default:
		return -1, false
	}
}

// StateAt returns the State for a domain index; it panics on out-of-range
// indices.
func (d *Domain) StateAt(idx int) State {
	return d.states[idx]
}

// IsMove reports whether idx is a movement state.
func (d *Domain) IsMove(idx int) bool { return idx < d.nMove }

// IsEnter reports whether idx is an entering state.
func (d *Domain) IsEnter(idx int) bool {
	return d.enterBase >= 0 && idx >= d.enterBase && idx < d.enterBase+d.sp.NumCells()
}

// IsQuit reports whether idx is a quitting state.
func (d *Domain) IsQuit(idx int) bool {
	return d.quitBase >= 0 && idx >= d.quitBase
}
