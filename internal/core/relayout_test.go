package core

import (
	"math"
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

// cloneLayout rebuilds a layout-identical copy of a quadtree through the
// split-mask codec — a distinct object with an equal fingerprint, exactly
// what "migrating to an identical layout" means.
func cloneLayout(t *testing.T, q *spatial.Quadtree) *spatial.Quadtree {
	t.Helper()
	c, err := spatial.NewQuadtreeFromSplits(q.Bounds(), q.SplitMask())
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() != q.Fingerprint() {
		t.Fatalf("clone fingerprint drifted")
	}
	return c
}

// shiftedQuadtree grows a tree whose hotspot sits in the opposite corner of
// the test quadtree's, giving migrations a genuinely different target.
func shiftedQuadtree(t *testing.T) *spatial.Quadtree {
	t.Helper()
	rng := ldp.NewRand(991, 992)
	pts := make([]spatial.Point, 0, 3000)
	for i := 0; i < 3000; i++ {
		if i%5 == 0 {
			pts = append(pts, spatial.Point{X: rng.Float64(), Y: rng.Float64()})
		} else {
			pts = append(pts, spatial.Point{X: 0.7 + rng.Float64()*0.3, Y: 0.7 + rng.Float64()*0.3})
		}
	}
	qt, err := spatial.NewQuadtree(spatial.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, pts,
		spatial.QuadtreeOptions{MaxLeaves: 28})
	if err != nil {
		t.Fatal(err)
	}
	return qt
}

// TestRelayoutIdenticalLayoutIsBitIdentical is the golden migration
// invariant: migrating mid-stream onto a layout-identical discretizer leaves
// the release bit-identical to a run that never migrated — the overlap
// matrix is exactly the identity, so nothing in the randomness stream or the
// state vectors may move.
func TestRelayoutIdenticalLayoutIsBitIdentical(t *testing.T) {
	qt := testQuadtree(t)
	data := walkDataset(qt, 300, 40, 8, 53)
	stream := trajectory.NewStream(data)
	for _, div := range []allocation.Division{allocation.Population, allocation.Budget} {
		run := func(migrateAt int) uint64 {
			opts := defaultOpts(div)
			opts.Strategy = allocation.NewAdaptive(div)
			opts.Space = qt
			opts.Seed = 4242
			e, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			for ts := 0; ts < stream.T; ts++ {
				if migrateAt == ts {
					if err := e.Relayout(cloneLayout(t, qt)); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := e.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
					t.Fatal(err)
				}
			}
			return datasetHash(e.Synthetic("golden", stream.T))
		}
		plain := run(-1)
		migrated := run(stream.T / 2)
		if plain != migrated {
			t.Fatalf("division %v: identity migration drifted the release: %#x ≠ %#x", div, migrated, plain)
		}
	}
}

// TestRelayoutMigratesModelMass pins that a real cross-layout migration
// conserves the mobility model's total mass within 1e-9 and leaves the
// engine fully functional on the new domain.
func TestRelayoutMigratesModelMass(t *testing.T) {
	qt := testQuadtree(t)
	target := shiftedQuadtree(t)
	data := walkDataset(qt, 300, 40, 8, 54)
	stream := trajectory.NewStream(data)
	opts := defaultOpts(allocation.Population)
	opts.Space = qt
	opts.Seed = 7
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	half := stream.T / 2
	for ts := 0; ts < half; ts++ {
		if _, err := e.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	before := 0.0
	for _, f := range e.Model().Freqs() {
		before += f
	}
	if err := e.Relayout(target); err != nil {
		t.Fatal(err)
	}
	if e.Generation() != 1 {
		t.Fatalf("generation = %d after one migration", e.Generation())
	}
	if e.Space().Fingerprint() != target.Fingerprint() {
		t.Fatal("engine space did not switch")
	}
	if e.Domain().Space().Fingerprint() != target.Fingerprint() {
		t.Fatal("transition domain did not switch")
	}
	after := 0.0
	for _, f := range e.Model().Freqs() {
		after += f
	}
	if math.Abs(after-before) > 1e-9 {
		t.Fatalf("model mass not conserved across migration: %v → %v", before, after)
	}
	// The migrated engine keeps processing; events are re-discretized by the
	// caller in production, here the walk cells of the old tree are remapped
	// by feeding a fresh walk over the new tree's cells.
	tail := trajectory.NewStream(walkDataset(target, 300, stream.T, 8, 55))
	for ts := half; ts < tail.T; ts++ {
		if _, err := e.ProcessTimestamp(ts, tail.At(ts), tail.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	syn := e.Synthetic("migrated", tail.T)
	if err := syn.Validate(target, true); err != nil {
		t.Fatalf("post-migration release violates the new layout: %v", err)
	}
	if e.Stats().Relayouts != 1 {
		t.Fatalf("stats recorded %d relayouts, want 1", e.Stats().Relayouts)
	}
}

// TestRelayoutSnapshotRoundTrip pins checkpointing across migrations: an
// engine snapshotted AFTER a cross-layout migration restores into a fresh
// engine built with the boot options, and both continue bit-identically.
func TestRelayoutSnapshotRoundTrip(t *testing.T) {
	qt := testQuadtree(t)
	target := shiftedQuadtree(t)
	dataA := walkDataset(qt, 250, 30, 7, 61)
	streamA := trajectory.NewStream(dataA)
	dataB := walkDataset(target, 250, 30, 7, 62)
	streamB := trajectory.NewStream(dataB)

	newEngine := func() *Engine {
		opts := defaultOpts(allocation.Population)
		opts.Space = qt
		opts.Seed = 333
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	first := newEngine()
	half := streamA.T / 2
	for ts := 0; ts < half; ts++ {
		if _, err := first.ProcessTimestamp(ts, streamA.At(ts), streamA.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	if err := first.Relayout(target); err != nil {
		t.Fatal(err)
	}
	blob, err := first.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	for ts := half; ts < streamB.T; ts++ {
		if _, err := first.ProcessTimestamp(ts, streamB.At(ts), streamB.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}

	resumed := newEngine()
	if err := resumed.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != 1 || resumed.Space().Fingerprint() != target.Fingerprint() {
		t.Fatalf("restore did not adopt the migrated layout (gen %d)", resumed.Generation())
	}
	for ts := half; ts < streamB.T; ts++ {
		if _, err := resumed.ProcessTimestamp(ts, streamB.At(ts), streamB.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	want := datasetHash(first.Synthetic("x", streamB.T))
	got := datasetHash(resumed.Synthetic("x", streamB.T))
	if got != want {
		t.Fatalf("resumed release drifted across the migrated checkpoint: %#x ≠ %#x", got, want)
	}

	// A pre-migration snapshot restores into an engine that already migrated
	// (rolling back onto the boot layout).
	preBlob := func() []byte {
		e := newEngine()
		for ts := 0; ts < half; ts++ {
			if _, err := e.ProcessTimestamp(ts, streamA.At(ts), streamA.Active[ts]); err != nil {
				t.Fatal(err)
			}
		}
		b, err := e.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}()
	rolled := newEngine()
	if err := rolled.Relayout(target); err != nil {
		t.Fatal(err)
	}
	if err := rolled.RestoreState(preBlob); err != nil {
		t.Fatal(err)
	}
	if rolled.Generation() != 0 || rolled.Space().Fingerprint() != qt.Fingerprint() {
		t.Fatal("restore of a generation-0 snapshot did not roll back to the boot layout")
	}
}
