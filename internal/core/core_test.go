package core

import (
	"math"
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

func testGrid() *grid.System {
	return grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

// walkDataset builds a random-walk cell dataset with entering/quitting churn
// over any spatial discretization.
func walkDataset(g spatial.Discretizer, users, T int, meanLen float64, seed uint64) *trajectory.Dataset {
	rng := ldp.NewRand(seed, seed+1)
	d := &trajectory.Dataset{Name: "walk", T: T}
	for u := 0; u < users; u++ {
		start := rng.IntN(T)
		c := spatial.Cell(rng.IntN(g.NumCells()))
		cells := []spatial.Cell{c}
		for t := start + 1; t < T; t++ {
			if rng.Float64() < 1/meanLen {
				break
			}
			ns := g.Neighbors(c)
			c = ns[rng.IntN(len(ns))]
			cells = append(cells, c)
		}
		d.Trajs = append(d.Trajs, trajectory.CellTrajectory{Start: start, Cells: cells})
	}
	return d
}

func defaultOpts(div allocation.Division) Options {
	return Options{
		Space:    testGrid(),
		Epsilon:  1.0,
		W:        5,
		Division: div,
		Lambda:   6,
		Seed:     42,
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Options)
	}{
		{"nil space", func(o *Options) { o.Space = nil }},
		{"zero epsilon", func(o *Options) { o.Epsilon = 0 }},
		{"negative epsilon", func(o *Options) { o.Epsilon = -1 }},
		{"zero w", func(o *Options) { o.W = 0 }},
		{"zero lambda with EQ", func(o *Options) { o.Lambda = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			opts := defaultOpts(allocation.Population)
			tt.mutate(&opts)
			if _, err := New(opts); err == nil {
				t.Fatal("want error")
			}
		})
	}
	// NoEQ tolerates Lambda=0.
	opts := defaultOpts(allocation.Budget)
	opts.Lambda = 0
	opts.DisableEQ = true
	if _, err := New(opts); err != nil {
		t.Fatalf("NoEQ with zero lambda rejected: %v", err)
	}
}

func TestRunProducesValidSynthetic(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 300, 40, 8, 7)
	stream := trajectory.NewStream(data)
	for _, div := range []allocation.Division{allocation.Budget, allocation.Population} {
		opts := defaultOpts(div)
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		syn, stats := e.Run(stream, "syn")
		if err := syn.Validate(g, true); err != nil {
			t.Fatalf("%v: invalid synthetic dataset: %v", div, err)
		}
		if stats.Timestamps != data.T {
			t.Fatalf("%v: processed %d timestamps", div, stats.Timestamps)
		}
		if stats.Rounds == 0 || stats.TotalReports == 0 {
			t.Fatalf("%v: no collection happened: %+v", div, stats)
		}
	}
}

func TestSyntheticSizeTracksRealSize(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 400, 40, 10, 11)
	stream := trajectory.NewStream(data)
	e, _ := New(defaultOpts(allocation.Population))
	syn, _ := e.Run(stream, "syn")
	// The size-adjustment guarantee: per-timestamp active counts match.
	synCounts := syn.ActiveCounts()
	for tt, want := range stream.Active {
		if synCounts[tt] != want {
			t.Fatalf("t=%d: synthetic active %d, real %d", tt, synCounts[tt], want)
		}
	}
}

func TestBudgetDivisionWindowInvariant(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 250, 60, 9, 13)
	stream := trajectory.NewStream(data)
	for _, strat := range []allocation.Strategy{
		allocation.NewAdaptive(allocation.Budget),
		&allocation.Uniform{Division: allocation.Budget},
		&allocation.Sample{Division: allocation.Budget},
	} {
		opts := defaultOpts(allocation.Budget)
		opts.Strategy = strat
		e, _ := New(opts)
		e.Run(stream, "syn")
		// w-event ε-LDP for budget division: every user reports at every
		// timestamp it is present, so the per-user window sum is bounded by
		// the global per-timestamp budget sum.
		if got := e.Ledger().MaxWindowSum(opts.W); got > opts.Epsilon+1e-9 {
			t.Fatalf("%s: window budget %v exceeds ε=%v", strat.Name(), got, opts.Epsilon)
		}
	}
}

func TestPopulationDivisionUserInvariant(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 250, 60, 9, 17)
	stream := trajectory.NewStream(data)
	for _, strat := range []allocation.Strategy{
		allocation.NewAdaptive(allocation.Population),
		&allocation.Uniform{Division: allocation.Population},
		&allocation.Sample{Division: allocation.Population},
	} {
		opts := defaultOpts(allocation.Population)
		opts.Strategy = strat
		e, _ := New(opts)
		e.Run(stream, "syn")
		// w-event ε-LDP for population division: no user spends more than ε
		// within any window of w timestamps.
		got := e.Ledger().MaxUserWindowSum(opts.W, func(int) float64 { return opts.Epsilon })
		if got > opts.Epsilon+1e-9 {
			t.Fatalf("%s: per-user window budget %v exceeds ε=%v", strat.Name(), got, opts.Epsilon)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 150, 30, 8, 23)
	stream := trajectory.NewStream(data)
	run := func() *trajectory.Dataset {
		e, _ := New(defaultOpts(allocation.Population))
		syn, _ := e.Run(stream, "syn")
		return syn
	}
	a, b := run(), run()
	if len(a.Trajs) != len(b.Trajs) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a.Trajs), len(b.Trajs))
	}
	for i := range a.Trajs {
		if a.Trajs[i].Start != b.Trajs[i].Start || a.Trajs[i].Len() != b.Trajs[i].Len() {
			t.Fatalf("non-deterministic stream %d", i)
		}
		for j := range a.Trajs[i].Cells {
			if a.Trajs[i].Cells[j] != b.Trajs[i].Cells[j] {
				t.Fatalf("non-deterministic cell %d of stream %d", j, i)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 150, 30, 8, 29)
	stream := trajectory.NewStream(data)
	run := func(seed uint64) *trajectory.Dataset {
		opts := defaultOpts(allocation.Population)
		opts.Seed = seed
		e, _ := New(opts)
		syn, _ := e.Run(stream, "syn")
		return syn
	}
	a, b := run(1), run(2)
	same := len(a.Trajs) == len(b.Trajs)
	if same {
		for i := range a.Trajs {
			if a.Trajs[i].Len() != b.Trajs[i].Len() {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical shape (suspicious)")
	}
}

func TestNoEQAblation(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 300, 30, 8, 31)
	stream := trajectory.NewStream(data)
	opts := defaultOpts(allocation.Population)
	opts.DisableEQ = true
	opts.Lambda = 0 // unused
	e, _ := New(opts)
	syn, _ := e.Run(stream, "syn")
	if e.Domain().HasEQ() {
		t.Fatal("NoEQ engine has EQ states in its domain")
	}
	// NoEQ streams never terminate: all spans end at the final timestamp.
	for _, tr := range syn.Trajs {
		if tr.End() != data.T-1 {
			t.Fatalf("NoEQ stream ends at %d, want %d", tr.End(), data.T-1)
		}
	}
	// Population is fixed at its initialization size.
	sizes := map[int]bool{}
	for _, tr := range syn.Trajs {
		sizes[tr.Start] = true
	}
	if len(sizes) != 1 {
		t.Fatalf("NoEQ streams started at %d distinct timestamps, want 1", len(sizes))
	}
}

func TestAllUpdateAblationSelectsEverything(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 300, 30, 8, 37)
	stream := trajectory.NewStream(data)
	opts := defaultOpts(allocation.Population)
	opts.DisableDMU = true
	e, _ := New(opts)
	domainSize := e.Domain().Size()
	sawRound := false
	for tt := 0; tt < data.T; tt++ {
		res, _ := e.ProcessTimestamp(tt, stream.At(tt), stream.Active[tt])
		if res.Reported {
			sawRound = true
			if res.NumSignificant != domainSize {
				t.Fatalf("AllUpdate selected %d of %d", res.NumSignificant, domainSize)
			}
		}
	}
	if !sawRound {
		t.Fatal("no rounds happened")
	}
}

func TestDMUSelectsSubset(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 300, 40, 8, 41)
	stream := trajectory.NewStream(data)
	e, _ := New(defaultOpts(allocation.Population))
	domainSize := e.Domain().Size()
	partial := false
	for tt := 0; tt < data.T; tt++ {
		res, _ := e.ProcessTimestamp(tt, stream.At(tt), stream.Active[tt])
		if res.Reported && res.NumSignificant < domainSize && res.NumSignificant >= 0 {
			partial = true
		}
	}
	if !partial {
		t.Fatal("DMU never made a partial selection — suspicious for noisy estimates")
	}
}

func TestAggregateMatchesPerUserQuality(t *testing.T) {
	// Both oracle modes should yield synthetic data of comparable density
	// fidelity; this is a smoke-level statistical check.
	g := testGrid()
	data := walkDataset(g, 500, 30, 10, 43)
	stream := trajectory.NewStream(data)
	density := func(d *trajectory.Dataset) []float64 {
		counts := make([]float64, g.NumCells())
		for _, tr := range d.Trajs {
			for _, c := range tr.Cells {
				counts[c]++
			}
		}
		total := 0.0
		for _, c := range counts {
			total += c
		}
		if total > 0 {
			for i := range counts {
				counts[i] /= total
			}
		}
		return counts
	}
	l1 := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	}
	ref := density(data)
	var errs [2]float64
	for i, mode := range []OracleMode{PerUser, Aggregate} {
		opts := defaultOpts(allocation.Population)
		opts.OracleMode = mode
		e, _ := New(opts)
		syn, _ := e.Run(stream, "syn")
		errs[i] = l1(ref, density(syn))
	}
	if math.Abs(errs[0]-errs[1]) > 0.5 {
		t.Fatalf("oracle modes diverge: per-user L1=%v aggregate L1=%v", errs[0], errs[1])
	}
}

func TestTimingsAccumulate(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 200, 30, 8, 47)
	stream := trajectory.NewStream(data)
	opts := defaultOpts(allocation.Population)
	opts.OracleMode = PerUser
	e, _ := New(opts)
	_, stats := e.Run(stream, "syn")
	if stats.Timings.UserSide <= 0 {
		t.Error("user-side timing not recorded")
	}
	if stats.Timings.ModelConstruction <= 0 {
		t.Error("model construction timing not recorded")
	}
	if stats.Timings.Synthesis <= 0 {
		t.Error("synthesis timing not recorded")
	}
	if stats.Timings.Total() <= 0 {
		t.Error("total timing not positive")
	}
}

func TestEmptyStream(t *testing.T) {
	d := &trajectory.Dataset{Name: "empty", T: 10}
	stream := trajectory.NewStream(d)
	e, _ := New(defaultOpts(allocation.Population))
	syn, stats := e.Run(stream, "syn")
	if len(syn.Trajs) != 0 {
		t.Fatalf("empty stream produced %d synthetic streams", len(syn.Trajs))
	}
	if stats.Rounds != 0 {
		t.Fatalf("empty stream ran %d rounds", stats.Rounds)
	}
}

func TestAllUsersQuitMidStream(t *testing.T) {
	// Everyone quits at t=10; the engine must keep running and the synthetic
	// population must drain to zero.
	g := testGrid()
	d := &trajectory.Dataset{Name: "quitall", T: 20}
	for u := 0; u < 100; u++ {
		cells := make([]grid.Cell, 10)
		c := grid.Cell(u % g.NumCells())
		for i := range cells {
			cells[i] = c
		}
		d.Trajs = append(d.Trajs, trajectory.CellTrajectory{Start: 0, Cells: cells})
	}
	stream := trajectory.NewStream(d)
	e, _ := New(defaultOpts(allocation.Population))
	syn, _ := e.Run(stream, "syn")
	counts := syn.ActiveCounts()
	for tt := 10; tt < 20; tt++ {
		if counts[tt] != 0 {
			t.Fatalf("t=%d: %d synthetic streams alive after all users quit", tt, counts[tt])
		}
	}
}

func TestAdaptiveRecoversFromStarvedRounds(t *testing.T) {
	// With a small population, heavy adaptive sampling starves the eligible
	// pool; after recycling the strategy must resume collecting rather than
	// deadlock at Dev=0 (regression: Eq. 9 must track collected rounds, not
	// the frozen model).
	g := testGrid()
	data := walkDataset(g, 400, 120, 30, 59)
	stream := trajectory.NewStream(data)
	opts := defaultOpts(allocation.Population)
	opts.W = 10
	e, _ := New(opts)
	lastRound := -1
	for tt := 0; tt < data.T; tt++ {
		res, _ := e.ProcessTimestamp(tt, stream.At(tt), stream.Active[tt])
		if res.Reported {
			lastRound = tt
		}
	}
	if lastRound < data.T-2*opts.W {
		t.Fatalf("collection stopped at t=%d of %d — adaptive strategy deadlocked", lastRound, data.T)
	}
	if e.Stats().Rounds < data.T/4 {
		t.Fatalf("only %d rounds over %d timestamps", e.Stats().Rounds, data.T)
	}
}

func TestBootstrapForcesFirstRound(t *testing.T) {
	// The adaptive strategy sees Dev=0 at t=0 and would stay silent; the
	// engine must bootstrap with 1/w resources (Alg. 1 line 2).
	g := testGrid()
	data := walkDataset(g, 200, 20, 8, 53)
	stream := trajectory.NewStream(data)
	e, _ := New(defaultOpts(allocation.Population))
	for tt := 0; tt < data.T; tt++ {
		res, _ := e.ProcessTimestamp(tt, stream.At(tt), stream.Active[tt])
		if len(stream.At(tt)) > 0 {
			if !res.Reported {
				t.Fatalf("first populated timestamp %d did not bootstrap", tt)
			}
			break
		}
	}
}
