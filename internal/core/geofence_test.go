package core

import (
	"math"
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/geofence"
	"retrasyn/internal/trajectory"
)

// testFence builds a connected district fence over the unit square: two base
// rectangles, a triangle and a quad sharing boundary edges, with gaps the
// fence deliberately excludes. Its polygon hull spans the full unit bounds,
// so it can migrate against the quadtree layouts of the relayout tests.
func testFence(t *testing.T) *geofence.Fence {
	t.Helper()
	f, err := geofence.NewFence([]geofence.Polygon{
		{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.5, Y: 0.4}, {X: 0, Y: 0.4}},
		{{X: 0.5, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0.4}, {X: 0.5, Y: 0.4}},
		{{X: 0, Y: 0.4}, {X: 0.5, Y: 0.4}, {X: 0, Y: 1}},
		{{X: 0.5, Y: 0.4}, {X: 1, Y: 0.4}, {X: 1, Y: 1}, {X: 0.75, Y: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestGeofenceEngineEndToEnd runs the full engine over a polygonal fence:
// the release must satisfy the fence's shared-edge reachability and the run
// must be deterministic for a fixed seed.
func TestGeofenceEngineEndToEnd(t *testing.T) {
	fence := testFence(t)
	data := walkDataset(fence, 300, 40, 8, 71)
	run := func() uint64 {
		opts := defaultOpts(allocation.Population)
		opts.Space = fence
		opts.Seed = 909
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		syn, stats := e.Run(trajectory.NewStream(data), "fence")
		if stats.Rounds == 0 {
			t.Fatal("no collection rounds on the geofence engine")
		}
		if err := syn.Validate(fence, true); err != nil {
			t.Fatalf("geofence release violates reachability: %v", err)
		}
		return datasetHash(syn)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("geofence run not deterministic: %#x vs %#x", a, b)
	}
}

// TestGeofenceSnapshotRoundTrip proves checkpoint/restore stays bit-identical
// on the polygonal backend.
func TestGeofenceSnapshotRoundTrip(t *testing.T) {
	fence := testFence(t)
	data := walkDataset(fence, 250, 30, 7, 72)
	stream := trajectory.NewStream(data)
	newEngine := func() *Engine {
		opts := defaultOpts(allocation.Population)
		opts.Space = fence
		opts.Seed = 515
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	full := newEngine()
	for ts := 0; ts < stream.T; ts++ {
		if _, err := full.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	want := datasetHash(full.Synthetic("fence", stream.T))

	half := stream.T / 2
	donor := newEngine()
	for ts := 0; ts < half; ts++ {
		if _, err := donor.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := donor.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	resumed := newEngine()
	if err := resumed.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	for ts := half; ts < stream.T; ts++ {
		if _, err := resumed.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	if got := datasetHash(resumed.Synthetic("fence", stream.T)); got != want {
		t.Fatalf("resumed geofence release drifted: got %#x, want %#x", got, want)
	}
}

// TestGeofenceRelayoutSnapshotRoundTrip pins checkpointing across a
// migration ONTO a fence: the checkpoint embeds the serialized polygon set,
// and the restore rebuilds the exact layout (fingerprint-verified) and
// continues bit-identically.
func TestGeofenceRelayoutSnapshotRoundTrip(t *testing.T) {
	qt := testQuadtree(t)
	fence := testFence(t)
	dataA := walkDataset(qt, 250, 30, 7, 81)
	streamA := trajectory.NewStream(dataA)
	dataB := walkDataset(fence, 250, 30, 7, 82)
	streamB := trajectory.NewStream(dataB)

	newEngine := func() *Engine {
		opts := defaultOpts(allocation.Population)
		opts.Space = qt
		opts.Seed = 616
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	first := newEngine()
	half := streamA.T / 2
	for ts := 0; ts < half; ts++ {
		if _, err := first.ProcessTimestamp(ts, streamA.At(ts), streamA.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	before := 0.0
	for _, f := range first.Model().Freqs() {
		before += f
	}
	if err := first.Relayout(fence); err != nil {
		t.Fatal(err)
	}
	after := 0.0
	for _, f := range first.Model().Freqs() {
		after += f
	}
	if math.Abs(after-before) > 1e-9 {
		t.Fatalf("mass not conserved migrating onto the fence: %v → %v", before, after)
	}
	blob, err := first.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	for ts := half; ts < streamB.T; ts++ {
		if _, err := first.ProcessTimestamp(ts, streamB.At(ts), streamB.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}

	resumed := newEngine()
	if err := resumed.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != 1 || resumed.Space().Fingerprint() != fence.Fingerprint() {
		t.Fatalf("restore did not adopt the fence layout (gen %d, fp %s)", resumed.Generation(), resumed.Space().Fingerprint())
	}
	for ts := half; ts < streamB.T; ts++ {
		if _, err := resumed.ProcessTimestamp(ts, streamB.At(ts), streamB.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	want := datasetHash(first.Synthetic("x", streamB.T))
	got := datasetHash(resumed.Synthetic("x", streamB.T))
	if got != want {
		t.Fatalf("resumed release drifted across the fence-migrated checkpoint: %#x ≠ %#x", got, want)
	}
	// Every released cell is a fence cell. (Full adjacency is not required
	// of the pre-migration history: the in-flight remap maps each historical
	// cell to its max-overlap fence cell, and a step across a fence gap has
	// no adjacent pair to land on.)
	if err := resumed.Synthetic("x", streamB.T).Validate(fence, false); err != nil {
		t.Fatalf("post-migration release contains non-fence cells: %v", err)
	}

	// And the reverse direction: an engine booted on the fence migrates back
	// onto the quadtree, conserving mass.
	rev, err := New(func() Options {
		o := defaultOpts(allocation.Population)
		o.Space = fence
		o.Seed = 617
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < half; ts++ {
		if _, err := rev.ProcessTimestamp(ts, streamB.At(ts), streamB.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	before = 0
	for _, f := range rev.Model().Freqs() {
		before += f
	}
	if err := rev.Relayout(qt); err != nil {
		t.Fatal(err)
	}
	after = 0
	for _, f := range rev.Model().Freqs() {
		after += f
	}
	if math.Abs(after-before) > 1e-9 {
		t.Fatalf("mass not conserved migrating off the fence: %v → %v", before, after)
	}
	if rev.Space().Fingerprint() != qt.Fingerprint() {
		t.Fatal("fence engine did not switch onto the quadtree")
	}
}
