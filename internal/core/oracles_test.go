package core

import (
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
)

func TestOracleKindString(t *testing.T) {
	tests := []struct {
		k    OracleKind
		want string
	}{
		{OracleOUE, "OUE"}, {OracleOLH, "OLH"}, {OracleGRR, "GRR"},
		{OracleKind(9), "OracleKind(9)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestAggregateModeRequiresOUE(t *testing.T) {
	opts := defaultOpts(allocation.Population)
	opts.OracleMode = Aggregate
	opts.Oracle = OracleOLH
	if _, err := New(opts); err == nil {
		t.Fatal("aggregate + OLH accepted")
	}
	opts.Oracle = OracleGRR
	if _, err := New(opts); err == nil {
		t.Fatal("aggregate + GRR accepted")
	}
	opts.Oracle = OracleOUE
	if _, err := New(opts); err != nil {
		t.Fatalf("aggregate + OUE rejected: %v", err)
	}
}

func TestEngineRunsWithEveryOracle(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 300, 30, 8, 61)
	stream := trajectory.NewStream(data)
	for _, kind := range []OracleKind{OracleOUE, OracleOLH, OracleGRR} {
		t.Run(kind.String(), func(t *testing.T) {
			opts := defaultOpts(allocation.Population)
			opts.Oracle = kind
			opts.OracleMode = PerUser
			e, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			syn, stats := e.Run(stream, "syn")
			if err := syn.Validate(g, true); err != nil {
				t.Fatalf("invalid output: %v", err)
			}
			if stats.Rounds == 0 {
				t.Fatal("no rounds")
			}
			// Per-user oracles must record user-side work.
			if stats.Timings.UserSide <= 0 {
				t.Fatal("no user-side timing recorded")
			}
		})
	}
}

func TestEngineRunsWithEveryPostProcess(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 300, 30, 8, 67)
	stream := trajectory.NewStream(data)
	for _, pp := range []ldp.PostProcess{
		ldp.PostProcessNone, ldp.PostProcessClamp,
		ldp.PostProcessNormSub, ldp.PostProcessNormMul,
	} {
		t.Run(pp.String(), func(t *testing.T) {
			opts := defaultOpts(allocation.Population)
			opts.PostProcess = pp
			e, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			syn, _ := e.Run(stream, "syn")
			if err := syn.Validate(g, true); err != nil {
				t.Fatalf("invalid output: %v", err)
			}
		})
	}
}

func TestNormSubModelIsDistribution(t *testing.T) {
	// With norm-sub post-processing, the model frequencies after every
	// update form a probability distribution (up to DMU partial updates
	// mixing rounds — the bootstrap round is fully normalized).
	g := testGrid()
	data := walkDataset(g, 300, 10, 8, 71)
	stream := trajectory.NewStream(data)
	opts := defaultOpts(allocation.Population)
	opts.PostProcess = ldp.PostProcessNormSub
	e, _ := New(opts)
	for tt := 0; tt < 2; tt++ {
		e.ProcessTimestamp(tt, stream.At(tt), stream.Active[tt])
	}
	sum := 0.0
	for _, f := range e.Model().Freqs() {
		if f < 0 {
			t.Fatalf("negative model frequency %v under norm-sub", f)
		}
		sum += f
	}
	if sum <= 0 {
		t.Fatal("empty model after bootstrap")
	}
}

func TestParallelSynthesisEngine(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 3000, 20, 12, 73)
	stream := trajectory.NewStream(data)
	opts := defaultOpts(allocation.Population)
	opts.SynthesisWorkers = 8
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	syn, _ := e.Run(stream, "syn")
	if err := syn.Validate(g, true); err != nil {
		t.Fatalf("parallel engine output invalid: %v", err)
	}
	// Size mirroring must survive parallel generation.
	counts := syn.ActiveCounts()
	for ts, want := range stream.Active {
		if counts[ts] != want {
			t.Fatalf("t=%d: synthetic active %d, real %d", ts, counts[ts], want)
		}
	}
}

func TestParallelEngineDeterministic(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 2500, 15, 10, 79)
	stream := trajectory.NewStream(data)
	run := func() int {
		opts := defaultOpts(allocation.Population)
		opts.SynthesisWorkers = 4
		e, _ := New(opts)
		syn, _ := e.Run(stream, "syn")
		sum := len(syn.Trajs)
		for _, tr := range syn.Trajs {
			sum = sum*31 + tr.Start + tr.Len()
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatal("parallel engine not deterministic")
	}
}
