package core

import (
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/grid"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// Failure-injection tests: degenerate grids, malformed event feeds and
// pathological streams must never corrupt the engine.

func TestEngineK1Grid(t *testing.T) {
	g := grid.MustNew(1, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	opts := Options{
		Space: g, Epsilon: 1, W: 3,
		Division: allocation.Population, Lambda: 4, Seed: 1,
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if e.Domain().Size() != 3 { // self-move + enter + quit
		t.Fatalf("K=1 domain size = %d", e.Domain().Size())
	}
	d := &trajectory.Dataset{T: 10}
	for u := 0; u < 50; u++ {
		d.Trajs = append(d.Trajs, trajectory.CellTrajectory{
			Start: u % 5, Cells: []grid.Cell{0, 0, 0}})
	}
	stream := trajectory.NewStream(d)
	syn, stats := e.Run(stream, "syn")
	if stats.Rounds == 0 {
		t.Fatal("no rounds on K=1 grid")
	}
	if err := syn.Validate(g, true); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSkipsUnreachableMoves(t *testing.T) {
	// A corrupted feed reporting non-adjacent moves: such events carry no
	// valid transition state and must be dropped, not crash the engine.
	g := testGrid() // K=4
	e, _ := New(defaultOpts(allocation.Population))
	events := []trajectory.Event{
		{User: 1, State: transition.MoveState(g.CellAt(0, 0), g.CellAt(3, 3))}, // unreachable
		{User: 2, State: transition.MoveState(g.CellAt(0, 0), g.CellAt(0, 1))}, // fine
		{User: 3, State: transition.EnterState(g.CellAt(2, 2))},                // fine
	}
	res, _ := e.ProcessTimestamp(0, events, 3)
	if !res.Reported {
		t.Fatal("valid events not collected")
	}
	if res.NumReporters > 2 {
		t.Fatalf("unreachable move was collected: %d reporters", res.NumReporters)
	}
}

func TestEngineInvalidCellEvents(t *testing.T) {
	e, _ := New(defaultOpts(allocation.Population))
	events := []trajectory.Event{
		{User: 1, State: transition.MoveState(grid.Invalid, 0)},
		{User: 2, State: transition.EnterState(grid.Cell(9999))},
		{User: 3, State: transition.State{Kind: transition.Kind(7)}},
	}
	res, _ := e.ProcessTimestamp(0, events, 0)
	if res.Reported {
		t.Fatal("garbage events produced a collection round")
	}
}

func TestEngineNonMonotoneTimestampErrors(t *testing.T) {
	e, _ := New(defaultOpts(allocation.Population))
	if _, err := e.ProcessTimestamp(0, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProcessTimestamp(1, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProcessTimestamp(1, nil, 0); err == nil {
		t.Fatal("repeated timestamp did not error")
	}
	if _, err := e.ProcessTimestamp(0, nil, 0); err == nil {
		t.Fatal("past timestamp did not error")
	}
	// The rejected timestamps must not corrupt the stream position: the
	// next in-order timestamp still processes.
	if _, err := e.ProcessTimestamp(2, nil, 0); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Timestamps != 3 {
		t.Fatalf("timestamps = %d, want 3", e.Stats().Timestamps)
	}
}

func TestEngineTimestampGapsAllowed(t *testing.T) {
	// Gaps (e.g. the feed skips empty timestamps) are fine as long as
	// timestamps increase.
	e, _ := New(defaultOpts(allocation.Population))
	e.ProcessTimestamp(0, nil, 0)
	e.ProcessTimestamp(5, nil, 0)
	e.ProcessTimestamp(100, nil, 0)
	if e.Stats().Timestamps != 3 {
		t.Fatalf("timestamps = %d", e.Stats().Timestamps)
	}
}

func TestEngineQuitForUnknownUser(t *testing.T) {
	// A quit event for a user the tracker never saw (e.g. the user entered
	// before the engine started) must register and retire the user cleanly.
	g := testGrid()
	e, _ := New(defaultOpts(allocation.Population))
	events := []trajectory.Event{
		{User: 42, State: transition.QuitState(g.CellAt(1, 1))},
	}
	e.ProcessTimestamp(0, events, 0)
	// The user must not be sampleable afterwards.
	events2 := []trajectory.Event{
		{User: 42, State: transition.MoveState(g.CellAt(1, 1), g.CellAt(1, 2))},
	}
	res, _ := e.ProcessTimestamp(1, events2, 1)
	if res.NumReporters > 0 {
		t.Fatal("quitted user was sampled again")
	}
}

func TestEngineSingleUser(t *testing.T) {
	g := testGrid()
	d := &trajectory.Dataset{T: 30}
	cells := make([]grid.Cell, 30)
	c := g.CellAt(1, 1)
	for i := range cells {
		cells[i] = c
	}
	d.Trajs = []trajectory.CellTrajectory{{Start: 0, Cells: cells}}
	e, _ := New(defaultOpts(allocation.Population))
	syn, _ := e.Run(trajectory.NewStream(d), "syn")
	if err := syn.Validate(g, true); err != nil {
		t.Fatal(err)
	}
	// Size adjustment tracks the single user.
	counts := syn.ActiveCounts()
	for ts := 0; ts < 30; ts++ {
		if counts[ts] != 1 {
			t.Fatalf("t=%d: active %d, want 1", ts, counts[ts])
		}
	}
}

func TestEngineHugeChurn(t *testing.T) {
	// Every user lives exactly one timestamp: only enter and quit states
	// ever exist; movement frequencies stay empty and synthesis must still
	// produce a valid (enter-heavy) release.
	g := testGrid()
	d := &trajectory.Dataset{T: 20}
	id := 0
	for ts := 0; ts < 20; ts++ {
		for i := 0; i < 30; i++ {
			d.Trajs = append(d.Trajs, trajectory.CellTrajectory{
				Start: ts, Cells: []grid.Cell{grid.Cell(id % g.NumCells())}})
			id++
		}
	}
	e, _ := New(defaultOpts(allocation.Population))
	syn, _ := e.Run(trajectory.NewStream(d), "syn")
	if err := syn.Validate(g, true); err != nil {
		t.Fatal(err)
	}
	counts := syn.ActiveCounts()
	for ts, want := range d.ActiveCounts() {
		if counts[ts] != want {
			t.Fatalf("t=%d: active %d, want %d", ts, counts[ts], want)
		}
	}
}

func TestEngineBudgetDivisionZeroActive(t *testing.T) {
	// Budget division with an entirely silent stream must simply record
	// zero expenditure and never report.
	e, _ := New(defaultOpts(allocation.Budget))
	for ts := 0; ts < 50; ts++ {
		if res, _ := e.ProcessTimestamp(ts, nil, 0); res.Reported {
			t.Fatal("report on empty timestamp")
		}
	}
}
