package core

import (
	"testing"
	"testing/quick"

	"retrasyn/internal/allocation"
	"retrasyn/internal/trajectory"
)

// Randomized end-to-end invariants: for arbitrary small configurations the
// engine must uphold (1) structural validity of the release, (2) exact size
// mirroring under EQ modelling, and (3) the w-event accounting bound.

func TestEngineInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed uint64, wRaw, epsRaw, divRaw uint8) bool {
		g := testGrid()
		w := int(wRaw%8) + 2
		eps := 0.25 + float64(epsRaw%8)*0.25
		div := allocation.Budget
		if divRaw%2 == 1 {
			div = allocation.Population
		}
		data := walkDataset(g, 120, 25, 7, seed)
		stream := trajectory.NewStream(data)
		e, err := New(Options{
			Space: g, Epsilon: eps, W: w, Division: div,
			Lambda: 7, Seed: seed ^ 0xfeed,
		})
		if err != nil {
			return false
		}
		syn, _ := e.Run(stream, "syn")
		if err := syn.Validate(g, true); err != nil {
			return false
		}
		counts := syn.ActiveCounts()
		for ts, want := range stream.Active {
			if counts[ts] != want {
				return false
			}
		}
		if div == allocation.Budget {
			if e.Ledger().MaxWindowSum(w) > eps+1e-9 {
				return false
			}
		} else {
			if e.Ledger().MaxUserWindowSum(w, func(int) float64 { return eps }) > eps+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
