package core

// userStatus mirrors Algorithm 1's user lifecycle: active users are eligible
// for sampling; inactive users have reported within the current window and
// await recycling; quitted users have stopped sharing.
type userStatus uint8

const (
	statusActive userStatus = iota
	statusInactive
	statusQuitted
)

// UserTracker maintains the dynamic active user set for population-division
// allocation (paper §III-E/F): it registers arrivals, marks reporters
// inactive, recycles them once they fall outside the sliding window
// (Alg. 1 line 9), and retires quitted users.
type UserTracker struct {
	w      int
	status map[int]userStatus
	// reported[t % w] holds the users who reported at timestamp t; they are
	// recycled when timestamp t+w begins.
	reported [][]int
	active   int
}

// NewUserTracker creates a tracker for window size w.
func NewUserTracker(w int) *UserTracker {
	if w < 1 {
		w = 1
	}
	return &UserTracker{
		w:        w,
		status:   make(map[int]userStatus),
		reported: make([][]int, w),
	}
}

// BeginTimestamp recycles the users who reported at t−w: inactive users
// become active again; quitted users stay quitted.
func (u *UserTracker) BeginTimestamp(t int) {
	slot := t % u.w
	for _, id := range u.reported[slot] {
		if u.status[id] == statusInactive {
			u.status[id] = statusActive
			u.active++
		}
	}
	u.reported[slot] = u.reported[slot][:0]
}

// Register ensures a user is known; unknown users arrive active
// (Alg. 1 line 7). Registering an existing user is a no-op.
func (u *UserTracker) Register(id int) {
	if _, ok := u.status[id]; !ok {
		u.status[id] = statusActive
		u.active++
	}
}

// IsActive reports whether the user is currently eligible for sampling.
func (u *UserTracker) IsActive(id int) bool {
	return u.status[id] == statusActive
}

// NumActive returns |U_A|.
func (u *UserTracker) NumActive() int { return u.active }

// MarkReported transitions a sampled user to inactive until recycled at
// t+w (Alg. 1 line 14).
func (u *UserTracker) MarkReported(id, t int) {
	if u.status[id] == statusActive {
		u.active--
	}
	u.status[id] = statusInactive
	slot := t % u.w
	u.reported[slot] = append(u.reported[slot], id)
}

// MarkQuitted retires a user permanently (Alg. 1 line 8). Quitted users are
// never recycled.
func (u *UserTracker) MarkQuitted(id int) {
	if u.status[id] == statusActive {
		u.active--
	}
	u.status[id] = statusQuitted
}
