package core

import "fmt"

// userStatus mirrors Algorithm 1's user lifecycle: active users are eligible
// for sampling; inactive users have reported within the current window and
// await recycling; quitted users have stopped sharing.
type userStatus uint8

const (
	statusActive userStatus = iota
	statusInactive
	statusQuitted
)

// UserTracker maintains the dynamic active user set for population-division
// allocation (paper §III-E/F): it registers arrivals, marks reporters
// inactive, recycles them once they fall outside the sliding window
// (Alg. 1 line 9), and retires quitted users.
type UserTracker struct {
	w      int
	status map[int]userStatus
	// reported[t % w] holds the users who reported at timestamp t; they are
	// recycled when timestamp t+w begins.
	reported [][]int
	active   int
}

// NewUserTracker creates a tracker for window size w.
func NewUserTracker(w int) *UserTracker {
	if w < 1 {
		w = 1
	}
	return &UserTracker{
		w:        w,
		status:   make(map[int]userStatus),
		reported: make([][]int, w),
	}
}

// BeginTimestamp recycles the users who reported at t−w: inactive users
// become active again; quitted users stay quitted.
func (u *UserTracker) BeginTimestamp(t int) {
	slot := t % u.w
	for _, id := range u.reported[slot] {
		if u.status[id] == statusInactive {
			u.status[id] = statusActive
			u.active++
		}
	}
	u.reported[slot] = u.reported[slot][:0]
}

// Register ensures a user is known; unknown users arrive active
// (Alg. 1 line 7). Registering an existing user is a no-op.
func (u *UserTracker) Register(id int) {
	if _, ok := u.status[id]; !ok {
		u.status[id] = statusActive
		u.active++
	}
}

// IsActive reports whether the user is currently eligible for sampling.
func (u *UserTracker) IsActive(id int) bool {
	return u.status[id] == statusActive
}

// NumActive returns |U_A|.
func (u *UserTracker) NumActive() int { return u.active }

// MarkReported transitions a sampled user to inactive until recycled at
// t+w (Alg. 1 line 14).
func (u *UserTracker) MarkReported(id, t int) {
	if u.status[id] == statusActive {
		u.active--
	}
	u.status[id] = statusInactive
	slot := t % u.w
	u.reported[slot] = append(u.reported[slot], id)
}

// MarkQuitted retires a user permanently (Alg. 1 line 8). Quitted users are
// never recycled.
func (u *UserTracker) MarkQuitted(id int) {
	if u.status[id] == statusActive {
		u.active--
	}
	u.status[id] = statusQuitted
}

// UserTrackerState is the serializable form of a UserTracker.
type UserTrackerState struct {
	W        int           `json:"w"`
	Status   map[int]uint8 `json:"status"`
	Reported [][]int       `json:"reported"`
	Active   int           `json:"active"`
}

// State exports a deep copy of the tracker.
func (u *UserTracker) State() UserTrackerState {
	st := UserTrackerState{
		W:        u.w,
		Status:   make(map[int]uint8, len(u.status)),
		Reported: make([][]int, len(u.reported)),
		Active:   u.active,
	}
	for id, s := range u.status {
		st.Status[id] = uint8(s)
	}
	for i, ids := range u.reported {
		st.Reported[i] = append([]int(nil), ids...)
	}
	return st
}

// Restore replaces the tracker's state with a previously exported one. The
// window size must match.
func (u *UserTracker) Restore(st UserTrackerState) error {
	if st.W != u.w || len(st.Reported) != u.w {
		return fmt.Errorf("core: UserTracker.Restore window %d (slots %d) ≠ w %d", st.W, len(st.Reported), u.w)
	}
	u.status = make(map[int]userStatus, len(st.Status))
	for id, s := range st.Status {
		if s > uint8(statusQuitted) {
			return fmt.Errorf("core: UserTracker.Restore invalid status %d for user %d", s, id)
		}
		u.status[id] = userStatus(s)
	}
	for i := range u.reported {
		u.reported[i] = append([]int(nil), st.Reported[i]...)
	}
	u.active = st.Active
	return nil
}
