package core

import (
	"encoding/json"
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

// testQuadtree grows a small density-adaptive quadtree whose hotspot sits
// in the bottom-left corner, mirroring the skew the backend exists for.
func testQuadtree(t *testing.T) *spatial.Quadtree {
	t.Helper()
	rng := ldp.NewRand(555, 556)
	pts := make([]spatial.Point, 0, 3000)
	for i := 0; i < 3000; i++ {
		if i%5 == 0 {
			pts = append(pts, spatial.Point{X: rng.Float64(), Y: rng.Float64()})
		} else {
			pts = append(pts, spatial.Point{X: rng.Float64() * 0.3, Y: rng.Float64() * 0.3})
		}
	}
	qt, err := spatial.NewQuadtree(spatial.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, pts,
		spatial.QuadtreeOptions{MaxLeaves: 24})
	if err != nil {
		t.Fatal(err)
	}
	return qt
}

// TestQuadtreeEngineEndToEnd runs the full engine over a quadtree
// discretization: the release must be structurally valid for the tree and
// the run deterministic for a fixed seed.
func TestQuadtreeEngineEndToEnd(t *testing.T) {
	qt := testQuadtree(t)
	data := walkDataset(qt, 300, 40, 8, 31)
	run := func() uint64 {
		opts := defaultOpts(allocation.Population)
		opts.Space = qt
		opts.Seed = 777
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		syn, stats := e.Run(trajectory.NewStream(data), "qt")
		if stats.Rounds == 0 {
			t.Fatal("no collection rounds on the quadtree engine")
		}
		if err := syn.Validate(qt, true); err != nil {
			t.Fatalf("quadtree release violates reachability: %v", err)
		}
		return datasetHash(syn)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("quadtree run not deterministic: %#x vs %#x", a, b)
	}
}

// TestQuadtreeSnapshotRoundTrip proves checkpoint/restore stays
// bit-identical on the non-uniform backend too.
func TestQuadtreeSnapshotRoundTrip(t *testing.T) {
	qt := testQuadtree(t)
	data := walkDataset(qt, 250, 30, 7, 32)
	stream := trajectory.NewStream(data)
	newEngine := func() *Engine {
		opts := defaultOpts(allocation.Population)
		opts.Space = qt
		opts.Seed = 991
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	full := newEngine()
	for ts := 0; ts < stream.T; ts++ {
		if _, err := full.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	want := datasetHash(full.Synthetic("qt", stream.T))

	half := stream.T / 2
	donor := newEngine()
	for ts := 0; ts < half; ts++ {
		if _, err := donor.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := donor.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	resumed := newEngine()
	if err := resumed.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	for ts := half; ts < stream.T; ts++ {
		if _, err := resumed.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	if got := datasetHash(resumed.Synthetic("qt", stream.T)); got != want {
		t.Fatalf("resumed quadtree release drifted: got %#x, want %#x", got, want)
	}
}

// TestLegacyCheckpointRestores is the compatibility regression: a checkpoint
// written by a pre-spatial uniform-grid build — whose config fingerprint has
// no "discretizer" field — must still restore bit-identically into today's
// engine. The legacy blob is simulated by stripping the field from a fresh
// snapshot, which yields byte-for-byte the JSON the old build produced
// (omitempty kept the schema otherwise unchanged).
func TestLegacyCheckpointRestores(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			g := testGrid()
			data := walkDataset(g, 350, 40, 9, 97)
			stream := trajectory.NewStream(data)
			newEngine := func() *Engine {
				opts := defaultOpts(allocation.Population)
				opts.Seed = 20240731
				tc.mutate(&opts)
				e, err := New(opts)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			half := stream.T / 2
			donor := newEngine()
			for ts := 0; ts < half; ts++ {
				if _, err := donor.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := donor.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			legacy := stripDiscretizer(t, blob)

			resumed := newEngine()
			if err := resumed.RestoreState(legacy); err != nil {
				t.Fatalf("legacy uniform-grid checkpoint rejected: %v", err)
			}
			for ts := half; ts < stream.T; ts++ {
				if _, err := resumed.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
					t.Fatal(err)
				}
			}
			if got := datasetHash(resumed.Synthetic("golden", stream.T)); got != tc.want {
				t.Fatalf("legacy-restored release drifted: got %#x, want %#x", got, tc.want)
			}
		})
	}
}

// TestLegacyCheckpointRejectedOnQuadtree ensures the legacy grace path does
// not let a fingerprint-less checkpoint cross onto a different backend.
func TestLegacyCheckpointRejectedOnQuadtree(t *testing.T) {
	qt := testQuadtree(t)
	opts := defaultOpts(allocation.Population)
	opts.Space = qt
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	legacy := stripDiscretizer(t, blob)
	e2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.RestoreState(legacy); err == nil {
		t.Fatal("fingerprint-less checkpoint accepted by a quadtree engine")
	}
}

// TestSnapshotDiscretizerMismatch ensures checkpoints cannot cross between
// discretizations even when the domain size happens to match.
func TestSnapshotDiscretizerMismatch(t *testing.T) {
	a := testGrid()
	b, err := New(func() Options {
		o := defaultOpts(allocation.Population)
		o.Space = a
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Same K, different bounds: identical domain size, different layout.
	other := defaultOpts(allocation.Population)
	other.Space = grid.MustNew(4, spatial.Bounds{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2})
	e2, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(st); err == nil {
		t.Fatal("checkpoint restored across different discretizations")
	}
}

func stripDiscretizer(t *testing.T, blob json.RawMessage) json.RawMessage {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	var cfg map[string]json.RawMessage
	if err := json.Unmarshal(m["config"], &cfg); err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg["discretizer"]; !ok {
		t.Fatal("snapshot config missing the discretizer field to strip")
	}
	delete(cfg, "discretizer")
	cb, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m["config"] = cb
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
