package core

import "testing"

func TestUserTrackerLifecycle(t *testing.T) {
	u := NewUserTracker(3)
	u.Register(1)
	u.Register(2)
	if !u.IsActive(1) || !u.IsActive(2) || u.NumActive() != 2 {
		t.Fatalf("registration failed: active=%d", u.NumActive())
	}
	// Re-registration is a no-op.
	u.Register(1)
	if u.NumActive() != 2 {
		t.Fatalf("double registration changed count: %d", u.NumActive())
	}

	u.MarkReported(1, 0)
	if u.IsActive(1) || u.NumActive() != 1 {
		t.Fatal("reported user still active")
	}

	// Recycling happens exactly w timestamps later.
	u.BeginTimestamp(1)
	u.BeginTimestamp(2)
	if u.IsActive(1) {
		t.Fatal("user recycled early")
	}
	u.BeginTimestamp(3) // 3 = 0 + w
	if !u.IsActive(1) {
		t.Fatal("user not recycled at t+w")
	}
	if u.NumActive() != 2 {
		t.Fatalf("active = %d after recycle", u.NumActive())
	}
}

func TestUserTrackerQuitNotRecycled(t *testing.T) {
	u := NewUserTracker(2)
	u.Register(7)
	u.MarkReported(7, 0)
	u.MarkQuitted(7)
	u.BeginTimestamp(2) // would recycle a non-quitted user
	if u.IsActive(7) {
		t.Fatal("quitted user recycled")
	}
	if u.NumActive() != 0 {
		t.Fatalf("active = %d", u.NumActive())
	}
}

func TestUserTrackerQuitWhileActive(t *testing.T) {
	u := NewUserTracker(2)
	u.Register(3)
	u.MarkQuitted(3)
	if u.NumActive() != 0 {
		t.Fatalf("active = %d", u.NumActive())
	}
	// Quitting twice stays consistent.
	u.MarkQuitted(3)
	if u.NumActive() != 0 {
		t.Fatalf("active after double quit = %d", u.NumActive())
	}
}

func TestUserTrackerWindowOne(t *testing.T) {
	u := NewUserTracker(1)
	u.Register(1)
	u.MarkReported(1, 0)
	u.BeginTimestamp(1)
	if !u.IsActive(1) {
		t.Fatal("w=1 should recycle at the next timestamp")
	}
}

func TestUserTrackerClampW(t *testing.T) {
	u := NewUserTracker(0) // clamped to 1
	u.Register(1)
	u.MarkReported(1, 5)
	u.BeginTimestamp(6)
	if !u.IsActive(1) {
		t.Fatal("clamped tracker failed to recycle")
	}
}

func TestUserTrackerManyUsersSlots(t *testing.T) {
	u := NewUserTracker(4)
	for id := 0; id < 100; id++ {
		u.Register(id)
	}
	// Report 25 users at each of 4 timestamps.
	for tt := 0; tt < 4; tt++ {
		u.BeginTimestamp(tt)
		for id := tt * 25; id < (tt+1)*25; id++ {
			u.MarkReported(id, tt)
		}
	}
	if u.NumActive() != 0 {
		t.Fatalf("active = %d, want 0", u.NumActive())
	}
	// Users recycle in report order as the window slides.
	for tt := 4; tt < 8; tt++ {
		u.BeginTimestamp(tt)
		want := (tt - 3) * 25
		if u.NumActive() != want {
			t.Fatalf("t=%d active = %d, want %d", tt, u.NumActive(), want)
		}
	}
}
