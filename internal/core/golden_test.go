package core

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/trajectory"
)

// Golden-output pins: the staged-pipeline refactor must keep the engine
// bit-identical to the seed implementation — same seed, same stream, same
// synthetic release. These hashes were captured from the pre-pipeline
// monolithic engine; any drift in the per-timestamp randomness order or the
// estimate arithmetic shows up here immediately.

// datasetHash canonically hashes a synthetic release: stream count, then
// every (start, cells...) in released order.
func datasetHash(d *trajectory.Dataset) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(len(d.Trajs))
	for _, tr := range d.Trajs {
		put(tr.Start)
		put(len(tr.Cells))
		for _, c := range tr.Cells {
			put(int(c))
		}
	}
	return h.Sum64()
}

func goldenRun(t *testing.T, mutate func(*Options)) uint64 {
	t.Helper()
	g := testGrid()
	data := walkDataset(g, 350, 40, 9, 97)
	stream := trajectory.NewStream(data)
	opts := defaultOpts(allocation.Population)
	opts.Seed = 20240731
	if mutate != nil {
		mutate(&opts)
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	syn, _ := e.Run(stream, "golden")
	return datasetHash(syn)
}

// goldenCases enumerates the engine configurations pinned by the golden
// hashes; the snapshot round-trip test reuses them so checkpoint/restore is
// proven bit-identical for every oracle, division and ablation path.
func goldenCases() []struct {
	name   string
	mutate func(*Options)
	want   uint64
} {
	return []struct {
		name   string
		mutate func(*Options)
		want   uint64
	}{
		{"population-aggregate", func(o *Options) { o.OracleMode = Aggregate }, 0xcf9fef2bea6a477f},
		{"budget-aggregate", func(o *Options) {
			o.Division = allocation.Budget
			o.Strategy = allocation.NewAdaptive(allocation.Budget)
			o.OracleMode = Aggregate
		}, 0x5c40718e80d25377},
		{"population-peruser", func(o *Options) { o.OracleMode = PerUser }, 0xa6b0bec1b7dd4d65},
		{"budget-peruser", func(o *Options) {
			o.Division = allocation.Budget
			o.Strategy = allocation.NewAdaptive(allocation.Budget)
			o.OracleMode = PerUser
		}, 0x89b3ec625393cfa5},
		{"allupdate", func(o *Options) { o.DisableDMU = true }, 0xe2cb3b933a199467},
		{"noeq", func(o *Options) {
			o.DisableEQ = true
			o.Lambda = 0
		}, 0xdbded9bd0f1eab8d},
		{"olh", func(o *Options) {
			o.OracleMode = PerUser
			o.Oracle = OracleOLH
		}, 0x294dbd3314263d28},
		{"grr", func(o *Options) {
			o.OracleMode = PerUser
			o.Oracle = OracleGRR
		}, 0xe924526e54acd11},
	}
}

func TestGoldenSeedEquivalence(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := goldenRun(t, tc.mutate)
			if tc.want == 0 {
				t.Logf("golden[%s] = %#x", tc.name, got)
				t.Fatal("golden hash not pinned yet")
			}
			if got != tc.want {
				t.Fatalf("synthetic release drifted from the seed engine: got %#x, want %#x", got, tc.want)
			}
		})
	}
}

// TestGoldenSnapshotRoundTrip pins the checkpoint/restore contract against
// the same golden hashes: run to T/2, snapshot, serialize the state through
// JSON, restore into a *fresh* engine, continue to T — the release must be
// bit-identical to the uninterrupted golden run for every configuration.
func TestGoldenSnapshotRoundTrip(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			g := testGrid()
			data := walkDataset(g, 350, 40, 9, 97)
			stream := trajectory.NewStream(data)
			newEngine := func() *Engine {
				opts := defaultOpts(allocation.Population)
				opts.Seed = 20240731
				tc.mutate(&opts)
				e, err := New(opts)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}

			half := stream.T / 2
			first := newEngine()
			for ts := 0; ts < half; ts++ {
				if _, err := first.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
					t.Fatal(err)
				}
			}
			// Serialize through the opaque JSON blob, exactly as a curator
			// writing a checkpoint file would.
			blob, err := first.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			// Keep feeding the first engine: the snapshot must be immune to
			// the donor's later mutations.
			for ts := half; ts < stream.T; ts++ {
				if _, err := first.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
					t.Fatal(err)
				}
			}

			resumed := newEngine()
			if err := resumed.RestoreState(blob); err != nil {
				t.Fatal(err)
			}
			for ts := half; ts < stream.T; ts++ {
				if _, err := resumed.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
					t.Fatal(err)
				}
			}

			got := datasetHash(resumed.Synthetic("golden", stream.T))
			if got != tc.want {
				t.Fatalf("resumed release drifted from the uninterrupted run: got %#x, want %#x", got, tc.want)
			}
			if again := datasetHash(first.Synthetic("golden", stream.T)); again != tc.want {
				t.Fatalf("donor engine drifted after being snapshotted: got %#x, want %#x", again, tc.want)
			}
		})
	}
}

// TestSnapshotConfigMismatch ensures a checkpoint cannot be restored into an
// engine built with incompatible options.
func TestSnapshotConfigMismatch(t *testing.T) {
	opts := defaultOpts(allocation.Population)
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := opts
	other.Epsilon = 2.0
	e2, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(st); err == nil {
		t.Fatal("restore across mismatched configs accepted")
	}
	st.Version = EngineStateVersion + 1
	e3, _ := New(opts)
	if err := e3.Restore(st); err == nil {
		t.Fatal("restore of future snapshot version accepted")
	}
}
