package core

import (
	"encoding/json"
	"fmt"

	"strings"

	"retrasyn/internal/allocation"
	"retrasyn/internal/mobility"
	"retrasyn/internal/synthesis"
)

// Engine checkpointing: Snapshot exports the complete processing state — the
// mobility model, allocation trackers, user lifecycle, synthesizer streams
// and the RNG position — so a curator can checkpoint mid-stream, crash, and
// resume with releases bit-identical to an uninterrupted run. The golden
// round-trip tests pin this property for every engine configuration.
//
// The state is JSON-serializable; EngineStateVersion guards the format and
// the embedded config fingerprint guards against restoring into an engine
// built with incompatible options.

// EngineStateVersion is the checkpoint format version; Restore rejects
// snapshots from a different version.
const EngineStateVersion = 1

// ConfigFingerprint captures the Options fields that determine the engine's
// randomness stream and domain layout. Restoring a snapshot into an engine
// whose fingerprint differs would silently corrupt releases, so Restore
// requires an exact match.
type ConfigFingerprint struct {
	// Discretizer is the stable layout fingerprint of the spatial backend
	// (spatial.Discretizer.Fingerprint). Checkpoints written before the
	// pluggable-discretization refactor omit it; Restore accepts those
	// legacy snapshots when the engine runs the uniform grid, the only
	// backend that existed then.
	Discretizer  string  `json:"discretizer,omitempty"`
	DomainSize   int     `json:"domain_size"`
	Epsilon      float64 `json:"epsilon"`
	W            int     `json:"w"`
	Division     int     `json:"division"`
	Lambda       float64 `json:"lambda"`
	Kappa        int     `json:"kappa"`
	DisableDMU   bool    `json:"disable_dmu"`
	DisableEQ    bool    `json:"disable_eq"`
	OracleMode   int     `json:"oracle_mode"`
	Oracle       int     `json:"oracle"`
	SynthWorkers int     `json:"synth_workers"`
	Seed         uint64  `json:"seed"`
}

func (e *Engine) fingerprint() ConfigFingerprint {
	return ConfigFingerprint{
		Discretizer:  e.opts.Space.Fingerprint(),
		DomainSize:   e.dom.Size(),
		Epsilon:      e.opts.Epsilon,
		W:            e.opts.W,
		Division:     int(e.opts.Division),
		Lambda:       e.opts.Lambda,
		Kappa:        e.opts.Kappa,
		DisableDMU:   e.opts.DisableDMU,
		DisableEQ:    e.opts.DisableEQ,
		OracleMode:   int(e.opts.OracleMode),
		Oracle:       int(e.opts.Oracle),
		SynthWorkers: e.opts.SynthesisWorkers,
		Seed:         e.opts.Seed,
	}
}

// EngineState is the serializable processing state of an Engine.
type EngineState struct {
	Version int               `json:"version"`
	Config  ConfigFingerprint `json:"config"`

	LastT int      `json:"last_t"`
	Stats RunStats `json:"stats"`
	RNG   []byte   `json:"rng"`

	Model        mobility.State `json:"model"`
	Bootstrapped bool           `json:"bootstrapped"`

	Dev          allocation.DevState           `json:"dev"`
	Sig          allocation.SigState           `json:"sig"`
	BudgetWindow *allocation.BudgetWindowState `json:"budget_window,omitempty"`
	Users        *UserTrackerState             `json:"users,omitempty"`

	Synth  synthesis.State    `json:"synth"`
	Ledger *allocation.Ledger `json:"ledger,omitempty"`
}

// Snapshot exports the engine's complete processing state. The snapshot is a
// deep copy: continuing to process timestamps never mutates it. The engine
// must be quiescent (no ProcessTimestamp in flight).
func (e *Engine) Snapshot() (*EngineState, error) {
	rngState, err := e.rng.State()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot rng: %w", err)
	}
	st := &EngineState{
		Version:      EngineStateVersion,
		Config:       e.fingerprint(),
		LastT:        e.lastT,
		Stats:        e.stats,
		RNG:          rngState,
		Model:        e.model.State(),
		Bootstrapped: e.updater.Bootstrapped(),
		Dev:          e.dev.State(),
		Sig:          e.sig.State(),
		Synth:        e.synth.State(),
		Ledger:       e.ledger.Clone(),
	}
	if e.budgetWin != nil {
		bw := e.budgetWin.State()
		st.BudgetWindow = &bw
	}
	if e.users != nil {
		us := e.users.State()
		st.Users = &us
	}
	return st, nil
}

// Restore replaces the engine's processing state with a previously exported
// snapshot. The engine must have been constructed with options matching the
// snapshot's config fingerprint — typically a fresh New(opts) with the same
// opts as the snapshotted engine. After Restore, feeding the same events
// produces releases bit-identical to the uninterrupted run.
func (e *Engine) Restore(st *EngineState) error {
	if st == nil {
		return fmt.Errorf("core: Restore on nil state")
	}
	if st.Version != EngineStateVersion {
		return fmt.Errorf("core: snapshot version %d, engine supports %d", st.Version, EngineStateVersion)
	}
	got, want := e.fingerprint(), st.Config
	if want.Discretizer == "" && strings.HasPrefix(got.Discretizer, "uniform:") {
		// Legacy checkpoint from a pre-spatial build: those engines only
		// ever ran the uniform grid, so accept iff this engine's backend is
		// a uniform layout too (the remaining fields — domain size included
		// — still must match).
		want.Discretizer = got.Discretizer
	}
	if got != want {
		return fmt.Errorf("core: snapshot config %+v does not match engine config %+v", want, got)
	}
	if (st.BudgetWindow != nil) != (e.budgetWin != nil) {
		return fmt.Errorf("core: snapshot division state does not match engine division")
	}
	if (st.Users != nil) != (e.users != nil) {
		return fmt.Errorf("core: snapshot user-tracker state does not match engine division")
	}
	if err := e.rng.SetState(st.RNG); err != nil {
		return fmt.Errorf("core: restore rng: %w", err)
	}
	if err := e.model.Restore(st.Model); err != nil {
		return err
	}
	e.updater.SetBootstrapped(st.Bootstrapped)
	e.dev.Restore(st.Dev)
	e.sig.Restore(st.Sig)
	if st.BudgetWindow != nil {
		if err := e.budgetWin.Restore(*st.BudgetWindow); err != nil {
			return err
		}
	}
	if st.Users != nil {
		if err := e.users.Restore(*st.Users); err != nil {
			return err
		}
	}
	e.synth.Restore(st.Synth)
	e.lastT = st.LastT
	e.stats = st.Stats
	e.ledger = st.Ledger.Clone()
	return nil
}

// SnapshotState implements pipeline.Checkpointable: the engine state as an
// opaque JSON blob, so the multi-shard Coordinator (and the facade) can
// checkpoint shards without knowing the state layout.
func (e *Engine) SnapshotState() (json.RawMessage, error) {
	st, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(st)
}

// RestoreState implements pipeline.Checkpointable.
func (e *Engine) RestoreState(raw json.RawMessage) error {
	var st EngineState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	return e.Restore(&st)
}
