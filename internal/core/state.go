package core

import (
	"encoding/json"
	"fmt"

	"strings"

	"retrasyn/internal/allocation"
	"retrasyn/internal/mobility"
	"retrasyn/internal/relayout"
	"retrasyn/internal/synthesis"
)

// Engine checkpointing: Snapshot exports the complete processing state — the
// mobility model, allocation trackers, user lifecycle, synthesizer streams
// and the RNG position — so a curator can checkpoint mid-stream, crash, and
// resume with releases bit-identical to an uninterrupted run. The golden
// round-trip tests pin this property for every engine configuration.
//
// The state is JSON-serializable; EngineStateVersion guards the format and
// the embedded config fingerprint guards against restoring into an engine
// built with incompatible options.

// EngineStateVersion is the checkpoint format version; Restore rejects
// snapshots from a different version.
const EngineStateVersion = 1

// ConfigFingerprint captures the Options fields that determine the engine's
// randomness stream and domain layout. Restoring a snapshot into an engine
// whose fingerprint differs would silently corrupt releases, so Restore
// requires an exact match.
type ConfigFingerprint struct {
	// Discretizer is the stable layout fingerprint of the spatial backend
	// (spatial.Discretizer.Fingerprint). Checkpoints written before the
	// pluggable-discretization refactor omit it; Restore accepts those
	// legacy snapshots when the engine runs the uniform grid, the only
	// backend that existed then.
	Discretizer  string  `json:"discretizer,omitempty"`
	DomainSize   int     `json:"domain_size"`
	Epsilon      float64 `json:"epsilon"`
	W            int     `json:"w"`
	Division     int     `json:"division"`
	Lambda       float64 `json:"lambda"`
	Kappa        int     `json:"kappa"`
	DisableDMU   bool    `json:"disable_dmu"`
	DisableEQ    bool    `json:"disable_eq"`
	OracleMode   int     `json:"oracle_mode"`
	Oracle       int     `json:"oracle"`
	SynthWorkers int     `json:"synth_workers"`
	Seed         uint64  `json:"seed"`
}

// fingerprint returns the boot-time config fingerprint. It is captured at
// New and deliberately frozen: online re-discretization changes the current
// layout (recorded separately via EngineState.Generation/Layout) but not the
// configuration the engine was built with, so checkpoints taken before and
// after migrations all validate against the same construction options.
func (e *Engine) fingerprint() ConfigFingerprint { return e.bootFP }

func (e *Engine) configFingerprint() ConfigFingerprint {
	return ConfigFingerprint{
		Discretizer:  e.opts.Space.Fingerprint(),
		DomainSize:   e.dom.Size(),
		Epsilon:      e.opts.Epsilon,
		W:            e.opts.W,
		Division:     int(e.opts.Division),
		Lambda:       e.opts.Lambda,
		Kappa:        e.opts.Kappa,
		DisableDMU:   e.opts.DisableDMU,
		DisableEQ:    e.opts.DisableEQ,
		OracleMode:   int(e.opts.OracleMode),
		Oracle:       int(e.opts.Oracle),
		SynthWorkers: e.opts.SynthesisWorkers,
		Seed:         e.opts.Seed,
	}
}

// EngineState is the serializable processing state of an Engine.
type EngineState struct {
	Version int               `json:"version"`
	Config  ConfigFingerprint `json:"config"`

	// Generation counts the layout migrations applied before the snapshot;
	// when > 0, Layout describes the discretization currently in effect and
	// LayoutFingerprint pins its identity, so Restore can rebuild the layout
	// an engine migrated onto at any point of its life.
	Generation        int              `json:"generation,omitempty"`
	Layout            *relayout.Layout `json:"layout,omitempty"`
	LayoutFingerprint string           `json:"layout_fp,omitempty"`

	LastT int      `json:"last_t"`
	Stats RunStats `json:"stats"`
	RNG   []byte   `json:"rng"`

	Model        mobility.State `json:"model"`
	Bootstrapped bool           `json:"bootstrapped"`

	Dev          allocation.DevState           `json:"dev"`
	Sig          allocation.SigState           `json:"sig"`
	BudgetWindow *allocation.BudgetWindowState `json:"budget_window,omitempty"`
	Users        *UserTrackerState             `json:"users,omitempty"`

	Synth  synthesis.State    `json:"synth"`
	Ledger *allocation.Ledger `json:"ledger,omitempty"`
}

// Snapshot exports the engine's complete processing state. The snapshot is a
// deep copy: continuing to process timestamps never mutates it. The engine
// must be quiescent (no ProcessTimestamp in flight).
func (e *Engine) Snapshot() (*EngineState, error) {
	rngState, err := e.rng.State()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot rng: %w", err)
	}
	st := &EngineState{
		Version:      EngineStateVersion,
		Config:       e.fingerprint(),
		Generation:   e.generation,
		LastT:        e.lastT,
		Stats:        e.stats,
		RNG:          rngState,
		Model:        e.model.State(),
		Bootstrapped: e.updater.Bootstrapped(),
		Dev:          e.dev.State(),
		Sig:          e.sig.State(),
		Synth:        e.synth.State(),
		Ledger:       e.ledger.Clone(),
	}
	if e.budgetWin != nil {
		bw := e.budgetWin.State()
		st.BudgetWindow = &bw
	}
	if e.users != nil {
		us := e.users.State()
		st.Users = &us
	}
	if e.generation > 0 {
		l, err := relayout.LayoutOf(e.space)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot layout: %w", err)
		}
		st.Layout = &l
		st.LayoutFingerprint = e.space.Fingerprint()
	}
	return st, nil
}

// Restore replaces the engine's processing state with a previously exported
// snapshot. The engine must have been constructed with options matching the
// snapshot's config fingerprint — typically a fresh New(opts) with the same
// opts as the snapshotted engine. After Restore, feeding the same events
// produces releases bit-identical to the uninterrupted run.
func (e *Engine) Restore(st *EngineState) error {
	if st == nil {
		return fmt.Errorf("core: Restore on nil state")
	}
	if st.Version != EngineStateVersion {
		return fmt.Errorf("core: snapshot version %d, engine supports %d", st.Version, EngineStateVersion)
	}
	got, want := e.fingerprint(), st.Config
	if want.Discretizer == "" && strings.HasPrefix(got.Discretizer, "uniform:") {
		// Legacy checkpoint from a pre-spatial build: those engines only
		// ever ran the uniform grid, so accept iff this engine's backend is
		// a uniform layout too (the remaining fields — domain size included
		// — still must match).
		want.Discretizer = got.Discretizer
	}
	if got != want {
		return fmt.Errorf("core: snapshot config %+v does not match engine config %+v", want, got)
	}
	if (st.BudgetWindow != nil) != (e.budgetWin != nil) {
		return fmt.Errorf("core: snapshot division state does not match engine division")
	}
	if (st.Users != nil) != (e.users != nil) {
		return fmt.Errorf("core: snapshot user-tracker state does not match engine division")
	}
	// Put the engine on the layout the snapshot was taken at before loading
	// the layout-sized state vectors: a migrated snapshot carries the layout
	// it was running on, a generation-0 snapshot means the boot layout.
	switch {
	case st.Generation > 0:
		if st.Layout == nil {
			return fmt.Errorf("core: snapshot at layout generation %d carries no layout", st.Generation)
		}
		sp, err := relayout.FromLayout(*st.Layout)
		if err != nil {
			return fmt.Errorf("core: restore layout: %w", err)
		}
		if st.LayoutFingerprint != "" && sp.Fingerprint() != st.LayoutFingerprint {
			return fmt.Errorf("core: restored layout fingerprint %s ≠ snapshot %s — corrupt checkpoint",
				sp.Fingerprint(), st.LayoutFingerprint)
		}
		e.adoptSpace(sp, st.Generation)
	case e.generation > 0:
		e.adoptSpace(e.opts.Space, 0)
	}
	if err := e.rng.SetState(st.RNG); err != nil {
		return fmt.Errorf("core: restore rng: %w", err)
	}
	if err := e.model.Restore(st.Model); err != nil {
		return err
	}
	e.updater.SetBootstrapped(st.Bootstrapped)
	e.dev.Restore(st.Dev)
	e.sig.Restore(st.Sig)
	if st.BudgetWindow != nil {
		if err := e.budgetWin.Restore(*st.BudgetWindow); err != nil {
			return err
		}
	}
	if st.Users != nil {
		if err := e.users.Restore(*st.Users); err != nil {
			return err
		}
	}
	e.synth.Restore(st.Synth)
	e.lastT = st.LastT
	e.stats = st.Stats
	e.ledger = st.Ledger.Clone()
	return nil
}

// SnapshotState implements pipeline.Checkpointable: the engine state as an
// opaque JSON blob, so the multi-shard Coordinator (and the facade) can
// checkpoint shards without knowing the state layout.
func (e *Engine) SnapshotState() (json.RawMessage, error) {
	st, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(st)
}

// RestoreState implements pipeline.Checkpointable.
func (e *Engine) RestoreState(raw json.RawMessage) error {
	var st EngineState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	return e.Restore(&st)
}
