// Package core assembles RetraSyn (paper Algorithm 1) on top of the staged
// pipeline: per timestamp it decides the allocation, samples the reporting
// users, and drives the Collector → Estimator → ModelUpdater → Synthesizer
// stages of internal/pipeline. The package owns the glue the stages don't:
// allocation strategy state, user lifecycle tracking, window accounting and
// the privacy ledger. Both the budget-division and population-division
// variants are provided, along with the paper's ablations (AllUpdate: no
// DMU; NoEQ: no entering/quitting modelling).
package core

import (
	"fmt"

	"retrasyn/internal/allocation"
	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/obs"
	"retrasyn/internal/pipeline"
	"retrasyn/internal/relayout"
	"retrasyn/internal/spatial"
	"retrasyn/internal/synthesis"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// OracleMode selects how the OUE collection round is simulated.
type OracleMode int

const (
	// PerUser runs the faithful per-user perturbation path — every sampled
	// user's report is individually randomized and aggregated. Use for
	// fidelity measurements (Table V user-side timing) and moderate scales.
	PerUser OracleMode = iota
	// Aggregate samples the aggregate count vector directly (statistically
	// identical to PerUser; see ldp.AggregateOracle). Use for paper-scale
	// populations. Only available for the OUE oracle.
	Aggregate
)

// OracleKind selects the frequency-oracle protocol users run.
type OracleKind int

const (
	// OracleOUE is Optimized Unary Encoding, the paper's choice (optimal
	// variance; |S|-bit reports).
	OracleOUE OracleKind = iota
	// OracleOLH is Optimized Local Hashing (matching variance, O(1)-size
	// reports, O(|S|) server work per report) — the frequency-oracle
	// ablation.
	OracleOLH
	// OracleGRR is Generalized Randomized Response (variance grows with
	// |S|; included to demonstrate why the paper avoids it).
	OracleGRR
)

// String implements fmt.Stringer.
func (k OracleKind) String() string {
	switch k {
	case OracleOUE:
		return "OUE"
	case OracleOLH:
		return "OLH"
	case OracleGRR:
		return "GRR"
	default:
		return fmt.Sprintf("OracleKind(%d)", int(k))
	}
}

// Options configures an Engine.
type Options struct {
	// Space is the spatial discretization the engine runs on (required) —
	// the uniform grid for the paper's setup, or any other
	// spatial.Discretizer backend (e.g. the density-adaptive quadtree).
	Space   spatial.Discretizer
	Epsilon float64
	// W is the w-event window size.
	W int
	// Division selects budget or population division.
	Division allocation.Division
	// Strategy decides per-timestamp allocation; defaults to the paper's
	// adaptive strategy for the configured division.
	Strategy allocation.Strategy
	// Lambda is the synthesis termination factor λ (Eq. 8); the paper sets
	// it to the dataset's average trajectory length.
	Lambda float64
	// Kappa is the tracker history length κ of Eq. 9–10 (default 5).
	Kappa int
	// DisableDMU refreshes the whole model every round (AllUpdate ablation).
	DisableDMU bool
	// DisableEQ drops entering/quitting modelling (NoEQ ablation): the
	// domain is movement-only, synthetic streams never terminate, and the
	// population is fixed at its initial size with uniform random starts.
	DisableEQ bool
	// OracleMode selects the collection simulation path.
	OracleMode OracleMode
	// Oracle selects the frequency-oracle protocol (default OUE, the
	// paper's choice).
	Oracle OracleKind
	// PostProcess optionally projects each round's estimates toward the
	// probability simplex before they feed the DMU and the model — a
	// privacy-free extension (Theorem 2) evaluated by the post-processing
	// ablation bench. Default none (the paper's behaviour).
	PostProcess ldp.PostProcess
	// SynthesisWorkers > 1 parallelizes the new-point-generation phase of
	// synthesis across that many goroutines (the paper §VII's future-work
	// acceleration). Default 1 (sequential, matching the paper).
	SynthesisWorkers int
	// AggregationWorkers shards the curator-side report-aggregation fold of
	// the per-user paths across that many goroutines; the fold is exactly
	// order-independent, so the estimates are unchanged. Default
	// runtime.NumCPU(); 1 forces the sequential fold.
	AggregationWorkers int
	// Seed drives all engine randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// Metrics, when non-nil, receives pipeline stage-latency histograms,
	// round/report counters and the privacy-budget meter series. Metrics are
	// run-scoped — they never enter EngineState — and recording never touches
	// the engine RNG, so instrumented runs stay bit-identical. Nil (the
	// default) disables instrumentation at zero cost.
	Metrics *obs.Registry
	// MetricsShard labels this engine's series when several shards share one
	// registry (the Coordinator sets it; default 0).
	MetricsShard int
}

func (o *Options) defaults() error {
	if o.Space == nil {
		return fmt.Errorf("core: Space (the spatial discretization) is required")
	}
	if !(o.Epsilon > 0) {
		return fmt.Errorf("core: Epsilon must be > 0, got %v", o.Epsilon)
	}
	if o.W < 1 {
		return fmt.Errorf("core: W must be ≥ 1, got %d", o.W)
	}
	if o.Kappa == 0 {
		o.Kappa = 5
	}
	if o.Strategy == nil {
		o.Strategy = allocation.NewAdaptive(o.Division)
	}
	if !o.DisableEQ && !(o.Lambda > 0) {
		return fmt.Errorf("core: Lambda must be > 0, got %v", o.Lambda)
	}
	if o.OracleMode == Aggregate && o.Oracle != OracleOUE {
		return fmt.Errorf("core: the aggregate simulation path supports only the OUE oracle, not %v", o.Oracle)
	}
	if o.AggregationWorkers == 0 {
		o.AggregationWorkers = ldp.DefaultWorkers()
	}
	return nil
}

// StepResult reports what one processed timestamp did.
type StepResult = pipeline.StepResult

// ComponentTimings accumulates per-component wall time, matching the
// paper's Table V decomposition.
type ComponentTimings = pipeline.Timings

// RunStats aggregates an engine run.
type RunStats = pipeline.RunStats

// Engine is the streaming curator: the allocation / user-tracking glue of
// Algorithm 1 wrapped around a staged internal/pipeline.Pipeline. Feed it
// one timestamp at a time with ProcessTimestamp, or drive a whole recorded
// stream with Run. Not safe for concurrent use; run one Engine per shard
// under a pipeline.Coordinator for parallel streams.
type Engine struct {
	opts Options
	// space is the discretization currently in effect; it starts as
	// opts.Space and advances on Relayout. generation counts the layout
	// migrations applied so far (0 = the boot layout).
	space      spatial.Discretizer
	generation int
	bootFP     ConfigFingerprint
	dom        *transition.Domain
	model      *mobility.Model
	synth      *synthesis.Synthesizer
	rng        *ldp.Source
	pipe       pipeline.Pipeline
	updater    *pipeline.DMUUpdater

	budgetWin *allocation.BudgetWindow
	dev       *allocation.DevTracker
	sig       *allocation.SigTracker
	users     *UserTracker
	ledger    *allocation.Ledger

	lastT int // last processed timestamp; -1 before the first
	stats RunStats

	// metrics/meter are the run-scoped instrumentation handles; both are nil
	// (no-op) unless Options.Metrics was set. Never checkpointed.
	metrics *pipeline.Metrics
	meter   *allocation.Meter

	// lastEstimates/lastSigRatio retain the most recent reported round's DP
	// estimate vector (domain-indexed, shared with the dev tracker) and
	// significance ratio for the utility monitor. Run-scoped, never
	// checkpointed, and dropped on relayout — the vector indexes the old
	// domain.
	lastEstimates []float64
	lastSigRatio  float64
	lastRoundT    int

	// scratch buffer reused across timestamps
	sampleBuf []trajectory.Event
}

// New creates an engine. The ledger capacity is sized lazily on first use
// when ledgerT is 0.
func New(opts Options) (*Engine, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	var dom *transition.Domain
	if opts.DisableEQ {
		dom = transition.NewMoveOnlyDomain(opts.Space)
	} else {
		dom = transition.NewDomain(opts.Space)
	}
	rng := ldp.NewSource(opts.Seed, opts.Seed^0x9e3779b97f4a7c15)
	synth, err := synthesis.New(opts.Space, synthesis.Options{
		Lambda:             opts.Lambda,
		DisableTermination: opts.DisableEQ,
		Workers:            opts.SynthesisWorkers,
		Seed:               opts.Seed ^ 0x5851f42d4c957f2d,
	}, rng)
	if err != nil {
		return nil, err
	}
	model := mobility.NewModel(dom)
	e := &Engine{
		opts:  opts,
		space: opts.Space,
		dom:   dom,
		model: model,
		synth: synth,
		rng:   rng,
		dev:   allocation.NewDevTracker(opts.Kappa),
		sig:   allocation.NewSigTracker(opts.Kappa),
		lastT: -1,
	}
	e.bootFP = e.configFingerprint()
	e.metrics = pipeline.NewMetrics(opts.Metrics, opts.MetricsShard)
	e.meter = allocation.NewMeter(opts.Metrics, opts.W)
	e.updater = &pipeline.DMUUpdater{Model: model, DisableDMU: opts.DisableDMU}
	e.pipe = pipeline.Pipeline{
		Collector:   newCollector(opts, dom, rng),
		Estimator:   &pipeline.DebiasEstimator{Post: opts.PostProcess},
		Updater:     e.updater,
		Synthesizer: &pipeline.SynthesisStage{Model: model, Synth: synth, WaitForUsers: opts.DisableEQ},
	}
	if opts.Division == allocation.Budget {
		e.budgetWin = allocation.NewBudgetWindow(opts.W)
	} else {
		e.users = NewUserTracker(opts.W)
	}
	// Seed the deviation history with the pre-collection all-zero vector, so
	// the first collected estimate registers as drift (Dev ≈ ‖f̂‖₁) instead of
	// deadlocking the adaptive strategy at Dev = 0.
	e.dev.Push(make([]float64, dom.Size()))
	return e, nil
}

// newCollector picks the collection stage for the configured oracle.
func newCollector(opts Options, dom *transition.Domain, rng pipeline.Rand) pipeline.Collector {
	switch {
	case opts.Oracle == OracleOLH:
		return &pipeline.OLHCollector{Dom: dom, Rng: rng, Workers: opts.AggregationWorkers}
	case opts.Oracle == OracleGRR:
		return &pipeline.GRRCollector{Dom: dom, Rng: rng}
	case opts.OracleMode == Aggregate:
		return &pipeline.OUEAggregateCollector{Dom: dom, Rng: rng}
	default:
		return &pipeline.OUEPerUserCollector{Dom: dom, Rng: rng, Workers: opts.AggregationWorkers}
	}
}

// Domain exposes the engine's transition domain (for tests and tooling).
func (e *Engine) Domain() *transition.Domain { return e.dom }

// Space returns the spatial discretization currently in effect (the boot
// layout until the first Relayout).
func (e *Engine) Space() spatial.Discretizer { return e.space }

// Generation returns how many layout migrations the engine has applied.
func (e *Engine) Generation() int { return e.generation }

// ReleasedPositions appends the continuous positions of the live synthetic
// streams at the current timestamp to buf and returns it. These are points
// of the *released* stream — the privacy-free input online re-discretization
// sketches density from. A released cell only says "somewhere in this box",
// so each point is spread over its cell's box by a deterministic
// low-discrepancy sequence (never the engine RNG — observation must not
// perturb the release stream): collapsing whole coarse cells onto their
// center would make re-discretization split forever around single points and
// hide density spread inside coarse regions. Falls back to cell centers for
// non-boxed backends.
func (e *Engine) ReleasedPositions(buf []spatial.Point) []spatial.Point {
	boxed, _ := e.space.(spatial.Boxed)
	poly, _ := e.space.(spatial.Overlapper)
	for _, c := range e.synth.ActiveCells(nil) {
		// Index the spread sequence by the position in buf, not the
		// per-engine stream index: a sharded framework accumulates all
		// shards into one buffer, and restarting the sequence per shard
		// would collapse same-index streams of one cell onto identical
		// points across shards.
		switch {
		case boxed != nil:
			buf = append(buf, relayout.SpreadInBox(boxed.CellBox(c), len(buf)))
		case poly != nil:
			// Polygonal cells spread inside their polygon, not its bounding
			// box, so geofenced releases never sketch density into gap space
			// the fence deliberately excludes.
			buf = append(buf, relayout.SpreadInPieces(poly.CellPieces(c), len(buf)))
		default:
			x, y := e.space.Center(c)
			buf = append(buf, spatial.Point{X: x, Y: y})
		}
	}
	return buf
}

// Relayout migrates the live engine onto a new spatial discretization
// between two timestamps (the engine must be quiescent, exactly as for
// Snapshot). Both the current and the new discretizer must expose their cell
// boxes (spatial.Boxed). The migration resamples all layout-dependent state
// through the cell-overlap area weights:
//
//   - the mobility model's transition/enter/quit mass is pushed through the
//     overlap matrix (mass-conserving; see relayout.Migration.RemapFreqs);
//   - the adaptive strategy's deviation history is re-indexed the same way,
//     so the drift signal survives;
//   - the synthesizer's in-flight (and completed) trajectories are remapped
//     to the max-overlap new cell;
//   - the transition domain, collector and DMU stage are rebuilt over the
//     new layout, preserving the bootstrap flag.
//
// The RNG position, allocation window accounting, user lifecycle and privacy
// ledger are layout-free and carry over untouched. Migrating onto a
// layout-identical discretizer is an exact no-op for the release stream
// (pinned by the golden relayout tests).
func (e *Engine) Relayout(sp spatial.Discretizer) error {
	if sp == nil {
		return fmt.Errorf("core: Relayout with a nil discretizer")
	}
	mig, err := relayout.NewMigration(e.space, sp)
	if err != nil {
		return fmt.Errorf("core: relayout: %w", err)
	}
	var newDom *transition.Domain
	if e.opts.DisableEQ {
		newDom = transition.NewMoveOnlyDomain(sp)
	} else {
		newDom = transition.NewDomain(sp)
	}
	newFreq, err := mig.RemapFreqs(e.dom, newDom, e.model.Freqs())
	if err != nil {
		return fmt.Errorf("core: relayout: %w", err)
	}
	devSt, err := mig.RemapDevState(e.dom, newDom, e.dev.State())
	if err != nil {
		return fmt.Errorf("core: relayout: %w", err)
	}
	newModel := mobility.NewModel(newDom)
	if err := newModel.Restore(mobility.State{Freq: newFreq, Init: e.model.Initialized()}); err != nil {
		return fmt.Errorf("core: relayout: %w", err)
	}
	e.dev.Restore(devSt)
	e.synth.Relayout(sp, mig.MapCell)
	e.rewire(sp, newDom, newModel, e.updater.Bootstrapped())
	e.generation++
	e.stats.Relayouts++
	return nil
}

// rewire points the engine's layout-dependent plumbing — domain, model,
// collector, DMU and synthesis stages — at a new discretization. Used by
// Relayout (after migrating state) and by checkpoint restore (before
// loading state vectors sized to the snapshot's layout).
func (e *Engine) rewire(sp spatial.Discretizer, dom *transition.Domain, model *mobility.Model, bootstrapped bool) {
	e.space = sp
	e.dom = dom
	e.model = model
	e.lastEstimates = nil // indexed by the old domain; see LastReportedRound
	e.updater = &pipeline.DMUUpdater{Model: model, DisableDMU: e.opts.DisableDMU}
	e.updater.SetBootstrapped(bootstrapped)
	e.pipe = pipeline.Pipeline{
		Collector:   newCollector(e.opts, dom, e.rng),
		Estimator:   &pipeline.DebiasEstimator{Post: e.opts.PostProcess},
		Updater:     e.updater,
		Synthesizer: &pipeline.SynthesisStage{Model: model, Synth: e.synth, WaitForUsers: e.opts.DisableEQ},
	}
}

// adoptSpace rebuilds the engine's layout-dependent state over sp without
// migrating anything — the checkpoint-restore path, where the snapshot's
// state vectors (already sized to sp's domain) are loaded right after.
func (e *Engine) adoptSpace(sp spatial.Discretizer, generation int) {
	var dom *transition.Domain
	if e.opts.DisableEQ {
		dom = transition.NewMoveOnlyDomain(sp)
	} else {
		dom = transition.NewDomain(sp)
	}
	e.synth.Relayout(sp, nil)
	e.rewire(sp, dom, mobility.NewModel(dom), false)
	e.generation = generation
}

// Model exposes the global mobility model.
func (e *Engine) Model() *mobility.Model { return e.model }

// Ledger returns the privacy ledger recorded so far (nil until Run or
// EnableLedger).
func (e *Engine) Ledger() *allocation.Ledger { return e.ledger }

// EnableLedger starts recording collection rounds for a timeline of length T.
func (e *Engine) EnableLedger(T int) { e.ledger = allocation.NewLedger(T) }

// Stats returns the accumulated run statistics.
func (e *Engine) Stats() RunStats { return e.stats }

// Run processes a whole recorded stream and returns the released synthetic
// database.
func (e *Engine) Run(stream *trajectory.Stream, name string) (*trajectory.Dataset, RunStats) {
	if e.ledger == nil {
		e.EnableLedger(stream.T)
	}
	for t := 0; t < stream.T; t++ {
		// The error path is unreachable: t increases strictly from 0.
		e.ProcessTimestamp(t, stream.At(t), stream.Active[t])
	}
	return e.Synthetic(name, stream.T), e.stats
}

// Synthetic returns the current released synthetic database.
func (e *Engine) Synthetic(name string, T int) *trajectory.Dataset {
	return e.synth.Dataset(name, T)
}

// ProcessTimestamp ingests the events of timestamp t (one transition state
// per present user) and the publicly known active-user count, drives the
// collection/DMU/synthesis pipeline, and returns what happened. Timestamps
// must be strictly increasing; an out-of-order timestamp returns an error
// and leaves the engine untouched.
func (e *Engine) ProcessTimestamp(t int, events []trajectory.Event, activeCount int) (StepResult, error) {
	if t <= e.lastT {
		return StepResult{}, fmt.Errorf("core: ProcessTimestamp(%d) after timestamp %d — timestamps must be strictly increasing", t, e.lastT)
	}
	e.lastT = t
	e.stats.Timestamps++

	// Alg. 1 lines 7–9: register arrivals, recycle the t−w reporters.
	if e.users != nil {
		e.users.BeginTimestamp(t)
		for _, ev := range events {
			e.users.Register(ev.User)
		}
	}

	pool := e.eligible(events)
	decision := e.decide(t, len(pool))

	ctx := &pipeline.StepContext{
		T:           t,
		ActiveCount: activeCount,
		Decision:    decision,
		Timings:     &e.stats.Timings,
	}
	ctx.Result.T = t
	if decision.Report && len(pool) > 0 {
		reporters := pool
		if e.opts.Division == allocation.Population {
			n := int(decision.Portion*float64(len(pool)) + 0.5)
			if n < 1 {
				// The strategy decided to collect; tiny pools still
				// contribute one report so small deployments make progress
				// (the per-user window invariant is enforced regardless).
				n = 1
			}
			if n > len(pool) {
				n = len(pool)
			}
			reporters = e.sampleEvents(pool, n)
			ctx.Epsilon = e.opts.Epsilon
		} else {
			ctx.Epsilon = decision.Epsilon
		}
		ctx.Reporters = reporters
		ctx.Result.Reported = true
		ctx.Result.NumReporters = len(reporters)
		ctx.Result.Epsilon = ctx.Epsilon
		if e.ledger != nil {
			ids := make([]int, len(reporters))
			for i, ev := range reporters {
				ids[i] = ev.User
			}
			ctx.LedgerIDs = ids
		}
	}

	// Collector → Estimator → ModelUpdater → Synthesizer. Timings accumulate
	// cumulatively inside the stages, so the per-step increment is the
	// before/after delta.
	before := e.stats.Timings
	e.pipe.Step(ctx)
	e.metrics.ObserveStep(ctx, pipeline.Sub(e.stats.Timings, before))
	{
		spent := 0.0
		if ctx.Result.Reported {
			spent = ctx.Epsilon
		}
		e.meter.Observe(spent, ctx.Result.NumReporters, len(pool))
	}

	// Post-step glue: round accounting, user lifecycle, window bookkeeping
	// and the Eq. 9–10 trackers.
	if ctx.Result.Reported {
		e.stats.Rounds++
		e.stats.TotalReports += ctx.Result.NumReporters
		if e.users != nil {
			for _, ev := range ctx.Reporters {
				e.users.MarkReported(ev.User, t)
			}
		}
		if e.ledger != nil {
			e.ledger.RecordRound(t, ctx.Epsilon, ctx.LedgerIDs)
		}
	}

	// Alg. 1 line 8 (after potential final q_j report): retire quitters.
	if e.users != nil {
		for _, ev := range events {
			if ev.State.Kind == transition.Quit {
				e.users.MarkQuitted(ev.User)
			}
		}
	}

	// Window accounting for budget division records actual expenditure.
	if e.budgetWin != nil {
		spent := 0.0
		if ctx.Result.Reported {
			spent = ctx.Epsilon
		}
		e.budgetWin.Record(spent)
	}

	e.sig.Push(ctx.SigRatio)
	// Eq. 9 tracks the frequencies *collected* at recent timestamps: the
	// deviation history advances only on reporting rounds. (Pushing the
	// frozen model on silent timestamps would decay Dev to zero and
	// permanently silence the adaptive strategy after a starved round.)
	if ctx.Result.Reported {
		e.dev.Push(ctx.Estimates)
		e.lastEstimates = ctx.Estimates
		e.lastSigRatio = ctx.SigRatio
		e.lastRoundT = t
	}
	return ctx.Result, nil
}

// LastReportedRound returns the DP estimate vector (domain-indexed, shared —
// treat as read-only), the significance ratio and the timestamp of the most
// recent reported round. ok is false before the first reported round and
// again right after a relayout, whose migration invalidates the retained
// vector's indexing, until the next reported round refills it.
func (e *Engine) LastReportedRound() (estimates []float64, sigRatio float64, t int, ok bool) {
	if e.lastEstimates == nil {
		return nil, 0, -1, false
	}
	return e.lastEstimates, e.lastSigRatio, e.lastRoundT, true
}

// eligible filters the timestamp's events down to sampleable ones: states
// inside the domain (NoEQ drops enter/quit events) and — for population
// division — users currently active.
func (e *Engine) eligible(events []trajectory.Event) []trajectory.Event {
	e.sampleBuf = e.sampleBuf[:0]
	for _, ev := range events {
		if _, ok := e.dom.Index(ev.State); !ok {
			continue
		}
		if e.users != nil && !e.users.IsActive(ev.User) {
			continue
		}
		e.sampleBuf = append(e.sampleBuf, ev)
	}
	return e.sampleBuf
}

// decide consults the strategy, bootstrapping the very first collection
// round at 1/w resources when the adaptive strategy would stay silent
// (Alg. 1 lines 1–5).
func (e *Engine) decide(t, poolSize int) allocation.Decision {
	ctx := allocation.Context{
		T:            t,
		W:            e.opts.W,
		Epsilon:      e.opts.Epsilon,
		Dev:          e.dev.Dev(),
		SigRatioMean: e.sig.Mean(),
	}
	if e.budgetWin != nil {
		ctx.WindowUsed = e.budgetWin.Used()
	}
	d := e.opts.Strategy.Decide(ctx)
	if !e.updater.Bootstrapped() && poolSize > 0 && !d.Report {
		if e.opts.Division == allocation.Budget {
			return allocation.Decision{Report: true, Epsilon: e.opts.Epsilon / float64(e.opts.W)}
		}
		return allocation.Decision{Report: true, Portion: 1 / float64(e.opts.W)}
	}
	return d
}

// sampleEvents draws n events without replacement via partial
// Fisher-Yates. The pool slice is permuted in place (it is the engine's
// scratch buffer).
func (e *Engine) sampleEvents(pool []trajectory.Event, n int) []trajectory.Event {
	for i := 0; i < n; i++ {
		j := i + e.rng.IntN(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:n]
}
