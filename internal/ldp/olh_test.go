package ldp

import (
	"math"
	"testing"
)

func TestNewOLHValidation(t *testing.T) {
	tests := []struct {
		name    string
		domain  int
		eps     float64
		wantErr bool
	}{
		{"ok", 100, 1.0, false},
		{"zero domain", 0, 1.0, true},
		{"zero eps", 10, 0, true},
		{"nan eps", 10, math.NaN(), true},
		{"inf eps", 10, math.Inf(1), true},
		{"tiny eps still valid", 10, 0.01, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewOLH(tt.domain, tt.eps)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestOLHHashRange(t *testing.T) {
	o := MustOLH(50, 1.0)
	if o.G() != 4 { // round(e)+1 = 3+1
		t.Fatalf("G = %d, want 4", o.G())
	}
	rng := NewRand(1, 2)
	for i := 0; i < 2000; i++ {
		h := o.Hash(rng.Uint64(), i%50)
		if h < 0 || h >= o.G() {
			t.Fatalf("Hash out of range: %d", h)
		}
	}
}

func TestOLHHashUniform(t *testing.T) {
	o := MustOLH(10, 1.0)
	rng := NewRand(3, 4)
	counts := make([]int, o.G())
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[o.Hash(rng.Uint64(), 7)]++
	}
	want := float64(trials) / float64(o.G())
	for h, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("hash bucket %d count %d, want ≈%.0f", h, c, want)
		}
	}
}

func TestOLHPerturbPanics(t *testing.T) {
	o := MustOLH(5, 1.0)
	rng := NewRand(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	o.Perturb(rng, rng, 5)
}

func TestOLHTruthRate(t *testing.T) {
	o := MustOLH(20, 1.0)
	rng := NewRand(5, 6)
	const trials = 40000
	truthful := 0
	for i := 0; i < trials; i++ {
		r := o.Perturb(rng, rng, 3)
		if r.Value == o.Hash(r.Seed, 3) {
			truthful++
		}
	}
	// Truthful report rate p, plus accidental collisions when lying:
	// P[report supports truth] = p + (1−p)·0 since a lie never equals the
	// true hash by construction.
	rate := float64(truthful) / trials
	e := math.Exp(1.0)
	p := e / (e + float64(o.G()) - 1)
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("truthful rate = %v, want %v", rate, p)
	}
}

func TestOLHUnbiased(t *testing.T) {
	const n = 40000
	o := MustOLH(8, 1.0)
	rng := NewRand(7, 8)
	agg := NewOLHAggregator(o)
	// 50% hold 0, 30% hold 1, 20% hold 2.
	for i := 0; i < n; i++ {
		u := rng.Float64()
		v := 0
		switch {
		case u < 0.5:
			v = 0
		case u < 0.8:
			v = 1
		default:
			v = 2
		}
		agg.Add(o.Perturb(rng, rng, v))
	}
	if agg.N() != n {
		t.Fatalf("N = %d", agg.N())
	}
	est := agg.EstimateAll()
	sd := math.Sqrt(o.Variance(n))
	wants := []float64{0.5, 0.3, 0.2, 0, 0, 0, 0, 0}
	for i, want := range wants {
		if math.Abs(est[i]-want) > 6*sd {
			t.Errorf("estimate[%d] = %v, want %v ± %v", i, est[i], want, 6*sd)
		}
	}
}

func TestOLHVarianceNearOUE(t *testing.T) {
	// OLH's variance should sit within a factor ~1.5 of OUE's (equal in the
	// continuous-g limit; integer rounding of g costs a little).
	for _, eps := range []float64{0.5, 1.0, 2.0} {
		olh := MustOLH(100, eps)
		ratio := olh.Variance(1000) / Variance(eps, 1000)
		if ratio < 0.5 || ratio > 1.6 {
			t.Errorf("ε=%v: OLH/OUE variance ratio = %v", eps, ratio)
		}
	}
}

func TestOLHAggregatorEmpty(t *testing.T) {
	o := MustOLH(4, 1.0)
	agg := NewOLHAggregator(o)
	for _, e := range agg.EstimateAll() {
		if e != 0 {
			t.Fatal("empty aggregator estimate nonzero")
		}
	}
}
