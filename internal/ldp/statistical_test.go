package ldp

import (
	"math"
	"testing"
)

// Statistical correctness harness for the frequency oracles: over many
// seeded trials, each oracle's debiased estimates must be (a) unbiased —
// the per-index mean tracks the true frequency within a few standard errors
// — and (b) correctly calibrated — the empirical estimator variance must
// match the analytic Variance(n) formula the engine feeds into the DMU
// error comparison (Eq. 7), since a miscalibrated err_upd silently skews
// the significant-transition selection.
//
// Tolerances are set at ≥4σ of the relevant sampling distribution, so a
// failure indicates a real defect, not an unlucky seed (the seeds are fixed
// regardless).

const (
	statDomain = 16
	statEps    = 1.0
	statUsers  = 1500
	statTrials = 250
)

// statTrueCounts fixes a skewed true distribution over the domain: index i
// holds weight i+1, so frequencies span [1/Σ, d/Σ] and stay well below the
// regime where the small-f variance approximation breaks down.
func statTrueCounts() ([]int, []float64) {
	counts := make([]int, statDomain)
	total := 0
	for i := range counts {
		counts[i] = (i + 1) * statUsers / ((statDomain * (statDomain + 1)) / 2)
		total += counts[i]
	}
	// Put the rounding remainder on index 0.
	counts[0] += statUsers - total
	freqs := make([]float64, statDomain)
	for i, c := range counts {
		freqs[i] = float64(c) / float64(statUsers)
	}
	return counts, freqs
}

// runTrials runs the harness for one oracle: estimate returns one trial's
// debiased frequency vector over the fixed true counts.
func runTrials(t *testing.T, name string, analyticVar float64, estimate func(rng Rand, counts []int) []float64) {
	t.Helper()
	counts, freqs := statTrueCounts()

	mean := make([]float64, statDomain)
	m2 := make([]float64, statDomain) // running Σ(x−mean)² via Welford
	rng := NewRand(0xfeed, 0xbeef)
	for trial := 0; trial < statTrials; trial++ {
		est := estimate(rng, counts)
		if len(est) != statDomain {
			t.Fatalf("%s: estimate length %d", name, len(est))
		}
		for i, x := range est {
			delta := x - mean[i]
			mean[i] += delta / float64(trial+1)
			m2[i] += delta * (x - mean[i])
		}
	}

	// Unbiasedness: the mean of statTrials estimates has standard error
	// √(Var/trials); demand every index within 5σ.
	seMean := math.Sqrt(analyticVar / float64(statTrials))
	for i := range mean {
		if diff := math.Abs(mean[i] - freqs[i]); diff > 5*seMean {
			t.Errorf("%s: index %d biased: mean estimate %.4f, true %.4f (|Δ|=%.4f > 5σ=%.4f)",
				name, i, mean[i], freqs[i], diff, 5*seMean)
		}
	}

	// Variance calibration: the empirical variance averaged over the domain
	// must sit near the analytic per-index variance. The averaged sample
	// variance concentrates tightly (relative sd ≈ √(2/(d·trials)) ≈ 2%),
	// and the true-frequency correction to the small-f formula is ≤ ~6% at
	// these parameters, so a ±20% band is ≥ 4σ wide.
	empirical := 0.0
	for i := range m2 {
		empirical += m2[i] / float64(statTrials-1)
	}
	empirical /= statDomain
	if ratio := empirical / analyticVar; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("%s: empirical variance %.3e vs analytic %.3e (ratio %.3f outside [0.8, 1.2])",
			name, empirical, analyticVar, ratio)
	}
}

func TestOUEStatisticalCorrectness(t *testing.T) {
	oracle := MustOUE(statDomain, statEps)
	runTrials(t, "OUE", oracle.Variance(statUsers), func(rng Rand, counts []int) []float64 {
		agg := NewAggregator(oracle)
		for v, c := range counts {
			for k := 0; k < c; k++ {
				agg.Add(oracle.Perturb(rng, v))
			}
		}
		return agg.EstimateAll()
	})
}

func TestOUEAggregatePathStatisticalCorrectness(t *testing.T) {
	// The Binomial shortcut must be calibrated exactly like the per-user
	// path — it feeds the same Variance(n) into the DMU.
	oracle := MustOUE(statDomain, statEps)
	ao := NewAggregateOracle(oracle)
	runTrials(t, "OUE-aggregate", oracle.Variance(statUsers), func(rng Rand, counts []int) []float64 {
		return ao.Collect(rng, counts).EstimateAll()
	})
}

func TestOLHStatisticalCorrectness(t *testing.T) {
	oracle := MustOLH(statDomain, statEps)
	seedSrc := NewRand(0x01f, 0x2e3)
	runTrials(t, "OLH", oracle.Variance(statUsers), func(rng Rand, counts []int) []float64 {
		agg := NewOLHAggregator(oracle)
		for v, c := range counts {
			for k := 0; k < c; k++ {
				agg.Add(oracle.Perturb(rng, seedSrc, v))
			}
		}
		return agg.EstimateAll()
	})
}

func TestGRRStatisticalCorrectness(t *testing.T) {
	oracle := MustGRR(statDomain, statEps)
	runTrials(t, "GRR", oracle.Variance(statUsers), func(rng Rand, counts []int) []float64 {
		agg := NewGRRAggregator(oracle)
		for v, c := range counts {
			for k := 0; k < c; k++ {
				agg.Add(oracle.Perturb(rng, v))
			}
		}
		return agg.EstimateAll()
	})
}
