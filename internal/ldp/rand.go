// Package ldp implements the local differential privacy primitives RetraSyn
// builds on (paper §II-A): the Optimized Unary Encoding (OUE) frequency
// oracle with faithful per-user perturbation and unbiased curator-side
// aggregation, a Generalized Randomized Response oracle for comparison, and
// an exact aggregate-level sampler used to simulate large user populations
// efficiently.
package ldp

import (
	"math"
	"math/rand/v2"
)

// Rand is the subset of *rand.Rand the package needs; callers can substitute
// deterministic sources in tests.
type Rand interface {
	Float64() float64
	IntN(int) int
	NormFloat64() float64
}

// NewRand returns a seeded PCG-backed random source. Two generators with the
// same seed pair produce identical streams, which the experiment harness
// relies on for reproducibility.
func NewRand(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}

// Source is a seeded PCG-backed random source whose position can be
// exported and restored, so a consumer checkpointed mid-stream resumes with
// the exact draw sequence of an uninterrupted run. It embeds *rand.Rand
// (math/rand/v2), which keeps no state of its own beyond the underlying
// generator, so the PCG state is the complete randomness state.
type Source struct {
	*rand.Rand
	pcg *rand.PCG
}

// NewSource returns a checkpointable seeded source. Equal seed pairs produce
// identical streams.
func NewSource(seed1, seed2 uint64) *Source {
	pcg := rand.NewPCG(seed1, seed2)
	return &Source{Rand: rand.New(pcg), pcg: pcg}
}

// State exports the generator position.
func (s *Source) State() ([]byte, error) {
	return s.pcg.MarshalBinary()
}

// SetState restores a position previously exported by State.
func (s *Source) SetState(b []byte) error {
	return s.pcg.UnmarshalBinary(b)
}

// Binomial draws an exact sample from Binomial(n, p) when n·min(p,1−p) is
// small, and a clamped Gaussian approximation otherwise. The switch point is
// chosen so the approximation error is far below the sampling noise of any
// aggregate the library computes; the exact path uses geometric skips, which
// cost O(np) expected time.
func Binomial(rng Rand, n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	// Work with the smaller tail for efficiency; invert at the end.
	inverted := false
	if p > 0.5 {
		p = 1 - p
		inverted = true
	}
	var k int
	if float64(n)*p <= binomialExactThreshold {
		k = binomialGeometric(rng, n, p)
	} else {
		k = binomialNormal(rng, n, p)
	}
	if inverted {
		k = n - k
	}
	return k
}

// binomialExactThreshold bounds the expected work of the exact sampler.
// Below it we sample exactly; above it the normal approximation to
// Binomial(n,p) is accurate to well under one part in 10⁴ of the standard
// deviation.
const binomialExactThreshold = 1024

// binomialGeometric counts successes via geometric inter-arrival skips:
// the index of the next success after position i is i + Geom(p). Expected
// cost O(np).
func binomialGeometric(rng Rand, n int, p float64) int {
	// log(1-p) is stable here because p ≤ 0.5.
	logq := math.Log1p(-p)
	k := 0
	i := 0
	for {
		u := rng.Float64()
		for u == 0 { // Float64 can return 0; log(0) would overflow
			u = rng.Float64()
		}
		skip := int(math.Floor(math.Log(u) / logq))
		i += skip + 1
		if i > n {
			return k
		}
		k++
	}
}

// binomialNormal samples from the Gaussian approximation with continuity
// correction, clamped to [0, n].
func binomialNormal(rng Rand, n int, p float64) int {
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	k := int(math.Round(mean + rng.NormFloat64()*sd))
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}

// Bernoulli returns true with probability p.
func Bernoulli(rng Rand, p float64) bool {
	return rng.Float64() < p
}
