package ldp

import (
	"math"
	"testing"
)

func TestNewGRRValidation(t *testing.T) {
	tests := []struct {
		name    string
		domain  int
		eps     float64
		wantErr bool
	}{
		{"ok", 10, 1.0, false},
		{"domain 1", 1, 1.0, true},
		{"domain 0", 0, 1.0, true},
		{"zero eps", 10, 0, true},
		{"nan eps", 10, math.NaN(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewGRR(tt.domain, tt.eps)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestGRRP(t *testing.T) {
	g := MustGRR(4, 1.0)
	want := math.E / (math.E + 3)
	if math.Abs(g.P()-want) > 1e-12 {
		t.Fatalf("P = %v, want %v", g.P(), want)
	}
}

func TestGRRPerturbRange(t *testing.T) {
	g := MustGRR(6, 1.0)
	rng := NewRand(2, 3)
	for i := 0; i < 5000; i++ {
		v := g.Perturb(rng, i%6)
		if v < 0 || v >= 6 {
			t.Fatalf("Perturb returned %d out of domain", v)
		}
	}
}

func TestGRRPerturbPanics(t *testing.T) {
	g := MustGRR(6, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-domain index")
		}
	}()
	g.Perturb(NewRand(1, 1), 6)
}

func TestGRRTruthRate(t *testing.T) {
	g := MustGRR(5, 1.5)
	rng := NewRand(7, 8)
	const trials = 40000
	truthful := 0
	for i := 0; i < trials; i++ {
		if g.Perturb(rng, 2) == 2 {
			truthful++
		}
	}
	rate := float64(truthful) / trials
	if math.Abs(rate-g.P()) > 0.01 {
		t.Fatalf("truthful rate = %v, want %v", rate, g.P())
	}
}

func TestGRRLieUniform(t *testing.T) {
	g := MustGRR(4, 1.0)
	rng := NewRand(17, 18)
	counts := make([]int, 4)
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[g.Perturb(rng, 0)]++
	}
	// Lies should split evenly across the three non-true values.
	lieTotal := counts[1] + counts[2] + counts[3]
	for i := 1; i < 4; i++ {
		frac := float64(counts[i]) / float64(lieTotal)
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Fatalf("lie fraction for %d = %v, want ≈1/3", i, frac)
		}
	}
}

func TestGRRUnbiased(t *testing.T) {
	const n = 40000
	g := MustGRR(4, 1.0)
	rng := NewRand(5, 5)
	agg := NewGRRAggregator(g)
	// 60% hold 0, 40% hold 1.
	for i := 0; i < n; i++ {
		v := 0
		if rng.Float64() > 0.6 {
			v = 1
		}
		agg.Add(g.Perturb(rng, v))
	}
	est := agg.EstimateAll()
	sd := math.Sqrt(g.Variance(n))
	wants := []float64{0.6, 0.4, 0, 0}
	for i, want := range wants {
		if math.Abs(est[i]-want) > 6*sd {
			t.Errorf("estimate[%d] = %v, want %v ± %v", i, est[i], want, 6*sd)
		}
	}
}

func TestGRRVarianceWorseThanOUELargeDomain(t *testing.T) {
	// The reason the paper uses OUE: for large domains at moderate ε, GRR's
	// variance dominates OUE's.
	const d, n = 900, 1000 // ~9|C| for K=10
	g := MustGRR(d, 1.0)
	o := MustOUE(d, 1.0)
	if g.Variance(n) <= o.Variance(n) {
		t.Fatalf("expected GRR variance (%v) > OUE variance (%v) at d=%d",
			g.Variance(n), o.Variance(n), d)
	}
}

func TestGRRAggregatorEmpty(t *testing.T) {
	g := MustGRR(3, 1.0)
	agg := NewGRRAggregator(g)
	for _, e := range agg.EstimateAll() {
		if e != 0 {
			t.Fatal("empty aggregator should estimate 0")
		}
	}
	if agg.N() != 0 {
		t.Fatal("empty aggregator N should be 0")
	}
}
