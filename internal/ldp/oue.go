package ldp

import (
	"fmt"
	"math"
)

// OUE implements the Optimized Unary Encoding frequency oracle (Wang et al.,
// USENIX Security'17), the protocol RetraSyn adopts because it has optimal
// variance among unary-encoding mechanisms (paper §II-A, Eq. 2–3).
//
// A user's value x in a domain of size d is one-hot encoded; the true bit is
// reported as 1 with probability 1/2 and every other bit flips to 1 with
// probability q = 1/(e^ε+1). The curator counts per-index ones over n
// reports and debiases: f̂(x) = (count(x)/n − q) / (1/2 − q).
type OUE struct {
	domain int
	eps    float64
	q      float64 // probability a 0-bit reports 1
}

// NewOUE constructs an OUE oracle for a domain of the given size and privacy
// budget ε > 0.
func NewOUE(domain int, eps float64) (*OUE, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("ldp: OUE domain must be positive, got %d", domain)
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("ldp: OUE requires ε > 0, got %v", eps)
	}
	return &OUE{
		domain: domain,
		eps:    eps,
		q:      1 / (math.Exp(eps) + 1),
	}, nil
}

// MustOUE is NewOUE but panics on error.
func MustOUE(domain int, eps float64) *OUE {
	o, err := NewOUE(domain, eps)
	if err != nil {
		panic(err)
	}
	return o
}

// Domain returns the domain size d.
func (o *OUE) Domain() int { return o.domain }

// Epsilon returns the privacy budget ε.
func (o *OUE) Epsilon() float64 { return o.eps }

// Q returns the perturbation probability q = 1/(e^ε+1) for 0-bits.
func (o *OUE) Q() float64 { return o.q }

// Variance returns the per-index variance of the debiased frequency estimate
// with n reporting users: Var = 4e^ε / (n (e^ε − 1)²), paper Eq. 3.
func (o *OUE) Variance(n int) float64 {
	return Variance(o.eps, n)
}

// Variance is the OUE estimation variance 4e^ε/(n(e^ε−1)²) for budget eps and
// n users (paper Eq. 3). It returns +Inf for n ≤ 0.
func Variance(eps float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	e := math.Exp(eps)
	return 4 * e / (float64(n) * (e - 1) * (e - 1))
}

// Perturb produces a faithful per-user report: the set of indices whose
// perturbed bit is 1. trueIdx must be in [0, d). Expected output size is
// 1/2 + (d−1)·q, so reports are returned sparsely rather than as a d-bit
// vector. Expected cost is O(d·q) via geometric skips rather than O(d).
func (o *OUE) Perturb(rng Rand, trueIdx int) []int {
	ones := make([]int, 0, 1+int(float64(o.domain)*o.q))
	o.perturb(rng, trueIdx, func(i int) { ones = append(ones, i) })
	return ones
}

// perturb is the shared randomization core of Perturb and PerturbPackedInto:
// both consume the random stream identically (true-bit coin, then geometric
// skips below and above the true index), so a round perturbed packed is
// bit-identical to the same round perturbed sparsely.
func (o *OUE) perturb(rng Rand, trueIdx int, emit func(int)) {
	if trueIdx < 0 || trueIdx >= o.domain {
		panic(fmt.Sprintf("ldp: OUE.Perturb index %d out of domain %d", trueIdx, o.domain))
	}
	if Bernoulli(rng, 0.5) {
		emit(trueIdx)
	}
	// Flip 0-bits to 1 with probability q, skipping the true index.
	visitGeometricOnes(rng, 0, trueIdx, o.q, emit)
	visitGeometricOnes(rng, trueIdx+1, o.domain, o.q, emit)
}

// PerturbBits is Perturb materialized as a dense bit vector; it exists for
// API completeness (e.g. to measure wire size) and tests. The returned slice
// has length d.
func (o *OUE) PerturbBits(rng Rand, trueIdx int) []bool {
	bits := make([]bool, o.domain)
	for _, i := range o.Perturb(rng, trueIdx) {
		bits[i] = true
	}
	return bits
}

// visitGeometricOnes emits indices in [lo,hi) selected independently with
// probability p, using geometric skips (expected cost proportional to the
// number selected).
func visitGeometricOnes(rng Rand, lo, hi int, p float64, emit func(int)) {
	if p <= 0 || lo >= hi {
		return
	}
	if p >= 1 {
		for i := lo; i < hi; i++ {
			emit(i)
		}
		return
	}
	logq := math.Log1p(-p)
	i := lo - 1
	for {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		i += 1 + int(math.Floor(math.Log(u)/logq))
		if i >= hi {
			return
		}
		emit(i)
	}
}

// Aggregator accumulates OUE reports and produces unbiased frequency
// estimates. It is not safe for concurrent use; the engine owns one per
// collection round.
type Aggregator struct {
	oracle *OUE
	counts []int
	n      int
}

// NewAggregator creates an empty aggregator for the oracle's domain.
func NewAggregator(o *OUE) *Aggregator {
	return &Aggregator{oracle: o, counts: make([]int, o.domain)}
}

// Add ingests one user's sparse report (indices of 1-bits).
func (a *Aggregator) Add(report []int) {
	for _, i := range report {
		a.counts[i]++
	}
	a.n++
}

// AddCounts ingests pre-summed counts for n users, used by the aggregate
// sampler path. counts must have the oracle's domain length.
func (a *Aggregator) AddCounts(counts []int, n int) {
	if len(counts) != len(a.counts) {
		panic(fmt.Sprintf("ldp: AddCounts length %d ≠ domain %d", len(counts), len(a.counts)))
	}
	for i, c := range counts {
		a.counts[i] += c
	}
	a.n += n
}

// N returns the number of reports ingested.
func (a *Aggregator) N() int { return a.n }

// Counts returns a copy of the per-index one-counts accumulated so far, for
// checkpointing an open collection round; feed it back through AddCounts on
// a fresh aggregator to restore.
func (a *Aggregator) Counts() []int {
	return append([]int(nil), a.counts...)
}

// Estimate returns the debiased frequency estimate for index i as a fraction
// of the reporting population. Estimates are unbiased and may be negative or
// exceed 1; consumers clamp when converting to probabilities (post-processing
// is privacy-free, paper Theorem 2).
func (a *Aggregator) Estimate(i int) float64 {
	if a.n == 0 {
		return 0
	}
	q := a.oracle.q
	return (float64(a.counts[i])/float64(a.n) - q) / (0.5 - q)
}

// EstimateAll returns the debiased estimates for the whole domain. The sum
// of estimates concentrates around 1 since each user holds exactly one value.
func (a *Aggregator) EstimateAll() []float64 {
	out := make([]float64, len(a.counts))
	if a.n == 0 {
		return out
	}
	q := a.oracle.q
	inv := 1 / (0.5 - q)
	nInv := 1 / float64(a.n)
	for i, c := range a.counts {
		out[i] = (float64(c)*nInv - q) * inv
	}
	return out
}

// Reset clears the aggregator for reuse.
func (a *Aggregator) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.n = 0
}

// AggregateOracle simulates the curator-side view of an OUE collection round
// without materializing per-user reports: for index i with n_i true holders
// among n users, the observed count is Binomial(n_i, 1/2) + Binomial(n−n_i,
// q) — exactly the distribution of the sum of n faithful per-user reports.
// This makes paper-scale simulations (10⁵–10⁶ users) tractable while
// remaining statistically indistinguishable from the per-user path (verified
// in tests).
type AggregateOracle struct {
	oracle *OUE
}

// NewAggregateOracle wraps an OUE oracle.
func NewAggregateOracle(o *OUE) *AggregateOracle {
	return &AggregateOracle{oracle: o}
}

// Collect simulates one round: trueCounts[i] users hold value i (Σ = n).
// It returns an Aggregator already loaded with the sampled counts.
func (ao *AggregateOracle) Collect(rng Rand, trueCounts []int) *Aggregator {
	if len(trueCounts) != ao.oracle.domain {
		panic(fmt.Sprintf("ldp: Collect length %d ≠ domain %d", len(trueCounts), ao.oracle.domain))
	}
	n := 0
	for _, c := range trueCounts {
		if c < 0 {
			panic("ldp: negative true count")
		}
		n += c
	}
	counts := make([]int, len(trueCounts))
	for i, ni := range trueCounts {
		counts[i] = Binomial(rng, ni, 0.5) + Binomial(rng, n-ni, ao.oracle.q)
	}
	agg := NewAggregator(ao.oracle)
	agg.AddCounts(counts, n)
	return agg
}
