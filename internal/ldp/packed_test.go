package ldp

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

// TestPackedRoundTrip checks sparse↔packed↔bytes round-trips exactly for
// random domains, including domains that are not multiples of 64.
func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	domains := []int{1, 2, 63, 64, 65, 127, 128, 129, 328, 1000}
	for i := 0; i < 50; i++ {
		domains = append(domains, 1+rng.IntN(2048))
	}
	for _, d := range domains {
		// Random sparse report (unsorted, like Perturb's output order).
		n := rng.IntN(d + 1)
		ones := make([]int, 0, n)
		seen := make(map[int]bool)
		for len(ones) < n {
			v := rng.IntN(d)
			if !seen[v] {
				seen[v] = true
				ones = append(ones, v)
			}
		}
		rng.Shuffle(len(ones), func(a, b int) { ones[a], ones[b] = ones[b], ones[a] })

		p, err := PackReport(ones, d)
		if err != nil {
			t.Fatalf("domain %d: PackReport: %v", d, err)
		}
		if p.OnesCount() != len(ones) {
			t.Fatalf("domain %d: OnesCount %d, want %d", d, p.OnesCount(), len(ones))
		}
		back := p.Ones()
		want := append([]int{}, ones...)
		sort.Ints(want)
		if !reflect.DeepEqual(back, want) {
			t.Fatalf("domain %d: Ones round-trip = %v, want %v", d, back, want)
		}
		for _, i := range ones {
			if !p.Bit(i) {
				t.Fatalf("domain %d: bit %d not set", d, i)
			}
		}

		// Wire round-trip.
		wire := p.Bytes(d)
		if len(wire) != PackedBytes(d) {
			t.Fatalf("domain %d: wire size %d, want %d", d, len(wire), PackedBytes(d))
		}
		q, err := UnpackReportBytes(wire, d)
		if err != nil {
			t.Fatalf("domain %d: UnpackReportBytes: %v", d, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("domain %d: wire round-trip mismatch", d)
		}
		if !bytes.Equal(q.Bytes(d), wire) {
			t.Fatalf("domain %d: re-serialization mismatch", d)
		}
	}
}

func TestPackReportRejectsOutOfDomain(t *testing.T) {
	for _, bad := range [][]int{{-1}, {5}, {0, 4, 5}, {1 << 30}} {
		if _, err := PackReport(bad, 5); err == nil {
			t.Errorf("PackReport(%v, 5) accepted an out-of-domain index", bad)
		}
	}
	if p, err := PackReport([]int{2, 2, 2}, 5); err != nil || p.OnesCount() != 1 {
		t.Errorf("duplicates should collapse: p=%v err=%v", p, err)
	}
}

func TestUnpackReportBytesRejectsMalformed(t *testing.T) {
	// Wrong length.
	if _, err := UnpackReportBytes(make([]byte, 4), 70); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := UnpackReportBytes(make([]byte, 100), 70); err == nil {
		t.Error("long payload accepted")
	}
	// Trailing bits beyond the domain set.
	data := make([]byte, PackedBytes(70))
	data[8] = 0xFF // bits 64..71, but domain ends at 70
	if _, err := UnpackReportBytes(data, 70); err == nil {
		t.Error("payload with bits beyond the domain accepted")
	}
	// Exactly the last valid bit is fine.
	data[8] = 1 << 5 // bit 69
	if _, err := UnpackReportBytes(data, 70); err != nil {
		t.Errorf("last valid bit rejected: %v", err)
	}
}

// TestPerturbPackedMatchesSparse pins the tentpole's bit-identity
// foundation: PerturbPacked consumes the random stream exactly as Perturb
// does, so the same seed yields the same report either way.
func TestPerturbPackedMatchesSparse(t *testing.T) {
	for _, d := range []int{1, 7, 64, 100, 328} {
		for _, eps := range []float64{0.5, 1.0, 4.0} {
			o := MustOUE(d, eps)
			r1 := NewRand(42, uint64(d))
			r2 := NewRand(42, uint64(d))
			for i := 0; i < 200; i++ {
				idx := i % d
				sparse := o.Perturb(r1, idx)
				packed := o.PerturbPacked(r2, idx)
				want, err := PackReport(sparse, d)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(packed, want) {
					t.Fatalf("d=%d ε=%v report %d: packed %v ≠ packed(sparse) %v", d, eps, i, packed, want)
				}
			}
		}
	}
}

// TestPackedFoldBitIdentical is the acceptance-criteria pin: folding a
// round through AddPackedBatch produces counts — and therefore debiased
// estimates — bit-for-bit identical to the sequential per-report Add fold,
// across every shard count, for domains that are and are not multiples of
// 64 and for rounds larger than one counter-network epoch block.
func TestPackedFoldBitIdentical(t *testing.T) {
	cases := []struct {
		domain  int
		reports int
		eps     float64
	}{
		{domain: 17, reports: 3000, eps: 1.0},
		{domain: 64, reports: 1000, eps: 0.5},
		{domain: 328, reports: 5000, eps: 1.0},
		{domain: 130, reports: 40, eps: 2.0}, // smaller than one 16-row block multiple
	}
	for _, tc := range cases {
		o := MustOUE(tc.domain, tc.eps)
		rng := NewRand(7, uint64(tc.domain))
		batch := NewPackedBatch(tc.domain, tc.reports)
		seq := NewAggregator(o)
		for i := 0; i < tc.reports; i++ {
			o.PerturbPackedInto(rng, i%tc.domain, batch.Grow())
			seq.Add(batch.Report(i).Ones())
		}
		wantEst := seq.EstimateAll()
		for _, workers := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
			agg := NewAggregator(o)
			agg.AddPackedBatch(batch, workers)
			if agg.N() != seq.N() {
				t.Fatalf("d=%d workers=%d: N=%d want %d", tc.domain, workers, agg.N(), seq.N())
			}
			if !reflect.DeepEqual(agg.Counts(), seq.Counts()) {
				t.Fatalf("d=%d workers=%d: packed fold counts differ from sequential Add", tc.domain, workers)
			}
			if !reflect.DeepEqual(agg.EstimateAll(), wantEst) {
				t.Fatalf("d=%d workers=%d: estimates not bit-identical", tc.domain, workers)
			}
		}
		// The per-report packed path too.
		one := NewAggregator(o)
		for i := 0; i < tc.reports; i++ {
			one.AddPacked(batch.Report(i))
		}
		if !reflect.DeepEqual(one.Counts(), seq.Counts()) {
			t.Fatalf("d=%d: AddPacked counts differ from Add", tc.domain)
		}
	}
}

// TestPackedFoldSharding forces the sharded path (round above the sharding
// threshold) under multiple worker counts — run under -race in CI.
func TestPackedFoldSharding(t *testing.T) {
	const domain, reports = 90, shardMinPackedReports + 100
	o := MustOUE(domain, 1.0)
	rng := NewRand(3, 4)
	batch := NewPackedBatch(domain, reports)
	want := make([]int, domain)
	for i := 0; i < reports; i++ {
		row := batch.Grow()
		o.PerturbPackedInto(rng, i%domain, row)
		for _, j := range row.Ones() {
			want[j]++
		}
	}
	for _, workers := range []int{2, 4, 8} {
		agg := NewAggregator(o)
		agg.AddPackedBatch(batch, workers)
		if !reflect.DeepEqual(agg.Counts(), want) {
			t.Fatalf("workers=%d: sharded packed fold mismatch", workers)
		}
	}
}

// TestPopcountFoldEpochBoundary drives the fold across the counter-network
// epoch flush with a deterministic dense pattern (all-ones reports), so the
// overflow-plane arithmetic is exercised at depth.
func TestPopcountFoldEpochBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("epoch boundary fold is slow in -short mode")
	}
	const domain = 3
	rows := foldEpochRows + 31 // one full epoch plus a partial block + tail
	w := PackedWords(domain)
	data := make([]uint64, rows*w)
	for r := 0; r < rows; r++ {
		data[r*w] = 0b111
	}
	counts := make([]int, domain)
	popcountFold(counts, data, w, 0, rows)
	for i, c := range counts {
		if c != rows {
			t.Fatalf("counts[%d] = %d, want %d", i, c, rows)
		}
	}
}

func TestPreferPackedCrossover(t *testing.T) {
	// ε=1 on the paper's K=6 domain: ~88 expected ones vs 6 words — packed.
	if !PreferPacked(328, 1.0) {
		t.Error("PreferPacked(328, 1.0) = false, want true")
	}
	// Very high budget → near-one-hot reports → sparse wins.
	if PreferPacked(328, 8.0) {
		t.Error("PreferPacked(328, 8.0) = true, want false")
	}
	// Tiny domains fit in one word either way; expected ones ≥ 1/2 + q·(d−1)
	// against a single word: packed only when dense enough.
	if !PreferPacked(64, 0.5) {
		t.Error("PreferPacked(64, 0.5) = false, want true")
	}
}

// FuzzUnpackReportBytes fuzzes the packed-report wire decoder: arbitrary
// payloads must either decode into a report whose bits all lie inside the
// domain and re-serialize onto the same bytes, or be rejected — never panic.
func FuzzUnpackReportBytes(f *testing.F) {
	f.Add([]byte{0x00}, 5)
	f.Add([]byte{0x1F}, 5)
	f.Add([]byte{0xFF}, 5)
	f.Add(make([]byte, 41), 328)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, data []byte, domain int) {
		if domain < 0 || domain > 1<<16 {
			return
		}
		p, err := UnpackReportBytes(data, domain)
		if err != nil {
			return
		}
		for _, i := range p.Ones() {
			if i < 0 || i >= domain {
				t.Fatalf("decoded bit %d outside domain %d", i, domain)
			}
		}
		if !bytes.Equal(p.Bytes(domain), data) {
			t.Fatalf("accepted payload does not round-trip")
		}
	})
}

// TestUnpackReportBytesIntoMatches pins the zero-copy wire decode against
// the allocating one: identical bits for every payload, identical
// rejections for every malformed one, and a panic (not corruption) when
// the destination row is mis-sized.
func TestUnpackReportBytesIntoMatches(t *testing.T) {
	const domain = 70
	rng := NewRand(41, 5)
	batch := NewPackedBatch(domain, 8)
	for i := 0; i < 8; i++ {
		p := make(PackedReport, PackedWords(domain))
		for j := 0; j < domain; j++ {
			if rng.Float64() < 0.3 {
				p.SetBit(j)
			}
		}
		data := p.Bytes(domain)
		want, err := UnpackReportBytes(data, domain)
		if err != nil {
			t.Fatal(err)
		}
		row := batch.Grow()
		if err := UnpackReportBytesInto(data, domain, row); err != nil {
			t.Fatal(err)
		}
		for g := range want {
			if row[g] != want[g] {
				t.Fatalf("report %d word %d: %#x != %#x", i, g, row[g], want[g])
			}
		}
	}

	dst := make(PackedReport, PackedWords(domain))
	if err := UnpackReportBytesInto(make([]byte, 4), domain, dst); err == nil {
		t.Error("short payload accepted")
	}
	bad := make([]byte, PackedBytes(domain))
	bad[8] = 0xFF // bits 64..71, domain ends at 70
	if err := UnpackReportBytesInto(bad, domain, make(PackedReport, PackedWords(domain))); err == nil {
		t.Error("payload with bits beyond the domain accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("mis-sized destination did not panic")
		}
	}()
	UnpackReportBytesInto(make([]byte, PackedBytes(domain)), domain, make(PackedReport, 1))
}
