package ldp

import (
	"testing"
)

func makeOUEReports(n, domain int, eps float64, seed uint64) (*OUE, [][]int) {
	oracle := MustOUE(domain, eps)
	rng := NewRand(seed, seed+1)
	reports := make([][]int, n)
	for i := range reports {
		reports[i] = oracle.Perturb(rng, i%domain)
	}
	return oracle, reports
}

func TestAddReportsMatchesSequential(t *testing.T) {
	oracle, reports := makeOUEReports(3*shardMinReports, 97, 1.0, 11)
	seq := NewAggregator(oracle)
	for _, r := range reports {
		seq.Add(r)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		par := NewAggregator(oracle)
		par.AddReports(reports, workers)
		if par.N() != seq.N() {
			t.Fatalf("workers=%d: N=%d, want %d", workers, par.N(), seq.N())
		}
		got, want := par.EstimateAll(), seq.EstimateAll()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: estimate[%d]=%v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestAddReportsSmallRoundSequentialFallback(t *testing.T) {
	oracle, reports := makeOUEReports(17, 31, 1.0, 13)
	a := NewAggregator(oracle)
	a.AddReports(reports, 8)
	if a.N() != 17 {
		t.Fatalf("N=%d, want 17", a.N())
	}
}

func TestAddReportsAccumulates(t *testing.T) {
	// AddReports on a non-empty aggregator must add on top, not replace.
	oracle, reports := makeOUEReports(2*shardMinReports, 53, 1.0, 17)
	a := NewAggregator(oracle)
	a.Add(reports[0])
	a.AddReports(reports[1:], 4)
	seq := NewAggregator(oracle)
	for _, r := range reports {
		seq.Add(r)
	}
	if a.N() != seq.N() {
		t.Fatalf("N=%d, want %d", a.N(), seq.N())
	}
	got, want := a.EstimateAll(), seq.EstimateAll()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("estimate[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestOLHAddReportsMatchesSequential(t *testing.T) {
	oracle := MustOLH(64, 1.0)
	rng := NewRand(19, 23)
	seedSrc := NewRand(29, 31)
	reports := make([]OLHReport, 4*shardMinOLHReports)
	for i := range reports {
		reports[i] = oracle.Perturb(rng, seedSrc, i%64)
	}
	seq := NewOLHAggregator(oracle)
	for _, r := range reports {
		seq.Add(r)
	}
	for _, workers := range []int{2, 7, 32} {
		par := NewOLHAggregator(oracle)
		par.AddReports(reports, workers)
		if par.N() != seq.N() {
			t.Fatalf("workers=%d: N=%d, want %d", workers, par.N(), seq.N())
		}
		got, want := par.EstimateAll(), seq.EstimateAll()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: estimate[%d]=%v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {1, 8}, {2048, 16}, {100, 100}, {101, 7},
	} {
		bounds := shardBounds(tc.n, tc.workers)
		if bounds[0] != 0 || bounds[len(bounds)-1] != tc.n {
			t.Fatalf("n=%d workers=%d: bounds %v", tc.n, tc.workers, bounds)
		}
		covered := 0
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("n=%d workers=%d: non-increasing bounds %v", tc.n, tc.workers, bounds)
			}
			covered += bounds[i] - bounds[i-1]
		}
		if covered != tc.n {
			t.Fatalf("n=%d workers=%d: covered %d", tc.n, tc.workers, covered)
		}
		if len(bounds)-1 > tc.workers {
			t.Fatalf("n=%d workers=%d: %d chunks", tc.n, tc.workers, len(bounds)-1)
		}
	}
}
