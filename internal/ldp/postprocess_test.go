package ldp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPostProcessString(t *testing.T) {
	tests := []struct {
		p    PostProcess
		want string
	}{
		{PostProcessNone, "none"},
		{PostProcessClamp, "clamp"},
		{PostProcessNormSub, "norm-sub"},
		{PostProcessNormMul, "norm-mul"},
		{PostProcess(9), "PostProcess(9)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestPostProcessNoneIdentity(t *testing.T) {
	est := []float64{-0.5, 0.3, 1.2}
	out := PostProcessNone.Apply(est)
	want := []float64{-0.5, 0.3, 1.2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("None changed input: %v", out)
		}
	}
}

func TestPostProcessClamp(t *testing.T) {
	est := []float64{-0.5, 0.3, -0.0001, 1.2}
	out := PostProcessClamp.Apply(est)
	if out[0] != 0 || out[2] != 0 {
		t.Fatalf("negatives not clamped: %v", out)
	}
	if out[1] != 0.3 || out[3] != 1.2 {
		t.Fatalf("positives altered: %v", out)
	}
}

func TestNormSubExact(t *testing.T) {
	// est = [0.9, 0.5, -0.2]: with k=2, δ = (1.4−1)/2 = 0.2, giving
	// [0.7, 0.3, 0] which sums to 1 and keeps order.
	est := []float64{0.9, 0.5, -0.2}
	out := PostProcessNormSub.Apply(est)
	want := []float64{0.7, 0.3, 0}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("norm-sub = %v, want %v", out, want)
		}
	}
}

func TestNormSubSumsToOneProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := NewRand(seed, seed+1)
		size := int(n%40) + 1
		est := make([]float64, size)
		for i := range est {
			est[i] = rng.Float64()*2 - 0.5 // mass roughly ~size/2, can exceed 1
		}
		out := PostProcessNormSub.Apply(est)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		// Sums to 1 (norm-sub) or keeps whatever positive mass exists scaled
		// to 1 (fallback); either way the result is a distribution unless
		// the input had no positive mass at all.
		return math.Abs(sum-1) < 1e-9 || sum == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormSubPreservesOrder(t *testing.T) {
	est := []float64{0.05, 0.4, 0.1, 0.6, -0.1}
	out := PostProcessNormSub.Apply(append([]float64(nil), est...))
	for i := range est {
		for j := range est {
			if est[i] < est[j] && out[i] > out[j]+1e-12 {
				t.Fatalf("order violated: in %v out %v", est, out)
			}
		}
	}
}

func TestNormMul(t *testing.T) {
	est := []float64{2, -1, 2}
	out := PostProcessNormMul.Apply(est)
	want := []float64{0.5, 0, 0.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("norm-mul = %v, want %v", out, want)
		}
	}
}

func TestNormMulAllNegative(t *testing.T) {
	est := []float64{-1, -2}
	out := PostProcessNormMul.Apply(est)
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("all-negative input not zeroed: %v", out)
	}
}

func TestNormSubLowMassFallback(t *testing.T) {
	// Total positive mass far below 1: the threshold walk cannot reach mass
	// 1, so the fallback scales up.
	est := []float64{0.1, 0.05, -0.3}
	out := PostProcessNormSub.Apply(est)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fallback sum = %v, want 1 (%v)", sum, out)
	}
}

func TestNormSubEmpty(t *testing.T) {
	if out := PostProcessNormSub.Apply(nil); len(out) != 0 {
		t.Fatal("empty input mishandled")
	}
}
