package ldp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewOUEValidation(t *testing.T) {
	tests := []struct {
		name    string
		domain  int
		eps     float64
		wantErr bool
	}{
		{"ok", 100, 1.0, false},
		{"domain 1 ok", 1, 1.0, false},
		{"zero domain", 0, 1.0, true},
		{"negative domain", -5, 1.0, true},
		{"zero eps", 10, 0, true},
		{"negative eps", 10, -1, true},
		{"nan eps", 10, math.NaN(), true},
		{"inf eps", 10, math.Inf(1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewOUE(tt.domain, tt.eps)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewOUE(%d,%v) err=%v wantErr=%v", tt.domain, tt.eps, err, tt.wantErr)
			}
		})
	}
}

func TestOUEQ(t *testing.T) {
	o := MustOUE(10, 1.0)
	want := 1 / (math.E + 1)
	if math.Abs(o.Q()-want) > 1e-12 {
		t.Fatalf("Q = %v, want %v", o.Q(), want)
	}
}

func TestVarianceFormula(t *testing.T) {
	// Eq. 3: Var = 4e^ε / (n(e^ε−1)²).
	tests := []struct {
		eps float64
		n   int
	}{
		{0.5, 100}, {1.0, 1000}, {2.0, 10}, {1.5, 1},
	}
	for _, tt := range tests {
		e := math.Exp(tt.eps)
		want := 4 * e / (float64(tt.n) * (e - 1) * (e - 1))
		if got := Variance(tt.eps, tt.n); math.Abs(got-want) > 1e-12 {
			t.Errorf("Variance(%v,%d) = %v, want %v", tt.eps, tt.n, got, want)
		}
	}
	if !math.IsInf(Variance(1.0, 0), 1) {
		t.Error("Variance with n=0 should be +Inf")
	}
}

func TestVarianceMonotonic(t *testing.T) {
	// More users and bigger budget both shrink the variance.
	if Variance(1.0, 100) <= Variance(1.0, 1000) {
		t.Error("variance should decrease with n")
	}
	if Variance(0.5, 100) <= Variance(2.0, 100) {
		t.Error("variance should decrease with ε")
	}
}

func TestPerturbIndexPanics(t *testing.T) {
	o := MustOUE(5, 1.0)
	rng := NewRand(1, 1)
	for _, idx := range []int{-1, 5, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Perturb(%d) did not panic", idx)
				}
			}()
			o.Perturb(rng, idx)
		}()
	}
}

func TestPerturbBitsMatchesSparse(t *testing.T) {
	o := MustOUE(64, 1.0)
	rng := NewRand(7, 9)
	bits := o.PerturbBits(rng, 10)
	if len(bits) != 64 {
		t.Fatalf("len(bits) = %d", len(bits))
	}
}

func TestPerturbBitRates(t *testing.T) {
	// Empirically check P[1→1] ≈ 1/2 and P[0→1] ≈ q.
	const trials = 20000
	o := MustOUE(8, 1.0)
	rng := NewRand(42, 43)
	trueOnes, falseOnes := 0, 0
	for i := 0; i < trials; i++ {
		for _, idx := range o.Perturb(rng, 3) {
			if idx == 3 {
				trueOnes++
			} else {
				falseOnes++
			}
		}
	}
	pTrue := float64(trueOnes) / trials
	pFalse := float64(falseOnes) / (trials * 7)
	if math.Abs(pTrue-0.5) > 0.02 {
		t.Errorf("P[1→1] = %v, want ≈0.5", pTrue)
	}
	if math.Abs(pFalse-o.Q()) > 0.02 {
		t.Errorf("P[0→1] = %v, want ≈%v", pFalse, o.Q())
	}
}

func TestOUEUnbiased(t *testing.T) {
	// With many users holding a known distribution, estimates converge to it.
	const n = 30000
	o := MustOUE(4, 1.0)
	rng := NewRand(5, 6)
	// True distribution: 0.5, 0.3, 0.2, 0.0
	truth := []float64{0.5, 0.3, 0.2, 0.0}
	agg := NewAggregator(o)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		v := 0
		switch {
		case u < 0.5:
			v = 0
		case u < 0.8:
			v = 1
		default:
			v = 2
		}
		agg.Add(o.Perturb(rng, v))
	}
	if agg.N() != n {
		t.Fatalf("N = %d", agg.N())
	}
	est := agg.EstimateAll()
	sd := math.Sqrt(Variance(1.0, n))
	for i, want := range truth {
		if math.Abs(est[i]-want) > 6*sd {
			t.Errorf("estimate[%d] = %v, want %v ± %v", i, est[i], want, 6*sd)
		}
	}
}

func TestOUEEstimatesSumNearOne(t *testing.T) {
	const n = 20000
	o := MustOUE(32, 1.0)
	rng := NewRand(11, 13)
	agg := NewAggregator(o)
	for i := 0; i < n; i++ {
		agg.Add(o.Perturb(rng, rng.IntN(32)))
	}
	sum := 0.0
	for _, e := range agg.EstimateAll() {
		sum += e
	}
	// Per-index sd ≈ 0.0136 at ε=1, n=20k; the 32 indices are independent, so
	// the sum's sd ≈ 0.077 — allow ~4σ.
	if math.Abs(sum-1) > 0.3 {
		t.Fatalf("sum of estimates = %v, want ≈ 1", sum)
	}
}

func TestAggregatorEstimateMatchesEstimateAll(t *testing.T) {
	o := MustOUE(16, 0.8)
	rng := NewRand(3, 3)
	agg := NewAggregator(o)
	for i := 0; i < 500; i++ {
		agg.Add(o.Perturb(rng, i%16))
	}
	all := agg.EstimateAll()
	for i := range all {
		if math.Abs(agg.Estimate(i)-all[i]) > 1e-12 {
			t.Fatalf("Estimate(%d) = %v ≠ EstimateAll %v", i, agg.Estimate(i), all[i])
		}
	}
}

func TestAggregatorEmpty(t *testing.T) {
	o := MustOUE(4, 1.0)
	agg := NewAggregator(o)
	if agg.Estimate(0) != 0 {
		t.Error("empty aggregator estimate should be 0")
	}
	for _, e := range agg.EstimateAll() {
		if e != 0 {
			t.Error("empty aggregator estimates should be 0")
		}
	}
}

func TestAggregatorReset(t *testing.T) {
	o := MustOUE(4, 1.0)
	rng := NewRand(1, 2)
	agg := NewAggregator(o)
	agg.Add(o.Perturb(rng, 1))
	agg.Reset()
	if agg.N() != 0 {
		t.Fatalf("N after reset = %d", agg.N())
	}
	for _, e := range agg.EstimateAll() {
		if e != 0 {
			t.Error("estimates after reset should be 0")
		}
	}
}

func TestAddCountsLengthPanics(t *testing.T) {
	o := MustOUE(4, 1.0)
	agg := NewAggregator(o)
	defer func() {
		if recover() == nil {
			t.Fatal("AddCounts with wrong length did not panic")
		}
	}()
	agg.AddCounts([]int{1, 2}, 2)
}

func TestAggregateOracleMatchesPerUser(t *testing.T) {
	// The aggregate sampler and the faithful per-user path must produce
	// statistically indistinguishable estimates for the same true counts.
	const n = 20000
	const d = 8
	o := MustOUE(d, 1.0)
	trueCounts := []int{8000, 4000, 3000, 2000, 1500, 1000, 500, 0}

	// Per-user path.
	rng1 := NewRand(100, 200)
	aggUser := NewAggregator(o)
	for v, c := range trueCounts {
		for i := 0; i < c; i++ {
			aggUser.Add(o.Perturb(rng1, v))
		}
	}
	// Aggregate path.
	rng2 := NewRand(300, 400)
	aggFast := NewAggregateOracle(o).Collect(rng2, trueCounts)

	if aggFast.N() != n || aggUser.N() != n {
		t.Fatalf("N mismatch: %d vs %d", aggUser.N(), aggFast.N())
	}
	sd := math.Sqrt(Variance(1.0, n))
	eu, ef := aggUser.EstimateAll(), aggFast.EstimateAll()
	for i := range eu {
		want := float64(trueCounts[i]) / n
		if math.Abs(eu[i]-want) > 6*sd {
			t.Errorf("per-user estimate[%d] = %v, want %v", i, eu[i], want)
		}
		if math.Abs(ef[i]-want) > 6*sd {
			t.Errorf("aggregate estimate[%d] = %v, want %v", i, ef[i], want)
		}
	}
}

func TestAggregateOracleValidation(t *testing.T) {
	o := MustOUE(4, 1.0)
	ao := NewAggregateOracle(o)
	rng := NewRand(1, 1)
	t.Run("wrong length", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		ao.Collect(rng, []int{1, 2, 3})
	})
	t.Run("negative count", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		ao.Collect(rng, []int{1, -1, 0, 0})
	})
}

func TestAggregateOracleZeroUsers(t *testing.T) {
	o := MustOUE(4, 1.0)
	agg := NewAggregateOracle(o).Collect(NewRand(1, 1), []int{0, 0, 0, 0})
	if agg.N() != 0 {
		t.Fatalf("N = %d", agg.N())
	}
}

func TestPerturbSparseSizeProperty(t *testing.T) {
	// Report size concentrates around 1/2 + (d−1)q.
	f := func(seed uint64) bool {
		o := MustOUE(128, 1.0)
		rng := NewRand(seed, seed^0x9e3779b9)
		total := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			total += len(o.Perturb(rng, int(seed%128)))
		}
		mean := float64(total) / trials
		want := 0.5 + 127*o.Q()
		return math.Abs(mean-want) < 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
