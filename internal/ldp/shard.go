package ldp

import (
	"fmt"
	"runtime"
	"sync"
)

// Sharded report aggregation. Folding a collection round's reports into the
// per-index counts is embarrassingly parallel and exactly order-independent
// (integer addition commutes), so sharding across workers changes nothing
// about the estimates — per-user mode at paper scale folds 10⁵–10⁶ sparse
// |S|-bit reports per round, which is the curator's aggregation hot path.

// shardMinReports is the round size below which spawning workers costs more
// than the fold itself. OLH's per-report work is O(domain), so its threshold
// is far lower; the packed fold's per-report work is so small (a handful of
// ALU ops per word) that sharding only pays for much larger rounds.
const (
	shardMinReports       = 2048
	shardMinOLHReports    = 128
	shardMinPackedReports = 1 << 14
)

// DefaultWorkers is the worker count the engine uses for sharded
// aggregation: one per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// shardBounds splits n items into at most workers contiguous chunks and
// returns the chunk boundaries (len = chunks+1).
func shardBounds(n, workers int) []int {
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	bounds := []int{0}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds = append(bounds, hi)
	}
	return bounds
}

// AddReports folds many sparse OUE reports into the aggregator, sharding the
// counting across up to workers goroutines when the round is large enough to
// pay for them. The result is identical to calling Add for every report in
// order; workers ≤ 1 (or a small round) falls back to the sequential fold.
func (a *Aggregator) AddReports(reports [][]int, workers int) {
	if workers <= 1 || len(reports) < shardMinReports {
		for _, r := range reports {
			a.Add(r)
		}
		return
	}
	bounds := shardBounds(len(reports), workers)
	shards := make([][]int, len(bounds)-1)
	var wg sync.WaitGroup
	for w := 0; w < len(bounds)-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts := make([]int, len(a.counts))
			for _, r := range reports[bounds[w]:bounds[w+1]] {
				for _, i := range r {
					counts[i]++
				}
			}
			shards[w] = counts
		}(w)
	}
	wg.Wait()
	for _, counts := range shards {
		for i, c := range counts {
			a.counts[i] += c
		}
	}
	a.n += len(reports)
}

// AddPackedBatch folds a whole packed round into the aggregator with the
// word-parallel carry-save counter network (popcountFold), sharding the rows
// across up to workers goroutines for large rounds. Each shard folds a
// contiguous row range into its own cache-local count vector; the shards
// then merge in ascending shard order — deterministic, and since integer
// addition commutes, the counts (and therefore the estimates) are
// bit-identical to calling Add on every report's ones in order.
func (a *Aggregator) AddPackedBatch(b *PackedBatch, workers int) {
	if b.domain != len(a.counts) {
		panic(fmt.Sprintf("ldp: AddPackedBatch domain %d ≠ aggregator domain %d", b.domain, len(a.counts)))
	}
	n := b.Len()
	if workers <= 1 || n < shardMinPackedReports {
		popcountFold(a.counts, b.data, b.words, 0, n)
		a.n += n
		return
	}
	bounds := shardBounds(n, workers)
	shards := make([][]int, len(bounds)-1)
	var wg sync.WaitGroup
	for w := 0; w < len(bounds)-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts := make([]int, len(a.counts))
			popcountFold(counts, b.data, b.words, bounds[w], bounds[w+1])
			shards[w] = counts
		}(w)
	}
	wg.Wait()
	for _, counts := range shards {
		for i, c := range counts {
			a.counts[i] += c
		}
	}
	a.n += n
}

// AddReports folds many OLH reports, sharding the O(domain)-per-report
// support counting across up to workers goroutines. Identical to calling Add
// for every report in order.
func (a *OLHAggregator) AddReports(reports []OLHReport, workers int) {
	if workers <= 1 || len(reports) < shardMinOLHReports {
		for _, r := range reports {
			a.Add(r)
		}
		return
	}
	bounds := shardBounds(len(reports), workers)
	shards := make([][]int, len(bounds)-1)
	var wg sync.WaitGroup
	for w := 0; w < len(bounds)-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			support := make([]int, len(a.support))
			for _, r := range reports[bounds[w]:bounds[w+1]] {
				a.oracle.supportScan(r, a.premix, support)
			}
			shards[w] = support
		}(w)
	}
	wg.Wait()
	for _, support := range shards {
		for i, s := range support {
			a.support[i] += s
		}
	}
	a.n += len(reports)
}
