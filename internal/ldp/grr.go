package ldp

import (
	"fmt"
	"math"
)

// GRR implements Generalized Randomized Response (direct encoding): the user
// reports the true value with probability p = e^ε/(e^ε+d−1) and any other
// single value uniformly otherwise. It is included as the classic frequency
// oracle to compare against OUE — GRR's variance grows linearly with the
// domain size, which is why the paper adopts OUE for the ~9|C| transition
// domain.
type GRR struct {
	domain int
	eps    float64
	p      float64 // probability of reporting the true value
}

// NewGRR constructs a GRR oracle.
func NewGRR(domain int, eps float64) (*GRR, error) {
	if domain <= 1 {
		return nil, fmt.Errorf("ldp: GRR domain must be ≥ 2, got %d", domain)
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("ldp: GRR requires ε > 0, got %v", eps)
	}
	e := math.Exp(eps)
	return &GRR{domain: domain, eps: eps, p: e / (e + float64(domain) - 1)}, nil
}

// MustGRR is NewGRR but panics on error.
func MustGRR(domain int, eps float64) *GRR {
	g, err := NewGRR(domain, eps)
	if err != nil {
		panic(err)
	}
	return g
}

// Domain returns the domain size.
func (g *GRR) Domain() int { return g.domain }

// Epsilon returns the privacy budget.
func (g *GRR) Epsilon() float64 { return g.eps }

// P returns the truthful-report probability e^ε/(e^ε+d−1).
func (g *GRR) P() float64 { return g.p }

// Variance returns the per-index frequency estimation variance for n users:
// Var = (d−2+e^ε) / (n (e^ε−1)²) · ... the standard GRR variance
// q(1−q)/(n(p−q)²) evaluated at the oracle's parameters, where
// q = (1−p)/(d−1).
func (g *GRR) Variance(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	q := (1 - g.p) / float64(g.domain-1)
	return q * (1 - q) / (float64(n) * (g.p - q) * (g.p - q))
}

// Perturb returns the randomized value for trueIdx.
func (g *GRR) Perturb(rng Rand, trueIdx int) int {
	if trueIdx < 0 || trueIdx >= g.domain {
		panic(fmt.Sprintf("ldp: GRR.Perturb index %d out of domain %d", trueIdx, g.domain))
	}
	if Bernoulli(rng, g.p) {
		return trueIdx
	}
	// Uniform over the other d−1 values.
	v := rng.IntN(g.domain - 1)
	if v >= trueIdx {
		v++
	}
	return v
}

// GRRAggregator accumulates GRR reports and debiases frequencies.
type GRRAggregator struct {
	oracle *GRR
	counts []int
	n      int
}

// NewGRRAggregator creates an empty aggregator.
func NewGRRAggregator(g *GRR) *GRRAggregator {
	return &GRRAggregator{oracle: g, counts: make([]int, g.domain)}
}

// Add ingests one perturbed value.
func (a *GRRAggregator) Add(value int) {
	a.counts[value]++
	a.n++
}

// N returns the number of reports ingested.
func (a *GRRAggregator) N() int { return a.n }

// EstimateAll returns unbiased frequency estimates:
// f̂(x) = (count(x)/n − q) / (p − q) with q = (1−p)/(d−1).
func (a *GRRAggregator) EstimateAll() []float64 {
	out := make([]float64, len(a.counts))
	if a.n == 0 {
		return out
	}
	p := a.oracle.p
	q := (1 - p) / float64(a.oracle.domain-1)
	inv := 1 / (p - q)
	nInv := 1 / float64(a.n)
	for i, c := range a.counts {
		out[i] = (float64(c)*nInv - q) * inv
	}
	return out
}
