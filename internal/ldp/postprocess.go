package ldp

import (
	"fmt"
	"sort"
)

// PostProcess names a consistency post-processing method applied to a
// frequency-estimate vector before it feeds the mobility model. Since each
// user holds exactly one transition state, the true vector is a probability
// distribution; projecting the noisy estimate back onto (or toward) the
// simplex is privacy-free (paper Theorem 2) and reduces the mass the
// clamped noise would otherwise inject into the synthesizer. The taxonomy
// follows Wang et al., "Locally Differentially Private Frequency Estimation
// with Consistency" (NDSS'20).
type PostProcess int

const (
	// PostProcessNone keeps the raw unbiased estimates (RetraSyn's default:
	// the DMU comparison wants unbiased inputs; negatives are clamped only
	// at probability-conversion time).
	PostProcessNone PostProcess = iota
	// PostProcessClamp zeroes negative estimates (Base-Cut without the
	// renormalization).
	PostProcessClamp
	// PostProcessNormSub shifts all estimates by a common δ and clamps at
	// zero such that the result sums to one — the maximum-likelihood
	// projection onto the simplex under Gaussian noise, and the
	// best-performing general-purpose method in the NDSS'20 study.
	PostProcessNormSub
	// PostProcessNormMul scales the positive estimates to sum to one.
	PostProcessNormMul
)

// String implements fmt.Stringer.
func (p PostProcess) String() string {
	switch p {
	case PostProcessNone:
		return "none"
	case PostProcessClamp:
		return "clamp"
	case PostProcessNormSub:
		return "norm-sub"
	case PostProcessNormMul:
		return "norm-mul"
	default:
		return fmt.Sprintf("PostProcess(%d)", int(p))
	}
}

// Apply transforms est in place and returns it.
func (p PostProcess) Apply(est []float64) []float64 {
	switch p {
	case PostProcessClamp:
		for i, v := range est {
			if v < 0 {
				est[i] = 0
			}
		}
	case PostProcessNormSub:
		normSub(est)
	case PostProcessNormMul:
		normMul(est)
	}
	return est
}

// normSub finds δ with Σ max(0, est_i − δ) = 1 and applies it. If even
// δ = min(est) cannot reach mass 1 (total mass below 1 after clamping),
// it falls back to clamping and scaling up.
func normSub(est []float64) {
	n := len(est)
	if n == 0 {
		return
	}
	sorted := make([]float64, n)
	copy(sorted, est)
	sort.Float64s(sorted)

	// Walk thresholds from the largest value down: with the top k values
	// active, Σ_top-k (v − δ) = 1 → δ = (Σ top-k − 1)/k. Valid when δ lies
	// between the (k+1)-th and k-th largest values.
	suffix := 0.0
	for k := 1; k <= n; k++ {
		v := sorted[n-k]
		suffix += v
		delta := (suffix - 1) / float64(k)
		lower := -1e308
		if k < n {
			lower = sorted[n-k-1]
		}
		if delta <= v && delta >= lower {
			for i, e := range est {
				if e-delta > 0 {
					est[i] = e - delta
				} else {
					est[i] = 0
				}
			}
			return
		}
	}
	// All mass below 1 even at δ = min: clamp and scale.
	normMul(est)
}

// normMul clamps negatives and scales to unit mass (no-op on all-zero
// input).
func normMul(est []float64) {
	total := 0.0
	for i, v := range est {
		if v < 0 {
			est[i] = 0
		} else {
			total += v
		}
	}
	if total <= 0 {
		return
	}
	inv := 1 / total
	for i := range est {
		est[i] *= inv
	}
}
