package ldp

import (
	"fmt"
	"math/bits"
)

// Bit-packed OUE reports. An OUE report is a 0/1 vector over the domain, so
// it packs into ⌈d/64⌉ machine words; the curator can then fold a whole
// round with a word-parallel carry-save counter network (see popcountFold)
// instead of chasing one index at a time. At paper scale (10⁵–10⁶ reports
// per round) the packed fold runs at memory bandwidth — an order of
// magnitude faster than the sparse per-index fold — while producing
// bit-identical counts.

// PackedWords returns the number of 64-bit words a packed report over a
// domain of the given size occupies: ⌈domain/64⌉.
func PackedWords(domain int) int { return (domain + 63) / 64 }

// PackedBytes returns the wire size of a packed report: ⌈domain/8⌉ bytes.
func PackedBytes(domain int) int { return (domain + 7) / 8 }

// PackedReport is a dense OUE report: bit i (word i/64, bit i%64) is the
// perturbed bit for domain index i. Bits at or beyond the domain size must
// stay zero — the fold counts every set bit it sees.
type PackedReport []uint64

// Bit reports whether index i is set. i must be within the report's words.
func (p PackedReport) Bit(i int) bool { return p[i>>6]&(1<<uint(i&63)) != 0 }

// SetBit sets index i. i must be within the report's words.
func (p PackedReport) SetBit(i int) { p[i>>6] |= 1 << uint(i&63) }

// OnesCount returns the number of set bits.
func (p PackedReport) OnesCount() int {
	n := 0
	for _, w := range p {
		n += bits.OnesCount64(w)
	}
	return n
}

// Ones unpacks the report into the ascending indices of its set bits — the
// sparse representation Aggregator.Add consumes.
func (p PackedReport) Ones() []int {
	ones := make([]int, 0, p.OnesCount())
	for g, w := range p {
		base := g << 6
		for w != 0 {
			ones = append(ones, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return ones
}

// PackReport converts a sparse report (indices of 1-bits, any order) into
// the packed representation for the domain. Out-of-domain indices are
// rejected with an error — this is the validation boundary the curator
// relies on — and duplicate indices collapse into one set bit.
func PackReport(ones []int, domain int) (PackedReport, error) {
	p := make(PackedReport, PackedWords(domain))
	for _, i := range ones {
		if i < 0 || i >= domain {
			return nil, fmt.Errorf("ldp: report bit %d outside domain [0, %d)", i, domain)
		}
		p.SetBit(i)
	}
	return p, nil
}

// Bytes serializes the report little-endian into ⌈domain/8⌉ bytes — the
// packed wire format. The receiving side decodes with UnpackReportBytes.
func (p PackedReport) Bytes(domain int) []byte {
	out := make([]byte, PackedBytes(domain))
	for i := range out {
		out[i] = byte(p[i>>3] >> uint((i&7)*8))
	}
	return out
}

// UnpackReportBytes decodes a little-endian packed report off the wire,
// rejecting payloads of the wrong length and payloads with bits set at or
// beyond the domain size (which would corrupt — or, unchecked, panic — the
// curator's fold).
func UnpackReportBytes(data []byte, domain int) (PackedReport, error) {
	if len(data) != PackedBytes(domain) {
		return nil, fmt.Errorf("ldp: packed report is %d bytes, want %d for domain %d", len(data), PackedBytes(domain), domain)
	}
	p := make(PackedReport, PackedWords(domain))
	for i, b := range data {
		p[i>>3] |= uint64(b) << uint((i&7)*8)
	}
	if tail := domain & 63; tail != 0 {
		if p[len(p)-1]&^(1<<uint(tail)-1) != 0 {
			return nil, fmt.Errorf("ldp: packed report has bits set beyond domain %d", domain)
		}
	}
	return p, nil
}

// UnpackReportBytesInto is UnpackReportBytes decoding into a caller-owned
// all-zero report (e.g. a PackedBatch.Grow row), so a wire batch streams
// straight into the fold buffer with no per-report allocation or copy. dst
// must have PackedWords(domain) words; validation matches
// UnpackReportBytes. On error dst may hold a partial decode — callers
// discard the batch on error, so no row is ever folded.
func UnpackReportBytesInto(data []byte, domain int, dst PackedReport) error {
	if len(dst) != PackedWords(domain) {
		panic(fmt.Sprintf("ldp: UnpackReportBytesInto dst has %d words, want %d", len(dst), PackedWords(domain)))
	}
	if len(data) != PackedBytes(domain) {
		return fmt.Errorf("ldp: packed report is %d bytes, want %d for domain %d", len(data), PackedBytes(domain), domain)
	}
	for i, b := range data {
		dst[i>>3] |= uint64(b) << uint((i&7)*8)
	}
	if tail := domain & 63; tail != 0 {
		if dst[len(dst)-1]&^(1<<uint(tail)-1) != 0 {
			return fmt.Errorf("ldp: packed report has bits set beyond domain %d", domain)
		}
	}
	return nil
}

// PerturbPacked is Perturb with a packed result. It consumes the random
// stream exactly as Perturb does, so a round collected packed is
// bit-identical to the same round collected sparsely.
func (o *OUE) PerturbPacked(rng Rand, trueIdx int) PackedReport {
	p := make(PackedReport, PackedWords(o.domain))
	o.PerturbPackedInto(rng, trueIdx, p)
	return p
}

// PerturbPackedInto perturbs into a caller-owned report (e.g. a
// PackedBatch.Grow row), avoiding the per-report allocation. dst must be
// all-zero with PackedWords(domain) words.
func (o *OUE) PerturbPackedInto(rng Rand, trueIdx int, dst PackedReport) {
	if len(dst) != PackedWords(o.domain) {
		panic(fmt.Sprintf("ldp: PerturbPackedInto dst has %d words, want %d", len(dst), PackedWords(o.domain)))
	}
	o.perturb(rng, trueIdx, func(i int) { dst[i>>6] |= 1 << uint(i&63) })
}

// ExpectedOnes returns the expected number of 1-bits in one OUE report:
// ½ + (d−1)·q, the true bit's coin plus the background flips.
func ExpectedOnes(domain int, eps float64) float64 {
	o := MustOUE(domain, eps)
	return 0.5 + float64(domain-1)*o.q
}

// PreferPacked reports whether the packed representation beats the sparse
// one for a round at this domain size and budget: the density crossover.
// A sparse report holds one machine word per expected 1-bit (½+(d−1)q of
// them); the packed report always holds ⌈d/64⌉ words, so packed wins when
// the expected ones-rate exceeds one per 64 indices — for OUE that is
// q ≥ ~1/64, i.e. ε ≲ ln 63 ≈ 4.1, essentially every realistic budget.
func PreferPacked(domain int, eps float64) bool {
	return float64(PackedWords(domain)) <= ExpectedOnes(domain, eps)
}

// PackedBatch is one collection round's packed reports in a single
// contiguous buffer (row r occupies words [r·W, (r+1)·W)), the layout the
// word-parallel fold streams through once, cache-line by cache-line.
type PackedBatch struct {
	domain int
	words  int
	data   []uint64
}

// NewPackedBatch creates an empty batch for the domain, pre-sizing for
// capacity reports.
func NewPackedBatch(domain, capacity int) *PackedBatch {
	if domain <= 0 {
		panic(fmt.Sprintf("ldp: PackedBatch domain must be positive, got %d", domain))
	}
	w := PackedWords(domain)
	if capacity < 0 {
		capacity = 0
	}
	return &PackedBatch{domain: domain, words: w, data: make([]uint64, 0, capacity*w)}
}

// Domain returns the batch's domain size.
func (b *PackedBatch) Domain() int { return b.domain }

// Words returns the per-report word count ⌈domain/64⌉.
func (b *PackedBatch) Words() int { return b.words }

// Len returns the number of reports in the batch.
func (b *PackedBatch) Len() int { return len(b.data) / b.words }

// Grow appends an all-zero report and returns it for in-place filling
// (PerturbPackedInto writes straight into the batch, no copy).
func (b *PackedBatch) Grow() PackedReport {
	n := len(b.data)
	b.data = append(b.data, make([]uint64, b.words)...)
	return PackedReport(b.data[n : n+b.words])
}

// Append copies a packed report into the batch. The report must have the
// batch's word count.
func (b *PackedBatch) Append(p PackedReport) {
	if len(p) != b.words {
		panic(fmt.Sprintf("ldp: Append report has %d words, batch wants %d", len(p), b.words))
	}
	b.data = append(b.data, p...)
}

// Report returns a view of report r (aliasing the batch buffer).
func (b *PackedBatch) Report(r int) PackedReport {
	return PackedReport(b.data[r*b.words : (r+1)*b.words])
}

// AddPacked ingests one packed report, identical to Add(p.Ones()).
func (a *Aggregator) AddPacked(p PackedReport) {
	if len(p) != PackedWords(len(a.counts)) {
		panic(fmt.Sprintf("ldp: AddPacked report has %d words, domain %d wants %d", len(p), len(a.counts), PackedWords(len(a.counts))))
	}
	for g, w := range p {
		base := g << 6
		for w != 0 {
			a.counts[base+bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
	a.n++
}

// csa is a carry-save full adder over bit-planes: it sums three words of
// equal weight into a same-weight sum plane and a double-weight carry plane.
func csa(a, b, c uint64) (sum, carry uint64) {
	u := a ^ b
	return u ^ c, (a & b) | (u & c)
}

// foldEpochRows bounds how many rows one counter-network epoch may absorb
// before flushing into the integer counts: the weight-16 overflow planes
// saturate after 2¹⁶−1 sixteens, i.e. 16·(2¹⁶−1) ≈ 1.05M rows. 2¹⁹ leaves
// a ×2 margin.
const foldEpochRows = 1 << 19

// foldSuperRows is the cache superblock: the word-group loop runs outside
// the row loop within one superblock, so the weight planes live in
// registers for superRows/16 consecutive CSA blocks while the superblock's
// rows (superRows·w words ≤ ~24KB for paper-scale domains) stay L1-hot
// across the w passes. Must be a multiple of 16.
const foldSuperRows = 512

// popcountFold adds the per-index one-counts of rows [lo, hi) of a packed
// buffer (w words per row) into counts — positional popcount via a
// Harley–Seal carry-save network: 16 rows at a time are compressed into
// persistent weight-1/2/4/8 bit-planes, weight-16 carries spill into an
// overflow plane stack, and the planes flush into the integer counts at
// epoch boundaries. One pass over the buffer, ~5 ALU ops per word, no
// branches in the hot loop except the (rare) carry spill.
func popcountFold(counts []int, data []uint64, w, lo, hi int) {
	if w <= 0 || lo >= hi {
		return
	}
	// Per-word-group persistent planes: weight 1, 2, 4, 8, then 16·2^k
	// overflow planes (16 per group), allocated flat.
	ones := make([]uint64, w)
	twos := make([]uint64, w)
	fours := make([]uint64, w)
	eights := make([]uint64, w)
	over := make([]uint64, w*16)

	flush := func() {
		for g := 0; g < w; g++ {
			base := g << 6
			ov := over[g*16 : g*16+16]
			for j := 0; j < 64 && base+j < len(counts); j++ {
				c := int(ones[g]>>uint(j)&1) +
					int(twos[g]>>uint(j)&1)<<1 +
					int(fours[g]>>uint(j)&1)<<2 +
					int(eights[g]>>uint(j)&1)<<3
				for k := 0; k < 16; k++ {
					c += int(ov[k]>>uint(j)&1) << uint(4+k)
				}
				counts[base+j] += c
			}
		}
		for i := range ones {
			ones[i], twos[i], fours[i], eights[i] = 0, 0, 0, 0
		}
		for i := range over {
			over[i] = 0
		}
	}

	for epoch := lo; epoch < hi; epoch += foldEpochRows {
		end := epoch + foldEpochRows
		if end > hi {
			end = hi
		}
		r := epoch
		full := r + (end-r)&^15 // last 16-row block boundary in this epoch
		for sb := r; sb < full; sb += foldSuperRows {
			se := sb + foldSuperRows
			if se > full {
				se = full
			}
			for g := 0; g < w; g++ {
				o, t, f, e := ones[g], twos[g], fours[g], eights[g]
				ov := over[g*16 : g*16+16]
				for rr := sb; rr < se; rr += 16 {
					// Slicing exactly to the block's highest strided index
					// lets one bounds check cover d[15*w]; counting is
					// commutative, so the rows may enter the adder network
					// highest-first.
					q := rr*w + g
					d := data[q : q+15*w+1]
					var twosA, twosB, foursA, foursB, eightsA, eightsB, sixteen uint64
					o, twosA = csa(o, d[15*w], d[14*w])
					o, twosB = csa(o, d[13*w], d[12*w])
					t, foursA = csa(t, twosA, twosB)
					o, twosA = csa(o, d[11*w], d[10*w])
					o, twosB = csa(o, d[9*w], d[8*w])
					t, foursB = csa(t, twosA, twosB)
					f, eightsA = csa(f, foursA, foursB)
					o, twosA = csa(o, d[7*w], d[6*w])
					o, twosB = csa(o, d[5*w], d[4*w])
					t, foursA = csa(t, twosA, twosB)
					o, twosA = csa(o, d[3*w], d[2*w])
					o, twosB = csa(o, d[w], d[0])
					t, foursB = csa(t, twosA, twosB)
					f, eightsB = csa(f, foursA, foursB)
					e, sixteen = csa(e, eightsA, eightsB)
					// Spill the weight-16 carry into the overflow plane
					// stack; the carry chain dies off geometrically, so this
					// loop runs ~once per block.
					c := sixteen
					for k := 0; c != 0; k++ {
						s := ov[k] & c
						ov[k] ^= c
						c = s
					}
				}
				ones[g], twos[g], fours[g], eights[g] = o, t, f, e
			}
		}
		r = full
		// Tail rows (< 16): fold per-bit straight into the counts.
		for ; r < end; r++ {
			p := r * w
			for g := 0; g < w; g++ {
				x := data[p+g]
				base := g << 6
				for x != 0 {
					counts[base+bits.TrailingZeros64(x)]++
					x &= x - 1
				}
			}
		}
		flush()
	}
}
