package ldp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialEdgeCases(t *testing.T) {
	rng := NewRand(1, 2)
	tests := []struct {
		n    int
		p    float64
		want int
	}{
		{0, 0.5, 0},
		{-5, 0.5, 0},
		{100, 0, 0},
		{100, -0.3, 0},
		{100, 1, 100},
		{100, 1.5, 100},
	}
	for _, tt := range tests {
		if got := Binomial(rng, tt.n, tt.p); got != tt.want {
			t.Errorf("Binomial(%d,%v) = %d, want %d", tt.n, tt.p, got, tt.want)
		}
	}
}

func TestBinomialRange(t *testing.T) {
	rng := NewRand(3, 4)
	for i := 0; i < 2000; i++ {
		n := 1 + rng.IntN(500)
		p := rng.Float64()
		k := Binomial(rng, n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d,%v) = %d out of range", n, p, k)
		}
	}
}

func TestBinomialMomentsExactPath(t *testing.T) {
	// n·p below the exact threshold exercises the geometric sampler.
	const n, p, trials = 200, 0.1, 30000
	rng := NewRand(10, 20)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		k := float64(Binomial(rng, n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	wantMean, wantVar := float64(n)*p, float64(n)*p*(1-p)
	if math.Abs(mean-wantMean) > 0.25 {
		t.Errorf("mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 1.5 {
		t.Errorf("variance = %v, want %v", variance, wantVar)
	}
}

func TestBinomialMomentsNormalPath(t *testing.T) {
	// n·p above the threshold exercises the Gaussian approximation.
	const n, p, trials = 50000, 0.3, 5000
	rng := NewRand(11, 21)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		k := float64(Binomial(rng, n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	wantMean, wantVar := float64(n)*p, float64(n)*p*(1-p)
	if math.Abs(mean-wantMean) > 10 {
		t.Errorf("mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(variance/wantVar-1) > 0.1 {
		t.Errorf("variance = %v, want %v", variance, wantVar)
	}
}

func TestBinomialHighPInversion(t *testing.T) {
	// p > 0.5 exercises the inversion branch.
	const n, p, trials = 100, 0.9, 20000
	rng := NewRand(12, 22)
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(Binomial(rng, n, p))
	}
	mean := sum / trials
	if math.Abs(mean-90) > 0.5 {
		t.Errorf("mean = %v, want 90", mean)
	}
}

func TestBinomialMeanProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, pRaw uint16) bool {
		n := int(nRaw%1000) + 1
		p := float64(pRaw%1000) / 1000
		rng := NewRand(seed, seed+1)
		const trials = 400
		sum := 0
		for i := 0; i < trials; i++ {
			sum += Binomial(rng, n, p)
		}
		mean := float64(sum) / trials
		want := float64(n) * p
		sd := math.Sqrt(float64(n)*p*(1-p)/trials) + 1e-9
		return math.Abs(mean-want) < 6*sd+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulli(t *testing.T) {
	rng := NewRand(9, 9)
	const trials = 50000
	hits := 0
	for i := 0; i < trials; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(1, 2), NewRand(1, 2)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(1, 3)
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different-seed generators produced identical streams")
	}
}
