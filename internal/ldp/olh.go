package ldp

import (
	"fmt"
	"math"
)

// OLH implements Optimized Local Hashing (Wang et al., USENIX Security'17),
// the other variance-optimal frequency oracle of the paper's reference
// [50]. Each user draws a random hash seed, hashes their value into a small
// domain g = ⌈e^ε⌉+1, and GRR-perturbs the hashed value. The estimation
// variance matches OUE's (Eq. 3) asymptotically while each report costs
// O(1) communication instead of |S| bits — the trade-off is O(|S|) server
// work per report.
//
// RetraSyn adopts OUE; OLH is provided as the natural ablation for the
// frequency-oracle design choice (see BenchmarkAblationOracles).
type OLH struct {
	domain int
	eps    float64
	g      int     // hash range
	p      float64 // probability of reporting the true hashed value
}

// NewOLH constructs an OLH oracle.
func NewOLH(domain int, eps float64) (*OLH, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("ldp: OLH domain must be positive, got %d", domain)
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("ldp: OLH requires ε > 0, got %v", eps)
	}
	g := int(math.Round(math.Exp(eps))) + 1
	if g < 2 {
		g = 2
	}
	e := math.Exp(eps)
	return &OLH{
		domain: domain,
		eps:    eps,
		g:      g,
		p:      e / (e + float64(g) - 1),
	}, nil
}

// MustOLH is NewOLH but panics on error.
func MustOLH(domain int, eps float64) *OLH {
	o, err := NewOLH(domain, eps)
	if err != nil {
		panic(err)
	}
	return o
}

// Domain returns the value-domain size.
func (o *OLH) Domain() int { return o.domain }

// Epsilon returns the privacy budget.
func (o *OLH) Epsilon() float64 { return o.eps }

// G returns the hash range g = ⌈e^ε⌉+1.
func (o *OLH) G() int { return o.g }

// Hash maps value v into [0, g) under the per-user hash identified by seed.
// It is a strongly-mixing 64-bit finalizer over (seed, v); distinct seeds
// give (approximately) pairwise-independent hash functions, the property
// the OLH analysis needs.
func (o *OLH) Hash(seed uint64, v int) int {
	return finalize(seed^premixValue(v), uint64(o.g))
}

// premixValue is the seed-independent half of Hash: the per-value constant
// the aggregator's O(domain) support scan hoists into a table so the scan's
// inner loop is pure seed-xor-finalize.
func premixValue(v int) uint64 {
	return (uint64(v) + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
}

// finalize is the mixing tail of Hash over an already-premixed input.
func finalize(x, g uint64) int {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % g)
}

// supportScan counts report r toward every value it supports: the hot
// O(domain) inner loop of OLH aggregation, with the per-value premix table
// and the hash-range conversion hoisted out of the scan.
func (o *OLH) supportScan(r OLHReport, premix []uint64, support []int) {
	g := uint64(o.g)
	seed, target := r.Seed, r.Value
	for v, pm := range premix {
		if finalize(seed^pm, g) == target {
			support[v]++
		}
	}
}

// OLHReport is one user's O(1)-size report: the hash seed (public) and the
// perturbed hashed value.
type OLHReport struct {
	Seed  uint64
	Value int
}

// Perturb produces a report for trueIdx: hash under a fresh seed, then GRR
// within the hash range.
func (o *OLH) Perturb(rng Rand, seedSource interface{ Uint64() uint64 }, trueIdx int) OLHReport {
	if trueIdx < 0 || trueIdx >= o.domain {
		panic(fmt.Sprintf("ldp: OLH.Perturb index %d out of domain %d", trueIdx, o.domain))
	}
	seed := seedSource.Uint64()
	h := o.Hash(seed, trueIdx)
	v := h
	if !Bernoulli(rng, o.p) {
		v = rng.IntN(o.g - 1)
		if v >= h {
			v++
		}
	}
	return OLHReport{Seed: seed, Value: v}
}

// Variance returns the per-index frequency estimation variance for n users.
// At g = e^ε+1 it equals OUE's 4e^ε/(n(e^ε−1)²); the integer rounding of g
// perturbs it marginally, so the exact GRR-at-g expression is used.
func (o *OLH) Variance(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	q := 1.0 / float64(o.g)
	return q * (1 - q) / (float64(n) * (o.p - q) * (o.p - q))
}

// OLHAggregator accumulates reports and debiases frequency estimates. The
// support of value v is the number of reports whose perturbed hashed value
// equals H_seed(v); computing it costs O(domain) per report, the protocol's
// server-side cost.
type OLHAggregator struct {
	oracle  *OLH
	support []int
	premix  []uint64 // per-value hash premix, hoisted out of the support scan
	n       int
}

// NewOLHAggregator creates an empty aggregator. Building the premix table
// costs one O(domain) pass — the price of a single report's support scan —
// and removes a multiply-add per (report, value) pair from every scan after.
func NewOLHAggregator(o *OLH) *OLHAggregator {
	premix := make([]uint64, o.domain)
	for v := range premix {
		premix[v] = premixValue(v)
	}
	return &OLHAggregator{oracle: o, support: make([]int, o.domain), premix: premix}
}

// Add ingests one report.
func (a *OLHAggregator) Add(r OLHReport) {
	a.oracle.supportScan(r, a.premix, a.support)
	a.n++
}

// N returns the number of reports ingested.
func (a *OLHAggregator) N() int { return a.n }

// EstimateAll returns unbiased frequency estimates:
// f̂(v) = (support(v)/n − 1/g) / (p − 1/g).
func (a *OLHAggregator) EstimateAll() []float64 {
	out := make([]float64, len(a.support))
	if a.n == 0 {
		return out
	}
	q := 1.0 / float64(a.oracle.g)
	inv := 1 / (a.oracle.p - q)
	nInv := 1 / float64(a.n)
	for i, s := range a.support {
		out[i] = (float64(s)*nInv - q) * inv
	}
	return out
}
