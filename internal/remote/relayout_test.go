package remote

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// driveRounds runs the in-process protocol for timestamps [from, to) with a
// fresh client fleet built against the curator's *current* domain — exactly
// what devices do after a migration: re-fetch the domain and re-encode.
func driveRounds(t *testing.T, cur *Curator, srvURL string, users, from, to int) {
	t.Helper()
	clients, _ := buildClients(t, cur.Domain().Space(), cur, srvURL, users, to)
	for ts := from; ts < to; ts++ {
		active := 0
		for _, c := range clients {
			if !c.LocatedAt(ts) {
				continue
			}
			if err := c.AnnouncePresence(ts); err != nil {
				t.Fatalf("t=%d presence: %v", ts, err)
			}
			active++
		}
		if err := cur.Plan(ts); err != nil {
			t.Fatalf("t=%d plan: %v", ts, err)
		}
		for _, c := range clients {
			if _, err := c.MaybeReport(ts); err != nil {
				t.Fatalf("t=%d report: %v", ts, err)
			}
		}
		if err := cur.Finalize(ts, active); err != nil {
			t.Fatalf("t=%d finalize: %v", ts, err)
		}
	}
}

// TestCuratorRelayout drives collection rounds, forces a re-discretization
// through the HTTP endpoint, and checks the curator keeps serving on the new
// layout with its model mass conserved.
func TestCuratorRelayout(t *testing.T) {
	cfg := testConfig(testGrid())
	cur, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	driveRounds(t, cur, srv.URL, 80, 0, 8)
	before := 0.0
	for _, f := range cur.model.Freqs() {
		before += f
	}
	bootFP := cur.LayoutStatus().Fingerprint

	resp, err := http.Post(srv.URL+"/v1/relayout", "application/json", bytes.NewBufferString(`{"force": true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relayout status %d", resp.StatusCode)
	}
	var status RelayoutStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if !status.Switched || status.Generation != 1 {
		t.Fatalf("forced relayout did not switch: %+v", status)
	}
	if status.Fingerprint == bootFP {
		t.Fatal("layout fingerprint unchanged after a switch")
	}
	after := 0.0
	for _, f := range cur.model.Freqs() {
		after += f
	}
	if diff := after - before; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("model mass not conserved across curator migration: %v → %v", before, after)
	}

	// Stats surface the new layout.
	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		LayoutGeneration  int    `json:"layout_generation"`
		LayoutFingerprint string `json:"layout_fingerprint"`
		DomainSize        int    `json:"domain_size"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.LayoutGeneration != 1 || stats.LayoutFingerprint != status.Fingerprint || stats.DomainSize != cur.Domain().Size() {
		t.Fatalf("stats do not reflect the migration: %+v", stats)
	}

	// The protocol keeps working on the new domain with re-encoded clients.
	driveRounds(t, cur, srv.URL, 80, 8, 14)
	if err := cur.Synthetic("post").Validate(cur.Domain().Space(), false); err != nil {
		t.Fatalf("post-migration release invalid: %v", err)
	}
}

// TestCuratorRelayoutRejectedMidRound pins the protocol guard: migrating
// between Plan and Finalize would orphan the open round's assignments and
// aggregate, so it must be refused.
func TestCuratorRelayoutRejectedMidRound(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Presence(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := cur.Plan(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Relayout(true); err == nil {
		t.Fatal("relayout accepted while a round is open")
	}
	if err := cur.Finalize(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Relayout(false); err != nil {
		t.Fatalf("relayout after finalize: %v", err)
	}
}

// TestCuratorSnapshotAcrossRelayout pins durable state across migrations: a
// snapshot taken after a forced migration restores into a fresh curator
// built with the boot config, which resumes on the migrated layout with an
// identical release and identical future synthesis.
func TestCuratorSnapshotAcrossRelayout(t *testing.T) {
	cfg := testConfig(testGrid())
	cur, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()
	driveRounds(t, cur, srv.URL, 60, 0, 7)
	status, err := cur.Relayout(true)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Switched {
		t.Fatal("forced relayout did not switch")
	}
	st, err := cur.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var decoded CuratorState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	rs := resumed.LayoutStatus()
	if rs.Generation != 1 || rs.Fingerprint != status.Fingerprint {
		t.Fatalf("restored layout %+v ≠ snapshot layout %+v", rs, status)
	}
	if !reflect.DeepEqual(cur.Synthetic("x"), resumed.Synthetic("x")) {
		t.Fatal("restored release differs from the donor's")
	}
	// Identical silent continuations (synthesis consumes the curator RNG).
	for _, c := range []*Curator{cur, resumed} {
		for ts := 7; ts < 12; ts++ {
			if err := c.Plan(ts); err != nil {
				t.Fatal(err)
			}
			if err := c.Finalize(ts, 40); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(cur.Synthetic("y"), resumed.Synthetic("y")) {
		t.Fatal("restored curator diverged from the donor after resuming")
	}
}

// TestCuratorAutoRelayoutCadence proves the periodic path: with
// RediscretizeEvery set and a near-zero threshold, Finalize migrates at the
// window boundary on its own.
func TestCuratorAutoRelayoutCadence(t *testing.T) {
	// A doubled leaf budget guarantees the rebuilt layout differs from the
	// boot tree, so the switch observably fires at the first boundary.
	cfg := testConfig(testQuadtree(t))
	cfg.RediscretizeEvery = 1 // every W=5 timestamps
	cfg.RelayoutThreshold = 1e-9
	cfg.RelayoutLeaves = 48
	cur, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()
	driveRounds(t, cur, srv.URL, 80, 0, 5)
	if got := cur.LayoutStatus().Generation; got < 1 {
		t.Fatalf("no automatic migration after the first rebuild period (generation %d)", got)
	}
}
