package remote

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"retrasyn/internal/obs"
)

// TestSnapshotExcludesMetrics is the checkpoint-compatibility regression for
// the observability layer: metrics and tracing are run-scoped, so a curator
// with a live tracer and a populated registry must produce a snapshot
// byte-identical to an uninstrumented twin driven through the same traffic,
// and a curator restored from that snapshot must count from zero.
func TestSnapshotExcludesMetrics(t *testing.T) {
	g := testGrid()
	const T = 16
	instrumented, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	instrumented.SetTracer(slog.New(slog.NewJSONHandler(&traceBuf, nil)))
	instrumented.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	plain, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}

	drv := newProtoDriver(g, instrumented.Domain(), 80, T)
	for ts := 0; ts < T/2; ts++ {
		drv.step(t, ts, instrumented, plain)
	}
	if instrumented.Metrics().Counter("curator.presence_events").Value() == 0 {
		t.Fatal("instrumented curator recorded no presence events")
	}
	if traceBuf.Len() == 0 {
		t.Fatal("tracer emitted nothing over a driven half-run")
	}

	instBlob, err := marshalSnapshot(instrumented)
	if err != nil {
		t.Fatal(err)
	}
	plainBlob, err := marshalSnapshot(plain)
	if err != nil {
		t.Fatal(err)
	}
	// The two snapshots must agree on every logical field; only the
	// cumulative wall-clock timings (a pre-existing snapshot field) may
	// differ between any two runs.
	if !bytes.Equal(stripTimings(t, instBlob), stripTimings(t, plainBlob)) {
		t.Fatal("instrumentation leaked into the snapshot: instrumented and plain curators serialized differently")
	}

	resumed, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	var decoded CuratorState
	if err := json.Unmarshal(instBlob, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	// Restore → re-snapshot is byte-identical: the metrics registry, tracer
	// and logger contribute nothing to the serialized state.
	reBlob, err := marshalSnapshot(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reBlob, instBlob) {
		t.Fatal("snapshot → restore → snapshot is not byte-identical with instrumentation live")
	}
	// Run-scoped means the restored curator's counters start at zero even
	// though the donor's registry was live.
	for _, name := range []string{"curator.rounds", "curator.reports", "curator.presence_events", "budget.rounds"} {
		if v := resumed.Metrics().Counter(name).Value(); v != 0 {
			t.Fatalf("restored curator's %s = %d, want 0 (metrics must not ride checkpoints)", name, v)
		}
	}

	// ...and instrumentation keeps working after a restore: only the
	// post-restore rounds are counted.
	for ts := T / 2; ts < T; ts++ {
		drv.step(t, ts, resumed)
	}
	got := resumed.Metrics().Counter("budget.rounds").Value() + resumed.Metrics().Counter("budget.silent_rounds").Value()
	if want := int64(T - T/2); got != want {
		t.Fatalf("restored curator metered %d rounds, want %d (post-restore only)", got, want)
	}
	if resumed.Metrics().Counter("curator.presence_events").Value() == 0 {
		t.Fatal("restored curator's registry is dead")
	}
}

func marshalSnapshot(c *Curator) ([]byte, error) {
	st, err := c.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(st)
}

// stripTimings zeroes the snapshot's cumulative wall-clock timings field so
// two runs' snapshots can be compared on logical state alone.
func stripTimings(t *testing.T, blob []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "timings")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpointEndToEnd drives the full wire protocol against a served
// curator and scrapes GET /metrics mid-run and at the end: the exposition
// must be valid Prometheus text carrying the stage-latency, budget, wire and
// relayout families, with at least 20 distinct series that actually move.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	g := testGrid()
	cur, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	const T = 20
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	clients, _ := buildClients(t, g, cur, srv.URL, 100, T)
	co := NewCoordinator(srv.URL, nil)

	var midRounds float64
	for ts := 0; ts < T; ts++ {
		active := 0
		for _, c := range clients {
			if err := c.AnnouncePresence(ts); err != nil {
				t.Fatalf("t=%d presence: %v", ts, err)
			}
			if c.LocatedAt(ts) {
				active++
			}
		}
		if err := co.Plan(ts); err != nil {
			t.Fatalf("t=%d plan: %v", ts, err)
		}
		for _, c := range clients {
			if _, err := c.MaybeReport(ts); err != nil {
				t.Fatalf("t=%d report: %v", ts, err)
			}
		}
		if err := co.Finalize(ts, active); err != nil {
			t.Fatalf("t=%d finalize: %v", ts, err)
		}
		if ts == T/2 {
			mid := scrapeExposition(t, srv.URL)
			midRounds = sampleValue(t, mid, "curator_rounds")
		}
	}

	end := scrapeExposition(t, srv.URL)
	if got := sampleValue(t, end, "curator_rounds"); got <= midRounds {
		t.Fatalf("curator_rounds frozen: mid-run %v, end %v", midRounds, got)
	}

	series := map[string]bool{}
	for _, line := range strings.Split(end, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if cut := strings.LastIndexByte(line, ' '); cut > 0 {
			series[line[:cut]] = true
		}
	}
	if len(series) < 20 {
		t.Fatalf("exposition carries %d distinct series, want ≥ 20:\n%s", len(series), end)
	}
	for _, want := range []string{
		"curator_rounds ",
		"curator_reports ",
		"curator_presence_events ",
		"curator_round_report_count_count ",
		`curator_reports_by_representation{representation=`,
		"budget_cumulative_eps ",
		"budget_window_sum_eps ",
		"budget_window_eps_micro_count ",
		"budget_sampled_fraction ",
		`pipeline_stage_latency_us_count{shard="0",stage="dmu"}`,
		`pipeline_stage_latency_us_count{shard="0",stage="synthesis"}`,
		`wire_bytes_in{path="/v1/report"}`,
		`wire_requests{format=`,
		"relayout_generation ",
		"curator_domain_size ",
	} {
		if !strings.Contains(end, want) {
			t.Fatalf("exposition missing %q:\n%s", want, end)
		}
	}
	// The protocol moved real traffic: reports were folded, budget spent,
	// bytes metered.
	if v := sampleValue(t, end, "curator_reports"); v <= 0 {
		t.Fatal("curator_reports never moved")
	}
	if v := sampleValue(t, end, "budget_cumulative_eps"); v <= 0 {
		t.Fatal("budget_cumulative_eps never moved")
	}
	if !strings.Contains(end, `wire_bytes_in{path="/v1/report"}`) {
		t.Fatal("report wire bytes unmetered")
	}
}

// scrapeExposition fetches /metrics and validates content type and basic
// line shape.
func scrapeExposition(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[cut+1:], 64); err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
	}
	return string(body)
}

// sampleValue extracts an unlabeled sample's value from exposition text.
func sampleValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("sample %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in exposition", name)
	return 0
}

// TestRoundErrorsCounted: a Finalize against a never-planned timestamp is a
// round-processing failure — logged and counted, never silent.
func TestRoundErrorsCounted(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	cur.SetLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	if err := cur.Finalize(7, 0); err == nil {
		t.Fatal("finalize without plan accepted")
	}
	if got := cur.Metrics().Counter("curator.round_errors").Value(); got != 1 {
		t.Fatalf("curator.round_errors = %d, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "round processing failed") || !strings.Contains(logBuf.String(), "t=7") {
		t.Fatalf("error log missing context: %q", logBuf.String())
	}
}

// TestTracerSchema drives one reported round and checks the JSONL tracer
// event carries the documented keys.
func TestTracerSchema(t *testing.T) {
	g := testGrid()
	cur, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cur.SetTracer(slog.New(slog.NewJSONHandler(&buf, nil)))
	drv := newProtoDriver(g, cur.Domain(), 60, 8)
	for ts := 0; ts < 8; ts++ {
		drv.step(t, ts, cur)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("tracer emitted %d events, want 8", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); err != nil {
		t.Fatalf("tracer line is not JSON: %v", err)
	}
	for _, key := range []string{
		"t", "reported", "reports", "epsilon", "pool", "sampled",
		"sig_ratio", "significant", "model_construction_us", "dmu_us",
		"synthesis_us", "domain_size", "generation", "relayout_switched",
		"divergence", "divergence_l1", "alarms", "trigger_fired",
	} {
		if _, ok := ev[key]; !ok {
			t.Fatalf("tracer event missing %q: %s", key, lines[len(lines)-1])
		}
	}
	if ev["t"] != float64(7) {
		t.Fatalf("tracer t = %v, want 7", ev["t"])
	}
}

// TestMetricsScrapeOutsideWireLedger: scraping /metrics must not inflate the
// wire byte ledger the replay harness reconciles against.
func TestMetricsScrapeOutsideWireLedger(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()
	for i := 0; i < 3; i++ {
		exposition := scrapeExposition(t, srv.URL)
		if strings.Contains(exposition, `path="/metrics"`) {
			t.Fatal("scrape traffic leaked into the wire ledger")
		}
	}
}
