package remote

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"retrasyn/internal/geofence"
)

// testFence builds a connected district fence over the unit square for
// protocol tests (matching the engine-level geofence tests).
func testFence(t *testing.T) *geofence.Fence {
	t.Helper()
	f, err := geofence.NewFence([]geofence.Polygon{
		{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.5, Y: 0.4}, {X: 0, Y: 0.4}},
		{{X: 0.5, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0.4}, {X: 0.5, Y: 0.4}},
		{{X: 0, Y: 0.4}, {X: 0.5, Y: 0.4}, {X: 0, Y: 1}},
		{{X: 0.5, Y: 0.4}, {X: 1, Y: 0.4}, {X: 1, Y: 1}, {X: 0.75, Y: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestGeofenceCuratorEndToEnd drives the full HTTP collection protocol with
// the curator running on a polygonal fence: clients encode against the
// fence's transition domain and the release satisfies its shared-edge
// reachability.
func TestGeofenceCuratorEndToEnd(t *testing.T) {
	fence := testFence(t)
	cur, err := NewCurator(testConfig(fence))
	if err != nil {
		t.Fatal(err)
	}
	const T = 20
	cur.EnableLedger(T)
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	clients, _ := buildClients(t, fence, cur, srv.URL, 100, T)
	co := NewCoordinator(srv.URL, nil)
	for ts := 0; ts < T; ts++ {
		active := 0
		for _, c := range clients {
			if err := c.AnnouncePresence(ts); err != nil {
				t.Fatalf("t=%d presence: %v", ts, err)
			}
			if c.LocatedAt(ts) {
				active++
			}
		}
		if err := co.Plan(ts); err != nil {
			t.Fatalf("t=%d plan: %v", ts, err)
		}
		for _, c := range clients {
			if _, err := c.MaybeReport(ts); err != nil {
				t.Fatalf("t=%d report: %v", ts, err)
			}
		}
		if err := co.Finalize(ts, active); err != nil {
			t.Fatalf("t=%d finalize: %v", ts, err)
		}
	}

	rounds, reports := cur.Stats()
	if rounds == 0 || reports == 0 {
		t.Fatalf("no activity on the geofence curator: rounds=%d reports=%d", rounds, reports)
	}
	syn := cur.Synthetic("remote-fence")
	if err := syn.Validate(fence, true); err != nil {
		t.Fatalf("geofence release violates reachability: %v", err)
	}
	if got := cur.Ledger().MaxUserWindowSum(5, func(int) float64 { return 1.0 }); got > 1.0+1e-9 {
		t.Fatalf("per-user window budget %v exceeds ε", got)
	}
}

// TestGeofenceCuratorSnapshotRoundTrip pins the curator checkpoint cycle on
// the fence backend: the fingerprint (with the polygon layout hashed in)
// survives the JSON round trip, restores into a matching curator, and is
// rejected by curators on other layouts.
func TestGeofenceCuratorSnapshotRoundTrip(t *testing.T) {
	fence := testFence(t)
	cur, err := NewCurator(testConfig(fence))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cur.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var round CuratorState
	if err := json.Unmarshal(blob, &round); err != nil {
		t.Fatal(err)
	}
	if round.Config.Discretizer != fence.Fingerprint() {
		t.Fatalf("fence fingerprint lost in JSON round trip: %q", round.Config.Discretizer)
	}
	fresh, err := NewCurator(testConfig(fence))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(&round); err != nil {
		t.Fatalf("fence snapshot rejected by a matching curator: %v", err)
	}
	// Cross-layout restores fail: grid curator, and a curator on a fence
	// with one vertex moved.
	gcur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	if err := gcur.Restore(&round); err == nil {
		t.Fatal("fence snapshot restored into a grid curator")
	}
	other, err := geofence.NewFence([]geofence.Polygon{
		{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.5, Y: 0.4}, {X: 0, Y: 0.4}},
		{{X: 0.5, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0.4}, {X: 0.5, Y: 0.4}},
		{{X: 0, Y: 0.4}, {X: 0.5, Y: 0.4}, {X: 0, Y: 1}},
		{{X: 0.5, Y: 0.4}, {X: 1, Y: 0.4}, {X: 1, Y: 1}, {X: 0.8, Y: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ocur, err := NewCurator(testConfig(other))
	if err != nil {
		t.Fatal(err)
	}
	if err := ocur.Restore(&round); err == nil {
		t.Fatal("fence snapshot restored into a curator on a different fence")
	}

	// Legacy (fingerprint-less) snapshots never cross onto a fence.
	round.Config.Discretizer = ""
	legacy, err := NewCurator(testConfig(fence))
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Restore(&round); err == nil {
		t.Fatal("fingerprint-less snapshot accepted by a geofence curator")
	}
}

// TestGeofenceCuratorRelayout migrates a serving fence curator onto a
// rebuilt quadtree via the forced relayout path — the Overlapper
// generalization working through the remote layer — and round-trips the
// migrated state through a checkpoint (which embeds the quadtree layout).
func TestGeofenceCuratorRelayout(t *testing.T) {
	fence := testFence(t)
	cfg := testConfig(fence)
	cur, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	const T = 12
	clients, _ := buildClients(t, fence, cur, srv.URL, 80, T)
	co := NewCoordinator(srv.URL, nil)
	for ts := 0; ts < T; ts++ {
		active := 0
		for _, c := range clients {
			if err := c.AnnouncePresence(ts); err != nil {
				t.Fatal(err)
			}
			if c.LocatedAt(ts) {
				active++
			}
		}
		if err := co.Plan(ts); err != nil {
			t.Fatal(err)
		}
		for _, c := range clients {
			if _, err := c.MaybeReport(ts); err != nil {
				t.Fatal(err)
			}
		}
		if err := co.Finalize(ts, active); err != nil {
			t.Fatal(err)
		}
	}
	status, err := cur.Relayout(true)
	if err != nil {
		t.Fatalf("forced relayout off the fence: %v", err)
	}
	if !status.Switched || status.Generation != 1 {
		t.Fatalf("fence curator did not migrate: %+v", status)
	}
	// The migrated curator checkpoints and restores, rebuilding the layout
	// it migrated onto.
	st, err := cur.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Layout == nil || st.Layout.Kind != "quadtree" {
		t.Fatalf("migrated snapshot carries layout %+v, want a quadtree", st.Layout)
	}
	fresh, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(st); err != nil {
		t.Fatalf("restore of the migrated fence curator: %v", err)
	}
	if got := fresh.LayoutStatus(); got.Generation != 1 || got.Fingerprint != status.Fingerprint {
		t.Fatalf("restored curator on layout %+v, want %+v", got, status)
	}
}
