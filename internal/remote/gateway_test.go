package remote

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"retrasyn/internal/ldp"
)

// TestGatewayRoundsMatchDirectDrive replays identical rounds into two
// same-seed curators — one driven directly through the Go API, one through
// the batched gateway endpoints over HTTP — and requires identical sampling
// decisions, report counts and released synthetic databases: the gateway
// tier batches the wire traffic without changing one bit of the protocol.
func TestGatewayRoundsMatchDirectDrive(t *testing.T) {
	g := testGrid()
	direct, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	served, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(served))
	defer srv.Close()
	gw := NewGateway(srv.URL, nil)
	gw.SetRetryPolicy(fastPolicy())

	d := direct.Domain().Size()
	users := make([]int, 40)
	for i := range users {
		users[i] = i
	}
	rng := ldp.NewRand(99, 7)
	const T = 8
	for ts := 0; ts < T; ts++ {
		sampled := driveRound(t, direct, ts, users)
		if err := gw.AnnouncePresence(users, ts); err != nil {
			t.Fatalf("t=%d gateway presence: %v", ts, err)
		}
		if err := served.Plan(ts); err != nil {
			t.Fatalf("t=%d plan: %v", ts, err)
		}
		as, err := gw.Assignments(users, ts)
		if err != nil {
			t.Fatalf("t=%d gateway assignments: %v", ts, err)
		}
		var batch []BatchReport
		for i, u := range users {
			want, ok := sampled[u]
			if as[i].Report != ok || (ok && as[i] != want) {
				t.Fatalf("t=%d user %d: gateway assignment %+v, direct %+v (sampled=%v)", ts, u, as[i], want, ok)
			}
			if !ok {
				continue
			}
			oracle := ldp.MustOUE(d, as[i].Epsilon)
			batch = append(batch, BatchReport{User: u, Ones: oracle.Perturb(rng, u%d)})
		}
		// Alternate wire encodings: both must land identically.
		if ts%2 == 0 {
			packed, err := PackReportBatch(batch, d)
			if err != nil {
				t.Fatalf("t=%d pack: %v", ts, err)
			}
			err = gw.ReportPacked(ts, d, packed)
			if err != nil {
				t.Fatalf("t=%d gateway packed report: %v", ts, err)
			}
		} else if err := gw.ReportBatch(ts, batch); err != nil {
			t.Fatalf("t=%d gateway sparse report: %v", ts, err)
		}
		if err := direct.ReportBatch(ts, batch); err != nil {
			t.Fatalf("t=%d direct report: %v", ts, err)
		}
		if err := direct.Finalize(ts, len(users)); err != nil {
			t.Fatal(err)
		}
		if err := served.Finalize(ts, len(users)); err != nil {
			t.Fatal(err)
		}
	}
	_, directReports := direct.Stats()
	_, servedReports := served.Stats()
	if directReports == 0 || directReports != servedReports {
		t.Fatalf("report counts diverged: direct %d, gateway %d", directReports, servedReports)
	}
	if served.PresenceEvents() != int64(len(users)*T) {
		t.Fatalf("presence events = %d, want %d", served.PresenceEvents(), len(users)*T)
	}
	if !reflect.DeepEqual(direct.Synthetic("x"), served.Synthetic("x")) {
		t.Fatal("gateway-fed curator released a different synthetic database")
	}
}

// TestGatewayEmptyShard: a gateway whose shard is idle this timestamp must
// not touch the curator at all.
func TestGatewayEmptyShard(t *testing.T) {
	gw := NewGateway("http://127.0.0.1:1", nil) // nothing listens here
	if err := gw.AnnouncePresence(nil, 0); err != nil {
		t.Fatal(err)
	}
	as, err := gw.Assignments(nil, 0)
	if err != nil || as != nil {
		t.Fatalf("Assignments(nil) = %v, %v", as, err)
	}
	if err := gw.ReportBatch(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := gw.ReportPacked(0, 16, nil); err != nil {
		t.Fatal(err)
	}
}
