package remote

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"retrasyn/internal/ldp"
)

// Binary wire protocol ("application/x-retrasyn"), version 1 — the compact
// encoding of the report hot path. JSON carries every packed report as
// base64 (×1.33 inflation) wrapped in per-entry field framing; the binary
// frame carries the raw ⌈d/8⌉ report bytes plus a varint user ID, which is
// as small as an LDP report can get without entropy coding (and the report
// *is* near-uniform noise by design — see the README's wire-format section
// for why it cannot be compressed below its randomness).
//
// Every binary request body is exactly one length-prefixed frame:
//
//	offset 0: magic "RS" (0x52 0x53)
//	offset 2: version (currently 1)
//	offset 3: kind (presence / assignments / assignments-response / report)
//	offset 4: uint32 little-endian payload length
//	offset 8: payload
//
// All integers inside payloads are unsigned LEB128 varints
// (encoding/binary Uvarint) unless stated otherwise; ε rides as 8 raw
// little-endian IEEE-754 bytes. Decoders are strict: bad magic, unknown
// versions or kinds, payload lengths that disagree with the body, trailing
// bytes, truncated varints and values beyond 2³¹−1 are all clean errors —
// never panics — and a rejected frame leaves the curator's open round
// untouched (all-or-nothing, like the JSON paths).
//
// Negotiation is advertise-and-upgrade, so no request is ever wasted on
// probing: every response from a binary-capable curator carries the
// X-Retrasyn-Wire header; a WireAuto transport starts on JSON and switches
// to frames once it has seen the advert. Against a JSON-only server the
// advert never appears and the transport simply stays on JSON. Binary
// requests set Accept so the server answers in kind; responses are
// self-describing via Content-Type, so a mixed deployment can answer a
// binary request with JSON and the client still decodes it.

const (
	// WireContentType negotiates the binary frame protocol: requests carrying
	// it as Content-Type are parsed as frames, and requests carrying it in
	// Accept get frame responses where a binary encoding exists.
	WireContentType = "application/x-retrasyn"

	// wireAdvertHeader/Value: every response from a binary-capable curator
	// advertises support, so clients upgrade without a probe request.
	wireAdvertHeader = "X-Retrasyn-Wire"
	wireAdvertValue  = "v1"

	wireVersion   = 1
	wireHeaderLen = 8
	// wireMaxPayload caps a frame's payload (64 MiB) so a length-lying header
	// cannot make the server stage an absurd allocation.
	wireMaxPayload = 64 << 20
	// wireMaxValue caps every integer decoded off the wire: timestamps, user
	// IDs, batch sizes and bit indices all fit comfortably in int32, and the
	// cap keeps hostile varints from overflowing int arithmetic downstream.
	wireMaxValue = math.MaxInt32
)

// Frame kinds.
const (
	frameKindPresence byte = iota + 1
	frameKindAssignments
	frameKindAssignmentsResp
	frameKindReport
)

// Report payload forms.
const (
	reportFormSingle byte = iota // one user's sparse report
	reportFormSparse             // a gateway's sparse batch
	reportFormPacked             // a gateway's bit-packed batch (the hot path)
)

// finishFrame prepends the frame header to a payload.
func finishFrame(kind byte, payload []byte) []byte {
	f := make([]byte, 0, wireHeaderLen+len(payload))
	f = append(f, 'R', 'S', wireVersion, kind)
	f = binary.LittleEndian.AppendUint32(f, uint32(len(payload)))
	return append(f, payload...)
}

// decodeFrame validates the header and returns the kind and payload. The
// payload aliases data.
func decodeFrame(data []byte) (kind byte, payload []byte, err error) {
	if len(data) < wireHeaderLen {
		return 0, nil, fmt.Errorf("remote: binary frame is %d bytes, shorter than the %d-byte header", len(data), wireHeaderLen)
	}
	if data[0] != 'R' || data[1] != 'S' {
		return 0, nil, fmt.Errorf("remote: binary frame has bad magic 0x%02x%02x", data[0], data[1])
	}
	if data[2] != wireVersion {
		return 0, nil, fmt.Errorf("remote: binary frame version %d, this curator speaks version %d", data[2], wireVersion)
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if n > wireMaxPayload {
		return 0, nil, fmt.Errorf("remote: binary frame declares a %d-byte payload, cap is %d", n, wireMaxPayload)
	}
	if int(n) != len(data)-wireHeaderLen {
		return 0, nil, fmt.Errorf("remote: binary frame declares a %d-byte payload but carries %d", n, len(data)-wireHeaderLen)
	}
	return data[3], data[wireHeaderLen:], nil
}

// wireReader is the strict payload cursor shared by all decoders.
type wireReader struct {
	p   []byte
	off int
}

func (r *wireReader) remaining() int { return len(r.p) - r.off }

func (r *wireReader) uvarint() (int, error) {
	v, n := binary.Uvarint(r.p[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("remote: truncated or malformed varint at payload offset %d", r.off)
	}
	if v > wireMaxValue {
		return 0, fmt.Errorf("remote: wire integer %d at payload offset %d exceeds the 2³¹−1 cap", v, r.off)
	}
	r.off += n
	return int(v), nil
}

func (r *wireReader) byte() (byte, error) {
	if r.off >= len(r.p) {
		return 0, fmt.Errorf("remote: payload truncated at offset %d", r.off)
	}
	b := r.p[r.off]
	r.off++
	return b, nil
}

// bytes returns the next n payload bytes, aliasing the underlying buffer.
func (r *wireReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("remote: payload truncated: want %d bytes at offset %d, have %d", n, r.off, r.remaining())
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) float64() (float64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// finish rejects trailing junk — a frame must be consumed exactly.
func (r *wireReader) finish() error {
	if r.off != len(r.p) {
		return fmt.Errorf("remote: %d trailing bytes after the payload", r.remaining())
	}
	return nil
}

// appendUsers encodes a user-ID list: count, then absolute varint IDs.
func appendUsers(buf []byte, users []int) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(users)))
	for _, u := range users {
		if u < 0 {
			return nil, fmt.Errorf("remote: user ID %d is negative and cannot ride the binary wire", u)
		}
		buf = binary.AppendUvarint(buf, uint64(u))
	}
	return buf, nil
}

func (r *wireReader) users() ([]int, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every encoded user costs ≥ 1 byte, so a count beyond the remaining
	// bytes is a lie; checking first keeps the allocation honest.
	if n > r.remaining() {
		return nil, fmt.Errorf("remote: user count %d exceeds the %d payload bytes left", n, r.remaining())
	}
	users := make([]int, n)
	for i := range users {
		if users[i], err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	return users, nil
}

// appendOnes encodes a sparse report as count + delta varints over the
// ascending order (the first index absolute, then gaps). Order does not
// matter to the fold, so sorting is free compression: gaps are small and
// mostly one-byte. Duplicate indices survive as zero gaps, preserving the
// report multiset exactly.
func appendOnes(buf []byte, ones []int) ([]byte, error) {
	for _, v := range ones {
		if v < 0 {
			return nil, fmt.Errorf("remote: report bit %d is negative and cannot ride the binary wire", v)
		}
	}
	sorted := ones
	if !sort.IntsAreSorted(sorted) {
		sorted = append([]int(nil), ones...)
		sort.Ints(sorted)
	}
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	prev := 0
	for i, v := range sorted {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(v))
		} else {
			buf = binary.AppendUvarint(buf, uint64(v-prev))
		}
		prev = v
	}
	return buf, nil
}

func (r *wireReader) ones() ([]int, error) {
	k, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if k > r.remaining() {
		return nil, fmt.Errorf("remote: ones count %d exceeds the %d payload bytes left", k, r.remaining())
	}
	ones := make([]int, k)
	cur := 0
	for i := range ones {
		d, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		cur += d
		if cur > wireMaxValue {
			return nil, fmt.Errorf("remote: ones delta chain overflows at entry %d", i)
		}
		ones[i] = cur
	}
	return ones, nil
}

// encodePresenceFrame builds the presence announce for one or many users.
func encodePresenceFrame(t int, users []int) ([]byte, error) {
	if t < 0 {
		return nil, fmt.Errorf("remote: timestamp %d is negative and cannot ride the binary wire", t)
	}
	payload := binary.AppendUvarint(nil, uint64(t))
	payload, err := appendUsers(payload, users)
	if err != nil {
		return nil, err
	}
	return finishFrame(frameKindPresence, payload), nil
}

func decodePresencePayload(p []byte) (t int, users []int, err error) {
	r := &wireReader{p: p}
	if t, err = r.uvarint(); err != nil {
		return 0, nil, err
	}
	if users, err = r.users(); err != nil {
		return 0, nil, err
	}
	return t, users, r.finish()
}

// encodeAssignmentsFrame builds the batched assignment poll.
func encodeAssignmentsFrame(t int, users []int) ([]byte, error) {
	if t < 0 {
		return nil, fmt.Errorf("remote: timestamp %d is negative and cannot ride the binary wire", t)
	}
	payload := binary.AppendUvarint(nil, uint64(t))
	payload, err := appendUsers(payload, users)
	if err != nil {
		return nil, err
	}
	return finishFrame(frameKindAssignments, payload), nil
}

func decodeAssignmentsPayload(p []byte) (t int, users []int, err error) {
	r := &wireReader{p: p}
	if t, err = r.uvarint(); err != nil {
		return 0, nil, err
	}
	if users, err = r.users(); err != nil {
		return 0, nil, err
	}
	return t, users, r.finish()
}

// encodeAssignmentsRespFrame builds the poll response: one flags byte per
// user (bit 0 = report), followed by ε only for sampled users — unsampled
// users, the common case, cost a single byte.
func encodeAssignmentsRespFrame(as []Assignment) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(as)))
	for _, a := range as {
		if a.Report {
			payload = append(payload, 1)
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(a.Epsilon))
		} else {
			payload = append(payload, 0)
		}
	}
	return finishFrame(frameKindAssignmentsResp, payload)
}

func decodeAssignmentsRespPayload(p []byte) ([]Assignment, error) {
	r := &wireReader{p: p}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > r.remaining() {
		return nil, fmt.Errorf("remote: assignment count %d exceeds the %d payload bytes left", n, r.remaining())
	}
	as := make([]Assignment, n)
	for i := range as {
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		if flags > 1 {
			return nil, fmt.Errorf("remote: assignment entry %d has unknown flags 0x%02x", i, flags)
		}
		if flags&1 != 0 {
			as[i].Report = true
			if as[i].Epsilon, err = r.float64(); err != nil {
				return nil, err
			}
		}
	}
	return as, r.finish()
}

// EncodeSingleReportFrame builds the binary form of one device's sparse
// report — the frame a non-batching client ships when the round is sparse.
func EncodeSingleReportFrame(t, user int, ones []int) ([]byte, error) {
	if t < 0 || user < 0 {
		return nil, fmt.Errorf("remote: timestamp %d / user %d cannot ride the binary wire", t, user)
	}
	payload := binary.AppendUvarint(nil, uint64(t))
	payload = append(payload, reportFormSingle)
	payload = binary.AppendUvarint(payload, uint64(user))
	payload, err := appendOnes(payload, ones)
	if err != nil {
		return nil, err
	}
	return finishFrame(frameKindReport, payload), nil
}

// EncodeSparseReportFrame builds the binary form of a gateway's sparse
// report batch.
func EncodeSparseReportFrame(t int, batch []BatchReport) ([]byte, error) {
	if t < 0 {
		return nil, fmt.Errorf("remote: timestamp %d is negative and cannot ride the binary wire", t)
	}
	payload := binary.AppendUvarint(nil, uint64(t))
	payload = append(payload, reportFormSparse)
	payload = binary.AppendUvarint(payload, uint64(len(batch)))
	var err error
	for i, r := range batch {
		if r.User < 0 {
			return nil, fmt.Errorf("remote: batch entry %d: user ID %d is negative", i, r.User)
		}
		payload = binary.AppendUvarint(payload, uint64(r.User))
		if payload, err = appendOnes(payload, r.Ones); err != nil {
			return nil, fmt.Errorf("remote: batch entry %d: %w", i, err)
		}
	}
	return finishFrame(frameKindReport, payload), nil
}

// EncodePackedReportFrame builds the binary form of a bit-packed report
// batch over a domain of size d: the frame self-declares d (so a curator
// mid-relayout rejects stale encodings with a clean error before decoding a
// single row), then carries varint user + raw ⌈d/8⌉ report bytes per entry
// — no base64, no field framing.
func EncodePackedReportFrame(t, d int, batch []PackedBatchReport) ([]byte, error) {
	if t < 0 {
		return nil, fmt.Errorf("remote: timestamp %d is negative and cannot ride the binary wire", t)
	}
	if d <= 0 {
		return nil, fmt.Errorf("remote: packed frame domain must be positive, got %d", d)
	}
	bsz := ldp.PackedBytes(d)
	payload := make([]byte, 0, 16+len(batch)*(bsz+3))
	payload = binary.AppendUvarint(payload, uint64(t))
	payload = append(payload, reportFormPacked)
	payload = binary.AppendUvarint(payload, uint64(d))
	payload = binary.AppendUvarint(payload, uint64(len(batch)))
	for i, r := range batch {
		if r.User < 0 {
			return nil, fmt.Errorf("remote: batch entry %d: user ID %d is negative", i, r.User)
		}
		if len(r.Bits) != bsz {
			return nil, fmt.Errorf("remote: batch entry %d (user %d): payload is %d bytes, want %d for domain %d", i, r.User, len(r.Bits), bsz, d)
		}
		payload = binary.AppendUvarint(payload, uint64(r.User))
		payload = append(payload, r.Bits...)
	}
	return finishFrame(frameKindReport, payload), nil
}

// reportFrame is a decoded report payload. For the packed form, bits rows
// alias the request body — the zero-copy handoff into
// ldp.UnpackReportBytesInto.
type reportFrame struct {
	t    int
	form byte

	user int   // reportFormSingle
	ones []int // reportFormSingle

	batch []BatchReport // reportFormSparse

	d     int      // reportFormPacked: sender's domain size
	users []int    // reportFormPacked
	bits  [][]byte // reportFormPacked: ⌈d/8⌉-byte rows aliasing the body
}

func decodeReportPayload(p []byte) (*reportFrame, error) {
	r := &wireReader{p: p}
	rf := &reportFrame{}
	var err error
	if rf.t, err = r.uvarint(); err != nil {
		return nil, err
	}
	if rf.form, err = r.byte(); err != nil {
		return nil, err
	}
	switch rf.form {
	case reportFormSingle:
		if rf.user, err = r.uvarint(); err != nil {
			return nil, err
		}
		if rf.ones, err = r.ones(); err != nil {
			return nil, err
		}
	case reportFormSparse:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > r.remaining() {
			return nil, fmt.Errorf("remote: sparse batch count %d exceeds the %d payload bytes left", n, r.remaining())
		}
		rf.batch = make([]BatchReport, n)
		for i := range rf.batch {
			if rf.batch[i].User, err = r.uvarint(); err != nil {
				return nil, err
			}
			if rf.batch[i].Ones, err = r.ones(); err != nil {
				return nil, fmt.Errorf("remote: batch entry %d: %w", i, err)
			}
		}
	case reportFormPacked:
		if rf.d, err = r.uvarint(); err != nil {
			return nil, err
		}
		if rf.d == 0 {
			return nil, fmt.Errorf("remote: packed frame declares a zero domain")
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		bsz := ldp.PackedBytes(rf.d)
		if n > 0 && n > r.remaining()/(1+bsz)+1 {
			return nil, fmt.Errorf("remote: packed batch count %d exceeds the %d payload bytes left", n, r.remaining())
		}
		rf.users = make([]int, n)
		rf.bits = make([][]byte, n)
		for i := 0; i < n; i++ {
			if rf.users[i], err = r.uvarint(); err != nil {
				return nil, err
			}
			if rf.bits[i], err = r.bytes(bsz); err != nil {
				return nil, fmt.Errorf("remote: batch entry %d (user %d): %w", i, rf.users[i], err)
			}
		}
	default:
		return nil, fmt.Errorf("remote: unknown report form 0x%02x", rf.form)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rf, nil
}
