package remote

import (
	"net/http/httptest"
	"strings"
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

func testGrid() *grid.System {
	return grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

func testConfig(g spatial.Discretizer) CuratorConfig {
	return CuratorConfig{
		Space: g, Epsilon: 1.0, W: 5,
		Division: allocation.Population, Lambda: 6, Seed: 11,
	}
}

// buildClients creates device clients holding random-walk trajectories
// over any spatial discretization.
func buildClients(t *testing.T, g spatial.Discretizer, cur *Curator, baseURL string, n, T int) ([]*Client, *trajectory.Dataset) {
	t.Helper()
	rng := ldp.NewRand(3, 5)
	d := &trajectory.Dataset{Name: "remote", T: T}
	clients := make([]*Client, n)
	for u := 0; u < n; u++ {
		start := rng.IntN(T / 2)
		c := grid.Cell(rng.IntN(g.NumCells()))
		cells := []grid.Cell{c}
		for ts := start + 1; ts < T; ts++ {
			if rng.Float64() < 0.1 {
				break
			}
			ns := g.Neighbors(c)
			c = ns[rng.IntN(len(ns))]
			cells = append(cells, c)
		}
		tr := trajectory.CellTrajectory{Start: start, Cells: cells}
		d.Trajs = append(d.Trajs, tr)
		clients[u] = NewClient(baseURL, nil, u, tr, cur.Domain(), uint64(u)+100)
	}
	return clients, d
}

func TestEndToEndOverHTTP(t *testing.T) {
	g := testGrid()
	cur, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	const T = 25
	cur.EnableLedger(T)
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	clients, orig := buildClients(t, g, cur, srv.URL, 120, T)
	co := NewCoordinator(srv.URL, nil)

	for ts := 0; ts < T; ts++ {
		active := 0
		for _, c := range clients {
			if err := c.AnnouncePresence(ts); err != nil {
				t.Fatalf("t=%d presence: %v", ts, err)
			}
			if c.LocatedAt(ts) {
				active++
			}
		}
		if err := co.Plan(ts); err != nil {
			t.Fatalf("t=%d plan: %v", ts, err)
		}
		for _, c := range clients {
			if _, err := c.MaybeReport(ts); err != nil {
				t.Fatalf("t=%d report: %v", ts, err)
			}
		}
		if err := co.Finalize(ts, active); err != nil {
			t.Fatalf("t=%d finalize: %v", ts, err)
		}
	}

	rounds, reports := cur.Stats()
	if rounds == 0 || reports == 0 {
		t.Fatalf("no activity: rounds=%d reports=%d", rounds, reports)
	}
	syn := cur.Synthetic("remote")
	if err := syn.Validate(g, true); err != nil {
		t.Fatalf("invalid release: %v", err)
	}
	// Size mirroring holds over the wire too.
	synActive := syn.ActiveCounts()
	for ts, want := range orig.ActiveCounts() {
		if synActive[ts] != want {
			t.Fatalf("t=%d: synthetic active %d, real %d", ts, synActive[ts], want)
		}
	}
	// w-event invariant: no user reported twice in any window.
	got := cur.Ledger().MaxUserWindowSum(5, func(int) float64 { return 1.0 })
	if got > 1.0+1e-9 {
		t.Fatalf("per-user window budget %v exceeds ε", got)
	}
	// The release is served over HTTP as CSV.
	_, body, err := co.Synthetic()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "T,25") {
		t.Fatalf("unexpected CSV header: %q", string(body[:20]))
	}
}

func TestCuratorConfigValidation(t *testing.T) {
	g := testGrid()
	bad := []CuratorConfig{
		{Epsilon: 1, W: 5, Lambda: 5},
		{Space: g, W: 5, Lambda: 5},
		{Space: g, Epsilon: 1, Lambda: 5},
		{Space: g, Epsilon: 1, W: 5},
	}
	for i, cfg := range bad {
		if _, err := NewCurator(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestProtocolStateMachine(t *testing.T) {
	g := testGrid()
	cur, _ := NewCurator(testConfig(g))
	// Finalize before Plan.
	if err := cur.Finalize(0, 10); err == nil {
		t.Fatal("Finalize without Plan accepted")
	}
	if err := cur.Plan(0); err != nil {
		t.Fatal(err)
	}
	// Double Plan.
	if err := cur.Plan(1); err == nil {
		t.Fatal("Plan during open round accepted")
	}
	if err := cur.Finalize(0, 0); err != nil {
		t.Fatal(err)
	}
	// Plan for a past timestamp.
	if err := cur.Plan(0); err == nil {
		t.Fatal("Plan for closed timestamp accepted")
	}
	// Presence for a closed timestamp.
	if err := cur.Presence(1, 0); err == nil {
		t.Fatal("stale presence accepted")
	}
}

func TestReportValidation(t *testing.T) {
	g := testGrid()
	cur, _ := NewCurator(testConfig(g))
	cur.Presence(7, 0)
	if err := cur.Plan(0); err != nil {
		t.Fatal(err)
	}
	// Unsampled user (bootstrap samples 1/w of 1 user → that one user).
	if err := cur.Report(99, 0, []int{1}); err == nil {
		t.Fatal("unsampled user's report accepted")
	}
	a, _ := cur.AssignmentFor(7, 0)
	if a.Report {
		// Out-of-domain bit.
		if err := cur.Report(7, 0, []int{cur.Domain().Size()}); err == nil {
			t.Fatal("out-of-domain bit accepted")
		}
		// Valid report, then a duplicate.
		if err := cur.Report(7, 0, []int{1, 2}); err != nil {
			t.Fatal(err)
		}
		if err := cur.Report(7, 0, []int{1}); err == nil {
			t.Fatal("duplicate report accepted")
		}
	}
}

func TestClientStateAt(t *testing.T) {
	g := testGrid()
	cur, _ := NewCurator(testConfig(g))
	tr := trajectory.CellTrajectory{Start: 3, Cells: []grid.Cell{0, 1, 5}}
	c := NewClient("http://unused", nil, 1, tr, cur.Domain(), 9)

	if _, ok := c.StateAt(2); ok {
		t.Fatal("state before start")
	}
	s, ok := c.StateAt(3)
	if !ok || s.Kind.String() != "enter" {
		t.Fatalf("t=3 state = %v", s)
	}
	s, _ = c.StateAt(4)
	if s.From != 0 || s.To != 1 {
		t.Fatalf("t=4 move = %v", s)
	}
	s, ok = c.StateAt(6) // End()+1 = graceful quit
	if !ok || s.Kind.String() != "quit" || s.From != 5 {
		t.Fatalf("t=6 state = %v", s)
	}
	if _, ok := c.StateAt(7); ok {
		t.Fatal("state after quit")
	}
	if !c.LocatedAt(5) || c.LocatedAt(6) {
		t.Fatal("LocatedAt mismatch")
	}
}

func TestQuitInference(t *testing.T) {
	g := testGrid()
	cur, _ := NewCurator(testConfig(g))
	// User 1 present at t=0, silent at t=1 → quitted; it must not be
	// sampleable at t=2 even after recycling windows pass.
	cur.Presence(1, 0)
	cur.Plan(0)
	cur.Finalize(0, 1)
	cur.Plan(1)
	cur.Finalize(1, 0)
	for ts := 2; ts < 10; ts++ {
		cur.Presence(1, ts) // a confused device reappears
		cur.Plan(ts)
		a, _ := cur.AssignmentFor(1, ts)
		if a.Report {
			t.Fatalf("quitted user sampled at t=%d", ts)
		}
		cur.Finalize(ts, 0)
	}
}
