package remote

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// protoDriver drives the curator protocol in-process against a fixed
// trajectory set, perturbing each client's state once per timestamp so the
// same report bits can be fed to several curators in lockstep.
type protoDriver struct {
	dom   *transition.Domain
	trajs []trajectory.CellTrajectory
	rngs  []*ldp.Source
}

func newProtoDriver(g *grid.System, dom *transition.Domain, n, T int) *protoDriver {
	rng := ldp.NewRand(3, 5)
	d := &protoDriver{dom: dom}
	for u := 0; u < n; u++ {
		start := rng.IntN(T / 2)
		c := grid.Cell(rng.IntN(g.NumCells()))
		cells := []grid.Cell{c}
		for ts := start + 1; ts < T; ts++ {
			if rng.Float64() < 0.1 {
				break
			}
			ns := g.Neighbors(c)
			c = ns[rng.IntN(len(ns))]
			cells = append(cells, c)
		}
		d.trajs = append(d.trajs, trajectory.CellTrajectory{Start: start, Cells: cells})
		d.rngs = append(d.rngs, ldp.NewSource(uint64(u)+100, (uint64(u)+100)^0xbb67ae8584caa73b))
	}
	return d
}

func (d *protoDriver) stateAt(u, t int) (transition.State, bool) {
	tr := d.trajs[u]
	switch {
	case t == tr.Start:
		return transition.EnterState(tr.Cells[0]), true
	case t > tr.Start && t <= tr.End():
		i := t - tr.Start
		return transition.MoveState(tr.Cells[i-1], tr.Cells[i]), true
	case t == tr.End()+1:
		return transition.QuitState(tr.Cells[len(tr.Cells)-1]), true
	default:
		return transition.State{}, false
	}
}

// step runs one protocol timestamp against every curator in curs, shipping
// the *same* perturbed bits to all of them; the curators' own randomness
// (sampling, synthesis) stays per-curator.
func (d *protoDriver) step(t *testing.T, ts int, curs ...*Curator) {
	t.Helper()
	active := 0
	for u := range d.trajs {
		if _, ok := d.stateAt(u, ts); ok {
			for _, c := range curs {
				if err := c.Presence(u, ts); err != nil {
					t.Fatalf("t=%d presence: %v", ts, err)
				}
			}
		}
		tr := d.trajs[u]
		if ts >= tr.Start && ts <= tr.End() {
			active++
		}
	}
	for _, c := range curs {
		if err := c.Plan(ts); err != nil {
			t.Fatalf("t=%d plan: %v", ts, err)
		}
	}
	for u := range d.trajs {
		state, ok := d.stateAt(u, ts)
		if !ok {
			continue
		}
		a, err := curs[0].AssignmentFor(u, ts)
		if err != nil {
			t.Fatalf("t=%d assignment: %v", ts, err)
		}
		for _, c := range curs[1:] {
			b, err := c.AssignmentFor(u, ts)
			if err != nil {
				t.Fatalf("t=%d assignment: %v", ts, err)
			}
			if a != b {
				t.Fatalf("t=%d user %d: curators diverged on assignment: %+v vs %+v", ts, u, a, b)
			}
		}
		if !a.Report {
			continue
		}
		idx, ok := d.dom.Index(state)
		if !ok {
			t.Fatalf("state outside domain")
		}
		ones := ldp.MustOUE(d.dom.Size(), a.Epsilon).Perturb(d.rngs[u], idx)
		for _, c := range curs {
			if err := c.Report(u, ts, ones); err != nil {
				t.Fatalf("t=%d report: %v", ts, err)
			}
		}
	}
	for _, c := range curs {
		if err := c.Finalize(ts, active); err != nil {
			t.Fatalf("t=%d finalize: %v", ts, err)
		}
	}
}

func equalReleases(a, b *trajectory.Dataset) bool {
	if a.T != b.T || len(a.Trajs) != len(b.Trajs) {
		return false
	}
	for i := range a.Trajs {
		if a.Trajs[i].Start != b.Trajs[i].Start || len(a.Trajs[i].Cells) != len(b.Trajs[i].Cells) {
			return false
		}
		for j, c := range a.Trajs[i].Cells {
			if b.Trajs[i].Cells[j] != c {
				return false
			}
		}
	}
	return true
}

// TestCuratorSnapshotRoundTrip checkpoints the curator at T/2 — serialized
// through JSON, as the /v1/snapshot endpoint ships it — restores into a
// fresh curator, continues both under identical traffic, and demands
// bit-identical releases.
func TestCuratorSnapshotRoundTrip(t *testing.T) {
	g := testGrid()
	const T = 24
	uninterrupted, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	donor, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	drv := newProtoDriver(g, uninterrupted.Domain(), 90, T)
	for ts := 0; ts < T/2; ts++ {
		drv.step(t, ts, uninterrupted, donor)
	}

	st, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	var decoded CuratorState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(&decoded); err != nil {
		t.Fatal(err)
	}

	for ts := T / 2; ts < T; ts++ {
		drv.step(t, ts, uninterrupted, resumed)
	}
	if !equalReleases(uninterrupted.Synthetic("syn"), resumed.Synthetic("syn")) {
		t.Fatal("restored curator's release differs from the uninterrupted one")
	}

	// Config mismatches are rejected.
	otherCfg := testConfig(g)
	otherCfg.Epsilon = 2.0
	other, err := NewCurator(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(&decoded); err == nil {
		t.Fatal("restore across mismatched configs accepted")
	}
}

// TestBatchedReportAndSnapshotHTTP exercises the batched /v1/report path and
// the /v1/snapshot + /v1/restore endpoints over the wire.
func TestBatchedReportAndSnapshotHTTP(t *testing.T) {
	g := testGrid()
	cur, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	const T = 16
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()
	drv := newProtoDriver(g, cur.Domain(), 80, T)
	co := NewCoordinator(srv.URL, nil)

	post := func(path string, body any) *http.Response {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	for ts := 0; ts < T; ts++ {
		active := 0
		for u := range drv.trajs {
			if _, ok := drv.stateAt(u, ts); ok {
				if resp := post("/v1/presence", presenceRequest{User: u, T: ts}); resp.StatusCode != http.StatusNoContent {
					t.Fatalf("t=%d presence: %s", ts, resp.Status)
				}
			}
			tr := drv.trajs[u]
			if ts >= tr.Start && ts <= tr.End() {
				active++
			}
		}
		if err := co.Plan(ts); err != nil {
			t.Fatal(err)
		}
		// A gateway aggregates every sampled client's perturbed bits into
		// one batched upload.
		var batch []BatchReport
		for u := range drv.trajs {
			state, ok := drv.stateAt(u, ts)
			if !ok {
				continue
			}
			a, err := cur.AssignmentFor(u, ts)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Report {
				continue
			}
			idx, _ := drv.dom.Index(state)
			batch = append(batch, BatchReport{
				User: u,
				Ones: ldp.MustOUE(drv.dom.Size(), a.Epsilon).Perturb(drv.rngs[u], idx),
			})
		}
		if len(batch) > 0 {
			// A batch containing an unsampled user is rejected whole.
			bad := append([]BatchReport{{User: -1, Ones: nil}}, batch...)
			if resp := post("/v1/report", reportRequest{T: ts, Reports: bad}); resp.StatusCode != http.StatusConflict {
				t.Fatalf("t=%d: poisoned batch accepted: %s", ts, resp.Status)
			}
			if resp := post("/v1/report", reportRequest{T: ts, Reports: batch}); resp.StatusCode != http.StatusNoContent {
				t.Fatalf("t=%d batch: %s", ts, resp.Status)
			}
			// Batched uploads are all-or-nothing and one-shot.
			if resp := post("/v1/report", reportRequest{T: ts, Reports: batch[:1]}); resp.StatusCode != http.StatusConflict {
				t.Fatalf("t=%d: replayed batch accepted: %s", ts, resp.Status)
			}
		}
		if err := co.Finalize(ts, active); err != nil {
			t.Fatal(err)
		}
	}
	rounds, reports := cur.Stats()
	if rounds == 0 || reports == 0 {
		t.Fatalf("no batched activity: rounds=%d reports=%d", rounds, reports)
	}
	if err := cur.Synthetic("syn").Validate(g, true); err != nil {
		t.Fatal(err)
	}

	// Snapshot over the wire, restore into a second server.
	resp, err := http.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st CuratorState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	cur2, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewHandler(cur2))
	defer srv2.Close()
	if resp := post("/v1/restore", st); resp.StatusCode != http.StatusNoContent {
		// post targets srv; restore must go to srv2.
		t.Fatalf("restore onto the same curator failed: %s", resp.Status)
	}
	buf, _ := json.Marshal(st)
	resp2, err := http.Post(srv2.URL+"/v1/restore", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("restore: %s", resp2.Status)
	}
	if !equalReleases(cur.Synthetic("syn"), cur2.Synthetic("syn")) {
		t.Fatal("restored curator serves a different release")
	}
}
