package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// RetryPolicy bounds every HTTP request the device client, the gateway and
// the coordinator issue. Before this existed a hung curator stalled a
// device goroutine forever (no per-request deadline) and a transient 5xx
// was terminal; now each attempt carries its own timeout and idempotent
// requests retry with jittered exponential backoff. Non-idempotent
// requests — report uploads, Plan, Finalize — always get exactly one
// attempt: retrying an ambiguous success would double-apply.
type RetryPolicy struct {
	// Timeout bounds each individual HTTP attempt. Default 10s.
	Timeout time.Duration
	// Attempts caps the tries for an idempotent request (first try
	// included). Default 3.
	Attempts int
	// Backoff is the delay before the second attempt; it doubles each
	// retry, with ±50% jitter so synchronized clients don't re-stampede a
	// recovering curator. Default 100ms.
	Backoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Millisecond
	}
	return p
}

// transport is the shared request machinery under Client, Gateway and
// Coordinator: JSON in/out, per-attempt timeouts, bounded retries, and
// response bodies included in every non-2xx error.
type transport struct {
	baseURL string
	http    *http.Client
	policy  RetryPolicy
}

func newTransport(baseURL string, hc *http.Client) *transport {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &transport{baseURL: baseURL, http: hc}
}

// postJSON marshals body and POSTs it. Only idempotent POSTs (presence
// announcements, batched assignment polls — requests the curator applies as
// set-or-read operations) may retry.
func (tr *transport) postJSON(path string, body any, idempotent bool, dst any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return tr.do(http.MethodPost, path, buf, idempotent, dst)
}

// getJSON GETs path and decodes the response into dst (GETs are always
// idempotent).
func (tr *transport) getJSON(path string, dst any) error {
	return tr.do(http.MethodGet, path, nil, true, dst)
}

// do runs the attempt loop. Retries fire on transport errors (including
// per-attempt timeouts) and 5xx responses; a 4xx is a deterministic
// rejection and returns immediately, body included.
func (tr *transport) do(method, path string, body []byte, idempotent bool, dst any) error {
	p := tr.policy.withDefaults()
	attempts := 1
	if idempotent {
		attempts = p.Attempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Exponential backoff with ±50% jitter.
			d := p.Backoff << uint(i-1)
			d = d/2 + time.Duration(rand.Int64N(int64(d)))
			time.Sleep(d)
		}
		retryable, err := tr.attempt(method, path, body, p.Timeout, dst)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
	}
	if attempts > 1 {
		return fmt.Errorf("remote: giving up after %d attempts: %w", attempts, lastErr)
	}
	return lastErr
}

// attempt issues one request under its own deadline. The bool reports
// whether the failure is worth retrying.
func (tr *transport) attempt(method, path string, body []byte, timeout time.Duration, dst any) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, tr.baseURL+path, rd)
	if err != nil {
		return false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := tr.http.Do(req)
	if err != nil {
		return true, fmt.Errorf("remote: %s %s: %w", method, path, err)
	}
	defer drain(resp)
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		err := fmt.Errorf("remote: %s %s → %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
		return resp.StatusCode >= 500, err
	}
	if dst != nil {
		var derr error
		if raw, ok := dst.(interface{ decodeFrom(io.Reader) error }); ok {
			derr = raw.decodeFrom(resp.Body) // non-JSON endpoints (the synthetic CSV)
		} else {
			derr = json.NewDecoder(resp.Body).Decode(dst)
		}
		if derr != nil {
			return true, fmt.Errorf("remote: %s %s: decoding response: %w", method, path, derr)
		}
	}
	return false, nil
}
