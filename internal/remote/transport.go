package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds every HTTP request the device client, the gateway and
// the coordinator issue. Before this existed a hung curator stalled a
// device goroutine forever (no per-request deadline) and a transient 5xx
// was terminal; now each attempt carries its own timeout and idempotent
// requests retry with jittered exponential backoff. Non-idempotent
// requests — report uploads, Plan, Finalize — always get exactly one
// attempt: retrying an ambiguous success would double-apply.
type RetryPolicy struct {
	// Timeout bounds each individual HTTP attempt. Default 10s.
	Timeout time.Duration
	// Attempts caps the tries for an idempotent request (first try
	// included). Default 3.
	Attempts int
	// Backoff is the delay before the second attempt; it doubles each
	// retry, with ±50% jitter so synchronized clients don't re-stampede a
	// recovering curator. Default 100ms.
	Backoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Millisecond
	}
	return p
}

// WireMode selects the request encoding a client-side transport uses on the
// endpoints that speak the binary frame protocol (presence, assignment
// polls, reports).
type WireMode int

const (
	// WireAuto (the default) starts on JSON and upgrades to binary frames
	// once a response advertises X-Retrasyn-Wire support — so the same
	// client works against old JSON-only curators and new binary-capable
	// ones without configuration, and never wastes a request probing.
	WireAuto WireMode = iota
	// WireJSON forces JSON on every request.
	WireJSON
	// WireBinary forces binary frames on every framed endpoint without
	// waiting for an advert (for servers known to be binary-capable).
	WireBinary
)

// transport is the shared request machinery under Client, Gateway and
// Coordinator: JSON or binary frames out, per-attempt timeouts, bounded
// retries, and response bodies included in every non-2xx error.
type transport struct {
	baseURL string
	http    *http.Client
	policy  RetryPolicy
	wire    WireMode
	// binaryOK latches once any response carries the binary-wire advert;
	// WireAuto switches to frames from the next framed request on.
	binaryOK atomic.Bool
}

func newTransport(baseURL string, hc *http.Client) *transport {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &transport{baseURL: baseURL, http: hc}
}

// useBinary reports whether the next framed request should be binary.
func (tr *transport) useBinary() bool {
	switch tr.wire {
	case WireBinary:
		return true
	case WireJSON:
		return false
	default:
		return tr.binaryOK.Load()
	}
}

// postJSON marshals body and POSTs it. Only idempotent POSTs (presence
// announcements, batched assignment polls — requests the curator applies as
// set-or-read operations) may retry.
func (tr *transport) postJSON(path string, body any, idempotent bool, dst any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return tr.do(http.MethodPost, path, buf, "application/json", idempotent, dst)
}

// postWire POSTs to a framed endpoint, choosing the encoding by wire mode:
// bin builds the binary frame lazily so the JSON path never pays for it.
func (tr *transport) postWire(path string, jsonBody any, bin func() ([]byte, error), idempotent bool, dst any) error {
	if bin != nil && tr.useBinary() {
		frame, err := bin()
		if err != nil {
			return err
		}
		return tr.do(http.MethodPost, path, frame, WireContentType, idempotent, dst)
	}
	return tr.postJSON(path, jsonBody, idempotent, dst)
}

// getJSON GETs path and decodes the response into dst (GETs are always
// idempotent).
func (tr *transport) getJSON(path string, dst any) error {
	return tr.do(http.MethodGet, path, nil, "", true, dst)
}

// do runs the attempt loop. Retries fire on transport errors (including
// per-attempt timeouts) and 5xx responses; a 4xx is a deterministic
// rejection and returns immediately, body included.
func (tr *transport) do(method, path string, body []byte, contentType string, idempotent bool, dst any) error {
	p := tr.policy.withDefaults()
	attempts := 1
	if idempotent {
		attempts = p.Attempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Exponential backoff with ±50% jitter.
			d := p.Backoff << uint(i-1)
			d = d/2 + time.Duration(rand.Int64N(int64(d)))
			time.Sleep(d)
		}
		retryable, err := tr.attempt(method, path, body, contentType, p.Timeout, dst)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
	}
	if attempts > 1 {
		return fmt.Errorf("remote: giving up after %d attempts: %w", attempts, lastErr)
	}
	return lastErr
}

// wireDecoder is implemented by response destinations that can decode both
// wire encodings; attempt routes by the response's Content-Type, so a
// JSON-only server may answer a binary request in JSON and still be
// understood.
type wireDecoder interface {
	decodeWire(contentType string, r io.Reader) error
}

// attempt issues one request under its own deadline. The bool reports
// whether the failure is worth retrying.
func (tr *transport) attempt(method, path string, body []byte, contentType string, timeout time.Duration, dst any) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, tr.baseURL+path, rd)
	if err != nil {
		return false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
		if contentType == WireContentType {
			// Ask for a binary response where one exists (assignments).
			req.Header.Set("Accept", WireContentType)
		}
	}
	resp, err := tr.http.Do(req)
	if err != nil {
		return true, fmt.Errorf("remote: %s %s: %w", method, path, err)
	}
	defer drain(resp)
	if resp.Header.Get(wireAdvertHeader) == wireAdvertValue {
		tr.binaryOK.Store(true)
	}
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		err := fmt.Errorf("remote: %s %s → %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
		return resp.StatusCode >= 500, err
	}
	if dst != nil {
		var derr error
		switch d := dst.(type) {
		case wireDecoder:
			derr = d.decodeWire(resp.Header.Get("Content-Type"), resp.Body)
		case interface{ decodeFrom(io.Reader) error }:
			derr = d.decodeFrom(resp.Body) // non-JSON endpoints (the synthetic CSV)
		default:
			derr = json.NewDecoder(resp.Body).Decode(dst)
		}
		if derr != nil {
			return true, fmt.Errorf("remote: %s %s: decoding response: %w", method, path, derr)
		}
	}
	return false, nil
}
