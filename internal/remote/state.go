package remote

import (
	"fmt"
	"strings"

	"retrasyn/internal/allocation"
	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/pipeline"
	"retrasyn/internal/relayout"
	"retrasyn/internal/spatial"
	"retrasyn/internal/synthesis"
	"retrasyn/internal/transition"
)

// Curator checkpointing: Snapshot exports the complete protocol and model
// state — including a round that is currently open — so the curator process
// can be restarted (or migrated) without losing the stream. A restored
// curator continues the protocol with releases bit-identical to an
// uninterrupted one.

// CuratorStateVersion guards the snapshot format.
const CuratorStateVersion = 1

// CuratorFingerprint captures the config a snapshot is only valid for.
type CuratorFingerprint struct {
	// Discretizer is the stable layout fingerprint of the spatial backend.
	// Snapshots from pre-spatial builds omit it; Restore accepts those when
	// the curator runs the uniform grid, the only backend that existed then.
	Discretizer string  `json:"discretizer,omitempty"`
	DomainSize  int     `json:"domain_size"`
	Epsilon     float64 `json:"epsilon"`
	W           int     `json:"w"`
	Division    int     `json:"division"`
	Lambda      float64 `json:"lambda"`
	Kappa       int     `json:"kappa"`
	Seed        uint64  `json:"seed"`
}

// fingerprint returns the boot-time config fingerprint, frozen at NewCurator
// so checkpoints taken before and after layout migrations all validate
// against the same construction config (the current layout is recorded
// separately in CuratorState.Generation/Layout).
func (c *Curator) fingerprint() CuratorFingerprint { return c.bootFP }

func (c *Curator) configFingerprint() CuratorFingerprint {
	return CuratorFingerprint{
		Discretizer: c.cfg.Space.Fingerprint(),
		DomainSize:  c.dom.Size(),
		Epsilon:     c.cfg.Epsilon,
		W:           c.cfg.W,
		Division:    int(c.cfg.Division),
		Lambda:      c.cfg.Lambda,
		Kappa:       c.cfg.Kappa,
		Seed:        c.cfg.Seed,
	}
}

// RosterState is the serializable form of a UserRoster.
type RosterState struct {
	Status   map[int]uint8 `json:"status"`
	Reported [][]int       `json:"reported"`
}

func (r *UserRoster) state() RosterState {
	st := RosterState{
		Status:   make(map[int]uint8, len(r.status)),
		Reported: make([][]int, len(r.reported)),
	}
	for id, s := range r.status {
		st.Status[id] = s
	}
	for i, ids := range r.reported {
		st.Reported[i] = append([]int(nil), ids...)
	}
	return st
}

func (r *UserRoster) restore(st RosterState) error {
	if len(st.Reported) != r.w {
		return fmt.Errorf("remote: roster restore with %d slots, window %d", len(st.Reported), r.w)
	}
	r.status = make(map[int]uint8, len(st.Status))
	for id, s := range st.Status {
		r.status[id] = s
	}
	for i := range r.reported {
		r.reported[i] = append([]int(nil), st.Reported[i]...)
	}
	return nil
}

// CuratorState is the serializable processing state of a Curator, including
// any round currently open (phase, assignments and the partial aggregate).
type CuratorState struct {
	Version int                `json:"version"`
	Config  CuratorFingerprint `json:"config"`

	// Generation counts the layout migrations applied before the snapshot;
	// when > 0, Layout/LayoutFingerprint describe the discretization in
	// effect so Restore can rebuild it. Relayout carries the density-sketch
	// controller, so rebuild decisions after a restore match the
	// uninterrupted curator exactly.
	Generation        int                       `json:"generation,omitempty"`
	Layout            *relayout.Layout          `json:"layout,omitempty"`
	LayoutFingerprint string                    `json:"layout_fp,omitempty"`
	Relayout          *relayout.ControllerState `json:"relayout,omitempty"`

	T           int                `json:"t"`
	Phase       int                `json:"phase"`
	Present     map[int]bool       `json:"present"`
	PrevPresent map[int]bool       `json:"prev_present"`
	Assignments map[int]Assignment `json:"assignments,omitempty"`
	EpsRound    float64            `json:"eps_round"`
	// AggCounts/AggN carry an open round's partial aggregate; AggCounts is
	// nil when the round has no aggregator (or between rounds).
	AggCounts []int `json:"agg_counts,omitempty"`
	AggN      int   `json:"agg_n"`

	Model        mobility.State `json:"model"`
	Bootstrapped bool           `json:"bootstrapped"`

	Roster       RosterState                   `json:"roster"`
	Dev          allocation.DevState           `json:"dev"`
	Sig          allocation.SigState           `json:"sig"`
	BudgetWindow *allocation.BudgetWindowState `json:"budget_window,omitempty"`
	Ledger       *allocation.Ledger            `json:"ledger,omitempty"`

	RNG     []byte           `json:"rng"`
	Rounds  int              `json:"rounds"`
	Reports int              `json:"reports"`
	Synth   synthesis.State  `json:"synth"`
	Timings pipeline.Timings `json:"timings"`
}

// Snapshot exports the curator's complete state as a deep copy; handler
// traffic continuing after the call never mutates it.
func (c *Curator) Snapshot() (*CuratorState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rngState, err := c.rng.State()
	if err != nil {
		return nil, fmt.Errorf("remote: snapshot rng: %w", err)
	}
	ctlState := c.ctl.State()
	st := &CuratorState{
		Version:      CuratorStateVersion,
		Config:       c.fingerprint(),
		Generation:   c.generation,
		Relayout:     &ctlState,
		T:            c.t,
		Phase:        int(c.phase),
		Present:      copyBoolSet(c.present),
		PrevPresent:  copyBoolSet(c.prevPresent),
		EpsRound:     c.epsRound,
		Model:        c.model.State(),
		Bootstrapped: c.updater.Bootstrapped(),
		Roster:       c.users.state(),
		Dev:          c.dev.State(),
		Sig:          c.sig.State(),
		Ledger:       c.ledger.Clone(),
		RNG:          rngState,
		Rounds:       c.rounds,
		Reports:      c.reports,
		Synth:        c.synthStage.Synth.State(),
		Timings:      c.timings,
	}
	if c.assignments != nil {
		st.Assignments = make(map[int]Assignment, len(c.assignments))
		for id, a := range c.assignments {
			st.Assignments[id] = a
		}
	}
	if c.agg != nil {
		st.AggCounts = c.agg.Counts()
		st.AggN = c.agg.N()
	}
	if c.budgetWin != nil {
		bw := c.budgetWin.State()
		st.BudgetWindow = &bw
	}
	if c.generation > 0 {
		l, err := relayout.LayoutOf(c.space)
		if err != nil {
			return nil, fmt.Errorf("remote: snapshot layout: %w", err)
		}
		st.Layout = &l
		st.LayoutFingerprint = c.space.Fingerprint()
	}
	return st, nil
}

// Restore replaces the curator's state with a previously exported snapshot.
// The curator must have been constructed with a config matching the
// snapshot's fingerprint.
func (c *Curator) Restore(st *CuratorState) error {
	if st == nil {
		return fmt.Errorf("remote: Restore on nil state")
	}
	if st.Version != CuratorStateVersion {
		return fmt.Errorf("remote: snapshot version %d, curator supports %d", st.Version, CuratorStateVersion)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	got, want := c.fingerprint(), st.Config
	if want.Discretizer == "" && strings.HasPrefix(got.Discretizer, "uniform:") {
		// Legacy pre-spatial snapshot; see core/state.go for the rationale.
		want.Discretizer = got.Discretizer
	}
	if got != want {
		return fmt.Errorf("remote: snapshot config %+v does not match curator config %+v", want, got)
	}
	if (st.BudgetWindow != nil) != (c.budgetWin != nil) {
		return fmt.Errorf("remote: snapshot division state does not match curator division")
	}
	if st.Phase != int(phaseIdle) && st.Phase != int(phasePlanned) {
		return fmt.Errorf("remote: snapshot phase %d invalid", st.Phase)
	}
	// Put the curator on the layout the snapshot was taken at before loading
	// the layout-sized state (model vector, aggregate, synthetic cells).
	switch {
	case st.Generation > 0:
		if st.Layout == nil {
			return fmt.Errorf("remote: snapshot at layout generation %d carries no layout", st.Generation)
		}
		sp, err := relayout.FromLayout(*st.Layout)
		if err != nil {
			return fmt.Errorf("remote: restore layout: %w", err)
		}
		if st.LayoutFingerprint != "" && sp.Fingerprint() != st.LayoutFingerprint {
			return fmt.Errorf("remote: restored layout fingerprint %s ≠ snapshot %s — corrupt checkpoint",
				sp.Fingerprint(), st.LayoutFingerprint)
		}
		c.adoptSpaceLocked(sp, st.Generation)
	case c.generation > 0:
		c.adoptSpaceLocked(c.cfg.Space, 0)
	}
	if st.Relayout != nil {
		if err := c.ctl.Restore(*st.Relayout); err != nil {
			return err
		}
	}
	if st.AggCounts != nil && len(st.AggCounts) != c.dom.Size() {
		return fmt.Errorf("remote: snapshot aggregate length %d ≠ domain %d", len(st.AggCounts), c.dom.Size())
	}
	if err := c.rng.SetState(st.RNG); err != nil {
		return fmt.Errorf("remote: restore rng: %w", err)
	}
	if err := c.model.Restore(st.Model); err != nil {
		return err
	}
	if err := c.users.restore(st.Roster); err != nil {
		return err
	}
	c.t = st.T
	c.phase = phase(st.Phase)
	c.present = copyBoolSet(st.Present)
	c.prevPresent = copyBoolSet(st.PrevPresent)
	c.epsRound = st.EpsRound
	c.assignments = nil
	if st.Assignments != nil {
		c.assignments = make(map[int]Assignment, len(st.Assignments))
		for id, a := range st.Assignments {
			c.assignments[id] = a
		}
	}
	c.oracle, c.agg = nil, nil
	if st.AggCounts != nil {
		c.oracle = ldp.MustOUE(c.dom.Size(), c.epsRound)
		c.agg = ldp.NewAggregator(c.oracle)
		c.agg.AddCounts(st.AggCounts, st.AggN)
	}
	c.updater.SetBootstrapped(st.Bootstrapped)
	c.dev.Restore(st.Dev)
	c.sig.Restore(st.Sig)
	if st.BudgetWindow != nil {
		if err := c.budgetWin.Restore(*st.BudgetWindow); err != nil {
			return err
		}
	}
	c.ledger = st.Ledger.Clone()
	c.rounds = st.Rounds
	c.reports = st.Reports
	c.synthStage.Synth.Restore(st.Synth)
	c.timings = st.Timings
	// Stage-latency metrics are per-round deltas off the cumulative timings;
	// re-baseline so the first post-restore round doesn't charge the donor's
	// whole pre-checkpoint runtime as one observation.
	c.lastTimings = st.Timings
	return nil
}

// adoptSpaceLocked rebuilds the curator's layout-dependent plumbing over sp
// without migrating state — the restore path, where the snapshot's vectors
// (already sized to sp's domain) are loaded right after.
func (c *Curator) adoptSpaceLocked(sp spatial.Discretizer, generation int) {
	dom := transition.NewDomain(sp)
	model := mobility.NewModel(dom)
	bootstrapped := c.updater.Bootstrapped()
	c.updater = &pipeline.DMUUpdater{Model: model}
	c.updater.SetBootstrapped(bootstrapped)
	c.synthStage.Synth.Relayout(sp, nil)
	c.synthStage = &pipeline.SynthesisStage{Model: model, Synth: c.synthStage.Synth}
	c.model = model
	c.dom = dom
	c.space = sp
	c.generation = generation
}

func copyBoolSet(m map[int]bool) map[int]bool {
	cp := make(map[int]bool, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}
