package remote

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

func fastPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 200 * time.Millisecond, Attempts: 3, Backoff: time.Millisecond}
}

func transportClient(t *testing.T, url string) *Client {
	t.Helper()
	g := testGrid()
	dom := transition.NewDomain(g)
	traj := trajectory.CellTrajectory{Start: 0, Cells: []spatial.Cell{0, 1}}
	c := NewClient(url, nil, 7, traj, dom, 1)
	c.SetRetryPolicy(fastPolicy())
	return c
}

// TestClientRetriesTransient5xx: a curator that throws two 500s before
// recovering must not lose the presence announcement — the idempotent path
// retries through the blip.
func TestClientRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "curator mid-restart", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	if err := transportClient(t, srv.URL).AnnouncePresence(0); err != nil {
		t.Fatalf("presence failed through a transient blip: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestClientTimeoutOnStalledCurator: a hung curator must not stall a device
// goroutine forever — each attempt carries its own deadline.
func TestClientTimeoutOnStalledCurator(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall until the test tears down
	}))
	defer srv.Close()
	// Unblock the stalled handler before srv.Close waits on it (LIFO).
	defer close(release)
	c := transportClient(t, srv.URL)
	c.SetRetryPolicy(RetryPolicy{Timeout: 50 * time.Millisecond, Attempts: 2, Backoff: time.Millisecond})
	start := time.Now()
	err := c.AnnouncePresence(0)
	if err == nil {
		t.Fatal("want a timeout error from a stalled curator")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("client stalled %v on a hung curator", elapsed)
	}
}

// TestReportNeverRetried: the report upload is not idempotent (one report
// per assignment), so a failure must surface after exactly one attempt,
// with the curator's response body in the error.
func TestReportNeverRetried(t *testing.T) {
	var reportCalls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/assignment"):
			fmt.Fprint(w, `{"report":true,"epsilon":1.0}`)
		case r.URL.Path == "/v1/report":
			reportCalls.Add(1)
			http.Error(w, "aggregator overloaded", http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer srv.Close()
	_, err := transportClient(t, srv.URL).MaybeReport(0)
	if err == nil {
		t.Fatal("want the report error")
	}
	if !strings.Contains(err.Error(), "aggregator overloaded") {
		t.Fatalf("error %q does not include the response body", err)
	}
	if got := reportCalls.Load(); got != 1 {
		t.Fatalf("report POST attempted %d times, want exactly 1", got)
	}
}

// TestNo4xxRetry: a 4xx is a deterministic rejection — retrying it only
// hammers the curator — and the body must ride along in the error.
func TestNo4xxRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "presence for closed timestamp 0", http.StatusConflict)
	}))
	defer srv.Close()
	err := transportClient(t, srv.URL).AnnouncePresence(0)
	if err == nil {
		t.Fatal("want the conflict error")
	}
	if !strings.Contains(err.Error(), "presence for closed timestamp 0") {
		t.Fatalf("error %q does not include the response body", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 4xx, want 1", got)
	}
}

// TestGETErrorsIncludeBody: the GET paths used to drop the response body
// from their errors; every non-2xx now carries it.
func TestGETErrorsIncludeBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no open round for timestamp 0", http.StatusConflict)
	}))
	defer srv.Close()
	if _, err := transportClient(t, srv.URL).MaybeReport(0); err == nil || !strings.Contains(err.Error(), "no open round") {
		t.Fatalf("assignment-poll error %v does not include the response body", err)
	}
	co := NewCoordinator(srv.URL, nil)
	co.SetRetryPolicy(fastPolicy())
	if _, _, err := co.Synthetic(); err == nil || !strings.Contains(err.Error(), "no open round") {
		t.Fatalf("synthetic-fetch error %v does not include the response body", err)
	}
}

// TestCoordinatorPlanNeverRetried: Plan advances the round state machine; a
// retry of an ambiguously-failed Plan would hit "round already open" and
// turn a success into an error. It must get exactly one attempt.
func TestCoordinatorPlanNeverRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "flaky", http.StatusInternalServerError)
	}))
	defer srv.Close()
	co := NewCoordinator(srv.URL, nil)
	co.SetRetryPolicy(fastPolicy())
	if err := co.Plan(0); err == nil {
		t.Fatal("want the plan error")
	}
	if err := co.Finalize(0, 1); err == nil {
		t.Fatal("want the finalize error")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts for plan+finalize, want 2 (no retries)", got)
	}
}

// TestCoordinatorStatsRetries: the read-only stats poll — what a load
// harness hammers — rides through transient failures.
func TestCoordinatorStatsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "blip", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"rounds":3,"reports":42,"presence_events":99}`)
	}))
	defer srv.Close()
	co := NewCoordinator(srv.URL, nil)
	co.SetRetryPolicy(fastPolicy())
	s, err := co.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rounds != 3 || s.Reports != 42 || s.PresenceEvents != 99 {
		t.Fatalf("stats %+v decoded wrong", s)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}
