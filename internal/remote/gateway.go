package remote

import (
	"fmt"
	"net/http"
)

// Gateway is the aggregation tier of the protocol: it fans a shard of
// device traffic into the curator as batched requests — one presence
// registration, one assignment poll and one report upload per timestamp for
// the whole shard — instead of per-device round trips. The batched presence
// and assignment paths are set-or-read operations on the curator and retry
// transient failures under the transport policy; the report upload, like
// the device client's, gets exactly one attempt.
//
// A gateway never sees raw locations either: devices (or the replay
// harness standing in for them) hand it locally perturbed OUE bits.
type Gateway struct {
	tr *transport
}

// NewGateway builds a gateway for the curator endpoint.
func NewGateway(baseURL string, httpClient *http.Client) *Gateway {
	return &Gateway{tr: newTransport(baseURL, httpClient)}
}

// SetRetryPolicy overrides the gateway's timeout/retry bounds (zero fields
// keep their defaults). Call before issuing requests.
func (g *Gateway) SetRetryPolicy(p RetryPolicy) { g.tr.policy = p }

// AnnouncePresence registers the shard's users for timestamp t in one
// request. Presence is a set operation, so a retried announcement cannot
// double-register anyone.
func (g *Gateway) AnnouncePresence(users []int, t int) error {
	if len(users) == 0 {
		return nil
	}
	return g.tr.postJSON("/v1/presence", presenceRequest{T: t, Users: users}, true, nil)
}

// Assignments polls the sampling assignments for the shard, index-aligned
// with users. The poll is read-only and retries transient failures.
func (g *Gateway) Assignments(users []int, t int) ([]Assignment, error) {
	if len(users) == 0 {
		return nil, nil
	}
	var resp assignmentsResponse
	if err := g.tr.postJSON("/v1/assignments", assignmentsRequest{T: t, Users: users}, true, &resp); err != nil {
		return nil, err
	}
	if len(resp.Assignments) != len(users) {
		return nil, fmt.Errorf("remote: assignments response carries %d entries for %d users", len(resp.Assignments), len(users))
	}
	return resp.Assignments, nil
}

// ReportBatch ships the shard's sparse report batch — exactly one attempt,
// all-or-nothing on the curator.
func (g *Gateway) ReportBatch(t int, batch []BatchReport) error {
	if len(batch) == 0 {
		return nil
	}
	return g.tr.postJSON("/v1/report", reportRequest{T: t, Reports: batch}, false, nil)
}

// ReportPacked ships the shard's bit-packed report batch — exactly one
// attempt, all-or-nothing on the curator.
func (g *Gateway) ReportPacked(t int, batch []PackedBatchReport) error {
	if len(batch) == 0 {
		return nil
	}
	return g.tr.postJSON("/v1/report", reportRequest{T: t, Packed: batch}, false, nil)
}
