package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Gateway is the aggregation tier of the protocol: it fans a shard of
// device traffic into the curator as batched requests — one presence
// registration, one assignment poll and one report upload per timestamp for
// the whole shard — instead of per-device round trips. The batched presence
// and assignment paths are set-or-read operations on the curator and retry
// transient failures under the transport policy; the report upload, like
// the device client's, gets exactly one attempt.
//
// By default the gateway negotiates the wire encoding (WireAuto): requests
// start as JSON and switch to binary frames once the curator advertises
// support, so the same gateway binary works against any curator version.
//
// A gateway never sees raw locations either: devices (or the replay
// harness standing in for them) hand it locally perturbed OUE bits.
type Gateway struct {
	tr *transport
}

// NewGateway builds a gateway for the curator endpoint.
func NewGateway(baseURL string, httpClient *http.Client) *Gateway {
	return &Gateway{tr: newTransport(baseURL, httpClient)}
}

// SetRetryPolicy overrides the gateway's timeout/retry bounds (zero fields
// keep their defaults). Call before issuing requests.
func (g *Gateway) SetRetryPolicy(p RetryPolicy) { g.tr.policy = p }

// SetWire pins the wire encoding (default WireAuto: negotiate up to binary
// when the curator advertises it). Call before issuing requests.
func (g *Gateway) SetWire(m WireMode) { g.tr.wire = m }

// AnnouncePresence registers the shard's users for timestamp t in one
// request. Presence is a set operation, so a retried announcement cannot
// double-register anyone.
func (g *Gateway) AnnouncePresence(users []int, t int) error {
	if len(users) == 0 {
		return nil
	}
	return g.tr.postWire("/v1/presence", presenceRequest{T: t, Users: users},
		func() ([]byte, error) { return encodePresenceFrame(t, users) }, true, nil)
}

// Assignments polls the sampling assignments for the shard, index-aligned
// with users. The poll is read-only and retries transient failures.
func (g *Gateway) Assignments(users []int, t int) ([]Assignment, error) {
	if len(users) == 0 {
		return nil, nil
	}
	var res assignmentsResult
	if err := g.tr.postWire("/v1/assignments", assignmentsRequest{T: t, Users: users},
		func() ([]byte, error) { return encodeAssignmentsFrame(t, users) }, true, &res); err != nil {
		return nil, err
	}
	if len(res.as) != len(users) {
		return nil, fmt.Errorf("remote: assignments response carries %d entries for %d users", len(res.as), len(users))
	}
	return res.as, nil
}

// ReportBatch ships the shard's sparse report batch — exactly one attempt,
// all-or-nothing on the curator.
func (g *Gateway) ReportBatch(t int, batch []BatchReport) error {
	if len(batch) == 0 {
		return nil
	}
	return g.tr.postWire("/v1/report", reportRequest{T: t, Reports: batch},
		func() ([]byte, error) { return EncodeSparseReportFrame(t, batch) }, false, nil)
}

// ReportPacked ships the shard's bit-packed report batch over a domain of
// size d — exactly one attempt, all-or-nothing on the curator. On the
// binary wire each entry costs its varint user ID plus the raw ⌈d/8⌉
// report bytes; d rides in the frame so a curator mid-relayout rejects the
// stale encoding cleanly.
func (g *Gateway) ReportPacked(t, d int, batch []PackedBatchReport) error {
	if len(batch) == 0 {
		return nil
	}
	return g.tr.postWire("/v1/report", reportRequest{T: t, Packed: batch},
		func() ([]byte, error) { return EncodePackedReportFrame(t, d, batch) }, false, nil)
}

// assignmentsResult decodes an assignments response in whichever encoding
// the server chose — a binary-capable curator answers a binary poll with a
// frame, a JSON-only one answers with JSON — routed by Content-Type.
type assignmentsResult struct {
	as []Assignment
}

func (a *assignmentsResult) decodeWire(contentType string, r io.Reader) error {
	if strings.HasPrefix(contentType, WireContentType) {
		body, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		kind, payload, err := decodeFrame(body)
		if err != nil {
			return err
		}
		if kind != frameKindAssignmentsResp {
			return fmt.Errorf("remote: assignments response carries frame kind 0x%02x", kind)
		}
		a.as, err = decodeAssignmentsRespPayload(payload)
		return err
	}
	var resp assignmentsResponse
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		return err
	}
	a.as = resp.Assignments
	return nil
}
