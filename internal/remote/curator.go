// Package remote is the distributed deployment composition of the library
// (paper §VII): an HTTP curator that runs the RetraSyn collection protocol
// against real clients over the network, and the matching device-side
// client. Perturbation happens strictly on the client; the curator only
// ever sees OUE reports, presence metadata and the public active count —
// the same trust model the paper assumes, now with the transport in place.
//
// Per-timestamp protocol, driven by a coordinator (e.g. a cron tick):
//
//  1. clients POST /v1/presence        — "I am present at timestamp t"
//  2. coordinator POST /v1/plan        — curator recycles, samples, fixes ε_t
//  3. clients GET /v1/assignment       — "am I sampled, at what budget?"
//  4. sampled clients POST /v1/report  — locally perturbed OUE bits
//  5. coordinator POST /v1/finalize    — aggregate, DMU, synthesis step
//  6. anyone GET /v1/synthetic         — the current private release
//
// The curator can also re-discretize itself while serving: it sketches the
// density of its own released stream (privacy-free post-processing) and —
// periodically via CuratorConfig.RediscretizeEvery, or on demand via
// POST /v1/relayout — grows a fresh quadtree from the sketch and migrates
// its live state onto it between rounds.
package remote

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"retrasyn/internal/allocation"
	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/monitor"
	"retrasyn/internal/obs"
	"retrasyn/internal/pipeline"
	"retrasyn/internal/relayout"
	"retrasyn/internal/spatial"
	"retrasyn/internal/synthesis"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// CuratorConfig configures a Curator.
type CuratorConfig struct {
	// Space is the spatial discretization the curator runs on (required):
	// the uniform grid, the density-adaptive quadtree, or any other
	// spatial.Discretizer backend.
	Space   spatial.Discretizer
	Epsilon float64
	W       int
	// Division selects budget or population division (default population).
	Division allocation.Division
	// Strategy defaults to the adaptive strategy for the division.
	Strategy allocation.Strategy
	// Lambda is the Eq. 8 termination factor.
	Lambda float64
	// Kappa is the tracker history length (default 5).
	Kappa int
	// Seed drives curator-side randomness (sampling, synthesis).
	Seed uint64
	// RediscretizeEvery > 0 enables online adaptive re-discretization: every
	// that many windows (W timestamps each), Finalize grows a fresh quadtree
	// from the released synthetic stream — a privacy-free post-processing of
	// the LDP outputs — and migrates the curator onto it when the layout
	// distance crosses RelayoutThreshold. 0 (default) never rebuilds
	// automatically; POST /v1/relayout still triggers a manual rebuild.
	RediscretizeEvery int
	// RelayoutThreshold is the minimum layout distance at which a rebuilt
	// layout replaces the current one (default relayout.DefaultThreshold).
	RelayoutThreshold float64
	// RelayoutLeaves caps the rebuilt quadtrees' leaf budget (default: the
	// boot discretizer's cell count). Requires Space to expose cell boxes
	// (spatial.Boxed) when rebuilds are possible.
	RelayoutLeaves int
	// MonitorWindow is the utility monitor's sliding release-sketch length
	// in timestamps (default W). The monitor is always on — like the
	// metrics registry it is run-scoped post-processing and never enters
	// checkpoints.
	MonitorWindow int
	// TriggerPolicy selects how relayout proposals turn into switches:
	// geometric (default), degradation-or, or degradation-and
	// (relayout.TriggerPolicy). Degradation policies consult the utility
	// monitor's alarms.
	TriggerPolicy relayout.TriggerPolicy
}

func (c *CuratorConfig) validate() error {
	if c.Space == nil {
		return fmt.Errorf("remote: Space (the spatial discretization) is required")
	}
	if !(c.Epsilon > 0) {
		return fmt.Errorf("remote: Epsilon must be > 0")
	}
	if c.W < 1 {
		return fmt.Errorf("remote: W must be ≥ 1")
	}
	if !(c.Lambda > 0) {
		return fmt.Errorf("remote: Lambda must be > 0")
	}
	if c.Kappa == 0 {
		c.Kappa = 5
	}
	if c.Strategy == nil {
		c.Strategy = allocation.NewAdaptive(c.Division)
	}
	if c.RediscretizeEvery < 0 {
		return fmt.Errorf("remote: RediscretizeEvery must be ≥ 0, got %d", c.RediscretizeEvery)
	}
	if c.RediscretizeEvery > 0 {
		if !relayout.Migratable(c.Space) {
			// Fail at construction, not at the first periodic rebuild inside
			// Finalize — by then the round has already committed.
			return fmt.Errorf("remote: RediscretizeEvery needs a discretizer exposing cell geometry (grid, quadtree or geofence), got %T", c.Space)
		}
	}
	if c.RelayoutThreshold < 0 || c.RelayoutThreshold >= 1 {
		return fmt.Errorf("remote: RelayoutThreshold %v outside [0, 1)", c.RelayoutThreshold)
	}
	if c.RelayoutLeaves < 0 {
		return fmt.Errorf("remote: RelayoutLeaves must be ≥ 0, got %d", c.RelayoutLeaves)
	}
	if c.MonitorWindow < 0 {
		return fmt.Errorf("remote: MonitorWindow must be ≥ 0, got %d", c.MonitorWindow)
	}
	if c.MonitorWindow == 0 {
		c.MonitorWindow = c.W
	}
	if err := c.TriggerPolicy.Validate(); err != nil {
		return err
	}
	return nil
}

// phase tracks the per-timestamp protocol state machine.
type phase int

const (
	phaseIdle    phase = iota // accepting presence for the next timestamp
	phasePlanned              // assignments fixed, accepting reports
)

// Assignment is the curator's answer to a sampled (or skipped) client.
type Assignment struct {
	Report  bool    `json:"report"`
	Epsilon float64 `json:"epsilon"`
}

// Curator is the server-side protocol engine. All methods are safe for
// concurrent use (one mutex; handler work is short).
type Curator struct {
	cfg    CuratorConfig
	bootFP CuratorFingerprint
	dom    *transition.Domain

	mu             sync.Mutex
	space          spatial.Discretizer // layout currently in effect
	generation     int                 // layout migrations applied so far
	ctl            *relayout.Controller
	t              int
	phase          phase
	present        map[int]bool // users who announced presence for t
	prevPresent    map[int]bool // presence at t−1, for quit inference
	assignments    map[int]Assignment
	epsRound       float64
	agg            *ldp.Aggregator
	oracle         *ldp.OUE
	model          *mobility.Model
	users          *UserRoster
	dev            *allocation.DevTracker
	sig            *allocation.SigTracker
	budgetWin      *allocation.BudgetWindow
	ledger         *allocation.Ledger
	rng            *ldp.Source
	rounds         int
	reports        int
	presenceEvents int64

	// The estimation / model-update / synthesis stages are shared with the
	// in-process engine (internal/pipeline); only collection differs — here
	// the reports arrive over the network.
	estimator  *pipeline.DebiasEstimator
	updater    *pipeline.DMUUpdater
	synthStage *pipeline.SynthesisStage
	timings    pipeline.Timings

	// Observability (always on, run-scoped — never checkpointed). reg is the
	// registry NewHandler serves at GET /metrics; lastTimings is the Timings
	// snapshot at the previous Finalize, so each round's stage-latency delta
	// (including report folds charged during ingestion) lands in histograms.
	reg          *obs.Registry
	metrics      curatorMetrics
	mon          *monitor.Monitor // utility sentinel; run-scoped like reg
	cellMassBuf  []float64        // CellMasses scratch, resized on relayout
	logger       *slog.Logger
	tracer       *slog.Logger
	lastTimings  pipeline.Timings
	roundPool    int // eligible users at the last Plan
	roundSampled int // assignments issued at the last Plan
	roundReports int // reports ingested since the last Plan
}

// UserRoster is the curator's view of user states; it reuses the engine's
// tracker semantics via composition.
type UserRoster struct {
	w        int
	status   map[int]uint8 // 0 active, 1 inactive, 2 quitted
	reported [][]int
}

func newRoster(w int) *UserRoster {
	return &UserRoster{w: w, status: make(map[int]uint8), reported: make([][]int, w)}
}

func (r *UserRoster) begin(t int) {
	slot := t % r.w
	for _, id := range r.reported[slot] {
		if r.status[id] == 1 {
			r.status[id] = 0
		}
	}
	r.reported[slot] = r.reported[slot][:0]
}

func (r *UserRoster) register(id int) {
	if _, ok := r.status[id]; !ok {
		r.status[id] = 0
	}
}

func (r *UserRoster) active(id int) bool { return r.status[id] == 0 }

func (r *UserRoster) markReported(id, t int) {
	r.status[id] = 1
	r.reported[t%r.w] = append(r.reported[t%r.w], id)
}

func (r *UserRoster) markQuitted(id int) { r.status[id] = 2 }

// NewCurator constructs the server-side engine.
func NewCurator(cfg CuratorConfig) (*Curator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dom := transition.NewDomain(cfg.Space)
	rng := ldp.NewSource(cfg.Seed, cfg.Seed^0x6a09e667f3bcc908)
	synth, err := synthesis.New(cfg.Space, synthesis.Options{Lambda: cfg.Lambda}, rng)
	if err != nil {
		return nil, err
	}
	model := mobility.NewModel(dom)
	c := &Curator{
		cfg:         cfg,
		dom:         dom,
		space:       cfg.Space,
		present:     make(map[int]bool),
		prevPresent: make(map[int]bool),
		model:       model,
		users:       newRoster(cfg.W),
		dev:         allocation.NewDevTracker(cfg.Kappa),
		sig:         allocation.NewSigTracker(cfg.Kappa),
		rng:         rng,
		t:           -1,
		estimator:   &pipeline.DebiasEstimator{},
		updater:     &pipeline.DMUUpdater{Model: model},
		synthStage:  &pipeline.SynthesisStage{Model: model, Synth: synth},
	}
	if cfg.Division == allocation.Budget {
		c.budgetWin = allocation.NewBudgetWindow(cfg.W)
	}
	c.reg = obs.NewRegistry()
	c.metrics = newCuratorMetrics(c.reg, cfg.W)
	c.metrics.domainSize.Set(float64(dom.Size()))
	c.logger = discardLogger()
	c.dev.Push(make([]float64, dom.Size()))
	c.bootFP = c.configFingerprint()
	// The density tracker always runs (the manual /v1/relayout endpoint
	// works without the periodic cadence); rebuilds consume only released
	// data, so tracking is privacy-free.
	leaves := cfg.RelayoutLeaves
	if leaves == 0 {
		leaves = cfg.Space.NumCells()
	}
	ctl, err := relayout.NewController(relayout.ControllerOptions{
		Every:     cfg.RediscretizeEvery,
		W:         cfg.W,
		Threshold: cfg.RelayoutThreshold,
		Quadtree:  spatial.QuadtreeOptions{MaxLeaves: leaves},
		Bounds:    cfg.Space.Bounds(),
		Trigger:   cfg.TriggerPolicy,
	})
	if err != nil {
		return nil, err
	}
	ctl.SetMetrics(c.reg)
	c.ctl = ctl
	// The utility monitor is always on, like the registry: it only reads
	// public data (the released stream and the DP estimates), so it costs
	// no budget and cannot perturb the protocol.
	mon, err := monitor.New(monitor.Options{Window: cfg.MonitorWindow})
	if err != nil {
		return nil, err
	}
	mon.SetMetrics(c.reg)
	ctl.SetAlarmSource(mon)
	c.mon = mon
	return c, nil
}

// EnableLedger records rounds for post-hoc privacy verification.
func (c *Curator) EnableLedger(T int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ledger = allocation.NewLedger(T)
}

// Ledger returns the recorded ledger (nil unless enabled).
func (c *Curator) Ledger() *allocation.Ledger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger
}

// Presence registers that user id is present at timestamp t (has a
// transition state to contribute). Presence for a past timestamp is
// rejected.
func (c *Curator) Presence(user, t int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t <= c.t {
		return fmt.Errorf("remote: presence for closed timestamp %d (current %d)", t, c.t)
	}
	if !c.present[user] {
		c.present[user] = true
		c.presenceEvents++
		c.metrics.presenceEvents.Inc()
		c.metrics.presentUsers.Set(float64(len(c.present)))
	}
	return nil
}

// PresenceBatch registers a whole gateway shard's presence in one call.
// Registration is a set operation, so the batch needs no all-or-nothing
// staging and the call (like Presence) is safely retryable — re-announcing
// a user is a no-op and is not double-counted.
func (c *Curator) PresenceBatch(users []int, t int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t <= c.t {
		return fmt.Errorf("remote: presence for closed timestamp %d (current %d)", t, c.t)
	}
	for _, user := range users {
		if !c.present[user] {
			c.present[user] = true
			c.presenceEvents++
			c.metrics.presenceEvents.Inc()
		}
	}
	c.metrics.presentUsers.Set(float64(len(c.present)))
	return nil
}

// PresenceEvents counts the accepted presence registrations since boot —
// the curator-side half of a replay harness's loss accounting.
func (c *Curator) PresenceEvents() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.presenceEvents
}

// Plan closes presence collection for timestamp t, recycles the window,
// decides the round and fixes the per-user assignments.
func (c *Curator) Plan(t int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != phaseIdle {
		return c.roundError("plan", t, fmt.Errorf("remote: Plan(%d) while a round is open", t))
	}
	if t <= c.t {
		return c.roundError("plan", t, fmt.Errorf("remote: Plan(%d) after timestamp %d", t, c.t))
	}
	c.t = t
	c.users.begin(t)
	for id := range c.present {
		c.users.register(id)
	}

	ctx := allocation.Context{
		T: t, W: c.cfg.W, Epsilon: c.cfg.Epsilon,
		Dev: c.dev.Dev(), SigRatioMean: c.sig.Mean(),
	}
	if c.budgetWin != nil {
		ctx.WindowUsed = c.budgetWin.Used()
	}
	decision := c.cfg.Strategy.Decide(ctx)
	pool := make([]int, 0, len(c.present))
	for id := range c.present {
		if c.users.active(id) {
			pool = append(pool, id)
		}
	}
	if !c.updater.Bootstrapped() && len(pool) > 0 && !decision.Report {
		if c.cfg.Division == allocation.Budget {
			decision = allocation.Decision{Report: true, Epsilon: c.cfg.Epsilon / float64(c.cfg.W)}
		} else {
			decision = allocation.Decision{Report: true, Portion: 1 / float64(c.cfg.W)}
		}
	}

	c.assignments = make(map[int]Assignment, len(pool))
	c.epsRound = 0
	if decision.Report && len(pool) > 0 {
		sampled := pool
		c.epsRound = decision.Epsilon
		if c.cfg.Division == allocation.Population {
			c.epsRound = c.cfg.Epsilon
			n := int(decision.Portion*float64(len(pool)) + 0.5)
			if n < 1 {
				n = 1
			}
			if n > len(pool) {
				n = len(pool)
			}
			// Deterministic partial Fisher-Yates over a sorted pool.
			sortInts(pool)
			for i := 0; i < n; i++ {
				j := i + c.rng.IntN(len(pool)-i)
				pool[i], pool[j] = pool[j], pool[i]
			}
			sampled = pool[:n]
		}
		for _, id := range sampled {
			c.assignments[id] = Assignment{Report: true, Epsilon: c.epsRound}
		}
		c.oracle = ldp.MustOUE(c.dom.Size(), c.epsRound)
		c.agg = ldp.NewAggregator(c.oracle)
	} else {
		c.oracle, c.agg = nil, nil
	}
	c.phase = phasePlanned
	c.roundPool = len(pool)
	c.roundSampled = len(c.assignments)
	c.roundReports = 0
	c.metrics.openRound.Set(1)
	c.metrics.poolSize.Set(float64(c.roundPool))
	c.metrics.sampledUsers.Set(float64(c.roundSampled))
	c.metrics.pendingAsgn.Set(float64(len(c.assignments)))
	return nil
}

// AssignmentFor answers a client's poll after Plan.
func (c *Curator) AssignmentFor(user, t int) (Assignment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != phasePlanned || t != c.t {
		return Assignment{}, fmt.Errorf("remote: no open round for timestamp %d", t)
	}
	return c.assignments[user], nil
}

// AssignmentsFor answers a gateway's batched poll after Plan: one entry per
// requested user, index-aligned. Read-only, so safely retryable.
func (c *Curator) AssignmentsFor(users []int, t int) ([]Assignment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != phasePlanned || t != c.t {
		return nil, fmt.Errorf("remote: no open round for timestamp %d", t)
	}
	out := make([]Assignment, len(users))
	for i, u := range users {
		out[i] = c.assignments[u]
	}
	return out, nil
}

// Report ingests a sampled client's perturbed OUE bits (indices of ones).
func (c *Curator) Report(user, t int, ones []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reportLocked(user, t, ones)
}

func (c *Curator) reportLocked(user, t int, ones []int) error {
	if c.phase != phasePlanned || t != c.t {
		return fmt.Errorf("remote: report outside an open round")
	}
	a, ok := c.assignments[user]
	if !ok || !a.Report {
		return fmt.Errorf("remote: user %d was not sampled at timestamp %d", user, t)
	}
	if err := c.validateOnesLocked(ones); err != nil {
		return err
	}
	c.agg.Add(ones)
	c.metrics.reportsSparse.Inc()
	c.applyReportMetaLocked(user, t, a.Epsilon)
	return nil
}

// validateOnesLocked is the curator-boundary index check: every reported
// 1-bit must land inside the current domain. Without it a hostile (or
// stale-domain) client's report would panic ldp.Aggregator.Add inside the
// service; with it the report is rejected with a clean error and the round
// stays intact.
func (c *Curator) validateOnesLocked(ones []int) error {
	d := c.dom.Size()
	for _, i := range ones {
		if i < 0 || i >= d {
			return fmt.Errorf("remote: report bit %d outside domain [0, %d)", i, d)
		}
	}
	return nil
}

// applyReportMetaLocked records the bookkeeping of one ingested report —
// everything except the aggregation fold itself.
func (c *Curator) applyReportMetaLocked(user, t int, eps float64) {
	delete(c.assignments, user) // one report per assignment
	c.users.markReported(user, t)
	c.reports++
	c.roundReports++
	c.metrics.reports.Inc()
	c.metrics.pendingAsgn.Set(float64(len(c.assignments)))
	if c.ledger != nil {
		c.ledger.RecordRound(t, eps, []int{user})
	}
}

// BatchReport is one user's entry in a batched report upload.
type BatchReport struct {
	User int   `json:"user"`
	Ones []int `json:"ones"`
}

// ReportBatch ingests many users' reports in one call — the path for
// gateway aggregators that fan heavy traffic into the curator. The batch is
// validated before any report is applied (open round, every user sampled
// and unique within the batch, every bit in the domain), so a rejected
// batch leaves the round untouched; the upload is all-or-nothing.
func (c *Curator) ReportBatch(t int, batch []BatchReport) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != phasePlanned || t != c.t {
		return fmt.Errorf("remote: batch outside an open round")
	}
	seen := make(map[int]struct{}, len(batch))
	eps := make([]float64, len(batch))
	for i, r := range batch {
		if _, dup := seen[r.User]; dup {
			return fmt.Errorf("remote: batch entry %d: duplicate report for user %d", i, r.User)
		}
		seen[r.User] = struct{}{}
		a, ok := c.assignments[r.User]
		if !ok || !a.Report {
			return fmt.Errorf("remote: batch entry %d: user %d was not sampled at timestamp %d", i, r.User, t)
		}
		if err := c.validateOnesLocked(r.Ones); err != nil {
			return fmt.Errorf("remote: batch entry %d: %w", i, err)
		}
		eps[i] = a.Epsilon
	}
	start := time.Now()
	for _, r := range batch {
		c.agg.Add(r.Ones)
	}
	c.timings.ModelConstruction += time.Since(start)
	c.metrics.reportsSparse.Add(int64(len(batch)))
	for i, r := range batch {
		c.applyReportMetaLocked(r.User, t, eps[i])
	}
	return nil
}

// PackedBatchReport is one user's entry in a bit-packed batched upload:
// Bits is the little-endian ⌈d/8⌉-byte dense report (base64 in JSON). At
// realistic budgets a packed entry is ~6× smaller on the wire than the
// sparse index list, and the curator folds the whole batch with the
// word-parallel popcount network instead of one index at a time.
type PackedBatchReport struct {
	User int    `json:"user"`
	Bits []byte `json:"bits"`
}

// PackReportBatch converts a sparse batch into the packed wire form for a
// domain of size d — the gateway-side helper. It rejects out-of-domain
// indices (the same validation the curator applies on receipt).
func PackReportBatch(batch []BatchReport, d int) ([]PackedBatchReport, error) {
	out := make([]PackedBatchReport, len(batch))
	for i, r := range batch {
		p, err := ldp.PackReport(r.Ones, d)
		if err != nil {
			return nil, fmt.Errorf("remote: batch entry %d (user %d): %w", i, r.User, err)
		}
		out[i] = PackedBatchReport{User: r.User, Bits: p.Bytes(d)}
	}
	return out, nil
}

// ReportPackedBatch ingests a bit-packed batched upload. Validation is
// all-or-nothing like ReportBatch — open round, unique sampled users, and
// every payload exactly ⌈d/8⌉ bytes with no bits set beyond the domain, so
// a malformed entry yields a clean error instead of corrupting or panicking
// the fold. Each wire payload decodes straight into its fold-buffer row
// (ldp.UnpackReportBytesInto on a PackedBatch.Grow row) — no intermediate
// PackedReport is materialized or copied — and counts are bit-identical to
// the sparse path. The decode runs *outside* the round lock: only the
// commit — sampling validation plus the word-parallel fold — holds it, so
// a slow or hostile payload can't stall concurrent presence and assignment
// traffic. A relayout racing the decode is caught by the commit's domain
// re-check and rejected cleanly.
func (c *Curator) ReportPackedBatch(t int, batch []PackedBatchReport) error {
	d := c.DomainSize()
	packed := ldp.NewPackedBatch(d, len(batch))
	users := make([]int, len(batch))
	for i, r := range batch {
		users[i] = r.User
		if err := ldp.UnpackReportBytesInto(r.Bits, d, packed.Grow()); err != nil {
			return fmt.Errorf("remote: batch entry %d (user %d): %w", i, r.User, err)
		}
	}
	return c.commitPackedBatch(t, d, users, packed)
}

// reportPackedWire is the binary-frame ingest path: bits rows alias the
// request body and decode straight into the fold buffer outside the round
// lock. The frame self-declares the domain it was encoded for, so a stale
// client mid-relayout is rejected before any row is touched.
func (c *Curator) reportPackedWire(t, d int, users []int, bits [][]byte) error {
	if cd := c.DomainSize(); d != cd {
		return fmt.Errorf("remote: packed frame encoded for domain %d, curator domain is %d", d, cd)
	}
	packed := ldp.NewPackedBatch(d, len(users))
	for i, u := range users {
		if err := ldp.UnpackReportBytesInto(bits[i], d, packed.Grow()); err != nil {
			return fmt.Errorf("remote: batch entry %d (user %d): %w", i, u, err)
		}
	}
	return c.commitPackedBatch(t, d, users, packed)
}

// commitPackedBatch applies a pre-decoded packed batch under the round
// lock: open-round and domain re-checks, all-or-nothing sampling
// validation, then the word-parallel popcount fold (charged to the
// model-construction stage, the same bucket the in-process pipeline
// charges aggregation to) and per-user bookkeeping.
func (c *Curator) commitPackedBatch(t, d int, users []int, packed *ldp.PackedBatch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != phasePlanned || t != c.t {
		return fmt.Errorf("remote: batch outside an open round")
	}
	if cd := c.dom.Size(); d != cd {
		// A relayout landed between decode and commit; the rows were packed
		// for the old bit layout and must not fold into the new one.
		return fmt.Errorf("remote: packed batch encoded for domain %d, curator domain is %d", d, cd)
	}
	seen := make(map[int]struct{}, len(users))
	eps := make([]float64, len(users))
	for i, u := range users {
		if _, dup := seen[u]; dup {
			return fmt.Errorf("remote: batch entry %d: duplicate report for user %d", i, u)
		}
		seen[u] = struct{}{}
		a, ok := c.assignments[u]
		if !ok || !a.Report {
			return fmt.Errorf("remote: batch entry %d: user %d was not sampled at timestamp %d", i, u, t)
		}
		eps[i] = a.Epsilon
	}
	start := time.Now()
	c.agg.AddPackedBatch(packed, ldp.DefaultWorkers())
	c.timings.ModelConstruction += time.Since(start)
	c.metrics.reportsPacked.Add(int64(len(users)))
	for i, u := range users {
		c.applyReportMetaLocked(u, t, eps[i])
	}
	return nil
}

// Finalize closes timestamp t: aggregates whatever reports arrived, applies
// the DMU update, infers quits from absence, and advances the synthesizer
// toward activeCount (the public population size).
func (c *Curator) Finalize(t, activeCount int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != phasePlanned || t != c.t {
		return c.roundError("finalize", t, fmt.Errorf("remote: Finalize(%d) without a matching Plan", t))
	}

	ctx := &pipeline.StepContext{
		T:           t,
		ActiveCount: activeCount,
		Epsilon:     c.epsRound,
		Timings:     &c.timings,
	}
	reported := c.agg != nil && c.agg.N() > 0
	if reported {
		ctx.Aggregate = c.agg
		ctx.ErrUpd = c.oracle.Variance(c.agg.N())
		c.estimator.Estimate(ctx)
		c.updater.Update(ctx)
		c.dev.Push(ctx.Estimates)
		c.rounds++
		c.metrics.rounds.Inc()
		c.metrics.reportCount.ObserveValue(int64(c.roundReports))
		c.metrics.sigRatio.Set(ctx.SigRatio)
		c.metrics.significant.Set(float64(ctx.Result.NumSignificant))
	}
	c.sig.Push(ctx.SigRatio)
	spent := 0.0
	if reported {
		spent = c.epsRound
	}
	if c.budgetWin != nil {
		c.budgetWin.Record(spent)
	}
	c.metrics.meter.Observe(spent, c.roundReports, c.roundPool)

	// Quit inference: users present at t−1 but silent at t have stopped
	// sharing.
	for id := range c.prevPresent {
		if !c.present[id] {
			c.users.markQuitted(id)
		}
	}
	c.prevPresent, c.present = c.present, make(map[int]bool)

	c.synthStage.Step(ctx)
	c.phase = phaseIdle
	c.assignments = nil
	c.metrics.openRound.Set(0)
	c.metrics.pendingAsgn.Set(0)

	// Online re-discretization and utility monitoring both consume this
	// round's released positions — sketch them once. The monitor closes
	// its round before any relayout decision so the degradation trigger
	// sees alarms that include timestamp t. Divergence compares this
	// round's estimates against the sketch *before* folding in this
	// round's release: the synthesizer adapts to the estimates within the
	// round, so including it would dilute a regime change with the
	// already-adapted stream and the sentinel would miss exactly the
	// shifts it exists to catch.
	pts := c.releasedPositionsLocked()
	c.ctl.Observe(t, pts)
	var cellEst []float64
	if reported {
		c.cellMassBuf = monitor.CellMasses(c.dom, ctx.Estimates, c.cellMassBuf)
		cellEst = c.cellMassBuf
	}
	monRep := c.mon.Round(t, c.space, cellEst, ctx.SigRatio,
		c.metrics.roundErrors.Value()+c.metrics.relayoutErrors.Value())
	c.mon.ObserveRelease(t, pts)
	relayoutSwitched, triggerFired := false, false
	if c.ctl.Due(t) {
		status, err := c.relayoutLocked(false)
		if err != nil {
			return c.relayoutError(t, fmt.Errorf("remote: periodic relayout at timestamp %d: %w", t, err))
		}
		relayoutSwitched = status.Switched
		triggerFired = status.TriggerFired
	}

	// Per-round stage-latency deltas: timings accumulate cumulatively (the
	// report folds were already charged during ingestion), so the increment
	// since the previous Finalize is this round's cost.
	delta := pipeline.Sub(c.timings, c.lastTimings)
	c.lastTimings = c.timings
	c.metrics.stageModel.Observe(delta.ModelConstruction)
	c.metrics.stageDMU.Observe(delta.DMU)
	c.metrics.stageSynth.Observe(delta.Synthesis)
	c.traceRound(t, reported, c.roundReports, spent, ctx.SigRatio, ctx.Result.NumSignificant, delta, relayoutSwitched, monRep, triggerFired)
	return nil
}

// Health snapshots the utility monitor plus run identity for GET /v1/health.
func (c *Curator) Health() HealthReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return HealthReport{
		Health:     c.mon.Health(),
		T:          c.t,
		Rounds:     c.rounds,
		Generation: c.generation,
		Window:     c.mon.Window(),
		Trigger:    string(c.ctl.Trigger()),
	}
}

// HealthReport is the GET /v1/health payload: the monitor's verdict plus
// enough run identity to correlate it with traces and stats.
type HealthReport struct {
	monitor.Health
	// T is the last closed timestamp (-1 before the first round).
	T int `json:"t"`
	// Rounds counts reported rounds since boot.
	Rounds int `json:"rounds"`
	// Generation counts layout migrations applied since boot.
	Generation int `json:"generation"`
	// Window is the monitor's release-sketch length in timestamps.
	Window int `json:"monitor_window"`
	// Trigger is the relayout trigger policy in effect.
	Trigger string `json:"trigger"`
}

// releasedPositionsLocked returns the current positions of the released
// synthetic streams as continuous points, spread over their cell geometry —
// boxes for boxed backends, polygons for geofenced ones — by a deterministic
// low-discrepancy sequence (see relayout.SpreadInBox / SpreadInPieces).
func (c *Curator) releasedPositionsLocked() []spatial.Point {
	cells := c.synthStage.Synth.ActiveCells(nil)
	pts := make([]spatial.Point, len(cells))
	boxed, _ := c.space.(spatial.Boxed)
	poly, _ := c.space.(spatial.Overlapper)
	for i, cell := range cells {
		switch {
		case boxed != nil:
			pts[i] = relayout.SpreadInBox(boxed.CellBox(cell), i)
		case poly != nil:
			pts[i] = relayout.SpreadInPieces(poly.CellPieces(cell), i)
		default:
			x, y := c.space.Center(cell)
			pts[i] = spatial.Point{X: x, Y: y}
		}
	}
	return pts
}

// RelayoutStatus reports the outcome of a relayout request and the current
// layout identity.
type RelayoutStatus struct {
	// Switched is true when the curator migrated onto a rebuilt layout.
	Switched bool `json:"switched"`
	// Distance is the layout distance of the most recent proposal (0 when
	// the sketch was empty or the rebuild reproduced the current layout).
	Distance float64 `json:"distance"`
	// Generation counts the migrations applied since boot.
	Generation int `json:"generation"`
	// Cells and DomainSize describe the layout now in effect.
	Cells       int    `json:"cells"`
	DomainSize  int    `json:"domain_size"`
	Fingerprint string `json:"fingerprint"`
	// TriggerFired is the trigger policy's verdict at the most recent
	// proposal (false when no proposal was evaluated — empty sketch or
	// unchanged fingerprint). It can differ from Switched only under force.
	TriggerFired bool `json:"trigger_fired"`
	// Alarmed reports whether the utility monitor was alarming when the
	// proposal was decided (always false under the geometric policy).
	Alarmed bool `json:"alarmed"`
}

func (c *Curator) statusLocked(switched bool, distance float64) RelayoutStatus {
	return RelayoutStatus{
		Switched:    switched,
		Distance:    distance,
		Generation:  c.generation,
		Cells:       c.space.NumCells(),
		DomainSize:  c.dom.Size(),
		Fingerprint: c.space.Fingerprint(),
	}
}

// Relayout rebuilds the spatial layout from the released-stream density
// sketch and migrates the curator onto it. With force the layout switches
// whenever the rebuilt tree differs from the current layout at all;
// otherwise the configured distance threshold applies. Relayout is rejected
// while a collection round is open (between Plan and Finalize) — the open
// round's assignments and partial aggregate are indexed by the current
// domain.
func (c *Curator) Relayout(force bool) (RelayoutStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != phaseIdle {
		return c.statusLocked(false, 0), c.relayoutError(c.t, fmt.Errorf("remote: relayout while a round is open — finalize timestamp %d first", c.t))
	}
	st, err := c.relayoutLocked(force)
	return st, c.relayoutError(c.t, err)
}

// relayoutLocked proposes a rebuild and applies the migration when the
// controller (or force) says to switch. Mirrors core.Engine.Relayout for the
// curator's wiring.
func (c *Curator) relayoutLocked(force bool) (RelayoutStatus, error) {
	prop, err := c.ctl.Propose(c.space)
	if err != nil {
		return c.statusLocked(false, 0), err
	}
	decided := func(switched bool) RelayoutStatus {
		st := c.statusLocked(switched, prop.Distance)
		st.TriggerFired = prop.Switch
		st.Alarmed = prop.Alarmed
		return st
	}
	if prop.Target == nil || prop.Target.Fingerprint() == c.space.Fingerprint() {
		return decided(false), nil
	}
	if !prop.Switch && !force {
		return decided(false), nil
	}
	migStart := time.Now()
	mig, err := relayout.NewMigration(c.space, prop.Target)
	if err != nil {
		return decided(false), err
	}
	newDom := transition.NewDomain(prop.Target)
	newFreq, err := mig.RemapFreqs(c.dom, newDom, c.model.Freqs())
	if err != nil {
		return decided(false), err
	}
	devSt, err := mig.RemapDevState(c.dom, newDom, c.dev.State())
	if err != nil {
		return decided(false), err
	}
	newModel := mobility.NewModel(newDom)
	if err := newModel.Restore(mobility.State{Freq: newFreq, Init: c.model.Initialized()}); err != nil {
		return decided(false), err
	}
	c.dev.Restore(devSt)
	c.synthStage.Synth.Relayout(prop.Target, mig.MapCell)
	bootstrapped := c.updater.Bootstrapped()
	c.updater = &pipeline.DMUUpdater{Model: newModel}
	c.updater.SetBootstrapped(bootstrapped)
	c.synthStage = &pipeline.SynthesisStage{Model: newModel, Synth: c.synthStage.Synth}
	c.model = newModel
	c.dom = newDom
	c.space = prop.Target
	// The last closed round's aggregator is indexed by the old domain; drop
	// it so a post-migration snapshot doesn't embed (and a restore doesn't
	// rebuild) a stale-length aggregate.
	c.oracle, c.agg = nil, nil
	c.generation++
	c.ctl.NoteSwitch(prop.Distance)
	// The stationary level of the layout-dependent monitor signals moves
	// with the discretization: re-learn their baselines on the new layout.
	c.mon.NoteRelayout()
	c.metrics.generation.Set(float64(c.generation))
	c.metrics.domainSize.Set(float64(newDom.Size()))
	c.metrics.observeMigration(time.Since(migStart))
	return decided(true), nil
}

// LayoutStatus returns the current layout identity without proposing a
// rebuild (served on /v1/stats).
func (c *Curator) LayoutStatus() RelayoutStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(false, c.ctl.LastDistance())
}

// Synthetic returns the current private release.
func (c *Curator) Synthetic(name string) *trajectory.Dataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.synthStage.Synth.Dataset(name, c.t+1)
}

// Stats summarizes the curator's activity.
func (c *Curator) Stats() (rounds, reports int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds, c.reports
}

// Timings returns the accumulated per-component wall time of the pipeline
// stages (the Table V decomposition, minus the client-side perturbation the
// curator never sees).
func (c *Curator) Timings() pipeline.Timings {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timings
}

// Domain exposes the transition domain clients need for encoding. It
// changes on relayout: clients must re-fetch it after a migration (the
// assignment/report cycle rejects stale-domain bits anyway).
func (c *Curator) Domain() *transition.Domain {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dom
}

// DomainSize returns the size of the current transition domain — the d a
// packed report must be encoded against. It takes the lock only briefly,
// so wire decoders can snapshot d without stalling an open round.
func (c *Curator) DomainSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dom.Size()
}

func sortInts(s []int) {
	// Insertion sort suffices for the modest pools the sampler sees; keeps
	// determinism without importing sort for a hot path.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
