package remote

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"retrasyn/internal/ldp"
)

// jsonOnlyServer wraps a curator handler to simulate a pre-binary curator:
// it strips the wire advert from every response and rejects any binary
// request outright — the environment an upgraded client meets during a
// rolling deploy.
func jsonOnlyServer(t *testing.T, inner http.Handler) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isBinary(r) {
			t.Errorf("binary request %s %s reached a JSON-only server", r.Method, r.URL.Path)
			http.Error(w, "unsupported media type", http.StatusUnsupportedMediaType)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		for k, vs := range rec.Header() {
			if k == wireAdvertHeader {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
}

// driveGatewayRounds replays T identical rounds through a gateway with a
// caller-owned RNG and report-encoding choice, returning the curator's
// report count.
func driveGatewayRounds(t *testing.T, cur *Curator, gw *Gateway, rng ldp.Rand, T int) int {
	t.Helper()
	d := cur.DomainSize()
	users := make([]int, 30)
	for i := range users {
		users[i] = i
	}
	for ts := 0; ts < T; ts++ {
		if err := gw.AnnouncePresence(users, ts); err != nil {
			t.Fatalf("t=%d presence: %v", ts, err)
		}
		if err := cur.Plan(ts); err != nil {
			t.Fatalf("t=%d plan: %v", ts, err)
		}
		as, err := gw.Assignments(users, ts)
		if err != nil {
			t.Fatalf("t=%d assignments: %v", ts, err)
		}
		var batch []BatchReport
		for i, a := range as {
			if !a.Report {
				continue
			}
			oracle := ldp.MustOUE(d, a.Epsilon)
			batch = append(batch, BatchReport{User: users[i], Ones: oracle.Perturb(rng, users[i]%d)})
		}
		// Alternate the report member so single rounds exercise the sparse
		// and packed forms on whatever wire the gateway negotiated.
		if ts%2 == 0 && len(batch) > 0 {
			packed, err := PackReportBatch(batch, d)
			if err != nil {
				t.Fatalf("t=%d pack: %v", ts, err)
			}
			if err := gw.ReportPacked(ts, d, packed); err != nil {
				t.Fatalf("t=%d packed report: %v", ts, err)
			}
		} else if err := gw.ReportBatch(ts, batch); err != nil {
			t.Fatalf("t=%d sparse report: %v", ts, err)
		}
		if err := cur.Finalize(ts, len(users)); err != nil {
			t.Fatalf("t=%d finalize: %v", ts, err)
		}
	}
	_, reports := cur.Stats()
	return reports
}

// TestJSONClientAgainstBinaryCurator: a pinned-JSON gateway (standing in
// for a pre-binary deployment) completes full rounds against the upgraded
// curator without a single failed request.
func TestJSONClientAgainstBinaryCurator(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()
	gw := NewGateway(srv.URL, nil)
	gw.SetWire(WireJSON)
	gw.SetRetryPolicy(fastPolicy())
	if n := driveGatewayRounds(t, cur, gw, ldp.NewRand(4, 2), 6); n == 0 {
		t.Fatal("no reports landed")
	}
}

// TestBinaryClientAgainstJSONServer: a binary-capable WireAuto gateway
// against a JSON-only curator never sends a binary request (there is no
// advert to upgrade on) and completes every round — fallback without a
// single failed request.
func TestBinaryClientAgainstJSONServer(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	srv := jsonOnlyServer(t, NewHandler(cur))
	defer srv.Close()
	gw := NewGateway(srv.URL, nil) // WireAuto default
	gw.SetRetryPolicy(fastPolicy())
	if n := driveGatewayRounds(t, cur, gw, ldp.NewRand(4, 2), 6); n == 0 {
		t.Fatal("no reports landed")
	}
}

// TestWireAutoUpgradesAfterAdvert: against a binary-capable curator a
// WireAuto transport's first framed request is JSON (nothing advertised
// yet) and every later one is binary — negotiation costs zero probe
// requests and zero failures.
func TestWireAutoUpgradesAfterAdvert(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var presenceCTs []string
	inner := NewHandler(cur)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/presence" {
			mu.Lock()
			presenceCTs = append(presenceCTs, r.Header.Get("Content-Type"))
			mu.Unlock()
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	gw := NewGateway(srv.URL, nil) // WireAuto
	gw.SetRetryPolicy(fastPolicy())
	users := []int{1, 2, 3}
	for ts := 0; ts < 3; ts++ {
		if err := gw.AnnouncePresence(users, ts); err != nil {
			t.Fatalf("t=%d: %v", ts, err)
		}
		if err := cur.Plan(ts); err != nil {
			t.Fatal(err)
		}
		if err := cur.Finalize(ts, len(users)); err != nil {
			t.Fatal(err)
		}
	}
	if len(presenceCTs) != 3 {
		t.Fatalf("saw %d presence requests, want 3", len(presenceCTs))
	}
	if presenceCTs[0] != "application/json" {
		t.Fatalf("first request Content-Type = %q, want JSON before any advert", presenceCTs[0])
	}
	for i, ct := range presenceCTs[1:] {
		if ct != WireContentType {
			t.Fatalf("request %d Content-Type = %q, want %q after the advert", i+1, ct, WireContentType)
		}
	}
}

// TestGatewayWireBitIdentity: the same rounds with the same perturbation
// stream through a JSON-pinned and a binary-pinned gateway land
// bit-identically — same report counts, same synthetic release. The wire
// encoding is pure transport.
func TestGatewayWireBitIdentity(t *testing.T) {
	g := testGrid()
	curJSON, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	curBin, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	srvJSON := httptest.NewServer(NewHandler(curJSON))
	defer srvJSON.Close()
	srvBin := httptest.NewServer(NewHandler(curBin))
	defer srvBin.Close()

	gwJSON := NewGateway(srvJSON.URL, nil)
	gwJSON.SetWire(WireJSON)
	gwJSON.SetRetryPolicy(fastPolicy())
	gwBin := NewGateway(srvBin.URL, nil)
	gwBin.SetWire(WireBinary)
	gwBin.SetRetryPolicy(fastPolicy())

	const T = 8
	nJSON := driveGatewayRounds(t, curJSON, gwJSON, ldp.NewRand(99, 7), T)
	nBin := driveGatewayRounds(t, curBin, gwBin, ldp.NewRand(99, 7), T)
	if nJSON == 0 || nJSON != nBin {
		t.Fatalf("report counts diverged: json %d, binary %d", nJSON, nBin)
	}
	if !reflect.DeepEqual(curJSON.Synthetic("x"), curBin.Synthetic("x")) {
		t.Fatal("binary wire released a different synthetic database than JSON")
	}
}

// TestClientWireBitIdentity runs the full device-client protocol —

// presence, per-user assignment polls, density-chosen single reports —
// over both wires with identical seeds and requires identical releases.
// This also exercises the client's packed single-report upload (ε=1 on the
// test grid prefers the packed form) on both encodings.
func TestClientWireBitIdentity(t *testing.T) {
	g := testGrid()
	run := func(mode WireMode) ([]byte, int) {
		cur, err := NewCurator(testConfig(g))
		if err != nil {
			t.Fatal(err)
		}
		const T = 12
		srv := httptest.NewServer(NewHandler(cur))
		defer srv.Close()
		clients, _ := buildClients(t, g, cur, srv.URL, 60, T)
		co := NewCoordinator(srv.URL, nil)
		for _, c := range clients {
			c.SetWire(mode)
		}
		for ts := 0; ts < T; ts++ {
			active := 0
			for _, c := range clients {
				if err := c.AnnouncePresence(ts); err != nil {
					t.Fatalf("t=%d presence: %v", ts, err)
				}
				if c.LocatedAt(ts) {
					active++
				}
			}
			if err := co.Plan(ts); err != nil {
				t.Fatal(err)
			}
			for _, c := range clients {
				if _, err := c.MaybeReport(ts); err != nil {
					t.Fatalf("t=%d report: %v", ts, err)
				}
			}
			if err := co.Finalize(ts, active); err != nil {
				t.Fatal(err)
			}
		}
		_, body, err := co.Synthetic()
		if err != nil {
			t.Fatal(err)
		}
		_, reports := cur.Stats()
		return body, reports
	}
	jsonCSV, jsonReports := run(WireJSON)
	binCSV, binReports := run(WireBinary)
	if jsonReports == 0 || jsonReports != binReports {
		t.Fatalf("report counts diverged: json %d, binary %d", jsonReports, binReports)
	}
	if !reflect.DeepEqual(jsonCSV, binCSV) {
		t.Fatal("client over binary wire released a different synthetic database than JSON")
	}
}
