package remote

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"retrasyn/internal/monitor"
	"retrasyn/internal/obs"
	"retrasyn/internal/trajectory"
)

// HTTP transport for the curator. Bodies are JSON by default; the framed
// endpoints (presence, assignments, report) also speak the binary wire
// protocol when the request's Content-Type is application/x-retrasyn (see
// wire.go for the frame layout and negotiation rules). Errors map to 4xx
// with a plain-text reason either way.

// presenceRequest announces presence for one user (User) or a whole
// gateway's worth at once (Users); both forms may appear in one request.
// Presence is a set operation, so the batched form is safely retryable.
type presenceRequest struct {
	User  int   `json:"user"`
	T     int   `json:"t"`
	Users []int `json:"users,omitempty"`
}

// assignmentsRequest is the batched assignment poll: one round trip for a
// gateway's whole user shard instead of one GET per user.
type assignmentsRequest struct {
	T     int   `json:"t"`
	Users []int `json:"users"`
}

type assignmentsResponse struct {
	// Assignments aligns index-for-index with the request's Users.
	Assignments []Assignment `json:"assignments"`
}

type planRequest struct {
	T int `json:"t"`
}

// reportRequest carries one user's report (user/ones), a sparse batch
// (reports), or a bit-packed batch (packed, base64 dense bits — the compact
// form for dense rounds); a non-empty packed batch takes precedence over a
// sparse batch, which takes precedence over the single report. Batches are
// all-or-nothing.
type reportRequest struct {
	User    int                 `json:"user"`
	T       int                 `json:"t"`
	Ones    []int               `json:"ones"`
	Reports []BatchReport       `json:"reports,omitempty"`
	Packed  []PackedBatchReport `json:"packed,omitempty"`
}

type finalizeRequest struct {
	T      int `json:"t"`
	Active int `json:"active"`
}

type relayoutRequest struct {
	// Force switches onto the rebuilt layout whenever it differs from the
	// current one, ignoring the distance threshold.
	Force bool `json:"force"`
}

// WireBytes is one endpoint's cumulative request/response byte ledger.
type WireBytes struct {
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
}

// StatsSnapshot is the /v1/stats payload — the counters a load harness
// polls for loss accounting (presence events vs reports) and the per-stage
// timing decomposition.
type StatsSnapshot struct {
	Rounds  int `json:"rounds"`
	Reports int `json:"reports"`
	// PresenceEvents counts every accepted presence registration — the
	// curator-side half of a replay's zero-loss ledger.
	PresenceEvents int64 `json:"presence_events"`
	// Per-stage wall time accumulated by the pipeline (curator-side
	// components of the paper's Table V decomposition).
	ModelConstructionSec float64 `json:"model_construction_sec"`
	DMUSec               float64 `json:"dmu_sec"`
	SynthesisSec         float64 `json:"synthesis_sec"`
	// Online re-discretization status: the layout currently in effect and
	// how it has evolved.
	LayoutGeneration  int     `json:"layout_generation"`
	LayoutFingerprint string  `json:"layout_fingerprint"`
	LayoutCells       int     `json:"layout_cells"`
	DomainSize        int     `json:"domain_size"`
	LastRelayoutDist  float64 `json:"last_relayout_distance"`
	// Wire is the per-endpoint cumulative bytes ledger (request bodies in,
	// response bodies out) — the counter a replay harness divides by its
	// report count to watch bytes/report for wire regressions.
	Wire map[string]WireBytes `json:"wire,omitempty"`
}

// wireCounter accumulates one endpoint's request/response bytes.
type wireCounter struct{ in, out atomic.Int64 }

// handler carries the per-endpoint wire ledgers alongside the curator. The
// counter map is fixed at construction and only its atomics mutate, so
// reads need no lock.
type handler struct {
	c    *Curator
	wire map[string]*wireCounter
}

// wireSeries are the registry mirrors of one endpoint's ledger: cumulative
// body bytes each way plus per-format request counts. Pre-created at route
// registration so the request path only touches atomics.
type wireSeries struct {
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	reqJSON  *obs.Counter
	reqBin   *obs.Counter
}

func newWireSeries(reg *obs.Registry, path string) wireSeries {
	p := obs.Label{Key: "path", Value: path}
	return wireSeries{
		bytesIn:  reg.Counter("wire.bytes_in", p),
		bytesOut: reg.Counter("wire.bytes_out", p),
		reqJSON:  reg.Counter("wire.requests", p, obs.Label{Key: "format", Value: "json"}),
		reqBin:   reg.Counter("wire.requests", p, obs.Label{Key: "format", Value: "binary"}),
	}
}

// countingWriter tallies response body bytes (headers excluded — they are
// not payload and the JSON-vs-binary comparison should not be diluted by
// them).
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.n += int64(n)
	return n, err
}

// countingReader tallies request body bytes actually consumed.
type countingReader struct {
	r io.ReadCloser
	n int64
}

func (r *countingReader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	r.n += int64(n)
	return n, err
}

func (r *countingReader) Close() error { return r.r.Close() }

// route registers fn with the wire middleware: advertise binary support on
// every response and account request/response bytes against the endpoint's
// ledger.
func (h *handler) route(mux *http.ServeMux, pattern string, fn http.HandlerFunc) {
	path := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		path = pattern[i+1:]
	}
	wc := h.wire[path]
	if wc == nil {
		wc = &wireCounter{}
		h.wire[path] = wc
	}
	ws := newWireSeries(h.c.Metrics(), path)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wireAdvertHeader, wireAdvertValue)
		if isBinary(r) {
			ws.reqBin.Inc()
		} else {
			ws.reqJSON.Inc()
		}
		cr := &countingReader{r: r.Body}
		r.Body = cr
		cw := &countingWriter{ResponseWriter: w}
		fn(cw, r)
		in := cr.n
		if r.ContentLength > in {
			// The handler bailed before draining the body; the client still
			// shipped ContentLength bytes.
			in = r.ContentLength
		}
		wc.in.Add(in)
		wc.out.Add(cw.n)
		ws.bytesIn.Add(in)
		ws.bytesOut.Add(cw.n)
	})
}

// isBinary reports whether the request body is a binary frame.
func isBinary(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == WireContentType || strings.HasPrefix(ct, WireContentType+";")
}

// acceptsBinary reports whether the client asked for a binary response.
func acceptsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), WireContentType)
}

// readFrame reads and validates one binary frame of the wanted kind,
// writing the 400 itself on failure. The returned payload aliases the body
// buffer.
func readFrame(w http.ResponseWriter, r *http.Request, wantKind byte) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, wireHeaderLen+wireMaxPayload+1))
	if err != nil {
		http.Error(w, "remote: reading binary frame: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	kind, payload, err := decodeFrame(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if kind != wantKind {
		http.Error(w, "remote: binary frame kind mismatch for this endpoint", http.StatusBadRequest)
		return nil, false
	}
	return payload, true
}

// NewHandler exposes the curator over HTTP.
func NewHandler(c *Curator) http.Handler {
	h := &handler{c: c, wire: make(map[string]*wireCounter)}
	mux := http.NewServeMux()
	h.route(mux, "POST /v1/presence", func(w http.ResponseWriter, r *http.Request) {
		var t int
		var users []int
		single, user := false, 0
		if isBinary(r) {
			payload, ok := readFrame(w, r, frameKindPresence)
			if !ok {
				return
			}
			var err error
			if t, users, err = decodePresencePayload(payload); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		} else {
			var req presenceRequest
			if !decode(w, r, &req) {
				return
			}
			t, users = req.T, req.Users
			single, user = len(req.Users) == 0, req.User
		}
		var err error
		if single {
			err = c.Presence(user, t)
		} else {
			err = c.PresenceBatch(users, t)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	h.route(mux, "POST /v1/assignments", func(w http.ResponseWriter, r *http.Request) {
		var t int
		var users []int
		if isBinary(r) {
			payload, ok := readFrame(w, r, frameKindAssignments)
			if !ok {
				return
			}
			var err error
			if t, users, err = decodeAssignmentsPayload(payload); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		} else {
			var req assignmentsRequest
			if !decode(w, r, &req) {
				return
			}
			t, users = req.T, req.Users
		}
		as, err := c.AssignmentsFor(users, t)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if acceptsBinary(r) {
			w.Header().Set("Content-Type", WireContentType)
			w.Write(encodeAssignmentsRespFrame(as))
			return
		}
		writeJSON(w, assignmentsResponse{Assignments: as})
	})
	h.route(mux, "POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		var req planRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Plan(req.T); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	h.route(mux, "GET /v1/assignment", func(w http.ResponseWriter, r *http.Request) {
		user, err1 := strconv.Atoi(r.URL.Query().Get("user"))
		t, err2 := strconv.Atoi(r.URL.Query().Get("t"))
		if err1 != nil || err2 != nil {
			http.Error(w, "remote: bad user/t query parameters", http.StatusBadRequest)
			return
		}
		a, err := c.AssignmentFor(user, t)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, a)
	})
	h.route(mux, "POST /v1/report", func(w http.ResponseWriter, r *http.Request) {
		var err error
		if isBinary(r) {
			// The binary hot path: the frame's packed rows alias the request
			// body and decode straight into the fold buffer, outside the
			// round lock. A malformed frame 400s before the curator is
			// touched; a rejected batch leaves the round intact.
			payload, ok := readFrame(w, r, frameKindReport)
			if !ok {
				return
			}
			rf, derr := decodeReportPayload(payload)
			if derr != nil {
				http.Error(w, derr.Error(), http.StatusBadRequest)
				return
			}
			switch rf.form {
			case reportFormPacked:
				err = c.reportPackedWire(rf.t, rf.d, rf.users, rf.bits)
			case reportFormSparse:
				err = c.ReportBatch(rf.t, rf.batch)
			default:
				err = c.Report(rf.user, rf.t, rf.ones)
			}
		} else {
			var req reportRequest
			if !decode(w, r, &req) {
				return
			}
			switch {
			case len(req.Packed) > 0:
				err = c.ReportPackedBatch(req.T, req.Packed)
			case len(req.Reports) > 0:
				err = c.ReportBatch(req.T, req.Reports)
			default:
				err = c.Report(req.User, req.T, req.Ones)
			}
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	h.route(mux, "GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, st)
	})
	h.route(mux, "POST /v1/restore", func(w http.ResponseWriter, r *http.Request) {
		var st CuratorState
		if !decode(w, r, &st) {
			return
		}
		if err := c.Restore(&st); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	h.route(mux, "POST /v1/finalize", func(w http.ResponseWriter, r *http.Request) {
		var req finalizeRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Finalize(req.T, req.Active); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	h.route(mux, "GET /v1/synthetic", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		if err := trajectory.WriteCells(w, c.Synthetic("remote")); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	h.route(mux, "POST /v1/relayout", func(w http.ResponseWriter, r *http.Request) {
		var req relayoutRequest
		if !decode(w, r, &req) {
			return
		}
		status, err := c.Relayout(req.Force)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, status)
	})
	// GET /metrics bypasses h.route on purpose: scrapes are observability
	// traffic, not protocol traffic, and must not inflate the wire ledger
	// the replay harness divides by report counts.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		if err := c.Metrics().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// GET /v1/health bypasses h.route for the same reason as /metrics:
	// load-balancer probes are observability traffic. The status code is
	// machine-checkable — 200 while the curator is usable (ok or degraded),
	// 503 once the utility monitor judges the release stream failing — and
	// the body carries the full per-signal breakdown.
	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		hr := c.Health()
		w.Header().Set("Content-Type", "application/json")
		if hr.Status == monitor.StatusFailing {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if err := json.NewEncoder(w).Encode(hr); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	h.route(mux, "GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		rounds, reports := c.Stats()
		timings := c.Timings()
		layout := c.LayoutStatus()
		wire := make(map[string]WireBytes, len(h.wire))
		for path, wc := range h.wire {
			wire[path] = WireBytes{BytesIn: wc.in.Load(), BytesOut: wc.out.Load()}
		}
		writeJSON(w, StatsSnapshot{
			Rounds:               rounds,
			Reports:              reports,
			PresenceEvents:       c.PresenceEvents(),
			ModelConstructionSec: timings.ModelConstruction.Seconds(),
			DMUSec:               timings.DMU.Seconds(),
			SynthesisSec:         timings.Synthesis.Seconds(),
			LayoutGeneration:     layout.Generation,
			LayoutFingerprint:    layout.Fingerprint,
			LayoutCells:          layout.Cells,
			DomainSize:           layout.DomainSize,
			LastRelayoutDist:     layout.Distance,
			Wire:                 wire,
		})
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		http.Error(w, "remote: malformed JSON: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
