package remote

import (
	"encoding/json"
	"net/http"
	"strconv"

	"retrasyn/internal/trajectory"
)

// HTTP transport for the curator. All bodies are JSON; errors map to 4xx
// with a plain-text reason.

// presenceRequest announces presence for one user (User) or a whole
// gateway's worth at once (Users); both forms may appear in one request.
// Presence is a set operation, so the batched form is safely retryable.
type presenceRequest struct {
	User  int   `json:"user"`
	T     int   `json:"t"`
	Users []int `json:"users,omitempty"`
}

// assignmentsRequest is the batched assignment poll: one round trip for a
// gateway's whole user shard instead of one GET per user.
type assignmentsRequest struct {
	T     int   `json:"t"`
	Users []int `json:"users"`
}

type assignmentsResponse struct {
	// Assignments aligns index-for-index with the request's Users.
	Assignments []Assignment `json:"assignments"`
}

type planRequest struct {
	T int `json:"t"`
}

// reportRequest carries one user's report (user/ones), a sparse batch
// (reports), or a bit-packed batch (packed, base64 dense bits — the compact
// form for dense rounds); a non-empty packed batch takes precedence over a
// sparse batch, which takes precedence over the single report. Batches are
// all-or-nothing.
type reportRequest struct {
	User    int                 `json:"user"`
	T       int                 `json:"t"`
	Ones    []int               `json:"ones"`
	Reports []BatchReport       `json:"reports,omitempty"`
	Packed  []PackedBatchReport `json:"packed,omitempty"`
}

type finalizeRequest struct {
	T      int `json:"t"`
	Active int `json:"active"`
}

type relayoutRequest struct {
	// Force switches onto the rebuilt layout whenever it differs from the
	// current one, ignoring the distance threshold.
	Force bool `json:"force"`
}

// StatsSnapshot is the /v1/stats payload — the counters a load harness
// polls for loss accounting (presence events vs reports) and the per-stage
// timing decomposition.
type StatsSnapshot struct {
	Rounds  int `json:"rounds"`
	Reports int `json:"reports"`
	// PresenceEvents counts every accepted presence registration — the
	// curator-side half of a replay's zero-loss ledger.
	PresenceEvents int64 `json:"presence_events"`
	// Per-stage wall time accumulated by the pipeline (curator-side
	// components of the paper's Table V decomposition).
	ModelConstructionSec float64 `json:"model_construction_sec"`
	DMUSec               float64 `json:"dmu_sec"`
	SynthesisSec         float64 `json:"synthesis_sec"`
	// Online re-discretization status: the layout currently in effect and
	// how it has evolved.
	LayoutGeneration  int     `json:"layout_generation"`
	LayoutFingerprint string  `json:"layout_fingerprint"`
	LayoutCells       int     `json:"layout_cells"`
	DomainSize        int     `json:"domain_size"`
	LastRelayoutDist  float64 `json:"last_relayout_distance"`
}

// NewHandler exposes the curator over HTTP.
func NewHandler(c *Curator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/presence", func(w http.ResponseWriter, r *http.Request) {
		var req presenceRequest
		if !decode(w, r, &req) {
			return
		}
		var err error
		if len(req.Users) > 0 {
			err = c.PresenceBatch(req.Users, req.T)
		}
		if err == nil && len(req.Users) == 0 {
			err = c.Presence(req.User, req.T)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/assignments", func(w http.ResponseWriter, r *http.Request) {
		var req assignmentsRequest
		if !decode(w, r, &req) {
			return
		}
		as, err := c.AssignmentsFor(req.Users, req.T)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, assignmentsResponse{Assignments: as})
	})
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		var req planRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Plan(req.T); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/assignment", func(w http.ResponseWriter, r *http.Request) {
		user, err1 := strconv.Atoi(r.URL.Query().Get("user"))
		t, err2 := strconv.Atoi(r.URL.Query().Get("t"))
		if err1 != nil || err2 != nil {
			http.Error(w, "remote: bad user/t query parameters", http.StatusBadRequest)
			return
		}
		a, err := c.AssignmentFor(user, t)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, a)
	})
	mux.HandleFunc("POST /v1/report", func(w http.ResponseWriter, r *http.Request) {
		var req reportRequest
		if !decode(w, r, &req) {
			return
		}
		var err error
		switch {
		case len(req.Packed) > 0:
			err = c.ReportPackedBatch(req.T, req.Packed)
		case len(req.Reports) > 0:
			err = c.ReportBatch(req.T, req.Reports)
		default:
			err = c.Report(req.User, req.T, req.Ones)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST /v1/restore", func(w http.ResponseWriter, r *http.Request) {
		var st CuratorState
		if !decode(w, r, &st) {
			return
		}
		if err := c.Restore(&st); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/finalize", func(w http.ResponseWriter, r *http.Request) {
		var req finalizeRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Finalize(req.T, req.Active); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/synthetic", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		if err := trajectory.WriteCells(w, c.Synthetic("remote")); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("POST /v1/relayout", func(w http.ResponseWriter, r *http.Request) {
		var req relayoutRequest
		if !decode(w, r, &req) {
			return
		}
		status, err := c.Relayout(req.Force)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, status)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		rounds, reports := c.Stats()
		timings := c.Timings()
		layout := c.LayoutStatus()
		writeJSON(w, StatsSnapshot{
			Rounds:               rounds,
			Reports:              reports,
			PresenceEvents:       c.PresenceEvents(),
			ModelConstructionSec: timings.ModelConstruction.Seconds(),
			DMUSec:               timings.DMU.Seconds(),
			SynthesisSec:         timings.Synthesis.Seconds(),
			LayoutGeneration:     layout.Generation,
			LayoutFingerprint:    layout.Fingerprint,
			LayoutCells:          layout.Cells,
			DomainSize:           layout.DomainSize,
			LastRelayoutDist:     layout.Distance,
		})
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		http.Error(w, "remote: malformed JSON: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
