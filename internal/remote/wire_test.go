package remote

import (
	"bytes"
	"encoding/binary"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"retrasyn/internal/ldp"
)

func TestPresenceFrameRoundTrip(t *testing.T) {
	users := []int{0, 7, 7, 300000, 12}
	frame, err := encodePresenceFrame(42, users)
	if err != nil {
		t.Fatal(err)
	}
	kind, payload, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameKindPresence {
		t.Fatalf("kind = %d, want %d", kind, frameKindPresence)
	}
	ts, got, err := decodePresencePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ts != 42 || !reflect.DeepEqual(got, users) {
		t.Fatalf("round-trip = t=%d %v, want t=42 %v", ts, got, users)
	}
}

func TestAssignmentsRespFrameRoundTrip(t *testing.T) {
	as := []Assignment{{}, {Report: true, Epsilon: 0.75}, {}, {Report: true, Epsilon: 1}}
	kind, payload, err := decodeFrame(encodeAssignmentsRespFrame(as))
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameKindAssignmentsResp {
		t.Fatalf("kind = %d", kind)
	}
	got, err := decodeAssignmentsRespPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, as) {
		t.Fatalf("round-trip %+v, want %+v", got, as)
	}
}

// TestReportFrameRoundTrips covers all three report forms, including a
// domain whose size is not a multiple of 8 (partial final byte) and
// unsorted sparse indices with a duplicate — the delta encoding must
// preserve the multiset even though it reorders.
func TestReportFrameRoundTrips(t *testing.T) {
	t.Run("single", func(t *testing.T) {
		ones := []int{100, 3, 17, 3, 250000}
		frame, err := EncodeSingleReportFrame(9, 31, ones)
		if err != nil {
			t.Fatal(err)
		}
		rf := mustDecodeReport(t, frame)
		if rf.form != reportFormSingle || rf.t != 9 || rf.user != 31 {
			t.Fatalf("decoded %+v", rf)
		}
		want := []int{3, 3, 17, 100, 250000} // sorted, duplicate kept
		if !reflect.DeepEqual(rf.ones, want) {
			t.Fatalf("ones = %v, want %v", rf.ones, want)
		}
	})
	t.Run("sparse", func(t *testing.T) {
		batch := []BatchReport{
			{User: 4, Ones: []int{9, 2}},
			{User: 0, Ones: nil},
			{User: 17, Ones: []int{5}},
		}
		frame, err := EncodeSparseReportFrame(3, batch)
		if err != nil {
			t.Fatal(err)
		}
		rf := mustDecodeReport(t, frame)
		if rf.form != reportFormSparse || rf.t != 3 {
			t.Fatalf("decoded %+v", rf)
		}
		want := []BatchReport{
			{User: 4, Ones: []int{2, 9}},
			{User: 0, Ones: []int{}},
			{User: 17, Ones: []int{5}},
		}
		if !reflect.DeepEqual(rf.batch, want) {
			t.Fatalf("batch = %+v, want %+v", rf.batch, want)
		}
	})
	t.Run("packed", func(t *testing.T) {
		const d = 21 // ⌈21/8⌉ = 3 bytes, 3 spare bits in the last byte
		batch := []PackedBatchReport{
			{User: 12, Bits: []byte{0xff, 0x00, 0x1f}},
			{User: 3, Bits: []byte{0x01, 0x80, 0x00}},
		}
		frame, err := EncodePackedReportFrame(5, d, batch)
		if err != nil {
			t.Fatal(err)
		}
		rf := mustDecodeReport(t, frame)
		if rf.form != reportFormPacked || rf.t != 5 || rf.d != d {
			t.Fatalf("decoded %+v", rf)
		}
		if !reflect.DeepEqual(rf.users, []int{12, 3}) {
			t.Fatalf("users = %v", rf.users)
		}
		for i := range batch {
			if !bytes.Equal(rf.bits[i], batch[i].Bits) {
				t.Fatalf("row %d = %x, want %x", i, rf.bits[i], batch[i].Bits)
			}
		}
	})
}

func mustDecodeReport(t *testing.T, frame []byte) *reportFrame {
	t.Helper()
	kind, payload, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameKindReport {
		t.Fatalf("kind = %d, want %d", kind, frameKindReport)
	}
	rf, err := decodeReportPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	return rf
}

// TestDecodeFrameRejects: every malformed header shape is a clean error.
func TestDecodeFrameRejects(t *testing.T) {
	good, err := EncodeSingleReportFrame(1, 2, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"short header":    good[:7],
		"bad magic":       append([]byte{'X', 'S'}, good[2:]...),
		"future version":  append([]byte{'R', 'S', 99}, good[3:]...),
		"length lies low": append(append([]byte{}, good[:4]...), append([]byte{0, 0, 0, 0}, good[8:]...)...),
		"truncated body":  good[:len(good)-1],
		"trailing bytes":  append(append([]byte{}, good...), 0xaa),
		"huge length":     {0x52, 0x53, 1, 4, 0xff, 0xff, 0xff, 0xff},
	}
	for name, frame := range cases {
		if name == "length lies low" {
			// keep the header length field 0 but a non-empty body
			binary.LittleEndian.PutUint32(frame[4:8], 0)
		}
		if _, _, err := decodeFrame(frame); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestDecodeReportPayloadRejects: hostile payloads inside a valid header —
// lying counts, overflowing varints, bad forms — error without panicking
// or allocating absurdly.
func TestDecodeReportPayloadRejects(t *testing.T) {
	build := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }
	uv := func(v uint64) []byte { return binary.AppendUvarint(nil, v) }
	cases := map[string][]byte{
		"empty":           {},
		"missing form":    uv(3),
		"unknown form":    build(uv(3), []byte{9}),
		"huge user count": build(uv(3), []byte{reportFormSparse}, uv(1<<30)),
		"huge ones count": build(uv(3), []byte{reportFormSingle}, uv(7), uv(1<<30)),
		"overflow varint": build(uv(3), []byte{reportFormSingle}, uv(7), uv(1), uv(math.MaxUint64>>1)),
		"zero domain":     build(uv(3), []byte{reportFormPacked}, uv(0)),
		"packed count lies": build(uv(3), []byte{reportFormPacked}, uv(64),
			uv(1000), uv(1), []byte{0xff}),
		"packed row truncated": build(uv(3), []byte{reportFormPacked}, uv(64),
			uv(1), uv(1), []byte{0xff, 0xff}),
		"delta chain overflow": build(uv(3), []byte{reportFormSingle}, uv(7),
			uv(3), uv(math.MaxInt32), uv(math.MaxInt32), uv(2)),
	}
	for name, payload := range cases {
		if _, err := decodeReportPayload(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestMalformedBinaryFramesLeaveRoundIntact is the handler-level guarantee:
// hostile bytes on /v1/report during an open round 400 cleanly, and the
// round then accepts a good batch and finalizes — nothing was partially
// applied, nothing panicked.
func TestMalformedBinaryFramesLeaveRoundIntact(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	users := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sampled := driveRound(t, cur, 0, users)
	d := cur.DomainSize()

	good, err := EncodeSingleReportFrame(0, 99, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	staleDomain, err := EncodePackedReportFrame(0, d+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	hostile := [][]byte{
		good[:5],                                   // truncated mid-header
		append(good[:8:8], 0xff),                   // length lies
		{0x52, 0x53, 2, 4, 0, 0, 0, 0},             // version skew
		finishFrame(frameKindPresence, nil),        // wrong kind for the endpoint
		finishFrame(frameKindReport, []byte{0x00}), // truncated payload
		staleDomain,                                // wrong domain (409 from the curator, round intact)
	}
	for i, frame := range hostile {
		resp, err := http.Post(srv.URL+"/v1/report", WireContentType, bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Fatalf("frame %d: status %d, want 4xx", i, resp.StatusCode)
		}
	}

	// The round is still open and healthy: a real batch lands and finalizes.
	rng := ldp.NewRand(5, 6)
	var batch []BatchReport
	for u, a := range sampled {
		oracle := ldp.MustOUE(d, a.Epsilon)
		batch = append(batch, BatchReport{User: u, Ones: oracle.Perturb(rng, u%d)})
	}
	packed, err := PackReportBatch(batch, d)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodePackedReportFrame(0, d, packed)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/report", WireContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("good batch after hostile frames: status %d", resp.StatusCode)
	}
	if err := cur.Finalize(0, len(users)); err != nil {
		t.Fatal(err)
	}
	if _, reports := cur.Stats(); reports != len(batch) {
		t.Fatalf("reports = %d, want %d", reports, len(batch))
	}
}

// FuzzBinaryFrame: no byte string may panic any frame decoder, and valid
// re-encodes of whatever decodes must round-trip. Seeds cover truncation,
// length lies and version skew around real frames.
func FuzzBinaryFrame(f *testing.F) {
	presence, _ := encodePresenceFrame(3, []int{1, 2, 900})
	assign, _ := encodeAssignmentsFrame(3, []int{1, 2})
	resp := encodeAssignmentsRespFrame([]Assignment{{Report: true, Epsilon: 0.5}, {}})
	single, _ := EncodeSingleReportFrame(7, 1, []int{0, 5, 2})
	sparse, _ := EncodeSparseReportFrame(7, []BatchReport{{User: 1, Ones: []int{3}}})
	packed, _ := EncodePackedReportFrame(7, 12, []PackedBatchReport{{User: 1, Bits: []byte{0xff, 0x0f}}})
	for _, seed := range [][]byte{presence, assign, resp, single, sparse, packed} {
		f.Add(seed)
		f.Add(seed[:len(seed)-1]) // truncated
		lying := append([]byte{}, seed...)
		binary.LittleEndian.PutUint32(lying[4:8], uint32(len(seed))) // length lies
		f.Add(lying)
		skew := append([]byte{}, seed...)
		skew[2] = 7 // version skew
		f.Add(skew)
	}
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x53})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := decodeFrame(data)
		if err != nil {
			return
		}
		switch kind {
		case frameKindPresence:
			decodePresencePayload(payload)
		case frameKindAssignments:
			decodeAssignmentsPayload(payload)
		case frameKindAssignmentsResp:
			if as, err := decodeAssignmentsRespPayload(payload); err == nil {
				if !bytes.Equal(encodeAssignmentsRespFrame(as), data) {
					t.Fatalf("assignments response did not round-trip")
				}
			}
		case frameKindReport:
			decodeReportPayload(payload)
		}
	})
}

// TestStatsReportsWireBytes: the per-endpoint byte ledger in /v1/stats
// moves when traffic flows and splits in from out.
func TestStatsReportsWireBytes(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	gw := NewGateway(srv.URL, nil)
	gw.SetWire(WireBinary)
	gw.SetRetryPolicy(fastPolicy())
	users := []int{1, 2, 3}
	if err := gw.AnnouncePresence(users, 0); err != nil {
		t.Fatal(err)
	}
	if err := cur.Plan(0); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Assignments(users, 0); err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(srv.URL, nil)
	if _, err := co.Stats(); err != nil {
		t.Fatal(err)
	}
	// An endpoint's own bytes land in the ledger after its handler returns,
	// so poll twice to see the first stats response accounted.
	st, err := co.Stats()
	if err != nil {
		t.Fatal(err)
	}
	pres, ok := st.Wire["/v1/presence"]
	if !ok || pres.BytesIn == 0 {
		t.Fatalf("presence wire ledger missing or zero: %+v", st.Wire)
	}
	if pres.BytesOut != 0 {
		t.Fatalf("presence responds 204 with no body, but bytes_out = %d", pres.BytesOut)
	}
	asgn := st.Wire["/v1/assignments"]
	if asgn.BytesIn == 0 || asgn.BytesOut == 0 {
		t.Fatalf("assignments wire ledger incomplete: %+v", asgn)
	}
	if stats := st.Wire["/v1/stats"]; stats.BytesOut == 0 {
		t.Fatalf("stats endpoint did not account its own response: %+v", st.Wire)
	}
}

// TestBinaryAdvertOnEveryResponse: negotiation depends on the advert being
// unconditional, including on error responses.
func TestBinaryAdvertOnEveryResponse(t *testing.T) {
	cur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/report", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(wireAdvertHeader); got != wireAdvertValue {
		t.Fatalf("%s = %q on an error response, want %q", wireAdvertHeader, got, wireAdvertValue)
	}
}
