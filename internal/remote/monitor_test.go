package remote

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/monitor"
	"retrasyn/internal/relayout"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// newStationaryDriver builds a protoDriver whose arrivals spread over the
// whole run, so the active population stays roughly constant after ramp-in.
// protoDriver itself front-loads every arrival into [0, T/2) — fine for
// snapshot tests, but its population collapse in the second half is a real
// utility degradation the monitor is supposed to flag, which would make a
// "stable workload" property test dishonest.
func newStationaryDriver(g *grid.System, dom *transition.Domain, n, T int) *protoDriver {
	rng := ldp.NewRand(7, 13)
	d := &protoDriver{dom: dom}
	for u := 0; u < n; u++ {
		start := rng.IntN(T)
		c := grid.Cell(rng.IntN(g.NumCells()))
		cells := []grid.Cell{c}
		for ts := start + 1; ts < T; ts++ {
			if rng.Float64() < 0.1 {
				break
			}
			ns := g.Neighbors(c)
			c = ns[rng.IntN(len(ns))]
			cells = append(cells, c)
		}
		d.trajs = append(d.trajs, trajectory.CellTrajectory{Start: start, Cells: cells})
		d.rngs = append(d.rngs, ldp.NewSource(uint64(u)+900, (uint64(u)+900)^0xbb67ae8584caa73b))
	}
	return d
}

// TestHealthEndpoint drives a served curator and polls GET /v1/health: the
// endpoint must answer 200 with the documented JSON contract while the
// monitor is healthy, reflect the run's progress, and stay off the wire
// ledger like /metrics.
func TestHealthEndpoint(t *testing.T) {
	cfg := testConfig(testGrid())
	cfg.MonitorWindow = 4
	cfg.TriggerPolicy = relayout.TriggerGeometric
	cur, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	poll := func() (int, HealthReport) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatalf("health payload not JSON: %v", err)
		}
		return resp.StatusCode, hr
	}

	code, hr := poll()
	if code != http.StatusOK || hr.Status != monitor.StatusOK {
		t.Fatalf("fresh curator health: code %d status %q", code, hr.Status)
	}
	if hr.T != -1 || hr.Rounds != 0 || hr.Generation != 0 {
		t.Fatalf("fresh curator health progress fields: %+v", hr)
	}
	if hr.Window != 4 || hr.Trigger != string(relayout.TriggerGeometric) {
		t.Fatalf("health config fields: window %d trigger %q", hr.Window, hr.Trigger)
	}

	const T = 12
	driveRounds(t, cur, srv.URL, 80, 0, T)
	code, hr = poll()
	if code != http.StatusOK {
		t.Fatalf("healthy mid-run curator answered %d", code)
	}
	if hr.T != T-1 || hr.Rounds == 0 {
		t.Fatalf("health did not track the run: t=%d rounds=%d", hr.T, hr.Rounds)
	}
	for _, sig := range []string{monitor.SignalDivergence, monitor.SignalSigRatio, monitor.SignalErrors} {
		if _, ok := hr.Signals[sig]; !ok {
			t.Fatalf("health payload missing signal %q: %+v", sig, hr.Signals)
		}
	}
	if hr.DivergenceT < 0 {
		t.Fatal("no divergence computed over a driven reported run")
	}

	// Health polling is observability traffic: not in the wire ledger.
	exposition := scrapeExposition(t, srv.URL)
	if strings.Contains(exposition, `path="/v1/health"`) {
		t.Fatal("health polling leaked into the wire ledger")
	}
	// The monitor's divergence gauges are exposed for scrapers.
	for _, want := range []string{
		`monitor_release_divergence{metric="js"}`,
		`monitor_release_divergence{metric="l1"}`,
		`monitor_alarm{signal="divergence"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestMonitorDoesNotPerturbReleases is the bit-identity golden pin for the
// monitor: curators differing only in monitor window and trigger policy —
// fed the same perturbed report bits in lockstep — must produce identical
// releases and logically identical snapshots. The monitor observes the
// engine; it never touches its randomness, and its state never rides
// checkpoints.
func TestMonitorDoesNotPerturbReleases(t *testing.T) {
	g := testGrid()
	base, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(g)
	cfg.MonitorWindow = 3
	cfg.TriggerPolicy = relayout.TriggerDegradationAnd
	tuned, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const T = 14
	drv := newProtoDriver(g, base.Domain(), 80, T)
	for ts := 0; ts < T; ts++ {
		drv.step(t, ts, base, tuned)
	}
	if !equalReleases(base.Synthetic("a"), tuned.Synthetic("a")) {
		t.Fatal("monitor window / trigger policy perturbed the released stream")
	}

	baseBlob, err := marshalSnapshot(base)
	if err != nil {
		t.Fatal(err)
	}
	tunedBlob, err := marshalSnapshot(tuned)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripTimings(t, baseBlob), stripTimings(t, tunedBlob)) {
		t.Fatal("monitor or trigger state leaked into the snapshot")
	}
}

// TestStableWorkloadNeverAlarms is the hysteresis property pin at the
// protocol level: a stationary workload driven for many rounds under a
// degradation trigger raises zero alarms, so the monitor initiates zero
// relayouts and the trace never records a fired trigger.
func TestStableWorkloadNeverAlarms(t *testing.T) {
	cfg := testConfig(testGrid())
	cfg.TriggerPolicy = relayout.TriggerDegradationOr
	cfg.RediscretizeEvery = 1
	cfg.RelayoutThreshold = 0.999 // geometric alone effectively never fires
	cur, err := NewCurator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	cur.SetTracer(slog.New(slog.NewJSONHandler(&traceBuf, nil)))

	const T = 40
	g := testGrid()
	drv := newStationaryDriver(g, cur.Domain(), 200, T)
	for ts := 0; ts < T; ts++ {
		drv.step(t, ts, cur)
	}

	hr := cur.Health()
	var total int64
	for sig, sh := range hr.Signals {
		total += sh.Alarms
		if sh.Status == "alarm" {
			t.Errorf("signal %q still alarming at end of a stable run", sig)
		}
	}
	if total != 0 {
		t.Fatalf("stable workload raised %d alarms: %+v", total, hr.Signals)
	}
	if hr.Status != monitor.StatusOK {
		t.Fatalf("stable workload ended with status %q", hr.Status)
	}
	if gen := cur.LayoutStatus().Generation; gen != 0 {
		t.Fatalf("monitor initiated %d relayouts on a stable workload", gen)
	}
	// Every trace event carries the monitor fields, and trigger_fired stays
	// false throughout.
	lines := strings.Split(strings.TrimSpace(traceBuf.String()), "\n")
	if len(lines) != T {
		t.Fatalf("tracer emitted %d events, want %d", len(lines), T)
	}
	for _, line := range lines {
		var ev struct {
			TriggerFired *bool     `json:"trigger_fired"`
			Alarms       *[]string `json:"alarms"`
			Divergence   *float64  `json:"divergence"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line not JSON: %v", err)
		}
		if ev.TriggerFired == nil || ev.Alarms == nil || ev.Divergence == nil {
			t.Fatalf("trace event missing monitor fields: %s", line)
		}
		if *ev.TriggerFired {
			t.Fatalf("trigger fired on a stable workload: %s", line)
		}
		if len(*ev.Alarms) != 0 {
			t.Fatalf("alarm recorded on a stable workload: %s", line)
		}
	}
}
