package remote

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"retrasyn/internal/ldp"
)

// driveRound opens a round at timestamp ts with the given users present and
// returns the sampled users' assignments.
func driveRound(t *testing.T, cur *Curator, ts int, users []int) map[int]Assignment {
	t.Helper()
	for _, u := range users {
		if err := cur.Presence(u, ts); err != nil {
			t.Fatalf("presence u=%d t=%d: %v", u, ts, err)
		}
	}
	if err := cur.Plan(ts); err != nil {
		t.Fatalf("plan t=%d: %v", ts, err)
	}
	sampled := make(map[int]Assignment)
	for _, u := range users {
		a, err := cur.AssignmentFor(u, ts)
		if err != nil {
			t.Fatalf("assignment u=%d: %v", u, err)
		}
		if a.Report {
			sampled[u] = a
		}
	}
	return sampled
}

// TestPackedBatchMatchesSparseBatch drives two same-seed curators through
// identical rounds — one fed sparse batches, one the packed conversion of
// the very same reports — and requires the released synthetic databases to
// be identical: the packed wire path and word-parallel fold change the
// encoding and the fold order, not one bit of the outcome.
func TestPackedBatchMatchesSparseBatch(t *testing.T) {
	g := testGrid()
	curSparse, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	curPacked, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	d := curSparse.Domain().Size()
	users := make([]int, 40)
	for i := range users {
		users[i] = i
	}
	rng := ldp.NewRand(99, 7)
	const T = 12
	for ts := 0; ts < T; ts++ {
		sampledA := driveRound(t, curSparse, ts, users)
		sampledB := driveRound(t, curPacked, ts, users)
		if !reflect.DeepEqual(sampledA, sampledB) {
			t.Fatalf("t=%d: same-seed curators sampled different users", ts)
		}
		var batch []BatchReport
		for _, u := range users {
			a, ok := sampledA[u]
			if !ok {
				continue
			}
			oracle := ldp.MustOUE(d, a.Epsilon)
			batch = append(batch, BatchReport{User: u, Ones: oracle.Perturb(rng, u%d)})
		}
		if len(batch) > 0 {
			if err := curSparse.ReportBatch(ts, batch); err != nil {
				t.Fatalf("t=%d sparse batch: %v", ts, err)
			}
			packed, err := PackReportBatch(batch, d)
			if err != nil {
				t.Fatalf("t=%d pack: %v", ts, err)
			}
			if err := curPacked.ReportPackedBatch(ts, packed); err != nil {
				t.Fatalf("t=%d packed batch: %v", ts, err)
			}
		}
		if err := curSparse.Finalize(ts, len(users)); err != nil {
			t.Fatal(err)
		}
		if err := curPacked.Finalize(ts, len(users)); err != nil {
			t.Fatal(err)
		}
	}
	_, reports := curSparse.Stats()
	if reports == 0 {
		t.Fatal("no reports flowed")
	}
	a, b := curSparse.Synthetic("x"), curPacked.Synthetic("x")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("packed-fed curator released a different synthetic database than the sparse-fed one")
	}
}

// TestCuratorRejectsOutOfDomainReports is the boundary-validation satellite:
// hostile or stale-domain indices must come back as clean errors on every
// report path — never panic the service — and leave the open round usable.
func TestCuratorRejectsOutOfDomainReports(t *testing.T) {
	g := testGrid()
	cur, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	d := cur.Domain().Size()
	users := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sampled := driveRound(t, cur, 0, users)
	if len(sampled) == 0 {
		t.Fatal("no users sampled")
	}
	var u int
	for id := range sampled {
		u = id
		break
	}

	for _, bad := range [][]int{{-1}, {d}, {0, 1, d + 7}, {1 << 40}} {
		if err := cur.Report(u, 0, bad); err == nil {
			t.Errorf("Report accepted out-of-domain ones %v", bad)
		}
		if err := cur.ReportBatch(0, []BatchReport{{User: u, Ones: bad}}); err == nil {
			t.Errorf("ReportBatch accepted out-of-domain ones %v", bad)
		}
	}
	// Malformed packed payloads: wrong length, and bits beyond the domain.
	if err := cur.ReportPackedBatch(0, []PackedBatchReport{{User: u, Bits: make([]byte, 1)}}); err == nil {
		t.Error("ReportPackedBatch accepted a short payload")
	}
	if err := cur.ReportPackedBatch(0, []PackedBatchReport{{User: u, Bits: make([]byte, ldp.PackedBytes(d)+3)}}); err == nil {
		t.Error("ReportPackedBatch accepted an oversized payload")
	}
	if tail := d % 8; tail != 0 {
		bits := make([]byte, ldp.PackedBytes(d))
		bits[len(bits)-1] = 0xFF // bits beyond d in the last byte
		if err := cur.ReportPackedBatch(0, []PackedBatchReport{{User: u, Bits: bits}}); err == nil {
			t.Error("ReportPackedBatch accepted trailing bits beyond the domain")
		}
	}

	// The round survived every rejection: a valid report and the finalize
	// still go through.
	if err := cur.Report(u, 0, []int{0, d - 1}); err != nil {
		t.Fatalf("valid report after rejections: %v", err)
	}
	if err := cur.Finalize(0, len(users)); err != nil {
		t.Fatalf("finalize after rejections: %v", err)
	}
}

// TestPackedBatchAllOrNothing: one malformed entry rejects the whole packed
// batch and applies none of it.
func TestPackedBatchAllOrNothing(t *testing.T) {
	g := testGrid()
	cur, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	d := cur.Domain().Size()
	users := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	sampled := driveRound(t, cur, 0, users)
	if len(sampled) < 2 {
		t.Skipf("need ≥2 sampled users, got %d", len(sampled))
	}
	ids := make([]int, 0, len(sampled))
	for id := range sampled {
		ids = append(ids, id)
	}
	good, err := ldp.PackReport([]int{0}, d)
	if err != nil {
		t.Fatal(err)
	}
	batch := []PackedBatchReport{
		{User: ids[0], Bits: good.Bytes(d)},
		{User: ids[1], Bits: []byte{1}}, // wrong length
	}
	if err := cur.ReportPackedBatch(0, batch); err == nil {
		t.Fatal("malformed batch accepted")
	}
	if _, reports := cur.Stats(); reports != 0 {
		t.Fatalf("rejected batch applied %d reports", reports)
	}
	// Both users can still report: nothing was consumed.
	if err := cur.ReportPackedBatch(0, []PackedBatchReport{{User: ids[0], Bits: good.Bytes(d)}, {User: ids[1], Bits: good.Bytes(d)}}); err != nil {
		t.Fatalf("clean batch after rejection: %v", err)
	}
}

// TestPackedBatchOverHTTP exercises the packed member of the /v1/report
// wire format end to end.
func TestPackedBatchOverHTTP(t *testing.T) {
	g := testGrid()
	cur, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()
	d := cur.Domain().Size()
	users := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sampled := driveRound(t, cur, 0, users)
	rng := ldp.NewRand(5, 6)
	var sparse []BatchReport
	for u, a := range sampled {
		oracle := ldp.MustOUE(d, a.Epsilon)
		sparse = append(sparse, BatchReport{User: u, Ones: oracle.Perturb(rng, u%d)})
	}
	packed, err := PackReportBatch(sparse, d)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(reportRequest{T: 0, Packed: packed})
	resp, err := http.Post(srv.URL+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("packed upload: %s", resp.Status)
	}
	if _, reports := cur.Stats(); reports != len(packed) {
		t.Fatalf("curator recorded %d reports, want %d", reports, len(packed))
	}
	if err := cur.Finalize(0, len(users)); err != nil {
		t.Fatal(err)
	}
}

// FuzzPackedReportWire fuzzes the packed-report decode on the curator wire
// path: arbitrary user/payload pairs POSTed to /v1/report must always yield
// a clean HTTP status — 204 on acceptance, 4xx on rejection — and never
// panic the handler, whatever the bytes.
func FuzzPackedReportWire(f *testing.F) {
	g := testGrid()
	probe, err := NewCurator(testConfig(g))
	if err != nil {
		f.Fatal(err)
	}
	d := probe.Domain().Size()
	f.Add(0, make([]byte, ldp.PackedBytes(d)))
	f.Add(0, []byte{})
	f.Add(1, bytes.Repeat([]byte{0xFF}, ldp.PackedBytes(d)))
	f.Add(-3, []byte{0x01, 0x02})
	f.Add(0, bytes.Repeat([]byte{0xAA}, ldp.PackedBytes(d)+1))
	f.Fuzz(func(t *testing.T, user int, bits []byte) {
		cur, err := NewCurator(testConfig(g))
		if err != nil {
			t.Fatal(err)
		}
		// A pool of one guarantees user 0 is sampled, so payload decoding is
		// reachable; other user IDs exercise the assignment rejection.
		if err := cur.Presence(0, 0); err != nil {
			t.Fatal(err)
		}
		if err := cur.Plan(0); err != nil {
			t.Fatal(err)
		}
		h := NewHandler(cur)
		body, _ := json.Marshal(reportRequest{T: 0, Packed: []PackedBatchReport{{User: user, Bits: bits}}})
		req := httptest.NewRequest("POST", "/v1/report", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNoContent && rec.Code/100 != 4 {
			t.Fatalf("user=%d len(bits)=%d: unexpected status %d", user, len(bits), rec.Code)
		}
		// Whatever happened, the round must still finalize.
		if err := cur.Finalize(0, 1); err != nil {
			t.Fatalf("finalize after fuzz report: %v", err)
		}
	})
}

// TestReportFoldChargedToModelConstruction: the aggregation fold is part of
// the paper's model-construction stage, so report ingestion — sparse or
// packed — must show up in the curator's timings the same way the
// in-process pipeline charges it, not vanish from /v1/stats.
func TestReportFoldChargedToModelConstruction(t *testing.T) {
	g := testGrid()
	for name, packed := range map[string]bool{"sparse": false, "packed": true} {
		t.Run(name, func(t *testing.T) {
			cur, err := NewCurator(testConfig(g))
			if err != nil {
				t.Fatal(err)
			}
			d := cur.Domain().Size()
			users := []int{0, 1, 2, 3, 4, 5, 6, 7}
			sampled := driveRound(t, cur, 0, users)
			rng := ldp.NewRand(3, 9)
			var batch []BatchReport
			for _, u := range users {
				a, ok := sampled[u]
				if !ok {
					continue
				}
				oracle := ldp.MustOUE(d, a.Epsilon)
				batch = append(batch, BatchReport{User: u, Ones: oracle.Perturb(rng, u%d)})
			}
			if len(batch) == 0 {
				t.Fatal("no users sampled")
			}
			if packed {
				pb, err := PackReportBatch(batch, d)
				if err != nil {
					t.Fatal(err)
				}
				if err := cur.ReportPackedBatch(0, pb); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := cur.ReportBatch(0, batch); err != nil {
					t.Fatal(err)
				}
			}
			if got := cur.Timings().ModelConstruction; got <= 0 {
				t.Fatalf("fold time not charged before Finalize: ModelConstruction = %v", got)
			}
		})
	}
}
