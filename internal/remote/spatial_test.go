package remote

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
)

// testQuadtree grows a skewed density-adaptive quadtree for protocol tests.
func testQuadtree(t *testing.T) *spatial.Quadtree {
	t.Helper()
	rng := ldp.NewRand(808, 809)
	pts := make([]spatial.Point, 0, 2000)
	for i := 0; i < 2000; i++ {
		if i%4 == 0 {
			pts = append(pts, spatial.Point{X: rng.Float64(), Y: rng.Float64()})
		} else {
			pts = append(pts, spatial.Point{X: rng.Float64() * 0.25, Y: rng.Float64() * 0.25})
		}
	}
	qt, err := spatial.NewQuadtree(spatial.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, pts,
		spatial.QuadtreeOptions{MaxLeaves: 20})
	if err != nil {
		t.Fatal(err)
	}
	return qt
}

// TestQuadtreeCuratorEndToEnd drives the full HTTP collection protocol with
// the curator running on the density-adaptive quadtree: clients encode
// against the quadtree's transition domain, the release must satisfy the
// tree's reachability constraint, and the w-event invariant holds.
func TestQuadtreeCuratorEndToEnd(t *testing.T) {
	qt := testQuadtree(t)
	cur, err := NewCurator(testConfig(qt))
	if err != nil {
		t.Fatal(err)
	}
	const T = 20
	cur.EnableLedger(T)
	srv := httptest.NewServer(NewHandler(cur))
	defer srv.Close()

	clients, orig := buildClients(t, qt, cur, srv.URL, 100, T)
	co := NewCoordinator(srv.URL, nil)
	for ts := 0; ts < T; ts++ {
		active := 0
		for _, c := range clients {
			if err := c.AnnouncePresence(ts); err != nil {
				t.Fatalf("t=%d presence: %v", ts, err)
			}
			if c.LocatedAt(ts) {
				active++
			}
		}
		if err := co.Plan(ts); err != nil {
			t.Fatalf("t=%d plan: %v", ts, err)
		}
		for _, c := range clients {
			if _, err := c.MaybeReport(ts); err != nil {
				t.Fatalf("t=%d report: %v", ts, err)
			}
		}
		if err := co.Finalize(ts, active); err != nil {
			t.Fatalf("t=%d finalize: %v", ts, err)
		}
	}

	rounds, reports := cur.Stats()
	if rounds == 0 || reports == 0 {
		t.Fatalf("no activity on the quadtree curator: rounds=%d reports=%d", rounds, reports)
	}
	syn := cur.Synthetic("remote-qt")
	if err := syn.Validate(qt, true); err != nil {
		t.Fatalf("quadtree release violates reachability: %v", err)
	}
	synActive := syn.ActiveCounts()
	for ts, want := range orig.ActiveCounts() {
		if synActive[ts] != want {
			t.Fatalf("t=%d: synthetic active %d, real %d", ts, synActive[ts], want)
		}
	}
	if got := cur.Ledger().MaxUserWindowSum(5, func(int) float64 { return 1.0 }); got > 1.0+1e-9 {
		t.Fatalf("per-user window budget %v exceeds ε", got)
	}
}

// TestCuratorLegacySnapshotCompat mirrors the engine regression: a snapshot
// whose fingerprint has no discretizer field (pre-spatial builds) restores
// into a uniform-grid curator but is rejected by a quadtree one.
func TestCuratorLegacySnapshotCompat(t *testing.T) {
	g := testGrid()
	cur, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cur.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st.Config.Discretizer = "" // what a pre-spatial build wrote
	fresh, err := NewCurator(testConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(st); err != nil {
		t.Fatalf("legacy uniform snapshot rejected: %v", err)
	}

	qt := testQuadtree(t)
	qcur, err := NewCurator(testConfig(qt))
	if err != nil {
		t.Fatal(err)
	}
	qst, err := qcur.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	qst.Config.Discretizer = ""
	qfresh, err := NewCurator(testConfig(qt))
	if err != nil {
		t.Fatal(err)
	}
	if err := qfresh.Restore(qst); err == nil {
		t.Fatal("fingerprint-less snapshot accepted by a quadtree curator")
	}
}

// TestCuratorSnapshotCrossDiscretizer ensures curator state cannot migrate
// between different spatial layouts, and that the fingerprint survives the
// JSON round trip a checkpoint file takes.
func TestCuratorSnapshotCrossDiscretizer(t *testing.T) {
	qt := testQuadtree(t)
	cur, err := NewCurator(testConfig(qt))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cur.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var round CuratorState
	if err := json.Unmarshal(blob, &round); err != nil {
		t.Fatal(err)
	}
	if round.Config.Discretizer != qt.Fingerprint() {
		t.Fatalf("fingerprint lost in JSON round trip: %q", round.Config.Discretizer)
	}
	gcur, err := NewCurator(testConfig(testGrid()))
	if err != nil {
		t.Fatal(err)
	}
	if err := gcur.Restore(&round); err == nil {
		t.Fatal("quadtree snapshot restored into a grid curator")
	}
}
