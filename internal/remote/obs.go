package remote

import (
	"io"
	"log/slog"
	"time"

	"retrasyn/internal/allocation"
	"retrasyn/internal/monitor"
	"retrasyn/internal/obs"
	"retrasyn/internal/pipeline"
)

// curatorMetrics bundles the curator's registry handles. The registry is
// always on — it costs a few atomics per round — and run-scoped: nothing
// here enters snapshots, and a restored curator counts from zero.
type curatorMetrics struct {
	rounds         *obs.Counter
	reports        *obs.Counter
	reportsPacked  *obs.Counter
	reportsSparse  *obs.Counter
	presenceEvents *obs.Counter
	roundErrors    *obs.Counter
	relayoutErrors *obs.Counter

	openRound    *obs.Gauge
	presentUsers *obs.Gauge
	pendingAsgn  *obs.Gauge
	poolSize     *obs.Gauge
	sampledUsers *obs.Gauge
	domainSize   *obs.Gauge
	sigRatio     *obs.Gauge
	significant  *obs.Gauge
	generation   *obs.Gauge

	reportCount *obs.Histogram
	migration   *obs.Histogram

	stageModel *obs.Histogram
	stageDMU   *obs.Histogram
	stageSynth *obs.Histogram

	meter *allocation.Meter
}

func newCuratorMetrics(reg *obs.Registry, w int) curatorMetrics {
	rep := func(kind string) *obs.Counter {
		return reg.Counter("curator.reports_by_representation", obs.Label{Key: "representation", Value: kind})
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("pipeline.stage.latency_us",
			obs.Label{Key: "shard", Value: "0"}, obs.Label{Key: "stage", Value: name})
	}
	return curatorMetrics{
		rounds:         reg.Counter("curator.rounds"),
		reports:        reg.Counter("curator.reports"),
		reportsPacked:  rep("packed"),
		reportsSparse:  rep("sparse"),
		presenceEvents: reg.Counter("curator.presence_events"),
		roundErrors:    reg.Counter("curator.round_errors"),
		relayoutErrors: reg.Counter("curator.relayout_errors"),
		openRound:      reg.Gauge("curator.open_round"),
		presentUsers:   reg.Gauge("curator.present_users"),
		pendingAsgn:    reg.Gauge("curator.pending_assignments"),
		poolSize:       reg.Gauge("curator.round_pool"),
		sampledUsers:   reg.Gauge("curator.round_sampled"),
		domainSize:     reg.Gauge("curator.domain_size"),
		sigRatio:       reg.Gauge("curator.dmu.sig_ratio"),
		significant:    reg.Gauge("curator.dmu.significant"),
		generation:     reg.Gauge("relayout.generation"),
		reportCount:    reg.Histogram("curator.round.report_count"),
		migration:      reg.Histogram("relayout.migration_duration_us"),
		stageModel:     stage("model_construction"),
		stageDMU:       stage("dmu"),
		stageSynth:     stage("synthesis"),
		meter:          allocation.NewMeter(reg, w),
	}
}

// Metrics returns the curator's always-on metrics registry; NewHandler
// serves it at GET /metrics.
func (c *Curator) Metrics() *obs.Registry { return c.reg }

// SetLogger installs the error logger for round-processing and relayout
// failures. Default: a text logger discarded (silent), so servers must opt
// in. Safe to call before serving traffic.
func (c *Curator) SetLogger(l *slog.Logger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l != nil {
		c.logger = l
	}
}

// SetTracer installs the opt-in round tracer: one structured event per
// Finalize with stage latencies, report counts, budget stats and relayout
// state. cmd/curator -trace-rounds points this at a JSONL file.
func (c *Curator) SetTracer(l *slog.Logger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = l
}

// discardLogger is the default silent logger.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// roundError logs a round-processing failure with timestamp context and
// counts it; returns err unchanged so call sites stay one-liners.
func (c *Curator) roundError(op string, t int, err error) error {
	if err == nil {
		return nil
	}
	c.metrics.roundErrors.Inc()
	c.logger.Error("round processing failed", "op", op, "t", t, "err", err.Error())
	return err
}

// relayoutError logs a relayout failure with timestamp context and counts it.
func (c *Curator) relayoutError(t int, err error) error {
	if err == nil {
		return nil
	}
	c.metrics.relayoutErrors.Inc()
	c.logger.Error("relayout failed", "t", t, "err", err.Error())
	return err
}

// traceRound emits the per-round tracer event. delta is the Timings
// increment this round charged (report folds since the last Finalize plus
// the estimate/DMU/synthesis work of this one). mon is the utility
// monitor's round report; divergence keys carry −1 on rounds where it was
// not computed (unreported round or empty release sketch). Called under
// c.mu.
func (c *Curator) traceRound(t int, reported bool, reports int, eps float64, sigRatio float64, significant int, delta pipeline.Timings, relayoutSwitched bool, mon monitor.RoundReport, triggerFired bool) {
	if c.tracer == nil {
		return
	}
	divL1, divJS := -1.0, -1.0
	if mon.Computed {
		divL1, divJS = mon.L1, mon.JS
	}
	alarms := mon.Alarms
	if alarms == nil {
		alarms = []string{}
	}
	c.tracer.Info("round",
		"t", t,
		"reported", reported,
		"reports", reports,
		"epsilon", eps,
		"pool", c.roundPool,
		"sampled", c.roundSampled,
		"sig_ratio", sigRatio,
		"significant", significant,
		"model_construction_us", delta.ModelConstruction.Microseconds(),
		"dmu_us", delta.DMU.Microseconds(),
		"synthesis_us", delta.Synthesis.Microseconds(),
		"domain_size", c.dom.Size(),
		"generation", c.generation,
		"relayout_switched", relayoutSwitched,
		"divergence", divJS,
		"divergence_l1", divL1,
		"alarms", alarms,
		"trigger_fired", triggerFired,
	)
}

// observeMigration times one applied migration.
func (m *curatorMetrics) observeMigration(d time.Duration) { m.migration.Observe(d) }
