package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// Client is the device side of the protocol: it owns one user's trajectory
// and never ships a raw location — only presence metadata and locally
// perturbed OUE bits.
type Client struct {
	baseURL string
	http    *http.Client
	user    int
	traj    trajectory.CellTrajectory
	dom     *transition.Domain
	rng     ldp.Rand
}

// NewClient builds a device client. The domain must match the curator's
// grid (in a deployment the curator publishes the grid parameters).
func NewClient(baseURL string, httpClient *http.Client, user int, traj trajectory.CellTrajectory, dom *transition.Domain, seed uint64) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		baseURL: baseURL,
		http:    httpClient,
		user:    user,
		traj:    traj,
		dom:     dom,
		rng:     ldp.NewRand(seed, seed^0xbb67ae8584caa73b),
	}
}

// StateAt returns the client's transition state at timestamp t and whether
// it has one: enter at Start, moves while continuing, and the final
// graceful quit report at End+1.
func (c *Client) StateAt(t int) (transition.State, bool) {
	switch {
	case t == c.traj.Start:
		return transition.EnterState(c.traj.Cells[0]), true
	case t > c.traj.Start && t <= c.traj.End():
		i := t - c.traj.Start
		return transition.MoveState(c.traj.Cells[i-1], c.traj.Cells[i]), true
	case t == c.traj.End()+1:
		return transition.QuitState(c.traj.Cells[len(c.traj.Cells)-1]), true
	default:
		return transition.State{}, false
	}
}

// LocatedAt reports whether the client has a location (counts toward the
// public active population) at t.
func (c *Client) LocatedAt(t int) bool {
	return t >= c.traj.Start && t <= c.traj.End()
}

// AnnouncePresence tells the curator the client has a state at t.
func (c *Client) AnnouncePresence(t int) error {
	if _, ok := c.StateAt(t); !ok {
		return nil
	}
	return c.post("/v1/presence", presenceRequest{User: c.user, T: t})
}

// MaybeReport polls the assignment for t and, if sampled, perturbs the
// client's state locally and ships the report. It returns whether a report
// was sent.
func (c *Client) MaybeReport(t int) (bool, error) {
	state, ok := c.StateAt(t)
	if !ok {
		return false, nil
	}
	resp, err := c.http.Get(fmt.Sprintf("%s/v1/assignment?user=%d&t=%d", c.baseURL, c.user, t))
	if err != nil {
		return false, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("remote: assignment poll failed: %s", resp.Status)
	}
	var a Assignment
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		return false, err
	}
	if !a.Report {
		return false, nil
	}
	idx, ok := c.dom.Index(state)
	if !ok {
		return false, fmt.Errorf("remote: state %v outside domain", state)
	}
	oracle, err := ldp.NewOUE(c.dom.Size(), a.Epsilon)
	if err != nil {
		return false, err
	}
	ones := oracle.Perturb(c.rng, idx) // the only thing that leaves the device
	if err := c.post("/v1/report", reportRequest{User: c.user, T: t, Ones: ones}); err != nil {
		return false, err
	}
	return true, nil
}

func (c *Client) post(path string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.baseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("remote: %s → %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — best-effort connection reuse
	resp.Body.Close()
}

// Coordinator drives the per-timestamp protocol against a curator endpoint
// (in production: a scheduler tick).
type Coordinator struct {
	baseURL string
	http    *http.Client
}

// NewCoordinator builds a coordinator for the endpoint.
func NewCoordinator(baseURL string, httpClient *http.Client) *Coordinator {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Coordinator{baseURL: baseURL, http: httpClient}
}

// Plan opens the round for timestamp t.
func (co *Coordinator) Plan(t int) error {
	return co.post("/v1/plan", planRequest{T: t})
}

// Finalize closes timestamp t with the public active count.
func (co *Coordinator) Finalize(t, active int) error {
	return co.post("/v1/finalize", finalizeRequest{T: t, Active: active})
}

// Synthetic fetches the current release.
func (co *Coordinator) Synthetic() (*trajectory.RawDataset, []byte, error) {
	resp, err := co.http.Get(co.baseURL + "/v1/synthetic")
	if err != nil {
		return nil, nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("remote: synthetic fetch failed: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return nil, body, err
}

func (co *Coordinator) post(path string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := co.http.Post(co.baseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("remote: %s → %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
