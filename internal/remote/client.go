package remote

import (
	"fmt"
	"io"
	"net/http"

	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// Client is the device side of the protocol: it owns one user's trajectory
// and never ships a raw location — only presence metadata and locally
// perturbed OUE bits. Requests run under the transport's per-attempt
// timeout; the idempotent paths (presence, assignment polls) additionally
// retry transient failures, while the report upload never does — the
// curator accepts one report per assignment, and retrying an ambiguous
// success would be rejected as a duplicate anyway.
type Client struct {
	tr   *transport
	user int
	traj trajectory.CellTrajectory
	dom  *transition.Domain
	rng  ldp.Rand
}

// NewClient builds a device client. The domain must match the curator's
// grid (in a deployment the curator publishes the grid parameters).
func NewClient(baseURL string, httpClient *http.Client, user int, traj trajectory.CellTrajectory, dom *transition.Domain, seed uint64) *Client {
	return &Client{
		tr:   newTransport(baseURL, httpClient),
		user: user,
		traj: traj,
		dom:  dom,
		rng:  ldp.NewRand(seed, seed^0xbb67ae8584caa73b),
	}
}

// SetRetryPolicy overrides the client's timeout/retry bounds (zero fields
// keep their defaults). Call before issuing requests.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.tr.policy = p }

// SetWire pins the wire encoding (default WireAuto: negotiate up to binary
// frames when the curator advertises support). Call before issuing
// requests.
func (c *Client) SetWire(m WireMode) { c.tr.wire = m }

// StateAt returns the client's transition state at timestamp t and whether
// it has one: enter at Start, moves while continuing, and the final
// graceful quit report at End+1.
func (c *Client) StateAt(t int) (transition.State, bool) {
	switch {
	case t == c.traj.Start:
		return transition.EnterState(c.traj.Cells[0]), true
	case t > c.traj.Start && t <= c.traj.End():
		i := t - c.traj.Start
		return transition.MoveState(c.traj.Cells[i-1], c.traj.Cells[i]), true
	case t == c.traj.End()+1:
		return transition.QuitState(c.traj.Cells[len(c.traj.Cells)-1]), true
	default:
		return transition.State{}, false
	}
}

// LocatedAt reports whether the client has a location (counts toward the
// public active population) at t.
func (c *Client) LocatedAt(t int) bool {
	return t >= c.traj.Start && t <= c.traj.End()
}

// AnnouncePresence tells the curator the client has a state at t. Presence
// registration is a set operation on the curator, so it retries safely.
func (c *Client) AnnouncePresence(t int) error {
	if _, ok := c.StateAt(t); !ok {
		return nil
	}
	return c.tr.postWire("/v1/presence", presenceRequest{User: c.user, T: t},
		func() ([]byte, error) { return encodePresenceFrame(t, []int{c.user}) }, true, nil)
}

// MaybeReport polls the assignment for t and, if sampled, perturbs the
// client's state locally and ships the report. It returns whether a report
// was sent.
func (c *Client) MaybeReport(t int) (bool, error) {
	state, ok := c.StateAt(t)
	if !ok {
		return false, nil
	}
	var a Assignment
	if err := c.tr.getJSON(fmt.Sprintf("/v1/assignment?user=%d&t=%d", c.user, t), &a); err != nil {
		return false, err
	}
	if !a.Report {
		return false, nil
	}
	idx, ok := c.dom.Index(state)
	if !ok {
		return false, fmt.Errorf("remote: state %v outside domain", state)
	}
	d := c.dom.Size()
	oracle, err := ldp.NewOUE(d, a.Epsilon)
	if err != nil {
		return false, err
	}
	// Pick the wire representation by round density, exactly as the gateway
	// tier does: when the expected number of 1-bits crosses the packed
	// crossover, ship the dense ⌈d/8⌉-byte form instead of the index list.
	// PerturbPacked consumes the RNG identically to Perturb, so the choice
	// changes bytes on the wire, never the report.
	if ldp.PreferPacked(d, a.Epsilon) {
		packed := []PackedBatchReport{{User: c.user, Bits: oracle.PerturbPacked(c.rng, idx).Bytes(d)}}
		if err := c.tr.postWire("/v1/report", reportRequest{T: t, Packed: packed},
			func() ([]byte, error) { return EncodePackedReportFrame(t, d, packed) }, false, nil); err != nil {
			return false, err
		}
		return true, nil
	}
	ones := oracle.Perturb(c.rng, idx) // the only thing that leaves the device
	if err := c.tr.postWire("/v1/report", reportRequest{User: c.user, T: t, Ones: ones},
		func() ([]byte, error) { return EncodeSingleReportFrame(t, c.user, ones) }, false, nil); err != nil {
		return false, err
	}
	return true, nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — best-effort connection reuse
	resp.Body.Close()
}

// Coordinator drives the per-timestamp protocol against a curator endpoint
// (in production: a scheduler tick). Plan and Finalize advance the round
// state machine, so they never retry; the read-only paths do.
type Coordinator struct {
	tr *transport
}

// NewCoordinator builds a coordinator for the endpoint.
func NewCoordinator(baseURL string, httpClient *http.Client) *Coordinator {
	return &Coordinator{tr: newTransport(baseURL, httpClient)}
}

// SetRetryPolicy overrides the coordinator's timeout/retry bounds (zero
// fields keep their defaults). Call before issuing requests.
func (co *Coordinator) SetRetryPolicy(p RetryPolicy) { co.tr.policy = p }

// Plan opens the round for timestamp t.
func (co *Coordinator) Plan(t int) error {
	return co.tr.postJSON("/v1/plan", planRequest{T: t}, false, nil)
}

// Finalize closes timestamp t with the public active count.
func (co *Coordinator) Finalize(t, active int) error {
	return co.tr.postJSON("/v1/finalize", finalizeRequest{T: t, Active: active}, false, nil)
}

// Synthetic fetches the current release.
func (co *Coordinator) Synthetic() (*trajectory.RawDataset, []byte, error) {
	var body rawBody
	if err := co.tr.do(http.MethodGet, "/v1/synthetic", nil, "", true, &body); err != nil {
		return nil, nil, err
	}
	return nil, body, nil
}

// Stats fetches the curator's activity counters and per-stage timings.
func (co *Coordinator) Stats() (StatsSnapshot, error) {
	var s StatsSnapshot
	err := co.tr.getJSON("/v1/stats", &s)
	return s, err
}

// rawBody captures a non-JSON response verbatim (the /v1/synthetic CSV).
type rawBody []byte

func (b *rawBody) decodeFrom(r io.Reader) error {
	data, err := io.ReadAll(r)
	*b = data
	return err
}
