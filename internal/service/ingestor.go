// Package service is the production ingest layer over the RetraSyn engine:
// a concurrent-safe Ingestor that accepts batched per-timestamp event
// submissions from many goroutines (gateway shards, HTTP handlers, message
// consumers), buffers bounded out-of-order arrivals behind a per-timestamp
// barrier, applies backpressure when the buffer fills, and drives the
// underlying single-threaded engine strictly in timestamp order.
//
// Determinism: within a timestamp, events are processed in ascending user-ID
// order regardless of arrival interleaving, so a concurrent ingest run
// releases exactly the same synthetic database as a sequential replay of the
// same stream — the ingestion layer adds throughput, not noise. Combined
// with the engine's checkpointing (Quiesce + Framework.Snapshot) this gives
// a durable, resumable curator service.
//
// The ingest layer is representation-agnostic: it buffers raw events and
// hands each timestamp's batch to the engine untouched. Whether a collection
// round is folded sparse or bit-packed (ldp.PreferPacked) is decided
// downstream, per round, inside the engine's collector — nothing here
// inspects or re-encodes reports, so packed rounds flow through at full
// batch granularity.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"retrasyn/internal/obs"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

// Engine is the single-threaded stream processor the Ingestor serializes
// onto — retrasyn.Framework satisfies it on both its single-engine and
// multi-shard coordinator paths.
type Engine interface {
	// ProcessTimestamp ingests the next timestamp's events and the publicly
	// known active-user count.
	ProcessTimestamp(events []trajectory.Event, activeUsers int) error
	// Timestamp returns the next timestamp the engine expects.
	Timestamp() int
}

// Errors returned by Ingestor methods.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("service: ingestor closed")
	// ErrTimestampClosed is returned for submissions to a timestamp the
	// engine has already processed.
	ErrTimestampClosed = errors.New("service: timestamp already processed")
	// ErrAlreadySealed is returned for a duplicate Seal of a timestamp.
	ErrAlreadySealed = errors.New("service: timestamp already sealed")
)

// Options tunes the ingest buffer.
type Options struct {
	// MaxAhead bounds how far ahead of the engine's current timestamp a
	// submission may arrive: events for timestamps ≥ current+MaxAhead block
	// until the engine catches up. Default 64.
	MaxAhead int
	// MaxPendingEvents bounds the total buffered (unprocessed) events;
	// submissions that would exceed it block until the drain frees space.
	// A batch larger than the whole buffer is admitted alone when the
	// buffer is empty. Default 65536.
	MaxPendingEvents int
	// Metrics, when non-nil, mirrors the Stats counters and the live buffer
	// occupancy into registry series under "ingest." — see the README's
	// observability catalog. Nil leaves instrumentation off.
	Metrics *obs.Registry
}

func (o *Options) defaults() {
	if o.MaxAhead <= 0 {
		o.MaxAhead = 64
	}
	if o.MaxPendingEvents <= 0 {
		o.MaxPendingEvents = 1 << 16
	}
}

// Stats counts ingestor activity. Snapshot it with Ingestor.Stats.
type Stats struct {
	BatchesAccepted     int64 `json:"batches_accepted"`
	EventsAccepted      int64 `json:"events_accepted"`
	TimestampsProcessed int64 `json:"timestamps_processed"`
	// BackpressureWaits counts blocking episodes: every time a Submit had
	// to wait for space. A call that blocks, wakes and must block again
	// counts once per wait, so under sustained replay pressure the counter
	// tracks how hard producers are leaning on the buffer, not merely how
	// many calls ever touched it.
	BackpressureWaits int64 `json:"backpressure_waits"`
	// EventsDropped counts buffered events discarded because the ingestor
	// closed before their timestamp was sealed.
	EventsDropped int64 `json:"events_dropped"`
}

// Ingestor is the concurrent ingest front of an Engine. All methods are safe
// for concurrent use. Create with New, feed with Submit/Seal, stop with
// Close.
type Ingestor struct {
	eng  Engine
	opts Options

	mu    sync.Mutex
	space *sync.Cond // waiters for buffer space (producers)
	work  *sync.Cond // drain waiting for sealed work
	idle  *sync.Cond // waiters for the drain to go idle (Quiesce, Close)

	next          int // next timestamp the engine expects
	buf           map[int][]trajectory.Event
	sealed        map[int]int // timestamp → active-user count
	pendingEvents int
	processing    bool // drain is inside eng.ProcessTimestamp
	closed        bool
	failed        error // sticky engine error
	stats         Stats
	done          chan struct{}
	metrics       ingestMetrics
}

// ingestMetrics mirrors the Stats counters and live buffer occupancy into
// registry series. The zero value (nil handles) records nothing.
type ingestMetrics struct {
	batches    *obs.Counter
	events     *obs.Counter
	processed  *obs.Counter
	waits      *obs.Counter
	dropped    *obs.Counter
	pending    *obs.Gauge // buffered (unprocessed) events
	buffered   *obs.Gauge // distinct timestamps currently buffered
	sealedOpen *obs.Gauge // sealed timestamps not yet drained
}

func newIngestMetrics(reg *obs.Registry) ingestMetrics {
	if reg == nil {
		return ingestMetrics{}
	}
	return ingestMetrics{
		batches:    reg.Counter("ingest.batches_accepted"),
		events:     reg.Counter("ingest.events_accepted"),
		processed:  reg.Counter("ingest.timestamps_processed"),
		waits:      reg.Counter("ingest.backpressure_waits"),
		dropped:    reg.Counter("ingest.events_dropped"),
		pending:    reg.Gauge("ingest.pending_events"),
		buffered:   reg.Gauge("ingest.buffered_timestamps"),
		sealedOpen: reg.Gauge("ingest.sealed_waiting"),
	}
}

// sync refreshes the occupancy gauges; callers hold in.mu.
func (in *Ingestor) syncOccupancy() {
	in.metrics.pending.Set(float64(in.pendingEvents))
	in.metrics.buffered.Set(float64(len(in.buf)))
	in.metrics.sealedOpen.Set(float64(len(in.sealed)))
}

// New starts an ingestor over eng. The caller must not drive eng directly
// while the ingestor owns it.
func New(eng Engine, opts Options) *Ingestor {
	opts.defaults()
	in := &Ingestor{
		eng:     eng,
		opts:    opts,
		next:    eng.Timestamp(),
		buf:     make(map[int][]trajectory.Event),
		sealed:  make(map[int]int),
		done:    make(chan struct{}),
		metrics: newIngestMetrics(opts.Metrics),
	}
	in.space = sync.NewCond(&in.mu)
	in.work = sync.NewCond(&in.mu)
	in.idle = sync.NewCond(&in.mu)
	go in.drain()
	return in
}

// Submit buffers a batch of events for timestamp t. It blocks while the
// buffer is full or t is beyond the out-of-order window (backpressure), and
// returns once the batch is accepted. Events for an already-processed
// timestamp return ErrTimestampClosed; submissions after Close return
// ErrClosed; a sticky engine error is returned to all subsequent calls.
func (in *Ingestor) Submit(t int, events []trajectory.Event) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		switch {
		case in.failed != nil:
			return in.failed
		case in.closed:
			return ErrClosed
		case t < in.next, t == in.next && in.processing:
			// A timestamp is closed the moment the drain hands it to the
			// engine, not only after next advances — accepting events for
			// the in-flight timestamp would silently drop them.
			return ErrTimestampClosed
		}
		if _, ok := in.sealed[t]; ok {
			return fmt.Errorf("service: submit to timestamp %d: %w", t, ErrAlreadySealed)
		}
		// The head timestamp is always admitted: its seal is what lets the
		// drain shrink the buffer, so holding it back for space would
		// deadlock a full buffer whose timestamps are all waiting on their
		// last producer. The event bound therefore governs read-ahead
		// timestamps, with at most one head timestamp of overage.
		fits := t == in.next ||
			in.pendingEvents == 0 ||
			in.pendingEvents+len(events) <= in.opts.MaxPendingEvents
		if t < in.next+in.opts.MaxAhead && fits {
			break
		}
		in.stats.BackpressureWaits++
		in.metrics.waits.Inc()
		in.space.Wait()
	}
	in.buf[t] = append(in.buf[t], events...)
	in.pendingEvents += len(events)
	in.stats.BatchesAccepted++
	in.stats.EventsAccepted += int64(len(events))
	in.metrics.batches.Inc()
	in.metrics.events.Add(int64(len(events)))
	in.syncOccupancy()
	return nil
}

// Seal declares timestamp t complete: no more events will arrive for it, and
// the publicly known active-user count is activeUsers. The drain processes a
// timestamp once it and every earlier timestamp are sealed (the per-
// timestamp barrier). Sealing an already-sealed or already-processed
// timestamp is an error; seals may arrive in any order.
func (in *Ingestor) Seal(t int, activeUsers int) error {
	if activeUsers < 0 {
		return fmt.Errorf("service: Seal(%d): negative active count %d", t, activeUsers)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	switch {
	case in.failed != nil:
		return in.failed
	case in.closed:
		return ErrClosed
	case t < in.next, t == in.next && in.processing:
		return ErrTimestampClosed
	}
	if _, ok := in.sealed[t]; ok {
		return ErrAlreadySealed
	}
	in.sealed[t] = activeUsers
	if t == in.next {
		in.work.Signal()
	}
	return nil
}

// drain is the single consumer: it pops the next sealed timestamp, orders
// its events by user ID, and hands them to the engine outside the lock.
func (in *Ingestor) drain() {
	defer close(in.done)
	in.mu.Lock()
	for {
		active, ok := in.sealed[in.next]
		if !ok {
			if in.closed {
				break
			}
			in.idle.Broadcast()
			in.work.Wait()
			continue
		}
		t := in.next
		events := in.buf[t]
		delete(in.buf, t)
		delete(in.sealed, t)
		in.processing = true
		in.mu.Unlock()

		// Deterministic processing order: ascending user ID, exactly the
		// order a sequential replay feeds. One event per user per timestamp
		// (duplicates are rejected by the engine), so the sort is total.
		sort.Slice(events, func(a, b int) bool { return events[a].User < events[b].User })
		err := in.eng.ProcessTimestamp(events, active)

		in.mu.Lock()
		in.processing = false
		in.next = t + 1
		in.pendingEvents -= len(events)
		in.stats.TimestampsProcessed++
		in.metrics.processed.Inc()
		if err != nil && in.failed == nil {
			in.failed = fmt.Errorf("service: engine failed at timestamp %d: %w", t, err)
			// A failed engine must never be fed another timestamp: the
			// error is sticky, so later sealed timestamps would only pile
			// results onto broken state. Discard everything buffered
			// (counted as dropped), free the buffer accounting, and wake
			// every blocked producer so it observes the sticky error
			// instead of waiting for space that will never drain.
			for ts, evs := range in.buf {
				in.stats.EventsDropped += int64(len(evs))
				in.metrics.dropped.Add(int64(len(evs)))
				delete(in.buf, ts)
			}
			for ts := range in.sealed {
				delete(in.sealed, ts)
			}
			in.pendingEvents = 0
		}
		in.syncOccupancy()
		in.space.Broadcast()
		in.idle.Broadcast()
	}
	// Closed with work drained: discard whatever was never sealed.
	for t, events := range in.buf {
		in.stats.EventsDropped += int64(len(events))
		in.metrics.dropped.Add(int64(len(events)))
		delete(in.buf, t)
	}
	in.pendingEvents = 0
	in.syncOccupancy()
	in.idle.Broadcast()
	in.mu.Unlock()
}

// Quiesce waits until the contiguous sealed prefix of the stream has been
// processed and no engine call is in flight, then runs fn while ingestion is
// paused — the hook for checkpointing the underlying engine (e.g.
// Framework.Snapshot). Concurrent Submit/Seal calls block for fn's duration.
//
// Timestamps sealed beyond a gap (an earlier timestamp still unsealed)
// cannot be drained by the barrier and are therefore NOT in the engine state
// fn observes; a checkpoint taken here covers exactly the timestamps before
// NextTimestamp, and callers that need sealed-means-durable must re-submit
// anything at or after that point when resuming.
func (in *Ingestor) Quiesce(fn func() error) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if in.failed != nil {
			return in.failed
		}
		_, ready := in.sealed[in.next]
		if !in.processing && !ready {
			break
		}
		in.idle.Wait()
	}
	return fn()
}

// Relayouter is an Engine that can migrate onto a new spatial
// discretization between timestamps — retrasyn.Framework implements it.
type Relayouter interface {
	Relayout(sp spatial.Discretizer) error
}

// Relayout quiesces the ingest stream — the contiguous sealed prefix is
// drained and no engine call is in flight — and migrates the underlying
// engine onto the new discretization, holding concurrent Submit/Seal calls
// for the duration. Events already buffered for future timestamps were
// discretized under the *current* layout; feeding them to a migrated engine
// would silently misattribute their cells, so Relayout refuses while any
// are pending — pause the producers (or wait for a submission lull) and
// retry. Also errors when the engine does not support relayout.
func (in *Ingestor) Relayout(sp spatial.Discretizer) error {
	return in.Quiesce(func() error {
		// Quiesce runs fn under in.mu, so reading the buffer here is safe.
		if in.pendingEvents > 0 {
			return fmt.Errorf("service: relayout with %d buffered events for future timestamps — their cells were discretized under the current layout; pause producers and retry", in.pendingEvents)
		}
		r, ok := in.eng.(Relayouter)
		if !ok {
			return fmt.Errorf("service: engine %T does not support relayout", in.eng)
		}
		return r.Relayout(sp)
	})
}

// Err returns the sticky engine error, if any.
func (in *Ingestor) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.failed
}

// Pending returns the buffered (unprocessed) event count.
func (in *Ingestor) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.pendingEvents
}

// NextTimestamp returns the next timestamp the engine expects.
func (in *Ingestor) NextTimestamp() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.next
}

// Stats returns a snapshot of the activity counters.
func (in *Ingestor) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Close shuts the ingestor down gracefully: it stops accepting submissions,
// processes every timestamp already sealed (in order, up to the first gap),
// discards events whose timestamp was never sealed, and waits for the drain
// to exit. Close is idempotent; it returns the sticky engine error, if any.
func (in *Ingestor) Close() error {
	in.mu.Lock()
	if !in.closed {
		in.closed = true
		in.work.Broadcast()
		in.space.Broadcast()
	}
	in.mu.Unlock()
	<-in.done
	return in.Err()
}
