package service_test

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"retrasyn"
	"retrasyn/internal/ldp"
	"retrasyn/internal/obs"
	"retrasyn/internal/service"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

const producers = 8

func testData(t *testing.T) (*retrasyn.Dataset, *retrasyn.Grid) {
	t.Helper()
	raw, bounds, err := retrasyn.StandardDataset("tdrive", 0.03, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err := retrasyn.NewGrid(4, bounds)
	if err != nil {
		t.Fatal(err)
	}
	return retrasyn.Discretize(raw, g), g
}

func newFramework(t *testing.T, g *retrasyn.Grid, orig *retrasyn.Dataset, shards int) *retrasyn.Framework {
	t.Helper()
	fw, err := retrasyn.New(retrasyn.Options{
		Grid:    g,
		Epsilon: 1.0,
		Window:  10,
		Lambda:  orig.Stats().AvgLength,
		Shards:  shards,
		Seed:    23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func equalDatasets(a, b *retrasyn.Dataset) bool {
	if a.T != b.T || len(a.Trajs) != len(b.Trajs) {
		return false
	}
	for i := range a.Trajs {
		if a.Trajs[i].Start != b.Trajs[i].Start || len(a.Trajs[i].Cells) != len(b.Trajs[i].Cells) {
			return false
		}
		for j, c := range a.Trajs[i].Cells {
			if b.Trajs[i].Cells[j] != c {
				return false
			}
		}
	}
	return true
}

// ingestConcurrently drives the whole stream through the ingestor from
// `producers` goroutines: producer p submits every event whose slice index
// ≡ p (mod producers), one batch per timestamp, and whichever producer
// completes a timestamp's fan-in seals it. Timestamps are therefore
// submitted and sealed in racy, interleaved order while the barrier keeps
// engine processing strictly sequential.
func ingestConcurrently(t *testing.T, in *service.Ingestor, events [][]retrasyn.Event, active []int) {
	t.Helper()
	fanin := make([]atomic.Int32, len(events))
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for ts := range events {
				var batch []trajectory.Event
				for i := p; i < len(events[ts]); i += producers {
					batch = append(batch, events[ts][i])
				}
				if err := in.Submit(ts, batch); err != nil {
					t.Errorf("producer %d: submit t=%d: %v", p, ts, err)
					return
				}
				if fanin[ts].Add(1) == producers {
					if err := in.Seal(ts, active[ts]); err != nil {
						t.Errorf("producer %d: seal t=%d: %v", p, ts, err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
}

// TestConcurrentIngestMatchesSequential is the acceptance test: 8 goroutines
// submit interleaved batches; the released synthetic database must be
// bit-identical to a sequential single-caller replay — for both the
// single-engine and the multi-shard coordinator paths.
func TestConcurrentIngestMatchesSequential(t *testing.T) {
	orig, g := testData(t)
	events, active := retrasyn.NewStreamEvents(orig)
	for _, shards := range []int{1, 3} {
		sequential := newFramework(t, g, orig, shards)
		for ts := range events {
			if err := sequential.ProcessTimestamp(events[ts], active[ts]); err != nil {
				t.Fatal(err)
			}
		}

		fw := newFramework(t, g, orig, shards)
		in := service.New(fw, service.Options{})
		ingestConcurrently(t, in, events, active)
		if err := in.Close(); err != nil {
			t.Fatal(err)
		}
		if got := in.NextTimestamp(); got != orig.T {
			t.Fatalf("shards=%d: processed up to t=%d, want %d", shards, got, orig.T)
		}
		if !equalDatasets(fw.Synthetic("syn"), sequential.Synthetic("syn")) {
			t.Fatalf("shards=%d: concurrent ingest release differs from sequential replay", shards)
		}
		total := 0
		for ts := range events {
			total += len(events[ts])
		}
		st := in.Stats()
		if st.EventsAccepted != int64(total) || st.EventsDropped != 0 {
			t.Fatalf("shards=%d: stats %+v inconsistent with stream (%d events)", shards, st, total)
		}
	}
}

// TestIngestPassesPackedRoundsThrough pins the ingest layer's
// representation-agnosticism: the test configuration sits on the packed side
// of the density crossover, so every collection round inside the engine
// folds bit-packed — and the concurrent ingest release must still match a
// sequential replay exactly, proving the ingestor hands batches through
// untouched rather than re-encoding anything on the way down.
func TestIngestPassesPackedRoundsThrough(t *testing.T) {
	orig, g := testData(t)
	dom := transition.NewDomain(g)
	if !ldp.PreferPacked(dom.Size(), 1.0) {
		t.Fatalf("test config (d=%d, ε=1) unexpectedly prefers sparse — pick a denser config", dom.Size())
	}
	events, active := retrasyn.NewStreamEvents(orig)
	sequential := newFramework(t, g, orig, 1)
	for ts := range events {
		if err := sequential.ProcessTimestamp(events[ts], active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	fw := newFramework(t, g, orig, 1)
	in := service.New(fw, service.Options{})
	ingestConcurrently(t, in, events, active)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if !equalDatasets(fw.Synthetic("syn"), sequential.Synthetic("syn")) {
		t.Fatal("packed-round ingest release differs from sequential replay")
	}
}

// TestIngestBackpressure forces a tiny buffer and out-of-order window; the
// run must neither deadlock nor diverge from the sequential release.
func TestIngestBackpressure(t *testing.T) {
	orig, g := testData(t)
	events, active := retrasyn.NewStreamEvents(orig)

	sequential := newFramework(t, g, orig, 1)
	for ts := range events {
		if err := sequential.ProcessTimestamp(events[ts], active[ts]); err != nil {
			t.Fatal(err)
		}
	}

	fw := newFramework(t, g, orig, 1)
	in := service.New(fw, service.Options{MaxAhead: 2, MaxPendingEvents: 32})
	ingestConcurrently(t, in, events, active)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if !equalDatasets(fw.Synthetic("syn"), sequential.Synthetic("syn")) {
		t.Fatal("backpressured ingest release differs from sequential replay")
	}
	if in.Stats().BackpressureWaits == 0 {
		t.Fatal("expected backpressure with a 32-event buffer")
	}
}

// TestIngestQuiesceCheckpoint checkpoints mid-stream under concurrent
// ingestion, restores into a fresh framework + ingestor, replays the rest,
// and demands a release bit-identical to the uninterrupted run.
func TestIngestQuiesceCheckpoint(t *testing.T) {
	orig, g := testData(t)
	events, active := retrasyn.NewStreamEvents(orig)
	opts := retrasyn.Options{
		Grid: g, Epsilon: 1.0, Window: 10, Lambda: orig.Stats().AvgLength, Seed: 23,
	}

	uninterrupted := newFramework(t, g, orig, 1)
	for ts := range events {
		if err := uninterrupted.ProcessTimestamp(events[ts], active[ts]); err != nil {
			t.Fatal(err)
		}
	}

	half := orig.T / 2
	fw := newFramework(t, g, orig, 1)
	in := service.New(fw, service.Options{})
	ingestConcurrently(t, in, events[:half], active[:half])
	var cp *retrasyn.Checkpoint
	if err := in.Quiesce(func() error {
		var err error
		cp, err = fw.Snapshot()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if cp.T != half {
		t.Fatalf("checkpoint at t=%d, want %d", cp.T, half)
	}

	restored, err := retrasyn.Restore(opts, cp)
	if err != nil {
		t.Fatal(err)
	}
	in2 := service.New(restored, service.Options{})
	if in2.NextTimestamp() != half {
		t.Fatalf("restored ingestor starts at t=%d, want %d", in2.NextTimestamp(), half)
	}
	var wg sync.WaitGroup
	for ts := half; ts < orig.T; ts++ {
		wg.Add(1)
		go func(ts int) {
			defer wg.Done()
			if err := in2.Submit(ts, events[ts]); err != nil {
				t.Errorf("submit t=%d: %v", ts, err)
				return
			}
			if err := in2.Seal(ts, active[ts]); err != nil {
				t.Errorf("seal t=%d: %v", ts, err)
			}
		}(ts)
	}
	wg.Wait()
	if err := in2.Close(); err != nil {
		t.Fatal(err)
	}
	if !equalDatasets(restored.Synthetic("syn"), uninterrupted.Synthetic("syn")) {
		t.Fatal("checkpoint-resumed release differs from uninterrupted run")
	}
}

// blockingEngine parks inside ProcessTimestamp until released, so tests can
// observe the ingestor mid-call.
type blockingEngine struct {
	t       int
	entered chan struct{}
	release chan struct{}
}

func (b *blockingEngine) ProcessTimestamp(events []trajectory.Event, active int) error {
	b.entered <- struct{}{}
	<-b.release
	b.t++
	return nil
}

func (b *blockingEngine) Timestamp() int { return b.t }

// TestSubmitDuringProcessingRejected pins the in-flight contract: once the
// drain has handed timestamp t to the engine, Submit(t)/Seal(t) must report
// the timestamp closed rather than silently buffering events that will
// never be processed.
func TestSubmitDuringProcessingRejected(t *testing.T) {
	eng := &blockingEngine{entered: make(chan struct{}), release: make(chan struct{})}
	in := service.New(eng, service.Options{})
	ev := []trajectory.Event{{User: 1}}
	if err := in.Submit(0, ev); err != nil {
		t.Fatal(err)
	}
	if err := in.Seal(0, 1); err != nil {
		t.Fatal(err)
	}
	<-eng.entered // drain is now inside ProcessTimestamp(0, ...)
	if err := in.Submit(0, ev); !errors.Is(err, service.ErrTimestampClosed) {
		t.Fatalf("submit to in-flight timestamp: %v", err)
	}
	if err := in.Seal(0, 1); !errors.Is(err, service.ErrTimestampClosed) {
		t.Fatalf("seal of in-flight timestamp: %v", err)
	}
	close(eng.release)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if p := in.Pending(); p != 0 {
		t.Fatalf("pending events leaked: %d", p)
	}
}

// TestIngestErrorsAndLifecycle covers the error contract: stale and
// duplicate submissions, engine-failure stickiness, and post-Close behavior.
func TestIngestErrorsAndLifecycle(t *testing.T) {
	orig, g := testData(t)
	fw := newFramework(t, g, orig, 1)
	in := service.New(fw, service.Options{})

	enter := retrasyn.EnterState(0)
	if err := in.Submit(0, []retrasyn.Event{{User: 1, State: enter}}); err != nil {
		t.Fatal(err)
	}
	if err := in.Seal(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := in.Seal(0, 1); !errors.Is(err, service.ErrAlreadySealed) && !errors.Is(err, service.ErrTimestampClosed) {
		t.Fatalf("duplicate seal: %v", err)
	}
	// Wait for t=0 to drain, then a stale submit must be rejected.
	if err := in.Quiesce(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := in.Submit(0, nil); !errors.Is(err, service.ErrTimestampClosed) {
		t.Fatalf("stale submit: %v", err)
	}

	// A duplicate user within one timestamp is an engine-level error; it
	// must stick and surface through Close.
	dup := []retrasyn.Event{{User: 2, State: enter}, {User: 2, State: enter}}
	if err := in.Submit(1, dup); err != nil {
		t.Fatal(err)
	}
	if err := in.Seal(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := in.Quiesce(func() error { return nil }); err == nil {
		t.Fatal("engine failure not sticky")
	}
	if err := in.Close(); err == nil {
		t.Fatal("Close did not report the engine failure")
	}

	in2 := service.New(newFramework(t, g, orig, 1), service.Options{})
	if err := in2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in2.Submit(0, nil); !errors.Is(err, service.ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if err := in2.Seal(0, 0); !errors.Is(err, service.ErrClosed) {
		t.Fatalf("seal after close: %v", err)
	}
	if err := in2.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestRelayoutHookDuringConcurrentIngest drives concurrent producers while
// the ingestor migrates the engine mid-stream through the Relayout quiesce
// hook. The migration target is layout-identical to the boot grid, so the
// identity-migration invariant makes the released database bit-identical to
// a plain sequential replay no matter where the barrier lands between the
// racing timestamps (run with -race).
func TestRelayoutHookDuringConcurrentIngest(t *testing.T) {
	orig, g := testData(t)
	events, active := retrasyn.NewStreamEvents(orig)

	seqFW := newFramework(t, g, orig, 1)
	for ts := range events {
		if err := seqFW.ProcessTimestamp(events[ts], active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	want := seqFW.Synthetic("seq")

	fw := newFramework(t, g, orig, 1)
	in := service.New(fw, service.Options{})
	clone, err := retrasyn.NewGrid(4, g.Bounds())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Race the migration against the producers; the hook refuses while
		// old-layout events sit in the buffer, so retry until it lands in a
		// submission lull (or after the stream drains).
		for {
			err := in.Relayout(clone)
			if err == nil || !strings.Contains(err.Error(), "buffered events") {
				done <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	ingestConcurrently(t, in, events, active)
	if err := <-done; err != nil {
		t.Fatalf("relayout hook: %v", err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if !equalDatasets(want, fw.Synthetic("seq")) {
		t.Fatal("identity migration through the ingestor changed the release")
	}
	if fw.LayoutGeneration() != 1 {
		t.Fatalf("engine generation = %d, want 1", fw.LayoutGeneration())
	}
}

// TestRelayoutHookRejectsPlainEngine pins the error for engines that cannot
// migrate.
func TestRelayoutHookRejectsPlainEngine(t *testing.T) {
	eng := &blockingEngine{release: make(chan struct{})}
	close(eng.release)
	in := service.New(eng, service.Options{})
	defer in.Close()
	g, err := retrasyn.NewGrid(2, retrasyn.Bounds{MaxX: 1, MaxY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Relayout(g); err == nil {
		t.Fatal("relayout accepted on an engine without migration support")
	}
}

// failingEngine fails every ProcessTimestamp call and counts how many it
// received.
type failingEngine struct {
	calls atomic.Int32
}

func (f *failingEngine) ProcessTimestamp([]trajectory.Event, int) error {
	f.calls.Add(1)
	return errors.New("shard wedged")
}

func (f *failingEngine) Timestamp() int { return 0 }

// TestEngineFailureStopsDrain: once the engine fails, the drain must never
// feed it another timestamp — the error is sticky and later rounds would
// only pile results onto broken state. Pre-fix the drain kept popping
// sealed timestamps into the failed engine (three calls here) and the
// buffered events vanished without being counted as dropped.
func TestEngineFailureStopsDrain(t *testing.T) {
	eng := &failingEngine{}
	in := service.New(eng, service.Options{})
	batch := func(users ...int) []trajectory.Event {
		evs := make([]trajectory.Event, len(users))
		for i, u := range users {
			evs[i].User = u
		}
		return evs
	}
	if err := in.Submit(0, batch(1)); err != nil {
		t.Fatal(err)
	}
	if err := in.Submit(1, batch(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := in.Submit(2, batch(4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	// Seal in reverse so the barrier releases everything at once: when the
	// t=0 seal lands, t=1 and t=2 are already sealed and ready — exactly the
	// shape where a drain that ignores the sticky error marches on.
	for _, ts := range []int{2, 1, 0} {
		if err := in.Seal(ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for in.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("engine failure never surfaced via Err")
		}
		time.Sleep(time.Millisecond)
	}
	if got := eng.calls.Load(); got != 1 {
		t.Fatalf("failed engine got %d ProcessTimestamp calls, want 1", got)
	}
	if st := in.Stats(); st.EventsDropped != 5 {
		t.Fatalf("EventsDropped = %d, want 5 (the t=1 and t=2 buffers)", st.EventsDropped)
	}
	if got := in.Pending(); got != 0 {
		t.Fatalf("Pending = %d after failure, want 0", got)
	}
	if err := in.Submit(3, batch(7)); err == nil || !strings.Contains(err.Error(), "shard wedged") {
		t.Fatalf("submit after failure = %v, want the sticky engine error", err)
	}
	if err := in.Close(); err == nil || !strings.Contains(err.Error(), "shard wedged") {
		t.Fatalf("Close = %v, want the sticky engine error", err)
	}
}

// nopEngine accepts everything instantly.
type nopEngine struct{ processed atomic.Int32 }

func (e *nopEngine) ProcessTimestamp([]trajectory.Event, int) error {
	e.processed.Add(1)
	return nil
}

func (e *nopEngine) Timestamp() int { return 0 }

// TestBackpressureWaitsCountsEpisodes: a Submit that blocks, wakes on a
// space broadcast and finds the buffer still full must count again —
// pre-fix a once-per-call flag froze the counter at its first wait, hiding
// sustained pressure from exactly the stats a replay harness watches.
func TestBackpressureWaitsCountsEpisodes(t *testing.T) {
	eng := &nopEngine{}
	in := service.New(eng, service.Options{MaxPendingEvents: 4})
	fill := make([]trajectory.Event, 4)
	for i := range fill {
		fill[i].User = i
	}
	// t=5 is read-ahead (next is 0) but the empty-buffer override admits it,
	// so the buffer is now exactly full with nothing the drain can process.
	if err := in.Submit(5, fill); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- in.Submit(6, []trajectory.Event{{User: 99}})
	}()
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("%s (BackpressureWaits = %d)", what, in.Stats().BackpressureWaits)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("second submit never blocked", func() bool {
		return in.Stats().BackpressureWaits >= 1
	})
	// Draining the empty t=0 broadcasts space without freeing any: the
	// blocked producer wakes, still does not fit, and must wait again.
	if err := in.Seal(0, 0); err != nil {
		t.Fatal(err)
	}
	waitFor("wait episodes after a wakeup go uncounted", func() bool {
		return in.Stats().BackpressureWaits >= 2
	})
	for ts := 1; ts <= 5; ts++ {
		if err := in.Seal(ts, 0); err != nil {
			t.Fatalf("seal t=%d: %v", ts, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked submit: %v", err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.processed.Load(); got != 6 {
		t.Fatalf("engine processed %d timestamps, want 6", got)
	}
}

// TestIngestMetricsMirrorStats: with a registry wired in, the ingest.*
// series must agree with the ingestor's own Stats ledger after a full
// concurrent replay, and the occupancy gauges must read empty once closed.
func TestIngestMetricsMirrorStats(t *testing.T) {
	orig, g := testData(t)
	events, active := retrasyn.NewStreamEvents(orig)
	reg := obs.NewRegistry()
	fw := newFramework(t, g, orig, 1)
	in := service.New(fw, service.Options{Metrics: reg})
	ingestConcurrently(t, in, events, active)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	for name, want := range map[string]int64{
		"ingest.batches_accepted":     st.BatchesAccepted,
		"ingest.events_accepted":      st.EventsAccepted,
		"ingest.timestamps_processed": st.TimestampsProcessed,
		"ingest.backpressure_waits":   st.BackpressureWaits,
		"ingest.events_dropped":       0,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d (stats %+v)", name, got, want, st)
		}
	}
	if st.EventsAccepted == 0 || st.TimestampsProcessed != int64(orig.T) {
		t.Fatalf("replay did not exercise the ingestor: %+v", st)
	}
	for _, name := range []string{"ingest.pending_events", "ingest.buffered_timestamps", "ingest.sealed_waiting"} {
		if got := reg.Gauge(name).Value(); got != 0 {
			t.Fatalf("%s = %v after close, want 0", name, got)
		}
	}
}

// TestIngestMetricsCountCloseDrops: events buffered for a never-sealed
// timestamp are purged on Close and must land in ingest.events_dropped.
func TestIngestMetricsCountCloseDrops(t *testing.T) {
	orig, g := testData(t)
	reg := obs.NewRegistry()
	in := service.New(newFramework(t, g, orig, 1), service.Options{Metrics: reg})
	if err := in.Submit(0, []trajectory.Event{{User: 1}, {User: 2}}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("ingest.pending_events").Value(); got != 2 {
		t.Fatalf("pending_events = %v, want 2", got)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ingest.events_dropped").Value(); got != 2 {
		t.Fatalf("events_dropped = %d, want 2", got)
	}
	if got := reg.Gauge("ingest.pending_events").Value(); got != 0 {
		t.Fatalf("pending_events = %v after close, want 0", got)
	}
}
