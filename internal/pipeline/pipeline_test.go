package pipeline

import (
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

func testDomain() *transition.Domain {
	g := grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	return transition.NewDomain(g)
}

func testReporters(dom *transition.Domain, n int, seed uint64) []trajectory.Event {
	g := dom.Space()
	rng := ldp.NewRand(seed, seed+1)
	events := make([]trajectory.Event, n)
	for i := range events {
		c := grid.Cell(rng.IntN(g.NumCells()))
		ns := g.Neighbors(c)
		events[i] = trajectory.Event{
			User:  i,
			State: transition.MoveState(c, ns[rng.IntN(len(ns))]),
		}
	}
	return events
}

// recorder is a stage spy shared across the four interfaces.
type recorder struct {
	log  *[]string
	name string
}

func (r recorder) Collect(ctx *StepContext) {
	*r.log = append(*r.log, r.name)
	ctx.Aggregate = ldp.NewAggregator(ldp.MustOUE(4, 1))
}
func (r recorder) Estimate(ctx *StepContext) { *r.log = append(*r.log, r.name) }
func (r recorder) Update(ctx *StepContext)   { *r.log = append(*r.log, r.name) }
func (r recorder) Step(ctx *StepContext)     { *r.log = append(*r.log, r.name) }

func TestPipelineStepOrder(t *testing.T) {
	var log []string
	p := Pipeline{
		Collector:   recorder{&log, "collect"},
		Estimator:   recorder{&log, "estimate"},
		Updater:     recorder{&log, "update"},
		Synthesizer: recorder{&log, "synthesize"},
	}
	ctx := &StepContext{T: 0, Timings: &Timings{}, Reporters: make([]trajectory.Event, 3)}
	p.Step(ctx)
	want := []string{"collect", "estimate", "update", "synthesize"}
	if len(log) != len(want) {
		t.Fatalf("stage log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("stage log %v, want %v", log, want)
		}
	}

	// A silent timestamp runs synthesis only.
	log = nil
	p.Step(&StepContext{T: 1, Timings: &Timings{}})
	if len(log) != 1 || log[0] != "synthesize" {
		t.Fatalf("silent-step log %v, want [synthesize]", log)
	}
}

func TestOUEPerUserCollectorShardingInvariance(t *testing.T) {
	dom := testDomain()
	reporters := testReporters(dom, 3000, 7)
	run := func(workers int) []float64 {
		c := &OUEPerUserCollector{Dom: dom, Rng: ldp.NewRand(11, 13), Workers: workers}
		ctx := &StepContext{
			T: 0, Epsilon: 1.0, Reporters: reporters, Timings: &Timings{},
		}
		c.Collect(ctx)
		if ctx.Aggregate.N() != len(reporters) {
			t.Fatalf("workers=%d: N=%d", workers, ctx.Aggregate.N())
		}
		if !(ctx.ErrUpd > 0) {
			t.Fatalf("workers=%d: ErrUpd=%v", workers, ctx.ErrUpd)
		}
		return ctx.Aggregate.EstimateAll()
	}
	seq := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("workers=%d: estimate[%d]=%v, want %v", workers, i, got[i], seq[i])
			}
		}
	}
}

// TestOUEPerUserCollectorPackedMatchesSparse pins the collector's per-round
// representation switch: at test scale PreferPacked must choose the packed
// path, and forcing the sparse path with the same seed must produce the
// exact same estimates — the representation changes the fold, not one bit
// of the outcome.
func TestOUEPerUserCollectorPackedMatchesSparse(t *testing.T) {
	dom := testDomain()
	const eps = 1.0
	if !ldp.PreferPacked(dom.Size(), eps) {
		t.Fatalf("PreferPacked(%d, %v) = false; test config no longer exercises the packed path", dom.Size(), eps)
	}
	reporters := testReporters(dom, 3000, 21)
	run := func(forceSparse bool, workers int) []float64 {
		c := &OUEPerUserCollector{
			Dom: dom, Rng: ldp.NewRand(17, 19),
			Workers: workers, ForceSparse: forceSparse,
		}
		ctx := &StepContext{
			T: 0, Epsilon: eps, Reporters: reporters, Timings: &Timings{},
		}
		c.Collect(ctx)
		return ctx.Aggregate.EstimateAll()
	}
	sparse := run(true, 1)
	for _, workers := range []int{1, 2, 8} {
		packed := run(false, workers)
		for i := range sparse {
			if packed[i] != sparse[i] {
				t.Fatalf("workers=%d: packed estimate[%d]=%v, sparse %v", workers, i, packed[i], sparse[i])
			}
		}
	}
}

func TestDMUUpdaterBootstrapThenPartial(t *testing.T) {
	dom := testDomain()
	model := mobility.NewModel(dom)
	u := &DMUUpdater{Model: model}
	if u.Bootstrapped() {
		t.Fatal("fresh updater claims bootstrapped")
	}

	est := make([]float64, dom.Size())
	for i := range est {
		est[i] = 1 / float64(dom.Size())
	}
	ctx := &StepContext{Estimates: est, ErrUpd: 1e-6, Timings: &Timings{}}
	u.Update(ctx)
	if !u.Bootstrapped() {
		t.Fatal("first update did not bootstrap")
	}
	if ctx.Result.NumSignificant != dom.Size() {
		t.Fatalf("bootstrap NumSignificant=%d, want %d", ctx.Result.NumSignificant, dom.Size())
	}
	if ctx.SigRatio != 0 {
		t.Fatalf("bootstrap damped Eq. 10: SigRatio=%v", ctx.SigRatio)
	}

	// Second round with a tiny change and tiny error: DMU selects a subset.
	est2 := make([]float64, dom.Size())
	copy(est2, est)
	est2[0] += 0.5
	ctx2 := &StepContext{Estimates: est2, ErrUpd: 1e-6, Timings: &Timings{}}
	u.Update(ctx2)
	if ctx2.Result.NumSignificant == 0 || ctx2.Result.NumSignificant >= dom.Size() {
		t.Fatalf("DMU NumSignificant=%d, want partial selection", ctx2.Result.NumSignificant)
	}
	if model.Freq(0) != est2[0] {
		t.Fatalf("significant state not refreshed: %v", model.Freq(0))
	}
}

func TestDMUUpdaterAllUpdate(t *testing.T) {
	dom := testDomain()
	u := &DMUUpdater{Model: mobility.NewModel(dom), DisableDMU: true}
	est := make([]float64, dom.Size())
	ctx := &StepContext{Estimates: est, ErrUpd: 1e-6, Timings: &Timings{}}
	u.Update(ctx) // bootstrap
	ctx2 := &StepContext{Estimates: est, ErrUpd: 1e-6, Timings: &Timings{}}
	u.Update(ctx2)
	if ctx2.Result.NumSignificant != dom.Size() {
		t.Fatalf("AllUpdate NumSignificant=%d, want %d", ctx2.Result.NumSignificant, dom.Size())
	}
	if ctx2.SigRatio != 1 {
		t.Fatalf("AllUpdate SigRatio=%v, want 1", ctx2.SigRatio)
	}
}

func TestApportion(t *testing.T) {
	cases := []struct {
		total   int
		weights []int
		want    []int
	}{
		{10, []int{4, 6}, []int{4, 6}},          // total == Σw → exact
		{0, []int{3, 3}, []int{0, 0}},           // nothing to split
		{7, []int{0, 0, 0}, []int{3, 2, 2}},     // all-zero weights → even
		{5, []int{1, 1}, nil},                   // proportional, sums to 5
		{100, []int{1, 0, 3}, []int{25, 0, 75}}, // zero weight gets zero
	}
	for _, tc := range cases {
		got := apportion(tc.total, tc.weights)
		sum := 0
		for _, v := range got {
			sum += v
		}
		if sum != tc.total {
			t.Fatalf("apportion(%d, %v) = %v: sums to %d", tc.total, tc.weights, got, sum)
		}
		if tc.want != nil {
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("apportion(%d, %v) = %v, want %v", tc.total, tc.weights, got, tc.want)
				}
			}
		}
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	c, err := NewCoordinator(make([]Runner, 4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for u := 0; u < 10000; u++ {
		s := c.ShardOf(u)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%d) = %d", u, s)
		}
		if s != c.ShardOf(u) {
			t.Fatalf("ShardOf(%d) unstable", u)
		}
		counts[s]++
	}
	// The splitmix fan-out should be roughly balanced.
	for s, n := range counts {
		if n < 2000 || n > 3000 {
			t.Fatalf("shard %d holds %d of 10000 users — unbalanced %v", s, n, counts)
		}
	}
}
