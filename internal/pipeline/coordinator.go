package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// Runner is one independent pipeline instance the Coordinator drives —
// typically a core.Engine. Each Runner owns its own randomness, model and
// synthesizer; the Coordinator never shares state between them.
type Runner interface {
	ProcessTimestamp(t int, events []trajectory.Event, activeCount int) (StepResult, error)
	Synthetic(name string, T int) *trajectory.Dataset
	Stats() RunStats
}

// Coordinator fans a heavy event stream out across P independent pipeline
// instances — one per user shard (or tenant stream) — runs them in parallel
// every timestamp, and merges the released synthetic databases. Each user's
// reports always land on the same shard, so every shard sees a coherent
// sub-population and its w-event guarantee holds per user exactly as in the
// single-stream deployment; the merged release is the union of the per-shard
// releases.
//
// Coordinator is not safe for concurrent use by multiple goroutines; it owns
// the per-timestamp fan-out/fan-in itself.
type Coordinator struct {
	shards []Runner
	bufs   [][]trajectory.Event
}

// NewCoordinator wraps the given pipeline instances. At least one is
// required.
func NewCoordinator(shards []Runner) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("pipeline: Coordinator needs at least one shard")
	}
	return &Coordinator{
		shards: shards,
		bufs:   make([][]trajectory.Event, len(shards)),
	}, nil
}

// NumShards returns P.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Checkpointable is a Runner whose full processing state can be exported as
// an opaque blob and restored later. The blob format belongs to the Runner;
// the Coordinator only moves it around.
type Checkpointable interface {
	SnapshotState() (json.RawMessage, error)
	RestoreState(json.RawMessage) error
}

// Snapshot exports every shard's state. All shards must be Checkpointable
// and quiescent (no ProcessTimestamp in flight — the Coordinator's own
// fan-out always is between calls).
func (c *Coordinator) Snapshot() ([]json.RawMessage, error) {
	states := make([]json.RawMessage, len(c.shards))
	for i, sh := range c.shards {
		cp, ok := sh.(Checkpointable)
		if !ok {
			return nil, fmt.Errorf("pipeline: shard %d (%T) is not checkpointable", i, sh)
		}
		st, err := cp.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("pipeline: snapshot shard %d: %w", i, err)
		}
		states[i] = st
	}
	return states, nil
}

// Restore loads per-shard states captured by Snapshot into the current
// shards. The shard count must match the snapshot's.
func (c *Coordinator) Restore(states []json.RawMessage) error {
	if len(states) != len(c.shards) {
		return fmt.Errorf("pipeline: restore with %d shard states onto %d shards", len(states), len(c.shards))
	}
	for i, sh := range c.shards {
		cp, ok := sh.(Checkpointable)
		if !ok {
			return fmt.Errorf("pipeline: shard %d (%T) is not checkpointable", i, sh)
		}
		if err := cp.RestoreState(states[i]); err != nil {
			return fmt.Errorf("pipeline: restore shard %d: %w", i, err)
		}
	}
	return nil
}

// Relayouter is a Runner that can migrate onto a new spatial discretization
// between timestamps — core.Engine implements it.
type Relayouter interface {
	Relayout(sp spatial.Discretizer) error
}

// Relayout is the coordinator-wide migration barrier: it switches every
// shard onto the new discretization between two timestamps, so the whole
// fleet is always on one layout and the merged release stays coherent. The
// Coordinator is externally synchronized (no ProcessTimestamp runs
// concurrently with Relayout), which makes the switch atomic with respect to
// the stream. All shards are checked up front so an unsupported shard never
// leaves the fleet half-migrated; a shard failing mid-switch is fatal to the
// coordinator and reported as an error.
func (c *Coordinator) Relayout(sp spatial.Discretizer) error {
	rs := make([]Relayouter, len(c.shards))
	for i, sh := range c.shards {
		r, ok := sh.(Relayouter)
		if !ok {
			return fmt.Errorf("pipeline: shard %d (%T) does not support relayout", i, sh)
		}
		rs[i] = r
	}
	for i, r := range rs {
		if err := r.Relayout(sp); err != nil {
			return fmt.Errorf("pipeline: relayout shard %d: %w", i, err)
		}
	}
	return nil
}

// ShardOf maps a user ID onto its shard with a splitmix64 finalizer, so
// consecutive user IDs spread evenly instead of clumping.
func (c *Coordinator) ShardOf(user int) int {
	x := uint64(user) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(c.shards)))
}

// ProcessTimestamp fans the timestamp's events out by user ID, runs every
// shard concurrently, and returns the per-shard step results. activeCount is
// apportioned to the shards proportionally to their present (non-quitting)
// users, so the merged synthetic release tracks the global population.
func (c *Coordinator) ProcessTimestamp(t int, events []trajectory.Event, activeCount int) ([]StepResult, error) {
	for i := range c.bufs {
		c.bufs[i] = c.bufs[i][:0]
	}
	present := make([]int, len(c.shards))
	for _, ev := range events {
		s := c.ShardOf(ev.User)
		c.bufs[s] = append(c.bufs[s], ev)
		if ev.State.Kind != transition.Quit {
			present[s]++
		}
	}
	targets := apportion(activeCount, present)

	results := make([]StepResult, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Runner) {
			defer wg.Done()
			results[i], errs[i] = sh.ProcessTimestamp(t, c.bufs[i], targets[i])
		}(i, sh)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Run replays a whole recorded stream and returns the merged release.
func (c *Coordinator) Run(stream *trajectory.Stream, name string) (*trajectory.Dataset, RunStats, error) {
	for t := 0; t < stream.T; t++ {
		if _, err := c.ProcessTimestamp(t, stream.At(t), stream.Active[t]); err != nil {
			return nil, c.Stats(), err
		}
	}
	return c.Synthetic(name, stream.T), c.Stats(), nil
}

// Synthetic merges the shards' current releases into one database.
func (c *Coordinator) Synthetic(name string, T int) *trajectory.Dataset {
	out := &trajectory.Dataset{Name: name, T: T}
	for _, sh := range c.shards {
		out.Trajs = append(out.Trajs, sh.Synthetic(name, T).Trajs...)
	}
	return out
}

// Stats sums the shards' run statistics. Timestamps and Relayouts are
// per-shard counts (every shard sees every timestamp and every migration
// barrier), not sums.
func (c *Coordinator) Stats() RunStats {
	var out RunStats
	for i, sh := range c.shards {
		st := sh.Stats()
		if i == 0 {
			out.Timestamps = st.Timestamps
			out.Relayouts = st.Relayouts
		}
		out.merge(st)
	}
	return out
}

// apportion splits total into len(weights) integer parts proportional to
// weights, by largest remainder with ties broken toward lower indices. When
// total equals the weight sum the split is exactly the weights; an all-zero
// weight vector splits evenly.
func apportion(total int, weights []int) []int {
	n := len(weights)
	out := make([]int, n)
	if total <= 0 || n == 0 {
		return out
	}
	sum := 0
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		base := total / n
		for i := range out {
			out[i] = base
			if i < total%n {
				out[i]++
			}
		}
		return out
	}
	type rem struct {
		idx  int
		frac int // numerator of the fractional remainder, scale sum
	}
	rems := make([]rem, n)
	assigned := 0
	for i, w := range weights {
		q := total * w
		out[i] = q / sum
		assigned += out[i]
		rems[i] = rem{idx: i, frac: q % sum}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; i < total-assigned; i++ {
		out[rems[i%n].idx]++
	}
	return out
}
