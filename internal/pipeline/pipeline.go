// Package pipeline decomposes the RetraSyn per-timestamp loop (paper
// Algorithm 1) into explicit, composable stages:
//
//	Collector    — one frequency-oracle round over the sampled reporters
//	Estimator    — debiasing (and optional post-processing) of the aggregate
//	ModelUpdater — the DMU / AllUpdate refresh of the global mobility model
//	Synthesizer  — the real-time synthetic-database step
//
// A StepContext threads one timestamp's allocation decision, reporters,
// estimates, ledger entries and timings through the stages. The same stages
// back the in-process engine (internal/core), the networked curator
// (internal/remote) and the multi-shard Coordinator, so sharding, batching
// and alternative backends compose without touching the protocol logic.
//
// Single-shard sequential execution is bit-identical to the original
// monolithic engine: the stages consume the shared random source in exactly
// the order the monolith did (sampling → perturbation/aggregate draw →
// synthesis), which the core package's golden tests pin.
package pipeline

import (
	"time"

	"retrasyn/internal/allocation"
	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
)

// Rand is the random source the stages draw from: the ldp primitives'
// interface plus the raw 64-bit stream OLH hash seeds need. *rand.Rand
// (math/rand/v2) satisfies it.
type Rand interface {
	ldp.Rand
	Uint64() uint64
}

// StepResult reports what one processed timestamp did.
type StepResult struct {
	T              int
	Reported       bool
	NumReporters   int
	Epsilon        float64 // per-user budget spent by reporters
	NumSignificant int     // |S*| of the DMU selection (domain size at init)
	Packed         bool    // collection round used the bit-packed representation
}

// Timings accumulates per-component wall time, matching the paper's Table V
// decomposition.
type Timings struct {
	UserSide          time.Duration // client-side perturbation
	ModelConstruction time.Duration // aggregation and debiasing
	DMU               time.Duration // significant-transition selection + update
	Synthesis         time.Duration // generation and size adjustment
}

// Total sums the components.
func (c Timings) Total() time.Duration {
	return c.UserSide + c.ModelConstruction + c.DMU + c.Synthesis
}

// RunStats aggregates a pipeline run.
type RunStats struct {
	Timestamps   int
	Rounds       int // timestamps with a collection round
	TotalReports int // user reports collected
	Relayouts    int // layout migrations (online re-discretization)
	Timings      Timings
}

// merge folds another run's statistics in (used by the Coordinator).
func (s *RunStats) merge(o RunStats) {
	s.Rounds += o.Rounds
	s.TotalReports += o.TotalReports
	s.Timings.UserSide += o.Timings.UserSide
	s.Timings.ModelConstruction += o.Timings.ModelConstruction
	s.Timings.DMU += o.Timings.DMU
	s.Timings.Synthesis += o.Timings.Synthesis
}

// StepContext carries one timestamp through the stages. The driving engine
// fills the allocation section before Step; the stages fill the rest.
type StepContext struct {
	T           int
	ActiveCount int // publicly known active-user count (synthesis target)

	// Decision is the allocation strategy's raw verdict for this timestamp,
	// carried for observability and for stages that need the allocation
	// itself (portions, budgets). It is informational: whether the
	// collection stages run is decided solely by Reporters being non-empty
	// (Collecting()) — a Report decision over an empty pool stays silent.
	Decision allocation.Decision
	// Reporters are the sampled events whose transition states the
	// Collector perturbs and aggregates; empty on silent timestamps.
	Reporters []trajectory.Event
	// Epsilon is the per-reporter budget of this round (the whole ε under
	// population division, the strategy's ε_t under budget division).
	Epsilon float64
	// LedgerIDs are the reporting users whose expenditure the privacy
	// ledger records for this round.
	LedgerIDs []int

	// Aggregate is the raw frequency-oracle aggregate the Collector
	// produced.
	Aggregate Aggregate
	// ErrUpd is the oracle's per-state estimation variance at this round's
	// budget and population — the err_upd of the DMU comparison (Eq. 7).
	ErrUpd float64
	// Estimates is the debiased (and optionally post-processed) frequency
	// vector the Estimator produced.
	Estimates []float64
	// SigRatio is |S*|/|S| of the DMU selection, feeding Eq. 10's damping.
	SigRatio float64

	// Result accumulates what the step did.
	Result StepResult
	// Timings points at the run-level timing accumulator.
	Timings *Timings
}

// Collecting reports whether this step runs a collection round.
func (ctx *StepContext) Collecting() bool { return len(ctx.Reporters) > 0 }

// Aggregate is the curator-side view of one collection round: enough to
// debias frequencies, whatever the oracle protocol. ldp.Aggregator,
// ldp.OLHAggregator and ldp.GRRAggregator all satisfy it.
type Aggregate interface {
	// N is the number of reports aggregated.
	N() int
	// EstimateAll returns the debiased frequency estimates for the domain.
	EstimateAll() []float64
}

// Collector runs one frequency-oracle round over ctx.Reporters at budget
// ctx.Epsilon, leaving the raw aggregate and its variance in ctx.
type Collector interface {
	Collect(ctx *StepContext)
}

// Estimator turns the raw aggregate into the frequency-estimate vector the
// model update consumes.
type Estimator interface {
	Estimate(ctx *StepContext)
}

// ModelUpdater refreshes the global mobility model from ctx.Estimates.
type ModelUpdater interface {
	Update(ctx *StepContext)
}

// Synthesizer advances the released synthetic database to ctx.T.
type Synthesizer interface {
	Step(ctx *StepContext)
}

// Pipeline chains the four stages for one stream. It is not safe for
// concurrent use; the Coordinator runs one Pipeline-backed engine per shard.
type Pipeline struct {
	Collector   Collector
	Estimator   Estimator
	Updater     ModelUpdater
	Synthesizer Synthesizer
}

// Step processes one timestamp: the collection stages run only when the
// allocation decision sampled reporters; synthesis runs unconditionally.
func (p *Pipeline) Step(ctx *StepContext) {
	if ctx.Collecting() {
		p.Collector.Collect(ctx)
		p.Estimator.Estimate(ctx)
		p.Updater.Update(ctx)
	}
	p.Synthesizer.Step(ctx)
}
