package pipeline_test

// Integration tests of the multi-shard Coordinator over real core.Engine
// instances (an external test package: core imports pipeline, so the
// engine-backed tests must live outside package pipeline).

import (
	"fmt"
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/core"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/pipeline"
	"retrasyn/internal/trajectory"
)

func testGrid() *grid.System {
	return grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

// walkDataset builds a random-walk cell dataset with entering/quitting
// churn, mirroring the core package's test generator.
func walkDataset(g *grid.System, users, T int, meanLen float64, seed uint64) *trajectory.Dataset {
	rng := ldp.NewRand(seed, seed+1)
	d := &trajectory.Dataset{Name: "walk", T: T}
	for u := 0; u < users; u++ {
		start := rng.IntN(T)
		c := grid.Cell(rng.IntN(g.NumCells()))
		cells := []grid.Cell{c}
		for t := start + 1; t < T; t++ {
			if rng.Float64() < 1/meanLen {
				break
			}
			ns := g.Neighbors(c)
			c = ns[rng.IntN(len(ns))]
			cells = append(cells, c)
		}
		d.Trajs = append(d.Trajs, trajectory.CellTrajectory{Start: start, Cells: cells})
	}
	return d
}

func newCoordinator(t *testing.T, g *grid.System, shards int, seed uint64) *pipeline.Coordinator {
	t.Helper()
	runners := make([]pipeline.Runner, shards)
	for i := range runners {
		e, err := core.New(core.Options{
			Space:    g,
			Epsilon:  1.0,
			W:        5,
			Division: allocation.Population,
			Lambda:   6,
			Seed:     seed + uint64(i)*0x9e3779b97f4a7c15,
		})
		if err != nil {
			t.Fatal(err)
		}
		runners[i] = e
	}
	c, err := pipeline.NewCoordinator(runners)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoordinatorMergeTracksGlobalPopulation(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 500, 40, 10, 3)
	stream := trajectory.NewStream(data)
	for _, shards := range []int{1, 2, 4, 7} {
		c := newCoordinator(t, g, shards, 42)
		syn, stats, err := c.Run(stream, "syn")
		if err != nil {
			t.Fatal(err)
		}
		if err := syn.Validate(g, true); err != nil {
			t.Fatalf("shards=%d: invalid merged release: %v", shards, err)
		}
		// Merge correctness: the merged release must track the global
		// per-timestamp population exactly like a single-shard run does
		// (every shard matches its apportioned target, and the targets sum
		// to the global active count).
		synCounts := syn.ActiveCounts()
		for ts, want := range stream.Active {
			if synCounts[ts] != want {
				t.Fatalf("shards=%d t=%d: merged active %d, real %d", shards, ts, synCounts[ts], want)
			}
		}
		if stats.Timestamps != data.T {
			t.Fatalf("shards=%d: Timestamps=%d", shards, stats.Timestamps)
		}
		if stats.Rounds == 0 || stats.TotalReports == 0 {
			t.Fatalf("shards=%d: no collection: %+v", shards, stats)
		}
	}
}

func TestCoordinatorDeterministicUnderFixedSeed(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 300, 30, 8, 5)
	stream := trajectory.NewStream(data)
	run := func() *trajectory.Dataset {
		c := newCoordinator(t, g, 4, 7)
		syn, _, err := c.Run(stream, "syn")
		if err != nil {
			t.Fatal(err)
		}
		return syn
	}
	a, b := run(), run()
	if len(a.Trajs) != len(b.Trajs) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a.Trajs), len(b.Trajs))
	}
	for i := range a.Trajs {
		if a.Trajs[i].Start != b.Trajs[i].Start || a.Trajs[i].Len() != b.Trajs[i].Len() {
			t.Fatalf("non-deterministic stream %d", i)
		}
		for j := range a.Trajs[i].Cells {
			if a.Trajs[i].Cells[j] != b.Trajs[i].Cells[j] {
				t.Fatalf("non-deterministic cell %d of stream %d", j, i)
			}
		}
	}
}

func TestCoordinatorSingleShardMatchesBareEngine(t *testing.T) {
	// A 1-shard coordinator is the sequential engine with fan-out overhead
	// only: its release must be bit-identical to driving the engine
	// directly.
	g := testGrid()
	data := walkDataset(g, 250, 30, 8, 11)
	stream := trajectory.NewStream(data)

	opts := core.Options{
		Space: g, Epsilon: 1.0, W: 5,
		Division: allocation.Population, Lambda: 6, Seed: 42,
	}
	bare, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bare.Run(stream, "syn")

	c := newCoordinator(t, g, 1, 42)
	got, _, err := c.Run(stream, "syn")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trajs) != len(want.Trajs) {
		t.Fatalf("sizes differ: %d vs %d", len(got.Trajs), len(want.Trajs))
	}
	for i := range want.Trajs {
		if got.Trajs[i].Start != want.Trajs[i].Start {
			t.Fatalf("stream %d start differs", i)
		}
		for j := range want.Trajs[i].Cells {
			if got.Trajs[i].Cells[j] != want.Trajs[i].Cells[j] {
				t.Fatalf("stream %d cell %d differs", i, j)
			}
		}
	}
}

func TestCoordinatorUsersStayOnTheirShard(t *testing.T) {
	g := testGrid()
	c := newCoordinator(t, g, 4, 13)
	data := walkDataset(g, 200, 20, 8, 17)
	stream := trajectory.NewStream(data)
	// Every user's events must land on ShardOf(user) at every timestamp —
	// the per-user w-event accounting depends on it.
	for id := range data.Trajs {
		want := c.ShardOf(id)
		if got := c.ShardOf(id); got != want {
			t.Fatalf("user %d moved shards: %d vs %d", id, got, want)
		}
	}
	if _, _, err := c.Run(stream, "syn"); err != nil {
		t.Fatal(err)
	}
	// Per-shard w-event invariant: no user exceeds ε in any w-window on its
	// shard (checked through the merged stats being populated; the per-shard
	// ledgers are engine-internal and covered by core's tests).
	if c.Stats().TotalReports == 0 {
		t.Fatal("no reports across shards")
	}
}

func TestCoordinatorPropagatesShardErrors(t *testing.T) {
	g := testGrid()
	c := newCoordinator(t, g, 2, 19)
	if _, err := c.ProcessTimestamp(3, nil, 0); err != nil {
		t.Fatal(err)
	}
	_, err := c.ProcessTimestamp(1, nil, 0)
	if err == nil {
		t.Fatal("out-of-order timestamp did not error")
	}
}

func TestCoordinatorRequiresShards(t *testing.T) {
	if _, err := pipeline.NewCoordinator(nil); err == nil {
		t.Fatal("empty coordinator accepted")
	}
}

func ExampleCoordinator() {
	g := grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	runners := make([]pipeline.Runner, 4)
	for i := range runners {
		runners[i], _ = core.New(core.Options{
			Space: g, Epsilon: 1.0, W: 5,
			Division: allocation.Population, Lambda: 6,
			Seed: 1 + uint64(i),
		})
	}
	coord, _ := pipeline.NewCoordinator(runners)
	data := walkDataset(g, 400, 30, 8, 23)
	syn, stats, _ := coord.Run(trajectory.NewStream(data), "merged")
	fmt.Println(syn.T == data.T, stats.Timestamps == data.T, len(syn.Trajs) > 0)
	// Output: true true true
}

// stubRunner is a Runner without relayout support.
type stubRunner struct{}

func (stubRunner) ProcessTimestamp(t int, events []trajectory.Event, activeCount int) (pipeline.StepResult, error) {
	return pipeline.StepResult{T: t}, nil
}
func (stubRunner) Synthetic(name string, T int) *trajectory.Dataset {
	return &trajectory.Dataset{Name: name, T: T}
}
func (stubRunner) Stats() pipeline.RunStats { return pipeline.RunStats{} }

// TestCoordinatorRelayoutBarrier migrates every engine shard onto a
// layout-identical grid between timestamps: the switch must reach all
// shards, stay mid-stream processable, and — per the identity-migration
// invariant — leave the merged release bit-identical to a never-migrated
// coordinator.
func TestCoordinatorRelayoutBarrier(t *testing.T) {
	g := testGrid()
	data := walkDataset(g, 260, 24, 7, 77)
	stream := trajectory.NewStream(data)
	run := func(migrate bool) *trajectory.Dataset {
		c := newCoordinator(t, g, 3, 500)
		for ts := 0; ts < stream.T; ts++ {
			if migrate && ts == stream.T/2 {
				clone := grid.MustNew(4, g.Bounds())
				if err := c.Relayout(clone); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := c.ProcessTimestamp(ts, stream.At(ts), stream.Active[ts]); err != nil {
				t.Fatal(err)
			}
		}
		return c.Synthetic("merged", stream.T)
	}
	plain, migrated := run(false), run(true)
	if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", migrated) {
		t.Fatal("identity migration through the coordinator changed the merged release")
	}

	// Stats count one barrier fleet-wide, not one per shard.
	c := newCoordinator(t, g, 3, 500)
	if err := c.Relayout(grid.MustNew(4, g.Bounds())); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Relayouts; got != 1 {
		t.Fatalf("coordinator stats report %d relayouts, want 1", got)
	}

	// A fleet with a non-migratable shard is rejected before any shard
	// switches.
	mixed, err := pipeline.NewCoordinator([]pipeline.Runner{stubRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := mixed.Relayout(g); err == nil {
		t.Fatal("relayout accepted on a shard without migration support")
	}
}
