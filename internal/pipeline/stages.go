package pipeline

import (
	"time"

	"retrasyn/internal/dmu"
	"retrasyn/internal/ldp"
	"retrasyn/internal/mobility"
	"retrasyn/internal/synthesis"
	"retrasyn/internal/transition"
)

// Concrete stages. Each mirrors one section of the original monolithic
// ProcessTimestamp, preserving the random-draw order exactly so single-shard
// sequential runs stay bit-identical to the seed engine.

// OUEPerUserCollector is the faithful per-user OUE path: every sampled
// user's report is individually randomized, then the curator folds the
// round. Per round it picks the report representation by domain size and ε
// (ldp.PreferPacked): dense rounds perturb straight into a bit-packed batch
// and fold with the word-parallel popcount network; sparse rounds keep the
// index-list fold, sharded across Workers goroutines when large. Both paths
// consume the random stream identically and integer addition commutes, so
// the estimates are bit-identical whichever representation a round takes.
type OUEPerUserCollector struct {
	Dom *transition.Domain
	Rng Rand
	// Workers shards the curator-side aggregation fold; ≤ 1 keeps the fold
	// sequential.
	Workers int
	// ForceSparse disables the packed fast path (testing/ablation hook).
	ForceSparse bool
}

// Collect implements Collector.
func (c *OUEPerUserCollector) Collect(ctx *StepContext) {
	oracle := ldp.MustOUE(c.Dom.Size(), ctx.Epsilon)
	if !c.ForceSparse && ldp.PreferPacked(c.Dom.Size(), ctx.Epsilon) {
		c.collectPacked(ctx, oracle)
		return
	}
	reports := make([][]int, len(ctx.Reporters))
	start := time.Now()
	for i, ev := range ctx.Reporters {
		idx, _ := c.Dom.Index(ev.State)
		reports[i] = oracle.Perturb(c.Rng, idx)
	}
	ctx.Timings.UserSide += time.Since(start)

	start = time.Now()
	agg := ldp.NewAggregator(oracle)
	agg.AddReports(reports, c.Workers)
	ctx.Aggregate = agg
	ctx.ErrUpd = oracle.Variance(len(ctx.Reporters))
	ctx.Timings.ModelConstruction += time.Since(start)
}

// collectPacked is the dense-round path: perturbation writes each report's
// bits in place into one contiguous packed batch, and the fold counts all
// columns of a word at once.
func (c *OUEPerUserCollector) collectPacked(ctx *StepContext, oracle *ldp.OUE) {
	ctx.Result.Packed = true
	batch := ldp.NewPackedBatch(c.Dom.Size(), len(ctx.Reporters))
	start := time.Now()
	for _, ev := range ctx.Reporters {
		idx, _ := c.Dom.Index(ev.State)
		oracle.PerturbPackedInto(c.Rng, idx, batch.Grow())
	}
	ctx.Timings.UserSide += time.Since(start)

	start = time.Now()
	agg := ldp.NewAggregator(oracle)
	agg.AddPackedBatch(batch, c.Workers)
	ctx.Aggregate = agg
	ctx.ErrUpd = oracle.Variance(len(ctx.Reporters))
	ctx.Timings.ModelConstruction += time.Since(start)
}

// OUEAggregateCollector samples the aggregate count vector directly
// (statistically identical to the per-user path; see ldp.AggregateOracle),
// making paper-scale populations tractable.
type OUEAggregateCollector struct {
	Dom *transition.Domain
	Rng Rand

	trueCounts []int // scratch reused across rounds
}

// Collect implements Collector.
func (c *OUEAggregateCollector) Collect(ctx *StepContext) {
	oracle := ldp.MustOUE(c.Dom.Size(), ctx.Epsilon)
	start := time.Now()
	if c.trueCounts == nil {
		c.trueCounts = make([]int, c.Dom.Size())
	}
	for i := range c.trueCounts {
		c.trueCounts[i] = 0
	}
	for _, ev := range ctx.Reporters {
		idx, _ := c.Dom.Index(ev.State)
		c.trueCounts[idx]++
	}
	ctx.Aggregate = ldp.NewAggregateOracle(oracle).Collect(c.Rng, c.trueCounts)
	ctx.ErrUpd = oracle.Variance(len(ctx.Reporters))
	ctx.Timings.ModelConstruction += time.Since(start)
}

// OLHCollector runs the Optimized Local Hashing ablation: O(1)-size reports,
// O(|S|) server work per report — the support counting is sharded across
// Workers goroutines.
type OLHCollector struct {
	Dom     *transition.Domain
	Rng     Rand
	Workers int
}

// Collect implements Collector.
func (c *OLHCollector) Collect(ctx *StepContext) {
	oracle := ldp.MustOLH(c.Dom.Size(), ctx.Epsilon)
	reports := make([]ldp.OLHReport, len(ctx.Reporters))
	start := time.Now()
	for i, ev := range ctx.Reporters {
		idx, _ := c.Dom.Index(ev.State)
		reports[i] = oracle.Perturb(c.Rng, c.Rng, idx)
	}
	ctx.Timings.UserSide += time.Since(start)

	start = time.Now()
	agg := ldp.NewOLHAggregator(oracle)
	agg.AddReports(reports, c.Workers)
	ctx.Aggregate = agg
	ctx.ErrUpd = oracle.Variance(len(ctx.Reporters))
	ctx.Timings.ModelConstruction += time.Since(start)
}

// GRRCollector runs the Generalized Randomized Response ablation.
type GRRCollector struct {
	Dom *transition.Domain
	Rng Rand
}

// Collect implements Collector.
func (c *GRRCollector) Collect(ctx *StepContext) {
	oracle := ldp.MustGRR(c.Dom.Size(), ctx.Epsilon)
	reports := make([]int, len(ctx.Reporters))
	start := time.Now()
	for i, ev := range ctx.Reporters {
		idx, _ := c.Dom.Index(ev.State)
		reports[i] = oracle.Perturb(c.Rng, idx)
	}
	ctx.Timings.UserSide += time.Since(start)

	start = time.Now()
	agg := ldp.NewGRRAggregator(oracle)
	for _, r := range reports {
		agg.Add(r)
	}
	ctx.Aggregate = agg
	ctx.ErrUpd = oracle.Variance(len(ctx.Reporters))
	ctx.Timings.ModelConstruction += time.Since(start)
}

// DebiasEstimator produces the unbiased frequency estimates and applies the
// optional privacy-free consistency post-processing (paper Theorem 2).
// Debiasing is model-construction work; post-processing is charged to the
// DMU component like the monolith did.
type DebiasEstimator struct {
	Post ldp.PostProcess
}

// Estimate implements Estimator.
func (e *DebiasEstimator) Estimate(ctx *StepContext) {
	start := time.Now()
	ctx.Estimates = ctx.Aggregate.EstimateAll()
	ctx.Timings.ModelConstruction += time.Since(start)

	start = time.Now()
	e.Post.Apply(ctx.Estimates)
	ctx.Timings.DMU += time.Since(start)
}

// DMUUpdater refreshes the global mobility model (paper §III-C): the first
// round initializes the whole model; afterwards either the Dynamic Mobility
// Update selects the significant transitions, or — with DisableDMU, the
// AllUpdate ablation — every state refreshes.
type DMUUpdater struct {
	Model      *mobility.Model
	DisableDMU bool

	bootstrapped bool
}

// Bootstrapped reports whether the model has been initialized by a first
// collection round.
func (u *DMUUpdater) Bootstrapped() bool { return u.bootstrapped }

// SetBootstrapped overrides the bootstrap flag; engine checkpoint restore
// uses it to resume mid-stream without re-initializing the model.
func (u *DMUUpdater) SetBootstrapped(v bool) { u.bootstrapped = v }

// Update implements ModelUpdater.
func (u *DMUUpdater) Update(ctx *StepContext) {
	start := time.Now()
	est := ctx.Estimates
	switch {
	case !u.bootstrapped:
		u.Model.SetAll(est)
		u.bootstrapped = true
		ctx.Result.NumSignificant = len(est)
		// Initialization is not a DMU selection; don't damp Eq. 10.
	case u.DisableDMU:
		sel := dmu.SelectAllVar(len(est), ctx.ErrUpd)
		u.Model.SetAll(est)
		ctx.Result.NumSignificant = len(sel.Significant)
		ctx.SigRatio = sel.Ratio(len(est))
	default:
		sel := dmu.SelectVar(u.Model.Freqs(), est, ctx.ErrUpd)
		u.Model.Update(sel.Significant, est)
		ctx.Result.NumSignificant = len(sel.Significant)
		ctx.SigRatio = sel.Ratio(len(est))
	}
	ctx.Timings.DMU += time.Since(start)
}

// SynthesisStage advances the real-time synthesizer (paper §III-D) from a
// fresh snapshot of the model.
type SynthesisStage struct {
	Model *mobility.Model
	Synth *synthesis.Synthesizer
	// WaitForUsers defers initialization until users exist — the NoEQ
	// ablation initializes a fixed-size population, so starting it at zero
	// would pin the run empty.
	WaitForUsers bool
}

// Step implements Synthesizer.
func (s *SynthesisStage) Step(ctx *StepContext) {
	start := time.Now()
	snap := s.Model.Snapshot()
	if s.WaitForUsers && s.Synth.ActiveCount() == 0 && ctx.ActiveCount == 0 {
		// Wait for users to exist before fixing the population size.
	} else {
		s.Synth.Step(ctx.T, ctx.ActiveCount, snap)
	}
	ctx.Timings.Synthesis += time.Since(start)
}
