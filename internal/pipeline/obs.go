package pipeline

import (
	"strconv"

	"retrasyn/internal/obs"
)

// Metrics is a shard-scoped bundle of pipeline series handles. Drivers
// (internal/core.Engine, internal/remote.Curator) snapshot Timings around
// each Step and hand the delta to ObserveStep, so stage latencies land in
// per-stage histograms without the stages themselves knowing about the
// registry. A nil *Metrics records nothing — the instrumentation-off mode.
type Metrics struct {
	stageUserSide  *obs.Histogram
	stageModel     *obs.Histogram
	stageDMU       *obs.Histogram
	stageSynthesis *obs.Histogram

	rounds        *obs.Counter
	silent        *obs.Counter
	reportsPacked *obs.Counter
	reportsSparse *obs.Counter
	reportCount   *obs.Histogram

	sigRatio    *obs.Gauge
	significant *obs.Gauge
}

// NewMetrics registers the pipeline series for one shard on reg. Returns nil
// (record-nothing) on a nil registry.
func NewMetrics(reg *obs.Registry, shard int) *Metrics {
	if reg == nil {
		return nil
	}
	sh := obs.Label{Key: "shard", Value: strconv.Itoa(shard)}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("pipeline.stage.latency_us", sh, obs.Label{Key: "stage", Value: name})
	}
	return &Metrics{
		stageUserSide:  stage("user_side"),
		stageModel:     stage("model_construction"),
		stageDMU:       stage("dmu"),
		stageSynthesis: stage("synthesis"),
		rounds:         reg.Counter("pipeline.rounds", sh),
		silent:         reg.Counter("pipeline.silent_timestamps", sh),
		reportsPacked:  reg.Counter("pipeline.reports", sh, obs.Label{Key: "representation", Value: "packed"}),
		reportsSparse:  reg.Counter("pipeline.reports", sh, obs.Label{Key: "representation", Value: "sparse"}),
		reportCount:    reg.Histogram("pipeline.round.report_count", sh),
		sigRatio:       reg.Gauge("pipeline.dmu.sig_ratio", sh),
		significant:    reg.Gauge("pipeline.dmu.significant", sh),
	}
}

// ObserveStep records one completed Step: delta is the Timings increment the
// step charged (after minus before), ctx carries the step's result.
func (m *Metrics) ObserveStep(ctx *StepContext, delta Timings) {
	if m == nil {
		return
	}
	m.stageUserSide.Observe(delta.UserSide)
	m.stageModel.Observe(delta.ModelConstruction)
	m.stageDMU.Observe(delta.DMU)
	m.stageSynthesis.Observe(delta.Synthesis)
	if ctx.Result.Reported {
		m.rounds.Inc()
		m.reportCount.ObserveValue(int64(ctx.Result.NumReporters))
		if ctx.Result.Packed {
			m.reportsPacked.Add(int64(ctx.Result.NumReporters))
		} else {
			m.reportsSparse.Add(int64(ctx.Result.NumReporters))
		}
		m.sigRatio.Set(ctx.SigRatio)
		m.significant.Set(float64(ctx.Result.NumSignificant))
	} else {
		m.silent.Inc()
	}
}

// Sub returns the component-wise difference a − b, the Timings increment
// between two snapshots.
func Sub(a, b Timings) Timings {
	return Timings{
		UserSide:          a.UserSide - b.UserSide,
		ModelConstruction: a.ModelConstruction - b.ModelConstruction,
		DMU:               a.DMU - b.DMU,
		Synthesis:         a.Synthesis - b.Synthesis,
	}
}
