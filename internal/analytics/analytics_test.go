package analytics

import (
	"strings"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/trajectory"
)

func fixture() (*Engine, *grid.System) {
	g := grid.MustNew(4, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	// Cells: 0..15 row-major. Streams:
	//   A: t0..t2 at 0 → 1 → 5
	//   B: t1..t3 at 5 → 5 → 6
	//   C: t0     at 15
	d := &trajectory.Dataset{T: 5, Trajs: []trajectory.CellTrajectory{
		{Start: 0, Cells: []grid.Cell{0, 1, 5}},
		{Start: 1, Cells: []grid.Cell{5, 5, 6}},
		{Start: 0, Cells: []grid.Cell{15}},
	}}
	return New(d, g), g
}

func TestCountRange(t *testing.T) {
	e, _ := fixture()
	all := grid.Region{MinRow: 0, MinCol: 0, MaxRow: 3, MaxCol: 3}
	if got := e.CountRange(all, 0, 4); got != 7 {
		t.Fatalf("full count = %d, want 7", got)
	}
	// Cell 5 = row 1, col 1. Region {cell 5 only} over all time: A@t2, B@t1,t2 → 3.
	r5 := grid.Region{MinRow: 1, MinCol: 1, MaxRow: 1, MaxCol: 1}
	if got := e.CountRange(r5, 0, 4); got != 3 {
		t.Fatalf("cell-5 count = %d, want 3", got)
	}
	// Clipped window.
	if got := e.CountRange(all, -10, 100); got != 7 {
		t.Fatalf("clipped count = %d, want 7", got)
	}
	if got := e.CountRange(all, 4, 2); got != 0 {
		t.Fatalf("inverted window count = %d, want 0", got)
	}
	if got := e.CountRange(all, 4, 4); got != 0 {
		t.Fatalf("empty timestamp count = %d, want 0", got)
	}
}

func TestActiveAt(t *testing.T) {
	e, _ := fixture()
	want := []int{2, 2, 2, 1, 0}
	for ts, w := range want {
		if got := e.ActiveAt(ts); got != w {
			t.Fatalf("ActiveAt(%d) = %d, want %d", ts, got, w)
		}
	}
	if e.ActiveAt(-1) != 0 || e.ActiveAt(99) != 0 {
		t.Fatal("out-of-range ActiveAt nonzero")
	}
}

func TestTopCells(t *testing.T) {
	e, _ := fixture()
	top := e.TopCells(0, 4, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	// Cell 5 visited 3×, cells 0,1,6,15 once each → top1 = cell5, top2 = cell0 (tie-break).
	if top[0].Cell != 5 || top[0].Count != 3 {
		t.Fatalf("top1 = %+v", top[0])
	}
	if top[1].Cell != 0 || top[1].Count != 1 {
		t.Fatalf("top2 = %+v", top[1])
	}
	if got := e.TopCells(0, 4, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := e.TopCells(4, 4, 3); len(got) != 0 {
		t.Fatalf("empty window top = %v", got)
	}
}

func TestFlow(t *testing.T) {
	e, g := fixture()
	// Transitions: 0→1 (t1), 1→5 (t2), 5→5 (t2), 5→6 (t3).
	rowTop := grid.Region{MinRow: 0, MinCol: 0, MaxRow: 0, MaxCol: 3} // cells 0..3
	rowMid := grid.Region{MinRow: 1, MinCol: 0, MaxRow: 1, MaxCol: 3} // cells 4..7
	if got := e.Flow(rowTop, rowTop, 0, 4); got != 1 {                // 0→1
		t.Fatalf("top→top = %d, want 1", got)
	}
	if got := e.Flow(rowTop, rowMid, 0, 4); got != 1 { // 1→5
		t.Fatalf("top→mid = %d, want 1", got)
	}
	if got := e.Flow(rowMid, rowMid, 0, 4); got != 2 { // 5→5, 5→6
		t.Fatalf("mid→mid = %d, want 2", got)
	}
	// Time-sliced: only t3 flows.
	if got := e.Flow(rowMid, rowMid, 3, 3); got != 1 {
		t.Fatalf("mid→mid @t3 = %d, want 1", got)
	}
	_ = g
}

func TestCongestionAlert(t *testing.T) {
	e, _ := fixture()
	// At t1: active=2, cell5 holds 1 → 50%. Threshold 0.5 triggers at t1?
	// t0: active=2, cells 0 and 15 hold 1 each → 50% as well → t0 fires first.
	ts, cell := e.CongestionAlert(0, 4, 0.5)
	if ts != 0 {
		t.Fatalf("alert at t=%d, want 0", ts)
	}
	if cell != 0 && cell != 15 {
		t.Fatalf("alert cell = %d", cell)
	}
	// Impossible threshold.
	if ts, _ := e.CongestionAlert(0, 4, 1.1); ts != -1 {
		t.Fatalf("impossible alert fired at %d", ts)
	}
	if ts, _ := e.CongestionAlert(0, 4, 0); ts != -1 {
		t.Fatal("zero threshold should be rejected")
	}
}

func TestEngineString(t *testing.T) {
	e, _ := fixture()
	s := e.String()
	if !strings.Contains(s, "5 timestamps") || !strings.Contains(s, "7 points") {
		t.Fatalf("String = %q", s)
	}
}

func TestEmptyDataset(t *testing.T) {
	g := grid.MustNew(3, grid.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	e := New(&trajectory.Dataset{T: 4}, g)
	all := grid.Region{MinRow: 0, MinCol: 0, MaxRow: 2, MaxCol: 2}
	if e.CountRange(all, 0, 3) != 0 || len(e.TopCells(0, 3, 5)) != 0 {
		t.Fatal("empty dataset produced counts")
	}
	if ts, _ := e.CongestionAlert(0, 3, 0.5); ts != -1 {
		t.Fatal("alert on empty dataset")
	}
}
