// Package analytics provides the downstream location-based queries the
// paper's introduction motivates (traffic monitoring, congestion
// prediction, emergency response): spatio-temporal range counts, top-k
// hotspots, inter-region flows and population curves, evaluated over any
// released dataset. Running these against the synthetic release costs no
// additional privacy budget (paper Theorem 2) — that is RetraSyn's central
// versatility claim.
package analytics

import (
	"fmt"
	"sort"

	"retrasyn/internal/grid"
	"retrasyn/internal/trajectory"
)

// Engine indexes one dataset for repeated queries. Building costs one pass
// over the data; queries are then sub-linear in the dataset size. The engine
// is immutable and safe for concurrent use.
type Engine struct {
	g *grid.System
	T int
	// counts[t][c] = points in cell c at timestamp t.
	counts [][]int32
	// flows[t] maps packed (from,to) → transitions landing at t.
	flows []map[uint32]int32
	// active[t] = streams present at t.
	active []int
}

func packPair(a, b grid.Cell) uint32 { return uint32(a)<<16 | uint32(b)&0xffff }

// New indexes the dataset.
func New(d *trajectory.Dataset, g *grid.System) *Engine {
	nc := g.NumCells()
	e := &Engine{
		g:      g,
		T:      d.T,
		counts: make([][]int32, d.T),
		flows:  make([]map[uint32]int32, d.T),
		active: make([]int, d.T),
	}
	flat := make([]int32, d.T*nc)
	for t := 0; t < d.T; t++ {
		e.counts[t], flat = flat[:nc:nc], flat[nc:]
		e.flows[t] = make(map[uint32]int32)
	}
	for _, tr := range d.Trajs {
		end := tr.End()
		for t := max(tr.Start, 0); t <= end && t < d.T; t++ {
			c := tr.Cells[t-tr.Start]
			e.counts[t][c]++
			e.active[t]++
			if t > tr.Start {
				e.flows[t][packPair(tr.Cells[t-tr.Start-1], c)]++
			}
		}
	}
	return e
}

// Timestamps returns the timeline length.
func (e *Engine) Timestamps() int { return e.T }

// clipWindow clamps [t0, t1] (inclusive) to the timeline and reports
// whether anything remains.
func (e *Engine) clipWindow(t0, t1 int) (int, int, bool) {
	if t0 < 0 {
		t0 = 0
	}
	if t1 >= e.T {
		t1 = e.T - 1
	}
	return t0, t1, t0 <= t1
}

// CountRange returns the number of location points inside region r during
// timestamps [t0, t1] inclusive — the paper's spatio-temporal range query.
func (e *Engine) CountRange(r grid.Region, t0, t1 int) int {
	t0, t1, ok := e.clipWindow(t0, t1)
	if !ok {
		return 0
	}
	total := 0
	k := e.g.K()
	for t := t0; t <= t1; t++ {
		row := e.counts[t]
		for rr := r.MinRow; rr <= r.MaxRow; rr++ {
			base := rr * k
			for cc := r.MinCol; cc <= r.MaxCol; cc++ {
				total += int(row[base+cc])
			}
		}
	}
	return total
}

// ActiveAt returns the number of streams present at timestamp t (the
// population curve used for congestion control).
func (e *Engine) ActiveAt(t int) int {
	if t < 0 || t >= e.T {
		return 0
	}
	return e.active[t]
}

// CellCount pairs a cell with a count.
type CellCount struct {
	Cell  grid.Cell
	Count int
}

// TopCells returns the k most-visited cells over [t0, t1] inclusive, most
// popular first; ties break on the smaller cell id for determinism.
func (e *Engine) TopCells(t0, t1, k int) []CellCount {
	t0, t1, ok := e.clipWindow(t0, t1)
	if !ok || k <= 0 {
		return nil
	}
	sums := make([]int, e.g.NumCells())
	for t := t0; t <= t1; t++ {
		for c, v := range e.counts[t] {
			sums[c] += int(v)
		}
	}
	out := make([]CellCount, 0, len(sums))
	for c, v := range sums {
		if v > 0 {
			out = append(out, CellCount{Cell: grid.Cell(c), Count: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Cell < out[j].Cell
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Flow returns the number of single-step transitions from region a to
// region b landing in [t0, t1] inclusive — an origin/destination flow
// query (e.g. "trips entering the business district from the north-west").
func (e *Engine) Flow(a, b grid.Region, t0, t1 int) int {
	t0, t1, ok := e.clipWindow(t0, t1)
	if !ok {
		return 0
	}
	total := 0
	for t := t0; t <= t1; t++ {
		for key, n := range e.flows[t] {
			from := grid.Cell(key >> 16)
			to := grid.Cell(key & 0xffff)
			if a.ContainsCell(e.g, from) && b.ContainsCell(e.g, to) {
				total += int(n)
			}
		}
	}
	return total
}

// CongestionAlert reports the first timestamp in [t0, t1] at which a single
// cell holds at least frac of the active population (and that cell), or
// (-1, Invalid) when none does.
func (e *Engine) CongestionAlert(t0, t1 int, frac float64) (int, grid.Cell) {
	t0, t1, ok := e.clipWindow(t0, t1)
	if !ok || frac <= 0 {
		return -1, grid.Invalid
	}
	for t := t0; t <= t1; t++ {
		if e.active[t] == 0 {
			continue
		}
		threshold := frac * float64(e.active[t])
		for c, v := range e.counts[t] {
			if float64(v) >= threshold && v > 0 {
				return t, grid.Cell(c)
			}
		}
	}
	return -1, grid.Invalid
}

// String summarizes the index.
func (e *Engine) String() string {
	points := 0
	for _, a := range e.active {
		points += a
	}
	return fmt.Sprintf("analytics over %d timestamps, %d points, K=%d", e.T, points, e.g.K())
}
