package allocation

import (
	"math"
	"testing"
)

func TestDivisionString(t *testing.T) {
	if Budget.String() != "budget" || Population.String() != "population" {
		t.Fatal("Division.String mismatch")
	}
	if Division(9).String() != "Division(9)" {
		t.Fatalf("got %q", Division(9).String())
	}
}

func TestAdaptivePortionEq10(t *testing.T) {
	a := NewAdaptive(Population)
	ctx := Context{W: 20, Dev: math.E - 1, SigRatioMean: 0.5}
	// p = 8/20 · (1−0.5) · ln(e) = 0.4·0.5·1 = 0.2.
	if got := a.Portion(ctx); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Portion = %v, want 0.2", got)
	}
}

func TestAdaptivePortionCappedAtPMax(t *testing.T) {
	a := NewAdaptive(Population)
	ctx := Context{W: 5, Dev: 1e6, SigRatioMean: 0}
	if got := a.Portion(ctx); got != 0.6 {
		t.Fatalf("Portion = %v, want p_max 0.6", got)
	}
}

func TestAdaptivePortionZeroDev(t *testing.T) {
	a := NewAdaptive(Population)
	if got := a.Portion(Context{W: 20, Dev: 0}); got != 0 {
		t.Fatalf("Portion with Dev=0 = %v", got)
	}
}

func TestAdaptivePortionNonNegative(t *testing.T) {
	a := NewAdaptive(Population)
	// SigRatioMean > 1 cannot happen, but the guard must hold anyway.
	if got := a.Portion(Context{W: 20, Dev: 5, SigRatioMean: 1.5}); got != 0 {
		t.Fatalf("negative portion leaked: %v", got)
	}
	if got := a.Portion(Context{W: 0, Dev: 5}); got != 0 {
		t.Fatalf("W=0 portion = %v", got)
	}
}

func TestAdaptiveWindowSizeDampens(t *testing.T) {
	a := NewAdaptive(Population)
	small := a.Portion(Context{W: 10, Dev: 1, SigRatioMean: 0})
	large := a.Portion(Context{W: 50, Dev: 1, SigRatioMean: 0})
	if large >= small {
		t.Fatalf("larger window should reduce the portion: w=10→%v, w=50→%v", small, large)
	}
}

func TestAdaptiveBudgetDecision(t *testing.T) {
	a := NewAdaptive(Budget)
	ctx := Context{W: 20, Epsilon: 1.0, WindowUsed: 0.5, Dev: math.E - 1, SigRatioMean: 0.5}
	d := a.Decide(ctx)
	if !d.Report {
		t.Fatal("expected a report")
	}
	// ε_t = p · ε_rm = 0.2 · 0.5 = 0.1.
	if math.Abs(d.Epsilon-0.1) > 1e-12 {
		t.Fatalf("Epsilon = %v, want 0.1", d.Epsilon)
	}
	if d.Portion != 0 {
		t.Fatalf("budget decision carries portion %v", d.Portion)
	}
}

func TestAdaptiveBudgetFloorSkips(t *testing.T) {
	a := NewAdaptive(Budget)
	// Nearly exhausted window → ε_t below the floor → skip.
	ctx := Context{W: 20, Epsilon: 1.0, WindowUsed: 0.999, Dev: 10}
	if d := a.Decide(ctx); d.Report {
		t.Fatalf("tiny budget not skipped: %+v", d)
	}
	// Fully exhausted (or overdrawn by float error) window.
	ctx.WindowUsed = 1.5
	if d := a.Decide(ctx); d.Report {
		t.Fatalf("overdrawn window not skipped: %+v", d)
	}
}

func TestAdaptivePopulationDecision(t *testing.T) {
	a := NewAdaptive(Population)
	d := a.Decide(Context{W: 20, Dev: math.E - 1, SigRatioMean: 0.5})
	if !d.Report || math.Abs(d.Portion-0.2) > 1e-12 {
		t.Fatalf("decision = %+v", d)
	}
	if d.Epsilon != 0 {
		t.Fatalf("population decision carries epsilon %v", d.Epsilon)
	}
	if d2 := a.Decide(Context{W: 20, Dev: 0}); d2.Report {
		t.Fatalf("zero portion should skip: %+v", d2)
	}
}

func TestUniform(t *testing.T) {
	ub := &Uniform{Division: Budget}
	d := ub.Decide(Context{W: 20, Epsilon: 2.0})
	if !d.Report || math.Abs(d.Epsilon-0.1) > 1e-12 {
		t.Fatalf("uniform budget = %+v", d)
	}
	up := &Uniform{Division: Population}
	d = up.Decide(Context{W: 20})
	if !d.Report || math.Abs(d.Portion-0.05) > 1e-12 {
		t.Fatalf("uniform population = %+v", d)
	}
	if d := ub.Decide(Context{W: 0}); d.Report {
		t.Fatal("W=0 should skip")
	}
}

func TestSample(t *testing.T) {
	sb := &Sample{Division: Budget}
	for tt := 0; tt < 25; tt++ {
		d := sb.Decide(Context{T: tt, W: 10, Epsilon: 1.5})
		wantReport := tt%10 == 0
		if d.Report != wantReport {
			t.Fatalf("t=%d report=%v want %v", tt, d.Report, wantReport)
		}
		if d.Report && d.Epsilon != 1.5 {
			t.Fatalf("sample budget = %v", d.Epsilon)
		}
	}
	sp := &Sample{Division: Population}
	if d := sp.Decide(Context{T: 10, W: 10}); !d.Report || d.Portion != 1 {
		t.Fatalf("sample population = %+v", d)
	}
}

func TestStrategyNames(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{NewAdaptive(Budget), "adaptive-budget"},
		{NewAdaptive(Population), "adaptive-population"},
		{&Uniform{Division: Budget}, "uniform-budget"},
		{&Sample{Division: Population}, "sample-population"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestUniformBudgetNeverExceedsWindow(t *testing.T) {
	// Simulate 100 timestamps of uniform budget division and verify the
	// sliding-window invariant via BudgetWindow + Ledger.
	const w, eps, T = 10, 1.0, 100
	u := &Uniform{Division: Budget}
	bw := NewBudgetWindow(w)
	ledger := NewLedger(T)
	for tt := 0; tt < T; tt++ {
		d := u.Decide(Context{T: tt, W: w, Epsilon: eps, WindowUsed: bw.Used()})
		spent := 0.0
		if d.Report {
			spent = d.Epsilon
		}
		bw.Record(spent)
		ledger.RecordRound(tt, spent, nil)
	}
	if got := ledger.MaxWindowSum(w); got > eps+1e-9 {
		t.Fatalf("uniform strategy exceeded window budget: %v", got)
	}
}

func TestAdaptiveBudgetNeverExceedsWindow(t *testing.T) {
	const w, eps, T = 10, 1.0, 200
	a := NewAdaptive(Budget)
	bw := NewBudgetWindow(w)
	ledger := NewLedger(T)
	for tt := 0; tt < T; tt++ {
		// Feed adversarial deviation values to push the strategy hard.
		dev := float64(tt%7) * 3.0
		d := a.Decide(Context{T: tt, W: w, Epsilon: eps, WindowUsed: bw.Used(), Dev: dev})
		spent := 0.0
		if d.Report {
			spent = d.Epsilon
		}
		bw.Record(spent)
		ledger.RecordRound(tt, spent, nil)
	}
	if got := ledger.MaxWindowSum(w); got > eps+1e-9 {
		t.Fatalf("adaptive strategy exceeded window budget: %v", got)
	}
}

func TestSampleBudgetNeverExceedsWindow(t *testing.T) {
	const w, eps, T = 10, 2.0, 100
	s := &Sample{Division: Budget}
	ledger := NewLedger(T)
	for tt := 0; tt < T; tt++ {
		d := s.Decide(Context{T: tt, W: w, Epsilon: eps})
		if d.Report {
			ledger.RecordRound(tt, d.Epsilon, nil)
		}
	}
	if got := ledger.MaxWindowSum(w); got > eps+1e-9 {
		t.Fatalf("sample strategy exceeded window budget: %v", got)
	}
}
