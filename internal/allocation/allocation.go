// Package allocation implements RetraSyn's adaptive allocation strategies
// (paper §III-E): portion-based budget division and population division
// driven by the stream deviation Dev_t (Eq. 9) and the recent share of
// significant transitions (Eq. 10), plus the Uniform and Sample baselines,
// and the sliding-window accounting that enforces w-event ε-LDP.
package allocation

import (
	"fmt"
	"math"
)

// Division selects how the privacy resource is split across timestamps.
type Division int

const (
	// Budget divides the privacy budget ε: every reporting user spends ε_t at
	// timestamp t with Σ ε_t ≤ ε over any w-window (Theorem 1).
	Budget Division = iota
	// Population divides the users: a p_t portion of the active users spend
	// the whole ε, then stay silent until recycled after w timestamps.
	Population
)

// String implements fmt.Stringer.
func (d Division) String() string {
	switch d {
	case Budget:
		return "budget"
	case Population:
		return "population"
	default:
		return fmt.Sprintf("Division(%d)", int(d))
	}
}

// Context carries the observable state a strategy may use at timestamp t.
// Everything here is derived from already-perturbed statistics, so strategy
// decisions consume no extra privacy budget (post-processing).
type Context struct {
	T       int     // current timestamp (0-based)
	W       int     // window size w
	Epsilon float64 // total window budget ε
	// WindowUsed is Σ ε_i over the previous w−1 timestamps (budget division).
	WindowUsed float64
	// Dev is the deviation Dev_t of Eq. 9 computed from recent (perturbed)
	// frequency vectors.
	Dev float64
	// SigRatioMean is (1/κ)Σ|S*_i|/|S| over the recent κ timestamps.
	SigRatioMean float64
}

// Decision is a strategy's output for one timestamp.
type Decision struct {
	// Report indicates whether a collection round happens at all.
	Report bool
	// Epsilon is the per-user budget for this round (budget division only).
	Epsilon float64
	// Portion is the fraction of active users to sample (population division
	// only).
	Portion float64
}

// Strategy decides the per-timestamp resource allocation.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Decide returns the allocation for the timestamp described by ctx.
	Decide(ctx Context) Decision
}

// epsilonFloor skips collection rounds whose budget would be so small that
// the OUE variance dwarfs any signal (DESIGN.md §5.5). Expressed as a
// fraction of the window budget ε.
const epsilonFloor = 0.01

// Adaptive is the paper's portion-based adaptive strategy (Eq. 10):
//
//	p_t = min{ α/w · (1 − SigRatioMean) · ln(Dev_t + 1), p_max }
//
// For budget division the allocated budget is p_t · ε_rm with ε_rm the
// unused budget in the current window; for population division p_t is the
// sampled fraction of active users.
type Adaptive struct {
	Division Division
	// Alpha scales the portion; the paper uses α = 8.
	Alpha float64
	// PMax caps the portion; the paper uses 0.6.
	PMax float64
}

// NewAdaptive returns the paper-default adaptive strategy (α=8, p_max=0.6).
func NewAdaptive(div Division) *Adaptive {
	return &Adaptive{Division: div, Alpha: 8, PMax: 0.6}
}

// Name implements Strategy.
func (a *Adaptive) Name() string { return "adaptive-" + a.Division.String() }

// Portion evaluates Eq. 10 for the given context.
func (a *Adaptive) Portion(ctx Context) float64 {
	if ctx.W <= 0 {
		return 0
	}
	p := a.Alpha / float64(ctx.W) * (1 - ctx.SigRatioMean) * math.Log1p(ctx.Dev)
	if p < 0 {
		p = 0
	}
	if p > a.PMax {
		p = a.PMax
	}
	return p
}

// Decide implements Strategy.
func (a *Adaptive) Decide(ctx Context) Decision {
	p := a.Portion(ctx)
	switch a.Division {
	case Budget:
		rm := ctx.Epsilon - ctx.WindowUsed
		if rm < 0 {
			rm = 0
		}
		eps := p * rm
		if eps < epsilonFloor*ctx.Epsilon {
			return Decision{}
		}
		return Decision{Report: true, Epsilon: eps}
	default:
		if p <= 0 {
			return Decision{}
		}
		return Decision{Report: true, Portion: p}
	}
}

// Uniform spreads the resource evenly: ε/w per timestamp (budget division)
// or a 1/w user portion (population division).
type Uniform struct {
	Division Division
}

// Name implements Strategy.
func (u *Uniform) Name() string { return "uniform-" + u.Division.String() }

// Decide implements Strategy.
func (u *Uniform) Decide(ctx Context) Decision {
	if ctx.W <= 0 {
		return Decision{}
	}
	switch u.Division {
	case Budget:
		return Decision{Report: true, Epsilon: ctx.Epsilon / float64(ctx.W)}
	default:
		return Decision{Report: true, Portion: 1 / float64(ctx.W)}
	}
}

// Sample spends everything on the first timestamp of each window: the whole
// ε (budget division) or all active users (population division) report every
// w timestamps; the model is approximated in between.
type Sample struct {
	Division Division
}

// Name implements Strategy.
func (s *Sample) Name() string { return "sample-" + s.Division.String() }

// Decide implements Strategy.
func (s *Sample) Decide(ctx Context) Decision {
	if ctx.W <= 0 || ctx.T%ctx.W != 0 {
		return Decision{}
	}
	switch s.Division {
	case Budget:
		return Decision{Report: true, Epsilon: ctx.Epsilon}
	default:
		return Decision{Report: true, Portion: 1}
	}
}
