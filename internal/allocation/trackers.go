package allocation

import (
	"fmt"
	"math"
)

// DevTracker computes the stream deviation Dev_t of Eq. 9 from the recent
// history of (perturbed) transition-frequency vectors. Following DESIGN.md
// §5.1 the per-state differences are taken in absolute value — the signed
// sum of the paper's printed formula telescopes to ≈0 for normalized
// frequencies:
//
//	Dev_t = Σ_s | f^{t−1}_s − (1/κ) Σ_{k=t−κ−1}^{t−2} f^k_s |
//
// Push the post-update frequency vector once per timestamp; Dev() then
// refers to the upcoming timestamp t.
type DevTracker struct {
	kappa int
	hist  [][]float64 // most recent last; at most kappa+1 entries
}

// NewDevTracker creates a tracker over the κ most recent timestamps
// (paper default κ=5).
func NewDevTracker(kappa int) *DevTracker {
	if kappa < 1 {
		kappa = 1
	}
	return &DevTracker{kappa: kappa}
}

// Push records the frequency vector observed at the timestamp just
// processed. The vector is copied.
func (d *DevTracker) Push(freq []float64) {
	cp := make([]float64, len(freq))
	copy(cp, freq)
	d.hist = append(d.hist, cp)
	if len(d.hist) > d.kappa+1 {
		// Shift rather than re-slice so old vectors can be collected.
		copy(d.hist, d.hist[1:])
		d.hist[len(d.hist)-1] = nil
		d.hist = d.hist[:len(d.hist)-1]
		d.hist[len(d.hist)-1] = cp
	}
}

// DevState is the serializable form of a DevTracker.
type DevState struct {
	Hist [][]float64 `json:"hist"`
}

// State exports a deep copy of the tracker history.
func (d *DevTracker) State() DevState {
	hist := make([][]float64, len(d.hist))
	for i, h := range d.hist {
		hist[i] = append([]float64(nil), h...)
	}
	return DevState{Hist: hist}
}

// Restore replaces the history with a previously exported one. Entries
// beyond the tracker's capacity are trimmed from the oldest end.
func (d *DevTracker) Restore(st DevState) {
	d.hist = d.hist[:0]
	for _, h := range st.Hist {
		d.hist = append(d.hist, append([]float64(nil), h...))
	}
	if over := len(d.hist) - (d.kappa + 1); over > 0 {
		d.hist = append([][]float64(nil), d.hist[over:]...)
	}
}

// Dev returns Dev_t for the upcoming timestamp: the L1 distance between the
// latest vector and the mean of the up-to-κ vectors before it. It returns 0
// until at least two vectors have been pushed.
func (d *DevTracker) Dev() float64 {
	n := len(d.hist)
	if n < 2 {
		return 0
	}
	latest := d.hist[n-1]
	prev := d.hist[:n-1]
	dev := 0.0
	inv := 1 / float64(len(prev))
	for s := range latest {
		mean := 0.0
		for _, h := range prev {
			mean += h[s]
		}
		dev += math.Abs(latest[s] - mean*inv)
	}
	return dev
}

// SigTracker records the recent |S*|/|S| ratios for the (1 − mean) damping
// term of Eq. 10.
type SigTracker struct {
	kappa  int
	ratios []float64
}

// NewSigTracker creates a tracker over the κ most recent timestamps.
func NewSigTracker(kappa int) *SigTracker {
	if kappa < 1 {
		kappa = 1
	}
	return &SigTracker{kappa: kappa}
}

// Push records the significant-transition ratio of the timestamp just
// processed (0 when no collection happened).
func (s *SigTracker) Push(ratio float64) {
	s.ratios = append(s.ratios, ratio)
	if len(s.ratios) > s.kappa {
		copy(s.ratios, s.ratios[1:])
		s.ratios = s.ratios[:len(s.ratios)-1]
	}
}

// SigState is the serializable form of a SigTracker.
type SigState struct {
	Ratios []float64 `json:"ratios"`
}

// State exports a copy of the recorded ratios.
func (s *SigTracker) State() SigState {
	return SigState{Ratios: append([]float64(nil), s.ratios...)}
}

// Restore replaces the recorded ratios with a previously exported set,
// trimming from the oldest end when it exceeds the tracker's capacity.
func (s *SigTracker) Restore(st SigState) {
	s.ratios = append(s.ratios[:0], st.Ratios...)
	if over := len(s.ratios) - s.kappa; over > 0 {
		s.ratios = append([]float64(nil), s.ratios[over:]...)
	}
}

// Mean returns the mean recorded ratio, 0 with no history.
func (s *SigTracker) Mean() float64 {
	if len(s.ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range s.ratios {
		sum += r
	}
	return sum / float64(len(s.ratios))
}

// BudgetWindow tracks per-timestamp budget expenditure over a sliding
// window of w timestamps, providing the ε_rm computation of the
// budget-division strategy and the w-event accounting invariant.
type BudgetWindow struct {
	w     int
	spent []float64 // ring over the last w timestamps
	next  int
	used  float64 // running sum of the ring
}

// NewBudgetWindow creates a window of size w.
func NewBudgetWindow(w int) *BudgetWindow {
	if w < 1 {
		w = 1
	}
	return &BudgetWindow{w: w, spent: make([]float64, w)}
}

// Used returns Σ ε_i over the last w−1 recorded timestamps plus nothing for
// the current one — i.e. the budget already committed inside the window
// that the upcoming timestamp belongs to.
func (b *BudgetWindow) Used() float64 {
	// The slot about to be overwritten leaves the window before the upcoming
	// timestamp, so exclude it.
	return b.used - b.spent[b.next]
}

// Record logs the expenditure of the timestamp just processed and slides
// the window.
func (b *BudgetWindow) Record(eps float64) {
	b.used -= b.spent[b.next]
	b.spent[b.next] = eps
	b.used += eps
	b.next = (b.next + 1) % b.w
}

// BudgetWindowState is the serializable form of a BudgetWindow.
type BudgetWindowState struct {
	Spent []float64 `json:"spent"`
	Next  int       `json:"next"`
	Used  float64   `json:"used"`
}

// State exports the window's expenditure ring.
func (b *BudgetWindow) State() BudgetWindowState {
	return BudgetWindowState{
		Spent: append([]float64(nil), b.spent...),
		Next:  b.next,
		Used:  b.used,
	}
}

// Restore replaces the ring with a previously exported one. The window size
// must match.
func (b *BudgetWindow) Restore(st BudgetWindowState) error {
	if len(st.Spent) != b.w {
		return fmt.Errorf("allocation: BudgetWindow.Restore size %d ≠ w %d", len(st.Spent), b.w)
	}
	if st.Next < 0 || st.Next >= b.w {
		return fmt.Errorf("allocation: BudgetWindow.Restore next %d outside [0,%d)", st.Next, b.w)
	}
	copy(b.spent, st.Spent)
	b.next = st.Next
	b.used = st.Used
	return nil
}

// Ledger records every collection round for post-hoc verification of the
// w-event guarantee; tests use it to assert that no window ever exceeds ε
// (budget division) and no user reports twice within a window (population
// division).
type Ledger struct {
	// EpsByT[t] is the per-user budget spent at timestamp t (0 when no
	// report).
	EpsByT []float64
	// ReportsByUser maps user → sorted timestamps at which that user
	// reported.
	ReportsByUser map[int][]int
}

// NewLedger creates an empty ledger for a timeline of length T.
func NewLedger(T int) *Ledger {
	return &Ledger{
		EpsByT:        make([]float64, T),
		ReportsByUser: make(map[int][]int),
	}
}

// Clone deep-copies the ledger, for checkpoints that must stay stable while
// recording continues.
func (l *Ledger) Clone() *Ledger {
	if l == nil {
		return nil
	}
	cp := &Ledger{
		EpsByT:        append([]float64(nil), l.EpsByT...),
		ReportsByUser: make(map[int][]int, len(l.ReportsByUser)),
	}
	for u, ts := range l.ReportsByUser {
		cp.ReportsByUser[u] = append([]int(nil), ts...)
	}
	return cp
}

// RecordRound logs a collection round at timestamp t with per-user budget
// eps and the reporting users.
func (l *Ledger) RecordRound(t int, eps float64, users []int) {
	if t >= 0 && t < len(l.EpsByT) {
		l.EpsByT[t] += eps
	}
	for _, u := range users {
		l.ReportsByUser[u] = append(l.ReportsByUser[u], t)
	}
}

// MaxWindowSum returns the maximum Σ ε over any w consecutive timestamps.
func (l *Ledger) MaxWindowSum(w int) float64 {
	maxSum, sum := 0.0, 0.0
	for t, e := range l.EpsByT {
		sum += e
		if t >= w {
			sum -= l.EpsByT[t-w]
		}
		if sum > maxSum {
			maxSum = sum
		}
	}
	return maxSum
}

// MaxUserWindowSum returns the maximum per-user Σ ε over any w consecutive
// timestamps, assuming each recorded report of user u at timestamp t spent
// the budget epsAt(t).
func (l *Ledger) MaxUserWindowSum(w int, epsAt func(t int) float64) float64 {
	maxSum := 0.0
	for _, ts := range l.ReportsByUser {
		for i := range ts {
			sum := 0.0
			for j := i; j < len(ts) && ts[j] < ts[i]+w; j++ {
				sum += epsAt(ts[j])
			}
			if sum > maxSum {
				maxSum = sum
			}
		}
	}
	return maxSum
}
