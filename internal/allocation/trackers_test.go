package allocation

import (
	"math"
	"testing"
	"testing/quick"

	"retrasyn/internal/ldp"
)

func TestDevTrackerInsufficientHistory(t *testing.T) {
	d := NewDevTracker(5)
	if d.Dev() != 0 {
		t.Fatal("empty tracker Dev should be 0")
	}
	d.Push([]float64{1, 2})
	if d.Dev() != 0 {
		t.Fatal("single-entry tracker Dev should be 0")
	}
}

func TestDevTrackerL1(t *testing.T) {
	d := NewDevTracker(5)
	d.Push([]float64{0.5, 0.5})
	d.Push([]float64{0.7, 0.3})
	// mean of previous = (0.5, 0.5); dev = |0.7−0.5| + |0.3−0.5| = 0.4.
	if got := d.Dev(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Dev = %v, want 0.4", got)
	}
}

func TestDevTrackerMeanOverKappa(t *testing.T) {
	d := NewDevTracker(2)
	d.Push([]float64{0})
	d.Push([]float64{2})
	d.Push([]float64{4})
	// History capped at κ+1=3 entries: latest 4, previous {0, 2}, mean 1 → dev 3.
	if got := d.Dev(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Dev = %v, want 3", got)
	}
	d.Push([]float64{4})
	// Now latest 4, previous {2, 4}, mean 3 → dev 1.
	if got := d.Dev(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Dev after slide = %v, want 1", got)
	}
}

func TestDevTrackerStableStreamZero(t *testing.T) {
	d := NewDevTracker(5)
	for i := 0; i < 10; i++ {
		d.Push([]float64{0.25, 0.25, 0.5})
	}
	if got := d.Dev(); got != 0 {
		t.Fatalf("stable stream Dev = %v, want 0", got)
	}
}

func TestDevTrackerCopiesInput(t *testing.T) {
	d := NewDevTracker(3)
	v := []float64{1}
	d.Push(v)
	v[0] = 100
	d.Push([]float64{2})
	if got := d.Dev(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("tracker aliased caller slice: Dev = %v, want 1", got)
	}
}

func TestDevTrackerNonNegativeProperty(t *testing.T) {
	f := func(seed uint64, pushes uint8) bool {
		rng := ldp.NewRand(seed, seed^7)
		d := NewDevTracker(int(seed%6) + 1)
		for i := 0; i < int(pushes%20)+2; i++ {
			v := make([]float64, 5)
			for j := range v {
				v[j] = rng.Float64()
			}
			d.Push(v)
			if d.Dev() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewDevTrackerClampKappa(t *testing.T) {
	d := NewDevTracker(0)
	d.Push([]float64{0})
	d.Push([]float64{1})
	if got := d.Dev(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Dev = %v", got)
	}
}

func TestSigTracker(t *testing.T) {
	s := NewSigTracker(3)
	if s.Mean() != 0 {
		t.Fatal("empty tracker mean should be 0")
	}
	s.Push(0.2)
	s.Push(0.4)
	if got := s.Mean(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Mean = %v, want 0.3", got)
	}
	s.Push(0.6)
	s.Push(0.8) // evicts 0.2
	if got := s.Mean(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("Mean after slide = %v, want 0.6", got)
	}
}

func TestBudgetWindow(t *testing.T) {
	b := NewBudgetWindow(3)
	if b.Used() != 0 {
		t.Fatal("fresh window Used should be 0")
	}
	b.Record(0.1)
	b.Record(0.2)
	if got := b.Used(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Used = %v, want 0.3", got)
	}
	b.Record(0.3)
	// Window is full; the 0.1 slot is about to leave the upcoming window.
	if got := b.Used(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Used = %v, want 0.5 (0.2+0.3)", got)
	}
	b.Record(0.4)
	if got := b.Used(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Used = %v, want 0.7 (0.3+0.4)", got)
	}
}

func TestBudgetWindowW1(t *testing.T) {
	b := NewBudgetWindow(1)
	b.Record(0.9)
	// With w=1 the previous spend never constrains the next timestamp.
	if got := b.Used(); got != 0 {
		t.Fatalf("w=1 Used = %v, want 0", got)
	}
}

func TestBudgetWindowInvariantProperty(t *testing.T) {
	// Spending ε−Used() at every timestamp never exceeds ε in any window.
	f := func(seed uint64, wRaw uint8) bool {
		w := int(wRaw%10) + 1
		const eps = 1.0
		rng := ldp.NewRand(seed, seed+3)
		b := NewBudgetWindow(w)
		ledger := NewLedger(80)
		for t := 0; t < 80; t++ {
			rm := eps - b.Used()
			spend := rm * rng.Float64()
			b.Record(spend)
			ledger.RecordRound(t, spend, nil)
		}
		return ledger.MaxWindowSum(w) <= eps+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerMaxWindowSum(t *testing.T) {
	l := NewLedger(10)
	l.RecordRound(0, 0.5, nil)
	l.RecordRound(1, 0.4, nil)
	l.RecordRound(5, 0.9, nil)
	if got := l.MaxWindowSum(3); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("MaxWindowSum(3) = %v, want 0.9", got)
	}
	if got := l.MaxWindowSum(2); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("MaxWindowSum(2) = %v, want 0.9", got)
	}
	if got := l.MaxWindowSum(1); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("MaxWindowSum(1) = %v, want 0.9", got)
	}
	l.RecordRound(6, 0.3, nil)
	if got := l.MaxWindowSum(2); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("MaxWindowSum(2) = %v, want 1.2", got)
	}
}

func TestLedgerMaxUserWindowSum(t *testing.T) {
	l := NewLedger(20)
	l.RecordRound(0, 1.0, []int{1, 2})
	l.RecordRound(5, 1.0, []int{1})
	l.RecordRound(12, 1.0, []int{2})
	epsAt := func(t int) float64 { return 1.0 }
	// User 1 reports at 0 and 5: both inside a window of 6.
	if got := l.MaxUserWindowSum(6, epsAt); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MaxUserWindowSum(6) = %v, want 2", got)
	}
	// Window of 5 separates them.
	if got := l.MaxUserWindowSum(5, epsAt); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MaxUserWindowSum(5) = %v, want 1", got)
	}
}

func TestLedgerIgnoresOutOfRange(t *testing.T) {
	l := NewLedger(5)
	l.RecordRound(-1, 1.0, nil)
	l.RecordRound(99, 1.0, nil)
	if got := l.MaxWindowSum(5); got != 0 {
		t.Fatalf("out-of-range rounds recorded: %v", got)
	}
}
