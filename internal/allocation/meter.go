package allocation

import "retrasyn/internal/obs"

// Meter is the privacy-budget ledger's observability face: it watches the
// per-timestamp ε a run actually spends and turns it into registry series an
// operator can scrape. The quantities mirror the w-event accounting of
// Theorem 1 — per-window ε sums land in a histogram (in micro-ε so the
// integer buckets resolve small budgets), the cumulative spend and trailing
// window sum are gauges — plus the sampled-user fraction per round, the
// population-division knob PrivTrace/LDPTrace argue an operator must see.
//
// The meter is run-scoped: it never enters checkpoints, and a nil *Meter
// records nothing.
type Meter struct {
	w    int
	ring []float64 // per-timestamp ε of the trailing w timestamps
	next int       // timestamps observed so far

	windowEps   *obs.Histogram // micro-ε sum of each completed disjoint window
	cumulative  *obs.Gauge
	roundEps    *obs.Gauge
	windowSum   *obs.Gauge
	sampledFrac *obs.Gauge
	rounds      *obs.Counter
	silent      *obs.Counter
}

// MicroEps is the fixed-point scale the window-ε histogram uses: ε × 1e6, so
// a 0.1-ε window lands in bucket territory with ~3% resolution.
const MicroEps = 1e6

// NewMeter registers the budget series on reg for a run with window size w.
// Returns nil (record-nothing) on a nil registry.
func NewMeter(reg *obs.Registry, w int) *Meter {
	if reg == nil {
		return nil
	}
	if w < 1 {
		w = 1
	}
	return &Meter{
		w:           w,
		ring:        make([]float64, w),
		windowEps:   reg.Histogram("budget.window_eps_micro"),
		cumulative:  reg.Gauge("budget.cumulative_eps"),
		roundEps:    reg.Gauge("budget.round_eps"),
		windowSum:   reg.Gauge("budget.window_sum_eps"),
		sampledFrac: reg.Gauge("budget.sampled_fraction"),
		rounds:      reg.Counter("budget.rounds"),
		silent:      reg.Counter("budget.silent_rounds"),
	}
}

// Observe records one processed timestamp: eps is the per-user budget spent
// by this round's reporters (0 on silent timestamps), sampled/pool the
// reporter count versus the eligible population. Must be called once per
// timestamp in order.
func (m *Meter) Observe(eps float64, sampled, pool int) {
	if m == nil {
		return
	}
	m.ring[m.next%m.w] = eps
	m.next++

	if eps > 0 && sampled > 0 {
		m.rounds.Inc()
		m.cumulative.Add(eps)
	} else {
		m.silent.Inc()
	}
	m.roundEps.Set(eps)
	if pool > 0 {
		m.sampledFrac.Set(float64(sampled) / float64(pool))
	} else {
		m.sampledFrac.Set(0)
	}

	var sum float64
	for _, e := range m.ring {
		sum += e
	}
	m.windowSum.Set(sum)
	if m.next%m.w == 0 {
		// One disjoint window completed: its ε sum is a per-user spend
		// bounded by ε under Theorem 1's accounting.
		m.windowEps.ObserveValue(int64(sum * MicroEps))
	}
}
