package allocation

import (
	"math"
	"testing"

	"retrasyn/internal/obs"
)

func TestMeterWindows(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMeter(reg, 4)

	// Two full windows: [0.1, 0, 0.2, 0] and [0.3, 0, 0, 0.1].
	steps := []struct {
		eps           float64
		sampled, pool int
	}{
		{0.1, 50, 100}, {0, 0, 100}, {0.2, 25, 100}, {0, 0, 100},
		{0.3, 10, 100}, {0, 0, 100}, {0, 0, 100}, {0.1, 100, 100},
	}
	for _, s := range steps {
		m.Observe(s.eps, s.sampled, s.pool)
	}

	if got := reg.Counter("budget.rounds").Value(); got != 4 {
		t.Fatalf("rounds = %d, want 4", got)
	}
	if got := reg.Counter("budget.silent_rounds").Value(); got != 4 {
		t.Fatalf("silent = %d, want 4", got)
	}
	if got := reg.Gauge("budget.cumulative_eps").Value(); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("cumulative = %v, want 0.7", got)
	}
	if got := reg.Gauge("budget.window_sum_eps").Value(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("trailing window sum = %v, want 0.4", got)
	}
	if got := reg.Gauge("budget.sampled_fraction").Value(); got != 1 {
		t.Fatalf("sampled fraction = %v, want 1", got)
	}
	h := reg.Histogram("budget.window_eps_micro")
	if got := h.Count(); got != 2 {
		t.Fatalf("window histogram count = %d, want 2 completed windows", got)
	}
	// Both windows sum to 0.3–0.4 ε → 300k–400k micro-ε; the p99 must land in
	// the 400k bucket band (±3%).
	if q := h.Quantile(0.99); q < 380_000 || q > 400_000 {
		t.Fatalf("window p99 = %d micro-eps, want ≈400000", q)
	}
}

func TestMeterNil(t *testing.T) {
	var m *Meter
	m.Observe(0.5, 1, 2) // must not panic
	if NewMeter(nil, 3) != nil {
		t.Fatal("NewMeter(nil) must return nil")
	}
}
