package experiments

import (
	"strings"
	"testing"

	"retrasyn/internal/metrics"
)

// tinyParams keeps experiment tests fast: very small populations, few
// queries, coarse grid.
func tinyParams() Params {
	p := DefaultParams()
	p.Scale = 0.03
	p.W = 5
	p.K = 4
	p.BestOf = false
	p.Seed = 77
	return p
}

func TestEnvDatasetCaching(t *testing.T) {
	e := NewEnv(tinyParams())
	a, err := e.Dataset("TDriveSim", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Dataset("TDriveSim", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset not cached")
	}
	c, err := e.Dataset("TDriveSim", 6)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different K returned same discretization")
	}
	if _, err := e.Dataset("Nope", 4); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestMethodProperties(t *testing.T) {
	if len(ComparedMethods()) != 6 || len(AblationMethods()) != 6 {
		t.Fatal("method list sizes")
	}
	for _, m := range ComparedMethods()[:4] {
		if !m.IsBaseline() {
			t.Errorf("%v should be a baseline", m)
		}
	}
	if MethodRetraSynB.IsBaseline() || MethodRetraSynP.IsBaseline() {
		t.Error("RetraSyn flagged as baseline")
	}
	names := map[string]bool{}
	for _, m := range append(ComparedMethods(), AblationMethods()...) {
		names[m.String()] = true
	}
	for _, want := range []string{"LBD", "LBA", "LPD", "LPA", "RetraSynB", "RetraSynP", "AllUpdateB", "NoEQP"} {
		if !names[want] {
			t.Errorf("missing method name %q", want)
		}
	}
}

func TestMergeBest(t *testing.T) {
	a := metrics.Report{DensityError: 0.5, HotspotNDCG: 0.3, QueryError: 0.9}
	b := metrics.Report{DensityError: 0.7, HotspotNDCG: 0.6, QueryError: 0.4}
	m := mergeBest(a, b)
	if m.DensityError != 0.5 {
		t.Errorf("DensityError = %v", m.DensityError)
	}
	if m.HotspotNDCG != 0.6 {
		t.Errorf("HotspotNDCG = %v", m.HotspotNDCG)
	}
	if m.QueryError != 0.4 {
		t.Errorf("QueryError = %v", m.QueryError)
	}
}

func TestMetricValueRoundTrip(t *testing.T) {
	r := metrics.Report{}
	for i, m := range AllMetrics() {
		setMetric(&r, m, float64(i)+1)
	}
	for i, m := range AllMetrics() {
		if got := MetricValue(r, m); got != float64(i)+1 {
			t.Errorf("%s = %v, want %v", m, got, float64(i)+1)
		}
	}
}

func TestRunAllMethodsSmoke(t *testing.T) {
	e := NewEnv(tinyParams())
	d, err := e.Dataset("TDriveSim", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range append(ComparedMethods(), AblationMethods()[:4]...) {
		res, err := Run(RunSpec{
			Method: m, Epsilon: 1.0, W: 5, Seed: 3, Oracle: e.Params.OracleMode,
		}, d)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := res.Syn.Validate(d.Grid, true); err != nil {
			t.Fatalf("%v: invalid synthetic output: %v", m, err)
		}
		if m.IsBaseline() && res.CoreStats != nil {
			t.Fatalf("%v: baseline reported core stats", m)
		}
		if !m.IsBaseline() && res.CoreStats == nil {
			t.Fatalf("%v: missing core stats", m)
		}
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	e := NewEnv(tinyParams())
	d, _ := e.Dataset("TDriveSim", 4)
	if _, err := Run(RunSpec{Method: MethodRetraSynP, Strategy: "bogus", Epsilon: 1, W: 5}, d); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestTable1(t *testing.T) {
	e := NewEnv(tinyParams())
	tab, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Stats.Size == 0 || r.Stats.NumPoints == 0 {
			t.Fatalf("empty dataset in Table 1: %+v", r)
		}
	}
	s := tab.String()
	for _, want := range []string{"TDriveSim", "OldenburgSim", "SanJoaquinSim", "AvgLength"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestTable3Tiny(t *testing.T) {
	e := NewEnv(tinyParams())
	tab, err := e.Table3([]float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Datasets {
		for _, m := range tab.Methods {
			r, ok := tab.Values[ds][m][1.0]
			if !ok {
				t.Fatalf("missing cell %s/%v", ds, m)
			}
			if r.DensityError < 0 || r.DensityError > metrics.Ln2+1e-9 {
				t.Fatalf("%s/%v density error out of range: %v", ds, m, r.DensityError)
			}
		}
	}
	out := tab.String()
	for _, want := range []string{"Density Error", "RetraSynP", "LBD", "Kendall"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 output missing %q", want)
		}
	}
}

func TestTable4Tiny(t *testing.T) {
	e := NewEnv(tinyParams())
	tab, err := e.Table4()
	if err != nil {
		t.Fatal(err)
	}
	// NoEQ variants must show the near-ln2 length-error signature. (It is
	// exactly ln2 only when no real stream spans the whole timeline; the
	// scaled Oldenburg/SanJoaquin timelines are short relative to the mean
	// stream length, so a small overlap remains.)
	for _, ds := range tab.Datasets {
		for _, m := range []Method{MethodNoEQB, MethodNoEQP} {
			if got := tab.Values[ds][m].LengthError; got < 0.5 {
				t.Errorf("%s/%v length error = %v, want ≳ ln2", ds, m, got)
			}
		}
	}
	if !strings.Contains(tab.String(), "NoEQB") {
		t.Error("Table4 output missing NoEQB")
	}
}

func TestTable5Tiny(t *testing.T) {
	e := NewEnv(tinyParams())
	tab, err := e.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Datasets {
		row := tab.Rows[ds]
		if row.Total <= 0 {
			t.Fatalf("%s: zero total time", ds)
		}
		if row.Total < row.Synthesis {
			t.Fatalf("%s: total < synthesis", ds)
		}
	}
	if !strings.Contains(tab.String(), "Real-time Synthesis") {
		t.Error("Table5 output missing synthesis row")
	}
}

func TestFig3Tiny(t *testing.T) {
	e := NewEnv(tinyParams())
	fig, err := e.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Strategies) != 5 {
		t.Fatalf("strategies = %v", fig.Strategies)
	}
	for _, ds := range fig.Datasets {
		for _, s := range fig.Strategies {
			if _, ok := fig.Values[ds][s]; !ok {
				t.Fatalf("missing %s/%s", ds, s)
			}
		}
	}
	if !strings.Contains(fig.String(), "AdaptiveP") {
		t.Error("Fig3 output missing AdaptiveP")
	}
}

func TestFig4Tiny(t *testing.T) {
	e := NewEnv(tinyParams())
	fig, err := e.Fig4([]int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range fig.Datasets {
		for _, m := range fig.Methods {
			for _, w := range fig.Windows {
				if _, ok := fig.Values[ds][m][w]; !ok {
					t.Fatalf("missing %s/%v/w=%d", ds, m, w)
				}
			}
		}
	}
	if !strings.Contains(fig.String(), "w=5") {
		t.Error("Fig4 output missing w=5 column")
	}
}

func TestFig5Tiny(t *testing.T) {
	e := NewEnv(tinyParams())
	fig, err := e.Fig5([]int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range fig.Datasets {
		for _, m := range fig.Methods {
			for _, phi := range fig.Phis {
				if _, ok := fig.Values[ds][m][phi]; !ok {
					t.Fatalf("missing %s/%v/φ=%d", ds, m, phi)
				}
			}
		}
	}
	if !strings.Contains(fig.String(), "φ=20") {
		t.Error("Fig5 output missing φ=20 column")
	}
}

func TestFig6Tiny(t *testing.T) {
	e := NewEnv(tinyParams())
	fig, err := e.Fig6([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range fig.Datasets {
		for _, m := range []Method{MethodRetraSynB, MethodRetraSynP} {
			for _, k := range fig.Ks {
				if fig.Runtime[ds][m][k] <= 0 {
					t.Fatalf("missing runtime %s/%v/K=%d", ds, m, k)
				}
			}
		}
	}
	if !strings.Contains(fig.String(), "K=4") {
		t.Error("Fig6 output missing K=4 column")
	}
}

func TestFig7Tiny(t *testing.T) {
	e := NewEnv(tinyParams())
	fig, err := e.Fig7([]float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range fig.Datasets {
		for _, m := range []Method{MethodRetraSynB, MethodRetraSynP} {
			for _, fr := range fig.Fractions {
				if fig.Runtime[ds][m][fr] <= 0 {
					t.Fatalf("missing runtime %s/%v/%v", ds, m, fr)
				}
			}
		}
	}
	if !strings.Contains(fig.String(), "50%") {
		t.Error("Fig7 output missing 50% column")
	}
}
