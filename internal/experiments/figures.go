package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"retrasyn/internal/metrics"
	"retrasyn/internal/trajectory"
)

// figureDatasets are the two datasets the paper plots in Figures 3–5.
func figureDatasets() []string { return []string{"TDriveSim", "OldenburgSim"} }

// ---------------------------------------------------------------- Figure 3

// Fig3 compares allocation strategies (paper Figure 3): Adaptive and
// Uniform in both divisions plus Sample (identical in both divisions: all
// active users spend the whole ε at each window start).
type Fig3 struct {
	Datasets   []string
	Strategies []string
	// Values[dataset][strategy] = report.
	Values map[string]map[string]metrics.Report
}

// fig3Spec maps a display label to a run configuration.
type fig3Spec struct {
	label    string
	method   Method
	strategy StrategyName
}

func fig3Specs() []fig3Spec {
	return []fig3Spec{
		{"AdaptiveB", MethodRetraSynB, StrategyAdaptive},
		{"AdaptiveP", MethodRetraSynP, StrategyAdaptive},
		{"UniformB", MethodRetraSynB, StrategyUniform},
		{"UniformP", MethodRetraSynP, StrategyUniform},
		{"Sample", MethodRetraSynP, StrategySample},
	}
}

// Fig3 runs the allocation-strategy comparison.
func (e *Env) Fig3() (*Fig3, error) {
	specs := fig3Specs()
	res := &Fig3{
		Datasets: figureDatasets(),
		Values:   make(map[string]map[string]metrics.Report),
	}
	for _, s := range specs {
		res.Strategies = append(res.Strategies, s.label)
	}
	type job struct {
		dataset string
		spec    fig3Spec
	}
	var jobs []job
	for _, ds := range res.Datasets {
		res.Values[ds] = make(map[string]metrics.Report)
		for _, s := range specs {
			jobs = append(jobs, job{ds, s})
		}
	}
	evals, err := e.prepEvaluators(res.Datasets)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	err = e.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		d, err := e.Dataset(j.dataset, e.Params.K)
		if err != nil {
			return err
		}
		run, err := Run(RunSpec{
			Method:   j.spec.method,
			Strategy: j.spec.strategy,
			Epsilon:  e.Params.Epsilon,
			W:        e.Params.W,
			Seed:     e.Params.Seed ^ uint64(i)<<10,
			Oracle:   e.Params.OracleMode,
		}, d)
		if err != nil {
			return err
		}
		report := evals[j.dataset].Evaluate(run.Syn)
		mu.Lock()
		res.Values[j.dataset][j.spec.label] = report
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the figure's series as rows.
func (f *Fig3) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — impact of allocation strategy\n")
	for _, ds := range f.Datasets {
		fmt.Fprintf(&b, "\n%s\n%-11s %12s %12s %12s\n", ds, "Strategy", "Transition", "Query", "KendallTau")
		for _, s := range f.Strategies {
			r := f.Values[ds][s]
			fmt.Fprintf(&b, "%-11s %12.4f %12.4f %12.4f\n",
				s, r.TransitionError, r.QueryError, r.KendallTau)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 4

// Fig4 sweeps the window size w (paper Figure 4) over the six compared
// methods, reporting transition, query, and trip errors.
type Fig4 struct {
	Datasets []string
	Windows  []int
	Methods  []Method
	// Values[dataset][method][w] = report.
	Values map[string]map[Method]map[int]metrics.Report
}

// Fig4 runs the window-size sweep. Pass nil for the paper's grid.
func (e *Env) Fig4(windows []int) (*Fig4, error) {
	if len(windows) == 0 {
		windows = []int{10, 20, 30, 40, 50}
	}
	res := &Fig4{
		Datasets: figureDatasets(),
		Windows:  windows,
		Methods:  ComparedMethods(),
		Values:   make(map[string]map[Method]map[int]metrics.Report),
	}
	type job struct {
		dataset string
		method  Method
		w       int
	}
	var jobs []job
	for _, ds := range res.Datasets {
		res.Values[ds] = make(map[Method]map[int]metrics.Report)
		for _, m := range res.Methods {
			res.Values[ds][m] = make(map[int]metrics.Report)
			for _, w := range windows {
				jobs = append(jobs, job{ds, m, w})
			}
		}
	}
	evals, err := e.prepEvaluators(res.Datasets)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	err = e.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		d, err := e.Dataset(j.dataset, e.Params.K)
		if err != nil {
			return err
		}
		run, err := Run(RunSpec{
			Method:  j.method,
			Epsilon: e.Params.Epsilon,
			W:       j.w,
			Seed:    e.Params.Seed ^ uint64(i)<<11,
			Oracle:  e.Params.OracleMode,
		}, d)
		if err != nil {
			return err
		}
		report := evals[j.dataset].Evaluate(run.Syn)
		mu.Lock()
		res.Values[j.dataset][j.method][j.w] = report
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders one block per dataset×metric with w as columns.
func (f *Fig4) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — impact of window size w\n")
	for _, ds := range f.Datasets {
		for _, metric := range []MetricName{MetricTransition, MetricQuery, MetricTrip} {
			fmt.Fprintf(&b, "\n%s / %s\n%-11s", ds, metric, "Method")
			for _, w := range f.Windows {
				fmt.Fprintf(&b, " %8s", fmt.Sprintf("w=%d", w))
			}
			b.WriteByte('\n')
			for _, m := range f.Methods {
				fmt.Fprintf(&b, "%-11s", m)
				for _, w := range f.Windows {
					fmt.Fprintf(&b, " %8.4f", MetricValue(f.Values[ds][m][w], metric))
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5 sweeps the evaluation time-range size φ (paper Figure 5). φ only
// affects evaluation, so each method runs once and is re-evaluated per φ.
type Fig5 struct {
	Datasets []string
	Phis     []int
	Methods  []Method
	// Values[dataset][method][phi] = report.
	Values map[string]map[Method]map[int]metrics.Report
}

// Fig5 runs the φ sweep. Pass nil for the paper's grid.
func (e *Env) Fig5(phis []int) (*Fig5, error) {
	if len(phis) == 0 {
		phis = []int{5, 10, 20, 50, 100}
	}
	res := &Fig5{
		Datasets: figureDatasets(),
		Phis:     phis,
		Methods:  ComparedMethods(),
		Values:   make(map[string]map[Method]map[int]metrics.Report),
	}
	type job struct {
		dataset string
		method  Method
	}
	var jobs []job
	for _, ds := range res.Datasets {
		res.Values[ds] = make(map[Method]map[int]metrics.Report)
		for _, m := range res.Methods {
			res.Values[ds][m] = make(map[int]metrics.Report)
			jobs = append(jobs, job{ds, m})
		}
	}
	// Pre-generate datasets (evaluators are per-φ below).
	for _, ds := range res.Datasets {
		if _, err := e.Dataset(ds, e.Params.K); err != nil {
			return nil, err
		}
	}
	var mu sync.Mutex
	err := e.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		d, err := e.Dataset(j.dataset, e.Params.K)
		if err != nil {
			return err
		}
		run, err := Run(RunSpec{
			Method:  j.method,
			Epsilon: e.Params.Epsilon,
			W:       e.Params.W,
			Seed:    e.Params.Seed ^ uint64(i)<<12,
			Oracle:  e.Params.OracleMode,
		}, d)
		if err != nil {
			return err
		}
		for _, phi := range res.Phis {
			ev := metrics.NewEvaluator(d.Cells, d.Grid, metrics.Options{
				Phi:  phi,
				Seed: e.Params.Seed ^ 0xe7a1,
			})
			report := ev.Evaluate(run.Syn)
			mu.Lock()
			res.Values[j.dataset][j.method][phi] = report
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders one block per dataset×metric with φ as columns.
func (f *Fig5) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — impact of evaluation time range φ\n")
	for _, ds := range f.Datasets {
		for _, metric := range []MetricName{MetricQuery, MetricPattern, MetricNDCG} {
			fmt.Fprintf(&b, "\n%s / %s\n%-11s", ds, metric, "Method")
			for _, phi := range f.Phis {
				fmt.Fprintf(&b, " %8s", fmt.Sprintf("φ=%d", phi))
			}
			b.WriteByte('\n')
			for _, m := range f.Methods {
				fmt.Fprintf(&b, "%-11s", m)
				for _, phi := range f.Phis {
					fmt.Fprintf(&b, " %8.4f", MetricValue(f.Values[ds][m][phi], metric))
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6 sweeps the discretization granularity K (paper Figure 6), reporting
// query error and average runtime per timestamp for both RetraSyn variants.
type Fig6 struct {
	Datasets []string
	Ks       []int
	// Query[dataset][method][K] and Runtime[dataset][method][K] (seconds).
	Query   map[string]map[Method]map[int]float64
	Runtime map[string]map[Method]map[int]float64
}

// Fig6 runs the granularity sweep. Pass nil for the paper's grid.
func (e *Env) Fig6(ks []int) (*Fig6, error) {
	if len(ks) == 0 {
		ks = []int{2, 6, 10, 14, 18}
	}
	methods := []Method{MethodRetraSynB, MethodRetraSynP}
	res := &Fig6{
		Datasets: StandardNames(),
		Ks:       ks,
		Query:    make(map[string]map[Method]map[int]float64),
		Runtime:  make(map[string]map[Method]map[int]float64),
	}
	type job struct {
		dataset string
		method  Method
		k       int
	}
	var jobs []job
	for _, ds := range res.Datasets {
		res.Query[ds] = make(map[Method]map[int]float64)
		res.Runtime[ds] = make(map[Method]map[int]float64)
		for _, m := range methods {
			res.Query[ds][m] = make(map[int]float64)
			res.Runtime[ds][m] = make(map[int]float64)
			for _, k := range ks {
				jobs = append(jobs, job{ds, m, k})
			}
		}
	}
	// Serial pre-generation of all (dataset, K) discretizations.
	for _, ds := range res.Datasets {
		for _, k := range ks {
			if _, err := e.Dataset(ds, k); err != nil {
				return nil, err
			}
		}
	}
	var mu sync.Mutex
	err := e.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		d, err := e.Dataset(j.dataset, j.k)
		if err != nil {
			return err
		}
		start := time.Now()
		run, err := Run(RunSpec{
			Method:  j.method,
			Epsilon: e.Params.Epsilon,
			W:       e.Params.W,
			Seed:    e.Params.Seed ^ uint64(i)<<13,
			Oracle:  e.Params.OracleMode,
		}, d)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		ev := metrics.NewEvaluator(d.Cells, d.Grid, metrics.Options{
			Phi:  e.Params.Phi,
			Seed: e.Params.Seed ^ 0xe7a1,
		})
		report := ev.Evaluate(run.Syn)
		mu.Lock()
		res.Query[j.dataset][j.method][j.k] = report.QueryError
		res.Runtime[j.dataset][j.method][j.k] = elapsed.Seconds() / float64(d.Cells.T)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders query error and runtime per dataset with K as columns.
func (f *Fig6) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — impact of discretization granularity K\n")
	for _, ds := range f.Datasets {
		fmt.Fprintf(&b, "\n%s\n%-24s", ds, "Series")
		for _, k := range f.Ks {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("K=%d", k))
		}
		b.WriteByte('\n')
		for _, m := range []Method{MethodRetraSynB, MethodRetraSynP} {
			fmt.Fprintf(&b, "%-24s", fmt.Sprintf("%s query error", m))
			for _, k := range f.Ks {
				fmt.Fprintf(&b, " %9.4f", f.Query[ds][m][k])
			}
			b.WriteByte('\n')
		}
		for _, m := range []Method{MethodRetraSynB, MethodRetraSynP} {
			fmt.Fprintf(&b, "%-24s", fmt.Sprintf("%s runtime (s/ts)", m))
			for _, k := range f.Ks {
				fmt.Fprintf(&b, " %9.5f", f.Runtime[ds][m][k])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7 sweeps the dataset size (paper Figure 7), reporting average runtime
// per timestamp for both RetraSyn variants.
type Fig7 struct {
	Datasets  []string
	Fractions []float64
	// Runtime[dataset][method][fraction] in seconds per timestamp.
	Runtime map[string]map[Method]map[float64]float64
}

// Fig7 runs the scalability sweep. Pass nil for the paper's fractions.
func (e *Env) Fig7(fractions []float64) (*Fig7, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	methods := []Method{MethodRetraSynB, MethodRetraSynP}
	res := &Fig7{
		Datasets:  StandardNames(),
		Fractions: fractions,
		Runtime:   make(map[string]map[Method]map[float64]float64),
	}
	type job struct {
		dataset  string
		method   Method
		fraction float64
	}
	var jobs []job
	for _, ds := range res.Datasets {
		res.Runtime[ds] = make(map[Method]map[float64]float64)
		for _, m := range methods {
			res.Runtime[ds][m] = make(map[float64]float64)
			for _, f := range fractions {
				jobs = append(jobs, job{ds, m, f})
			}
		}
	}
	for _, ds := range res.Datasets {
		if _, err := e.Dataset(ds, e.Params.K); err != nil {
			return nil, err
		}
	}
	var mu sync.Mutex
	err := e.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		d, err := e.Dataset(j.dataset, e.Params.K)
		if err != nil {
			return err
		}
		n := int(float64(len(d.Cells.Trajs)) * j.fraction)
		sub := d.Cells.Subset(n)
		dd := &Discretized{
			Grid:   d.Grid,
			Cells:  sub,
			Stream: trajectory.NewStream(sub),
			Lambda: d.Lambda,
		}
		start := time.Now()
		if _, err := Run(RunSpec{
			Method:  j.method,
			Epsilon: e.Params.Epsilon,
			W:       e.Params.W,
			Seed:    e.Params.Seed ^ uint64(i)<<14,
			Oracle:  e.Params.OracleMode,
		}, dd); err != nil {
			return err
		}
		elapsed := time.Since(start)
		mu.Lock()
		res.Runtime[j.dataset][j.method][j.fraction] = elapsed.Seconds() / float64(sub.T)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the runtime series per dataset.
func (f *Fig7) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — scalability (avg seconds per timestamp)\n")
	for _, ds := range f.Datasets {
		fmt.Fprintf(&b, "\n%s\n%-12s", ds, "Method")
		for _, fr := range f.Fractions {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("%.0f%%", fr*100))
		}
		b.WriteByte('\n')
		for _, m := range []Method{MethodRetraSynB, MethodRetraSynP} {
			fmt.Fprintf(&b, "%-12s", m)
			for _, fr := range f.Fractions {
				fmt.Fprintf(&b, " %9.5f", f.Runtime[ds][m][fr])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// prepEvaluators builds the default-φ evaluators for several datasets
// serially (dataset generation is cached under the env lock).
func (e *Env) prepEvaluators(names []string) (map[string]*metrics.Evaluator, error) {
	out := make(map[string]*metrics.Evaluator, len(names))
	for _, ds := range names {
		d, err := e.Dataset(ds, e.Params.K)
		if err != nil {
			return nil, err
		}
		out[ds] = e.evaluator(d)
	}
	return out, nil
}
