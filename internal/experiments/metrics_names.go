package experiments

import "retrasyn/internal/metrics"

// MetricName identifies one of the paper's eight utility metrics.
type MetricName string

// The metric names in Table III row-group order.
const (
	MetricDensity    MetricName = "Density Error"
	MetricQuery      MetricName = "Query Error"
	MetricNDCG       MetricName = "Hotspot NDCG"
	MetricTransition MetricName = "Transition Error"
	MetricPattern    MetricName = "Pattern F1"
	MetricKendall    MetricName = "Kendall Tau"
	MetricTrip       MetricName = "Trip Error"
	MetricLength     MetricName = "Length Error"
)

// AllMetrics lists the metrics in presentation order.
func AllMetrics() []MetricName {
	return []MetricName{
		MetricDensity, MetricQuery, MetricNDCG, MetricTransition,
		MetricPattern, MetricKendall, MetricTrip, MetricLength,
	}
}

// LargerBetter reports the optimization direction of a metric.
func LargerBetter(m MetricName) bool {
	switch m {
	case MetricNDCG, MetricPattern, MetricKendall:
		return true
	default:
		return false
	}
}

// MetricValue extracts a metric from a report.
func MetricValue(r metrics.Report, m MetricName) float64 {
	switch m {
	case MetricDensity:
		return r.DensityError
	case MetricQuery:
		return r.QueryError
	case MetricNDCG:
		return r.HotspotNDCG
	case MetricTransition:
		return r.TransitionError
	case MetricPattern:
		return r.PatternF1
	case MetricKendall:
		return r.KendallTau
	case MetricTrip:
		return r.TripError
	case MetricLength:
		return r.LengthError
	default:
		panic("experiments: unknown metric " + string(m))
	}
}

// setMetric writes a metric into a report (used to merge best-of-strategy
// reports).
func setMetric(r *metrics.Report, m MetricName, v float64) {
	switch m {
	case MetricDensity:
		r.DensityError = v
	case MetricQuery:
		r.QueryError = v
	case MetricNDCG:
		r.HotspotNDCG = v
	case MetricTransition:
		r.TransitionError = v
	case MetricPattern:
		r.PatternF1 = v
	case MetricKendall:
		r.KendallTau = v
	case MetricTrip:
		r.TripError = v
	case MetricLength:
		r.LengthError = v
	}
}

// mergeBest keeps, per metric, the better value of the two reports.
func mergeBest(a, b metrics.Report) metrics.Report {
	out := a
	for _, m := range AllMetrics() {
		va, vb := MetricValue(a, m), MetricValue(b, m)
		if LargerBetter(m) {
			if vb > va {
				setMetric(&out, m, vb)
			}
		} else if vb < va {
			setMetric(&out, m, vb)
		}
	}
	return out
}
