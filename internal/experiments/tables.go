package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"retrasyn/internal/core"
	"retrasyn/internal/metrics"
	"retrasyn/internal/trajectory"
)

// evaluator builds the shared metric options for a dataset at the default φ.
func (e *Env) evaluator(d *Discretized) *metrics.Evaluator {
	return metrics.NewEvaluator(d.Cells, d.Grid, metrics.Options{
		Phi:  e.Params.Phi,
		Seed: e.Params.Seed ^ 0xe7a1,
	})
}

// ---------------------------------------------------------------- Table I

// Table1 reproduces Table I: statistics of the datasets as consumed by the
// pipeline (streams after discretization and gap splitting).
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one dataset's statistics.
type Table1Row struct {
	Dataset string
	Stats   trajectory.Stats
}

// Table1 computes dataset statistics.
func (e *Env) Table1() (*Table1, error) {
	t := &Table1{}
	for _, name := range StandardNames() {
		d, err := e.Dataset(name, e.Params.K)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Table1Row{Dataset: name, Stats: d.Cells.Stats()})
	}
	return t, nil
}

// String renders the table.
func (t *Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — dataset statistics (discretized streams)\n")
	fmt.Fprintf(&b, "%-15s %10s %12s %12s %12s\n", "Dataset", "Size", "#Points", "AvgLength", "Timestamps")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-15s %10d %12d %12.2f %12d\n",
			r.Dataset, r.Stats.Size, r.Stats.NumPoints, r.Stats.AvgLength, r.Stats.Timestamps)
	}
	return b.String()
}

// --------------------------------------------------------------- Table III

// Table3 reproduces Table III: overall utility across privacy budgets.
type Table3 struct {
	Epsilons []float64
	Datasets []string
	Methods  []Method
	// Values[dataset][method][epsilon] = metric report.
	Values map[string]map[Method]map[float64]metrics.Report
}

// Table3 runs the full comparison. Pass nil to use the paper's ε grid.
func (e *Env) Table3(epsilons []float64) (*Table3, error) {
	if len(epsilons) == 0 {
		epsilons = []float64{0.5, 1.0, 1.5, 2.0}
	}
	res := &Table3{
		Epsilons: epsilons,
		Datasets: StandardNames(),
		Methods:  ComparedMethods(),
		Values:   make(map[string]map[Method]map[float64]metrics.Report),
	}
	type job struct {
		dataset  string
		method   Method
		eps      float64
		strategy StrategyName
	}
	var jobs []job
	for _, ds := range res.Datasets {
		res.Values[ds] = make(map[Method]map[float64]metrics.Report)
		for _, m := range res.Methods {
			res.Values[ds][m] = make(map[float64]metrics.Report)
			for _, eps := range epsilons {
				strategies := []StrategyName{StrategyAdaptive}
				if e.Params.BestOf && !m.IsBaseline() {
					strategies = append(strategies, StrategyUniform, StrategySample)
				}
				for _, s := range strategies {
					jobs = append(jobs, job{dataset: ds, method: m, eps: eps, strategy: s})
				}
			}
		}
	}

	// Pre-generate datasets and evaluators serially (cached thereafter).
	evals := make(map[string]*metrics.Evaluator, len(res.Datasets))
	for _, ds := range res.Datasets {
		d, err := e.Dataset(ds, e.Params.K)
		if err != nil {
			return nil, err
		}
		evals[ds] = e.evaluator(d)
	}

	var mu sync.Mutex
	err := e.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		d, err := e.Dataset(j.dataset, e.Params.K)
		if err != nil {
			return err
		}
		run, err := Run(RunSpec{
			Method:   j.method,
			Strategy: j.strategy,
			Epsilon:  j.eps,
			W:        e.Params.W,
			Seed:     e.Params.Seed ^ uint64(i)<<8,
			Oracle:   e.Params.OracleMode,
		}, d)
		if err != nil {
			return err
		}
		report := evals[j.dataset].Evaluate(run.Syn)
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := res.Values[j.dataset][j.method][j.eps]; ok {
			report = mergeBest(prev, report)
		}
		res.Values[j.dataset][j.method][j.eps] = report
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the table in the paper's layout: one block per metric,
// methods as rows, dataset×ε as columns.
func (t *Table3) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — overall utility (best values per column marked *)\n")
	for _, metric := range AllMetrics() {
		fmt.Fprintf(&b, "\n[%s] %s\n", metric, direction(metric))
		fmt.Fprintf(&b, "%-11s", "Method")
		for _, ds := range t.Datasets {
			for _, eps := range t.Epsilons {
				fmt.Fprintf(&b, " %9s", fmt.Sprintf("%s ε=%.1f", shortName(ds), eps))
			}
		}
		b.WriteByte('\n')
		// Identify best per column.
		best := make(map[string]float64)
		for _, ds := range t.Datasets {
			for _, eps := range t.Epsilons {
				col := colKey(ds, eps)
				first := true
				for _, m := range t.Methods {
					v := MetricValue(t.Values[ds][m][eps], metric)
					if first || better(metric, v, best[col]) {
						best[col] = v
						first = false
					}
				}
			}
		}
		for _, m := range t.Methods {
			fmt.Fprintf(&b, "%-11s", m)
			for _, ds := range t.Datasets {
				for _, eps := range t.Epsilons {
					v := MetricValue(t.Values[ds][m][eps], metric)
					mark := " "
					if v == best[colKey(ds, eps)] {
						mark = "*"
					}
					fmt.Fprintf(&b, " %8.4f%s", v, mark)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func colKey(ds string, eps float64) string { return fmt.Sprintf("%s|%.2f", ds, eps) }

func better(m MetricName, a, b float64) bool {
	if LargerBetter(m) {
		return a > b
	}
	return a < b
}

func direction(m MetricName) string {
	if LargerBetter(m) {
		return "(larger is better)"
	}
	return "(smaller is better)"
}

func shortName(ds string) string {
	switch ds {
	case "TDriveSim":
		return "TD"
	case "OldenburgSim":
		return "OL"
	case "SanJoaquinSim":
		return "SJ"
	default:
		if len(ds) > 2 {
			return ds[:2]
		}
		return ds
	}
}

// ---------------------------------------------------------------- Table IV

// Table4 reproduces Table IV: the AllUpdate and NoEQ ablations at the
// default ε.
type Table4 struct {
	Datasets []string
	Methods  []Method
	// Values[dataset][method] = report.
	Values map[string]map[Method]metrics.Report
}

// Table4 runs the ablation study.
func (e *Env) Table4() (*Table4, error) {
	res := &Table4{
		Datasets: StandardNames(),
		Methods:  AblationMethods(),
		Values:   make(map[string]map[Method]metrics.Report),
	}
	type job struct {
		dataset string
		method  Method
	}
	var jobs []job
	for _, ds := range res.Datasets {
		res.Values[ds] = make(map[Method]metrics.Report)
		for _, m := range res.Methods {
			jobs = append(jobs, job{ds, m})
		}
	}
	evals := make(map[string]*metrics.Evaluator)
	for _, ds := range res.Datasets {
		d, err := e.Dataset(ds, e.Params.K)
		if err != nil {
			return nil, err
		}
		evals[ds] = e.evaluator(d)
	}
	var mu sync.Mutex
	err := e.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		d, err := e.Dataset(j.dataset, e.Params.K)
		if err != nil {
			return err
		}
		run, err := Run(RunSpec{
			Method:  j.method,
			Epsilon: e.Params.Epsilon,
			W:       e.Params.W,
			Seed:    e.Params.Seed ^ uint64(i)<<9,
			Oracle:  e.Params.OracleMode,
		}, d)
		if err != nil {
			return err
		}
		report := evals[j.dataset].Evaluate(run.Syn)
		mu.Lock()
		res.Values[j.dataset][j.method] = report
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the table: one block per dataset, methods × metrics.
func (t *Table4) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — ablations: significant-transition selection and entering/quitting events\n")
	for _, ds := range t.Datasets {
		fmt.Fprintf(&b, "\n%s\n%-12s", ds, "Model")
		for _, m := range AllMetrics() {
			fmt.Fprintf(&b, " %11s", abbreviate(m))
		}
		b.WriteByte('\n')
		for _, method := range t.Methods {
			fmt.Fprintf(&b, "%-12s", method)
			r := t.Values[ds][method]
			for _, m := range AllMetrics() {
				fmt.Fprintf(&b, " %11.4f", MetricValue(r, m))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func abbreviate(m MetricName) string {
	switch m {
	case MetricDensity:
		return "Density"
	case MetricQuery:
		return "Query"
	case MetricNDCG:
		return "NDCG"
	case MetricTransition:
		return "Transition"
	case MetricPattern:
		return "PatternF1"
	case MetricKendall:
		return "Kendall"
	case MetricTrip:
		return "Trip"
	case MetricLength:
		return "Length"
	default:
		return string(m)
	}
}

// ---------------------------------------------------------------- Table V

// Table5 reproduces Table V: per-timestamp component efficiency of
// RetraSynP measured on the faithful per-user oracle path.
type Table5 struct {
	Datasets []string
	// Rows[dataset] holds average seconds per timestamp per component.
	Rows map[string]Table5Row
}

// Table5Row decomposes the average per-timestamp processing time.
type Table5Row struct {
	UserSide          float64
	ModelConstruction float64
	DMU               float64
	Synthesis         float64
	Total             float64
}

// Table5 measures component efficiency.
func (e *Env) Table5() (*Table5, error) {
	res := &Table5{Datasets: StandardNames(), Rows: make(map[string]Table5Row)}
	for _, ds := range res.Datasets {
		d, err := e.Dataset(ds, e.Params.K)
		if err != nil {
			return nil, err
		}
		run, err := Run(RunSpec{
			Method:  MethodRetraSynP,
			Epsilon: e.Params.Epsilon,
			W:       e.Params.W,
			Seed:    e.Params.Seed,
			Oracle:  core.PerUser, // faithful client-side perturbation
		}, d)
		if err != nil {
			return nil, err
		}
		st := run.CoreStats
		perTs := func(t time.Duration) float64 {
			if st.Timestamps == 0 {
				return 0
			}
			return t.Seconds() / float64(st.Timestamps)
		}
		res.Rows[ds] = Table5Row{
			UserSide:          perTs(st.Timings.UserSide),
			ModelConstruction: perTs(st.Timings.ModelConstruction),
			DMU:               perTs(st.Timings.DMU),
			Synthesis:         perTs(st.Timings.Synthesis),
			Total:             perTs(st.Timings.Total()),
		}
	}
	return res, nil
}

// String renders the table.
func (t *Table5) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V — component efficiency of RetraSynP (avg seconds per timestamp)\n")
	fmt.Fprintf(&b, "%-28s", "Procedure")
	for _, ds := range t.Datasets {
		fmt.Fprintf(&b, " %14s", ds)
	}
	b.WriteByte('\n')
	rows := []struct {
		name string
		get  func(Table5Row) float64
	}{
		{"User-side Computation", func(r Table5Row) float64 { return r.UserSide }},
		{"Mobility Model Construction", func(r Table5Row) float64 { return r.ModelConstruction }},
		{"Dynamic Mobility Update", func(r Table5Row) float64 { return r.DMU }},
		{"Real-time Synthesis", func(r Table5Row) float64 { return r.Synthesis }},
		{"Total", func(r Table5Row) float64 { return r.Total }},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s", row.name)
		for _, ds := range t.Datasets {
			fmt.Fprintf(&b, " %14.6f", row.get(t.Rows[ds]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
