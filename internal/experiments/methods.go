package experiments

import (
	"fmt"

	"retrasyn/internal/allocation"
	"retrasyn/internal/core"
	"retrasyn/internal/ldpids"
	"retrasyn/internal/trajectory"
)

// Method identifies one of the compared systems.
type Method int

const (
	// MethodLBD .. MethodLPA are the LDP-IDS baselines.
	MethodLBD Method = iota
	MethodLBA
	MethodLPD
	MethodLPA
	// MethodRetraSynB / MethodRetraSynP are the paper's budget- and
	// population-division RetraSyn variants.
	MethodRetraSynB
	MethodRetraSynP
	// Ablations (Table IV).
	MethodAllUpdateB
	MethodAllUpdateP
	MethodNoEQB
	MethodNoEQP
)

// String implements fmt.Stringer using the paper's labels.
func (m Method) String() string {
	switch m {
	case MethodLBD:
		return "LBD"
	case MethodLBA:
		return "LBA"
	case MethodLPD:
		return "LPD"
	case MethodLPA:
		return "LPA"
	case MethodRetraSynB:
		return "RetraSynB"
	case MethodRetraSynP:
		return "RetraSynP"
	case MethodAllUpdateB:
		return "AllUpdateB"
	case MethodAllUpdateP:
		return "AllUpdateP"
	case MethodNoEQB:
		return "NoEQB"
	case MethodNoEQP:
		return "NoEQP"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// IsBaseline reports whether the method is an LDP-IDS mechanism.
func (m Method) IsBaseline() bool { return m <= MethodLPA }

// Division returns the resource division the method uses.
func (m Method) Division() allocation.Division {
	switch m {
	case MethodLBD, MethodLBA, MethodRetraSynB, MethodAllUpdateB, MethodNoEQB:
		return allocation.Budget
	default:
		return allocation.Population
	}
}

// ComparedMethods lists the six methods of Table III in row order.
func ComparedMethods() []Method {
	return []Method{MethodLBD, MethodLBA, MethodLPD, MethodLPA, MethodRetraSynB, MethodRetraSynP}
}

// AblationMethods lists the six rows of Table IV in order.
func AblationMethods() []Method {
	return []Method{MethodAllUpdateB, MethodAllUpdateP, MethodNoEQB, MethodNoEQP, MethodRetraSynB, MethodRetraSynP}
}

// StrategyName selects an allocation strategy for RetraSyn methods.
type StrategyName string

const (
	StrategyAdaptive StrategyName = "adaptive"
	StrategyUniform  StrategyName = "uniform"
	StrategySample   StrategyName = "sample"
)

func buildStrategy(name StrategyName, div allocation.Division) (allocation.Strategy, error) {
	switch name {
	case StrategyAdaptive, "":
		return allocation.NewAdaptive(div), nil
	case StrategyUniform:
		return &allocation.Uniform{Division: div}, nil
	case StrategySample:
		return &allocation.Sample{Division: div}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown strategy %q", name)
	}
}

// RunSpec fully describes one system run.
type RunSpec struct {
	Method   Method
	Strategy StrategyName // RetraSyn methods only; default adaptive
	Epsilon  float64
	W        int
	Seed     uint64
	Oracle   core.OracleMode
}

// RunResult is the released synthetic dataset plus engine statistics.
type RunResult struct {
	Syn *trajectory.Dataset
	// CoreStats is populated for RetraSyn methods (timings for Table V,
	// Figures 6–7); nil for baselines.
	CoreStats *core.RunStats
}

// Run executes one system over the discretized dataset.
func Run(spec RunSpec, d *Discretized) (*RunResult, error) {
	if spec.Method.IsBaseline() {
		e, err := ldpids.New(ldpids.Options{
			Grid:       d.Grid,
			Epsilon:    spec.Epsilon,
			W:          spec.W,
			Method:     baselineMethod(spec.Method),
			OracleMode: spec.Oracle,
			Seed:       spec.Seed,
		})
		if err != nil {
			return nil, err
		}
		syn, _ := e.Run(d.Stream, d.Cells.Name+"-"+spec.Method.String())
		return &RunResult{Syn: syn}, nil
	}

	strategy, err := buildStrategy(spec.Strategy, spec.Method.Division())
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Space:      d.Grid,
		Epsilon:    spec.Epsilon,
		W:          spec.W,
		Division:   spec.Method.Division(),
		Strategy:   strategy,
		Lambda:     d.Lambda,
		OracleMode: spec.Oracle,
		Seed:       spec.Seed,
	}
	switch spec.Method {
	case MethodAllUpdateB, MethodAllUpdateP:
		opts.DisableDMU = true
	case MethodNoEQB, MethodNoEQP:
		opts.DisableEQ = true
		opts.Lambda = 0
	}
	if opts.DisableEQ {
		opts.Lambda = 0
	}
	e, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	syn, stats := e.Run(d.Stream, d.Cells.Name+"-"+spec.Method.String())
	return &RunResult{Syn: syn, CoreStats: &stats}, nil
}

func baselineMethod(m Method) ldpids.Method {
	switch m {
	case MethodLBD:
		return ldpids.LBD
	case MethodLBA:
		return ldpids.LBA
	case MethodLPD:
		return ldpids.LPD
	default:
		return ldpids.LPA
	}
}
