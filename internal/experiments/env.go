// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Table I (dataset statistics), Table III (overall
// utility), Table IV (ablations), Table V (component efficiency), Figure 3
// (allocation strategies), Figure 4 (window size), Figure 5 (evaluation
// range), Figure 6 (granularity) and Figure 7 (scalability). Each runner
// returns a typed result with a paper-style textual rendering.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"retrasyn/internal/core"
	"retrasyn/internal/datagen"
	"retrasyn/internal/grid"
	"retrasyn/internal/trajectory"
)

// Params are the experiment-wide knobs; zero values select the defaults of
// Table II (bold values) as documented in DESIGN.md.
type Params struct {
	// Scale multiplies the standard datasets' populations (default 1.0; the
	// benches use a small fraction).
	Scale float64
	// Epsilon is the default privacy budget (Table II default 1.0).
	Epsilon float64
	// W is the default window size (default 20).
	W int
	// Phi is the default evaluation time range φ (default 10).
	Phi int
	// K is the default discretization granularity (default 6).
	K int
	// Seed drives dataset generation and all runs.
	Seed uint64
	// OracleMode selects the LDP simulation path (default Aggregate).
	OracleMode core.OracleMode
	// Parallelism bounds concurrent runs (default NumCPU).
	Parallelism int
	// BestOf mirrors the paper's Table III protocol: RetraSyn cells report
	// the best value among the adaptive/uniform/sample allocation
	// strategies. When false only the adaptive strategy runs.
	BestOf bool
}

// DefaultParams returns the Table II defaults at full scale.
func DefaultParams() Params {
	return Params{
		Scale:       1.0,
		Epsilon:     1.0,
		W:           20,
		Phi:         10,
		K:           6,
		Seed:        2024,
		OracleMode:  core.Aggregate,
		Parallelism: runtime.NumCPU(),
		BestOf:      true,
	}
}

func (p *Params) defaults() {
	if p.Scale <= 0 {
		p.Scale = 1.0
	}
	if p.Epsilon <= 0 {
		p.Epsilon = 1.0
	}
	if p.W <= 0 {
		p.W = 20
	}
	if p.Phi <= 0 {
		p.Phi = 10
	}
	if p.K <= 0 {
		p.K = 6
	}
	if p.Seed == 0 {
		p.Seed = 2024
	}
	if p.Parallelism <= 0 {
		p.Parallelism = runtime.NumCPU()
	}
}

// Env generates and caches the standard datasets and their discretizations.
// It is safe for concurrent use after Prepare.
type Env struct {
	Params Params

	mu   sync.Mutex
	data map[string]*envData
}

type envData struct {
	spec datagen.Spec
	raw  *trajectory.RawDataset
	// byK caches the discretized dataset, its stream, and its grid per
	// granularity K.
	byK map[int]*Discretized
}

// Discretized bundles everything a run needs at one granularity.
type Discretized struct {
	Grid   *grid.System
	Cells  *trajectory.Dataset
	Stream *trajectory.Stream
	Lambda float64 // average stream length, the paper's λ default
}

// NewEnv creates an environment.
func NewEnv(p Params) *Env {
	p.defaults()
	return &Env{Params: p, data: make(map[string]*envData)}
}

// Dataset returns (generating and caching on first use) the named standard
// dataset discretized at granularity k.
func (e *Env) Dataset(name string, k int) (*Discretized, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ed, ok := e.data[name]
	if !ok {
		spec, found := datagen.SpecByName(name)
		if !found {
			return nil, fmt.Errorf("experiments: unknown dataset %q", name)
		}
		raw, err := spec.Generate(e.Params.Scale, e.Params.Seed)
		if err != nil {
			return nil, err
		}
		ed = &envData{spec: spec, raw: raw, byK: make(map[int]*Discretized)}
		e.data[name] = ed
	}
	if d, ok := ed.byK[k]; ok {
		return d, nil
	}
	g, err := grid.New(k, ed.spec.Bounds)
	if err != nil {
		return nil, err
	}
	cells := trajectory.Discretize(ed.raw, g, trajectory.DiscretizeOptions{SplitNonAdjacent: true})
	d := &Discretized{
		Grid:   g,
		Cells:  cells,
		Stream: trajectory.NewStream(cells),
		Lambda: cells.Stats().AvgLength,
	}
	ed.byK[k] = d
	return d, nil
}

// StandardNames lists the dataset names in Table I order.
func StandardNames() []string {
	return []string{"TDriveSim", "OldenburgSim", "SanJoaquinSim"}
}

// forEach runs jobs with bounded parallelism, collecting the first error.
func (e *Env) forEach(n int, job func(i int) error) error {
	sem := make(chan struct{}, e.Params.Parallelism)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := job(i); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}
