package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

// Writer emits a transition-id stream incrementally: one WriteBatch per
// timestamp, strictly in order, then Flush. Rows are formatted into a
// reused scratch buffer — at SanJoaquin scale the writer is xz-bound, not
// allocation-bound.
type Writer struct {
	bw      *bufio.Writer
	t       int
	next    int
	scratch []byte
}

// NewWriter writes the TID header for a timeline of length tlen and returns
// a writer expecting exactly one batch per timestamp in [0, tlen).
func NewWriter(w io.Writer, tlen int, name string) (*Writer, error) {
	if tlen <= 0 {
		return nil, fmt.Errorf("dataset: timeline length must be positive, got %d", tlen)
	}
	if strings.ContainsAny(name, "\r\n") {
		return nil, fmt.Errorf("dataset: name %q contains a line break", name)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "TID,%d,%s\n", tlen, name); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, t: tlen}, nil
}

// WriteBatch emits timestamp t's transitions. Timestamps must arrive
// consecutively from 0; an empty batch still emits its marker (the reader
// requires the full timeline).
func (w *Writer) WriteBatch(t int, trs []Transition) error {
	if t != w.next {
		return fmt.Errorf("dataset: WriteBatch(%d) out of order (want %d)", t, w.next)
	}
	if t >= w.t {
		return fmt.Errorf("dataset: WriteBatch(%d) outside timeline [0,%d)", t, w.t)
	}
	buf := w.scratch[:0]
	buf = append(buf, '@')
	buf = strconv.AppendInt(buf, int64(t), 10)
	buf = append(buf, '\n')
	for _, tr := range trs {
		if !tr.valid() {
			return fmt.Errorf("dataset: WriteBatch(%d): invalid transition %+v", t, tr)
		}
		buf = strconv.AppendFloat(buf, tr.X1, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, tr.Y1, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, tr.X2, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, tr.Y2, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(tr.Flag), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(tr.User), 10)
		buf = append(buf, '\n')
	}
	w.scratch = buf[:0]
	if _, err := w.bw.Write(buf); err != nil {
		return err
	}
	w.next++
	return nil
}

// Flush completes the stream. It fails when the timeline is incomplete —
// a partial export must never pass for a whole one.
func (w *Writer) Flush() error {
	if w.next != w.t {
		return fmt.Errorf("dataset: incomplete stream: %d of %d timestamps written", w.next, w.t)
	}
	return w.bw.Flush()
}

// WriteDataset streams a discretized dataset as a transition-id stream,
// deriving the continuous coordinates from sp's cell centers (which
// round-trip to the same cells, so a replay reconstructs the exact cell
// transitions). The sweep never materializes the full event stream: memory
// stays bounded by the busiest timestamp.
func WriteDataset(w io.Writer, d *trajectory.Dataset, sp spatial.Discretizer) error {
	tw, err := NewWriter(w, d.T, d.Name)
	if err != nil {
		return err
	}
	var trs []Transition
	err = trajectory.SweepEvents(d, func(t int, events []trajectory.Event, active int) error {
		trs = trs[:0]
		for _, ev := range events {
			trs = append(trs, FromEvent(ev, sp))
		}
		return tw.WriteBatch(t, trs)
	})
	if err != nil {
		return err
	}
	return tw.Flush()
}
