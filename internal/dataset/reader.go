package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Reader streams a transition-id file one timestamp at a time. Memory is
// bounded by the largest single timestamp, never the whole file — a
// SanJoaquin-scale stream (55.8M tuples) replays in a few megabytes.
type Reader struct {
	sc    *bufio.Scanner
	t     int    // timeline length from the header
	name  string // dataset name from the header
	next  int    // next timestamp Next must yield
	line  int    // current line for error context
	stash string // lookahead marker line consumed by the previous batch
	err   error  // sticky parse error
}

// NewReader reads the TID header off r and returns a streaming reader for
// the batches that follow. r is consumed incrementally by Next.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	rd := &Reader{sc: sc}
	text, ok, err := rd.scanLine()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("dataset: empty input")
	}
	header := strings.SplitN(text, ",", 3)
	if len(header) < 2 || header[0] != "TID" {
		return nil, fmt.Errorf("dataset: malformed header %q (want TID,<T>,<name>)", text)
	}
	t, err := strconv.Atoi(header[1])
	if err != nil || t <= 0 {
		return nil, fmt.Errorf("dataset: bad timeline length %q", header[1])
	}
	rd.t = t
	if len(header) == 3 {
		rd.name = header[2]
	}
	return rd, nil
}

// T returns the timeline length declared in the header.
func (r *Reader) T() int { return r.t }

// Name returns the dataset name declared in the header.
func (r *Reader) Name() string { return r.name }

// scanLine returns the next non-blank line, trimmed, tracking line numbers.
func (r *Reader) scanLine() (string, bool, error) {
	for r.sc.Scan() {
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" {
			continue
		}
		return text, true, nil
	}
	return "", false, r.sc.Err()
}

func (r *Reader) fail(err error) (*Batch, error) {
	r.err = err
	return nil, err
}

// Next returns the batch for the next timestamp. Batches arrive strictly in
// order for every t in [0, T); after the last one Next returns io.EOF. Any
// structural violation — a missing or out-of-order `@t` marker, a malformed
// tuple, content past the timeline — is a sticky error: a truncated file is
// reported as truncation, never silently passed off as a shorter stream.
func (r *Reader) Next() (*Batch, error) {
	if r.err != nil {
		return nil, r.err
	}
	marker := r.stash
	r.stash = ""
	if marker == "" {
		text, ok, err := r.scanLine()
		if err != nil {
			return r.fail(err)
		}
		if !ok {
			if r.next >= r.t {
				return nil, io.EOF
			}
			return r.fail(fmt.Errorf("dataset: truncated stream: want @%d marker, got EOF after line %d (timeline [0,%d))", r.next, r.line, r.t))
		}
		marker = text
	}
	t, ok := parseMarker(marker)
	if !ok {
		return r.fail(fmt.Errorf("dataset: line %d: want @%d marker, got %q", r.line, r.next, marker))
	}
	if t >= r.t {
		return r.fail(fmt.Errorf("dataset: line %d: timestamp @%d outside timeline [0,%d)", r.line, t, r.t))
	}
	if t != r.next {
		return r.fail(fmt.Errorf("dataset: line %d: timestamp @%d out of order (want @%d)", r.line, t, r.next))
	}
	b := &Batch{T: t}
	for {
		text, ok, err := r.scanLine()
		if err != nil {
			return r.fail(err)
		}
		if !ok {
			if r.next < r.t-1 {
				return r.fail(fmt.Errorf("dataset: truncated stream: EOF after @%d (timeline [0,%d))", r.next, r.t))
			}
			break
		}
		if strings.HasPrefix(text, "@") {
			r.stash = text
			break
		}
		tr, err := parseTransition(text)
		if err != nil {
			return r.fail(fmt.Errorf("dataset: line %d: %w", r.line, err))
		}
		b.Transitions = append(b.Transitions, tr)
	}
	r.next++
	return b, nil
}

func parseMarker(text string) (int, bool) {
	if !strings.HasPrefix(text, "@") {
		return 0, false
	}
	t, err := strconv.Atoi(text[1:])
	if err != nil || t < 0 {
		return 0, false
	}
	return t, true
}

func parseTransition(text string) (Transition, error) {
	var tr Transition
	fields := strings.Split(text, ",")
	if len(fields) != 6 {
		return tr, fmt.Errorf("want x1,y1,x2,y2,flag,user (6 fields), got %d", len(fields))
	}
	coords := [4]*float64{&tr.X1, &tr.Y1, &tr.X2, &tr.Y2}
	for i, dst := range coords {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return tr, fmt.Errorf("bad coordinate %q", fields[i])
		}
		*dst = v
	}
	flag, err := strconv.Atoi(fields[4])
	if err != nil {
		return tr, fmt.Errorf("bad flag %q", fields[4])
	}
	tr.Flag = Flag(flag)
	user, err := strconv.Atoi(fields[5])
	if err != nil {
		return tr, fmt.Errorf("bad user %q", fields[5])
	}
	tr.User = user
	if !tr.valid() {
		return tr, fmt.Errorf("invalid tuple %q (flag outside {0,1,2}, negative user, or non-finite coordinate)", text)
	}
	return tr, nil
}

// ReadTransitionStream streams every batch of a transition-id stream
// through fn, in timestamp order. It is the one-call replay loop (and the
// fuzz entry point): a nil error means the whole timeline [0, T) was
// delivered intact.
func ReadTransitionStream(r io.Reader, fn func(*Batch) error) error {
	rd, err := NewReader(r)
	if err != nil {
		return err
	}
	for {
		b, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}
